
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_aux_graph_test.cc" "tests/CMakeFiles/core_test.dir/core_aux_graph_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_aux_graph_test.cc.o.d"
  "/root/repo/tests/core_bicameral_test.cc" "tests/CMakeFiles/core_test.dir/core_bicameral_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_bicameral_test.cc.o.d"
  "/root/repo/tests/core_cycle_cancel_test.cc" "tests/CMakeFiles/core_test.dir/core_cycle_cancel_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_cycle_cancel_test.cc.o.d"
  "/root/repo/tests/core_failure_injection_test.cc" "tests/CMakeFiles/core_test.dir/core_failure_injection_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_failure_injection_test.cc.o.d"
  "/root/repo/tests/core_instance_test.cc" "tests/CMakeFiles/core_test.dir/core_instance_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_instance_test.cc.o.d"
  "/root/repo/tests/core_io_test.cc" "tests/CMakeFiles/core_test.dir/core_io_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_io_test.cc.o.d"
  "/root/repo/tests/core_k1_oracle_test.cc" "tests/CMakeFiles/core_test.dir/core_k1_oracle_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_k1_oracle_test.cc.o.d"
  "/root/repo/tests/core_kbcp_test.cc" "tests/CMakeFiles/core_test.dir/core_kbcp_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_kbcp_test.cc.o.d"
  "/root/repo/tests/core_per_path_test.cc" "tests/CMakeFiles/core_test.dir/core_per_path_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_per_path_test.cc.o.d"
  "/root/repo/tests/core_phase1_test.cc" "tests/CMakeFiles/core_test.dir/core_phase1_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_phase1_test.cc.o.d"
  "/root/repo/tests/core_priority_routing_test.cc" "tests/CMakeFiles/core_test.dir/core_priority_routing_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_priority_routing_test.cc.o.d"
  "/root/repo/tests/core_repair_test.cc" "tests/CMakeFiles/core_test.dir/core_repair_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_repair_test.cc.o.d"
  "/root/repo/tests/core_residual_test.cc" "tests/CMakeFiles/core_test.dir/core_residual_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_residual_test.cc.o.d"
  "/root/repo/tests/core_scaling_test.cc" "tests/CMakeFiles/core_test.dir/core_scaling_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_scaling_test.cc.o.d"
  "/root/repo/tests/core_solver_test.cc" "tests/CMakeFiles/core_test.dir/core_solver_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_solver_test.cc.o.d"
  "/root/repo/tests/core_vertex_disjoint_test.cc" "tests/CMakeFiles/core_test.dir/core_vertex_disjoint_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_vertex_disjoint_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/krsp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/krsp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/krsp_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/krsp_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/krsp_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/krsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/krsp_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bench_iterations.dir/bench_iterations.cc.o"
  "CMakeFiles/bench_iterations.dir/bench_iterations.cc.o.d"
  "bench_iterations"
  "bench_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

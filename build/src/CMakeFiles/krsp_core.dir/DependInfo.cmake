
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aux_graph.cc" "src/CMakeFiles/krsp_core.dir/core/aux_graph.cc.o" "gcc" "src/CMakeFiles/krsp_core.dir/core/aux_graph.cc.o.d"
  "/root/repo/src/core/bicameral.cc" "src/CMakeFiles/krsp_core.dir/core/bicameral.cc.o" "gcc" "src/CMakeFiles/krsp_core.dir/core/bicameral.cc.o.d"
  "/root/repo/src/core/cycle_cancel.cc" "src/CMakeFiles/krsp_core.dir/core/cycle_cancel.cc.o" "gcc" "src/CMakeFiles/krsp_core.dir/core/cycle_cancel.cc.o.d"
  "/root/repo/src/core/instance.cc" "src/CMakeFiles/krsp_core.dir/core/instance.cc.o" "gcc" "src/CMakeFiles/krsp_core.dir/core/instance.cc.o.d"
  "/root/repo/src/core/io.cc" "src/CMakeFiles/krsp_core.dir/core/io.cc.o" "gcc" "src/CMakeFiles/krsp_core.dir/core/io.cc.o.d"
  "/root/repo/src/core/kbcp.cc" "src/CMakeFiles/krsp_core.dir/core/kbcp.cc.o" "gcc" "src/CMakeFiles/krsp_core.dir/core/kbcp.cc.o.d"
  "/root/repo/src/core/lp_cycle_finder.cc" "src/CMakeFiles/krsp_core.dir/core/lp_cycle_finder.cc.o" "gcc" "src/CMakeFiles/krsp_core.dir/core/lp_cycle_finder.cc.o.d"
  "/root/repo/src/core/path_set.cc" "src/CMakeFiles/krsp_core.dir/core/path_set.cc.o" "gcc" "src/CMakeFiles/krsp_core.dir/core/path_set.cc.o.d"
  "/root/repo/src/core/per_path.cc" "src/CMakeFiles/krsp_core.dir/core/per_path.cc.o" "gcc" "src/CMakeFiles/krsp_core.dir/core/per_path.cc.o.d"
  "/root/repo/src/core/phase1.cc" "src/CMakeFiles/krsp_core.dir/core/phase1.cc.o" "gcc" "src/CMakeFiles/krsp_core.dir/core/phase1.cc.o.d"
  "/root/repo/src/core/priority_routing.cc" "src/CMakeFiles/krsp_core.dir/core/priority_routing.cc.o" "gcc" "src/CMakeFiles/krsp_core.dir/core/priority_routing.cc.o.d"
  "/root/repo/src/core/repair.cc" "src/CMakeFiles/krsp_core.dir/core/repair.cc.o" "gcc" "src/CMakeFiles/krsp_core.dir/core/repair.cc.o.d"
  "/root/repo/src/core/residual.cc" "src/CMakeFiles/krsp_core.dir/core/residual.cc.o" "gcc" "src/CMakeFiles/krsp_core.dir/core/residual.cc.o.d"
  "/root/repo/src/core/scaling.cc" "src/CMakeFiles/krsp_core.dir/core/scaling.cc.o" "gcc" "src/CMakeFiles/krsp_core.dir/core/scaling.cc.o.d"
  "/root/repo/src/core/solver.cc" "src/CMakeFiles/krsp_core.dir/core/solver.cc.o" "gcc" "src/CMakeFiles/krsp_core.dir/core/solver.cc.o.d"
  "/root/repo/src/core/vertex_disjoint.cc" "src/CMakeFiles/krsp_core.dir/core/vertex_disjoint.cc.o" "gcc" "src/CMakeFiles/krsp_core.dir/core/vertex_disjoint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/krsp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/krsp_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/krsp_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/krsp_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libkrsp_core.a"
)

# Empty compiler generated dependencies file for krsp_core.
# This may be replaced when dependencies are built.

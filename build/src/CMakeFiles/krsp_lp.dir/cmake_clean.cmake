file(REMOVE_RECURSE
  "CMakeFiles/krsp_lp.dir/lp/model.cc.o"
  "CMakeFiles/krsp_lp.dir/lp/model.cc.o.d"
  "CMakeFiles/krsp_lp.dir/lp/simplex.cc.o"
  "CMakeFiles/krsp_lp.dir/lp/simplex.cc.o.d"
  "libkrsp_lp.a"
  "libkrsp_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krsp_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libkrsp_lp.a"
)

# Empty dependencies file for krsp_lp.
# This may be replaced when dependencies are built.

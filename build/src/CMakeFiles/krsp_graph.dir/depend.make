# Empty dependencies file for krsp_graph.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libkrsp_graph.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/algorithms.cc" "src/CMakeFiles/krsp_graph.dir/graph/algorithms.cc.o" "gcc" "src/CMakeFiles/krsp_graph.dir/graph/algorithms.cc.o.d"
  "/root/repo/src/graph/cycles.cc" "src/CMakeFiles/krsp_graph.dir/graph/cycles.cc.o" "gcc" "src/CMakeFiles/krsp_graph.dir/graph/cycles.cc.o.d"
  "/root/repo/src/graph/digraph.cc" "src/CMakeFiles/krsp_graph.dir/graph/digraph.cc.o" "gcc" "src/CMakeFiles/krsp_graph.dir/graph/digraph.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/CMakeFiles/krsp_graph.dir/graph/generators.cc.o" "gcc" "src/CMakeFiles/krsp_graph.dir/graph/generators.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/CMakeFiles/krsp_graph.dir/graph/io.cc.o" "gcc" "src/CMakeFiles/krsp_graph.dir/graph/io.cc.o.d"
  "/root/repo/src/graph/transform.cc" "src/CMakeFiles/krsp_graph.dir/graph/transform.cc.o" "gcc" "src/CMakeFiles/krsp_graph.dir/graph/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

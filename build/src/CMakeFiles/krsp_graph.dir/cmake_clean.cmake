file(REMOVE_RECURSE
  "CMakeFiles/krsp_graph.dir/graph/algorithms.cc.o"
  "CMakeFiles/krsp_graph.dir/graph/algorithms.cc.o.d"
  "CMakeFiles/krsp_graph.dir/graph/cycles.cc.o"
  "CMakeFiles/krsp_graph.dir/graph/cycles.cc.o.d"
  "CMakeFiles/krsp_graph.dir/graph/digraph.cc.o"
  "CMakeFiles/krsp_graph.dir/graph/digraph.cc.o.d"
  "CMakeFiles/krsp_graph.dir/graph/generators.cc.o"
  "CMakeFiles/krsp_graph.dir/graph/generators.cc.o.d"
  "CMakeFiles/krsp_graph.dir/graph/io.cc.o"
  "CMakeFiles/krsp_graph.dir/graph/io.cc.o.d"
  "CMakeFiles/krsp_graph.dir/graph/transform.cc.o"
  "CMakeFiles/krsp_graph.dir/graph/transform.cc.o.d"
  "libkrsp_graph.a"
  "libkrsp_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krsp_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/decompose.cc" "src/CMakeFiles/krsp_flow.dir/flow/decompose.cc.o" "gcc" "src/CMakeFiles/krsp_flow.dir/flow/decompose.cc.o.d"
  "/root/repo/src/flow/dinic.cc" "src/CMakeFiles/krsp_flow.dir/flow/dinic.cc.o" "gcc" "src/CMakeFiles/krsp_flow.dir/flow/dinic.cc.o.d"
  "/root/repo/src/flow/disjoint.cc" "src/CMakeFiles/krsp_flow.dir/flow/disjoint.cc.o" "gcc" "src/CMakeFiles/krsp_flow.dir/flow/disjoint.cc.o.d"
  "/root/repo/src/flow/min_cost_flow.cc" "src/CMakeFiles/krsp_flow.dir/flow/min_cost_flow.cc.o" "gcc" "src/CMakeFiles/krsp_flow.dir/flow/min_cost_flow.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/krsp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/krsp_paths.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/krsp_flow.dir/flow/decompose.cc.o"
  "CMakeFiles/krsp_flow.dir/flow/decompose.cc.o.d"
  "CMakeFiles/krsp_flow.dir/flow/dinic.cc.o"
  "CMakeFiles/krsp_flow.dir/flow/dinic.cc.o.d"
  "CMakeFiles/krsp_flow.dir/flow/disjoint.cc.o"
  "CMakeFiles/krsp_flow.dir/flow/disjoint.cc.o.d"
  "CMakeFiles/krsp_flow.dir/flow/min_cost_flow.cc.o"
  "CMakeFiles/krsp_flow.dir/flow/min_cost_flow.cc.o.d"
  "libkrsp_flow.a"
  "libkrsp_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krsp_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

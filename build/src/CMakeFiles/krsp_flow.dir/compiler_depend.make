# Empty compiler generated dependencies file for krsp_flow.
# This may be replaced when dependencies are built.

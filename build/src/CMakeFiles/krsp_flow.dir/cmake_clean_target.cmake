file(REMOVE_RECURSE
  "libkrsp_flow.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/paths/bellman_ford.cc" "src/CMakeFiles/krsp_paths.dir/paths/bellman_ford.cc.o" "gcc" "src/CMakeFiles/krsp_paths.dir/paths/bellman_ford.cc.o.d"
  "/root/repo/src/paths/dijkstra.cc" "src/CMakeFiles/krsp_paths.dir/paths/dijkstra.cc.o" "gcc" "src/CMakeFiles/krsp_paths.dir/paths/dijkstra.cc.o.d"
  "/root/repo/src/paths/pareto.cc" "src/CMakeFiles/krsp_paths.dir/paths/pareto.cc.o" "gcc" "src/CMakeFiles/krsp_paths.dir/paths/pareto.cc.o.d"
  "/root/repo/src/paths/rsp.cc" "src/CMakeFiles/krsp_paths.dir/paths/rsp.cc.o" "gcc" "src/CMakeFiles/krsp_paths.dir/paths/rsp.cc.o.d"
  "/root/repo/src/paths/yen.cc" "src/CMakeFiles/krsp_paths.dir/paths/yen.cc.o" "gcc" "src/CMakeFiles/krsp_paths.dir/paths/yen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/krsp_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/krsp_paths.dir/paths/bellman_ford.cc.o"
  "CMakeFiles/krsp_paths.dir/paths/bellman_ford.cc.o.d"
  "CMakeFiles/krsp_paths.dir/paths/dijkstra.cc.o"
  "CMakeFiles/krsp_paths.dir/paths/dijkstra.cc.o.d"
  "CMakeFiles/krsp_paths.dir/paths/pareto.cc.o"
  "CMakeFiles/krsp_paths.dir/paths/pareto.cc.o.d"
  "CMakeFiles/krsp_paths.dir/paths/rsp.cc.o"
  "CMakeFiles/krsp_paths.dir/paths/rsp.cc.o.d"
  "CMakeFiles/krsp_paths.dir/paths/yen.cc.o"
  "CMakeFiles/krsp_paths.dir/paths/yen.cc.o.d"
  "libkrsp_paths.a"
  "libkrsp_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krsp_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

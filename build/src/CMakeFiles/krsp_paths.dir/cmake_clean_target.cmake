file(REMOVE_RECURSE
  "libkrsp_paths.a"
)

# Empty dependencies file for krsp_paths.
# This may be replaced when dependencies are built.

# Empty dependencies file for krsp_baselines.
# This may be replaced when dependencies are built.

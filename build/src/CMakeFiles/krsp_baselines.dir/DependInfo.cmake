
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bnb.cc" "src/CMakeFiles/krsp_baselines.dir/baselines/bnb.cc.o" "gcc" "src/CMakeFiles/krsp_baselines.dir/baselines/bnb.cc.o.d"
  "/root/repo/src/baselines/brute_force.cc" "src/CMakeFiles/krsp_baselines.dir/baselines/brute_force.cc.o" "gcc" "src/CMakeFiles/krsp_baselines.dir/baselines/brute_force.cc.o.d"
  "/root/repo/src/baselines/flow_only.cc" "src/CMakeFiles/krsp_baselines.dir/baselines/flow_only.cc.o" "gcc" "src/CMakeFiles/krsp_baselines.dir/baselines/flow_only.cc.o.d"
  "/root/repo/src/baselines/larac_k.cc" "src/CMakeFiles/krsp_baselines.dir/baselines/larac_k.cc.o" "gcc" "src/CMakeFiles/krsp_baselines.dir/baselines/larac_k.cc.o.d"
  "/root/repo/src/baselines/min_max.cc" "src/CMakeFiles/krsp_baselines.dir/baselines/min_max.cc.o" "gcc" "src/CMakeFiles/krsp_baselines.dir/baselines/min_max.cc.o.d"
  "/root/repo/src/baselines/os_cycle_cancel.cc" "src/CMakeFiles/krsp_baselines.dir/baselines/os_cycle_cancel.cc.o" "gcc" "src/CMakeFiles/krsp_baselines.dir/baselines/os_cycle_cancel.cc.o.d"
  "/root/repo/src/baselines/unsafe_cc.cc" "src/CMakeFiles/krsp_baselines.dir/baselines/unsafe_cc.cc.o" "gcc" "src/CMakeFiles/krsp_baselines.dir/baselines/unsafe_cc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/krsp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/krsp_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/krsp_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/krsp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/krsp_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

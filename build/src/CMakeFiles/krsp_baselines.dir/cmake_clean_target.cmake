file(REMOVE_RECURSE
  "libkrsp_baselines.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/krsp_baselines.dir/baselines/bnb.cc.o"
  "CMakeFiles/krsp_baselines.dir/baselines/bnb.cc.o.d"
  "CMakeFiles/krsp_baselines.dir/baselines/brute_force.cc.o"
  "CMakeFiles/krsp_baselines.dir/baselines/brute_force.cc.o.d"
  "CMakeFiles/krsp_baselines.dir/baselines/flow_only.cc.o"
  "CMakeFiles/krsp_baselines.dir/baselines/flow_only.cc.o.d"
  "CMakeFiles/krsp_baselines.dir/baselines/larac_k.cc.o"
  "CMakeFiles/krsp_baselines.dir/baselines/larac_k.cc.o.d"
  "CMakeFiles/krsp_baselines.dir/baselines/min_max.cc.o"
  "CMakeFiles/krsp_baselines.dir/baselines/min_max.cc.o.d"
  "CMakeFiles/krsp_baselines.dir/baselines/os_cycle_cancel.cc.o"
  "CMakeFiles/krsp_baselines.dir/baselines/os_cycle_cancel.cc.o.d"
  "CMakeFiles/krsp_baselines.dir/baselines/unsafe_cc.cc.o"
  "CMakeFiles/krsp_baselines.dir/baselines/unsafe_cc.cc.o.d"
  "libkrsp_baselines.a"
  "libkrsp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krsp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

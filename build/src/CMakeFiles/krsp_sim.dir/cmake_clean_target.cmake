file(REMOVE_RECURSE
  "libkrsp_sim.a"
)

# Empty dependencies file for krsp_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/krsp_sim.dir/sim/network_sim.cc.o"
  "CMakeFiles/krsp_sim.dir/sim/network_sim.cc.o.d"
  "libkrsp_sim.a"
  "libkrsp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krsp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

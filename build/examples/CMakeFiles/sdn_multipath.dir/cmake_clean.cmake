file(REMOVE_RECURSE
  "CMakeFiles/sdn_multipath.dir/sdn_multipath.cpp.o"
  "CMakeFiles/sdn_multipath.dir/sdn_multipath.cpp.o.d"
  "sdn_multipath"
  "sdn_multipath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdn_multipath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

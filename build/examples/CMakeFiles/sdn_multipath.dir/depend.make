# Empty dependencies file for sdn_multipath.
# This may be replaced when dependencies are built.

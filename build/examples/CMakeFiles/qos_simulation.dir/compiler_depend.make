# Empty compiler generated dependencies file for qos_simulation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/qos_simulation.dir/qos_simulation.cpp.o"
  "CMakeFiles/qos_simulation.dir/qos_simulation.cpp.o.d"
  "qos_simulation"
  "qos_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

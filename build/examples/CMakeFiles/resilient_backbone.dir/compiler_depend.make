# Empty compiler generated dependencies file for resilient_backbone.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/resilient_backbone.dir/resilient_backbone.cpp.o"
  "CMakeFiles/resilient_backbone.dir/resilient_backbone.cpp.o.d"
  "resilient_backbone"
  "resilient_backbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilient_backbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/qos_planner.dir/qos_planner.cpp.o"
  "CMakeFiles/qos_planner.dir/qos_planner.cpp.o.d"
  "qos_planner"
  "qos_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

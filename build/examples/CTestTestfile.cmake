# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;9;krsp_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_sdn_multipath]=] "/root/repo/build/examples/sdn_multipath")
set_tests_properties([=[example_sdn_multipath]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;10;krsp_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_video_streaming]=] "/root/repo/build/examples/video_streaming")
set_tests_properties([=[example_video_streaming]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;11;krsp_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_resilient_backbone]=] "/root/repo/build/examples/resilient_backbone")
set_tests_properties([=[example_resilient_backbone]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;12;krsp_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_qos_planner]=] "/root/repo/build/examples/qos_planner")
set_tests_properties([=[example_qos_planner]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;13;krsp_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_qos_simulation]=] "/root/repo/build/examples/qos_simulation")
set_tests_properties([=[example_qos_simulation]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;14;krsp_add_example;/root/repo/examples/CMakeLists.txt;0;")

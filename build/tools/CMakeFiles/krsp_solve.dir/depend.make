# Empty dependencies file for krsp_solve.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/krsp_solve.dir/krsp_solve.cc.o"
  "CMakeFiles/krsp_solve.dir/krsp_solve.cc.o.d"
  "krsp_solve"
  "krsp_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krsp_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

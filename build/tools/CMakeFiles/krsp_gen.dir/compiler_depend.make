# Empty compiler generated dependencies file for krsp_gen.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/krsp_gen.cc" "tools/CMakeFiles/krsp_gen.dir/krsp_gen.cc.o" "gcc" "tools/CMakeFiles/krsp_gen.dir/krsp_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/krsp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/krsp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/krsp_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/krsp_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/krsp_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/krsp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/krsp_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

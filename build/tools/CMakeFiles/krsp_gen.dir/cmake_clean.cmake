file(REMOVE_RECURSE
  "CMakeFiles/krsp_gen.dir/krsp_gen.cc.o"
  "CMakeFiles/krsp_gen.dir/krsp_gen.cc.o.d"
  "krsp_gen"
  "krsp_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krsp_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

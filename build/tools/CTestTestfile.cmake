# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[tools_smoke]=] "/usr/bin/cmake" "-DKRSP_GEN=/root/repo/build/tools/krsp_gen" "-DKRSP_SOLVE=/root/repo/build/tools/krsp_solve" "-DWORK_DIR=/root/repo/build/tools" "-P" "/root/repo/tools/smoke_test.cmake")
set_tests_properties([=[tools_smoke]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")

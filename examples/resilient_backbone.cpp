// Failure-resilience scenario (paper §1: "networks are expected to be ...
// resilient to some degree of failures").
//
// Provision k disjoint QoS paths on a grid backbone, then inject random
// single-link failures. Because the paths are edge-disjoint, any single
// failure takes down at most one path; the example measures surviving
// bandwidth and re-provisions on the degraded topology.
//
//   $ ./resilient_backbone [--width=6] [--height=4] [--failures=8] [--seed=17]
#include <iostream>
#include <unordered_set>

#include "api/krsp.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/table.h"

using namespace krsp;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int width = static_cast<int>(cli.get_int("width", 6));
  const int height = static_cast<int>(cli.get_int("height", 4));
  const int failures = static_cast<int>(cli.get_int("failures", 8));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 17)));
  cli.reject_unknown();

  api::Instance inst;
  inst.graph = gen::grid(rng, width, height);
  // Corner vertices only have degree 2; pick mid-edge sites so k = 3
  // disjoint paths exist.
  inst.s = static_cast<graph::VertexId>((height / 2) * width);
  inst.t = static_cast<graph::VertexId>((height / 2) * width + width - 1);
  inst.k = 3;
  const auto min_delay = api::min_possible_delay(inst);
  KRSP_CHECK(min_delay.has_value());
  inst.delay_bound = *min_delay * 3 / 2;

  std::cout << "resilient backbone: " << width << "x" << height
            << " grid, k = " << inst.k << ", delay budget "
            << inst.delay_bound << "\n\n";

  api::SolveRequest request;
  request.instance = inst;
  const auto provisioned = api::Solver::solve(request);
  KRSP_CHECK(provisioned.has_paths());
  std::cout << "provisioned " << inst.k << " disjoint paths: cost "
            << provisioned.cost << ", delay " << provisioned.delay << "\n\n";

  // Which provisioned path uses each edge?
  std::vector<int> path_of(inst.graph.num_edges(), -1);
  for (std::size_t i = 0; i < provisioned.paths.paths().size(); ++i)
    for (const graph::EdgeId e : provisioned.paths.paths()[i])
      path_of[e] = static_cast<int>(i);

  util::Table table({"failure #", "failed edge", "paths lost",
                     "surviving paths", "repair", "cost after"});
  std::vector<graph::EdgeId> failed;
  std::unordered_set<graph::EdgeId> failed_set;
  int still_up = static_cast<int>(provisioned.paths.paths().size());
  std::unordered_set<int> dead_paths;
  api::PathSet active = provisioned.paths;  // the installed paths
  bool carrying = true;
  for (int f = 1; f <= failures; ++f) {
    // Fail a random not-yet-failed edge.
    graph::EdgeId e;
    do {
      e = static_cast<graph::EdgeId>(
          rng.uniform_int(0, inst.graph.num_edges() - 1));
    } while (failed_set.count(e));
    failed.push_back(e);
    failed_set.insert(e);
    if (path_of[e] >= 0 && !dead_paths.count(path_of[e])) {
      dead_paths.insert(path_of[e]);
      --still_up;
    }

    // Incremental repair via the library's repair API (local replacement
    // first, full re-solve only when needed).
    std::string status = "network down";
    std::string cost_cell = "-";
    if (carrying) {
      const auto repair = api::repair_after_failures(inst, active, failed);
      switch (repair.outcome) {
        case api::RepairOutcome::kUntouched:
          status = "untouched";
          break;
        case api::RepairOutcome::kLocalRepair:
          status = "local repair (1 path swapped)";
          break;
        case api::RepairOutcome::kFullResolve:
          status = "full re-provision";
          break;
        case api::RepairOutcome::kInfeasible:
          status = "infeasible at SLA";
          carrying = false;
          break;
      }
      if (carrying) {
        active = repair.paths;
        cost_cell = std::to_string(repair.cost);
        // Refresh path ownership for the "paths lost" narration.
        path_of.assign(inst.graph.num_edges(), -1);
        for (std::size_t i = 0; i < active.paths().size(); ++i)
          for (const graph::EdgeId pe : active.paths()[i])
            path_of[pe] = static_cast<int>(i);
        dead_paths.clear();
        still_up = static_cast<int>(active.paths().size());
      }
    }
    const auto& edge = inst.graph.edge(e);
    table.row()
        .cell(f)
        .cell(std::to_string(edge.from) + "->" + std::to_string(edge.to))
        .cell(static_cast<int>(dead_paths.size()))
        .cell(still_up)
        .cell(status)
        .cell(cost_cell);
  }
  table.print();
  std::cout << "\nDisjointness means each failure kills at most one "
               "provisioned path; the repair API swaps just that path "
               "(local repair) until failures force a full re-provision "
               "or cut connectivity below k.\n";
  return 0;
}

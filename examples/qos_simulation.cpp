// Packet-level validation of kRSP provisioning.
//
// The paper's premise: provisioning k disjoint paths under a total delay
// budget, then routing traffic classes by urgency, delivers QoS that
// single-criterion provisioning cannot. This example *simulates* it:
//  1. provision k disjoint paths with the kRSP solver (delay-aware) and,
//     for contrast, with the min-cost flow (delay-blind);
//  2. map traffic classes (voice / video / bulk) onto the paths by urgency;
//  3. run the packet simulator and compare per-class p95 latency against
//     each class's SLA.
//
//   $ ./qos_simulation [--n=24] [--seed=29] [--horizon=200000]
#include <iostream>

#include "baselines/flow_only.h"
#include "api/krsp.h"
#include "graph/generators.h"
#include "sim/network_sim.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using namespace krsp;

struct ClassSpec {
  const char* name;
  double mean_gap;
  bool poisson;
};

void simulate_and_report(const char* title, const api::Instance& inst,
                         const api::PathSet& paths, sim::Time horizon) {
  // Per-class SLA: per-path share of the budget, doubled down the ladder.
  // SLAs: a per-path share of the static budget plus a forwarding
  // allowance (serialization costs ~1 tick per hop beyond the propagation
  // delays the static model prices).
  const auto forwarding_allowance =
      static_cast<graph::Delay>(inst.graph.num_vertices() / 2);
  const graph::Delay base_sla =
      inst.delay_bound / std::max(1, static_cast<int>(paths.paths().size()));
  std::vector<api::TrafficClass> classes = {
      {"voice", base_sla + forwarding_allowance},
      {"video", base_sla * 2 + forwarding_allowance},
      {"bulk", inst.delay_bound + forwarding_allowance},
  };
  classes.resize(std::min(classes.size(), paths.paths().size()));
  const auto assignment = api::assign_by_urgency(inst.graph, paths, classes);

  const ClassSpec traffic[] = {
      {"voice", 8.0, false},   // steady CBR
      {"video", 6.0, true},    // bursty
      {"bulk", 4.0, true},     // heavy + bursty
  };

  sim::LinkParams params;
  params.transmission_time = 1;
  params.queue_capacity = 128;
  sim::NetworkSimulator simulator(inst.graph, params, 12345);
  for (std::size_t i = 0; i < assignment.assignments.size(); ++i) {
    const auto& a = assignment.assignments[i];
    sim::FlowSpec flow;
    flow.name = a.class_name;
    flow.route = paths.paths()[a.path_index];
    flow.mean_gap = traffic[i].mean_gap;
    flow.poisson = traffic[i].poisson;
    flow.packet_budget = horizon / static_cast<sim::Time>(traffic[i].mean_gap);
    simulator.add_flow(std::move(flow));
  }
  const auto result = simulator.run(horizon);

  std::cout << "\n== " << title << " (total static delay "
            << paths.total_delay(inst.graph) << ", budget "
            << inst.delay_bound << ") ==\n";
  util::Table table({"class", "SLA", "delivered", "dropped", "mean latency",
                     "p95 latency", "SLA met (p95)"});
  for (std::size_t i = 0; i < result.flows.size(); ++i) {
    const auto& f = result.flows[i];
    const double p95 = f.latency.count() ? f.latency.percentile(95) : 0.0;
    table.row()
        .cell(f.name)
        .cell(classes[i].max_delay)
        .cell(f.delivered)
        .cell(f.dropped)
        .cell_fp(f.latency.count() ? f.latency.mean() : 0.0, 1)
        .cell_fp(p95, 1)
        .cell(p95 <= static_cast<double>(classes[i].max_delay) ? "yes"
                                                               : "NO");
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("n", 24));
  const auto horizon = static_cast<sim::Time>(cli.get_int("horizon", 200000));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 29)));
  cli.reject_unknown();

  api::RandomInstanceOptions opt;
  opt.k = 3;
  opt.delay_slack = 0.15;
  const auto inst = api::make_random_instance(rng, opt, [&](util::Rng& r) {
    gen::WaxmanParams p;
    p.beta = 0.8;
    p.delay_scale = 25;
    return gen::waxman(r, n, p);
  });
  if (!inst) {
    std::cout << "could not draw a 3-connected instance\n";
    return 1;
  }
  std::cout << "instance: " << inst->summary() << "\n";

  api::SolveRequest request;
  request.instance = *inst;
  const auto krsp_solution = api::Solver::solve(request);
  if (!krsp_solution.has_paths()) {
    std::cout << "kRSP provisioning failed\n";
    return 1;
  }
  simulate_and_report("kRSP provisioning (delay-aware)", *inst,
                      krsp_solution.paths, horizon);

  const auto blind = baselines::min_cost_flow_baseline(*inst);
  if (blind.has_paths())
    simulate_and_report("min-cost provisioning (delay-blind)", *inst,
                        blind.paths, horizon);

  std::cout << "\nExpected shape: the delay-aware provisioning meets the "
               "strict SLAs its budget implies; the delay-blind one "
               "routinely misses them on the strict classes.\n";
  return 0;
}

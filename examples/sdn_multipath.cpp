// SDN controller scenario (Section 1.1 of the paper).
//
// An SDN controller has a global view of an ISP-like topology and installs
// k disjoint QoS paths between two customer sites. Packets are then routed
// by urgency: urgent traffic on the lowest-delay installed path, deferrable
// traffic on the others — exactly the deployment story that motivates the
// kRSP relaxation (total-delay budget instead of per-path bounds).
//
//   $ ./sdn_multipath [--k=3] [--slack=0.4] [--seed=11]
#include <algorithm>
#include <iostream>

#include "baselines/larac_k.h"
#include "api/krsp.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace krsp;
  const util::Cli cli(argc, argv);
  const int k = static_cast<int>(cli.get_int("k", 3));
  const double slack = cli.get_double("slack", 0.4);
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 11)));
  cli.reject_unknown();

  // Controller view: two-level ISP topology; dual-homed access regions.
  gen::IspParams params;
  params.core_size = 10;
  params.region_count = 5;
  params.region_size = 4;
  api::SolveRequest request;
  api::Instance& instance = request.instance;
  instance.graph = gen::isp_like(rng, params);
  instance.s = params.core_size;  // a host in region 0
  instance.t =
      static_cast<graph::VertexId>(instance.graph.num_vertices() - 1);
  instance.k = k;

  // Regions are dual-homed, so a region host supports at most 2 disjoint
  // paths; a real controller degrades the request rather than failing.
  auto min_delay = api::min_possible_delay(instance);
  while (!min_delay && instance.k > 1) {
    std::cout << "(k = " << instance.k
              << " unsupported between these sites; degrading)\n";
    --instance.k;
    min_delay = api::min_possible_delay(instance);
  }
  if (!min_delay) {
    std::cout << "sites are not connected\n";
    return 1;
  }
  // SLA: delay budget between the tightest possible and double it.
  instance.delay_bound =
      *min_delay + static_cast<graph::Delay>(
                       slack * static_cast<double>(*min_delay));

  std::cout << "SDN multipath provisioning on " << instance.graph.summary()
            << "\n  sites: " << instance.s << " -> " << instance.t
            << ", k = " << instance.k << ", SLA delay budget = "
            << instance.delay_bound << " (tightest possible " << *min_delay
            << ")\n\n";

  const auto solution = api::Solver::solve(request);
  if (!solution.has_paths()) {
    std::cout << "provisioning failed (status "
              << static_cast<int>(solution.status) << ")\n";
    return 1;
  }

  // Install paths and map traffic classes onto them by urgency — the
  // deployment step the paper uses to justify the total-delay relaxation
  // (core/priority_routing.h).
  std::vector<api::TrafficClass> classes = {
      {"urgent (voice)", instance.delay_bound / instance.k},
      {"interactive (video)", instance.delay_bound * 2 / instance.k},
      {"bulk (backup)", instance.delay_bound},
  };
  classes.resize(std::min<std::size_t>(classes.size(), solution.paths.paths().size()));
  const auto report =
      api::assign_by_urgency(instance.graph, solution.paths, classes);

  util::Table table({"priority class", "SLA (per-path delay)",
                     "path (vertices)", "cost", "delay", "SLA met"});
  for (std::size_t i = 0; i < report.assignments.size(); ++i) {
    const auto& a = report.assignments[i];
    const auto& path = solution.paths.paths()[a.path_index];
    std::string route = std::to_string(instance.s);
    for (const graph::EdgeId e : path)
      route += "-" + std::to_string(instance.graph.edge(e).to);
    table.row()
        .cell(a.class_name)
        .cell(classes[i].max_delay)
        .cell(route)
        .cell(graph::path_cost(instance.graph, path))
        .cell(a.path_delay)
        .cell(a.satisfied ? "yes" : "NO");
  }
  table.print();

  std::cout << "\ntotal cost " << solution.cost << ", total delay "
            << solution.delay << " <= " << instance.delay_bound << "\n";

  // Compare against the plain Lagrangian heuristic the controller might
  // have shipped instead.
  const auto larac = baselines::larac_k(instance);
  if (larac.has_paths()) {
    std::cout << "LARAC-k heuristic would pay cost " << larac.cost
              << " (paper's algorithm: " << solution.cost << ")\n";
  }
  return 0;
}

// QoS planning workbench: the library's extension APIs in one scenario.
//
// A planner explores a Waxman network before committing to a route budget:
//  1. the exact single-path (cost, delay) Pareto frontier — what trade-offs
//     exist at all (paths/pareto.h);
//  2. kRSP at a chosen budget, edge-disjoint vs vertex-disjoint — link vs
//     router survivability (core/vertex_disjoint.h);
//  3. kBCP — "can I have both budgets?", with violation factors when not
//     (core/kbcp.h, the paper's §1.2 companion problem).
//
//   $ ./qos_planner [--n=24] [--k=2] [--seed=21]
#include <iostream>

#include "api/krsp.h"
#include "graph/generators.h"
#include "paths/pareto.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace krsp;
  const util::Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("n", 24));
  const int k = static_cast<int>(cli.get_int("k", 2));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 21)));
  cli.reject_unknown();

  gen::WaxmanParams params;
  params.beta = 0.8;
  params.delay_scale = 30;
  params.cost_max = 15;
  api::Instance inst;
  inst.graph = gen::waxman(rng, n, params);
  inst.s = 0;
  inst.t = static_cast<graph::VertexId>(n - 1);
  inst.k = k;

  std::cout << "QoS planner on " << inst.graph.summary() << ", sites "
            << inst.s << " -> " << inst.t << "\n\n";

  // 1. Single-path Pareto frontier.
  const auto frontier = paths::pareto_frontier(inst.graph, inst.s, inst.t);
  if (frontier.empty()) {
    std::cout << "sites are not connected\n";
    return 1;
  }
  std::cout << "1. single-path (cost, delay) Pareto frontier ("
            << frontier.size() << " points):\n";
  util::Table tf({"cost", "delay", "hops"});
  for (const auto& p : frontier)
    tf.row().cell(p.cost).cell(p.delay).cell(p.edges.size());
  tf.print();

  // 2. kRSP at a mid-frontier budget: edge- vs vertex-disjoint.
  const auto min_delay = api::min_possible_delay(inst);
  if (!min_delay) {
    std::cout << "\nfewer than " << k << " disjoint paths exist; stopping\n";
    return 0;
  }
  inst.delay_bound = *min_delay * 3 / 2;
  std::cout << "\n2. " << k << " disjoint paths, total delay budget "
            << inst.delay_bound << ":\n";
  util::Table tk({"disjointness", "status", "total cost", "total delay"});
  api::SolveRequest request;
  request.instance = inst;
  const auto edge_sol = api::Solver::solve(request);
  tk.row()
      .cell("edge (link failures)")
      .cell(edge_sol.has_paths() ? "ok" : "infeasible")
      .cell(edge_sol.has_paths() ? std::to_string(edge_sol.cost) : "-")
      .cell(edge_sol.has_paths() ? std::to_string(edge_sol.delay) : "-");
  const auto vertex_sol = api::solve_vertex_disjoint(inst);
  tk.row()
      .cell("vertex (router failures)")
      .cell(vertex_sol.has_paths() ? "ok" : "infeasible")
      .cell(vertex_sol.has_paths() ? std::to_string(vertex_sol.cost) : "-")
      .cell(vertex_sol.has_paths() ? std::to_string(vertex_sol.delay) : "-");
  tk.print();

  // 3. kBCP: sweep cost budgets at the fixed delay budget.
  if (!edge_sol.has_paths()) return 0;
  std::cout << "\n3. kBCP feasibility sweep (delay budget "
            << inst.delay_bound << "):\n";
  util::Table tb({"cost budget", "verdict", "cost (factor)",
                  "delay (factor)"});
  for (const auto frac : {50, 80, 100, 150}) {
    api::KbcpInstance kbcp;
    kbcp.graph = inst.graph;
    kbcp.s = inst.s;
    kbcp.t = inst.t;
    kbcp.k = inst.k;
    kbcp.delay_bound = inst.delay_bound;
    kbcp.cost_bound = edge_sol.cost * frac / 100;
    const auto r = api::solve_kbcp(kbcp);
    std::string verdict;
    switch (r.status) {
      case api::KbcpStatus::kFeasible:
        verdict = "both budgets met";
        break;
      case api::KbcpStatus::kViolates:
        verdict = "violates (best effort)";
        break;
      default:
        verdict = "failed";
    }
    std::ostringstream cost_cell, delay_cell;
    cost_cell << r.cost << " (" << std::fixed << std::setprecision(2)
              << r.cost_factor << ")";
    delay_cell << r.delay << " (" << std::fixed << std::setprecision(2)
               << r.delay_factor << ")";
    tb.row()
        .cell(kbcp.cost_bound)
        .cell(verdict)
        .cell(cost_cell.str())
        .cell(delay_cell.str());
  }
  tb.print();
  std::cout << "\nTight cost budgets force violations whose factors the "
               "planner can trade against provisioning more budget.\n";
  return 0;
}

// Video streaming scenario (paper §1: "a single link might not provide
// adequate bandwidth, and multiple disjoint QoS paths are often necessary").
//
// A streaming source needs aggregate bandwidth that no single path
// provides, so the stream is striped over k disjoint paths on a Waxman
// random geometric network (delay = propagation distance). The example
// builds one SolveRequest per stripe count and solves them as a single
// batch on the concurrent engine, then shows the cost/delay frontier the
// operator chooses from.
//
//   $ ./video_streaming [--n=40] [--seed=13]
#include <iostream>

#include "api/krsp.h"
#include "flow/dinic.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace krsp;
  const util::Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("n", 40));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 13)));
  cli.reject_unknown();

  gen::WaxmanParams params;
  params.alpha = 0.5;
  params.beta = 0.7;
  params.delay_scale = 50;
  params.cost_max = 10;
  api::Instance base;
  base.graph = gen::waxman(rng, n, params);
  base.s = 0;
  base.t = static_cast<graph::VertexId>(n - 1);

  const int max_k = flow::max_edge_disjoint_paths(base.graph, base.s, base.t);
  std::cout << "video striping on " << base.graph.summary()
            << " — the source-sink pair supports up to " << max_k
            << " disjoint paths\n\n";
  if (max_k < 1) return 1;

  // One request per stripe count; the whole sweep is a single batch.
  std::vector<api::SolveRequest> sweep;
  for (int k = 1; k <= std::min(max_k, 4); ++k) {
    api::SolveRequest req;
    req.instance = base;
    req.instance.k = k;
    const auto min_delay = api::min_possible_delay(req.instance);
    if (!min_delay) continue;
    req.instance.delay_bound = *min_delay * 4 / 3;
    req.tag = std::to_string(k);
    sweep.push_back(std::move(req));
  }
  api::Engine engine;
  const auto results = engine.solve_batch(sweep);

  // Per-path stream chunk needs ~2.5 Mbps; sweep how many stripes we buy.
  util::Table table({"k (stripes)", "aggregate bandwidth", "delay budget",
                     "status", "total cost", "total delay",
                     "worst path delay"});
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto& inst = sweep[i].instance;
    const auto& res = results[i];
    const int k = inst.k;
    graph::Delay worst = 0;
    if (res.has_paths())
      for (const auto& p : res.paths.paths())
        worst = std::max(worst, graph::path_delay(inst.graph, p));
    table.row()
        .cell(k)
        .cell(std::to_string(k * 25 / 10) + "." + std::to_string(k * 25 % 10) +
              " Mbps")
        .cell(inst.delay_bound)
        .cell(res.status == api::SolveStatus::kOptimal ? "optimal"
              : res.has_paths()                        ? "approx"
                                                       : "infeasible")
        .cell(res.has_paths() ? std::to_string(res.cost) : "-")
        .cell(res.has_paths() ? std::to_string(res.delay) : "-")
        .cell(res.has_paths() ? std::to_string(worst) : "-");
  }
  table.print();
  std::cout << "\nHigher k buys bandwidth and resilience at higher total "
               "cost; the delay budget keeps every configuration within "
               "4/3 of the tightest achievable total delay.\n";
  return 0;
}

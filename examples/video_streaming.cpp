// Video streaming scenario (paper §1: "a single link might not provide
// adequate bandwidth, and multiple disjoint QoS paths are often necessary").
//
// A streaming source needs aggregate bandwidth that no single path
// provides, so the stream is striped over k disjoint paths on a Waxman
// random geometric network (delay = propagation distance). The example
// sweeps k and shows the cost/delay frontier the operator chooses from.
//
//   $ ./video_streaming [--n=40] [--seed=13]
#include <iostream>

#include "core/solver.h"
#include "flow/dinic.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace krsp;
  const util::Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("n", 40));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 13)));
  cli.reject_unknown();

  gen::WaxmanParams params;
  params.alpha = 0.5;
  params.beta = 0.7;
  params.delay_scale = 50;
  params.cost_max = 10;
  core::Instance base;
  base.graph = gen::waxman(rng, n, params);
  base.s = 0;
  base.t = static_cast<graph::VertexId>(n - 1);

  const int max_k = flow::max_edge_disjoint_paths(base.graph, base.s, base.t);
  std::cout << "video striping on " << base.graph.summary()
            << " — the source-sink pair supports up to " << max_k
            << " disjoint paths\n\n";
  if (max_k < 1) return 1;

  // Per-path stream chunk needs ~2.5 Mbps; sweep how many stripes we buy.
  util::Table table({"k (stripes)", "aggregate bandwidth", "delay budget",
                     "status", "total cost", "total delay",
                     "worst path delay"});
  for (int k = 1; k <= std::min(max_k, 4); ++k) {
    core::Instance inst = base;
    inst.k = k;
    const auto min_delay = core::min_possible_delay(inst);
    if (!min_delay) continue;
    inst.delay_bound = *min_delay * 4 / 3;

    const auto s = core::KrspSolver().solve(inst);
    graph::Delay worst = 0;
    if (s.has_paths())
      for (const auto& p : s.paths.paths())
        worst = std::max(worst, graph::path_delay(inst.graph, p));
    table.row()
        .cell(k)
        .cell(std::to_string(k * 25 / 10) + "." + std::to_string(k * 25 % 10) +
              " Mbps")
        .cell(inst.delay_bound)
        .cell(s.status == core::SolveStatus::kOptimal ? "optimal"
              : s.has_paths()                         ? "approx"
                                                      : "infeasible")
        .cell(s.has_paths() ? std::to_string(s.cost) : "-")
        .cell(s.has_paths() ? std::to_string(s.delay) : "-")
        .cell(s.has_paths() ? std::to_string(worst) : "-");
  }
  table.print();
  std::cout << "\nHigher k buys bandwidth and resilience at higher total "
               "cost; the delay budget keeps every configuration within "
               "4/3 of the tightest achievable total delay.\n";
  return 0;
}

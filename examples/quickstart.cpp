// Quickstart: build a graph, solve a kRSP instance, inspect the solution.
//
//   $ ./quickstart
//
// Walks through the whole public API surface in ~60 lines: Digraph
// construction, Instance setup, KrspSolver modes, and Solution/telemetry
// inspection.
#include <iostream>

#include "core/solver.h"

int main() {
  using namespace krsp;

  // A small network: two terminals, three candidate routes with different
  // cost/delay trade-offs.
  //
  //        1 ---------.           cost/delay per arc
  //      .   .         .
  //    0      3 ------- 5          s = 0, t = 5
  //      .   .         .
  //        2 ---------'
  graph::Digraph g(6);
  g.add_edge(0, 1, /*cost=*/1, /*delay=*/6);
  g.add_edge(1, 5, 1, 6);   // cheap but slow route
  g.add_edge(0, 2, 2, 3);
  g.add_edge(2, 5, 2, 3);   // balanced route
  g.add_edge(0, 3, 6, 1);
  g.add_edge(3, 5, 6, 1);   // fast but expensive route
  g.add_edge(1, 3, 1, 1);   // cross links give the solver room to rewire
  g.add_edge(2, 3, 1, 1);

  core::Instance instance;
  instance.graph = std::move(g);
  instance.s = 0;
  instance.t = 5;
  instance.k = 2;              // two edge-disjoint paths
  instance.delay_bound = 14;   // total delay budget over both paths

  std::cout << "instance: " << instance.summary() << "\n";

  // The default solver is the polynomial (1+eps, 2+eps) mode of Theorem 4.
  core::SolverOptions options;
  options.mode = core::SolverOptions::Mode::kScaled;
  options.eps1 = options.eps2 = 0.25;
  const core::KrspSolver solver(options);

  const core::Solution solution = solver.solve(instance);
  switch (solution.status) {
    case core::SolveStatus::kOptimal:
      std::cout << "solved to proven optimality\n";
      break;
    case core::SolveStatus::kApprox:
      std::cout << "solved within the (1+eps, 2+eps) guarantee\n";
      break;
    case core::SolveStatus::kInfeasible:
      std::cout << "no k disjoint paths meet the delay bound\n";
      return 1;
    case core::SolveStatus::kNoKDisjointPaths:
      std::cout << "the graph has fewer than k disjoint s-t paths\n";
      return 1;
    default:
      std::cout << "solver failed\n";
      return 1;
  }

  std::cout << "total cost  = " << solution.cost << "\n"
            << "total delay = " << solution.delay << " (budget "
            << instance.delay_bound << ")\n";
  for (std::size_t i = 0; i < solution.paths.paths().size(); ++i) {
    const auto& path = solution.paths.paths()[i];
    std::cout << "path " << i + 1 << ":";
    graph::VertexId at = instance.s;
    std::cout << " " << at;
    for (const graph::EdgeId e : path) {
      at = instance.graph.edge(e).to;
      std::cout << " -> " << at;
    }
    std::cout << "  (cost " << graph::path_cost(instance.graph, path)
              << ", delay " << graph::path_delay(instance.graph, path)
              << ")\n";
  }

  std::cout << "\ntelemetry: phase-1 min-cost-flow calls = "
            << solution.telemetry.phase1_mcmf_calls
            << ", cancellation iterations = "
            << solution.telemetry.cancel.iterations
            << ", certified cost lower bound = "
            << solution.telemetry.cost_lower_bound.to_double() << "\n";
  return 0;
}

// Quickstart: build a graph, solve a kRSP instance, inspect the solution.
//
//   $ ./quickstart
//
// Walks through the whole public API surface in ~60 lines: Digraph
// construction, SolveRequest setup via the krsp::api facade, and
// SolveResult/telemetry inspection.
#include <iostream>

#include "api/krsp.h"

int main() {
  using namespace krsp;

  // A small network: two terminals, three candidate routes with different
  // cost/delay trade-offs.
  //
  //        1 ---------.           cost/delay per arc
  //      .   .         .
  //    0      3 ------- 5          s = 0, t = 5
  //      .   .         .
  //        2 ---------'
  graph::Digraph g(6);
  g.add_edge(0, 1, /*cost=*/1, /*delay=*/6);
  g.add_edge(1, 5, 1, 6);   // cheap but slow route
  g.add_edge(0, 2, 2, 3);
  g.add_edge(2, 5, 2, 3);   // balanced route
  g.add_edge(0, 3, 6, 1);
  g.add_edge(3, 5, 6, 1);   // fast but expensive route
  g.add_edge(1, 3, 1, 1);   // cross links give the solver room to rewire
  g.add_edge(2, 3, 1, 1);

  // A request bundles the instance with every knob that affects the answer.
  // The default mode is the polynomial (1+eps, 2+eps) mode of Theorem 4.
  api::SolveRequest request;
  request.instance.graph = std::move(g);
  request.instance.s = 0;
  request.instance.t = 5;
  request.instance.k = 2;             // two edge-disjoint paths
  request.instance.delay_bound = 14;  // total delay budget over both paths
  request.mode = api::Mode::kScaled;
  request.eps1 = request.eps2 = 0.25;

  std::cout << "instance: " << request.instance.summary() << "\n";

  const api::SolveResult result = api::Solver::solve(request);
  switch (result.status) {
    case api::SolveStatus::kOptimal:
      std::cout << "solved to proven optimality\n";
      break;
    case api::SolveStatus::kApprox:
      std::cout << "solved within the (1+eps, 2+eps) guarantee\n";
      break;
    case api::SolveStatus::kInfeasible:
      std::cout << "no k disjoint paths meet the delay bound\n";
      return 1;
    case api::SolveStatus::kNoKDisjointPaths:
      std::cout << "the graph has fewer than k disjoint s-t paths\n";
      return 1;
    default:
      std::cout << "solver failed: " << result.error << "\n";
      return 1;
  }

  const auto& instance = request.instance;
  std::cout << "total cost  = " << result.cost << "\n"
            << "total delay = " << result.delay << " (budget "
            << instance.delay_bound << ")\n";
  for (std::size_t i = 0; i < result.paths.paths().size(); ++i) {
    const auto& path = result.paths.paths()[i];
    std::cout << "path " << i + 1 << ":";
    graph::VertexId at = instance.s;
    std::cout << " " << at;
    for (const graph::EdgeId e : path) {
      at = instance.graph.edge(e).to;
      std::cout << " -> " << at;
    }
    std::cout << "  (cost " << graph::path_cost(instance.graph, path)
              << ", delay " << graph::path_delay(instance.graph, path)
              << ")\n";
  }

  std::cout << "\ntelemetry: phase-1 min-cost-flow calls = "
            << result.telemetry.phase1_mcmf_calls
            << ", cancellation iterations = "
            << result.telemetry.cancel.iterations
            << ", certified cost lower bound = "
            << result.telemetry.cost_lower_bound.to_double() << "\n";
  return 0;
}

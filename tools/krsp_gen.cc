// Command-line instance generator: writes a kRSP instance drawn from any
// of the library's workload families, as text (.kri, core/io.h) or as a
// zero-copy binary container (.krspb, store/format.h) chosen by the
// --out suffix.
//
//   $ krsp_gen --family=waxman --n=30 --k=2 --slack=0.3 --seed=7
//              --out=instance.kri
//   $ krsp_gen --family=ba --n=4000 --attach=2 --k=2 --out=scalefree.krspb
//
// Families: er, waxman, grid, layered, isp, ba, chains.
//   --attach        (ba)  preferential-attachment arcs per new vertex
//   --core, --regions, --region-size  (isp)  topology sizing
#include <cmath>
#include <iostream>

#include "core/io.h"
#include "graph/generators.h"
#include "store/container.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace krsp;
  const util::Cli cli(argc, argv);
  const std::string family = cli.get_string("family", "er");
  const int n = static_cast<int>(cli.get_int("n", 20));
  const int k = static_cast<int>(cli.get_int("k", 2));
  const double slack = cli.get_double("slack", 0.3);
  const int attach = static_cast<int>(cli.get_int("attach", 2));
  const int core = static_cast<int>(cli.get_int("core", 8));
  const int regions = static_cast<int>(cli.get_int("regions", 4));
  const int region_size = static_cast<int>(cli.get_int("region-size", 5));
  const std::string out = cli.get_string("out", "instance.kri");
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));
  cli.reject_unknown();

  core::RandomInstanceOptions opt;
  opt.k = k;
  opt.delay_slack = slack;
  opt.max_attempts = 256;

  const auto draw = [&](util::Rng& r) -> graph::Digraph {
    if (family == "er") return gen::erdos_renyi(r, n, std::min(0.9, 5.0 / n));
    if (family == "waxman") {
      gen::WaxmanParams p;
      p.beta = 0.7;
      return gen::waxman(r, n, p);
    }
    if (family == "grid") {
      const int side = std::max(2, static_cast<int>(std::sqrt(n)));
      return gen::grid(r, side, side);
    }
    if (family == "layered")
      return gen::layered_dag(r, std::max(2, n / 6), 5, 0.4, k);
    if (family == "isp") {
      gen::IspParams p;
      p.core_size = core;
      p.region_count = regions;
      p.region_size = region_size;
      return gen::isp_like(r, p);
    }
    if (family == "ba") return gen::barabasi_albert(r, n, attach);
    if (family == "chains") return gen::tradeoff_chains(r, k, 4, 8, 6);
    KRSP_CHECK_MSG(false, "unknown family: " << family);
  };

  const auto inst = core::make_random_instance(rng, opt, draw);
  if (!inst) {
    std::cerr << "could not draw a feasible instance (family=" << family
              << ", n=" << n << ", k=" << k << ")\n";
    return 1;
  }
  const bool binary = out.size() >= 6 && out.ends_with(".krspb");
  if (binary) {
    store::CsrContainer::write_file(out, *inst);
  } else {
    core::write_instance_file(out, *inst);
  }
  std::cout << "wrote " << out << (binary ? " (container)" : "") << ": "
            << inst->summary() << "\n";
  return 0;
}

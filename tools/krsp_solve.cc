// Command-line kRSP solver: reads an instance file (api re-export of the
// core/io.h format), solves it through the krsp::api facade, prints a
// human-readable summary, and optionally writes the path set.
//
//   $ krsp_solve --instance=instance.kri [--mode=scaled|exact|phase1]
//                [--eps1=0.25] [--eps2=0.25] [--deadline=0.5]
//                [--guess=binary|doubling] [--out=solution.krp]
//                [--trace-out=trace.json] [--verbose]
//
// --eps remains as a back-compat alias that sets both eps1 and eps2;
// explicit --eps1/--eps2 win over it. --trace-out enables the obs tracer
// and writes the solve's span timeline (phase1, mcmf, rsp_oracle,
// cycle_cancel_round, anchor_dp_batch) as Chrome trace-event JSON for
// chrome://tracing / ui.perfetto.dev.
#include <fstream>
#include <iostream>

#include "api/krsp.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace krsp;
  const util::Cli cli(argc, argv);
  const std::string path = cli.get_string("instance", "");
  const std::string mode = cli.get_string("mode", "scaled");
  const double eps = cli.get_double("eps", 0.25);  // back-compat alias
  const double eps1 = cli.get_double("eps1", eps);
  const double eps2 = cli.get_double("eps2", eps);
  const double deadline = cli.get_double("deadline", 0.0);
  const std::string guess = cli.get_string("guess", "binary");
  const std::string out = cli.get_string("out", "");
  const std::string trace_out = cli.get_string("trace-out", "");
  const bool verbose = cli.get_bool("verbose", false);
  cli.reject_unknown();

  if (path.empty()) {
    std::cerr << "usage: krsp_solve --instance=<file> [--mode=scaled|exact|"
                 "phase1] [--eps1=0.25] [--eps2=0.25] [--eps=0.25] "
                 "[--deadline=<seconds>] [--guess=binary|doubling] "
                 "[--out=<file>] [--trace-out=<file>] [--verbose]\n";
    return 2;
  }
  if (!trace_out.empty()) obs::Tracer::global().enable();

  api::SolveRequest request;
  request.instance = api::read_instance_file(path);
  std::cout << "instance: " << request.instance.summary() << "\n";

  if (mode == "scaled") {
    request.mode = api::Mode::kScaled;
  } else if (mode == "exact") {
    request.mode = api::Mode::kExactWeights;
  } else if (mode == "phase1") {
    request.mode = api::Mode::kPhase1Only;
  } else {
    std::cerr << "unknown --mode: " << mode << "\n";
    return 2;
  }
  request.eps1 = eps1;
  request.eps2 = eps2;
  request.deadline_seconds = deadline;
  if (guess == "binary") {
    request.guess = api::GuessStrategy::kBinarySearch;
  } else if (guess == "doubling") {
    request.guess = api::GuessStrategy::kDoubling;
  } else {
    std::cerr << "unknown --guess: " << guess << "\n";
    return 2;
  }

  const auto result = api::Solver::solve(request);
  switch (result.status) {
    case api::SolveStatus::kOptimal:
      std::cout << "status: optimal\n";
      break;
    case api::SolveStatus::kApprox:
      std::cout << "status: approx (guarantee of mode '" << mode << "')\n";
      break;
    case api::SolveStatus::kApproxDelayOver:
      std::cout << "status: approx, delay over budget (phase-1 mode)\n";
      break;
    case api::SolveStatus::kInfeasible:
      std::cout << "status: infeasible (no k disjoint paths meet D)\n";
      return 1;
    case api::SolveStatus::kNoKDisjointPaths:
      std::cout << "status: fewer than k disjoint s-t paths exist\n";
      return 1;
    case api::SolveStatus::kFailed:
      std::cout << "status: failed (" << result.error << ")\n";
      return 1;
  }
  if (result.degradation() != api::DegradationStep::kNone)
    std::cout << "degradation: "
              << core::degradation_step_name(result.degradation())
              << " (deadline " << deadline << "s expired)\n";

  const auto& inst = request.instance;
  std::cout << "cost: " << result.cost << "\ndelay: " << result.delay
            << " (budget " << inst.delay_bound << ")\n";
  for (std::size_t i = 0; i < result.paths.paths().size(); ++i) {
    const auto& p = result.paths.paths()[i];
    std::cout << "path " << i + 1 << " (cost "
              << graph::path_cost(inst.graph, p) << ", delay "
              << graph::path_delay(inst.graph, p) << "): " << inst.s;
    for (const graph::EdgeId e : p) std::cout << "->" << inst.graph.edge(e).to;
    std::cout << "\n";
  }
  if (verbose) {
    std::cout << "telemetry: wall " << result.telemetry.wall_seconds * 1e3
              << " ms, mcmf calls " << result.telemetry.phase1_mcmf_calls
              << ", lambda* " << result.telemetry.lambda << ", C_LP "
              << result.telemetry.cost_lower_bound << ", cap guess "
              << result.telemetry.cost_guess_used << ", cancellation iters "
              << result.telemetry.cancel.iterations << "\n";
  }
  if (!out.empty()) {
    std::ofstream os(out);
    KRSP_CHECK_MSG(os.good(), "cannot open for write: " << out);
    api::write_paths(os, result.paths);
    std::cout << "wrote " << out << "\n";
  }
  if (!trace_out.empty()) {
    std::string trace_error;
    if (!obs::write_chrome_trace_file(trace_out, &trace_error)) {
      std::cerr << "krsp_solve: --trace-out: " << trace_error << "\n";
      return 1;
    }
    std::cout << "wrote trace " << trace_out << "\n";
  }
  return 0;
}

// Command-line kRSP solver: reads an instance file (core/io.h format),
// solves it with the selected mode, prints a human-readable summary, and
// optionally writes the path set.
//
//   $ krsp_solve --instance=instance.kri [--mode=scaled|exact|phase1]
//                [--eps=0.25] [--out=solution.krp] [--verbose]
#include <fstream>
#include <iostream>

#include "core/io.h"
#include "core/solver.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace krsp;
  const util::Cli cli(argc, argv);
  const std::string path = cli.get_string("instance", "");
  const std::string mode = cli.get_string("mode", "scaled");
  const double eps = cli.get_double("eps", 0.25);
  const std::string out = cli.get_string("out", "");
  const bool verbose = cli.get_bool("verbose", false);
  cli.reject_unknown();

  if (path.empty()) {
    std::cerr << "usage: krsp_solve --instance=<file> [--mode=scaled|exact|"
                 "phase1] [--eps=0.25] [--out=<file>] [--verbose]\n";
    return 2;
  }

  const auto inst = core::read_instance_file(path);
  std::cout << "instance: " << inst.summary() << "\n";

  core::SolverOptions options;
  options.eps1 = options.eps2 = eps;
  if (mode == "scaled") {
    options.mode = core::SolverOptions::Mode::kScaled;
  } else if (mode == "exact") {
    options.mode = core::SolverOptions::Mode::kExactWeights;
  } else if (mode == "phase1") {
    options.mode = core::SolverOptions::Mode::kPhase1Only;
  } else {
    std::cerr << "unknown --mode: " << mode << "\n";
    return 2;
  }

  const auto s = core::KrspSolver(options).solve(inst);
  switch (s.status) {
    case core::SolveStatus::kOptimal:
      std::cout << "status: optimal\n";
      break;
    case core::SolveStatus::kApprox:
      std::cout << "status: approx (guarantee of mode '" << mode << "')\n";
      break;
    case core::SolveStatus::kApproxDelayOver:
      std::cout << "status: approx, delay over budget (phase-1 mode)\n";
      break;
    case core::SolveStatus::kInfeasible:
      std::cout << "status: infeasible (no k disjoint paths meet D)\n";
      return 1;
    case core::SolveStatus::kNoKDisjointPaths:
      std::cout << "status: fewer than k disjoint s-t paths exist\n";
      return 1;
    case core::SolveStatus::kFailed:
      std::cout << "status: failed\n";
      return 1;
  }

  std::cout << "cost: " << s.cost << "\ndelay: " << s.delay << " (budget "
            << inst.delay_bound << ")\n";
  for (std::size_t i = 0; i < s.paths.paths().size(); ++i) {
    const auto& p = s.paths.paths()[i];
    std::cout << "path " << i + 1 << " (cost "
              << graph::path_cost(inst.graph, p) << ", delay "
              << graph::path_delay(inst.graph, p) << "): " << inst.s;
    for (const graph::EdgeId e : p) std::cout << "->" << inst.graph.edge(e).to;
    std::cout << "\n";
  }
  if (verbose) {
    std::cout << "telemetry: wall " << s.telemetry.wall_seconds * 1e3
              << " ms, mcmf calls " << s.telemetry.phase1_mcmf_calls
              << ", lambda* " << s.telemetry.lambda << ", C_LP "
              << s.telemetry.cost_lower_bound << ", cap guess "
              << s.telemetry.cost_guess_used << ", cancellation iters "
              << s.telemetry.cancel.iterations << "\n";
  }
  if (!out.empty()) {
    std::ofstream os(out);
    KRSP_CHECK_MSG(os.good(), "cannot open for write: " << out);
    core::write_paths(os, s.paths);
    std::cout << "wrote " << out << "\n";
  }
  return 0;
}

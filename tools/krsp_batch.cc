// Batch front-end for the concurrent solve engine: load one or more
// instance files, fan the requests out over a worker pool, and report
// per-request outcomes plus aggregate throughput.
//
//   $ krsp_batch --instances=a.kri,b.kri [--repeat=4] [--threads=0]
//                [--mode=scaled|exact|phase1] [--eps1=0.25] [--eps2=0.25]
//                [--deadline=0.1] [--guess=binary|doubling]
//                [--no-reuse] [--trace-out=trace.json] [--trace-sample=1]
//                [--quiet]
//
// --trace-out enables the obs tracer for the run and writes every
// worker's span timeline (solve, phase1, mcmf, rsp_oracle,
// cycle_cancel_round, anchor_dp_batch, queue_wait) as Chrome trace-event
// JSON: the per-thread lanes make engine utilization and queueing
// visible at a glance. --trace-sample=N keeps every Nth span per thread.
//
// The request list is the cross product instances × repeat, in file order,
// so results are reproducible: the engine guarantees the same output for
// the same request list regardless of --threads. --no-reuse disables
// per-worker workspace reuse (the E12 ablation; identical results, more
// allocation).
//
// Requests are streamed through Engine::submit() against a bounded queue
// rather than materialized as one solve_batch() call: each result prints
// as soon as it and everything before it have finished, so output order
// matches submission order (ticket order) while solves overlap with
// printing.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "api/krsp.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "util/cli.h"

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> parts;
  std::istringstream is(csv);
  std::string part;
  while (std::getline(is, part, ','))
    if (!part.empty()) parts.push_back(part);
  return parts;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace krsp;
  using Clock = std::chrono::steady_clock;
  const util::Cli cli(argc, argv);
  const std::vector<std::string> files =
      split_csv(cli.get_string("instances", ""));
  const int repeat = cli.get_int("repeat", 1);
  const int threads = cli.get_int("threads", 0);
  const std::string mode = cli.get_string("mode", "scaled");
  const double eps = cli.get_double("eps", 0.25);  // back-compat alias
  const double eps1 = cli.get_double("eps1", eps);
  const double eps2 = cli.get_double("eps2", eps);
  const double deadline = cli.get_double("deadline", 0.0);
  const std::string guess = cli.get_string("guess", "binary");
  const bool no_reuse = cli.get_bool("no-reuse", false);
  const std::string trace_out = cli.get_string("trace-out", "");
  const auto trace_sample = cli.get_int("trace-sample", 1);
  const bool quiet = cli.get_bool("quiet", false);
  cli.reject_unknown();

  if (files.empty() || repeat < 1) {
    std::cerr << "usage: krsp_batch --instances=<a.kri,b.kri,...> "
                 "[--repeat=1] [--threads=0] [--mode=scaled|exact|phase1] "
                 "[--eps1=0.25] [--eps2=0.25] [--eps=0.25] "
                 "[--deadline=<seconds>] [--guess=binary|doubling] "
                 "[--no-reuse] [--trace-out=<file>] [--trace-sample=1] "
                 "[--quiet]\n";
    return 2;
  }
  if (!trace_out.empty()) {
    obs::Tracer::global().set_sample_every(
        static_cast<std::uint32_t>(std::max<std::int64_t>(1, trace_sample)));
    obs::Tracer::global().enable();
  }

  api::Mode api_mode;
  if (mode == "scaled") {
    api_mode = api::Mode::kScaled;
  } else if (mode == "exact") {
    api_mode = api::Mode::kExactWeights;
  } else if (mode == "phase1") {
    api_mode = api::Mode::kPhase1Only;
  } else {
    std::cerr << "unknown --mode: " << mode << "\n";
    return 2;
  }
  api::GuessStrategy api_guess;
  if (guess == "binary") {
    api_guess = api::GuessStrategy::kBinarySearch;
  } else if (guess == "doubling") {
    api_guess = api::GuessStrategy::kDoubling;
  } else {
    std::cerr << "unknown --guess: " << guess << "\n";
    return 2;
  }

  // Load each file once, then replicate requests; instances are value
  // types, so every request stays self-contained.
  std::vector<api::SolveRequest> prototypes;
  prototypes.reserve(files.size());
  for (const std::string& file : files) {
    api::SolveRequest req;
    req.instance = api::read_instance_file(file);
    req.mode = api_mode;
    req.eps1 = eps1;
    req.eps2 = eps2;
    req.guess = api_guess;
    req.deadline_seconds = deadline;
    req.tag = file;
    prototypes.push_back(std::move(req));
  }
  std::vector<api::SolveRequest> batch;
  batch.reserve(prototypes.size() * static_cast<std::size_t>(repeat));
  for (int r = 0; r < repeat; ++r)
    for (const auto& proto : prototypes) {
      batch.push_back(proto);
      batch.back().tag += "#" + std::to_string(r);
    }

  // Bounded queue: submit() blocks once the engine is this far ahead of
  // its workers, so arbitrarily long request lists stream in O(1) memory.
  api::Engine engine(api::EngineOptions{.num_threads = threads,
                                        .reuse_workspaces = !no_reuse,
                                        .queue_capacity = 64});
  std::cout << "batch: " << batch.size() << " request(s) over "
            << engine.num_threads() << " thread(s), mode " << mode
            << (no_reuse ? ", workspace reuse OFF" : "")
            << ", streaming\n";

  std::map<std::string, int> by_status;
  int degraded = 0;
  std::size_t completed = 0;
  const auto report = [&](api::SolveResult res) {
    ++completed;
    ++by_status[api::status_name(res.status)];
    if (res.degradation() != api::DegradationStep::kNone) ++degraded;
    if (!quiet) {
      std::cout << "  " << res.tag << ": " << api::status_name(res.status);
      if (res.has_paths())
        std::cout << " cost=" << res.cost << " delay=" << res.delay;
      if (res.status == api::SolveStatus::kFailed)
        std::cout << " (" << res.error << ")";
      if (res.degradation() != api::DegradationStep::kNone)
        std::cout << " [degraded: "
                  << core::degradation_step_name(res.degradation()) << "]";
      std::cout << "\n";
    }
  };

  // Tickets complete in any order, but printing only ever consumes the
  // head of the deque, so output follows submission order exactly.
  std::deque<api::Ticket> inflight;
  const auto print_head = [&](bool block) {
    while (!inflight.empty() && (block || inflight.front().ready())) {
      report(inflight.front().get());
      inflight.pop_front();
    }
  };

  const auto t0 = Clock::now();
  for (auto& req : batch) {
    inflight.push_back(engine.submit(std::move(req)));
    print_head(/*block=*/false);
  }
  print_head(/*block=*/true);
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();

  std::cout << "statuses:";
  for (const auto& [name, count] : by_status)
    std::cout << " " << name << "=" << count;
  std::cout << "\n";
  if (degraded > 0)
    std::cout << "degraded (deadline ladder engaged): " << degraded << "\n";
  std::cout << "wall: " << wall << " s\nthroughput: "
            << static_cast<double>(completed) / wall << " solves/sec\n";

  if (!trace_out.empty()) {
    std::string trace_error;
    if (!obs::write_chrome_trace_file(trace_out, &trace_error)) {
      std::cerr << "krsp_batch: --trace-out: " << trace_error << "\n";
      return 1;
    }
    std::cout << "wrote trace " << trace_out << "\n";
  }

  // Non-zero exit only for failures the caller should not ignore;
  // infeasible instances are a valid answer, not an error.
  return by_status.count("failed") > 0 ? 1 : 0;
}

// Long-running solve service over a Unix-domain socket or TCP.
//
//   $ krsp_serve --socket=/tmp/krsp.sock [--catalog=DIR] [--threads=0]
//                [--max-pending=256] [--max-pending-batch=0]
//                [--degrade-wait=0] [--overload-eps-factor=2]
//                [--overload-eps-cap=1] [--cache-capacity=1024]
//                [--cache-shards=8] [--no-cache] [--no-deadline-admission]
//                [--no-reuse] [--trace-out=FILE] [--trace-sample=1]
//                [--quiet]
//   $ krsp_serve --tcp=4701 [...]          # TCP listener instead
//
// --tcp=PORT listens on TCP instead of a Unix socket (the fleet-shard
// transport behind krsp_router; same wire bytes either way). --tcp=0
// binds an ephemeral port; the resolved port is always announced on
// stdout as a machine-parseable line —
//   {"event":"listening","transport":"tcp","port":NNNN}
// — even with --quiet, so harnesses (fleet_smoke.sh) can discover it.
//
// --trace-out=FILE enables the obs tracer for the whole run and, after
// the drain, writes every captured span (solve phases, queue waits,
// cache lookups, admission decisions, wire handling) as Chrome
// trace-event JSON — load it in chrome://tracing or ui.perfetto.dev.
// --trace-sample=N keeps every Nth span per thread to bound the buffer
// on long runs. Live metrics are always on: the {"op":"metrics"} wire op
// returns the Prometheus-style exposition at any time.
//
// --catalog=DIR mmaps every `.krspb` container in DIR at startup
// (store/catalog.h) and enables the protocol-v2 topology surface:
// clients may send {"op":"solve","topology":"<id>",...} instead of an
// inline instance, plus {"op":"topologies"} / {"op":"topology"} for
// discovery. A bad container fails startup loudly; an unknown id at
// runtime is a per-request error response.
//
// Speaks the newline-framed JSON protocol of server/transport.h: clients
// connect, write one JSON request per line, and read one JSON response per
// line (see krsp_loadgen for a conforming client). The process runs until
// a client sends {"op":"shutdown"} or it receives SIGINT/SIGTERM, then
// drains gracefully: no new work is admitted, every in-flight solve
// finishes and is answered, and a final structured stats line —
//   {"event":"final_stats","received":...,"interactive_admitted":...,...}
// — is emitted on stdout (always, even with --quiet) so supervisors and
// the chaos harness can scrape the terminal accounting of the run.
//
// SLA tiering: --max-pending-batch caps the batch class below the global
// --max-pending (0 = batch may use the whole queue); --degrade-wait > 0
// arms the interactive overload ladder (predicted waits at or above it
// serve coarsened-eps / doubling-guess solves instead of rejecting).
#include <algorithm>
#include <csignal>
#include <cstdint>
#include <iostream>
#include <optional>

#include "obs/export.h"
#include "obs/trace.h"
#include "server/transport.h"
#include "server/wire.h"
#include "store/catalog.h"
#include "util/cli.h"

namespace {

krsp::server::SocketServer* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

void class_stats_fields(krsp::server::wire::ObjectWriter& w,
                        const char* prefix,
                        const krsp::api::SlaClassStats& cs) {
  const std::string p(prefix);
  w.field(p + "_admitted", cs.admitted);
  w.field(p + "_rejected_queue_full", cs.rejected_queue_full);
  w.field(p + "_rejected_deadline", cs.rejected_deadline);
  w.field(p + "_degraded", cs.degraded);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace krsp;
  const util::Cli cli(argc, argv);
  const std::string socket_path = cli.get_string("socket", "");
  const std::int64_t tcp_port = cli.get_int("tcp", -1);
  const std::string catalog_dir = cli.get_string("catalog", "");
  api::ServerOptions options;
  options.num_threads = static_cast<int>(cli.get_int("threads", 0));
  options.max_pending =
      static_cast<std::size_t>(cli.get_int("max-pending", 256));
  options.max_pending_batch =
      static_cast<std::size_t>(cli.get_int("max-pending-batch", 0));
  options.degrade_wait_seconds = cli.get_double("degrade-wait", 0.0);
  options.overload_eps_factor = cli.get_double("overload-eps-factor", 2.0);
  options.overload_eps_cap = cli.get_double("overload-eps-cap", 1.0);
  options.cache_capacity =
      static_cast<std::size_t>(cli.get_int("cache-capacity", 1024));
  options.cache_shards = static_cast<int>(cli.get_int("cache-shards", 8));
  if (cli.get_bool("no-cache", false)) options.cache_capacity = 0;
  options.deadline_aware_admission =
      !cli.get_bool("no-deadline-admission", false);
  options.reuse_workspaces = !cli.get_bool("no-reuse", false);
  const std::string trace_out = cli.get_string("trace-out", "");
  const auto trace_sample = cli.get_int("trace-sample", 1);
  const bool quiet = cli.get_bool("quiet", false);
  cli.reject_unknown();

  const bool use_tcp = tcp_port >= 0;
  if (socket_path.empty() == !use_tcp || tcp_port > 65535) {
    std::cerr << "usage: krsp_serve --socket=<path>|--tcp=<port> "
                 "[--catalog=<dir>] "
                 "[--threads=0] [--max-pending=256] [--max-pending-batch=0] "
                 "[--degrade-wait=0] [--overload-eps-factor=2] "
                 "[--overload-eps-cap=1] [--cache-capacity=1024] "
                 "[--cache-shards=8] [--no-cache] [--no-deadline-admission] "
                 "[--no-reuse] [--trace-out=FILE] [--trace-sample=1] "
                 "[--quiet]  (exactly one of --socket / --tcp)\n";
    return 2;
  }

  if (!trace_out.empty()) {
    obs::Tracer::global().set_sample_every(
        static_cast<std::uint32_t>(std::max<std::int64_t>(1, trace_sample)));
    obs::Tracer::global().enable();
  }

  // Fail fast on a bad catalog: a daemon serving a partial or corrupt
  // topology set is worse than one that refuses to start.
  store::TopologyCatalog catalog;
  if (!catalog_dir.empty()) {
    try {
      catalog = store::TopologyCatalog::load(catalog_dir);
    } catch (const std::exception& e) {
      std::cerr << "krsp_serve: --catalog: " << e.what() << "\n";
      return 1;
    }
  }

  server::SolveService service(options);
  // optional<> because SocketServer is neither copyable nor movable and
  // the ctor form depends on the transport flag.
  std::optional<server::SocketServer> server_storage;
  if (use_tcp) {
    server_storage.emplace(service, static_cast<std::uint16_t>(tcp_port),
                           &catalog);
  } else {
    server_storage.emplace(service, socket_path, &catalog);
  }
  server::SocketServer& socket_server = *server_storage;
  std::string error;
  if (!socket_server.start(&error)) {
    std::cerr << "krsp_serve: " << error << "\n";
    return 1;
  }
  // Machine-parseable bind announcement: with --tcp=0 the kernel picked
  // the port and this line is the only way a harness learns it.
  if (use_tcp) {
    server::wire::ObjectWriter w;
    w.field("event", "listening");
    w.field("transport", "tcp");
    w.field("port", static_cast<std::int64_t>(socket_server.bound_port()));
    std::cout << w.done() << "\n" << std::flush;
  }

  g_server = &socket_server;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  // The transport writes with MSG_NOSIGNAL, but ignore SIGPIPE anyway so
  // a client that disconnects before reading its response can never kill
  // the daemon through some other write path.
  std::signal(SIGPIPE, SIG_IGN);

  if (!quiet)
    std::cout << "krsp_serve: listening on "
              << (use_tcp ? "tcp port " +
                                std::to_string(socket_server.bound_port())
                          : socket_path)
              << " with "
              << service.num_threads() << " worker thread(s), cache "
              << (options.cache_capacity > 0
                      ? std::to_string(options.cache_capacity) + " entries"
                      : std::string("off"))
              << ", max pending " << options.max_pending << ", catalog "
              << (catalog.empty() ? std::string("off")
                                  : std::to_string(catalog.size()) +
                                        " topolog" +
                                        (catalog.size() == 1 ? "y" : "ies"))
              << "\n"
              << std::flush;

  socket_server.serve_forever();  // returns after shutdown op / signal
  service.drain();
  g_server = nullptr;

  // Terminal accounting: one JSON line, machine-parseable, emitted
  // unconditionally so a supervisor scraping stdout always gets the
  // final counters after SIGTERM/drain.
  {
    const api::ServeStats s = service.stats();
    server::wire::ObjectWriter w;
    w.field("event", "final_stats");
    w.field("protocol_version",
            static_cast<std::int64_t>(server::kProtocolVersion));
    // Per-shard wire-form adoption: how much of this process's solve
    // traffic arrived as v1 inline vs v2 topology references. A fleet
    // rollout greps these across shards to verify v2 uptake.
    w.field("solves_v1", socket_server.protocol()->solves_v1());
    w.field("solves_v2", socket_server.protocol()->solves_v2());
    w.field("catalog_topologies", static_cast<std::uint64_t>(catalog.size()));
    w.field("received", s.received);
    w.field("served", s.served);
    w.field("rejected_queue_full", s.rejected_queue_full);
    w.field("rejected_deadline", s.rejected_deadline);
    w.field("rejected_draining", s.rejected_draining);
    class_stats_fields(w, "interactive", s.interactive);
    class_stats_fields(w, "batch", s.batch);
    w.field("cache_hits", s.cache_hits);
    w.field("cache_misses", s.cache_misses);
    w.field("cache_insertions", s.cache_insertions);
    w.field("cache_evictions", s.cache_evictions);
    w.field("cache_entries", static_cast<std::uint64_t>(s.cache_entries));
    std::string shard_arr = "[";
    for (std::size_t i = 0; i < s.cache_shard_entries.size(); ++i) {
      if (i != 0) shard_arr.push_back(',');
      shard_arr += std::to_string(s.cache_shard_entries[i]);
    }
    shard_arr.push_back(']');
    w.raw("cache_shard_entries", shard_arr);
    w.field("peak_pending", static_cast<std::uint64_t>(s.peak_pending));
    w.field("connections", socket_server.connections_accepted());
    w.field("peer_resets", socket_server.peer_resets());
    w.field("send_failures", socket_server.send_failures());
    std::cout << w.done() << "\n" << std::flush;
  }

  if (!trace_out.empty()) {
    std::string trace_error;
    if (!obs::write_chrome_trace_file(trace_out, &trace_error)) {
      std::cerr << "krsp_serve: --trace-out: " << trace_error << "\n";
      return 1;
    }
    if (!quiet)
      std::cout << "krsp_serve: wrote trace to " << trace_out << "\n";
  }
  return 0;
}

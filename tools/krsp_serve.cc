// Long-running solve service over a Unix-domain socket.
//
//   $ krsp_serve --socket=/tmp/krsp.sock [--threads=0] [--max-pending=256]
//                [--cache-capacity=1024] [--cache-shards=8] [--no-cache]
//                [--no-deadline-admission] [--no-reuse] [--quiet]
//
// Speaks the newline-framed JSON protocol of server/transport.h: clients
// connect, write one JSON request per line, and read one JSON response per
// line (see krsp_loadgen for a conforming client). The process runs until
// a client sends {"op":"shutdown"} or it receives SIGINT/SIGTERM, then
// drains gracefully: no new work is admitted, every in-flight solve
// finishes and is answered, and the final serving counters are printed.
#include <csignal>
#include <iostream>

#include "server/transport.h"
#include "util/cli.h"

namespace {

krsp::server::SocketServer* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace krsp;
  const util::Cli cli(argc, argv);
  const std::string socket_path = cli.get_string("socket", "");
  api::ServerOptions options;
  options.num_threads = static_cast<int>(cli.get_int("threads", 0));
  options.max_pending =
      static_cast<std::size_t>(cli.get_int("max-pending", 256));
  options.cache_capacity =
      static_cast<std::size_t>(cli.get_int("cache-capacity", 1024));
  options.cache_shards = static_cast<int>(cli.get_int("cache-shards", 8));
  if (cli.get_bool("no-cache", false)) options.cache_capacity = 0;
  options.deadline_aware_admission =
      !cli.get_bool("no-deadline-admission", false);
  options.reuse_workspaces = !cli.get_bool("no-reuse", false);
  const bool quiet = cli.get_bool("quiet", false);
  cli.reject_unknown();

  if (socket_path.empty()) {
    std::cerr << "usage: krsp_serve --socket=<path> [--threads=0] "
                 "[--max-pending=256] [--cache-capacity=1024] "
                 "[--cache-shards=8] [--no-cache] [--no-deadline-admission] "
                 "[--no-reuse] [--quiet]\n";
    return 2;
  }

  server::SolveService service(options);
  server::SocketServer socket_server(service, socket_path);
  std::string error;
  if (!socket_server.start(&error)) {
    std::cerr << "krsp_serve: " << error << "\n";
    return 1;
  }

  g_server = &socket_server;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  // The transport writes with MSG_NOSIGNAL, but ignore SIGPIPE anyway so
  // a client that disconnects before reading its response can never kill
  // the daemon through some other write path.
  std::signal(SIGPIPE, SIG_IGN);

  if (!quiet)
    std::cout << "krsp_serve: listening on " << socket_path << " with "
              << service.num_threads() << " worker thread(s), cache "
              << (options.cache_capacity > 0
                      ? std::to_string(options.cache_capacity) + " entries"
                      : std::string("off"))
              << ", max pending " << options.max_pending << "\n"
              << std::flush;

  socket_server.serve_forever();  // returns after shutdown op / signal
  service.drain();
  g_server = nullptr;

  if (!quiet) {
    const api::ServeStats s = service.stats();
    std::cout << "krsp_serve: drained. received=" << s.received
              << " served=" << s.served
              << " rejected_queue_full=" << s.rejected_queue_full
              << " rejected_deadline=" << s.rejected_deadline
              << " rejected_draining=" << s.rejected_draining
              << " cache_hits=" << s.cache_hits
              << " cache_misses=" << s.cache_misses
              << " cache_evictions=" << s.cache_evictions
              << " peak_pending=" << s.peak_pending << " connections="
              << socket_server.connections_accepted() << "\n";
  }
  return 0;
}

# End-to-end CLI smoke test: krsp_gen -> krsp_solve in all three modes.
set(instance "${WORK_DIR}/smoke.kri")
set(solution "${WORK_DIR}/smoke.krp")

execute_process(
  COMMAND ${KRSP_GEN} --family=er --n=14 --k=2 --seed=5 --out=${instance}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "krsp_gen failed (${rc}): ${out}${err}")
endif()

foreach(mode scaled exact phase1)
  execute_process(
    COMMAND ${KRSP_SOLVE} --instance=${instance} --mode=${mode}
            --out=${solution} --verbose
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "krsp_solve --mode=${mode} failed (${rc}): ${out}${err}")
  endif()
  if(NOT out MATCHES "status: (optimal|approx)")
    message(FATAL_ERROR "unexpected solver output for ${mode}: ${out}")
  endif()
endforeach()

# Back-compat: --eps must still be accepted, and the split knobs alongside.
execute_process(
  COMMAND ${KRSP_SOLVE} --instance=${instance} --eps=0.5
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "krsp_solve --eps alias failed (${rc}): ${out}${err}")
endif()
execute_process(
  COMMAND ${KRSP_SOLVE} --instance=${instance} --eps1=0.5 --eps2=0.1
          --guess=doubling --deadline=30
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "krsp_solve split-eps flags failed (${rc}): ${out}${err}")
endif()

# Batch engine round trip: same instance, several repeats, two workers.
execute_process(
  COMMAND ${KRSP_BATCH} --instances=${instance} --repeat=4 --threads=2
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "krsp_batch failed (${rc}): ${out}${err}")
endif()
if(NOT out MATCHES "throughput: ")
  message(FATAL_ERROR "unexpected krsp_batch output: ${out}")
endif()

// Load generator / conformance client for krsp_serve.
//
//   $ krsp_loadgen --socket=/tmp/krsp.sock [--requests=64] [--connections=4]
//                  [--rate=0] [--pool=8] [--n=12] [--k=2] [--seed=17]
//                  [--mode=exact] [--eps1=0.25] [--eps2=0.25]
//                  [--deadline=0] [--check] [--stats] [--shutdown] [--quiet]
//
// Generates a pool of seeded random instances, serializes each once, and
// issues solve requests round-robin over the pool across N connections.
// --rate > 0 runs open-loop: arrival times are fixed up front at the given
// aggregate requests/sec and latency is measured from the *scheduled*
// arrival (late starts count against the server, as they would for a real
// user); --rate=0 runs closed-loop back-to-back per connection.
//
// --check solves every pool entry locally (direct api::Solver::solve) and
// fails the run unless every served deadline-free response is bit-identical
// — status, cost, delay, and the exact edge ids of every path. This is the
// transport-level counterpart of bench_serving's in-process identity gate.
//
// --shutdown sends {"op":"shutdown"} at the end (the server then drains);
// --stats prints the server's counters before that.
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/krsp.h"
#include "server/wire.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace krsp;
namespace wire = krsp::server::wire;
using Clock = std::chrono::steady_clock;

/// Minimal blocking newline-framed client over a Unix socket.
class Client {
 public:
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connect(const std::string& path, std::string* error) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      *error = "socket path too long: " + path;
      return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      *error = std::string("socket(): ") + std::strerror(errno);
      return false;
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      *error = "connect(" + path + "): " + std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    return true;
  }

  bool request(const std::string& line, std::string* response,
               std::string* error) {
    std::string framed = line;
    framed.push_back('\n');
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t w =
          ::write(fd_, framed.data() + sent, framed.size() - sent);
      if (w <= 0) {
        *error = std::string("write(): ") + std::strerror(errno);
        return false;
      }
      sent += static_cast<std::size_t>(w);
    }
    while (true) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        *response = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n <= 0) {
        *error = n == 0 ? "server closed the connection"
                        : std::string("read(): ") + std::strerror(errno);
        return false;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

struct PoolEntry {
  std::string request_line;     // fully serialized solve request
  api::SolveResult reference;   // direct local solve (when --check)
};

bool paths_match(const wire::Value& response,
                 const core::PathSet& reference) {
  const wire::Value* paths = response.find("paths");
  if (paths == nullptr || paths->type != wire::Value::Type::kArray)
    return reference.paths().empty();
  const auto& expected = reference.paths();
  if (paths->items.size() != expected.size()) return false;
  for (std::size_t p = 0; p < expected.size(); ++p) {
    const wire::Value& path = paths->items[p];
    if (path.type != wire::Value::Type::kArray ||
        path.items.size() != expected[p].size())
      return false;
    for (std::size_t e = 0; e < expected[p].size(); ++e) {
      const wire::Value& edge = path.items[e];
      if (edge.type != wire::Value::Type::kNumber || !edge.is_integer ||
          edge.integer != expected[p][e])
        return false;
    }
  }
  return true;
}

struct WorkerReport {
  std::vector<double> latency_ms;
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t transport_errors = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string socket_path = cli.get_string("socket", "");
  const int requests = static_cast<int>(cli.get_int("requests", 64));
  const int connections = static_cast<int>(cli.get_int("connections", 4));
  const double rate = cli.get_double("rate", 0.0);
  const int pool_size = static_cast<int>(cli.get_int("pool", 8));
  const int n = static_cast<int>(cli.get_int("n", 12));
  const int k = static_cast<int>(cli.get_int("k", 2));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 17));
  const std::string mode = cli.get_string("mode", "exact");
  const double eps1 = cli.get_double("eps1", 0.25);
  const double eps2 = cli.get_double("eps2", 0.25);
  const double deadline = cli.get_double("deadline", 0.0);
  const bool check = cli.get_bool("check", false);
  const bool want_stats = cli.get_bool("stats", false);
  const bool want_shutdown = cli.get_bool("shutdown", false);
  const bool quiet = cli.get_bool("quiet", false);
  cli.reject_unknown();

  if (socket_path.empty() || requests < 1 || connections < 1 ||
      pool_size < 1) {
    std::cerr << "usage: krsp_loadgen --socket=<path> [--requests=64] "
                 "[--connections=4] [--rate=0] [--pool=8] [--n=12] [--k=2] "
                 "[--seed=17] [--mode=exact|scaled|phase1] [--eps1] [--eps2] "
                 "[--deadline=0] [--check] [--stats] [--shutdown] [--quiet]\n";
    return 2;
  }
  api::Mode api_mode;
  if (mode == "scaled") {
    api_mode = api::Mode::kScaled;
  } else if (mode == "exact") {
    api_mode = api::Mode::kExactWeights;
  } else if (mode == "phase1") {
    api_mode = api::Mode::kPhase1Only;
  } else {
    std::cerr << "unknown --mode: " << mode << "\n";
    return 2;
  }

  // Build the pool: seeded instances, serialized once; reference solves
  // when checking (deadline-free so the oracle is deterministic).
  util::Rng rng(seed);
  std::vector<PoolEntry> pool;
  pool.reserve(pool_size);
  while (static_cast<int>(pool.size()) < pool_size) {
    api::RandomInstanceOptions io;
    io.k = k;
    io.delay_slack = 0.25;
    auto inst = api::random_er_instance(rng, n, 0.35, io);
    if (!inst) continue;
    api::SolveRequest req;
    req.instance = *inst;
    req.mode = api_mode;
    req.eps1 = eps1;
    req.eps2 = eps2;

    std::ostringstream kri;
    api::write_instance(kri, *inst);
    wire::ObjectWriter w;
    w.field("op", "solve");
    w.field("id", "pool-" + std::to_string(pool.size()));
    w.field("instance", kri.str());
    w.field("mode", mode);
    w.field("eps1", eps1);
    w.field("eps2", eps2);
    if (deadline > 0.0) w.field("deadline", deadline);

    PoolEntry entry;
    entry.request_line = w.done();
    if (check) entry.reference = api::Solver::solve(req);
    pool.push_back(std::move(entry));
  }

  const bool open_loop = rate > 0.0;
  // Open-loop arrivals are scheduled from `start`; the 50 ms offset lets
  // every worker thread spin up first. Wall time is measured from `t0`:
  // closed-loop workers fire immediately and can finish before `start`.
  const auto t0 = Clock::now();
  const auto start = t0 + std::chrono::milliseconds(50);
  std::vector<WorkerReport> reports(connections);
  std::vector<std::thread> workers;
  workers.reserve(connections);
  bool connect_failed = false;
  std::mutex io_mu;

  for (int c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      WorkerReport& rep = reports[c];
      Client client;
      std::string error;
      if (!client.connect(socket_path, &error)) {
        const std::lock_guard<std::mutex> lock(io_mu);
        std::cerr << "krsp_loadgen: " << error << "\n";
        connect_failed = true;
        return;
      }
      // Request r goes to connection r % connections; arrival r/rate.
      for (int r = c; r < requests; r += connections) {
        Clock::time_point arrival = start;
        if (open_loop) {
          arrival += std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(static_cast<double>(r) / rate));
          std::this_thread::sleep_until(arrival);
        } else {
          arrival = Clock::now();
        }
        const std::size_t pool_index =
            static_cast<std::size_t>(r) % pool.size();
        std::string response_line;
        if (!client.request(pool[pool_index].request_line, &response_line,
                            &error)) {
          ++rep.transport_errors;
          const std::lock_guard<std::mutex> lock(io_mu);
          std::cerr << "krsp_loadgen: " << error << "\n";
          return;
        }
        // Open-loop latency is measured from the scheduled arrival, so a
        // backed-up server (late send) is charged for the wait.
        const double latency_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - arrival)
                .count();
        const auto response = wire::parse(response_line);
        if (!response.has_value() || !response->get_bool("ok", false)) {
          ++rep.transport_errors;
          continue;
        }
        if (!response->get_bool("served", false)) {
          ++rep.rejected;
          continue;
        }
        ++rep.served;
        rep.latency_ms.push_back(latency_ms);
        if (response->get_bool("cache_hit", false)) ++rep.cache_hits;
        if (check && deadline <= 0.0) {
          const api::SolveResult& ref = pool[pool_index].reference;
          const bool same =
              response->get_string("status") == api::status_name(ref.status) &&
              response->get_int("cost", -1) ==
                  (ref.has_paths() ? ref.cost : -1) &&
              response->get_int("delay", -1) ==
                  (ref.has_paths() ? ref.delay : -1) &&
              paths_match(*response, ref.paths);
          if (!same) {
            ++rep.mismatches;
            const std::lock_guard<std::mutex> lock(io_mu);
            std::cerr << "krsp_loadgen: MISMATCH on pool entry " << pool_index
                      << ": served " << response_line
                      << " expected status="
                      << api::status_name(ref.status) << " cost=" << ref.cost
                      << " delay=" << ref.delay << "\n";
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - t0).count();

  WorkerReport total;
  util::Stats latency;
  for (const auto& rep : reports) {
    total.served += rep.served;
    total.rejected += rep.rejected;
    total.cache_hits += rep.cache_hits;
    total.mismatches += rep.mismatches;
    total.transport_errors += rep.transport_errors;
    for (const double x : rep.latency_ms) latency.add(x);
  }

  if (!quiet) {
    std::cout << "krsp_loadgen: " << requests << " request(s), "
              << connections << " connection(s)"
              << (open_loop ? ", open-loop @ " + std::to_string(rate) + "/s"
                            : ", closed-loop")
              << "\n  served=" << total.served
              << " rejected=" << total.rejected
              << " cache_hits=" << total.cache_hits
              << " transport_errors=" << total.transport_errors
              << "\n  wall=" << wall << " s, throughput="
              << static_cast<double>(total.served + total.rejected) / wall
              << " req/s\n";
    if (latency.count() > 0)
      std::cout << "  latency_ms p50=" << latency.percentile(50.0)
                << " p95=" << latency.percentile(95.0)
                << " p99=" << latency.percentile(99.0)
                << " mean=" << latency.mean() << "\n";
  }

  Client control;
  std::string error;
  if ((want_stats || want_shutdown) && !control.connect(socket_path, &error)) {
    std::cerr << "krsp_loadgen: control connection: " << error << "\n";
    return 1;
  }
  if (want_stats) {
    std::string line;
    if (control.request("{\"op\":\"stats\"}", &line, &error))
      std::cout << "server stats: " << line << "\n";
  }
  if (want_shutdown) {
    std::string line;
    if (!control.request("{\"op\":\"shutdown\"}", &line, &error)) {
      std::cerr << "krsp_loadgen: shutdown: " << error << "\n";
      return 1;
    }
    if (!quiet) std::cout << "server acknowledged shutdown: " << line << "\n";
  }

  if (connect_failed || total.transport_errors > 0) return 1;
  if (check && total.mismatches > 0) {
    std::cerr << "krsp_loadgen: FAIL: " << total.mismatches
              << " served response(s) diverged from direct solve\n";
    return 1;
  }
  if (check && !quiet)
    std::cout << "all served responses bit-identical to direct solve\n";
  return 0;
}

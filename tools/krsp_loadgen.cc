// Load generator / conformance client for krsp_serve and krsp_router.
//
//   $ krsp_loadgen --socket=/tmp/krsp.sock [--requests=64] [--connections=4]
//                  [--rate=0] [--pool=8] [--n=12] [--k=2] [--seed=17]
//                  [--topology=id1,id2,...] [--catalog=DIR]
//                  [--mode=exact] [--eps1=0.25] [--eps2=0.25]
//                  [--deadline=0] [--class=batch]
//                  [--retries=0] [--retry-base-ms=10] [--retry-max-ms=500]
//                  [--retry-budget-ms=0] [--timeout-ms=0]
//                  [--fault-rate=0] [--fault-seed=1]
//                  [--latency-out=FILE]
//                  [--check] [--stats] [--shutdown] [--quiet]
//   $ krsp_loadgen --connect=127.0.0.1:4700 [...]   # TCP (router/shard)
//
// --connect=host:port dials TCP instead of a Unix socket — the same wire
// either way, so it works against a TCP krsp_serve shard or a
// krsp_router front tier (exactly one of --socket / --connect).
//
// --latency-out writes one CSV row per request (header:
// request,connection,pool,outcome,latency_ms,cache_hit,degraded,shard)
// so tail behavior can be analyzed offline instead of through the
// summary percentiles; latency is measured from the scheduled arrival,
// exactly as the printed p50/p95/p99 are. The shard column carries the
// router-injected "served_by" response field (empty when talking to a
// single krsp_serve directly — only routers inject it).
//
// Generates a pool of seeded random instances, serializes each once, and
// issues solve requests round-robin over the pool across N connections.
// --topology switches the pool to protocol-v2 requests referencing the
// named catalog entries of a server started with krsp_serve --catalog;
// each request line then carries a few dozen bytes instead of the whole
// edge list. With --check, --catalog=DIR names the same container
// directory so the reference solves run on the locally mmap'd instances
// (the v2 leg of the CI conformance matrix).
// --rate > 0 runs open-loop: arrival times are fixed up front at the given
// aggregate requests/sec and latency is measured from the *scheduled*
// arrival (late starts count against the server, as they would for a real
// user); --rate=0 runs closed-loop back-to-back per connection.
//
// Resilience (server/client.h): --retries arms retransmission with
// exponential backoff + jitter and automatic reconnect. Retries apply only
// to idempotent requests — deadline-free solves, which are pure functions
// of the request. A deadline-bounded request (--deadline > 0) is anytime
// and is never retransmitted once it may have reached the server.
// --fault-rate injects seeded transport chaos (truncated frames, resets,
// stalls, garbage) into every connection; with retries armed, every
// idempotent request must still eventually succeed — the run exits
// nonzero if any request ultimately fails.
//
// --check solves every pool entry locally (direct api::Solver::solve) and
// fails the run unless every served deadline-free response is bit-identical
// — status, cost, delay, and the exact edge ids of every path. This is the
// transport-level counterpart of bench_serving's in-process identity gate.
//
// --shutdown sends {"op":"shutdown"} at the end (the server then drains);
// --stats prints the server's counters before that.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/krsp.h"
#include "server/client.h"
#include "server/wire.h"
#include "store/container.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace krsp;
namespace wire = krsp::server::wire;
using Clock = std::chrono::steady_clock;

struct PoolEntry {
  std::string id;               // request id ("pool-<i>"), echoed back
  std::string request_line;     // fully serialized solve request
  api::SolveResult reference;   // direct local solve (when --check)
};

bool paths_match(const wire::Value& response,
                 const core::PathSet& reference) {
  const wire::Value* paths = response.find("paths");
  if (paths == nullptr || paths->type != wire::Value::Type::kArray)
    return reference.paths().empty();
  const auto& expected = reference.paths();
  if (paths->items.size() != expected.size()) return false;
  for (std::size_t p = 0; p < expected.size(); ++p) {
    const wire::Value& path = paths->items[p];
    if (path.type != wire::Value::Type::kArray ||
        path.items.size() != expected[p].size())
      return false;
    for (std::size_t e = 0; e < expected[p].size(); ++e) {
      const wire::Value& edge = path.items[e];
      if (edge.type != wire::Value::Type::kNumber || !edge.is_integer ||
          edge.integer != expected[p][e])
        return false;
    }
  }
  return true;
}

/// One --latency-out CSV row: every request's outcome and latency.
struct RequestSample {
  int request = 0;  // global request index (also the CSV sort key)
  int connection = 0;
  std::size_t pool_index = 0;
  const char* outcome = "served";  // served | rejected | failed
  double latency_ms = 0.0;
  bool cache_hit = false;
  bool degraded = false;
  std::string shard;  // router-injected "served_by"; empty when direct
};

struct WorkerReport {
  std::vector<double> latency_ms;
  std::vector<RequestSample> samples;  // filled only with --latency-out
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;
  std::uint64_t degraded = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t failed = 0;  // requests that exhausted the retry policy
  server::ClientCounters client;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string socket_path = cli.get_string("socket", "");
  const std::string connect_spec = cli.get_string("connect", "");
  const int requests = static_cast<int>(cli.get_int("requests", 64));
  const int connections = static_cast<int>(cli.get_int("connections", 4));
  const double rate = cli.get_double("rate", 0.0);
  const int pool_size = static_cast<int>(cli.get_int("pool", 8));
  const int n = static_cast<int>(cli.get_int("n", 12));
  const int k = static_cast<int>(cli.get_int("k", 2));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 17));
  const std::string topology = cli.get_string("topology", "");
  const std::string catalog_dir = cli.get_string("catalog", "");
  const std::string mode = cli.get_string("mode", "exact");
  const double eps1 = cli.get_double("eps1", 0.25);
  const double eps2 = cli.get_double("eps2", 0.25);
  const double deadline = cli.get_double("deadline", 0.0);
  const std::string sla_class = cli.get_string("class", "batch");
  const int retries = static_cast<int>(cli.get_int("retries", 0));
  const double retry_base_ms = cli.get_double("retry-base-ms", 10.0);
  const double retry_max_ms = cli.get_double("retry-max-ms", 500.0);
  const double retry_budget_ms = cli.get_double("retry-budget-ms", 0.0);
  const double timeout_ms = cli.get_double("timeout-ms", 0.0);
  const double fault_rate = cli.get_double("fault-rate", 0.0);
  const auto fault_seed =
      static_cast<std::uint64_t>(cli.get_int("fault-seed", 1));
  const std::string latency_out = cli.get_string("latency-out", "");
  const bool check = cli.get_bool("check", false);
  const bool want_stats = cli.get_bool("stats", false);
  const bool want_shutdown = cli.get_bool("shutdown", false);
  const bool quiet = cli.get_bool("quiet", false);
  cli.reject_unknown();

  if (socket_path.empty() == connect_spec.empty() || requests < 1 ||
      connections < 1 || pool_size < 1) {
    std::cerr << "usage: krsp_loadgen --socket=<path>|--connect=<host:port> "
                 "[--requests=64] "
                 "[--connections=4] [--rate=0] [--pool=8] [--n=12] [--k=2] "
                 "[--seed=17] [--topology=id1,id2,...] [--catalog=<dir>] "
                 "[--mode=exact|scaled|phase1] [--eps1] [--eps2] "
                 "[--deadline=0] [--class=interactive|batch] [--retries=0] "
                 "[--retry-base-ms=10] [--retry-max-ms=500] "
                 "[--retry-budget-ms=0] [--timeout-ms=0] [--fault-rate=0] "
                 "[--fault-seed=1] [--latency-out=<file>] [--check] "
                 "[--stats] [--shutdown] [--quiet]\n";
    return 2;
  }
  if (check && !topology.empty() && catalog_dir.empty()) {
    std::cerr << "krsp_loadgen: --check with --topology needs --catalog=<dir> "
                 "for the local reference instances\n";
    return 2;
  }
  api::Mode api_mode;
  if (mode == "scaled") {
    api_mode = api::Mode::kScaled;
  } else if (mode == "exact") {
    api_mode = api::Mode::kExactWeights;
  } else if (mode == "phase1") {
    api_mode = api::Mode::kPhase1Only;
  } else {
    std::cerr << "unknown --mode: " << mode << "\n";
    return 2;
  }
  if (sla_class != "interactive" && sla_class != "batch") {
    std::cerr << "unknown --class: " << sla_class << "\n";
    return 2;
  }
  if (fault_rate > 0.0 && retries == 0 && !quiet)
    std::cerr << "krsp_loadgen: note: --fault-rate without --retries will "
                 "fail requests on the first injected fault\n";
  // --socket is always a Unix path; --connect parses host:port (a '/' in
  // the spec would make it a path, which is what --socket is for).
  const server::Endpoint endpoint =
      connect_spec.empty() ? server::Endpoint::unix_socket(socket_path)
                           : server::Endpoint::parse(connect_spec);

  // Build the pool. --topology: protocol-v2 request lines naming catalog
  // entries (a few dozen bytes each), references solved from the locally
  // opened containers. Otherwise: seeded random instances shipped inline,
  // serialized once. Reference solves are deadline-free so the oracle is
  // deterministic.
  util::Rng rng(seed);
  std::vector<PoolEntry> pool;
  if (!topology.empty()) {
    std::istringstream ids(topology);
    for (std::string id; std::getline(ids, id, ',');) {
      if (id.empty()) continue;
      PoolEntry entry;
      entry.id = "topo-" + std::to_string(pool.size());
      wire::ObjectWriter w;
      w.field("op", "solve");
      w.field("id", entry.id);
      w.field("topology", id);
      w.field("mode", mode);
      w.field("class", sla_class);
      w.field("eps1", eps1);
      w.field("eps2", eps2);
      if (deadline > 0.0) w.field("deadline", deadline);
      entry.request_line = w.done();
      if (check) {
        api::SolveRequest req;
        try {
          req.instance =
              store::CsrContainer::open(catalog_dir + "/" + id + ".krspb")
                  .instance();
        } catch (const std::exception& e) {
          std::cerr << "krsp_loadgen: --topology " << id << ": " << e.what()
                    << "\n";
          return 2;
        }
        req.mode = api_mode;
        req.eps1 = eps1;
        req.eps2 = eps2;
        entry.reference = api::Solver::solve(req);
      }
      pool.push_back(std::move(entry));
    }
    if (pool.empty()) {
      std::cerr << "krsp_loadgen: --topology lists no ids\n";
      return 2;
    }
  }
  pool.reserve(pool_size);
  while (topology.empty() && static_cast<int>(pool.size()) < pool_size) {
    api::RandomInstanceOptions io;
    io.k = k;
    io.delay_slack = 0.25;
    auto inst = api::random_er_instance(rng, n, 0.35, io);
    if (!inst) continue;
    api::SolveRequest req;
    req.instance = *inst;
    req.mode = api_mode;
    req.eps1 = eps1;
    req.eps2 = eps2;

    std::ostringstream kri;
    api::write_instance(kri, *inst);
    PoolEntry entry;
    entry.id = "pool-" + std::to_string(pool.size());
    wire::ObjectWriter w;
    w.field("op", "solve");
    w.field("id", entry.id);
    w.field("instance", kri.str());
    w.field("mode", mode);
    w.field("class", sla_class);
    w.field("eps1", eps1);
    w.field("eps2", eps2);
    if (deadline > 0.0) w.field("deadline", deadline);

    entry.request_line = w.done();
    if (check) entry.reference = api::Solver::solve(req);
    pool.push_back(std::move(entry));
  }

  server::RetryOptions retry_options;
  retry_options.max_retries = retries;
  retry_options.base_backoff_ms = retry_base_ms;
  retry_options.max_backoff_ms = retry_max_ms;
  retry_options.total_budget_ms = retry_budget_ms;
  retry_options.request_timeout_ms = timeout_ms;
  // A deadline-free solve is a pure function of the request: retrying it
  // is safe (duplicates re-serve the same bytes, usually from the result
  // cache). A deadline-bounded solve is anytime — at most once.
  const bool idempotent = deadline <= 0.0;

  const bool open_loop = rate > 0.0;
  // Open-loop arrivals are scheduled from `start`; the 50 ms offset lets
  // every worker thread spin up first. Wall time is measured from `t0`:
  // closed-loop workers fire immediately and can finish before `start`.
  const auto t0 = Clock::now();
  const auto start = t0 + std::chrono::milliseconds(50);
  std::vector<WorkerReport> reports(connections);
  std::vector<std::thread> workers;
  workers.reserve(connections);
  bool connect_failed = false;
  std::mutex io_mu;

  for (int c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      WorkerReport& rep = reports[c];
      server::FaultOptions fault_options;
      // Per-connection seeds keep the chaos schedules independent while
      // the whole run stays replayable from --fault-seed.
      fault_options.seed = fault_seed + static_cast<std::uint64_t>(c);
      fault_options.fault_rate = fault_rate;
      server::RetryOptions ropts = retry_options;
      ropts.jitter_seed = fault_seed + 1000 + static_cast<std::uint64_t>(c);
      server::ResilientClient client(endpoint, ropts, fault_options);
      std::string error;
      if (!client.connect(&error)) {
        const std::lock_guard<std::mutex> lock(io_mu);
        std::cerr << "krsp_loadgen: " << error << "\n";
        connect_failed = true;
        return;
      }
      // Request r goes to connection r % connections; arrival r/rate.
      for (int r = c; r < requests; r += connections) {
        Clock::time_point arrival = start;
        if (open_loop) {
          arrival += std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(static_cast<double>(r) / rate));
          std::this_thread::sleep_until(arrival);
        } else {
          arrival = Clock::now();
        }
        const std::size_t pool_index =
            static_cast<std::size_t>(r) % pool.size();
        RequestSample sample;
        sample.request = r;
        sample.connection = c;
        sample.pool_index = pool_index;
        const auto note_sample = [&](const char* outcome) {
          if (latency_out.empty()) return;
          // Open-loop latency counts from the scheduled arrival for every
          // outcome, failures (retry exhaustion) included.
          sample.outcome = outcome;
          sample.latency_ms =
              std::chrono::duration<double, std::milli>(Clock::now() -
                                                        arrival)
                  .count();
          rep.samples.push_back(sample);
        };
        std::string response_line;
        if (!client.request(pool[pool_index].request_line,
                            pool[pool_index].id, idempotent, &response_line,
                            &error)) {
          ++rep.failed;
          note_sample("failed");
          const std::lock_guard<std::mutex> lock(io_mu);
          std::cerr << "krsp_loadgen: request " << r << " failed: " << error
                    << "\n";
          continue;
        }
        // Open-loop latency is measured from the scheduled arrival, so a
        // backed-up server (late send) is charged for the wait.
        const double latency_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - arrival)
                .count();
        const auto response = wire::parse(response_line);
        if (!response.has_value() || !response->get_bool("ok", false)) {
          ++rep.failed;
          note_sample("failed");
          continue;
        }
        if (!response->get_bool("served", false)) {
          ++rep.rejected;
          note_sample("rejected");
          continue;
        }
        ++rep.served;
        rep.latency_ms.push_back(latency_ms);
        if (response->get_bool("cache_hit", false)) ++rep.cache_hits;
        if (response->get_bool("degraded", false)) ++rep.degraded;
        sample.cache_hit = response->get_bool("cache_hit", false);
        sample.degraded = response->get_bool("degraded", false);
        sample.shard = response->get_string("served_by");
        note_sample("served");
        if (check && deadline <= 0.0 &&
            !response->get_bool("degraded", false)) {
          const api::SolveResult& ref = pool[pool_index].reference;
          const bool same =
              response->get_string("status") == api::status_name(ref.status) &&
              response->get_int("cost", -1) ==
                  (ref.has_paths() ? ref.cost : -1) &&
              response->get_int("delay", -1) ==
                  (ref.has_paths() ? ref.delay : -1) &&
              paths_match(*response, ref.paths);
          if (!same) {
            ++rep.mismatches;
            const std::lock_guard<std::mutex> lock(io_mu);
            std::cerr << "krsp_loadgen: MISMATCH on pool entry " << pool_index
                      << ": served " << response_line
                      << " expected status="
                      << api::status_name(ref.status) << " cost=" << ref.cost
                      << " delay=" << ref.delay << "\n";
          }
        }
      }
      rep.client = client.counters();
    });
  }
  for (auto& w : workers) w.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - t0).count();

  WorkerReport total;
  util::Stats latency;
  for (const auto& rep : reports) {
    total.served += rep.served;
    total.rejected += rep.rejected;
    total.degraded += rep.degraded;
    total.cache_hits += rep.cache_hits;
    total.mismatches += rep.mismatches;
    total.failed += rep.failed;
    total.client.attempts += rep.client.attempts;
    total.client.retries += rep.client.retries;
    total.client.reconnects += rep.client.reconnects;
    total.client.timeouts += rep.client.timeouts;
    total.client.skipped_lines += rep.client.skipped_lines;
    total.client.give_ups += rep.client.give_ups;
    total.client.faults.injected += rep.client.faults.injected;
    for (const double x : rep.latency_ms) latency.add(x);
  }

  if (!latency_out.empty()) {
    std::vector<RequestSample> all;
    for (const auto& rep : reports)
      all.insert(all.end(), rep.samples.begin(), rep.samples.end());
    std::sort(all.begin(), all.end(),
              [](const RequestSample& a, const RequestSample& b) {
                return a.request < b.request;
              });
    std::ofstream os(latency_out);
    if (!os.good()) {
      std::cerr << "krsp_loadgen: cannot open --latency-out file: "
                << latency_out << "\n";
      return 1;
    }
    os << "request,connection,pool,outcome,latency_ms,cache_hit,degraded,"
          "shard\n";
    for (const auto& s : all)
      os << s.request << ',' << s.connection << ',' << s.pool_index << ','
         << s.outcome << ',' << s.latency_ms << ',' << (s.cache_hit ? 1 : 0)
         << ',' << (s.degraded ? 1 : 0) << ',' << s.shard << '\n';
    if (!quiet)
      std::cout << "krsp_loadgen: wrote " << all.size()
                << " latency sample(s) to " << latency_out << "\n";
  }

  if (!quiet) {
    std::cout << "krsp_loadgen: " << requests << " request(s), "
              << connections << " connection(s), class=" << sla_class
              << (open_loop ? ", open-loop @ " + std::to_string(rate) + "/s"
                            : ", closed-loop")
              << "\n  served=" << total.served
              << " rejected=" << total.rejected
              << " degraded=" << total.degraded
              << " cache_hits=" << total.cache_hits
              << " failed=" << total.failed
              << "\n  attempts=" << total.client.attempts
              << " retries=" << total.client.retries
              << " reconnects=" << total.client.reconnects
              << " timeouts=" << total.client.timeouts
              << " skipped_lines=" << total.client.skipped_lines
              << " faults_injected=" << total.client.faults.injected
              << "\n  wall=" << wall << " s, throughput="
              << static_cast<double>(total.served + total.rejected) / wall
              << " req/s\n";
    if (latency.count() > 0)
      std::cout << "  latency_ms p50=" << latency.percentile(50.0)
                << " p95=" << latency.percentile(95.0)
                << " p99=" << latency.percentile(99.0)
                << " mean=" << latency.mean() << "\n";
  }

  // Control ops ride a clean (fault-free) connection: chaos on the
  // shutdown frame would only test the harness, not the server.
  server::ResilientClient control(endpoint);
  std::string error;
  if ((want_stats || want_shutdown) && !control.connect(&error)) {
    std::cerr << "krsp_loadgen: control connection: " << error << "\n";
    return 1;
  }
  if (want_stats) {
    std::string line;
    if (control.request("{\"op\":\"stats\"}", "", true, &line, &error))
      std::cout << "server stats: " << line << "\n";
  }
  if (want_shutdown) {
    std::string line;
    if (!control.request("{\"op\":\"shutdown\"}", "", false, &line, &error)) {
      std::cerr << "krsp_loadgen: shutdown: " << error << "\n";
      return 1;
    }
    if (!quiet) std::cout << "server acknowledged shutdown: " << line << "\n";
  }

  if (connect_failed || total.failed > 0) {
    std::cerr << "krsp_loadgen: FAIL: " << total.failed
              << " request(s) never got a response\n";
    return 1;
  }
  if (check && total.mismatches > 0) {
    std::cerr << "krsp_loadgen: FAIL: " << total.mismatches
              << " served response(s) diverged from direct solve\n";
    return 1;
  }
  if (check && !quiet)
    std::cout << "all served responses bit-identical to direct solve\n";
  return 0;
}

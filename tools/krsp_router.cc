// Fleet front tier: routes solve traffic across N krsp_serve shards.
//
//   $ krsp_router --socket=/tmp/krsp-router.sock \
//                 --shards=/tmp/shard-a.sock,127.0.0.1:4701 \
//                 [--catalog=DIR] [--vnodes=128] [--probe-interval-ms=200]
//                 [--mark-down-after=3] [--mark-up-after=2]
//                 [--forward-timeout-ms=0] [--forward-retries=0]
//                 [--drain-wait-ms=5000] [--quiet]
//   $ krsp_router --tcp=4700 --shards=... [...]   # TCP listener instead
//
// --shards is a comma-separated endpoint list; entries containing a '/'
// are Unix socket paths, host:port entries are TCP (server/fault.h
// Endpoint::parse). The router speaks the same newline-framed JSON wire
// as a shard, so krsp_loadgen and every other client point at it
// unchanged; solve responses gain an optional "served_by" field naming
// the shard that answered.
//
// Routing is consistent-hash affinity over request fingerprints (see
// src/router/router.h): give the router the same --catalog directory as
// the shards so v2 topology requests fingerprint identically to their v1
// forms and shard caches stay hot across both. Health: a background
// prober sweeps every shard's stats op; shards mark down after
// --mark-down-after consecutive failures (probe or refused forward) and
// rejoin after --mark-up-after consecutive probe successes. Operators
// drain a shard with {"op":"drain","shard":"<name>"} — fence, rebalance,
// quiesce, then the shard gets the wire shutdown op.
//
// Like krsp_serve, --tcp=0 announces its kernel-picked port as
//   {"event":"listening","transport":"tcp","port":NNNN}
// and SIGTERM/SIGINT (or a shutdown op) begins a graceful drain, ending
// with one {"event":"final_stats",...} line on stdout.
#include <csignal>
#include <cstdint>
#include <iostream>
#include <optional>
#include <sstream>
#include <vector>

#include "router/router.h"
#include "server/wire.h"
#include "store/catalog.h"
#include "util/cli.h"

namespace {

krsp::server::SocketServer* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace krsp;
  const util::Cli cli(argc, argv);
  const std::string socket_path = cli.get_string("socket", "");
  const std::int64_t tcp_port = cli.get_int("tcp", -1);
  const std::string shards_arg = cli.get_string("shards", "");
  const std::string catalog_dir = cli.get_string("catalog", "");
  router::RouterOptions options;
  options.vnodes = static_cast<int>(cli.get_int("vnodes", options.vnodes));
  options.probe_interval_ms = static_cast<int>(
      cli.get_int("probe-interval-ms", options.probe_interval_ms));
  options.mark_down_after = static_cast<int>(
      cli.get_int("mark-down-after", options.mark_down_after));
  options.mark_up_after =
      static_cast<int>(cli.get_int("mark-up-after", options.mark_up_after));
  options.forward_timeout_ms =
      cli.get_double("forward-timeout-ms", options.forward_timeout_ms);
  options.forward_retries = static_cast<int>(
      cli.get_int("forward-retries", options.forward_retries));
  options.drain_wait_ms =
      cli.get_double("drain-wait-ms", options.drain_wait_ms);
  const bool quiet = cli.get_bool("quiet", false);
  cli.reject_unknown();

  const bool use_tcp = tcp_port >= 0;
  std::vector<server::Endpoint> endpoints;
  std::istringstream shard_list(shards_arg);
  for (std::string spec; std::getline(shard_list, spec, ',');)
    if (!spec.empty()) endpoints.push_back(server::Endpoint::parse(spec));
  if (socket_path.empty() == !use_tcp || tcp_port > 65535 ||
      endpoints.empty() || options.vnodes < 1) {
    std::cerr << "usage: krsp_router --socket=<path>|--tcp=<port> "
                 "--shards=ep1,ep2,... [--catalog=<dir>] [--vnodes=128] "
                 "[--probe-interval-ms=200] [--mark-down-after=3] "
                 "[--mark-up-after=2] [--forward-timeout-ms=0] "
                 "[--forward-retries=0] [--drain-wait-ms=5000] [--quiet]  "
                 "(exactly one of --socket / --tcp; shard endpoints are "
                 "socket paths or host:port)\n";
    return 2;
  }

  // Same fail-fast contract as krsp_serve: routing on a partial catalog
  // would silently degrade v2 affinity.
  store::TopologyCatalog catalog;
  if (!catalog_dir.empty()) {
    try {
      catalog = store::TopologyCatalog::load(catalog_dir);
    } catch (const std::exception& e) {
      std::cerr << "krsp_router: --catalog: " << e.what() << "\n";
      return 1;
    }
  }

  router::Router router(endpoints, catalog.empty() ? nullptr : &catalog,
                        options);
  std::optional<server::SocketServer> server_storage;
  if (use_tcp) {
    server_storage.emplace(static_cast<server::LineHandler&>(router),
                           static_cast<std::uint16_t>(tcp_port));
  } else {
    server_storage.emplace(static_cast<server::LineHandler&>(router),
                           socket_path);
  }
  server::SocketServer& socket_server = *server_storage;
  std::string error;
  if (!socket_server.start(&error)) {
    std::cerr << "krsp_router: " << error << "\n";
    return 1;
  }
  if (use_tcp) {
    server::wire::ObjectWriter w;
    w.field("event", "listening");
    w.field("transport", "tcp");
    w.field("port", static_cast<std::int64_t>(socket_server.bound_port()));
    std::cout << w.done() << "\n" << std::flush;
  }

  g_server = &socket_server;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  if (!quiet) {
    std::cout << "krsp_router: listening on "
              << (use_tcp ? "tcp port " +
                                std::to_string(socket_server.bound_port())
                          : socket_path)
              << ", fronting " << router.num_shards() << " shard(s):";
    for (std::size_t i = 0; i < router.num_shards(); ++i)
      std::cout << ' ' << router.shard(i).name();
    std::cout << "\n" << std::flush;
  }

  router.start_probing();
  socket_server.serve_forever();  // returns after shutdown op / signal
  router.stop();
  g_server = nullptr;

  // Terminal accounting, mirroring krsp_serve's final_stats contract.
  {
    server::wire::ObjectWriter w;
    w.field("event", "final_stats");
    w.field("router", true);
    w.field("protocol_version",
            static_cast<std::int64_t>(server::kProtocolVersion));
    w.field("shards", static_cast<std::int64_t>(router.num_shards()));
    w.field("requests_routed", router.requests_routed());
    w.field("no_shard_errors", router.no_shard_errors());
    std::string arr = "[";
    for (std::size_t i = 0; i < router.num_shards(); ++i) {
      if (i != 0) arr.push_back(',');
      const router::Shard& shard = router.shard(i);
      server::wire::ObjectWriter entry;
      entry.field("name", shard.name());
      entry.field("state", router::shard_state_name(shard.state()));
      entry.field("forwards_ok", shard.forwards_ok());
      entry.field("forwards_failed", shard.forwards_failed());
      entry.field("forwards_refused", shard.forwards_refused());
      entry.field("probes_ok", shard.probes_ok());
      entry.field("probes_failed", shard.probes_failed());
      entry.field("recoveries", shard.recoveries());
      arr += entry.done();
    }
    arr.push_back(']');
    w.raw("shard_stats", arr);
    w.field("connections", socket_server.connections_accepted());
    w.field("peer_resets", socket_server.peer_resets());
    w.field("send_failures", socket_server.send_failures());
    std::cout << w.done() << "\n" << std::flush;
  }
  return 0;
}

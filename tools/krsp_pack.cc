// Converter and inspector for `.krspb` zero-copy instance containers.
//
//   $ krsp_pack --in=instance.kri --out=instance.krspb    # pack text
//   $ krsp_pack --in=instance.krspb --out=instance.kri    # unpack
//   $ krsp_pack --info=instance.krspb     # header as one JSON line
//   $ krsp_pack --verify=instance.krspb   # full validation, exit 0/1
//
// Direction is chosen by the --out suffix; any input readable as either
// format works as --in (suffix decides the parser). --verify runs the
// complete CsrContainer::open contract — magic, endianness, section
// bounds/alignment, CSR monotonicity, edge-id permutation, content
// digest — and prints the first violated invariant on failure, which is
// how scripts/make_corpus.sh proves the committed corpus is intact.
#include <iostream>

#include "core/io.h"
#include "server/wire.h"
#include "store/container.h"
#include "util/cli.h"

namespace {

using namespace krsp;

bool is_container(const std::string& path) {
  return path.size() >= 6 && path.ends_with(".krspb");
}

std::string hex64(std::uint64_t x) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(x));
  return buf;
}

int info(const std::string& path) {
  const store::CsrContainer c = store::CsrContainer::open(path);
  server::wire::ObjectWriter w;
  w.field("file", path);
  w.field("n", static_cast<std::int64_t>(c.num_vertices()));
  w.field("m", static_cast<std::int64_t>(c.num_edges()));
  w.field("s", static_cast<std::int64_t>(c.s()));
  w.field("t", static_cast<std::int64_t>(c.t()));
  w.field("k", static_cast<std::int64_t>(c.k()));
  w.field("delay_bound", static_cast<std::int64_t>(c.delay_bound()));
  w.field("digest", hex64(c.digest()));
  w.field("file_bytes", c.file_bytes());
  std::cout << w.done() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string in = cli.get_string("in", "");
  const std::string out = cli.get_string("out", "");
  const std::string info_path = cli.get_string("info", "");
  const std::string verify_path = cli.get_string("verify", "");
  cli.reject_unknown();

  try {
    if (!info_path.empty()) return info(info_path);
    if (!verify_path.empty()) {
      const store::CsrContainer c = store::CsrContainer::open(verify_path);
      std::cout << "ok: " << verify_path << " n=" << c.num_vertices()
                << " m=" << c.num_edges() << " digest=" << hex64(c.digest())
                << "\n";
      return 0;
    }
    if (in.empty() || out.empty()) {
      std::cerr << "usage: krsp_pack --in=<file> --out=<file> | "
                   "--info=<file.krspb> | --verify=<file.krspb>\n";
      return 2;
    }
    const core::Instance inst = is_container(in)
                                    ? store::CsrContainer::open(in).instance()
                                    : core::read_instance_file(in);
    if (is_container(out)) {
      store::CsrContainer::write_file(out, inst);
    } else {
      core::write_instance_file(out, inst);
    }
    std::cout << "wrote " << out << ": " << inst.summary() << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "krsp_pack: " << e.what() << "\n";
    return 1;
  }
}

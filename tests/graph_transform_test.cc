#include "graph/transform.h"

#include <gtest/gtest.h>

#include "flow/dinic.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::graph {
namespace {

TEST(SplitGraph, StructureDoubleVerticesGatesFirst) {
  Digraph g(3);
  g.add_edge(0, 1, 4, 7);
  g.add_edge(1, 2, 2, 3);
  const SplitGraph split(g);
  EXPECT_EQ(split.digraph().num_vertices(), 6);
  EXPECT_EQ(split.digraph().num_edges(), 3 + 2);  // gates + arcs
  for (VertexId v = 0; v < 3; ++v) {
    EXPECT_TRUE(split.is_gate(v));  // gate ids coincide with base vertex ids
    const auto& gate = split.digraph().edge(v);
    EXPECT_EQ(gate.from, split.in_vertex(v));
    EXPECT_EQ(gate.to, split.out_vertex(v));
    EXPECT_EQ(gate.cost, 0);
    EXPECT_EQ(gate.delay, 0);
  }
}

TEST(SplitGraph, ArcsConnectOutToIn) {
  Digraph g(2);
  g.add_edge(0, 1, 4, 7);
  const SplitGraph split(g);
  const EdgeId split_arc = 2;  // after the 2 gates
  EXPECT_FALSE(split.is_gate(split_arc));
  EXPECT_EQ(split.base_edge_of(split_arc), 0);
  const auto& arc = split.digraph().edge(split_arc);
  EXPECT_EQ(arc.from, split.out_vertex(0));
  EXPECT_EQ(arc.to, split.in_vertex(1));
  EXPECT_EQ(arc.cost, 4);
  EXPECT_EQ(arc.delay, 7);
}

TEST(SplitGraph, ProjectPathDropsGates) {
  Digraph g(3);
  const EdgeId a = g.add_edge(0, 1, 1, 1);
  const EdgeId b = g.add_edge(1, 2, 1, 1);
  const SplitGraph split(g);
  // Split path: arc(a), gate(1), arc(b) — from out(0) to in(2).
  const std::vector<EdgeId> split_path{3, 1, 4};
  EXPECT_TRUE(is_walk(split.digraph(), split_path, split.out_vertex(0),
                      split.in_vertex(2)));
  const auto base = split.project_path(split_path);
  EXPECT_EQ(base, (std::vector<EdgeId>{a, b}));
}

// Property: max vertex-disjoint paths (flow through split graph) is at most
// max edge-disjoint paths, and equals it on graphs without shared vertices.
TEST(SplitGraph, PropertyMengerVertexVsEdge) {
  util::Rng rng(359);
  for (int trial = 0; trial < 20; ++trial) {
    const auto g = gen::erdos_renyi(rng, 10, 0.3);
    const VertexId s = 0, t = 9;
    const int edge_disjoint = flow::max_edge_disjoint_paths(g, s, t);
    const SplitGraph split(g);
    const int vertex_disjoint = flow::max_edge_disjoint_paths(
        split.digraph(), split.out_vertex(s), split.in_vertex(t));
    EXPECT_LE(vertex_disjoint, edge_disjoint);
    if (edge_disjoint > 0) {
      EXPECT_GE(vertex_disjoint, 1);
    }
  }
}

TEST(SplitGraph, BowtieVertexDisjointIsOne) {
  // Two edge-disjoint paths sharing the middle vertex 2: edge-disjoint = 2,
  // vertex-disjoint = 1.
  Digraph g(5);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(1, 4, 1, 1);
  g.add_edge(0, 2, 1, 1);
  g.add_edge(2, 4, 1, 1);
  // Rewire so both paths pass vertex 2... build explicitly:
  Digraph h(4);
  h.add_edge(0, 1, 1, 1);
  h.add_edge(1, 3, 1, 1);
  h.add_edge(0, 1, 2, 2);  // parallel edge through the same vertex 1
  h.add_edge(1, 3, 2, 2);
  EXPECT_EQ(flow::max_edge_disjoint_paths(h, 0, 3), 2);
  const SplitGraph split(h);
  EXPECT_EQ(flow::max_edge_disjoint_paths(split.digraph(),
                                          split.out_vertex(0),
                                          split.in_vertex(3)),
            1);
}

}  // namespace
}  // namespace krsp::graph

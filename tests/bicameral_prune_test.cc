// Property test for the residual-structure pruning of the bicameral finder:
// the pruned kernel (seed anchors on SCC-compacted states, flat tables) and
// the disable_pruning ablation (full n-anchor scan, full state space, legacy
// nested tables — but the shared seed-only selection contract) must return
// exactly the same result — same presence, same edges, same cost/delay/type
// — on randomized residual graphs spanning the no-negative-arc, single-SCC
// and many-SCC regimes. Equality hinges on the flat kernel being
// execution-equivalent to the legacy kernel at every seed anchor; this is
// the executable form of the equivalence argument in DESIGN.md §3.

#include <gtest/gtest.h>

#include "core/bicameral.h"
#include "graph/cycles.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::core {
namespace {

using graph::Cost;
using graph::EdgeId;
using util::Rational;

// Random flow set: any duplicate-free edge subset is a valid ResidualGraph
// flow set (rebuild only reverses and negates the chosen edges), and random
// subsets produce far more varied negative-arc structure than actual
// disjoint-path solutions would.
std::vector<EdgeId> random_flow_subset(util::Rng& rng,
                                       const graph::Digraph& g,
                                       double keep_prob) {
  std::vector<EdgeId> flow;
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (rng.bernoulli(keep_prob)) flow.push_back(e);
  return flow;
}

BicameralQuery random_query(util::Rng& rng) {
  BicameralQuery q;
  q.cap = static_cast<Cost>(rng.uniform_int(1, 40));
  q.ratio = Rational(-static_cast<std::int64_t>(rng.uniform_int(0, 4)),
                     static_cast<std::int64_t>(rng.uniform_int(1, 6)));
  q.enforce_cap = rng.uniform_int(0, 4) != 0;  // 20% uncapped ablation mode
  return q;
}

// Runs the pruned kernel (parallel and serial-workspace paths) and the
// ablation on the same residual/query and checks exact agreement.
void expect_modes_identical(const ResidualGraph& residual,
                            const BicameralQuery& q, const char* context) {
  BicameralStats pruned_stats;
  BicameralStats ablation_stats;
  const BicameralCycleFinder pruned_finder;
  const BicameralCycleFinder ablation_finder{[] {
    BicameralCycleFinder::Options o;
    o.disable_pruning = true;
    return o;
  }()};

  const auto pruned = pruned_finder.find(residual, q, &pruned_stats);
  const auto ablation = ablation_finder.find(residual, q, &ablation_stats);
  BicameralWorkspace ws;
  const auto pruned_serial = pruned_finder.find(residual, q, nullptr, &ws);

  ASSERT_EQ(pruned.has_value(), ablation.has_value()) << context;
  ASSERT_EQ(pruned.has_value(), pruned_serial.has_value()) << context;
  if (pruned.has_value()) {
    EXPECT_EQ(pruned->edges, ablation->edges) << context;
    EXPECT_EQ(pruned->cost, ablation->cost) << context;
    EXPECT_EQ(pruned->delay, ablation->delay) << context;
    EXPECT_EQ(pruned->type, ablation->type) << context;
    EXPECT_EQ(pruned->edges, pruned_serial->edges) << context;
    EXPECT_EQ(pruned->type, pruned_serial->type) << context;

    // Returned cycles are genuine and self-consistent.
    EXPECT_TRUE(graph::is_simple_cycle(residual.digraph(), pruned->edges))
        << context;
    EXPECT_EQ(residual.cycle_cost(pruned->edges), pruned->cost) << context;
    EXPECT_EQ(residual.cycle_delay(pruned->edges), pruned->delay) << context;
    const auto type = BicameralCycleFinder::classify(
        pruned->cost, pruned->delay, q.cap, q.ratio, q.enforce_cap);
    ASSERT_TRUE(type.has_value()) << context;
    EXPECT_EQ(*type, pruned->type) << context;
  }

  // Pruning only removes work, never adds it.
  EXPECT_LE(pruned_stats.anchors_scanned, ablation_stats.anchors_scanned)
      << context;
  EXPECT_EQ(ablation_stats.sccs_skipped, 0) << context;
}

TEST(BicameralPrune, NoNegativeArcResidualsReturnNothing) {
  util::Rng rng(0xabc1);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(4, 12));
    gen::WeightRange w;
    w.cost_min = trial % 3 == 0 ? 0 : 1;  // exercise zero-cost layers too
    const auto g = gen::erdos_renyi(rng, n, 0.35, w);
    // Empty flow set: every residual arc keeps its non-negative weights.
    const ResidualGraph residual(g, {});
    ASSERT_TRUE(residual.negative_arcs().empty());
    const BicameralQuery q = random_query(rng);
    BicameralStats stats;
    EXPECT_FALSE(
        BicameralCycleFinder().find(residual, q, &stats).has_value());
    // The seed fast path answers without scanning a single anchor.
    EXPECT_EQ(stats.anchors_scanned, 0);
    expect_modes_identical(residual, q, "no-negative-arc");
  }
}

TEST(BicameralPrune, DenseSingleSccInstancesMatch) {
  util::Rng rng(0xabc2);
  for (int trial = 0; trial < 90; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(6, 12));
    gen::WeightRange w;
    w.cost_max = static_cast<Cost>(rng.uniform_int(2, 10));
    w.delay_max = static_cast<Cost>(rng.uniform_int(2, 10));
    if (trial % 4 == 0) w.cost_min = 0;
    const auto g = gen::erdos_renyi(rng, n, 0.5, w);
    const ResidualGraph residual(g, random_flow_subset(rng, g, 0.4));
    expect_modes_identical(residual, random_query(rng), "dense");
  }
}

TEST(BicameralPrune, SparseManySccInstancesMatch) {
  util::Rng rng(0xabc3);
  for (int trial = 0; trial < 90; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(8, 16));
    gen::WeightRange w;
    w.cost_max = static_cast<Cost>(rng.uniform_int(2, 8));
    w.delay_max = static_cast<Cost>(rng.uniform_int(2, 8));
    const auto g = gen::erdos_renyi(rng, n, 0.12, w);
    const ResidualGraph residual(g, random_flow_subset(rng, g, 0.3));
    expect_modes_identical(residual, random_query(rng), "sparse");
  }
}

TEST(BicameralPrune, WorkspaceReuseAcrossShapesIsStable) {
  // One workspace across residuals of very different sizes and budgets:
  // the grown tables must never leak stale state into later finds.
  util::Rng rng(0xabc4);
  BicameralWorkspace ws;
  const BicameralCycleFinder finder;
  for (int trial = 0; trial < 30; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(4, 14));
    const double p = trial % 2 == 0 ? 0.5 : 0.15;
    const auto g = gen::erdos_renyi(rng, n, p, {});
    const ResidualGraph residual(g, random_flow_subset(rng, g, 0.4));
    const BicameralQuery q = random_query(rng);
    const auto fresh = finder.find(residual, q);
    const auto reused = finder.find(residual, q, nullptr, &ws);
    ASSERT_EQ(fresh.has_value(), reused.has_value());
    if (fresh.has_value()) {
      EXPECT_EQ(fresh->edges, reused->edges);
      EXPECT_EQ(fresh->cost, reused->cost);
      EXPECT_EQ(fresh->delay, reused->delay);
      EXPECT_EQ(fresh->type, reused->type);
    }
  }
}

}  // namespace
}  // namespace krsp::core

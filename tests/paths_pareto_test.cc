#include "paths/pareto.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "paths/rsp.h"
#include "util/rng.h"

namespace krsp::paths {
namespace {

using graph::Digraph;

TEST(Pareto, ThreeRouteFrontier) {
  Digraph g(4);
  g.add_edge(0, 3, 9, 1);   // fast, pricey
  g.add_edge(0, 1, 2, 4);
  g.add_edge(1, 3, 2, 4);   // balanced: (4, 8)
  g.add_edge(0, 2, 1, 8);
  g.add_edge(2, 3, 1, 8);   // cheap, slow: (2, 16)
  const auto frontier = pareto_frontier(g, 0, 3);
  ASSERT_EQ(frontier.size(), 3u);
  EXPECT_EQ(frontier[0].cost, 2);
  EXPECT_EQ(frontier[0].delay, 16);
  EXPECT_EQ(frontier[1].cost, 4);
  EXPECT_EQ(frontier[1].delay, 8);
  EXPECT_EQ(frontier[2].cost, 9);
  EXPECT_EQ(frontier[2].delay, 1);
}

TEST(Pareto, DominatedRouteExcluded) {
  Digraph g(3);
  g.add_edge(0, 2, 3, 3);
  g.add_edge(0, 1, 2, 1);
  g.add_edge(1, 2, 2, 1);  // (4, 2): neither dominates (3, 3)... both stay
  const auto f1 = pareto_frontier(g, 0, 2);
  EXPECT_EQ(f1.size(), 2u);
  Digraph h(3);
  h.add_edge(0, 2, 3, 3);
  h.add_edge(0, 1, 1, 1);
  h.add_edge(1, 2, 1, 1);  // (2, 2) dominates (3, 3)
  const auto f2 = pareto_frontier(h, 0, 2);
  ASSERT_EQ(f2.size(), 1u);
  EXPECT_EQ(f2[0].cost, 2);
}

TEST(Pareto, UnreachableGivesEmpty) {
  Digraph g(2);
  EXPECT_TRUE(pareto_frontier(g, 0, 1).empty());
}

TEST(Pareto, PathsReconstructCorrectly) {
  util::Rng rng(373);
  const auto g = gen::erdos_renyi(rng, 10, 0.3);
  for (const auto& p : pareto_frontier(g, 0, 9)) {
    EXPECT_TRUE(graph::is_simple_path(g, p.edges, 0, 9));
    EXPECT_EQ(graph::path_cost(g, p.edges), p.cost);
    EXPECT_EQ(graph::path_delay(g, p.edges), p.delay);
  }
}

TEST(Pareto, FrontierIsMutuallyNonDominated) {
  util::Rng rng(379);
  for (int trial = 0; trial < 15; ++trial) {
    const auto g = gen::erdos_renyi(rng, 9, 0.35);
    const auto frontier = pareto_frontier(g, 0, 8);
    for (std::size_t i = 0; i < frontier.size(); ++i)
      for (std::size_t j = 0; j < frontier.size(); ++j) {
        if (i == j) continue;
        const bool dominates = frontier[i].cost <= frontier[j].cost &&
                               frontier[i].delay <= frontier[j].delay;
        EXPECT_FALSE(dominates) << "frontier point " << j << " dominated";
      }
  }
}

// Property: rsp_via_frontier agrees exactly with the RSP delay DP.
TEST(Pareto, PropertyRspAgreement) {
  util::Rng rng(383);
  int compared = 0;
  for (int trial = 0; trial < 25; ++trial) {
    const auto g = gen::erdos_renyi(rng, 9, 0.3);
    for (const graph::Delay D : {3, 10, 25}) {
      const auto a = rsp_via_frontier(g, 0, 8, D);
      const auto b = rsp_exact(g, 0, 8, D);
      ASSERT_EQ(a.has_value(), b.has_value());
      if (a) {
        EXPECT_EQ(a->cost, b->cost) << "D=" << D;
        EXPECT_LE(a->delay, D);
        ++compared;
      }
    }
  }
  EXPECT_GT(compared, 10);
}

TEST(Pareto, LabelBudgetEnforced) {
  util::Rng rng(389);
  const auto g = gen::erdos_renyi(rng, 12, 0.6);
  ParetoOptions opt;
  opt.max_labels = 10;
  EXPECT_THROW(pareto_frontier(g, 0, 11, opt), util::CheckError);
}

TEST(Pareto, NegativeWeightsRejected) {
  Digraph g(2);
  g.add_edge(0, 1, -1, 1);
  EXPECT_THROW(pareto_frontier(g, 0, 1), util::CheckError);
}

}  // namespace
}  // namespace krsp::paths

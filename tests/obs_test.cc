// krsp::obs unit + property tests: histogram edge cases (empty, single
// sample, zero, beyond-top-bucket clamp, quantile monotonicity),
// concurrent recording (exercised under TSan by the CI leg), tracer
// capture/sampling/cap semantics, Prometheus exposition shape, Chrome
// trace export shape, and the bit-identity contract: solves return the
// same result with tracing on and off.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/krsp.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace krsp::obs {
namespace {

// ---------------------------------------------------------------- histogram

TEST(ObsHistogram, EmptySnapshotIsAllZero) {
  Histogram h;
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  for (const double q : {0.0, 0.5, 0.99, 1.0}) EXPECT_EQ(s.quantile(q), 0.0);
}

TEST(ObsHistogram, SingleSampleQuantilesStayInItsBucket) {
  Histogram h;
  h.record(100);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.sum, 100u);
  const int b = Histogram::bucket_index(100);
  for (const double q : {0.0, 0.5, 0.999, 1.0}) {
    const double v = s.quantile(q);
    EXPECT_GE(v, static_cast<double>(Histogram::bucket_lower(b)));
    EXPECT_LE(v, static_cast<double>(Histogram::bucket_upper(b)));
  }
}

TEST(ObsHistogram, ZeroLandsInBucketZero) {
  Histogram h;
  h.record(0);
  EXPECT_EQ(Histogram::bucket_index(0), 0);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_LE(s.quantile(0.5), 1.0);  // inside bucket 0 = [0, 1)
}

TEST(ObsHistogram, BeyondTopBucketClampsInsteadOfDropping) {
  Histogram h;
  h.record(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<std::uint64_t>::max()),
            Histogram::kBuckets - 1);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1u);  // record() stays total
  const double v = s.quantile(0.99);
  EXPECT_GE(v, static_cast<double>(
                   Histogram::bucket_lower(Histogram::kBuckets - 1)));
  EXPECT_LE(v, static_cast<double>(
                   Histogram::bucket_upper(Histogram::kBuckets - 1)));
}

TEST(ObsHistogram, BucketBoundsArePartitionedAndSelfConsistent) {
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_LT(Histogram::bucket_lower(i), Histogram::bucket_upper(i));
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower(i)), i);
    if (i + 1 < Histogram::kBuckets) {
      EXPECT_EQ(Histogram::bucket_upper(i), Histogram::bucket_lower(i + 1));
    }
  }
  // The value just below each upper bound still lands in bucket i.
  for (int i = 0; i + 1 < Histogram::kBuckets; ++i)
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_upper(i) - 1), i);
}

TEST(ObsHistogram, QuantileIsMonotoneInQ) {
  Histogram h;
  util::Rng rng(7);
  for (int i = 0; i < 5000; ++i)
    h.record(static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20)));
  const Histogram::Snapshot s = h.snapshot();
  double prev = -1.0;
  for (int step = 0; step <= 1000; ++step) {
    const double v = s.quantile(static_cast<double>(step) / 1000.0);
    EXPECT_GE(v, prev) << "quantile not monotone at q=" << step / 1000.0;
    prev = v;
  }
}

TEST(ObsHistogram, QuantileWithinBucketResolutionOfExact) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const Histogram::Snapshot s = h.snapshot();
  // Log bucketing guarantees at most a 2x value error.
  EXPECT_GE(s.quantile(0.5), 250.0);
  EXPECT_LE(s.quantile(0.5), 1000.0);
  EXPECT_GE(s.quantile(0.99), 495.0);
}

TEST(ObsHistogram, ConcurrentRecordingLosesNothing) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.record(static_cast<std::uint64_t>(t * kPerThread + i));
    });
  }
  for (auto& th : threads) th.join();
  const Histogram::Snapshot s = h.snapshot();
  constexpr std::uint64_t kN = std::uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(s.count, kN);
  EXPECT_EQ(s.sum, kN * (kN - 1) / 2);  // sum of 0..kN-1
  std::uint64_t in_buckets = 0;
  for (const auto b : s.buckets) in_buckets += b;
  EXPECT_EQ(in_buckets, kN);
}

// ----------------------------------------------------------- counter/gauge

TEST(ObsCounter, ConcurrentIncrementsAllLand) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), std::uint64_t{kThreads} * kPerThread);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, SetAddReset) {
  Gauge g;
  g.set(10);
  g.add(-25);
  EXPECT_EQ(g.value(), -15);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

// ----------------------------------------------------------------- registry

TEST(ObsRegistry, ExpositionCarriesPerClassP99) {
  Registry& reg = Registry::global();
  reg.histogram("krsp_serve_latency_ns", "class=\"interactive\"").record(1000);
  reg.histogram("krsp_serve_latency_ns", "class=\"batch\"").record(8000);
  reg.counter("krsp_serve_requests_total",
              "class=\"interactive\",outcome=\"served\"")
      .inc();
  const std::string text = reg.render_prometheus();
  EXPECT_NE(text.find("# TYPE krsp_serve_latency_ns summary"),
            std::string::npos);
  EXPECT_NE(
      text.find("krsp_serve_latency_ns{class=\"interactive\",quantile=\"0.99\"}"),
      std::string::npos);
  EXPECT_NE(text.find("krsp_serve_latency_ns{class=\"batch\",quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("krsp_serve_latency_ns_count{class=\"interactive\"}"),
            std::string::npos);
  EXPECT_NE(text.find("krsp_serve_requests_total{class=\"interactive\","
                      "outcome=\"served\"}"),
            std::string::npos);
  // Every non-comment line is `name[{labels}] value` — two tokens once
  // the label body (which may contain spaces in principle) is atomic.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW(static_cast<void>(std::stod(line.substr(space + 1))))
        << line;
  }
}

TEST(ObsRegistry, SameKeyYieldsSameMetric) {
  Registry& reg = Registry::global();
  Counter& a = reg.counter("obs_test_dup", "k=\"v\"");
  Counter& b = reg.counter("obs_test_dup", "k=\"v\"");
  EXPECT_EQ(&a, &b);
  Counter& c = reg.counter("obs_test_dup", "k=\"w\"");
  EXPECT_NE(&a, &c);
}

// ------------------------------------------------------------------- tracer

// The global tracer carries state across tests; each tracer test starts
// from a clean, disabled, default-knob state and restores it on exit.
class ObsTracerTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_tracer(); }
  void TearDown() override { reset_tracer(); }
  static void reset_tracer() {
    Tracer& t = Tracer::global();
    t.disable();
    t.set_sample_every(1);
    t.set_max_spans_per_thread(std::size_t{1} << 20);
    t.clear();
  }
};

TEST_F(ObsTracerTest, DisabledRecordsNothing) {
  { KRSP_OBS_SPAN("obs_test_disabled"); }
  Tracer::global().record("obs_test_disabled_manual", 0, 10);
  EXPECT_TRUE(Tracer::global().snapshot().empty());
}

TEST_F(ObsTracerTest, CapturesNamedSpansWithSaneTimestamps) {
  Tracer::global().enable();
  {
    // Direct Span objects (not the macros): the class keeps working in
    // KRSP_OBS=OFF builds, so these semantics tests hold there too.
    const Span outer("obs_test_outer");
    const Span inner("obs_test_inner");
  }
  Tracer::global().disable();
  const auto spans = Tracer::global().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  bool saw_outer = false;
  bool saw_inner = false;
  for (const auto& s : spans) {
    EXPECT_GE(s.start_ns, 0);
    EXPECT_GE(s.dur_ns, 0);
    if (std::string(s.name) == "obs_test_outer") saw_outer = true;
    if (std::string(s.name) == "obs_test_inner") saw_inner = true;
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
}

TEST_F(ObsTracerTest, SamplingKeepsOneInEveryN) {
  Tracer& t = Tracer::global();
  t.set_sample_every(4);
  t.enable();
  for (int i = 0; i < 100; ++i) {
    const Span span("obs_test_sampled");
  }
  t.disable();
  EXPECT_EQ(t.snapshot().size(), 25u);
}

TEST_F(ObsTracerTest, PerThreadCapDropsAndCounts) {
  Tracer& t = Tracer::global();
  t.set_max_spans_per_thread(10);
  t.enable();
  for (int i = 0; i < 25; ++i) {
    const Span span("obs_test_capped");
  }
  t.disable();
  EXPECT_EQ(t.snapshot().size(), 10u);
  EXPECT_EQ(t.dropped(), 15u);
  t.clear();
  EXPECT_EQ(t.dropped(), 0u);
}

TEST_F(ObsTracerTest, ConcurrentRecordingKeepsPerThreadIds) {
  Tracer& t = Tracer::global();
  t.enable();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([] {
      for (int j = 0; j < kPerThread; ++j) {
        const Span span("obs_test_mt");
      }
    });
  for (auto& th : threads) th.join();
  t.disable();
  const auto spans = t.snapshot();
  EXPECT_EQ(spans.size() + t.dropped(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST_F(ObsTracerTest, ChromeTraceExportShape) {
  Tracer& t = Tracer::global();
  t.enable();
  { const Span span("obs_test_export"); }
  t.disable();
  std::ostringstream out;
  write_chrome_trace(out, t.snapshot());
  const std::string json = out.str();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"obs_test_export\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

// -------------------------------------------------------------- bit identity

TEST_F(ObsTracerTest, SolveResultsBitIdenticalOnVsOff) {
  util::Rng rng(91);
  for (int trial = 0; trial < 4; ++trial) {
    api::RandomInstanceOptions io;
    io.k = 2 + trial % 2;
    io.delay_slack = 0.25;
    auto inst = api::random_er_instance(rng, 12, 0.35, io);
    if (!inst) continue;
    api::SolveRequest req;
    req.instance = std::move(*inst);
    req.mode = trial % 2 == 0 ? api::Mode::kExactWeights : api::Mode::kScaled;

    Tracer::global().disable();
    const api::SolveResult off = api::Solver::solve(req);
    Tracer::global().clear();
    Tracer::global().enable();
    const api::SolveResult on = api::Solver::solve(req);
    Tracer::global().disable();

    EXPECT_EQ(off.status, on.status);
    EXPECT_EQ(off.cost, on.cost);
    EXPECT_EQ(off.delay, on.delay);
    EXPECT_EQ(off.paths.paths(), on.paths.paths());
    EXPECT_EQ(off.telemetry.cost_guess_used, on.telemetry.cost_guess_used);
#if !defined(KRSP_OBS_DISABLED)
    if (off.status == api::SolveStatus::kOptimal ||
        off.status == api::SolveStatus::kApprox) {
      EXPECT_FALSE(Tracer::global().snapshot().empty());
    }
#endif
    Tracer::global().clear();
  }
}

}  // namespace
}  // namespace krsp::obs

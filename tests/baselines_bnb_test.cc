#include "baselines/bnb.h"

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "core/solver.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::baselines {
namespace {

using core::Instance;

Instance diamond(graph::Delay D) {
  Instance inst;
  inst.graph.resize(4);
  inst.graph.add_edge(0, 1, 1, 3);
  inst.graph.add_edge(1, 3, 1, 3);
  inst.graph.add_edge(0, 2, 5, 1);
  inst.graph.add_edge(2, 3, 5, 1);
  inst.graph.add_edge(0, 3, 2, 2);
  inst.s = 0;
  inst.t = 3;
  inst.k = 2;
  inst.delay_bound = D;
  return inst;
}

TEST(BranchAndBound, SolvesDiamondTightAndLoose) {
  const auto loose = branch_and_bound_krsp(diamond(8));
  ASSERT_TRUE(loose.has_value());
  EXPECT_EQ(loose->cost, 4);
  const auto tight = branch_and_bound_krsp(diamond(4));
  ASSERT_TRUE(tight.has_value());
  EXPECT_EQ(tight->cost, 12);
  EXPECT_FALSE(branch_and_bound_krsp(diamond(3)).has_value());
}

TEST(BranchAndBound, OutputsValidPaths) {
  const auto inst = diamond(8);
  const auto r = branch_and_bound_krsp(inst);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->paths.is_valid(inst));
  EXPECT_EQ(r->paths.total_cost(inst.graph), r->cost);
  EXPECT_LE(r->delay, inst.delay_bound);
  EXPECT_GT(r->nodes_explored, 0);
}

// Property: B&B agrees with the path-enumeration brute force on every
// feasible/infeasible call.
TEST(BranchAndBound, PropertyMatchesBruteForce) {
  util::Rng rng(401);
  int compared = 0;
  for (int trial = 0; trial < 25; ++trial) {
    core::RandomInstanceOptions opt;
    opt.k = 2;
    opt.delay_slack = 0.25;
    const auto inst = core::random_er_instance(rng, 9, 0.35, opt);
    if (!inst) continue;
    const auto a = branch_and_bound_krsp(*inst);
    const auto b = brute_force_krsp(*inst);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a) {
      EXPECT_EQ(a->cost, b->cost) << inst->summary();
      ++compared;
    }
  }
  EXPECT_GT(compared, 10);
}

// B&B reaches sizes brute force cannot enumerate; the solver's bifactor
// guarantee is validated against it there.
TEST(BranchAndBound, ExtendsOracleRangeAndBoundsSolver) {
  util::Rng rng(409);
  gen::WeightRange w;
  w.cost_max = 6;
  w.delay_max = 6;
  int checked = 0;
  for (int trial = 0; trial < 6; ++trial) {
    core::RandomInstanceOptions opt;
    opt.k = 2;
    opt.delay_slack = 0.2;
    const auto inst = core::random_er_instance(rng, 14, 0.22, opt, w);
    if (!inst) continue;
    const auto exact = branch_and_bound_krsp(*inst);
    ASSERT_TRUE(exact.has_value());  // feasible by construction
    core::SolverOptions sopt;
    sopt.mode = core::SolverOptions::Mode::kExactWeights;
    const auto s = core::KrspSolver(sopt).solve(*inst);
    ASSERT_TRUE(s.has_paths());
    ++checked;
    EXPECT_LE(s.delay, inst->delay_bound);
    EXPECT_LE(s.cost, 2 * (exact->cost + 1)) << inst->summary();
    EXPECT_GE(s.cost, exact->cost);
  }
  EXPECT_GT(checked, 2);
}

TEST(BranchAndBound, NodeBudgetEnforced) {
  util::Rng rng(419);
  core::RandomInstanceOptions opt;
  opt.k = 2;
  opt.delay_slack = 0.1;
  const auto inst = core::random_er_instance(rng, 10, 0.4, opt);
  ASSERT_TRUE(inst.has_value());
  BnbOptions bopt;
  bopt.max_nodes = 1;
  // Either it solves at the root (fine) or the budget check fires.
  try {
    const auto r = branch_and_bound_krsp(*inst, bopt);
    if (r) SUCCEED();
  } catch (const util::CheckError&) {
    SUCCEED();
  }
}

}  // namespace
}  // namespace krsp::baselines

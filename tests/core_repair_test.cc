#include "core/repair.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "graph/generators.h"
#include "resilience/audit.h"
#include "util/rng.h"

namespace krsp::core {
namespace {

// s=0, t=3; three parallel two-hop routes A (cheap), B (mid), C (pricey).
Instance triple_route() {
  Instance inst;
  inst.graph.resize(5);
  inst.graph.add_edge(0, 1, 1, 2);  // e0  A
  inst.graph.add_edge(1, 3, 1, 2);  // e1  A
  inst.graph.add_edge(0, 2, 2, 2);  // e2  B
  inst.graph.add_edge(2, 3, 2, 2);  // e3  B
  inst.graph.add_edge(0, 4, 5, 2);  // e4  C
  inst.graph.add_edge(4, 3, 5, 2);  // e5  C
  inst.s = 0;
  inst.t = 3;
  inst.k = 2;
  inst.delay_bound = 8;
  return inst;
}

TEST(Repair, UntouchedWhenFailedEdgeUnused) {
  const auto inst = triple_route();
  const PathSet current({{0, 1}, {2, 3}});  // routes A + B
  const auto r = repair_after_edge_failure(inst, current, 4);  // C fails
  EXPECT_EQ(r.outcome, RepairOutcome::kUntouched);
  EXPECT_EQ(r.cost, 6);
}

TEST(Repair, LocalRepairReplacesOnlyBrokenPath) {
  const auto inst = triple_route();
  const PathSet current({{0, 1}, {2, 3}});
  const auto r = repair_after_edge_failure(inst, current, 0);  // A fails
  ASSERT_EQ(r.outcome, RepairOutcome::kLocalRepair);
  EXPECT_TRUE(r.paths.is_valid(inst));
  EXPECT_LE(r.delay, inst.delay_bound);
  // B survives untouched; A is replaced by C.
  EXPECT_EQ(r.cost, 2 + 2 + 5 + 5);
  bool b_survives = false;
  for (const auto& p : r.paths.paths())
    if (p == std::vector<graph::EdgeId>{2, 3}) b_survives = true;
  EXPECT_TRUE(b_survives);
}

TEST(Repair, InfeasibleWhenConnectivityDropsBelowK) {
  auto inst = triple_route();
  inst.k = 3;
  inst.delay_bound = 12;
  const PathSet current({{0, 1}, {2, 3}, {4, 5}});
  const auto r = repair_after_edge_failure(inst, current, 2);
  EXPECT_EQ(r.outcome, RepairOutcome::kInfeasible);
}

TEST(Repair, FullResolveWhenLocalBudgetInsufficient) {
  // Survivor path B is slow; after A fails, the leftover budget cannot fit
  // ANY replacement, but a full re-solve can swap B out too.
  Instance inst;
  inst.graph.resize(5);
  inst.graph.add_edge(0, 1, 1, 1);  // e0 A fast-cheap
  inst.graph.add_edge(1, 3, 1, 1);  // e1
  inst.graph.add_edge(0, 2, 1, 5);  // e2 B slow-cheap
  inst.graph.add_edge(2, 3, 1, 5);  // e3
  inst.graph.add_edge(0, 4, 9, 1);  // e4 C fast-pricey
  inst.graph.add_edge(4, 3, 9, 1);  // e5
  inst.s = 0;
  inst.t = 3;
  inst.k = 2;
  inst.delay_bound = 12;
  const PathSet current({{0, 1}, {2, 3}});  // A + B: delay 12, at the cap
  // A fails. Local: survivors = {B} (delay 10), leftover 2 — C has delay 2:
  // actually feasible! Tighten: bound 11 -> leftover 1 < 2.
  inst.delay_bound = 11;
  // Current must still be valid: A+B delay 12 > 11 — use A+C instead.
  const PathSet tight_current({{0, 1}, {4, 5}});  // delay 4, cost 20
  const auto r = repair_after_edge_failure(inst, tight_current, 0);
  // Local: survivor C (delay 2), leftover 9; replacement B (delay 10) no,
  // no other route — falls back to full resolve which needs two routes
  // from {B, C} minus A: B+C delay 12 > 11 -> infeasible.
  EXPECT_EQ(r.outcome, RepairOutcome::kInfeasible);
}

// Cumulative failure sequence followed by recoveries: each step passes the
// *whole* outstanding failure set, and the repaired state is audited with
// the resilience invariant checker after every transition.
TEST(Repair, CumulativeFailuresThenRecoveries) {
  const auto inst = triple_route();
  const auto audit = [&](const PathSet& served,
                         const std::unordered_set<graph::EdgeId>& failed) {
    const auto report = resilience::audit_served_paths(
        inst, served, failed, inst.delay_bound,
        served.total_cost(inst.graph), served.total_delay(inst.graph));
    return report.paths_served;
  };

  PathSet served({{0, 1}, {2, 3}});  // A + B, cost 6
  std::unordered_set<graph::EdgeId> failed;
  EXPECT_EQ(audit(served, failed), 2);

  // Failure 1: e0 (A). Local repair swaps in C.
  failed.insert(0);
  std::vector<graph::EdgeId> cumulative(failed.begin(), failed.end());
  auto r = repair_after_failures(inst, served, cumulative, {});
  ASSERT_EQ(r.outcome, RepairOutcome::kLocalRepair);
  EXPECT_EQ(r.cost, 14);  // B + C
  served = r.paths;
  EXPECT_EQ(audit(served, failed), 2);

  // Failure 2: e3 (B). Only route C is intact — no 2-path repair exists.
  failed.insert(3);
  cumulative.assign(failed.begin(), failed.end());
  r = repair_after_failures(inst, served, cumulative, {});
  EXPECT_EQ(r.outcome, RepairOutcome::kInfeasible);
  // A controller sheds the broken path and serves the survivor; that
  // reduced state still passes the audit.
  const PathSet survivor({{4, 5}});
  EXPECT_EQ(audit(survivor, failed), 1);

  // Recovery 1: e0 returns. Repairing the pre-shed set against the smaller
  // outstanding failure set brings service back to k paths via route A.
  failed.erase(0);
  cumulative.assign(failed.begin(), failed.end());
  r = repair_after_failures(inst, served, cumulative, {});
  ASSERT_EQ(r.outcome, RepairOutcome::kLocalRepair);
  EXPECT_EQ(r.cost, 12);  // A + C
  served = r.paths;
  EXPECT_EQ(audit(served, failed), 2);

  // Recovery 2: e3 returns. Nothing served is broken anymore.
  failed.erase(3);
  cumulative.clear();
  r = repair_after_failures(inst, served, cumulative, {});
  EXPECT_EQ(r.outcome, RepairOutcome::kUntouched);
  EXPECT_EQ(r.cost, 12);
  EXPECT_EQ(audit(r.paths, failed), 2);
}

// Property: repair outcomes are always verified-feasible and never worse
// than a fresh full solve by more than the guarantee envelope allows.
TEST(Repair, PropertyRandomFailures) {
  util::Rng rng(587);
  int repaired = 0, local = 0;
  for (int trial = 0; trial < 40; ++trial) {
    RandomInstanceOptions opt;
    opt.k = 2;
    opt.delay_slack = 0.4;
    const auto inst = random_er_instance(rng, 11, 0.35, opt);
    if (!inst) continue;
    const auto s = KrspSolver().solve(*inst);
    if (!s.has_paths() || s.delay > inst->delay_bound) continue;
    // Fail a random USED edge (the interesting case).
    const auto used = s.paths.all_edges();
    const auto failed =
        used[rng.uniform_int(0, static_cast<std::int64_t>(used.size()) - 1)];
    const auto r = repair_after_edge_failure(*inst, s.paths, failed);
    if (r.outcome == RepairOutcome::kInfeasible) continue;
    ++repaired;
    if (r.outcome == RepairOutcome::kLocalRepair) ++local;
    EXPECT_TRUE(r.paths.is_valid(*inst));
    EXPECT_LE(r.delay, inst->delay_bound);
    for (const auto& p : r.paths.paths())
      for (const auto e : p) EXPECT_NE(e, failed);
  }
  EXPECT_GT(repaired, 8);
  EXPECT_GT(local, 3);  // local repair succeeds often
}

}  // namespace
}  // namespace krsp::core

#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace krsp::util {
namespace {

TEST(Table, AlignsColumnsToWidestCell) {
  Table t({"name", "v"});
  t.row().cell("a").cell(1);
  t.row().cell("long-name").cell(22);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // Every line has equal length (alignment).
  std::istringstream is(out);
  std::string line;
  std::size_t len = 0;
  while (std::getline(is, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len) << line;
  }
}

TEST(Table, FixedPointFormatting) {
  Table t({"x"});
  t.row().cell_fp(3.14159, 2);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("3.14"), std::string::npos);
  EXPECT_EQ(os.str().find("3.142"), std::string::npos);
}

TEST(Table, CellBeforeRowThrows) {
  Table t({"x"});
  EXPECT_THROW(t.cell(1), CheckError);
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.row().cell(1);  // only one of three cells
  std::ostringstream os;
  EXPECT_NO_THROW(t.print(os));
  EXPECT_NE(os.str().find("| 1 |"), std::string::npos);
}

TEST(Table, MarkdownPipes) {
  Table t({"h"});
  t.row().cell("v");
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("| h |", 0), 0u);  // markdown-style table
  EXPECT_NE(out.find("|---|"), std::string::npos);
}

}  // namespace
}  // namespace krsp::util

#include "sim/network_sim.h"

#include <gtest/gtest.h>

#include "core/priority_routing.h"
#include "core/solver.h"
#include "graph/generators.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace krsp::sim {
namespace {

TEST(EventQueue, FiresInTimeOrderWithFifoTies) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(5, [&] { fired.push_back(2); });
  q.schedule(3, [&] { fired.push_back(1); });
  q.schedule(5, [&] { fired.push_back(3); });  // same time, later schedule
  q.run_until(10);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 10);
}

TEST(EventQueue, HorizonStopsExecution) {
  EventQueue q;
  int fired = 0;
  q.schedule(3, [&] { ++fired; });
  q.schedule(8, [&] { ++fired; });
  EXPECT_EQ(q.run_until(5), 1);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  q.run_until(10);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, HandlersMaySchedule) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) q.schedule(q.now() + 2, tick);
  };
  q.schedule(0, tick);
  q.run_until(100);
  EXPECT_EQ(count, 5);
}

TEST(EventQueue, PastSchedulingRejected) {
  EventQueue q;
  q.schedule(5, [] {});
  q.run_until(5);
  EXPECT_THROW(q.schedule(3, [] {}), util::CheckError);
}

// --- simulator ---

graph::Digraph chain3() {
  // 0 -e0-> 1 -e1-> 2, delays 4 and 6.
  graph::Digraph g(3);
  g.add_edge(0, 1, 1, 4);
  g.add_edge(1, 2, 1, 6);
  return g;
}

TEST(NetworkSim, UnloadedLatencyIsTransmissionPlusPropagation) {
  const auto g = chain3();
  LinkParams params;
  params.transmission_time = 1;
  NetworkSimulator sim(g, params, 1);
  FlowSpec flow;
  flow.name = "probe";
  flow.route = {0, 1};
  flow.mean_gap = 100.0;  // no queueing
  flow.packet_budget = 5;
  sim.add_flow(flow);
  const auto result = sim.run(2000);
  ASSERT_EQ(result.flows.size(), 1u);
  EXPECT_EQ(result.flows[0].delivered, 5);
  EXPECT_EQ(result.flows[0].dropped, 0);
  // Per hop: 1 tick serialization + propagation -> (1+4) + (1+6) = 12.
  EXPECT_DOUBLE_EQ(result.flows[0].latency.min(), 12.0);
  EXPECT_DOUBLE_EQ(result.flows[0].latency.max(), 12.0);
}

TEST(NetworkSim, QueueingDelaysShowUpUnderLoad) {
  graph::Digraph g(2);
  g.add_edge(0, 1, 1, 0);  // pure serialization link
  LinkParams params;
  params.transmission_time = 4;
  params.queue_capacity = 1000;
  NetworkSimulator sim(g, params, 1);
  FlowSpec flow;
  flow.name = "burst";
  flow.route = {0};
  flow.mean_gap = 1.0;  // injection 4x faster than the link drains
  flow.packet_budget = 50;
  sim.add_flow(flow);
  const auto result = sim.run(5000);
  EXPECT_EQ(result.flows[0].delivered, 50);
  // k-th packet waits ~ (4-1)*k behind its predecessors.
  EXPECT_GT(result.flows[0].latency.max(), 100.0);
  EXPECT_DOUBLE_EQ(result.flows[0].latency.min(), 4.0);
}

TEST(NetworkSim, FiniteQueueDropsUnderOverload) {
  graph::Digraph g(2);
  g.add_edge(0, 1, 1, 0);
  LinkParams params;
  params.transmission_time = 10;
  params.queue_capacity = 4;
  NetworkSimulator sim(g, params, 1);
  FlowSpec flow;
  flow.name = "flood";
  flow.route = {0};
  flow.mean_gap = 1.0;
  flow.packet_budget = 100;
  sim.add_flow(flow);
  const auto result = sim.run(10000);
  EXPECT_GT(result.flows[0].dropped, 0);
  EXPECT_EQ(result.flows[0].delivered + result.flows[0].dropped, 100);
}

TEST(NetworkSim, UtilizationMatchesLoad) {
  graph::Digraph g(2);
  g.add_edge(0, 1, 1, 0);
  LinkParams params;
  params.transmission_time = 2;
  NetworkSimulator sim(g, params, 1);
  FlowSpec flow;
  flow.name = "half";
  flow.route = {0};
  flow.mean_gap = 4.0;  // 2 ticks of work every 4 ticks = 50%
  flow.packet_budget = 1000000;
  sim.add_flow(flow);
  const auto result = sim.run(10000);
  ASSERT_EQ(result.links.size(), 1u);
  EXPECT_NEAR(result.links[0].utilization, 0.5, 0.02);
}

TEST(NetworkSim, DeterministicAcrossRuns) {
  const auto g = chain3();
  for (const bool poisson : {false, true}) {
    SimulationResult a, b;
    for (auto* out : {&a, &b}) {
      NetworkSimulator sim(g, LinkParams{}, 99);
      FlowSpec flow;
      flow.name = "x";
      flow.route = {0, 1};
      flow.mean_gap = 3.0;
      flow.poisson = poisson;
      flow.packet_budget = 200;
      sim.add_flow(flow);
      *out = sim.run(3000);
    }
    EXPECT_EQ(a.flows[0].delivered, b.flows[0].delivered);
    EXPECT_DOUBLE_EQ(a.flows[0].latency.mean(), b.flows[0].latency.mean());
  }
}

TEST(NetworkSim, JitterZeroForUnloadedCbr) {
  const auto g = chain3();
  NetworkSimulator sim(g, LinkParams{}, 1);
  FlowSpec flow;
  flow.name = "steady";
  flow.route = {0, 1};
  flow.mean_gap = 50.0;  // unloaded: every packet sees identical latency
  flow.packet_budget = 20;
  sim.add_flow(flow);
  const auto result = sim.run(5000);
  ASSERT_GT(result.flows[0].jitter.count(), 0u);
  EXPECT_DOUBLE_EQ(result.flows[0].jitter.max(), 0.0);
}

TEST(NetworkSim, JitterPositiveUnderContention) {
  // Two flows share one link; the CBR probe's latency varies with the
  // competing Poisson flow's queue occupancy.
  graph::Digraph g(2);
  g.add_edge(0, 1, 1, 0);
  LinkParams params;
  params.transmission_time = 3;
  NetworkSimulator sim(g, params, 5);
  FlowSpec probe;
  probe.name = "probe";
  probe.route = {0};
  probe.mean_gap = 10.0;
  probe.packet_budget = 300;
  sim.add_flow(probe);
  FlowSpec cross;
  cross.name = "cross";
  cross.route = {0};
  cross.mean_gap = 7.0;
  cross.poisson = true;
  cross.packet_budget = 500;
  sim.add_flow(cross);
  const auto result = sim.run(5000);
  EXPECT_GT(result.flows[0].jitter.mean(), 0.0);
}

TEST(NetworkSim, InvalidRouteRejected) {
  const auto g = chain3();
  NetworkSimulator sim(g, LinkParams{}, 1);
  FlowSpec flow;
  flow.name = "broken";
  flow.route = {1, 0};  // not a contiguous walk
  EXPECT_THROW(sim.add_flow(flow), util::CheckError);
}

// Integration: provision with kRSP, route classes by urgency, and verify
// the simulated per-class latency ordering matches the static delays.
TEST(NetworkSim, KrspProvisionedClassesOrderedByLatency) {
  util::Rng rng(563);
  core::RandomInstanceOptions opt;
  opt.k = 2;
  opt.delay_slack = 0.4;
  const auto inst = core::random_er_instance(rng, 12, 0.35, opt);
  ASSERT_TRUE(inst.has_value());
  const auto s = core::KrspSolver().solve(*inst);
  ASSERT_TRUE(s.has_paths());

  const auto report = core::assign_by_urgency(
      inst->graph, s.paths,
      {{"urgent", inst->delay_bound}, {"bulk", inst->delay_bound * 2}});

  LinkParams params;
  params.transmission_time = 1;
  NetworkSimulator sim(inst->graph, params, 7);
  for (const auto& a : report.assignments) {
    FlowSpec flow;
    flow.name = a.class_name;
    flow.route = s.paths.paths()[a.path_index];
    flow.mean_gap = 20.0;  // light load: latency ~ static delay
    flow.packet_budget = 100;
    sim.add_flow(flow);
  }
  const auto result = sim.run(20000);
  ASSERT_EQ(result.flows.size(), 2u);
  for (const auto& f : result.flows) EXPECT_GT(f.delivered, 50);
  // "urgent" was assigned the lower-delay path; under light load its
  // simulated latency must not exceed "bulk"'s.
  EXPECT_LE(result.flows[0].latency.mean(),
            result.flows[1].latency.mean() + 1e-9);
}

}  // namespace
}  // namespace krsp::sim

#include "baselines/brute_force.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "paths/rsp.h"
#include "util/rng.h"

namespace krsp::baselines {
namespace {

using core::Instance;

Instance diamond(graph::Delay D) {
  Instance inst;
  inst.graph.resize(4);
  inst.graph.add_edge(0, 1, 1, 3);
  inst.graph.add_edge(1, 3, 1, 3);
  inst.graph.add_edge(0, 2, 5, 1);
  inst.graph.add_edge(2, 3, 5, 1);
  inst.graph.add_edge(0, 3, 2, 2);
  inst.s = 0;
  inst.t = 3;
  inst.k = 2;
  inst.delay_bound = D;
  return inst;
}

TEST(BruteForce, PicksCheapestFeasiblePair) {
  // Budget 8 allows {0-1-3 (delay 6), 0-3 (2)}: cost 4.
  const auto r = brute_force_krsp(diamond(8));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->cost, 4);
  EXPECT_EQ(r->delay, 8);
}

TEST(BruteForce, TighterBudgetForcesExpensiveRoute) {
  // Budget 4 forces {0-2-3 (2), 0-3 (2)}: cost 12.
  const auto r = brute_force_krsp(diamond(4));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->cost, 12);
  EXPECT_EQ(r->delay, 4);
}

TEST(BruteForce, InfeasibleBudget) {
  EXPECT_FALSE(brute_force_krsp(diamond(3)).has_value());
}

TEST(BruteForce, NotEnoughPaths) {
  Instance inst;
  inst.graph.resize(2);
  inst.graph.add_edge(0, 1, 1, 1);
  inst.s = 0;
  inst.t = 1;
  inst.k = 2;
  inst.delay_bound = 10;
  EXPECT_FALSE(brute_force_krsp(inst).has_value());
}

TEST(BruteForce, ValidatesOutputPaths) {
  const auto inst = diamond(8);
  const auto r = brute_force_krsp(inst);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->paths.is_valid(inst));
  EXPECT_EQ(r->paths.total_cost(inst.graph), r->cost);
}

TEST(BruteForce, MinDelayMatchesFlowOracle) {
  const auto inst = diamond(100);
  const auto d = brute_force_min_delay(inst);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, *core::min_possible_delay(inst));
}

// Property: for k = 1 the brute force agrees with the exact RSP DP.
TEST(BruteForce, PropertyK1MatchesRspDp) {
  util::Rng rng(293);
  int compared = 0;
  for (int trial = 0; trial < 25; ++trial) {
    Instance inst;
    inst.graph = gen::erdos_renyi(rng, 9, 0.3);
    inst.s = 0;
    inst.t = 8;
    inst.k = 1;
    inst.delay_bound = rng.uniform_int(0, 30);
    const auto brute = brute_force_krsp(inst);
    const auto dp = paths::rsp_exact(inst.graph, 0, 8, inst.delay_bound);
    ASSERT_EQ(brute.has_value(), dp.has_value());
    if (brute) {
      EXPECT_EQ(brute->cost, dp->cost);
      ++compared;
    }
  }
  EXPECT_GT(compared, 5);
}

// Property: min-delay brute force matches the min-delay flow (which is
// exact for the delay-sum objective).
TEST(BruteForce, PropertyMinDelayMatchesFlow) {
  util::Rng rng(307);
  int compared = 0;
  for (int trial = 0; trial < 20; ++trial) {
    core::RandomInstanceOptions opt;
    opt.k = 2;
    const auto inst = core::random_er_instance(rng, 8, 0.4, opt);
    if (!inst) continue;
    const auto brute = brute_force_min_delay(*inst);
    const auto flow = core::min_possible_delay(*inst);
    ASSERT_EQ(brute.has_value(), flow.has_value());
    if (brute) {
      EXPECT_EQ(*brute, *flow);
      ++compared;
    }
  }
  EXPECT_GT(compared, 8);
}

TEST(BruteForce, EnumerationBudgetEnforced) {
  // Dense graph with tiny budget must trip the KRSP_CHECK.
  util::Rng rng(311);
  Instance inst;
  inst.graph = gen::erdos_renyi(rng, 10, 0.8);
  inst.s = 0;
  inst.t = 9;
  inst.k = 2;
  inst.delay_bound = 100;
  BruteForceOptions opt;
  opt.max_paths = 5;
  EXPECT_THROW(brute_force_krsp(inst, opt), util::CheckError);
}

}  // namespace
}  // namespace krsp::baselines

// Chaos tests for the serving transport: every injected fault class has a
// pinned server-side outcome — an error response or a clean close, never
// a hang, a crash, or a corrupted response. Suites are named Chaos* so the
// CI TSan leg's -R filter picks them up alongside Engine/Server.
//
// The fault injector (server/fault.h) is client-side by construction, but
// each fault is server-felt: a real SocketServer is driven through raw
// sockets and through FaultyStream/ResilientClient, and the assertions are
// about what the *server* does next.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/krsp.h"
#include "server/client.h"
#include "server/fault.h"
#include "server/transport.h"
#include "server/wire.h"
#include "util/rng.h"

namespace krsp::server {
namespace {

using namespace std::chrono_literals;

api::Instance small_instance(std::uint64_t seed) {
  util::Rng rng(seed);
  api::RandomInstanceOptions opt;
  opt.k = 2;
  opt.delay_slack = 0.25;
  const auto inst = api::random_er_instance(rng, 10, 0.35, opt);
  KRSP_CHECK_MSG(inst.has_value(), "seed " << seed << " drew no instance");
  return *inst;
}

std::string solve_line(const api::Instance& inst, const std::string& id) {
  std::ostringstream kri;
  api::write_instance(kri, inst);
  return wire::ObjectWriter()
      .field("op", "solve")
      .field("id", id)
      .field("instance", kri.str())
      .field("mode", "exact")
      .done();
}

/// Boots a real SocketServer on a per-test /tmp socket and tears it down
/// (stop + join) even when an assertion fails mid-test.
class ChaosServer {
 public:
  explicit ChaosServer(api::ServerOptions options = {.num_threads = 2})
      : service_(options), server_(service_, make_path()) {
    std::string error;
    KRSP_CHECK_MSG(server_.start(&error), "start: " << error);
    accept_thread_ = std::thread([this] { server_.serve_forever(); });
  }
  ~ChaosServer() {
    server_.request_stop();
    accept_thread_.join();
  }

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] SocketServer& server() { return server_; }
  [[nodiscard]] SolveService& service() { return service_; }

  /// One fresh clean connection; sends `line` and returns the first
  /// response line (empty on EOF/timeout).
  std::string roundtrip(const std::string& line) {
    std::string error;
    FdStream stream(connect_unix(path_, &error));
    KRSP_CHECK_MSG(stream.connected(), "connect: " << error);
    KRSP_CHECK_MSG(stream.send(line + "\n", &error), "send: " << error);
    return read_line(stream);
  }

  /// Reads one newline-terminated line (5 s cap — a server that takes
  /// longer has hung, which is exactly what these tests must catch).
  static std::string read_line(ByteStream& stream) {
    std::string buffer;
    char chunk[4096];
    while (buffer.find('\n') == std::string::npos) {
      std::string error;
      const ssize_t n = stream.recv(chunk, sizeof chunk, 5000, &error);
      if (n <= 0) return "";
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    return buffer.substr(0, buffer.find('\n'));
  }

 private:
  std::string make_path() {
    static std::atomic<int> counter{0};
    path_ = "/tmp/krsp_chaos_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)) + ".sock";
    return path_;
  }

  SolveService service_;
  std::string path_;
  SocketServer server_;
  std::thread accept_thread_;
};

// ----------------------------------------------- server-felt outcomes ---

TEST(ChaosTransport, GarbageFrameGetsErrorResponseAndConnectionSurvives) {
  ChaosServer fixture;
  std::string error;
  FdStream stream(connect_unix(fixture.path(), &error));
  ASSERT_TRUE(stream.connected()) << error;

  // A junk frame must be answered (ok:false), not crash or desync: the
  // very same connection then serves a well-formed request.
  ASSERT_TRUE(stream.send("!!nonsense@@#$%^\n", &error));
  const auto junk_resp = wire::parse(ChaosServer::read_line(stream));
  ASSERT_TRUE(junk_resp.has_value());
  EXPECT_FALSE(junk_resp->get_bool("ok", true));
  EXPECT_FALSE(junk_resp->get_string("error").empty());

  ASSERT_TRUE(stream.send("{\"op\":\"ping\"}\n", &error));
  const auto pong = wire::parse(ChaosServer::read_line(stream));
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->get_bool("pong", false));
}

TEST(ChaosTransport, TruncatedFrameThenCloseIsDiscardedServerStaysUp) {
  ChaosServer fixture;
  const std::string line = solve_line(small_instance(31), "trunc-1");
  {
    std::string error;
    FdStream stream(connect_unix(fixture.path(), &error));
    ASSERT_TRUE(stream.connected()) << error;
    // A prefix with no newline, then close: the partial line must be
    // discarded on EOF — no response, no crash, nothing half-parsed.
    ASSERT_TRUE(stream.send(line.substr(0, line.size() / 2), &error));
  }
  // The server keeps serving new connections and never saw a request.
  const auto pong = wire::parse(fixture.roundtrip("{\"op\":\"ping\"}"));
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->get_bool("pong", false));
  EXPECT_EQ(fixture.service().stats().received, 0u);
}

TEST(ChaosTransport, MidFrameStallIsBufferedAndEventuallyServed) {
  ChaosServer fixture;
  const std::string line = solve_line(small_instance(32), "stall-1") + "\n";
  std::string error;
  FdStream stream(connect_unix(fixture.path(), &error));
  ASSERT_TRUE(stream.connected()) << error;
  const std::size_t cut = line.size() / 3;
  ASSERT_TRUE(stream.send(line.substr(0, cut), &error));
  std::this_thread::sleep_for(50ms);
  ASSERT_TRUE(stream.send(line.substr(cut), &error));
  const auto resp = wire::parse(ChaosServer::read_line(stream));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->get_string("id"), "stall-1");
  EXPECT_TRUE(resp->get_bool("served", false));
}

TEST(ChaosTransport, ResetWithoutReadingResponseLeavesServerAlive) {
  ChaosServer fixture;
  for (int round = 0; round < 3; ++round) {
    std::string error;
    FdStream stream(connect_unix(fixture.path(), &error));
    ASSERT_TRUE(stream.connected()) << error;
    ASSERT_TRUE(
        stream.send(solve_line(small_instance(33), "reset") + "\n", &error));
    stream.close();  // vanish before the response is read
  }
  // Give the connection threads a beat to hit the dead sockets, then
  // prove the server still serves. Peer resets are routine accounting,
  // never unexpected send failures.
  std::this_thread::sleep_for(50ms);
  const auto pong = wire::parse(fixture.roundtrip("{\"op\":\"ping\"}"));
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->get_bool("pong", false));
  EXPECT_EQ(fixture.server().send_failures(), 0u);
}

TEST(ChaosTransport, SlowReadingClientGetsItsResponseLate) {
  ChaosServer fixture;
  std::string error;
  FdStream stream(connect_unix(fixture.path(), &error));
  ASSERT_TRUE(stream.connected()) << error;
  ASSERT_TRUE(stream.send("{\"op\":\"ping\"}\n", &error));
  std::this_thread::sleep_for(100ms);  // stop draining for a while
  const auto pong = wire::parse(ChaosServer::read_line(stream));
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->get_bool("pong", false));
}

TEST(ChaosTransport, OversizeLineGetsOneErrorThenClose) {
  ChaosServer fixture;
  std::string error;
  FdStream stream(connect_unix(fixture.path(), &error));
  ASSERT_TRUE(stream.connected()) << error;
  // Stream > kMaxLineBytes without a newline. The server must answer
  // with one error line and close — bounded memory, no hang. The write
  // may fail partway once the server closes; that is success too.
  const std::string block(1 << 20, 'x');
  bool write_failed = false;
  for (std::size_t sent = 0; sent <= SocketServer::kMaxLineBytes;
       sent += block.size()) {
    if (!stream.send(block, &error)) {
      write_failed = true;
      break;
    }
  }
  const std::string line = ChaosServer::read_line(stream);
  if (!write_failed) {
    const auto resp = wire::parse(line);
    ASSERT_TRUE(resp.has_value()) << line;
    EXPECT_FALSE(resp->get_bool("ok", true));
  }
  // Either way the connection is now closed...
  char c;
  EXPECT_EQ(stream.recv(&c, 1, 5000, &error), 0);
  // ...and the server is still healthy.
  const auto pong = wire::parse(fixture.roundtrip("{\"op\":\"ping\"}"));
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->get_bool("pong", false));
}

// ------------------------------------------ wire-parser property test ---

TEST(ChaosWire, MutatedFramesYieldErrorResponsesNeverCrashes) {
  // Satellite property: seeded random byte mutations of valid frames
  // always produce a parseable response; unparseable input is never
  // "accepted" (ok:true). ASan/UBSan turn memory bugs into failures.
  SolveService service(api::ServerOptions{.num_threads = 1});
  LocalTransport transport(service);
  const std::vector<std::string> seeds = {
      solve_line(small_instance(41), "mut-1"),
      "{\"op\":\"stats\"}",
      "{\"op\":\"ping\"}",
      wire::ObjectWriter()
          .field("op", "solve")
          .field("id", "mut-2")
          .field("instance", "not an instance")
          .done(),
  };
  util::Rng rng(20260809);
  for (int trial = 0; trial < 400; ++trial) {
    std::string line = seeds[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(seeds.size()) - 1))];
    const int mutations = static_cast<int>(rng.uniform_int(1, 8));
    for (int m = 0; m < mutations; ++m) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(line.size()) - 1));
      line[pos] = static_cast<char>(rng.uniform_int(0, 255));
    }
    if (rng.bernoulli(0.25))  // truncations, too
      line.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(line.size()))));

    const std::string response_line = transport.request(line);
    const auto response = wire::parse(response_line);
    ASSERT_TRUE(response.has_value())
        << "unparseable response " << response_line << " for input " << line;
    if (!wire::parse(line).has_value()) {
      // Garbage in ⇒ explicit error out, never silently accepted.
      EXPECT_FALSE(response->get_bool("ok", true)) << line;
    }
  }
}

// --------------------------------------------- seeded fault schedules ---

/// In-memory ByteStream for determinism tests: records sent bytes.
class MemoryStream final : public ByteStream {
 public:
  bool send(std::string_view data, std::string* /*error*/) override {
    sent.append(data);
    return true;
  }
  ssize_t recv(char* /*buf*/, std::size_t /*len*/, int /*timeout_ms*/,
               std::string* /*error*/) override {
    return kRecvTimeout;
  }
  void close() override { closed = true; }
  [[nodiscard]] bool connected() const override { return !closed; }

  std::string sent;
  bool closed = false;
};

TEST(ChaosFaultyStream, SameSeedReplaysTheExactFaultSchedule) {
  const auto run = [](std::uint64_t seed) {
    MemoryStream inner;
    util::Rng rng(seed);
    FaultOptions options;
    options.fault_rate = 0.5;
    options.stall_ms = 0;  // schedule determinism, not timing
    FaultCounters counters;
    FaultyStream stream(inner, options, &rng, &counters);
    std::vector<FaultKind> schedule;
    std::string error;
    for (int i = 0; i < 64 && !stream.poisoned(); ++i) {
      (void)stream.send("{\"op\":\"ping\"}\n", &error);
      schedule.push_back(stream.last_fault());
    }
    return std::pair(schedule, inner.sent);
  };
  const auto [schedule_a, bytes_a] = run(12345);
  const auto [schedule_b, bytes_b] = run(12345);
  EXPECT_EQ(schedule_a, schedule_b);
  EXPECT_EQ(bytes_a, bytes_b);
  // The mix actually injects: over 64 draws at rate 0.5 at least one
  // fault must fire (p ≈ 1 - 2^-64 even before poisoning cuts it short).
  EXPECT_NE(schedule_a,
            std::vector<FaultKind>(schedule_a.size(), FaultKind::kNone));
}

TEST(ChaosFaultyStream, RateZeroIsBytePerfectPassthrough) {
  MemoryStream inner;
  FaultOptions options;  // fault_rate = 0
  FaultyStream stream(inner, options, nullptr);
  std::string error;
  ASSERT_TRUE(stream.send("hello\n", &error));
  ASSERT_TRUE(stream.send("world\n", &error));
  EXPECT_EQ(inner.sent, "hello\nworld\n");
  EXPECT_FALSE(stream.poisoned());
}

// ------------------------------------------------- client resilience ---

TEST(ChaosClient, IdempotentRequestsAllEventuallySucceedUnderFaults) {
  ChaosServer fixture;
  // Oracle: direct solves of the request pool.
  std::vector<api::Instance> pool;
  std::vector<api::SolveResult> oracle;
  for (int i = 0; i < 3; ++i) {
    pool.push_back(small_instance(50 + static_cast<std::uint64_t>(i)));
    api::SolveRequest req;
    req.instance = pool.back();
    req.mode = api::Mode::kExactWeights;
    oracle.push_back(api::Solver::solve(req));
  }

  RetryOptions retry;
  retry.max_retries = 16;
  retry.base_backoff_ms = 1;
  retry.max_backoff_ms = 20;
  retry.request_timeout_ms = 5000;
  FaultOptions faults;
  faults.seed = 99;
  faults.fault_rate = 0.3;
  faults.stall_ms = 5;
  ResilientClient client(fixture.path(), retry, faults);

  for (int r = 0; r < 24; ++r) {
    const std::size_t i = static_cast<std::size_t>(r) % pool.size();
    const std::string id = "chaos-" + std::to_string(i);
    std::string response_line;
    std::string error;
    ASSERT_TRUE(client.request(solve_line(pool[i], id), id,
                               /*idempotent=*/true, &response_line, &error))
        << "request " << r << ": " << error;
    const auto resp = wire::parse(response_line);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->get_string("id"), id);
    ASSERT_TRUE(resp->get_bool("served", false)) << response_line;
    // Bit-identical to the direct solve — retries and cache replays
    // included.
    EXPECT_EQ(resp->get_string("status"), api::status_name(oracle[i].status));
    EXPECT_EQ(resp->get_int("cost", -1), oracle[i].cost);
    EXPECT_EQ(resp->get_int("delay", -1), oracle[i].delay);
  }
  const ClientCounters& counters = client.counters();
  EXPECT_EQ(counters.give_ups, 0u);
  // Rate 0.3 over ≥24 sends: the schedule injected something, and the
  // client survived every poisoned stream by reconnecting.
  EXPECT_GT(counters.faults.injected, 0u);
  EXPECT_EQ(counters.attempts, 24u + counters.retries);
}

TEST(ChaosClient, NonIdempotentRequestIsNeverRetriedAfterPossibleDelivery) {
  ChaosServer fixture;
  RetryOptions retry;
  retry.max_retries = 8;
  retry.base_backoff_ms = 1;
  FaultOptions faults;
  faults.fault_rate = 1.0;  // every send faults...
  faults.p_truncate = 1.0;  // ...with a mid-frame truncate
  faults.p_garbage = faults.p_stall = faults.p_reset = faults.p_slow_read =
      0.0;
  ResilientClient client(fixture.path(), retry, faults);
  std::string response_line;
  std::string error;
  EXPECT_FALSE(client.request(solve_line(small_instance(60), "once"), "once",
                              /*idempotent=*/false, &response_line, &error));
  // At-most-once: exactly one attempt, no retries, an explicit reason.
  EXPECT_EQ(client.counters().attempts, 1u);
  EXPECT_EQ(client.counters().retries, 0u);
  EXPECT_NE(error.find("non-idempotent"), std::string::npos) << error;
}

TEST(ChaosClient, RetriesExhaustedReportsGiveUpWithAccounting) {
  ChaosServer fixture;
  RetryOptions retry;
  retry.max_retries = 2;
  retry.base_backoff_ms = 1;
  FaultOptions faults;
  faults.fault_rate = 1.0;  // every send resets: nothing can succeed
  faults.p_reset = 1.0;
  faults.p_garbage = faults.p_stall = faults.p_truncate = faults.p_slow_read =
      0.0;
  ResilientClient client(fixture.path(), retry, faults);
  std::string response_line;
  std::string error;
  EXPECT_FALSE(client.request("{\"op\":\"ping\"}", "",
                              /*idempotent=*/true, &response_line, &error));
  EXPECT_EQ(client.counters().attempts, 3u);  // 1 + max_retries
  EXPECT_EQ(client.counters().retries, 2u);
  EXPECT_EQ(client.counters().give_ups, 1u);
  EXPECT_GE(client.counters().reconnects, 2u);
  EXPECT_NE(error.find("retries exhausted"), std::string::npos) << error;
}

}  // namespace
}  // namespace krsp::server

#include "paths/rsp.h"

#include <gtest/gtest.h>

#include <functional>

#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::paths {
namespace {

using graph::Delay;
using graph::Digraph;
using graph::EdgeId;
using graph::VertexId;

// Brute-force RSP oracle: enumerate all simple paths.
std::optional<graph::Cost> rsp_brute(const Digraph& g, VertexId s, VertexId t,
                                     Delay D) {
  std::optional<graph::Cost> best;
  std::vector<bool> on(g.num_vertices(), false);
  const std::function<void(VertexId, graph::Cost, Delay)> dfs =
      [&](VertexId v, graph::Cost cost, Delay delay) {
        if (delay > D) return;
        if (v == t) {
          if (!best || cost < *best) best = cost;
          return;
        }
        on[v] = true;
        for (const EdgeId e : g.out_edges(v)) {
          const auto& edge = g.edge(e);
          if (!on[edge.to])
            dfs(edge.to, cost + edge.cost, delay + edge.delay);
        }
        on[v] = false;
      };
  dfs(s, 0, 0);
  return best;
}

TEST(RspExact, PrefersCheapFeasiblePath) {
  Digraph g(3);
  g.add_edge(0, 2, 10, 1);  // expensive, fast
  g.add_edge(0, 1, 1, 3);
  g.add_edge(1, 2, 1, 3);   // cheap, slow (delay 6)
  const auto tight = rsp_exact(g, 0, 2, 1);
  ASSERT_TRUE(tight.has_value());
  EXPECT_EQ(tight->cost, 10);
  const auto loose = rsp_exact(g, 0, 2, 6);
  ASSERT_TRUE(loose.has_value());
  EXPECT_EQ(loose->cost, 2);
}

TEST(RspExact, InfeasibleReturnsNullopt) {
  Digraph g(2);
  g.add_edge(0, 1, 1, 5);
  EXPECT_FALSE(rsp_exact(g, 0, 1, 4).has_value());
}

TEST(RspExact, ZeroDelayBudgetUsesZeroDelaySubgraph) {
  Digraph g(3);
  g.add_edge(0, 1, 3, 0);
  g.add_edge(1, 2, 4, 0);
  g.add_edge(0, 2, 1, 1);
  const auto r = rsp_exact(g, 0, 2, 0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->cost, 7);
  EXPECT_EQ(r->delay, 0);
}

TEST(RspExact, PathMeasuresConsistent) {
  util::Rng rng(109);
  const auto g = gen::erdos_renyi(rng, 12, 0.3);
  const auto r = rsp_exact(g, 0, 11, 25);
  if (r) {
    EXPECT_EQ(graph::path_cost(g, r->path), r->cost);
    EXPECT_EQ(graph::path_delay(g, r->path), r->delay);
    EXPECT_LE(r->delay, 25);
    EXPECT_TRUE(graph::is_simple_path(g, r->path, 0, 11));
  }
}

// Property: exact DP matches the brute-force oracle across random graphs
// and budgets.
TEST(RspExact, PropertyMatchesBruteForce) {
  util::Rng rng(113);
  int compared = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto g = gen::erdos_renyi(rng, 9, 0.3);
    for (const Delay D : {0, 3, 8, 15, 40}) {
      const auto exact = rsp_exact(g, 0, 8, D);
      const auto brute = rsp_brute(g, 0, 8, D);
      ASSERT_EQ(exact.has_value(), brute.has_value()) << "D=" << D;
      if (exact) {
        EXPECT_EQ(exact->cost, *brute);
        EXPECT_LE(exact->delay, D);
        ++compared;
      }
    }
  }
  EXPECT_GT(compared, 20);  // the sweep actually exercised feasible cases
}

// Property: FPTAS stays within (1+eps) of the exact optimum and within the
// delay bound.
TEST(RspFptas, PropertyApproximationRatio) {
  util::Rng rng(127);
  for (const double eps : {1.0, 0.5, 0.1}) {
    for (int trial = 0; trial < 15; ++trial) {
      gen::WeightRange w;
      w.cost_max = 50;
      const auto g = gen::erdos_renyi(rng, 10, 0.3, w);
      const Delay D = 12;
      const auto exact = rsp_exact(g, 0, 9, D);
      const auto approx = rsp_fptas(g, 0, 9, D, eps);
      ASSERT_EQ(exact.has_value(), approx.has_value());
      if (exact) {
        EXPECT_LE(approx->delay, D);
        EXPECT_LE(static_cast<double>(approx->cost),
                  (1.0 + eps) * static_cast<double>(exact->cost) + 1e-9)
            << "eps=" << eps;
      }
    }
  }
}

TEST(RspFptas, ZeroCostOptimum) {
  Digraph g(3);
  g.add_edge(0, 1, 0, 2);
  g.add_edge(1, 2, 0, 2);
  g.add_edge(0, 2, 5, 1);
  const auto r = rsp_fptas(g, 0, 2, 4, 0.5);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->cost, 0);
}

TEST(RspFptas, InfeasibleDetected) {
  Digraph g(2);
  g.add_edge(0, 1, 1, 10);
  EXPECT_FALSE(rsp_fptas(g, 0, 1, 9, 0.5).has_value());
}

TEST(RspFptas, InvalidEpsThrows) {
  Digraph g(2);
  g.add_edge(0, 1, 1, 1);
  EXPECT_THROW(rsp_fptas(g, 0, 1, 5, 0.0), util::CheckError);
}

}  // namespace
}  // namespace krsp::paths

#include "core/priority_routing.h"

#include <gtest/gtest.h>

#include "core/solver.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::core {
namespace {

// Three parallel arcs = three one-edge paths with delays 2, 5, 9.
struct Fixture {
  graph::Digraph g{2};
  PathSet paths;
  Fixture() {
    g.add_edge(0, 1, 1, 5);
    g.add_edge(0, 1, 1, 2);
    g.add_edge(0, 1, 1, 9);
    paths = PathSet({{0}, {1}, {2}});
  }
};

TEST(PriorityRouting, StrictestClassGetsFastestPath) {
  Fixture f;
  const auto report = assign_by_urgency(
      f.g, f.paths,
      {{"bulk", 100}, {"voice", 3}, {"video", 6}});
  ASSERT_EQ(report.assignments.size(), 3u);
  EXPECT_EQ(report.assignments[1].class_name, "voice");
  EXPECT_EQ(report.assignments[1].path_delay, 2);
  EXPECT_TRUE(report.assignments[1].satisfied);
  EXPECT_EQ(report.assignments[2].path_delay, 5);  // video -> middle path
  EXPECT_TRUE(report.assignments[2].satisfied);
  EXPECT_EQ(report.assignments[0].path_delay, 9);  // bulk -> slowest
  EXPECT_TRUE(report.assignments[0].satisfied);
  EXPECT_EQ(report.satisfied_count, 3);
}

TEST(PriorityRouting, UnsatisfiableClassReportedNotDropped) {
  Fixture f;
  const auto report =
      assign_by_urgency(f.g, f.paths, {{"impossible", 1}});
  ASSERT_EQ(report.assignments.size(), 1u);
  EXPECT_FALSE(report.assignments[0].satisfied);
  EXPECT_EQ(report.assignments[0].path_delay, 2);  // still got the fastest
  EXPECT_EQ(report.satisfied_count, 0);
}

TEST(PriorityRouting, MoreClassesThanPathsShareSlowest) {
  Fixture f;
  const auto report = assign_by_urgency(
      f.g, f.paths,
      {{"a", 2}, {"b", 5}, {"c", 9}, {"d", 9}, {"e", 100}});
  EXPECT_EQ(report.assignments[3].path_delay, 9);  // d multiplexed
  EXPECT_EQ(report.assignments[4].path_delay, 9);  // e multiplexed
  EXPECT_TRUE(report.assignments[4].satisfied);
}

TEST(PriorityRouting, EmptyPathsRejected) {
  Fixture f;
  EXPECT_THROW(assign_by_urgency(f.g, PathSet(), {{"x", 1}}),
               util::CheckError);
}

// The paper's pigeonhole bridge: when the solver meets Σdelay <= k·D, the
// strictest class always sees a path with delay <= D.
TEST(PriorityRouting, PropertyPigeonholeBridge) {
  util::Rng rng(461);
  int checked = 0;
  for (int trial = 0; trial < 20; ++trial) {
    RandomInstanceOptions opt;
    opt.k = 3;
    opt.delay_slack = 0.3;
    const auto inst = random_er_instance(rng, 12, 0.3, opt);
    if (!inst) continue;
    const auto s = KrspSolver().solve(*inst);
    if (!s.has_paths() || s.delay > inst->delay_bound) continue;
    ++checked;
    // Definition-1 bound D = total budget / k.
    const graph::Delay per_path_d = inst->delay_bound / inst->k;
    const auto report = assign_by_urgency(inst->graph, s.paths,
                                          {{"urgent", per_path_d}});
    EXPECT_TRUE(report.assignments[0].satisfied)
        << "pigeonhole violated: " << report.assignments[0].path_delay
        << " > " << per_path_d;
  }
  EXPECT_GT(checked, 8);
}

}  // namespace
}  // namespace krsp::core

#include "core/scaling.h"

#include <gtest/gtest.h>

#include "flow/disjoint.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::core {
namespace {

Instance big_weight_instance(util::Rng& rng) {
  gen::WeightRange w;
  w.cost_min = 100;
  w.cost_max = 5000;
  w.delay_min = 100;
  w.delay_max = 5000;
  Instance inst;
  inst.graph = gen::erdos_renyi(rng, 10, 0.4, w);
  inst.s = 0;
  inst.t = 9;
  inst.k = 2;
  inst.delay_bound = 20000;
  return inst;
}

TEST(Scaling, SkippedWhenWeightsAlreadySmall) {
  Instance inst;
  inst.graph.resize(2);
  inst.graph.add_edge(0, 1, 2, 3);
  inst.s = 0;
  inst.t = 1;
  inst.k = 1;
  inst.delay_bound = 3;  // S_d = ceil(k*n/eps1) = 4 >= D: no shrink
  const auto scaled = scale_instance(inst, 0.5, 0.5, /*cost_guess=*/4);
  EXPECT_FALSE(scaled.delay_scaled);
  EXPECT_FALSE(scaled.cost_scaled);  // S_c = 4 >= guess
  EXPECT_EQ(scaled.scaled.graph.edge(0).cost, 2);
  EXPECT_EQ(scaled.scaled.delay_bound, 3);
}

TEST(Scaling, DelayDimensionShrinks) {
  util::Rng rng(251);
  const auto inst = big_weight_instance(rng);
  const auto scaled = scale_instance(inst, 0.5, 0.5, 0);
  ASSERT_TRUE(scaled.delay_scaled);
  // D' = S_d = ceil(k*n/eps1) = ceil(2*10/0.5) = 40.
  EXPECT_EQ(scaled.scaled.delay_bound, 40);
  for (const auto& e : scaled.scaled.graph.edges()) EXPECT_LE(e.delay, 40 * 2);
}

TEST(Scaling, CostDimensionNeedsGuess) {
  util::Rng rng(257);
  const auto inst = big_weight_instance(rng);
  const auto unscaled = scale_instance(inst, 0.5, 0.5, 0);
  EXPECT_FALSE(unscaled.cost_scaled);
  const auto scaled = scale_instance(inst, 0.5, 0.5, 10000);
  ASSERT_TRUE(scaled.cost_scaled);
  EXPECT_EQ(scaled.cost_num, 40);
  EXPECT_EQ(scaled.cost_den, 10000);
}

TEST(Scaling, EdgeOrderPreserved) {
  util::Rng rng(263);
  const auto inst = big_weight_instance(rng);
  const auto scaled = scale_instance(inst, 0.25, 0.25, 10000);
  ASSERT_EQ(scaled.scaled.graph.num_edges(), inst.graph.num_edges());
  for (graph::EdgeId e = 0; e < inst.graph.num_edges(); ++e) {
    EXPECT_EQ(scaled.scaled.graph.edge(e).from, inst.graph.edge(e).from);
    EXPECT_EQ(scaled.scaled.graph.edge(e).to, inst.graph.edge(e).to);
  }
}

// Feasibility preservation: a delay-feasible path system of the original
// instance stays feasible after delay scaling.
TEST(Scaling, PropertyFeasibilityPreserved) {
  util::Rng rng(269);
  int checked = 0;
  for (int trial = 0; trial < 20; ++trial) {
    auto inst = big_weight_instance(rng);
    const auto min_delay_flow = flow::min_weight_disjoint_paths(
        inst.graph, inst.s, inst.t, inst.k, 0, 1);
    if (!min_delay_flow) continue;
    inst.delay_bound = min_delay_flow->total_delay;  // tight but feasible
    const auto scaled = scale_instance(inst, 0.3, 0.3, 0);
    if (!scaled.delay_scaled) continue;
    ++checked;
    // The same path system, measured in scaled delays, satisfies D'.
    graph::Delay scaled_delay = 0;
    for (const auto& p : min_delay_flow->paths)
      for (const graph::EdgeId e : p)
        scaled_delay += scaled.scaled.graph.edge(e).delay;
    EXPECT_LE(scaled_delay, scaled.scaled.delay_bound);
  }
  EXPECT_GT(checked, 10);
}

// Reverse guarantee: any system feasible in the scaled instance has
// original delay <= (1 + eps1) * D.
TEST(Scaling, PropertyUnscaledDelayWithinEps) {
  util::Rng rng(271);
  const double eps1 = 0.4;
  int checked = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto inst = big_weight_instance(rng);
    const auto scaled = scale_instance(inst, eps1, 0.5, 0);
    if (!scaled.delay_scaled) continue;
    // Use the scaled-min-delay flow as a feasible-scaled witness.
    const auto f = flow::min_weight_disjoint_paths(
        scaled.scaled.graph, inst.s, inst.t, inst.k, 0, 1);
    if (!f || f->total_delay > scaled.scaled.delay_bound) continue;
    ++checked;
    graph::Delay original = 0;
    for (const auto& p : f->paths)
      for (const graph::EdgeId e : p) original += inst.graph.edge(e).delay;
    EXPECT_LE(static_cast<double>(original),
              (1.0 + eps1) * static_cast<double>(inst.delay_bound) + 1e-9);
  }
  EXPECT_GT(checked, 5);
}

TEST(Scaling, InvalidEpsThrows) {
  Instance inst;
  inst.graph.resize(2);
  inst.graph.add_edge(0, 1, 1, 1);
  inst.s = 0;
  inst.t = 1;
  inst.k = 1;
  inst.delay_bound = 1;
  EXPECT_THROW(scale_instance(inst, 0.0, 0.5, 0), util::CheckError);
}

}  // namespace
}  // namespace krsp::core

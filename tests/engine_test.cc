// Concurrency and workspace-reuse guarantees of the batch engine and the
// krsp::api facade:
//  * batches are bit-identical across pool sizes (1, 2, 8 threads) and
//    across the workspace-reuse ablation — scheduling is unobservable;
//  * a SolveWorkspace reused across 50 randomized instances matches a
//    fresh solve on every one;
//  * per-request failures surface as kFailed results, never exceptions,
//    and never disturb their batch neighbors;
//  * deadline-bounded requests return structurally valid anytime results.
#include "api/krsp.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::api {
namespace {

/// Randomized ER instance with a tight-ish delay bound so a good share of
/// solves engage the cancellation machinery, not just phase 1.
Instance random_instance(std::uint64_t seed, int n = 14, int k = 2,
                         double slack = 0.25) {
  util::Rng rng(seed);
  RandomInstanceOptions opt;
  opt.k = k;
  opt.delay_slack = slack;
  const auto inst = random_er_instance(rng, n, 0.35, opt);
  KRSP_CHECK_MSG(inst.has_value(), "seed " << seed << " drew no instance");
  return *inst;
}

std::vector<SolveRequest> mixed_batch(int size) {
  std::vector<SolveRequest> batch;
  batch.reserve(size);
  for (int i = 0; i < size; ++i) {
    SolveRequest req;
    req.instance = random_instance(100 + i, 12 + i % 5, 2 + i % 2);
    req.mode = i % 3 == 0   ? Mode::kExactWeights
               : i % 3 == 1 ? Mode::kScaled
                            : Mode::kPhase1Only;
    req.eps1 = req.eps2 = i % 2 == 0 ? 0.25 : 0.5;
    req.guess =
        i % 4 == 0 ? GuessStrategy::kDoubling : GuessStrategy::kBinarySearch;
    req.tag = "req-" + std::to_string(i);
    batch.push_back(std::move(req));
  }
  return batch;
}

void expect_identical(const SolveResult& a, const SolveResult& b,
                      const std::string& context) {
  EXPECT_EQ(a.tag, b.tag) << context;
  EXPECT_EQ(a.status, b.status) << context;
  EXPECT_EQ(a.cost, b.cost) << context;
  EXPECT_EQ(a.delay, b.delay) << context;
  EXPECT_EQ(a.paths.paths(), b.paths.paths()) << context;
  EXPECT_EQ(a.telemetry.guess_attempts, b.telemetry.guess_attempts) << context;
  EXPECT_EQ(a.telemetry.phase1_mcmf_calls, b.telemetry.phase1_mcmf_calls)
      << context;
  EXPECT_EQ(a.telemetry.cost_guess_used, b.telemetry.cost_guess_used)
      << context;
}

TEST(Engine, BatchBitIdenticalAcrossThreadCounts) {
  const auto batch = mixed_batch(18);
  std::vector<std::vector<SolveResult>> runs;
  for (const int threads : {1, 2, 8}) {
    Engine engine(EngineOptions{.num_threads = threads});
    ASSERT_EQ(engine.num_threads(), threads);
    runs.push_back(engine.solve_batch(batch));
    ASSERT_EQ(runs.back().size(), batch.size());
  }
  for (std::size_t r = 1; r < runs.size(); ++r)
    for (std::size_t i = 0; i < batch.size(); ++i)
      expect_identical(runs[0][i], runs[r][i],
                       "run " + std::to_string(r) + " request " +
                           std::to_string(i));
  // Sanity: the batch exercised real solves, not a wall of failures.
  int with_paths = 0;
  for (const auto& res : runs[0]) with_paths += res.has_paths() ? 1 : 0;
  EXPECT_GT(with_paths, static_cast<int>(batch.size()) / 2);
}

TEST(Engine, WorkspaceReuseAblationChangesNothing) {
  const auto batch = mixed_batch(12);
  Engine reusing(EngineOptions{.num_threads = 4, .reuse_workspaces = true});
  Engine fresh(EngineOptions{.num_threads = 4, .reuse_workspaces = false});
  const auto with_reuse = reusing.solve_batch(batch);
  const auto without = fresh.solve_batch(batch);
  ASSERT_EQ(with_reuse.size(), without.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    expect_identical(with_reuse[i], without[i],
                     "request " + std::to_string(i));
}

TEST(Engine, ReusedWorkspaceMatchesFreshOn50RandomInstances) {
  SolveWorkspace reused;
  int cancellation_engaged = 0;
  for (int trial = 0; trial < 50; ++trial) {
    SolveRequest req;
    req.instance = random_instance(3000 + trial, 12 + trial % 7, 2);
    req.mode = trial % 2 == 0 ? Mode::kExactWeights : Mode::kScaled;
    req.tag = "trial-" + std::to_string(trial);
    const auto with_ws = Solver::solve(req, reused);
    const auto without_ws = Solver::solve(req);
    expect_identical(with_ws, without_ws, "trial " + std::to_string(trial));
    if (with_ws.telemetry.cancel.iterations > 0) ++cancellation_engaged;
  }
  // The reuse claim is empty if no solve ever touched the finder tables.
  EXPECT_GT(cancellation_engaged, 0);
  EXPECT_GT(reused.mcmf.reuse_hits(), 0u);
  // Scaled-mode requests nest an inner exact-weights solve per cap guess on
  // the same workspace, so the count is at least one per trial.
  EXPECT_GE(reused.solves_started, 50u);
}

TEST(Engine, PerRequestFailureIsIsolated) {
  auto batch = mixed_batch(4);
  SolveRequest bad;
  // s == t violates Instance::validate — must come back kFailed, not throw.
  bad.instance.graph.resize(2);
  bad.instance.graph.add_edge(0, 1, 1, 1);
  bad.instance.s = 0;
  bad.instance.t = 0;
  bad.instance.k = 1;
  bad.instance.delay_bound = 5;
  bad.tag = "bad";
  batch.insert(batch.begin() + 2, bad);

  Engine engine(EngineOptions{.num_threads = 2});
  const auto results = engine.solve_batch(batch);
  ASSERT_EQ(results.size(), batch.size());
  EXPECT_EQ(results[2].status, SolveStatus::kFailed);
  EXPECT_EQ(results[2].tag, "bad");
  EXPECT_FALSE(results[2].error.empty());
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i == 2) continue;
    EXPECT_NE(results[i].status, SolveStatus::kFailed) << i;
    EXPECT_TRUE(results[i].error.empty()) << i;
  }
}

TEST(Engine, DeadlineRequestsReturnValidAnytimeResults) {
  std::vector<SolveRequest> batch;
  for (int i = 0; i < 6; ++i) {
    SolveRequest req;
    req.instance = random_instance(7000 + i, 16, 2, 0.15);
    req.mode = Mode::kExactWeights;
    req.deadline_seconds = 1e-6;  // expires essentially immediately
    req.tag = "deadline-" + std::to_string(i);
    batch.push_back(std::move(req));
  }
  Engine engine(EngineOptions{.num_threads = 2});
  const auto results = engine.solve_batch(batch);
  for (const auto& res : results) {
    ASSERT_NE(res.status, SolveStatus::kFailed) << res.error;
    if (res.has_paths()) {
      // Anytime ladder: whatever step served it, the paths are structurally
      // valid and delay-feasible in exact mode.
      std::string why;
      const auto& req = batch[&res - results.data()];
      EXPECT_TRUE(res.paths.is_valid(req.instance, &why)) << why;
      EXPECT_LE(res.delay, req.instance.delay_bound);
    }
  }
}

TEST(Engine, EmptyBatchAndRepeatedBatches) {
  Engine engine(EngineOptions{.num_threads = 3});
  EXPECT_TRUE(engine.solve_batch({}).empty());
  const auto batch = mixed_batch(5);
  const auto first = engine.solve_batch(batch);
  const auto second = engine.solve_batch(batch);  // pool + workspaces reused
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    expect_identical(first[i], second[i], "repeat " + std::to_string(i));
}

}  // namespace
}  // namespace krsp::api

// Concurrency and workspace-reuse guarantees of the batch engine and the
// krsp::api facade:
//  * batches are bit-identical across pool sizes (1, 2, 8 threads) and
//    across the workspace-reuse ablation — scheduling is unobservable;
//  * a SolveWorkspace reused across 50 randomized instances matches a
//    fresh solve on every one;
//  * per-request failures surface as kFailed results, never exceptions,
//    and never disturb their batch neighbors;
//  * deadline-bounded requests return structurally valid anytime results.
#include "api/krsp.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::api {
namespace {

/// Randomized ER instance with a tight-ish delay bound so a good share of
/// solves engage the cancellation machinery, not just phase 1.
Instance random_instance(std::uint64_t seed, int n = 14, int k = 2,
                         double slack = 0.25) {
  util::Rng rng(seed);
  RandomInstanceOptions opt;
  opt.k = k;
  opt.delay_slack = slack;
  const auto inst = random_er_instance(rng, n, 0.35, opt);
  KRSP_CHECK_MSG(inst.has_value(), "seed " << seed << " drew no instance");
  return *inst;
}

std::vector<SolveRequest> mixed_batch(int size) {
  std::vector<SolveRequest> batch;
  batch.reserve(size);
  for (int i = 0; i < size; ++i) {
    SolveRequest req;
    req.instance = random_instance(100 + i, 12 + i % 5, 2 + i % 2);
    req.mode = i % 3 == 0   ? Mode::kExactWeights
               : i % 3 == 1 ? Mode::kScaled
                            : Mode::kPhase1Only;
    req.eps1 = req.eps2 = i % 2 == 0 ? 0.25 : 0.5;
    req.guess =
        i % 4 == 0 ? GuessStrategy::kDoubling : GuessStrategy::kBinarySearch;
    req.tag = "req-" + std::to_string(i);
    batch.push_back(std::move(req));
  }
  return batch;
}

void expect_identical(const SolveResult& a, const SolveResult& b,
                      const std::string& context) {
  EXPECT_EQ(a.tag, b.tag) << context;
  EXPECT_EQ(a.status, b.status) << context;
  EXPECT_EQ(a.cost, b.cost) << context;
  EXPECT_EQ(a.delay, b.delay) << context;
  EXPECT_EQ(a.paths.paths(), b.paths.paths()) << context;
  EXPECT_EQ(a.telemetry.guess_attempts, b.telemetry.guess_attempts) << context;
  EXPECT_EQ(a.telemetry.phase1_mcmf_calls, b.telemetry.phase1_mcmf_calls)
      << context;
  EXPECT_EQ(a.telemetry.cost_guess_used, b.telemetry.cost_guess_used)
      << context;
}

TEST(Engine, BatchBitIdenticalAcrossThreadCounts) {
  const auto batch = mixed_batch(18);
  std::vector<std::vector<SolveResult>> runs;
  for (const int threads : {1, 2, 8}) {
    Engine engine(EngineOptions{.num_threads = threads});
    ASSERT_EQ(engine.num_threads(), threads);
    runs.push_back(engine.solve_batch(batch));
    ASSERT_EQ(runs.back().size(), batch.size());
  }
  for (std::size_t r = 1; r < runs.size(); ++r)
    for (std::size_t i = 0; i < batch.size(); ++i)
      expect_identical(runs[0][i], runs[r][i],
                       "run " + std::to_string(r) + " request " +
                           std::to_string(i));
  // Sanity: the batch exercised real solves, not a wall of failures.
  int with_paths = 0;
  for (const auto& res : runs[0]) with_paths += res.has_paths() ? 1 : 0;
  EXPECT_GT(with_paths, static_cast<int>(batch.size()) / 2);
}

TEST(Engine, WorkspaceReuseAblationChangesNothing) {
  const auto batch = mixed_batch(12);
  Engine reusing(EngineOptions{.num_threads = 4, .reuse_workspaces = true});
  Engine fresh(EngineOptions{.num_threads = 4, .reuse_workspaces = false});
  const auto with_reuse = reusing.solve_batch(batch);
  const auto without = fresh.solve_batch(batch);
  ASSERT_EQ(with_reuse.size(), without.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    expect_identical(with_reuse[i], without[i],
                     "request " + std::to_string(i));
}

TEST(Engine, ReusedWorkspaceMatchesFreshOn50RandomInstances) {
  SolveWorkspace reused;
  int cancellation_engaged = 0;
  for (int trial = 0; trial < 50; ++trial) {
    SolveRequest req;
    req.instance = random_instance(3000 + trial, 12 + trial % 7, 2);
    req.mode = trial % 2 == 0 ? Mode::kExactWeights : Mode::kScaled;
    req.tag = "trial-" + std::to_string(trial);
    const auto with_ws = Solver::solve(req, reused);
    const auto without_ws = Solver::solve(req);
    expect_identical(with_ws, without_ws, "trial " + std::to_string(trial));
    if (with_ws.telemetry.cancel.iterations > 0) ++cancellation_engaged;
  }
  // The reuse claim is empty if no solve ever touched the finder tables.
  EXPECT_GT(cancellation_engaged, 0);
  EXPECT_GT(reused.mcmf.reuse_hits(), 0u);
  // Scaled-mode requests nest an inner exact-weights solve per cap guess on
  // the same workspace, so the count is at least one per trial.
  EXPECT_GE(reused.solves_started, 50u);
}

TEST(Engine, PerRequestFailureIsIsolated) {
  auto batch = mixed_batch(4);
  SolveRequest bad;
  // s == t violates Instance::validate — must come back kFailed, not throw.
  bad.instance.graph.resize(2);
  bad.instance.graph.add_edge(0, 1, 1, 1);
  bad.instance.s = 0;
  bad.instance.t = 0;
  bad.instance.k = 1;
  bad.instance.delay_bound = 5;
  bad.tag = "bad";
  batch.insert(batch.begin() + 2, bad);

  Engine engine(EngineOptions{.num_threads = 2});
  const auto results = engine.solve_batch(batch);
  ASSERT_EQ(results.size(), batch.size());
  EXPECT_EQ(results[2].status, SolveStatus::kFailed);
  EXPECT_EQ(results[2].tag, "bad");
  EXPECT_FALSE(results[2].error.empty());
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i == 2) continue;
    EXPECT_NE(results[i].status, SolveStatus::kFailed) << i;
    EXPECT_TRUE(results[i].error.empty()) << i;
  }
}

TEST(Engine, DeadlineRequestsReturnValidAnytimeResults) {
  std::vector<SolveRequest> batch;
  for (int i = 0; i < 6; ++i) {
    SolveRequest req;
    req.instance = random_instance(7000 + i, 16, 2, 0.15);
    req.mode = Mode::kExactWeights;
    req.deadline_seconds = 1e-6;  // expires essentially immediately
    req.tag = "deadline-" + std::to_string(i);
    batch.push_back(std::move(req));
  }
  Engine engine(EngineOptions{.num_threads = 2});
  const auto results = engine.solve_batch(batch);
  for (const auto& res : results) {
    ASSERT_NE(res.status, SolveStatus::kFailed) << res.error;
    if (res.has_paths()) {
      // Anytime ladder: whatever step served it, the paths are structurally
      // valid and delay-feasible in exact mode.
      std::string why;
      const auto& req = batch[&res - results.data()];
      EXPECT_TRUE(res.paths.is_valid(req.instance, &why)) << why;
      EXPECT_LE(res.delay, req.instance.delay_bound);
    }
  }
}

TEST(Engine, EmptyBatchAndRepeatedBatches) {
  Engine engine(EngineOptions{.num_threads = 3});
  EXPECT_TRUE(engine.solve_batch({}).empty());
  const auto batch = mixed_batch(5);
  const auto first = engine.solve_batch(batch);
  const auto second = engine.solve_batch(batch);  // pool + workspaces reused
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    expect_identical(first[i], second[i], "repeat " + std::to_string(i));
}

TEST(Engine, ThreadCountEdgeCasesAreDefined) {
  // 0 = auto-detect: at least one worker, and an empty batch still works.
  Engine auto_engine(EngineOptions{.num_threads = 0});
  EXPECT_GE(auto_engine.num_threads(), 1);
  EXPECT_TRUE(auto_engine.solve_batch({}).empty());
  // Negative requests clamp to a single worker rather than UB or a throw.
  Engine negative(EngineOptions{.num_threads = -4});
  EXPECT_EQ(negative.num_threads(), 1);
  const auto batch = mixed_batch(3);
  const auto from_negative = negative.solve_batch(batch);
  const auto from_auto = auto_engine.solve_batch(batch);
  ASSERT_EQ(from_negative.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    expect_identical(from_negative[i], from_auto[i],
                     "clamped vs auto, request " + std::to_string(i));
}

TEST(Engine, SubmitMatchesSolveBatchBitForBit) {
  const auto batch = mixed_batch(12);
  Engine engine(EngineOptions{.num_threads = 4});
  const auto reference = engine.solve_batch(batch);

  std::vector<Ticket> tickets;
  tickets.reserve(batch.size());
  for (const auto& req : batch) tickets.push_back(engine.submit(req));
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    ASSERT_TRUE(tickets[i].valid());
    // Ticket ids are the submission sequence: the first solve_batch above
    // consumed ids [0, batch), so these continue from batch.size().
    EXPECT_EQ(tickets[i].id(), batch.size() + i);
    expect_identical(tickets[i].get(), reference[i],
                     "submit vs solve_batch, request " + std::to_string(i));
    EXPECT_FALSE(tickets[i].valid());  // get() consumes the ticket
  }
  EXPECT_EQ(engine.submitted(), 2 * batch.size());
  engine.drain();
  EXPECT_EQ(engine.completed(), 2 * batch.size());
  EXPECT_EQ(engine.queue_depth(), 0u);
}

TEST(Engine, BoundedQueueStreamsArbitrarilyLongSequences) {
  // Capacity 2 with one worker: submit() must block-and-release rather
  // than deadlock or drop, and results still arrive in ticket order.
  Engine engine(EngineOptions{.num_threads = 1, .queue_capacity = 2});
  const auto batch = mixed_batch(10);
  Engine reference_engine(EngineOptions{.num_threads = 1});
  const auto reference = reference_engine.solve_batch(batch);

  std::vector<Ticket> tickets;
  for (const auto& req : batch) {
    tickets.push_back(engine.submit(req));
    EXPECT_LE(engine.queue_depth(), 2u);
  }
  for (std::size_t i = 0; i < tickets.size(); ++i)
    expect_identical(tickets[i].get(), reference[i],
                     "bounded queue, request " + std::to_string(i));
}

TEST(Engine, ConcurrentSubmittersGetIndependentBitIdenticalResults) {
  // Several client threads race submit() on one engine; each must read
  // back exactly the results for its own requests. (TSan leg runs this.)
  const auto batch = mixed_batch(6);
  Engine reference_engine(EngineOptions{.num_threads = 2});
  const auto reference = reference_engine.solve_batch(batch);

  Engine engine(EngineOptions{.num_threads = 2, .queue_capacity = 4});
  constexpr int kClients = 4;
  std::vector<std::vector<SolveResult>> got(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      std::vector<Ticket> tickets;
      for (const auto& req : batch) tickets.push_back(engine.submit(req));
      for (auto& t : tickets) got[c].push_back(t.get());
    });
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(got[c].size(), batch.size()) << "client " << c;
    for (std::size_t i = 0; i < batch.size(); ++i)
      expect_identical(got[c][i], reference[i],
                       "client " + std::to_string(c) + " request " +
                           std::to_string(i));
  }
  EXPECT_EQ(engine.submitted(), kClients * batch.size());
}

TEST(Engine, CloseRejectsNewWorkAndDrainCompletesInFlight) {
  Engine engine(EngineOptions{.num_threads = 2});
  const auto batch = mixed_batch(4);
  std::vector<Ticket> tickets;
  for (const auto& req : batch) tickets.push_back(engine.submit(req));
  engine.close();
  engine.drain();
  // Everything accepted before close() completed normally...
  for (auto& t : tickets) EXPECT_NE(t.get().status, SolveStatus::kFailed);
  EXPECT_EQ(engine.completed(), batch.size());
  // ...and post-close submissions come back kFailed, never an exception.
  // Refused tickets carry the sentinel id, not a submission index: the
  // dense id sequence belongs to accepted requests only.
  Ticket rejected = engine.submit(batch.front());
  ASSERT_TRUE(rejected.valid());
  EXPECT_EQ(rejected.id(), Ticket::kRefusedId);
  EXPECT_EQ(engine.submitted(), batch.size());
  const SolveResult result = rejected.get();
  EXPECT_EQ(result.status, SolveStatus::kFailed);
  EXPECT_FALSE(result.error.empty());
}

}  // namespace
}  // namespace krsp::api

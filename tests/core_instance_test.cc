#include "core/instance.h"

#include <gtest/gtest.h>

#include "core/path_set.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::core {
namespace {

Instance diamond_instance() {
  Instance inst;
  inst.graph.resize(4);
  inst.graph.add_edge(0, 1, 1, 1);
  inst.graph.add_edge(1, 3, 1, 1);
  inst.graph.add_edge(0, 2, 2, 2);
  inst.graph.add_edge(2, 3, 2, 2);
  inst.s = 0;
  inst.t = 3;
  inst.k = 2;
  inst.delay_bound = 6;
  return inst;
}

TEST(Instance, ValidatePasses) { EXPECT_NO_THROW(diamond_instance().validate()); }

TEST(Instance, ValidateRejectsBadFields) {
  auto inst = diamond_instance();
  inst.s = inst.t;
  EXPECT_THROW(inst.validate(), util::CheckError);

  inst = diamond_instance();
  inst.k = 0;
  EXPECT_THROW(inst.validate(), util::CheckError);

  inst = diamond_instance();
  inst.delay_bound = -1;
  EXPECT_THROW(inst.validate(), util::CheckError);

  inst = diamond_instance();
  inst.graph.add_edge(0, 1, -1, 1);
  EXPECT_THROW(inst.validate(), util::CheckError);
}

TEST(Instance, HasKDisjointPaths) {
  auto inst = diamond_instance();
  EXPECT_TRUE(has_k_disjoint_paths(inst));
  inst.k = 3;
  EXPECT_FALSE(has_k_disjoint_paths(inst));
}

TEST(Instance, MinPossibleDelay) {
  const auto inst = diamond_instance();
  const auto d = min_possible_delay(inst);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 6);  // both routes are needed: 2 + 4
}

TEST(Instance, MinPossibleDelayNulloptWhenDisconnected) {
  Instance inst;
  inst.graph.resize(3);
  inst.graph.add_edge(0, 1, 1, 1);
  inst.s = 0;
  inst.t = 2;
  inst.k = 1;
  inst.delay_bound = 10;
  EXPECT_FALSE(min_possible_delay(inst).has_value());
}

TEST(RandomInstance, AlwaysStructurallyFeasible) {
  util::Rng rng(179);
  int made = 0;
  for (int trial = 0; trial < 20; ++trial) {
    RandomInstanceOptions opt;
    opt.k = 2;
    opt.delay_slack = 0.5;
    const auto inst = random_er_instance(rng, 12, 0.3, opt);
    if (!inst) continue;
    ++made;
    EXPECT_TRUE(has_k_disjoint_paths(*inst));
    const auto min_delay = min_possible_delay(*inst);
    ASSERT_TRUE(min_delay.has_value());
    EXPECT_GE(inst->delay_bound, *min_delay);  // feasible by construction
  }
  EXPECT_GT(made, 10);
}

TEST(RandomInstance, TightSlackGivesMinDelayBound) {
  util::Rng rng(181);
  RandomInstanceOptions opt;
  opt.k = 2;
  opt.delay_slack = 0.0;
  const auto inst = random_er_instance(rng, 12, 0.35, opt);
  ASSERT_TRUE(inst.has_value());
  EXPECT_EQ(inst->delay_bound, *min_possible_delay(*inst));
}

TEST(PathSet, MeasuresAndValidity) {
  const auto inst = diamond_instance();
  PathSet ps({{0, 1}, {2, 3}});
  EXPECT_EQ(ps.total_cost(inst.graph), 6);
  EXPECT_EQ(ps.total_delay(inst.graph), 6);
  std::string why;
  EXPECT_TRUE(ps.is_valid(inst, &why)) << why;
  EXPECT_TRUE(ps.satisfies_delay(inst));
}

TEST(PathSet, DetectsWrongCount) {
  const auto inst = diamond_instance();
  PathSet ps({{0, 1}});
  std::string why;
  EXPECT_FALSE(ps.is_valid(inst, &why));
  EXPECT_NE(why.find("expected 2"), std::string::npos);
}

TEST(PathSet, DetectsSharedEdge) {
  const auto inst = diamond_instance();
  PathSet ps({{0, 1}, {0, 1}});
  std::string why;
  EXPECT_FALSE(ps.is_valid(inst, &why));
}

TEST(PathSet, DetectsNonPath) {
  const auto inst = diamond_instance();
  PathSet ps({{0, 1}, {3, 2}});  // second is reversed order
  EXPECT_FALSE(ps.is_valid(inst));
}

TEST(PathSet, AllEdgesFlattens) {
  PathSet ps({{0, 1}, {2, 3}});
  const auto edges = ps.all_edges();
  EXPECT_EQ(edges.size(), 4u);
}

}  // namespace
}  // namespace krsp::core

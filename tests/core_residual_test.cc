#include "core/residual.h"

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "core/instance.h"
#include "flow/decompose.h"
#include "flow/disjoint.h"
#include "graph/cycles.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::core {
namespace {

using graph::EdgeId;

Instance diamond_instance() {
  Instance inst;
  inst.graph.resize(4);
  inst.graph.add_edge(0, 1, 1, 1);   // e0
  inst.graph.add_edge(1, 3, 1, 1);   // e1
  inst.graph.add_edge(0, 2, 2, 2);   // e2
  inst.graph.add_edge(2, 3, 2, 2);   // e3
  inst.graph.add_edge(1, 2, 5, 5);   // e4 (cross edge, unused by flow)
  inst.s = 0;
  inst.t = 3;
  inst.k = 2;
  inst.delay_bound = 6;
  return inst;
}

TEST(ResidualGraph, Definition6Structure) {
  const auto inst = diamond_instance();
  const ResidualGraph residual(inst.graph, {0, 1});  // flow on 0-1-3
  const auto& rg = residual.digraph();
  ASSERT_EQ(rg.num_edges(), inst.graph.num_edges());
  // Flow edges reversed with negated weights.
  EXPECT_TRUE(residual.is_reversed(0));
  EXPECT_EQ(rg.edge(0).from, 1);
  EXPECT_EQ(rg.edge(0).to, 0);
  EXPECT_EQ(rg.edge(0).cost, -1);
  EXPECT_EQ(rg.edge(0).delay, -1);
  // Non-flow edges kept forward with original weights.
  EXPECT_FALSE(residual.is_reversed(2));
  EXPECT_EQ(rg.edge(2).from, 0);
  EXPECT_EQ(rg.edge(2).cost, 2);
}

TEST(ResidualGraph, DuplicateFlowEdgesRejected) {
  const auto inst = diamond_instance();
  EXPECT_THROW(ResidualGraph(inst.graph, {0, 0}), util::CheckError);
}

TEST(ResidualGraph, CycleMeasuresAreSignAdjusted) {
  const auto inst = diamond_instance();
  const ResidualGraph residual(inst.graph, {0, 1});
  // Residual cycle: forward e4 (1->2), forward e3 (2->3), reversed e1
  // (3->1): cost 5 + 2 - 1 = 6, delay the same.
  const std::vector<EdgeId> cycle{4, 3, 1};
  EXPECT_EQ(residual.cycle_cost(cycle), 6);
  EXPECT_EQ(residual.cycle_delay(cycle), 6);
}

TEST(ResidualGraph, ApplyCycleRewiresFlow) {
  const auto inst = diamond_instance();
  const ResidualGraph residual(inst.graph, {0, 1});
  const std::vector<EdgeId> cycle{4, 3, 1};  // reroute 1-3 into 1-2-3
  const auto next = residual.apply_cycle(cycle);
  const std::vector<EdgeId> expected{0, 3, 4};
  EXPECT_EQ(next, expected);
}

TEST(ResidualGraph, ApplyCycleChecksMembership) {
  const auto inst = diamond_instance();
  const ResidualGraph residual(inst.graph, {0, 1});
  // Edge 2 is forward (not in flow); applying it twice via duplicate ids
  // would double-insert.
  EXPECT_THROW((void)residual.apply_cycle(std::vector<EdgeId>{2, 2}),
               util::CheckError);
}

// Proposition 8: current ⊕ optimal decomposes into edge-disjoint simple
// cycles in the residual graph.
TEST(DifferenceCycles, Proposition8OnRandomInstances) {
  util::Rng rng(191);
  int checked = 0;
  for (int trial = 0; trial < 20; ++trial) {
    RandomInstanceOptions opt;
    opt.k = 2;
    opt.delay_slack = 0.4;
    const auto inst = random_er_instance(rng, 9, 0.35, opt);
    if (!inst) continue;
    // current = min-cost flow; target = exact optimum.
    const auto cur = flow::min_weight_disjoint_paths(
        inst->graph, inst->s, inst->t, inst->k, 1, 0);
    const auto opt_sol = baselines::brute_force_krsp(*inst);
    if (!cur || !opt_sol) continue;
    ++checked;
    std::vector<EdgeId> cur_edges;
    for (const auto& p : cur->paths)
      cur_edges.insert(cur_edges.end(), p.begin(), p.end());
    const ResidualGraph residual(inst->graph, cur_edges);
    const auto cycles = difference_cycles(residual, cur_edges,
                                          opt_sol->paths.all_edges());
    graph::Cost cost_sum = 0;
    graph::Delay delay_sum = 0;
    for (const auto& c : cycles) {
      EXPECT_TRUE(graph::is_simple_cycle(residual.digraph(), c));
      cost_sum += residual.cycle_cost(c);
      delay_sum += residual.cycle_delay(c);
    }
    // The cycle system carries exactly the measure difference.
    EXPECT_EQ(cost_sum, opt_sol->cost - cur->total_cost);
    EXPECT_EQ(delay_sum, opt_sol->delay - cur->total_delay);
  }
  EXPECT_GT(checked, 5);
}

// Proposition 7 (property): applying any subset of the difference cycles to
// the current flow still yields k disjoint s-t paths.
TEST(ApplyCycle, Proposition7PreservesKDisjointPaths) {
  util::Rng rng(193);
  int checked = 0;
  for (int trial = 0; trial < 20; ++trial) {
    RandomInstanceOptions opt;
    opt.k = 2;
    opt.delay_slack = 0.3;
    const auto inst = random_er_instance(rng, 9, 0.35, opt);
    if (!inst) continue;
    const auto cur = flow::min_weight_disjoint_paths(
        inst->graph, inst->s, inst->t, inst->k, 1, 0);
    const auto best = baselines::brute_force_krsp(*inst);
    if (!cur || !best) continue;
    std::vector<EdgeId> cur_edges;
    for (const auto& p : cur->paths)
      cur_edges.insert(cur_edges.end(), p.begin(), p.end());
    const ResidualGraph residual(inst->graph, cur_edges);
    const auto cycles =
        difference_cycles(residual, cur_edges, best->paths.all_edges());
    // Apply cycles one at a time, re-validating after each.
    auto flow_edges = cur_edges;
    for (std::size_t step_i = 0; step_i < cycles.size(); ++step_i) {
      const ResidualGraph step(inst->graph, flow_edges);
      // Cycle edge ids are residual ids == original ids; rebuild against
      // the *current* residual: each original edge flips orientation state,
      // so the same id set remains a valid residual cycle only for the
      // first application — instead re-derive the remaining difference.
      const auto remaining = difference_cycles(step, flow_edges,
                                               best->paths.all_edges());
      if (remaining.empty()) break;
      flow_edges = step.apply_cycle(remaining.front());
      const auto d = flow::decompose_unit_flow(inst->graph, flow_edges,
                                               inst->s, inst->t, inst->k);
      EXPECT_EQ(static_cast<int>(d.paths.size()), inst->k);
      ++checked;
    }
  }
  EXPECT_GT(checked, 5);
}

// Lemma 9: if the current delay exceeds D (and the instance is feasible),
// the residual graph contains a negative-delay cycle.
TEST(DifferenceCycles, Lemma9NegativeDelayCycleExists) {
  util::Rng rng(197);
  int overshoots = 0;
  for (int trial = 0; trial < 30; ++trial) {
    RandomInstanceOptions opt;
    opt.k = 2;
    opt.delay_slack = 0.2;
    const auto inst = random_er_instance(rng, 9, 0.35, opt);
    if (!inst) continue;
    const auto cur = flow::min_weight_disjoint_paths(
        inst->graph, inst->s, inst->t, inst->k, 1, 0);
    const auto best = baselines::brute_force_krsp(*inst);
    if (!cur || !best) continue;
    if (cur->total_delay <= inst->delay_bound) continue;  // no overshoot
    ++overshoots;
    std::vector<EdgeId> cur_edges;
    for (const auto& p : cur->paths)
      cur_edges.insert(cur_edges.end(), p.begin(), p.end());
    const ResidualGraph residual(inst->graph, cur_edges);
    const auto cycles =
        difference_cycles(residual, cur_edges, best->paths.all_edges());
    bool has_negative_delay = false;
    for (const auto& c : cycles)
      if (residual.cycle_delay(c) < 0) has_negative_delay = true;
    EXPECT_TRUE(has_negative_delay);
  }
  EXPECT_GT(overshoots, 3);
}

}  // namespace
}  // namespace krsp::core

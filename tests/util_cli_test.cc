#include "util/cli.h"

#include <gtest/gtest.h>

namespace krsp::util {
namespace {

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsSyntax) {
  const auto cli = make({"--n=32", "--eps=0.5", "--name=waxman"});
  EXPECT_EQ(cli.get_int("n", 0), 32);
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 0.0), 0.5);
  EXPECT_EQ(cli.get_string("name", ""), "waxman");
}

TEST(Cli, SpaceSyntax) {
  const auto cli = make({"--n", "32", "--name", "grid"});
  EXPECT_EQ(cli.get_int("n", 0), 32);
  EXPECT_EQ(cli.get_string("name", ""), "grid");
}

TEST(Cli, BooleanFlag) {
  const auto cli = make({"--verbose"});
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.has("quiet"));
}

TEST(Cli, DefaultsUsedWhenAbsent) {
  const auto cli = make({});
  EXPECT_EQ(cli.get_int("n", 7), 7);
  EXPECT_EQ(cli.get_string("x", "d"), "d");
  EXPECT_FALSE(cli.get_bool("flag", false));
}

TEST(Cli, RejectUnknownFlags) {
  const auto cli = make({"--oops=1"});
  EXPECT_THROW(cli.reject_unknown(), CheckError);
}

TEST(Cli, RejectUnknownPassesWhenAllTouched) {
  const auto cli = make({"--n=1"});
  (void)cli.get_int("n", 0);
  EXPECT_NO_THROW(cli.reject_unknown());
}

TEST(Cli, NonFlagArgumentThrows) {
  std::vector<const char*> argv{"prog", "positional"};
  EXPECT_THROW(Cli(2, argv.data()), CheckError);
}

}  // namespace
}  // namespace krsp::util

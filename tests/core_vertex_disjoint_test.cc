#include "core/vertex_disjoint.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::core {
namespace {

TEST(VertexDisjoint, SharedVertexForcesPricierRoute) {
  // Two cheap paths share vertex 1; the vertex-disjoint solver must route
  // the second path around it.
  Instance inst;
  inst.graph.resize(5);
  inst.graph.add_edge(0, 1, 1, 1);
  inst.graph.add_edge(1, 4, 1, 1);
  inst.graph.add_edge(0, 1, 1, 1);   // parallel cheap route, same vertex
  inst.graph.add_edge(1, 4, 1, 1);
  inst.graph.add_edge(0, 2, 5, 1);   // detour around vertex 1
  inst.graph.add_edge(2, 4, 5, 1);
  inst.s = 0;
  inst.t = 4;
  inst.k = 2;
  inst.delay_bound = 10;

  const auto edge_version = KrspSolver().solve(inst);
  ASSERT_TRUE(edge_version.has_paths());
  EXPECT_EQ(edge_version.cost, 4);  // both cheap routes, sharing vertex 1

  const auto vertex_version = solve_vertex_disjoint(inst);
  ASSERT_TRUE(vertex_version.has_paths());
  EXPECT_EQ(vertex_version.cost, 12);  // one cheap + the detour
  // Verify internal vertex disjointness.
  std::set<graph::VertexId> interior;
  for (const auto& p : vertex_version.paths.paths())
    for (std::size_t i = 0; i + 1 < p.size(); ++i)
      EXPECT_TRUE(interior.insert(inst.graph.edge(p[i]).to).second);
}

TEST(VertexDisjoint, InfeasibleWhenCutVertexExists) {
  Instance inst;
  inst.graph.resize(4);
  inst.graph.add_edge(0, 1, 1, 1);
  inst.graph.add_edge(0, 1, 1, 1);
  inst.graph.add_edge(1, 3, 1, 1);
  inst.graph.add_edge(1, 3, 1, 1);
  inst.s = 0;
  inst.t = 3;
  inst.k = 2;
  inst.delay_bound = 10;
  EXPECT_EQ(solve_vertex_disjoint(inst).status,
            SolveStatus::kNoKDisjointPaths);
}

// Property: vertex-disjoint solutions are valid edge-disjoint solutions
// with internally distinct vertices, and cost at least the edge-disjoint
// optimum's guarantee envelope.
TEST(VertexDisjoint, PropertyValidityAndDominance) {
  util::Rng rng(367);
  int solved = 0;
  for (int trial = 0; trial < 25; ++trial) {
    RandomInstanceOptions opt;
    opt.k = 2;
    opt.delay_slack = 0.4;
    const auto inst = random_er_instance(rng, 10, 0.35, opt);
    if (!inst) continue;
    const auto s = solve_vertex_disjoint(*inst);
    if (!s.has_paths()) continue;
    ++solved;
    EXPECT_TRUE(s.paths.is_valid(*inst));
    std::set<graph::VertexId> interior;
    for (const auto& p : s.paths.paths())
      for (std::size_t i = 0; i + 1 < p.size(); ++i)
        EXPECT_TRUE(interior.insert(inst->graph.edge(p[i]).to).second)
            << "shared interior vertex";
    // Vertex-disjointness is a restriction: no cheaper than the
    // edge-disjoint solver's certified lower bound.
    const auto edge_sol = KrspSolver().solve(*inst);
    if (edge_sol.has_paths()) {
      EXPECT_GE(static_cast<double>(s.cost) + 1e-9,
                edge_sol.telemetry.cost_lower_bound.to_double());
    }
  }
  EXPECT_GT(solved, 5);
}

}  // namespace
}  // namespace krsp::core

// Wire protocol v2: topology-reference solves must be byte-identical to
// inline v1 solves of the same instance, the result cache must hit
// across the two request forms (the fingerprint-prefix contract), query
// overrides must solve the modified instance, and every v2 failure mode
// must be a structured error response — never a dropped session.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>

#include "api/krsp.h"
#include "server/service.h"
#include "server/transport.h"
#include "server/wire.h"
#include "store/catalog.h"
#include "store/container.h"
#include "util/check.h"
#include "util/rng.h"

namespace krsp::server {
namespace {

api::Instance random_instance(std::uint64_t seed, int n = 14, int k = 2) {
  util::Rng rng(seed);
  api::RandomInstanceOptions opt;
  opt.k = k;
  opt.delay_slack = 0.3;
  const auto inst = api::random_er_instance(rng, n, 0.35, opt);
  KRSP_CHECK_MSG(inst.has_value(), "seed " << seed << " drew no instance");
  return *inst;
}

/// Writes `inst` as `<id>.krspb` into a fresh catalog directory and
/// loads it. Each call gets its own directory so tests stay independent.
store::TopologyCatalog one_topology_catalog(const std::string& dir_name,
                                            const std::string& id,
                                            const api::Instance& inst) {
  const std::string dir = testing::TempDir() + "/" + dir_name;
  std::filesystem::create_directories(dir);
  store::CsrContainer::write_file(dir + "/" + id + ".krspb", inst);
  return store::TopologyCatalog::load(dir);
}

std::string inline_line(const api::Instance& inst, const std::string& id,
                        const std::string& mode = "exact") {
  std::ostringstream kri;
  api::write_instance(kri, inst);
  return wire::ObjectWriter()
      .field("op", "solve")
      .field("id", id)
      .field("instance", kri.str())
      .field("mode", mode)
      .done();
}

std::string topology_line(const std::string& topology, const std::string& id,
                          const std::string& mode = "exact") {
  return wire::ObjectWriter()
      .field("op", "solve")
      .field("id", id)
      .field("topology", topology)
      .field("mode", mode)
      .done();
}

/// Removes the per-request timing fields (the only legitimately
/// nondeterministic bytes) so the rest of the response line can be
/// compared with operator== — the bit-identity contract.
std::string strip_timing(std::string line) {
  for (const char* key : {"\"queue_ms\":", "\"total_ms\":"}) {
    const std::size_t pos = line.find(key);
    if (pos == std::string::npos) continue;
    const std::size_t end = line.find_first_of(",}", pos + std::strlen(key));
    KRSP_CHECK(end != std::string::npos);
    KRSP_CHECK(pos > 0 && line[pos - 1] == ',');
    line.erase(pos - 1, end - (pos - 1));
  }
  return line;
}

TEST(ProtocolV2Test, CatalogSolveIsBitIdenticalToInlineV1) {
  const api::Instance inst = random_instance(101);
  const store::TopologyCatalog catalog =
      one_topology_catalog("v2_identity", "net", inst);

  for (const std::string mode : {"exact", "scaled"}) {
    // Two fresh services so neither side can see the other's cache —
    // this compares cold solves, not cached bytes.
    SolveService v1_service(api::ServerOptions{.num_threads = 1});
    SolveService v2_service(api::ServerOptions{.num_threads = 1});
    LocalTransport v1(v1_service);
    LocalTransport v2(v2_service, &catalog);

    const std::string a = v1.request(inline_line(inst, "same-id", mode));
    const std::string b = v2.request(topology_line("net", "same-id", mode));
    EXPECT_EQ(strip_timing(a), strip_timing(b)) << "mode " << mode;
    const auto parsed = wire::parse(b);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->get_bool("served", false)) << "mode " << mode;
  }
}

TEST(ProtocolV2Test, CacheHitsCrossProtocolForms) {
  const api::Instance inst = random_instance(103);
  const store::TopologyCatalog catalog =
      one_topology_catalog("v2_cache", "net", inst);
  SolveService service(api::ServerOptions{.num_threads = 1});
  LocalTransport transport(service, &catalog);

  // Inline v1 first (miss), then the same solve by topology id: the v2
  // request must hit the entry the v1 request inserted.
  const auto miss = wire::parse(transport.request(inline_line(inst, "a")));
  ASSERT_TRUE(miss->get_bool("served", false));
  EXPECT_FALSE(miss->get_bool("cache_hit", true));
  const auto hit = wire::parse(transport.request(topology_line("net", "b")));
  ASSERT_TRUE(hit->get_bool("served", false));
  EXPECT_TRUE(hit->get_bool("cache_hit", false));
  EXPECT_EQ(hit->get_int("cost", -1), miss->get_int("cost", -2));
  EXPECT_EQ(hit->get_int("delay", -1), miss->get_int("delay", -2));

  // And the reverse direction, distinguished by mode so it cannot reuse
  // the entry above: v2 inserts, v1 hits.
  const auto miss2 =
      wire::parse(transport.request(topology_line("net", "c", "scaled")));
  ASSERT_TRUE(miss2->get_bool("served", false));
  EXPECT_FALSE(miss2->get_bool("cache_hit", true));
  const auto hit2 =
      wire::parse(transport.request(inline_line(inst, "d", "scaled")));
  ASSERT_TRUE(hit2->get_bool("served", false));
  EXPECT_TRUE(hit2->get_bool("cache_hit", false));
}

TEST(ProtocolV2Test, QueryOverridesSolveTheModifiedInstance) {
  const api::Instance inst = random_instance(107);
  const store::TopologyCatalog catalog =
      one_topology_catalog("v2_override", "net", inst);
  SolveService service(api::ServerOptions{.num_threads = 1});
  LocalTransport transport(service, &catalog);

  // Override k and the delay bound; the graph and terminals stay.
  api::Instance modified = inst;
  modified.k = 1;
  modified.delay_bound = inst.delay_bound * 2;
  const std::string v2_line = wire::ObjectWriter()
                                  .field("op", "solve")
                                  .field("id", "ov")
                                  .field("topology", "net")
                                  .field("k", std::int64_t{1})
                                  .field("delay_bound", modified.delay_bound)
                                  .field("mode", "exact")
                                  .done();
  const std::string direct =
      transport.request(inline_line(modified, "ov", "exact"));
  const std::string via_override = transport.request(v2_line);
  const auto parsed = wire::parse(via_override);
  ASSERT_TRUE(parsed->get_bool("served", false));
  // The inline solve of the modified instance ran first, so the override
  // request must land on its cache entry — same fingerprint despite the
  // catalog prefix being computed for the *unmodified* default query.
  EXPECT_TRUE(parsed->get_bool("cache_hit", false));
  EXPECT_EQ(wire::parse(direct)->get_int("cost", -1),
            parsed->get_int("cost", -2));

  // An override that breaks instance invariants is a structured error.
  const std::string bad = wire::ObjectWriter()
                              .field("op", "solve")
                              .field("id", "bad")
                              .field("topology", "net")
                              .field("s", std::int64_t{inst.t})
                              .field("t", std::int64_t{inst.t})
                              .done();
  const auto err = wire::parse(transport.request(bad));
  EXPECT_FALSE(err->get_bool("ok", true));
  EXPECT_NE(err->get_string("error").find("bad query override"),
            std::string::npos);
}

TEST(ProtocolV2Test, FailureModesAreStructuredErrorsNotCloses) {
  const api::Instance inst = random_instance(109);
  const store::TopologyCatalog catalog =
      one_topology_catalog("v2_errors", "net", inst);
  SolveService service(api::ServerOptions{.num_threads = 1});
  LocalTransport transport(service, &catalog);

  const auto expect_error = [&](const std::string& line,
                                const std::string& needle) {
    const auto resp = wire::parse(transport.request(line));
    ASSERT_TRUE(resp.has_value()) << line;
    EXPECT_FALSE(resp->get_bool("ok", true)) << line;
    EXPECT_NE(resp->get_string("error").find(needle), std::string::npos)
        << "response: " << transport.request(line);
  };
  expect_error(topology_line("ghost", "e1"), "unknown topology");
  expect_error(R"({"op":"solve","id":"e2","topology":7})",
               "\"topology\" must be a string id");
  std::ostringstream kri;
  api::write_instance(kri, inst);
  expect_error(wire::ObjectWriter()
                   .field("op", "solve")
                   .field("id", "e3")
                   .field("topology", "net")
                   .field("instance", kri.str())
                   .done(),
               "both \"topology\" and \"instance\"");

  // A transport with no catalog rejects v2 requests with a hint, and v2
  // requests against it must not disturb v1 service.
  LocalTransport bare(service);
  const auto no_cat = wire::parse(bare.request(topology_line("net", "e4")));
  EXPECT_FALSE(no_cat->get_bool("ok", true));
  EXPECT_NE(no_cat->get_string("error").find("no topology catalog"),
            std::string::npos);

  // None of the errors above reached the solver, and the session still
  // answers: errors are responses, not closes.
  const auto pong = wire::parse(transport.request(R"({"op":"ping"})"));
  EXPECT_TRUE(pong->get_bool("pong", false));
  EXPECT_EQ(service.stats().received, 0u);
}

TEST(ProtocolV2Test, TopologyDiscoveryOps) {
  const std::string dir = testing::TempDir() + "/v2_discovery";
  std::filesystem::create_directories(dir);
  const api::Instance small = random_instance(113, 10);
  const api::Instance large = random_instance(127, 20);
  store::CsrContainer::write_file(dir + "/beta.krspb", large);
  store::CsrContainer::write_file(dir + "/alpha.krspb", small);
  const store::TopologyCatalog catalog = store::TopologyCatalog::load(dir);
  SolveService service(api::ServerOptions{.num_threads = 1});
  LocalTransport transport(service, &catalog);

  const auto list = wire::parse(transport.request(R"({"op":"topologies"})"));
  ASSERT_TRUE(list.has_value());
  EXPECT_TRUE(list->get_bool("ok", false));
  EXPECT_EQ(list->get_int("protocol_version", -1), kProtocolVersion);
  EXPECT_EQ(list->get_int("count", -1), 2);
  const wire::Value* items = list->find("topologies");
  ASSERT_NE(items, nullptr);
  ASSERT_EQ(items->items.size(), 2u);
  EXPECT_EQ(items->items[0].get_string("id"), "alpha");  // sorted by id
  EXPECT_EQ(items->items[1].get_string("id"), "beta");
  EXPECT_EQ(items->items[0].get_int("n", -1), small.graph.num_vertices());
  EXPECT_EQ(items->items[0].get_int("m", -1), small.graph.num_edges());
  EXPECT_EQ(items->items[0].get_int("k", -1), small.k);

  // The advertised digest is the container's content digest, as hex.
  const store::CsrContainer c = store::CsrContainer::open(dir + "/alpha.krspb");
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(c.digest()));
  EXPECT_EQ(items->items[0].get_string("digest"), hex);

  const auto one =
      wire::parse(transport.request(R"({"op":"topology","id":"beta"})"));
  ASSERT_TRUE(one.has_value());
  EXPECT_TRUE(one->get_bool("ok", false));
  EXPECT_EQ(one->get_string("id"), "beta");
  EXPECT_EQ(one->get_int("n", -1), large.graph.num_vertices());
  const auto missing =
      wire::parse(transport.request(R"({"op":"topology","id":"nope"})"));
  EXPECT_FALSE(missing->get_bool("ok", true));

  // A catalog-less transport lists an empty catalog rather than erroring.
  LocalTransport bare(service);
  const auto empty = wire::parse(bare.request(R"({"op":"topologies"})"));
  EXPECT_TRUE(empty->get_bool("ok", false));
  EXPECT_EQ(empty->get_int("count", -1), 0);

  const auto stats = wire::parse(transport.request(R"({"op":"stats"})"));
  EXPECT_EQ(stats->get_int("protocol_version", -1), kProtocolVersion);
}

}  // namespace
}  // namespace krsp::server

#include "core/phase1.h"

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "graph/generators.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "util/rng.h"

namespace krsp::core {
namespace {

TEST(Phase1, OptimalWhenBudgetLoose) {
  Instance inst;
  inst.graph.resize(4);
  inst.graph.add_edge(0, 1, 1, 1);
  inst.graph.add_edge(1, 3, 1, 1);
  inst.graph.add_edge(0, 2, 2, 2);
  inst.graph.add_edge(2, 3, 2, 2);
  inst.s = 0;
  inst.t = 3;
  inst.k = 2;
  inst.delay_bound = 100;
  const auto r = phase1_lagrangian(inst);
  EXPECT_EQ(r.status, Phase1Status::kOptimal);
  EXPECT_EQ(r.cost, 6);
  EXPECT_EQ(r.cost_lower_bound, util::Rational(6));
}

TEST(Phase1, NoKDisjointPathsDetected) {
  Instance inst;
  inst.graph.resize(3);
  inst.graph.add_edge(0, 1, 1, 1);
  inst.graph.add_edge(1, 2, 1, 1);
  inst.s = 0;
  inst.t = 2;
  inst.k = 2;
  inst.delay_bound = 100;
  EXPECT_EQ(phase1_lagrangian(inst).status, Phase1Status::kNoKDisjointPaths);
}

TEST(Phase1, InfeasibleDetectedExactly) {
  Instance inst;
  inst.graph.resize(4);
  inst.graph.add_edge(0, 1, 1, 3);
  inst.graph.add_edge(1, 3, 1, 3);
  inst.graph.add_edge(0, 2, 2, 4);
  inst.graph.add_edge(2, 3, 2, 4);
  inst.s = 0;
  inst.t = 3;
  inst.k = 2;
  inst.delay_bound = 13;  // min possible total delay is 14
  EXPECT_EQ(phase1_lagrangian(inst).status, Phase1Status::kInfeasible);
  inst.delay_bound = 14;
  EXPECT_NE(phase1_lagrangian(inst).status, Phase1Status::kInfeasible);
}

TEST(Phase1, TradeoffInstanceReturnsApproxWithAlternative) {
  // Cheap-slow vs expensive-fast chains force a genuine λ breakpoint.
  util::Rng rng(199);
  Instance inst;
  inst.graph = gen::tradeoff_chains(rng, 3, 2, 10, 8);
  inst.s = 0;
  inst.t = 1;
  inst.k = 2;
  inst.delay_bound = 18;  // between all-slow (32) and all-fast (4)
  const auto r = phase1_lagrangian(inst);
  ASSERT_EQ(r.status, Phase1Status::kApprox);
  ASSERT_TRUE(r.feasible_alternative.has_value());
  EXPECT_LE(r.feasible_alternative->total_delay(inst.graph),
            inst.delay_bound);
  EXPECT_GT(r.cost_lower_bound, util::Rational(0));
}

// Lemma 5 (property): delay/D + cost/C_OPT <= 2 against the brute-force
// optimum, on feasible random instances that are not solved exactly.
TEST(Phase1, PropertyLemma5Score) {
  util::Rng rng(211);
  int checked = 0;
  for (int trial = 0; trial < 40; ++trial) {
    RandomInstanceOptions opt;
    opt.k = 2;
    opt.delay_slack = 0.25;
    const auto inst = random_er_instance(rng, 10, 0.3, opt);
    if (!inst) continue;
    const auto r = phase1_lagrangian(*inst);
    if (r.status != Phase1Status::kApprox) continue;
    const auto best = baselines::brute_force_krsp(*inst);
    ASSERT_TRUE(best.has_value());  // instance feasible by construction
    ++checked;
    // LB really is a lower bound on C_OPT.
    EXPECT_LE(r.cost_lower_bound, util::Rational(best->cost));
    // Lemma 5 score.
    const double score =
        static_cast<double>(r.delay) /
            static_cast<double>(inst->delay_bound) +
        static_cast<double>(r.cost) / std::max(1.0, double(best->cost));
    EXPECT_LE(score, 2.0 + 1e-9) << inst->summary();
    // Structural validity of both returned path systems.
    EXPECT_TRUE(r.paths.is_valid(*inst));
    EXPECT_TRUE(r.feasible_alternative->is_valid(*inst));
    EXPECT_LE(r.feasible_alternative->total_delay(inst->graph),
              inst->delay_bound);
  }
  EXPECT_GT(checked, 8);
}

// Strong duality cross-check: the Lagrangian bound equals the LP optimum of
// the arc-flow relaxation (flow polytope is integral), computed by simplex.
TEST(Phase1, PropertyLagrangianBoundEqualsLpOptimum) {
  util::Rng rng(223);
  int checked = 0;
  for (int trial = 0; trial < 25; ++trial) {
    RandomInstanceOptions opt;
    opt.k = 2;
    opt.delay_slack = 0.3;
    const auto inst = random_er_instance(rng, 8, 0.35, opt);
    if (!inst) continue;
    const auto r = phase1_lagrangian(*inst);
    if (r.status != Phase1Status::kApprox &&
        r.status != Phase1Status::kOptimal)
      continue;
    ++checked;

    lp::LpModel model;
    for (const auto& e : inst->graph.edges())
      model.add_variable(static_cast<double>(e.cost), 0.0, 1.0);
    for (graph::VertexId v = 0; v < inst->graph.num_vertices(); ++v) {
      std::vector<lp::LinearTerm> terms;
      for (const graph::EdgeId e : inst->graph.out_edges(v))
        terms.push_back({e, 1.0});
      for (const graph::EdgeId e : inst->graph.in_edges(v))
        terms.push_back({e, -1.0});
      const double rhs =
          v == inst->s ? inst->k : (v == inst->t ? -inst->k : 0);
      model.add_constraint(std::move(terms), lp::Relation::kEq, rhs);
    }
    std::vector<lp::LinearTerm> delay_terms;
    for (graph::EdgeId e = 0; e < inst->graph.num_edges(); ++e)
      delay_terms.push_back(
          {e, static_cast<double>(inst->graph.edge(e).delay)});
    model.add_constraint(std::move(delay_terms), lp::Relation::kLessEq,
                         static_cast<double>(inst->delay_bound));

    const auto lp_solution = lp::SimplexSolver().solve(model);
    ASSERT_EQ(lp_solution.status, lp::LpStatus::kOptimal);
    EXPECT_NEAR(r.cost_lower_bound.to_double(), lp_solution.objective, 1e-6)
        << inst->summary();
  }
  EXPECT_GT(checked, 8);
}

TEST(Phase1, ZeroDelayBudgetHandled) {
  Instance inst;
  inst.graph.resize(4);
  inst.graph.add_edge(0, 1, 3, 0);
  inst.graph.add_edge(1, 3, 3, 0);
  inst.graph.add_edge(0, 2, 1, 1);
  inst.graph.add_edge(2, 3, 1, 0);
  inst.graph.add_edge(0, 3, 1, 0);
  inst.s = 0;
  inst.t = 3;
  inst.k = 2;
  inst.delay_bound = 0;
  const auto r = phase1_lagrangian(inst);
  // Feasible: {0-1-3, 0-3} all-zero-delay. Phase 1 must find it.
  ASSERT_TRUE(r.status == Phase1Status::kOptimal ||
              r.status == Phase1Status::kApprox);
  if (r.status == Phase1Status::kApprox) {
    ASSERT_TRUE(r.feasible_alternative.has_value());
    EXPECT_EQ(r.feasible_alternative->total_delay(inst.graph), 0);
  }
}

}  // namespace
}  // namespace krsp::core

#include "flow/decompose.h"

#include <gtest/gtest.h>

#include <set>

#include "flow/min_cost_flow.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::flow {
namespace {

using graph::Digraph;
using graph::EdgeId;

TEST(Decompose, TwoDisjointPaths) {
  Digraph g(4);
  std::vector<EdgeId> edges;
  edges.push_back(g.add_edge(0, 1, 0, 0));
  edges.push_back(g.add_edge(1, 3, 0, 0));
  edges.push_back(g.add_edge(0, 2, 0, 0));
  edges.push_back(g.add_edge(2, 3, 0, 0));
  const auto d = decompose_unit_flow(g, edges, 0, 3, 2);
  EXPECT_EQ(d.paths.size(), 2u);
  EXPECT_TRUE(d.cycles.empty());
  for (const auto& p : d.paths) EXPECT_TRUE(graph::is_simple_path(g, p, 0, 3));
}

TEST(Decompose, SeparatesCycleFromPath) {
  Digraph g(4);
  std::vector<EdgeId> edges;
  edges.push_back(g.add_edge(0, 1, 0, 0));
  edges.push_back(g.add_edge(1, 3, 0, 0));
  // A disjoint cycle 2->2 via two arcs.
  edges.push_back(g.add_edge(2, 1, 0, 0));
  edges.push_back(g.add_edge(1, 2, 0, 0));
  const auto d = decompose_unit_flow(g, edges, 0, 3, 1);
  EXPECT_EQ(d.paths.size(), 1u);
  ASSERT_EQ(d.cycles.size(), 1u);
  EXPECT_EQ(d.cycles[0].size(), 2u);
}

TEST(Decompose, PathThroughRepeatedVertexPopsCycle) {
  // Walk 0->1->2->1->3 has vertex 1 twice: the 1->2->1 loop must come out
  // as a cycle, leaving simple path 0->1->3.
  Digraph g(4);
  std::vector<EdgeId> edges;
  edges.push_back(g.add_edge(0, 1, 0, 0));
  edges.push_back(g.add_edge(1, 2, 0, 0));
  edges.push_back(g.add_edge(2, 1, 0, 0));
  edges.push_back(g.add_edge(1, 3, 0, 0));
  const auto d = decompose_unit_flow(g, edges, 0, 3, 1);
  ASSERT_EQ(d.paths.size(), 1u);
  EXPECT_TRUE(graph::is_simple_path(g, d.paths[0], 0, 3));
  EXPECT_EQ(d.cycles.size(), 1u);
}

TEST(Decompose, DivergenceViolationThrows) {
  Digraph g(3);
  std::vector<EdgeId> edges;
  edges.push_back(g.add_edge(0, 1, 0, 0));
  EXPECT_THROW(decompose_unit_flow(g, edges, 0, 2, 1), util::CheckError);
}

TEST(Decompose, KZeroWithPureCycles) {
  Digraph g(2);
  std::vector<EdgeId> edges;
  edges.push_back(g.add_edge(0, 1, 0, 0));
  edges.push_back(g.add_edge(1, 0, 0, 0));
  const auto d = decompose_unit_flow(g, edges, 0, 1, 0);
  EXPECT_TRUE(d.paths.empty());
  EXPECT_EQ(d.cycles.size(), 1u);
}

// Property: decomposing a real min-cost flow yields exactly k disjoint
// simple paths partitioning the flow edges (with any cycles), and the
// partition conserves every edge exactly once.
TEST(Decompose, PropertyPartitionOfMinCostFlows) {
  util::Rng rng(157);
  for (int trial = 0; trial < 25; ++trial) {
    const auto g = gen::erdos_renyi(rng, 12, 0.3);
    for (const int k : {1, 2, 3}) {
      const auto f = min_weight_unit_flow(g, 0, 11, k, 1, 1);
      if (!f) continue;
      const auto d = decompose_unit_flow(g, f->edges, 0, 11, k);
      EXPECT_EQ(static_cast<int>(d.paths.size()), k);
      std::set<EdgeId> seen;
      std::size_t total = 0;
      for (const auto& p : d.paths) {
        EXPECT_TRUE(graph::is_simple_path(g, p, 0, 11));
        total += p.size();
        for (const EdgeId e : p) EXPECT_TRUE(seen.insert(e).second);
      }
      for (const auto& c : d.cycles) {
        total += c.size();
        for (const EdgeId e : c) EXPECT_TRUE(seen.insert(e).second);
      }
      EXPECT_EQ(total, f->edges.size());
    }
  }
}

}  // namespace
}  // namespace krsp::flow

#include "core/per_path.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::core {
namespace {

TEST(PerPath, PicksUniformPathsOverCheapSkewedOnes) {
  // Cheap pair: delays {1, 9}; pricier pair: delays {4, 5}. Per-path bound
  // 5 rules out the skewed pair even though its total (10) beats 9.
  graph::Digraph g(4);
  g.add_edge(0, 1, 0, 1);
  g.add_edge(1, 3, 0, 0);   // fast cheap: delay 1
  g.add_edge(0, 2, 0, 4);
  g.add_edge(2, 3, 0, 5);   // slow cheap: delay 9
  g.add_edge(0, 3, 3, 4);   // direct: delay 4, cost 3
  const auto r = solve_per_path(g, 0, 3, 2, /*per_path_bound=*/5);
  ASSERT_EQ(r.status, PerPathStatus::kFeasible);
  EXPECT_LE(r.max_path_delay, 5);
  EXPECT_EQ(r.cost, 3);  // fast-cheap + direct
}

TEST(PerPath, LooseBoundKeepsCheapSolution) {
  graph::Digraph g(4);
  g.add_edge(0, 1, 0, 1);
  g.add_edge(1, 3, 0, 0);
  g.add_edge(0, 2, 0, 4);
  g.add_edge(2, 3, 0, 5);
  g.add_edge(0, 3, 3, 4);
  const auto r = solve_per_path(g, 0, 3, 2, /*per_path_bound=*/9);
  ASSERT_EQ(r.status, PerPathStatus::kFeasible);
  EXPECT_EQ(r.cost, 0);  // both cheap paths fit now
}

TEST(PerPath, InfeasibleBound) {
  graph::Digraph g(4);
  g.add_edge(0, 1, 0, 6);
  g.add_edge(1, 3, 0, 0);
  g.add_edge(0, 2, 0, 6);
  g.add_edge(2, 3, 0, 0);
  const auto r = solve_per_path(g, 0, 3, 2, 5);
  EXPECT_EQ(r.status, PerPathStatus::kInfeasible);
}

TEST(PerPath, NoKDisjointPaths) {
  graph::Digraph g(2);
  g.add_edge(0, 1, 0, 1);
  EXPECT_EQ(solve_per_path(g, 0, 1, 2, 5).status,
            PerPathStatus::kNoKDisjointPaths);
}

// Property: whenever kFeasible is reported, every path really meets the
// bound (the result is verified, not assumed), and disjointness holds.
TEST(PerPath, PropertyVerifiedFeasibility) {
  util::Rng rng(557);
  int feasible = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto g = gen::erdos_renyi(rng, 11, 0.3);
    Instance probe;
    probe.graph = g;
    probe.s = 0;
    probe.t = 10;
    probe.k = 2;
    const auto min_total = min_possible_delay(probe);
    if (!min_total) continue;
    // A bound around the average of the tightest total.
    const graph::Delay bound = *min_total / 2 + 3;
    const auto r = solve_per_path(g, 0, 10, 2, bound);
    if (r.status != PerPathStatus::kFeasible) continue;
    ++feasible;
    probe.delay_bound = r.total_delay;
    EXPECT_TRUE(r.paths.is_valid(probe));
    for (const auto& p : r.paths.paths())
      EXPECT_LE(graph::path_delay(g, p), bound);
    EXPECT_GT(r.budgets_tried, 0);
  }
  EXPECT_GT(feasible, 5);
}

}  // namespace
}  // namespace krsp::core

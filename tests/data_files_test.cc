// The shipped sample instances in data/ parse and solve. Keeps the data
// files honest as the formats evolve.
#include <gtest/gtest.h>

#include "core/io.h"
#include "core/solver.h"

namespace krsp::core {
namespace {

class DataFile : public testing::TestWithParam<const char*> {};

TEST_P(DataFile, ParsesAndSolves) {
  const std::string path = std::string(KRSP_DATA_DIR) + "/" + GetParam();
  const auto inst = read_instance_file(path);
  EXPECT_NO_THROW(inst.validate());
  const auto s = KrspSolver().solve(inst);
  ASSERT_TRUE(s.has_paths()) << path;
  EXPECT_TRUE(s.paths.is_valid(inst));
  EXPECT_LE(static_cast<double>(s.delay),
            1.25 * static_cast<double>(inst.delay_bound) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shipped, DataFile,
                         testing::Values("waxman25.kri", "grid5x5.kri",
                                         "isp.kri"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (auto& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace krsp::core

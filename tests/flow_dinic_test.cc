#include "flow/dinic.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::flow {
namespace {

using graph::Digraph;

TEST(Dinic, SingleEdge) {
  Dinic d(2);
  d.add_arc(0, 1, 7);
  EXPECT_EQ(d.solve(0, 1), 7);
}

TEST(Dinic, SeriesBottleneck) {
  Dinic d(3);
  d.add_arc(0, 1, 10);
  d.add_arc(1, 2, 3);
  EXPECT_EQ(d.solve(0, 2), 3);
}

TEST(Dinic, ParallelPathsAdd) {
  Dinic d(4);
  d.add_arc(0, 1, 2);
  d.add_arc(1, 3, 2);
  d.add_arc(0, 2, 3);
  d.add_arc(2, 3, 3);
  EXPECT_EQ(d.solve(0, 3), 5);
}

TEST(Dinic, ClassicTextbookNetwork) {
  // CLRS-style example with crossing edge.
  Dinic d(4);
  d.add_arc(0, 1, 3);
  d.add_arc(0, 2, 2);
  d.add_arc(1, 2, 5);
  d.add_arc(1, 3, 2);
  d.add_arc(2, 3, 3);
  EXPECT_EQ(d.solve(0, 3), 5);
}

TEST(Dinic, FlowConservationOnArcs) {
  Dinic d(4);
  const int a = d.add_arc(0, 1, 2);
  const int b = d.add_arc(1, 3, 2);
  const int c = d.add_arc(0, 2, 3);
  const int e = d.add_arc(2, 3, 1);
  const auto total = d.solve(0, 3);
  EXPECT_EQ(total, 3);
  EXPECT_EQ(d.flow_on(a), d.flow_on(b));
  EXPECT_EQ(d.flow_on(c), d.flow_on(e));
  EXPECT_EQ(d.flow_on(a) + d.flow_on(c), total);
}

TEST(Dinic, DisconnectedIsZero) {
  Dinic d(3);
  d.add_arc(0, 1, 5);
  EXPECT_EQ(d.solve(0, 2), 0);
}

TEST(Dinic, SelfLoopArcIgnoredByFlow) {
  Dinic d(2);
  d.add_arc(0, 0, 5);
  d.add_arc(0, 1, 2);
  EXPECT_EQ(d.solve(0, 1), 2);
}

TEST(MaxEdgeDisjointPaths, Diamond) {
  Digraph g(4);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(1, 3, 1, 1);
  g.add_edge(0, 2, 1, 1);
  g.add_edge(2, 3, 1, 1);
  EXPECT_EQ(max_edge_disjoint_paths(g, 0, 3), 2);
}

TEST(MaxEdgeDisjointPaths, SharedBridgeLimitsToOne) {
  Digraph g(4);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(1, 2, 1, 1);  // bridge
  g.add_edge(2, 3, 1, 1);
  g.add_edge(2, 3, 1, 1);
  EXPECT_EQ(max_edge_disjoint_paths(g, 0, 3), 1);
}

// Property: max-flow == min-cut on small random unit-capacity graphs, with
// the cut found by exhaustive subset enumeration.
TEST(Dinic, PropertyMaxFlowEqualsMinCutUnitCapacities) {
  util::Rng rng(149);
  for (int trial = 0; trial < 15; ++trial) {
    const auto g = gen::erdos_renyi(rng, 8, 0.3);
    const int flow = max_edge_disjoint_paths(g, 0, 7);
    // Min cut over all vertex subsets containing 0 but not 7.
    int min_cut = g.num_edges() + 1;
    for (int mask = 0; mask < (1 << 8); ++mask) {
      if (!(mask & 1) || (mask & (1 << 7))) continue;
      int cut = 0;
      for (const auto& e : g.edges())
        if ((mask >> e.from & 1) && !(mask >> e.to & 1)) ++cut;
      min_cut = std::min(min_cut, cut);
    }
    EXPECT_EQ(flow, min_cut);
  }
}

TEST(Dinic, InvalidArgumentsThrow) {
  Dinic d(2);
  EXPECT_THROW(d.add_arc(0, 5, 1), util::CheckError);
  EXPECT_THROW(d.add_arc(0, 1, -1), util::CheckError);
  EXPECT_THROW(d.solve(0, 0), util::CheckError);
}

}  // namespace
}  // namespace krsp::flow

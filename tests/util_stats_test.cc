#include "util/stats.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace krsp::util {
namespace {

TEST(Stats, EmptyIsSafe) {
  Stats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Stats, BasicMoments) {
  Stats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.1380899352993947, 1e-12);  // sample stddev
}

TEST(Stats, PercentileNearestRank) {
  Stats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(1), 1.0);
}

TEST(Stats, MedianOfSingle) {
  Stats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.median(), 42.0);
}

TEST(Stats, SumMatchesMeanTimesCount) {
  Stats s;
  Rng rng(41);
  double expected = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform_real(-10, 10);
    expected += x;
    s.add(x);
  }
  EXPECT_NEAR(s.sum(), expected, 1e-9);
}

TEST(Stats, WithoutSamplesPercentileThrows) {
  Stats s(/*keep_samples=*/false);
  s.add(1.0);
  EXPECT_THROW(static_cast<void>(s.percentile(50)), CheckError);
}

}  // namespace
}  // namespace krsp::util

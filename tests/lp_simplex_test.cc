#include "lp/simplex.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace krsp::lp {
namespace {

TEST(Simplex, TwoVariableTextbook) {
  // min -3x - 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), obj -36.
  LpModel m;
  const int x = m.add_variable(-3.0);
  const int y = m.add_variable(-5.0);
  m.add_constraint({{x, 1.0}}, Relation::kLessEq, 4.0);
  m.add_constraint({{y, 2.0}}, Relation::kLessEq, 12.0);
  m.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::kLessEq, 18.0);
  const auto s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -36.0, 1e-9);
  EXPECT_NEAR(s.x[x], 2.0, 1e-9);
  EXPECT_NEAR(s.x[y], 6.0, 1e-9);
}

TEST(Simplex, EqualityConstraints) {
  // min x + 2y s.t. x + y = 5, x - y = 1 -> (3, 2), obj 7.
  LpModel m;
  const int x = m.add_variable(1.0);
  const int y = m.add_variable(2.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEq, 5.0);
  m.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::kEq, 1.0);
  const auto s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 7.0, 1e-9);
}

TEST(Simplex, GreaterEqAndNegativeRhs) {
  // min x s.t. x >= 3 (written as -x <= -3).
  LpModel m;
  const int x = m.add_variable(1.0);
  m.add_constraint({{x, -1.0}}, Relation::kLessEq, -3.0);
  const auto s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[x], 3.0, 1e-9);
}

TEST(Simplex, InfeasibleDetected) {
  LpModel m;
  const int x = m.add_variable(1.0);
  m.add_constraint({{x, 1.0}}, Relation::kLessEq, 1.0);
  m.add_constraint({{x, 1.0}}, Relation::kGreaterEq, 2.0);
  EXPECT_EQ(SimplexSolver().solve(m).status, LpStatus::kInfeasible);
}

TEST(Simplex, UnboundedDetected) {
  LpModel m;
  const int x = m.add_variable(-1.0);
  m.add_constraint({{x, -1.0}}, Relation::kLessEq, 0.0);  // x >= 0 only
  EXPECT_EQ(SimplexSolver().solve(m).status, LpStatus::kUnbounded);
}

TEST(Simplex, UpperBoundsHonored) {
  LpModel m;
  const int x = m.add_variable(-1.0, 0.0, 2.5);
  const auto s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[x], 2.5, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple redundant constraints intersecting at the optimum — a classic
  // cycling risk that Bland's rule must survive.
  LpModel m;
  const int x = m.add_variable(-1.0);
  const int y = m.add_variable(-1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLessEq, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLessEq, 1.0);
  m.add_constraint({{x, 2.0}, {y, 2.0}}, Relation::kLessEq, 2.0);
  const auto s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -1.0, 1e-9);
}

TEST(Simplex, RedundantEqualityRows) {
  LpModel m;
  const int x = m.add_variable(1.0);
  m.add_constraint({{x, 1.0}}, Relation::kEq, 2.0);
  m.add_constraint({{x, 2.0}}, Relation::kEq, 4.0);  // same hyperplane
  const auto s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-9);
}

// Property: on random bounded-variable LPs with <= constraints, the simplex
// optimum matches exhaustive search over a fine grid (2 variables).
TEST(Simplex, PropertyMatchesGridSearch2D) {
  util::Rng rng(173);
  for (int trial = 0; trial < 25; ++trial) {
    LpModel m;
    const double c0 = rng.uniform_real(-5, 5);
    const double c1 = rng.uniform_real(-5, 5);
    const int x = m.add_variable(c0, 0.0, 4.0);
    const int y = m.add_variable(c1, 0.0, 4.0);
    struct Row {
      double a, b, rhs;
    };
    std::vector<Row> rows;
    for (int i = 0; i < 3; ++i) {
      rows.push_back({rng.uniform_real(0, 3), rng.uniform_real(0, 3),
                      rng.uniform_real(2, 10)});
      m.add_constraint({{x, rows.back().a}, {y, rows.back().b}},
                       Relation::kLessEq, rows.back().rhs);
    }
    const auto s = SimplexSolver().solve(m);
    ASSERT_EQ(s.status, LpStatus::kOptimal);
    double best = 1e100;
    const int grid = 200;
    for (int i = 0; i <= grid; ++i) {
      for (int j = 0; j <= grid; ++j) {
        const double vx = 4.0 * i / grid, vy = 4.0 * j / grid;
        bool ok = true;
        for (const auto& r : rows)
          if (r.a * vx + r.b * vy > r.rhs + 1e-12) ok = false;
        if (ok) best = std::min(best, c0 * vx + c1 * vy);
      }
    }
    // Grid search is approximate: allow a grid-cell of slack.
    EXPECT_LE(s.objective, best + 1e-6);
    EXPECT_GE(s.objective, best - 0.15 * (std::abs(c0) + std::abs(c1)));
  }
}

// Property: a circulation LP (the LP (6) shape) returns zero flow when the
// delay constraint is slack and nontrivial flow when it forces circulation.
TEST(Simplex, CirculationLpShape) {
  // Triangle with one negative-delay arc; conservation at 3 vertices.
  // Variables: x01, x12, x20.
  LpModel m;
  const int x01 = m.add_variable(1.0, 0.0, 1.0);
  const int x12 = m.add_variable(1.0, 0.0, 1.0);
  const int x20 = m.add_variable(1.0, 0.0, 1.0);
  m.add_constraint({{x01, 1.0}, {x20, -1.0}}, Relation::kEq, 0.0);
  m.add_constraint({{x12, 1.0}, {x01, -1.0}}, Relation::kEq, 0.0);
  m.add_constraint({{x20, 1.0}, {x12, -1.0}}, Relation::kEq, 0.0);
  // Delays: 2, 1, -5 -> cycle delay -2 per unit.
  m.add_constraint({{x01, 2.0}, {x12, 1.0}, {x20, -5.0}}, Relation::kLessEq,
                   -1.0);
  const auto s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[x01], 0.5, 1e-9);  // half a lap reaches delay -1 cheapest
}

}  // namespace
}  // namespace krsp::lp

#include "graph/algorithms.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::graph {
namespace {

Digraph diamond() {
  // 0 -> {1, 2} -> 3
  Digraph g(4);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(0, 2, 1, 1);
  g.add_edge(1, 3, 1, 1);
  g.add_edge(2, 3, 1, 1);
  return g;
}

TEST(Reachability, Diamond) {
  const auto g = diamond();
  const auto from0 = reachable_from(g, 0);
  EXPECT_TRUE(from0[0] && from0[1] && from0[2] && from0[3]);
  const auto from1 = reachable_from(g, 1);
  EXPECT_FALSE(from1[0]);
  EXPECT_FALSE(from1[2]);
  EXPECT_TRUE(from1[3]);
  const auto to3 = can_reach(g, 3);
  EXPECT_TRUE(to3[0] && to3[1] && to3[2] && to3[3]);
  EXPECT_TRUE(has_path(g, 0, 3));
  EXPECT_FALSE(has_path(g, 3, 0));
}

TEST(Topological, DagHasOrder) {
  const auto g = diamond();
  const auto order = topological_order(g);
  ASSERT_TRUE(order.has_value());
  std::vector<int> pos(4);
  for (int i = 0; i < 4; ++i) pos[(*order)[i]] = i;
  for (const auto& e : g.edges()) EXPECT_LT(pos[e.from], pos[e.to]);
}

TEST(Topological, CycleHasNoOrder) {
  Digraph g(3);
  g.add_edge(0, 1, 0, 0);
  g.add_edge(1, 2, 0, 0);
  g.add_edge(2, 0, 0, 0);
  EXPECT_FALSE(topological_order(g).has_value());
}

TEST(Scc, TwoComponentsAndSingleton) {
  Digraph g(5);
  g.add_edge(0, 1, 0, 0);
  g.add_edge(1, 0, 0, 0);
  g.add_edge(1, 2, 0, 0);
  g.add_edge(2, 3, 0, 0);
  g.add_edge(3, 2, 0, 0);
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 3);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[2], scc.component[3]);
  EXPECT_NE(scc.component[0], scc.component[2]);
  EXPECT_NE(scc.component[4], scc.component[0]);
  EXPECT_NE(scc.component[4], scc.component[2]);
}

TEST(Scc, DagIsAllSingletons) {
  const auto g = diamond();
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.num_components, 4);
}

// Property: SCC equivalence matches pairwise mutual reachability.
TEST(Scc, PropertyMatchesMutualReachability) {
  util::Rng rng(43);
  for (int trial = 0; trial < 20; ++trial) {
    const auto g = gen::erdos_renyi(rng, 12, 0.15);
    const auto scc = strongly_connected_components(g);
    std::vector<std::vector<bool>> reach;
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      reach.push_back(reachable_from(g, v));
    for (VertexId u = 0; u < g.num_vertices(); ++u)
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        const bool mutual = reach[u][v] && reach[v][u];
        EXPECT_EQ(mutual, scc.component[u] == scc.component[v])
            << "u=" << u << " v=" << v;
      }
  }
}

TEST(SccPartition, GroupsMembersAscendingWithConsistentLocalIds) {
  Digraph g(5);
  g.add_edge(0, 1, 0, 0);
  g.add_edge(1, 0, 0, 0);
  g.add_edge(1, 2, 0, 0);
  g.add_edge(2, 3, 0, 0);
  g.add_edge(3, 2, 0, 0);
  const auto part = scc_partition(g);
  EXPECT_EQ(part.num_components, 3);
  ASSERT_EQ(static_cast<int>(part.members.size()), 5);
  ASSERT_EQ(static_cast<int>(part.comp_first.size()), 4);
  // Members of {0,1} and {2,3} come out grouped and ascending.
  const auto c01 = part.component_members(part.component[0]);
  ASSERT_EQ(c01.size(), 2u);
  EXPECT_EQ(c01[0], 0);
  EXPECT_EQ(c01[1], 1);
  const auto c23 = part.component_members(part.component[2]);
  ASSERT_EQ(c23.size(), 2u);
  EXPECT_EQ(c23[0], 2);
  EXPECT_EQ(c23[1], 3);
  EXPECT_EQ(part.component_size(part.component[4]), 1);
}

// Property: scc_partition is exactly strongly_connected_components plus a
// consistent grouped view — members[comp_first[c] + local_id[v]] == v, each
// component's member list ascending, sizes summing to n.
TEST(SccPartition, PropertyConsistentWithScc) {
  util::Rng rng(47);
  for (int trial = 0; trial < 20; ++trial) {
    const auto g = gen::erdos_renyi(rng, 14, 0.12);
    const auto scc = strongly_connected_components(g);
    const auto part = scc_partition(g);
    ASSERT_EQ(part.num_components, scc.num_components);
    EXPECT_EQ(part.component, scc.component);
    int total = 0;
    for (int c = 0; c < part.num_components; ++c) {
      const auto members = part.component_members(c);
      total += static_cast<int>(members.size());
      for (std::size_t i = 0; i < members.size(); ++i) {
        EXPECT_EQ(part.component[members[i]], c);
        EXPECT_EQ(part.local_id[members[i]], static_cast<int>(i));
        if (i > 0) {
          EXPECT_LT(members[i - 1], members[i]);
        }
      }
    }
    EXPECT_EQ(total, g.num_vertices());
  }
}

TEST(BfsPath, FindsShortestHopPath) {
  Digraph g(5);
  g.add_edge(0, 1, 0, 0);
  g.add_edge(1, 2, 0, 0);
  g.add_edge(2, 4, 0, 0);
  g.add_edge(0, 3, 0, 0);
  g.add_edge(3, 4, 0, 0);
  const auto p = bfs_path(g, 0, 4);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_TRUE(is_walk(g, p, 0, 4));
}

TEST(BfsPath, EmptyWhenUnreachable) {
  Digraph g(3);
  g.add_edge(0, 1, 0, 0);
  EXPECT_TRUE(bfs_path(g, 0, 2).empty());
}

}  // namespace
}  // namespace krsp::graph

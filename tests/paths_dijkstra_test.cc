#include "paths/dijkstra.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "paths/bellman_ford.h"
#include "util/rng.h"

namespace krsp::paths {
namespace {

using graph::Digraph;
using graph::EdgeId;
using graph::VertexId;

TEST(EdgeWeight, Factories) {
  const graph::Edge e{0, 1, 5, 7};
  EXPECT_EQ(EdgeWeight::cost()(e), 5);
  EXPECT_EQ(EdgeWeight::delay()(e), 7);
  EXPECT_EQ(EdgeWeight::combined(2, 3)(e), 31);
}

TEST(Dijkstra, LinearChain) {
  Digraph g(4);
  g.add_edge(0, 1, 2, 0);
  g.add_edge(1, 2, 3, 0);
  g.add_edge(2, 3, 4, 0);
  const auto tree = dijkstra(g, 0, EdgeWeight::cost());
  EXPECT_EQ(tree.dist[3], 9);
  EXPECT_EQ(tree.path_to(g, 3).size(), 3u);
}

TEST(Dijkstra, PicksCheaperOfTwoRoutes) {
  Digraph g(3);
  g.add_edge(0, 2, 10, 1);
  g.add_edge(0, 1, 3, 5);
  g.add_edge(1, 2, 3, 5);
  EXPECT_EQ(dijkstra(g, 0, EdgeWeight::cost()).dist[2], 6);
  EXPECT_EQ(dijkstra(g, 0, EdgeWeight::delay()).dist[2], 1);
}

TEST(Dijkstra, UnreachableMarked) {
  Digraph g(3);
  g.add_edge(0, 1, 1, 1);
  const auto tree = dijkstra(g, 0, EdgeWeight::cost());
  EXPECT_FALSE(tree.reached(2));
  EXPECT_THROW(tree.path_to(g, 2), util::CheckError);
}

TEST(Dijkstra, NegativeWeightThrows) {
  Digraph g(2);
  g.add_edge(0, 1, -1, 0);
  EXPECT_THROW(dijkstra(g, 0, EdgeWeight::cost()), util::CheckError);
}

TEST(Dijkstra, ParallelEdgesPickMin) {
  Digraph g(2);
  g.add_edge(0, 1, 9, 0);
  g.add_edge(0, 1, 4, 0);
  EXPECT_EQ(dijkstra(g, 0, EdgeWeight::cost()).dist[1], 4);
}

// Property: Dijkstra == Bellman-Ford on random non-negative graphs, for
// pure and combined weights.
TEST(Dijkstra, PropertyAgreesWithBellmanFord) {
  util::Rng rng(101);
  for (int trial = 0; trial < 30; ++trial) {
    const auto g = gen::erdos_renyi(rng, 15, 0.25);
    for (const auto& w :
         {EdgeWeight::cost(), EdgeWeight::delay(), EdgeWeight::combined(3, 2)}) {
      const auto dj = dijkstra(g, 0, w);
      const auto bf = bellman_ford(g, 0, w);
      ASSERT_FALSE(bf.negative_cycle.has_value());
      for (VertexId v = 0; v < g.num_vertices(); ++v)
        EXPECT_EQ(dj.dist[v], bf.tree.dist[v]) << "vertex " << v;
    }
  }
}

TEST(DijkstraWithPotentials, JohnsonReweighting) {
  // Graph with a negative edge made non-negative by valid potentials.
  Digraph g(3);
  g.add_edge(0, 1, 4, 0);
  g.add_edge(1, 2, -2, 0);
  // potentials: pi[0]=0, pi[1]=4, pi[2]=2 -> reduced costs 0 and 0.
  const std::vector<std::int64_t> pot{0, 4, 2};
  const auto tree = dijkstra_with_potentials(g, 0, EdgeWeight::cost(), pot);
  // Reduced distance + pi[t] - pi[s] = true distance.
  EXPECT_EQ(tree.dist[2] + pot[2] - pot[0], 2);
}

TEST(DijkstraWithPotentials, InvalidPotentialsThrow) {
  Digraph g(2);
  g.add_edge(0, 1, -5, 0);
  const std::vector<std::int64_t> pot{0, 0};
  EXPECT_THROW(dijkstra_with_potentials(g, 0, EdgeWeight::cost(), pot),
               util::CheckError);
}

TEST(ShortestPathTree, PathToSourceIsEmpty) {
  Digraph g(2);
  g.add_edge(0, 1, 1, 1);
  const auto tree = dijkstra(g, 0, EdgeWeight::cost());
  EXPECT_TRUE(tree.path_to(g, 0).empty());
}

}  // namespace
}  // namespace krsp::paths

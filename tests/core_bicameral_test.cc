#include "core/bicameral.h"

#include <gtest/gtest.h>

#include <limits>

#include "baselines/brute_force.h"
#include "core/lp_cycle_finder.h"
#include "flow/disjoint.h"
#include "graph/cycles.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::core {
namespace {

using graph::Cost;
using graph::Delay;
using graph::EdgeId;
using util::Rational;

TEST(Classify, Type0Variants) {
  const Rational r(-1, 2);
  EXPECT_EQ(BicameralCycleFinder::classify(-1, -1, 10, r, true),
            CycleType::kType0);
  EXPECT_EQ(BicameralCycleFinder::classify(0, -1, 10, r, true),
            CycleType::kType0);
  EXPECT_EQ(BicameralCycleFinder::classify(-1, 0, 10, r, true),
            CycleType::kType0);
  // Zero-zero never qualifies (would stall the potential).
  EXPECT_FALSE(BicameralCycleFinder::classify(0, 0, 10, r, true).has_value());
}

TEST(Classify, Type1RatioAndCap) {
  const Rational r(-1, 2);  // need d/c <= -1/2
  EXPECT_EQ(BicameralCycleFinder::classify(2, -1, 10, r, true),
            CycleType::kType1);
  EXPECT_EQ(BicameralCycleFinder::classify(2, -2, 10, r, true),
            CycleType::kType1);
  // Ratio too shallow.
  EXPECT_FALSE(BicameralCycleFinder::classify(4, -1, 10, r, true).has_value());
  // Cap violation.
  EXPECT_FALSE(BicameralCycleFinder::classify(11, -6, 10, r, true).has_value());
  // Cap ignored in unsafe mode.
  EXPECT_EQ(BicameralCycleFinder::classify(11, -6, 10, r, false),
            CycleType::kType1);
}

TEST(Classify, Type2StrictRatio) {
  const Rational r(-1, 2);  // need d/c > -1/2 strictly
  EXPECT_EQ(BicameralCycleFinder::classify(-4, 1, 10, r, true),
            CycleType::kType2);  // ratio -1/4 > -1/2
  // Exactly -1/2 is rejected (strictness for termination).
  EXPECT_FALSE(BicameralCycleFinder::classify(-2, 1, 10, r, true).has_value());
  // Cap on |c|.
  EXPECT_FALSE(
      BicameralCycleFinder::classify(-11, 1, 10, r, true).has_value());
}

// A hand-built residual situation: flow on the slow path, a fast bypass
// available. The finder must return the rerouting cycle.
TEST(Finder, FindsRerouteCycleInDiamond) {
  graph::Digraph g(4);
  g.add_edge(0, 1, 0, 5);   // e0: slow-cheap
  g.add_edge(1, 3, 0, 5);   // e1
  g.add_edge(0, 2, 3, 1);   // e2: fast-pricey (unused)
  g.add_edge(2, 3, 3, 1);   // e3
  const ResidualGraph residual(g, {0, 1});
  BicameralQuery q;
  q.cap = 10;
  q.ratio = Rational(-1, 10);
  const BicameralCycleFinder finder;
  BicameralStats stats;
  const auto cycle = finder.find(residual, q, &stats);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->type, CycleType::kType1);
  EXPECT_EQ(cycle->cost, 6);    // 3 + 3 - 0 - 0
  EXPECT_EQ(cycle->delay, -8);  // 1 + 1 - 5 - 5
  EXPECT_GT(stats.anchors_scanned, 0);
}

TEST(Finder, CapExcludesExpensiveCycle) {
  graph::Digraph g(4);
  g.add_edge(0, 1, 0, 5);
  g.add_edge(1, 3, 0, 5);
  g.add_edge(0, 2, 3, 1);
  g.add_edge(2, 3, 3, 1);
  const ResidualGraph residual(g, {0, 1});
  BicameralQuery q;
  q.cap = 5;  // reroute costs 6 > 5
  q.ratio = Rational(-1, 10);
  EXPECT_FALSE(BicameralCycleFinder().find(residual, q).has_value());
}

TEST(Finder, Type0FoundWhenFreeImprovementExists) {
  graph::Digraph g(4);
  g.add_edge(0, 1, 5, 5);   // flow, expensive AND slow
  g.add_edge(1, 3, 5, 5);   // flow
  g.add_edge(0, 2, 1, 1);   // strictly better bypass
  g.add_edge(2, 3, 1, 1);
  const ResidualGraph residual(g, {0, 1});
  BicameralQuery q;
  q.cap = 100;
  q.ratio = Rational(-1, 100);
  const auto cycle = BicameralCycleFinder().find(residual, q);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->type, CycleType::kType0);
  EXPECT_LT(cycle->cost, 0);
  EXPECT_LT(cycle->delay, 0);
}

TEST(Finder, NoCycleInTightGraph) {
  // Single path, no alternatives: residual has no cycles at all.
  graph::Digraph g(3);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(1, 2, 1, 1);
  const ResidualGraph residual(g, {0, 1});
  BicameralQuery q;
  q.cap = 10;
  q.ratio = Rational(-1, 1);
  EXPECT_FALSE(BicameralCycleFinder().find(residual, q).has_value());
}

TEST(Finder, Figure1GadgetRespectsAndIgnoresCap) {
  const auto fig = gen::figure1_gadget(4, 5);
  // Current solution: the cheap slow pair {s-a-b-c-t, s-t} = edges 0,1,2,3,4.
  const ResidualGraph residual(fig.graph, {0, 1, 2, 3, 4});
  BicameralQuery q;
  q.cap = fig.optimal_cost;  // Ĉ = C_OPT = 5
  q.ratio = Rational(-1, 5);  // ΔD = -1, ΔC = 5
  const auto safe = BicameralCycleFinder().find(residual, q);
  ASSERT_TRUE(safe.has_value());
  EXPECT_EQ(safe->cost, fig.optimal_cost);  // the good cycle via b->t
  EXPECT_EQ(safe->delay, -1);

  BicameralQuery unsafe_q;
  unsafe_q.enforce_cap = false;
  unsafe_q.ratio = Rational(0);
  const auto unsafe = BicameralCycleFinder().find(residual, unsafe_q);
  ASSERT_TRUE(unsafe.has_value());
  EXPECT_EQ(unsafe->cost, fig.bad_cost);  // best ratio: the ruinous cycle
}

// Cross-validation (property): the production finder and the LP-(6)
// reference finder agree on qualification, and every returned cycle indeed
// classifies under Definition 10.
TEST(Finder, PropertyAgreesWithLpReference) {
  util::Rng rng(233);
  int compared = 0;
  for (int trial = 0; trial < 60; ++trial) {
    RandomInstanceOptions opt;
    opt.k = 2;
    opt.delay_slack = 0.2;
    gen::WeightRange w;
    w.cost_max = 2;
    w.delay_max = 6;
    const auto inst = random_er_instance(rng, 7, 0.4, opt, w);
    if (!inst) continue;
    const auto cur = flow::min_weight_disjoint_paths(
        inst->graph, inst->s, inst->t, inst->k, 1, 0);
    if (!cur || cur->total_delay <= inst->delay_bound) continue;
    const auto best = baselines::brute_force_krsp(*inst);
    if (!best) continue;
    if (best->cost > 8) continue;  // keep the reference LP budgets small
    ++compared;

    std::vector<EdgeId> cur_edges;
    for (const auto& p : cur->paths)
      cur_edges.insert(cur_edges.end(), p.begin(), p.end());
    const ResidualGraph residual(inst->graph, cur_edges);

    BicameralQuery q;
    q.cap = best->cost;  // true C_OPT
    const Delay delta_d = inst->delay_bound - cur->total_delay;
    const Cost delta_c = best->cost - cur->total_cost;
    if (delta_c <= 0) continue;
    q.ratio = Rational(delta_d, delta_c);

    const auto fast = BicameralCycleFinder().find(residual, q);
    LpCycleFinder::Options lp_opt;
    lp_opt.max_budget = 8;  // keep the reference LPs small
    const auto reference = LpCycleFinder(lp_opt).find(residual, q, delta_d);
    // Theorem 16: with cap = C_OPT a bicameral cycle must exist here.
    ASSERT_TRUE(fast.has_value()) << inst->summary();
    EXPECT_TRUE(reference.has_value()) << inst->summary();
    for (const auto& found : {fast, reference}) {
      if (!found) continue;
      EXPECT_TRUE(graph::is_simple_cycle(residual.digraph(), found->edges));
      EXPECT_EQ(residual.cycle_cost(found->edges), found->cost);
      EXPECT_EQ(residual.cycle_delay(found->edges), found->delay);
      const auto type = BicameralCycleFinder::classify(
          found->cost, found->delay, q.cap, q.ratio, true);
      ASSERT_TRUE(type.has_value());
      EXPECT_EQ(*type, found->type);
    }
  }
  EXPECT_GT(compared, 5);
}

TEST(Finder, Type2FoundWhenOnlyCostReductionQualifies) {
  // Flow sits on the expensive-fast path; the only residual cycle swaps it
  // for the cheap-slow one: cost -9, delay +2 — a pure type-2 move.
  graph::Digraph g(4);
  g.add_edge(0, 1, 5, 1);   // e0 (flow)
  g.add_edge(1, 3, 5, 0);   // e1 (flow)
  g.add_edge(0, 2, 1, 2);   // e2
  g.add_edge(2, 3, 0, 1);   // e3
  const ResidualGraph residual(g, {0, 1});
  BicameralQuery q;
  q.cap = 20;
  q.ratio = Rational(-1, 1);  // -2/9 > -1: qualifies strictly
  const auto found = BicameralCycleFinder().find(residual, q);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->type, CycleType::kType2);
  EXPECT_EQ(found->cost, -9);
  EXPECT_EQ(found->delay, 2);
}

TEST(Finder, Type2RejectedWhenRatioTooShallow) {
  graph::Digraph g(4);
  g.add_edge(0, 1, 5, 1);
  g.add_edge(1, 3, 5, 0);
  g.add_edge(0, 2, 1, 2);
  g.add_edge(2, 3, 0, 1);
  const ResidualGraph residual(g, {0, 1});
  BicameralQuery q;
  q.cap = 20;
  q.ratio = Rational(-1, 10);  // -2/9 < -1/10: does not qualify
  EXPECT_FALSE(BicameralCycleFinder().find(residual, q).has_value());
}

TEST(LpReference, FindsType2ThroughHMinus) {
  // The type-2 diamond again, but through the LP-(6) reference path: the
  // negative-cost cycle lives in H^-(B), exercising the anchor-to-layer-B
  // closing arcs.
  graph::Digraph g(4);
  g.add_edge(0, 1, 5, 1);
  g.add_edge(1, 3, 5, 0);
  g.add_edge(0, 2, 1, 2);
  g.add_edge(2, 3, 0, 1);
  const ResidualGraph residual(g, {0, 1});
  BicameralQuery q;
  q.cap = 12;
  q.ratio = Rational(-1, 1);
  // ΔD must admit the delay increase: LP (6) needs a feasible circulation;
  // pass a slack that the +2-delay cycle alone cannot satisfy via delay
  // reduction — the reference still reports the qualifying type-2 found
  // among peeled cycles when any circulation exists. Use a permissive
  // delta_d by adding a separate delay-reducing cycle: simpler, solve on
  // the mirrored instance where the type-2 cycle is the unique option and
  // delta_d = -1 has no solution — expect the reference to return nullopt
  // for H+ but find the cycle via its H- scan only when the LP is
  // feasible. Since x's delay sum must be <= delta_d < 0 and the only
  // cycle has delay +2, LP (6) is infeasible everywhere: the reference
  // finds nothing. This documents the reference's fidelity to the paper
  // (LP (6) requires delay reduction), in contrast with the production
  // finder, which also serves type-2 cycles for cost repair.
  const auto reference = LpCycleFinder().find(residual, q, -1);
  EXPECT_FALSE(reference.has_value());
  const auto production = BicameralCycleFinder().find(residual, q);
  ASSERT_TRUE(production.has_value());
  EXPECT_EQ(production->type, CycleType::kType2);
}

TEST(Finder, NearMaxCapSaturatesBudgetSchedule) {
  // cap = INT64_MAX: the budget-doubling schedule must saturate instead of
  // wrapping past INT64_MAX/2, and the rounds·max|c| clamp must keep the DP
  // at graph scale (every reachable cost prefix of a <= n-edge walk fits in
  // [−n·max|c|, n·max|c|], so larger budgets are provably useless).
  graph::Digraph g(4);
  g.add_edge(0, 1, 0, 5);
  g.add_edge(1, 3, 0, 5);
  g.add_edge(0, 2, 3, 1);
  g.add_edge(2, 3, 3, 1);
  const ResidualGraph residual(g, {0, 1});
  BicameralQuery q;
  q.cap = std::numeric_limits<graph::Cost>::max();
  q.ratio = Rational(-1, 10);
  BicameralStats stats;
  const auto cycle = BicameralCycleFinder().find(residual, q, &stats);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->type, CycleType::kType1);
  EXPECT_EQ(cycle->cost, 6);
  EXPECT_EQ(cycle->delay, -8);
  // Clamped ceiling: budgets stop at n·max|c| = 12, i.e. 8 then 12.
  EXPECT_LE(stats.budgets_tried, 2);

  // The ablation kernel shares the clamp and the saturating doubling.
  BicameralCycleFinder::Options ablation;
  ablation.disable_pruning = true;
  const auto same = BicameralCycleFinder(ablation).find(residual, q);
  ASSERT_TRUE(same.has_value());
  EXPECT_EQ(same->edges, cycle->edges);
}

TEST(Finder, SeedRotationNeedsBudgetHeadroom) {
  // Regression for the capped budget ceiling. The single cycle
  // 0→1→2→3→0 with costs (+5, +1, −6, +7) fits budget 7 when anchored at
  // vertex 0 (prefixes 5, 6, 0, 7) but the seed rotation — at vertex 3,
  // the head of the negative arc — peaks at 13 (prefixes 7, 12, 13, 7).
  // With cap = 12 a ceiling of cap alone would make the seed scan miss a
  // qualifying cycle the full scan can see; the 2·cap headroom (seed
  // rotation budget <= B_min + cycle cost <= 2·cap) restores completeness.
  graph::Digraph g(4);
  g.add_edge(0, 1, 5, 1);
  g.add_edge(1, 2, 1, 1);
  g.add_edge(3, 2, 6, 5);  // flow: residual arc 2→3 has cost −6, delay −5
  g.add_edge(3, 0, 7, 1);
  const ResidualGraph residual(g, {2});
  BicameralQuery q;
  q.cap = 12;
  q.ratio = Rational(-1, 4);  // cycle ratio −2/7 <= −1/4 qualifies
  const auto cycle = BicameralCycleFinder().find(residual, q);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->type, CycleType::kType1);
  EXPECT_EQ(cycle->cost, 7);
  EXPECT_EQ(cycle->delay, -2);

  BicameralCycleFinder::Options ablation;
  ablation.disable_pruning = true;
  const auto same = BicameralCycleFinder(ablation).find(residual, q);
  ASSERT_TRUE(same.has_value());
  EXPECT_EQ(same->edges, cycle->edges);
}

TEST(Finder, PruningStatsExposeSkippedWork) {
  // Two disjoint 2-cycles; flow on one of them only. The flowless 2-cycle's
  // SCC has no negative arc, so the pruned scan skips it entirely.
  graph::Digraph g(4);
  g.add_edge(0, 1, 1, 5);  // flow
  g.add_edge(1, 0, 1, 5);  // flow
  g.add_edge(2, 3, 1, 1);
  g.add_edge(3, 2, 1, 1);
  const ResidualGraph residual(g, {0, 1});
  BicameralQuery q;
  q.cap = 10;
  q.ratio = Rational(-1, 2);
  BicameralStats stats;
  (void)BicameralCycleFinder().find(residual, q, &stats);
  EXPECT_GT(stats.anchors_pruned, 0);
  EXPECT_GT(stats.peak_dp_bytes, 0);
  // Anchors 0/1 (endpoints of the negated flow arcs) form the only SCC
  // with internal negative arcs; vertices 2/3 are never seeds at all.
  EXPECT_LE(stats.anchors_scanned, 2 * stats.budgets_tried * 2);
}

TEST(Finder, StatsPopulated) {
  const auto fig = gen::figure1_gadget(4, 5);
  const ResidualGraph residual(fig.graph, {0, 1, 2, 3, 4});
  BicameralQuery q;
  q.cap = 5;
  q.ratio = Rational(-1, 5);
  BicameralStats stats;
  (void)BicameralCycleFinder().find(residual, q, &stats);
  EXPECT_GT(stats.anchors_scanned, 0);
  EXPECT_GT(stats.budgets_tried, 0);
  EXPECT_GT(stats.cycles_classified, 0);
}

}  // namespace
}  // namespace krsp::core

// The serving stack: wire format, result-cache correctness (fingerprint
// sensitivity + bit-identical hits), admission-control rules, the solve
// service end to end, and the newline-JSON protocol over LocalTransport.
// The concurrency tests double as the TSan leg's server coverage.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/krsp.h"
#include "server/admission.h"
#include "server/result_cache.h"
#include "server/service.h"
#include "server/transport.h"
#include "server/wire.h"
#include "util/rng.h"

namespace krsp::server {
namespace {

api::Instance random_instance(std::uint64_t seed, int n = 12, int k = 2) {
  util::Rng rng(seed);
  api::RandomInstanceOptions opt;
  opt.k = k;
  opt.delay_slack = 0.25;
  const auto inst = api::random_er_instance(rng, n, 0.35, opt);
  KRSP_CHECK_MSG(inst.has_value(), "seed " << seed << " drew no instance");
  return *inst;
}

api::SolveRequest make_request(std::uint64_t seed) {
  api::SolveRequest req;
  req.instance = random_instance(seed);
  req.mode = api::Mode::kExactWeights;
  req.tag = "seed-" + std::to_string(seed);
  return req;
}

/// Rebuilds the instance graph with edge `e`'s cost shifted by `delta`
/// (the graph API intentionally has no cost setter).
api::SolveRequest with_cost_bumped(api::SolveRequest req, graph::EdgeId e,
                                   graph::Cost delta) {
  graph::Digraph rebuilt(req.instance.graph.num_vertices());
  for (graph::EdgeId id = 0; id < req.instance.graph.num_edges(); ++id) {
    const graph::Edge& edge = req.instance.graph.edge(id);
    rebuilt.add_edge(edge.from, edge.to,
                     edge.cost + (id == e ? delta : 0), edge.delay);
  }
  req.instance.graph = std::move(rebuilt);
  return req;
}

void expect_identical(const api::SolveResult& a, const api::SolveResult& b,
                      const std::string& context) {
  EXPECT_EQ(a.status, b.status) << context;
  EXPECT_EQ(a.cost, b.cost) << context;
  EXPECT_EQ(a.delay, b.delay) << context;
  EXPECT_EQ(a.paths.paths(), b.paths.paths()) << context;
  EXPECT_EQ(a.telemetry.cost_guess_used, b.telemetry.cost_guess_used)
      << context;
}

// --------------------------------------------------------------- wire ---

TEST(ServerWire, ObjectRoundTripKeepsTypesExact) {
  const std::int64_t big = 9007199254740993;  // not representable in double
  const std::string line = wire::ObjectWriter()
                               .field("s", "he\"llo\n\t\\")
                               .field("b", true)
                               .field("i", big)
                               .field("neg", std::int64_t{-42})
                               .field("d", 0.25)
                               .raw("arr", "[[0,3],[2,5]]")
                               .done();
  const auto v = wire::parse(line);
  ASSERT_TRUE(v.has_value()) << line;
  EXPECT_EQ(v->get_string("s"), "he\"llo\n\t\\");
  EXPECT_TRUE(v->get_bool("b", false));
  ASSERT_TRUE(v->find("i")->is_integer);
  EXPECT_EQ(v->get_int("i", 0), big);
  EXPECT_EQ(v->get_int("neg", 0), -42);
  EXPECT_DOUBLE_EQ(v->get_number("d", 0.0), 0.25);
  const wire::Value* arr = v->find("arr");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->type, wire::Value::Type::kArray);
  ASSERT_EQ(arr->items.size(), 2u);
  EXPECT_EQ(arr->items[1].items[0].integer, 2);
}

TEST(ServerWire, UnicodeEscapesDecodeToUtf8) {
  const auto v = wire::parse(R"({"u":"aé中😀b"})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->get_string("u"), "a\xc3\xa9\xe4\xb8\xad\xf0\x9f\x98\x80"
                                "b");
}

TEST(ServerWire, MalformedInputFailsWithoutCrashing) {
  std::string error;
  for (const char* bad :
       {"", "{", "{\"a\":}", "[1,]", "{\"a\":1} trailing", "nul",
        "\"unterminated", "{\"a\":1e}", "{\"dup\" 1}"}) {
    EXPECT_FALSE(wire::parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
  // Nesting depth is capped, not stack-overflowed.
  std::string deep(2000, '[');
  deep += std::string(2000, ']');
  EXPECT_FALSE(wire::parse(deep, &error).has_value());
}

// -------------------------------------------------------------- cache ---

TEST(ServerCache, FingerprintChangesWithAnyMutatedInput) {
  util::Rng rng(404);
  for (int trial = 0; trial < 20; ++trial) {
    const auto base = make_request(600 + trial);
    const std::uint64_t fp = request_fingerprint(base);
    const std::uint64_t fp2 = request_fingerprint2(base);
    // A pure copy re-queries identically...
    EXPECT_EQ(request_fingerprint(base), fp);
    EXPECT_EQ(request_fingerprint2(base), fp2);
    // ...and the tag is echoed metadata, not an input.
    auto tagged = base;
    tagged.tag = "different-tag";
    EXPECT_EQ(request_fingerprint(tagged), fp);
    EXPECT_EQ(request_fingerprint2(tagged), fp2);

    // Any substantive mutation must change the fingerprint — both the
    // primary key and the independent verify hash.
    const auto e = static_cast<graph::EdgeId>(rng.uniform_int(
        0, base.instance.graph.num_edges() - 1));
    EXPECT_NE(request_fingerprint(with_cost_bumped(base, e, 1)), fp)
        << "cost of edge " << e;
    EXPECT_NE(request_fingerprint2(with_cost_bumped(base, e, 1)), fp2)
        << "cost of edge " << e << " (verify hash)";

    auto delay_mut = base;
    delay_mut.instance.graph.set_edge_delay(
        e, delay_mut.instance.graph.edge(e).delay + 1);
    EXPECT_NE(request_fingerprint(delay_mut), fp) << "delay of edge " << e;

    auto k_mut = base;
    k_mut.instance.k += 1;
    EXPECT_NE(request_fingerprint(k_mut), fp);

    auto bound_mut = base;
    bound_mut.instance.delay_bound += 1;
    EXPECT_NE(request_fingerprint(bound_mut), fp);

    auto eps_mut = base;
    eps_mut.eps1 += 1e-9;
    EXPECT_NE(request_fingerprint(eps_mut), fp);

    auto mode_mut = base;
    mode_mut.mode = api::Mode::kScaled;
    EXPECT_NE(request_fingerprint(mode_mut), fp);
  }
}

TEST(ServerCache, HitReturnsStoredResultAndLruEvicts) {
  ResultCache cache(/*capacity=*/2, /*shards=*/1);
  const auto req_a = make_request(1);
  const auto req_b = make_request(2);
  const auto req_c = make_request(3);
  const auto key_a = request_fingerprint(req_a);
  const auto key_b = request_fingerprint(req_b);
  const auto key_c = request_fingerprint(req_c);
  const auto ver_a = request_fingerprint2(req_a);
  const auto ver_b = request_fingerprint2(req_b);
  const auto ver_c = request_fingerprint2(req_c);

  EXPECT_FALSE(cache.lookup(key_a, ver_a).has_value());
  cache.insert(key_a, ver_a, api::Solver::solve(req_a));
  cache.insert(key_b, ver_b, api::Solver::solve(req_b));
  const auto hit = cache.lookup(key_a, ver_a);
  ASSERT_TRUE(hit.has_value());
  expect_identical(*hit, api::Solver::solve(req_a), "cached A");

  // A is now most-recent, so inserting C evicts B.
  cache.insert(key_c, ver_c, api::Solver::solve(req_c));
  EXPECT_TRUE(cache.lookup(key_a, ver_a).has_value());
  EXPECT_FALSE(cache.lookup(key_b, ver_b).has_value());
  EXPECT_TRUE(cache.lookup(key_c, ver_c).has_value());

  const CacheStats s = cache.stats();
  EXPECT_EQ(s.insertions, 3u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.hits, 3u);    // A pre-evict, then A and C post-evict
  EXPECT_EQ(s.misses, 2u);  // initial A probe, post-evict B probe
}

TEST(ServerCache, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  const auto req = make_request(9);
  cache.insert(request_fingerprint(req), request_fingerprint2(req),
               api::Solver::solve(req));
  EXPECT_FALSE(
      cache.lookup(request_fingerprint(req), request_fingerprint2(req))
          .has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(ServerCache, PrimaryKeyCollisionIsAMissNotAWrongResult) {
  // Two distinct requests whose primary fingerprints collide must not
  // serve each other's results: the stored verify hash disagrees, so the
  // lookup reads as a miss (and the second hashes really do differ).
  ResultCache cache(/*capacity=*/4, /*shards=*/1);
  const auto req_a = make_request(11);
  const auto req_b = make_request(12);
  const auto key = request_fingerprint(req_a);  // forced collision
  const auto ver_a = request_fingerprint2(req_a);
  const auto ver_b = request_fingerprint2(req_b);
  ASSERT_NE(ver_a, ver_b);

  cache.insert(key, ver_a, api::Solver::solve(req_a));
  EXPECT_FALSE(cache.lookup(key, ver_b).has_value())
      << "collision served a wrong result";
  const auto hit = cache.lookup(key, ver_a);
  ASSERT_TRUE(hit.has_value());
  expect_identical(*hit, api::Solver::solve(req_a), "collision-checked A");
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

// ---------------------------------------------------------- admission ---

TEST(ServerAdmission, QueueFullRuleIsExactAndReleases) {
  AdmissionOptions opt;
  opt.max_pending = 2;
  opt.deadline_aware = false;
  AdmissionController ctl(opt, /*workers=*/1);
  EXPECT_EQ(ctl.admit(0.0), AdmitDecision::kAdmit);
  EXPECT_EQ(ctl.admit(0.0), AdmitDecision::kAdmit);
  EXPECT_EQ(ctl.admit(0.0), AdmitDecision::kRejectQueueFull);
  ctl.on_complete(0.01);
  EXPECT_EQ(ctl.admit(0.0), AdmitDecision::kAdmit);

  const auto snap = ctl.snapshot();
  EXPECT_EQ(snap.admitted, 3u);
  EXPECT_EQ(snap.rejected_queue_full, 1u);
  EXPECT_EQ(snap.pending, 2u);
  EXPECT_EQ(snap.peak_pending, 2u);
}

TEST(ServerAdmission, DeadlineRuleUsesPredictedQueueWait) {
  AdmissionOptions opt;
  opt.max_pending = 100;
  opt.service_time_prior_seconds = 1.0;  // deterministic EWMA for the test
  AdmissionController ctl(opt, /*workers=*/1);

  // Empty service: predicted wait 0, any deadline passes.
  EXPECT_EQ(ctl.admit(0.05), AdmitDecision::kAdmit);
  // One pending on one worker: the next request waits ~1 EWMA ≈ 1s.
  EXPECT_DOUBLE_EQ(ctl.predicted_wait_seconds(), 1.0);
  EXPECT_EQ(ctl.admit(0.5), AdmitDecision::kRejectDeadline);
  // Unbounded requests are exempt from the deadline rule.
  EXPECT_EQ(ctl.admit(0.0), AdmitDecision::kAdmit);
  // A roomy deadline clears the predicted wait (now 2 ahead ⇒ 2s).
  EXPECT_EQ(ctl.admit(10.0), AdmitDecision::kAdmit);

  const auto snap = ctl.snapshot();
  EXPECT_EQ(snap.admitted, 3u);
  EXPECT_EQ(snap.rejected_deadline, 1u);
  EXPECT_DOUBLE_EQ(snap.ewma_service_seconds, 1.0);
}

TEST(ServerAdmission, ZeroPriorIsOptimisticUntilFirstSampleSeedsEwma) {
  // With no prior (the default), the EWMA starts at 0: predicted wait is
  // 0 no matter the queue depth, so even microscopic deadlines admit.
  AdmissionOptions opt;
  opt.max_pending = 100;
  AdmissionController ctl(opt, /*workers=*/1);
  EXPECT_EQ(ctl.admit(1e-6), AdmitDecision::kAdmit);
  EXPECT_EQ(ctl.admit(1e-6), AdmitDecision::kAdmit);
  EXPECT_DOUBLE_EQ(ctl.predicted_wait_seconds(), 0.0);

  // The first observed completion SEEDS the EWMA (no alpha blend against
  // the zero prior, which would take ~1/alpha samples to mean anything).
  ctl.on_complete(2.0);
  EXPECT_DOUBLE_EQ(ctl.snapshot().ewma_service_seconds, 2.0);
  // One still pending on one worker: predicted wait is now a full EWMA.
  EXPECT_DOUBLE_EQ(ctl.predicted_wait_seconds(), 2.0);
  EXPECT_EQ(ctl.admit(1e-6), AdmitDecision::kRejectDeadline);
}

TEST(ServerAdmission, DeadlineExactlyEqualToPredictedWaitRejects) {
  // The rule is predicted >= deadline: a request whose whole budget would
  // burn in the queue has nothing left to solve with, so equality rejects.
  AdmissionOptions opt;
  opt.max_pending = 100;
  opt.service_time_prior_seconds = 1.0;
  AdmissionController ctl(opt, /*workers=*/1);
  ASSERT_EQ(ctl.admit(0.0), AdmitDecision::kAdmit);
  ASSERT_DOUBLE_EQ(ctl.predicted_wait_seconds(), 1.0);
  EXPECT_EQ(ctl.admit(1.0), AdmitDecision::kRejectDeadline);
  EXPECT_EQ(ctl.admit(1.0 + 1e-9), AdmitDecision::kAdmit);
}

TEST(ServerAdmission, ConcurrentAdmitCompleteKeepsCountersConsistent) {
  // TSan-leg coverage: admits and completions race from many threads;
  // the counters must stay exact (every admit paired, pending back to 0,
  // per-class totals summing to the global total).
  AdmissionOptions opt;
  opt.max_pending = 0;  // no cap: every admit must succeed
  opt.deadline_aware = false;
  AdmissionController ctl(opt, /*workers=*/2);

  constexpr int kThreads = 6;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      const api::SlaClass cls =
          t % 2 == 0 ? api::SlaClass::kInteractive : api::SlaClass::kBatch;
      for (int i = 0; i < kPerThread; ++i) {
        const AdmitDecision d = ctl.admit(0.0, cls);
        ASSERT_TRUE(d == AdmitDecision::kAdmit ||
                    d == AdmitDecision::kAdmitDegraded);
        ctl.on_complete(1e-4, cls);
      }
    });
  for (auto& t : threads) t.join();

  const auto snap = ctl.snapshot();
  EXPECT_EQ(snap.admitted,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(snap.interactive.admitted + snap.batch.admitted, snap.admitted);
  EXPECT_EQ(snap.interactive.admitted,
            static_cast<std::uint64_t>(kThreads / 2 * kPerThread));
  EXPECT_EQ(snap.pending, 0u);
  EXPECT_EQ(snap.interactive.pending, 0u);
  EXPECT_EQ(snap.batch.pending, 0u);
  EXPECT_LE(snap.peak_pending, static_cast<std::size_t>(kThreads));
  EXPECT_GE(snap.peak_pending, 1u);
  EXPECT_GT(snap.ewma_service_seconds, 0.0);
}

TEST(ServerAdmission, BatchBudgetShedsBatchWhileInteractiveAdmits) {
  AdmissionOptions opt;
  opt.max_pending = 4;
  opt.max_pending_batch = 2;
  opt.deadline_aware = false;
  AdmissionController ctl(opt, /*workers=*/1);
  EXPECT_EQ(ctl.admit(0.0, api::SlaClass::kBatch), AdmitDecision::kAdmit);
  EXPECT_EQ(ctl.admit(0.0, api::SlaClass::kBatch), AdmitDecision::kAdmit);
  // Batch budget exhausted: batch is shed...
  EXPECT_EQ(ctl.admit(0.0, api::SlaClass::kBatch),
            AdmitDecision::kRejectQueueFull);
  // ...while interactive still admits up to the global bound.
  EXPECT_EQ(ctl.admit(0.0, api::SlaClass::kInteractive),
            AdmitDecision::kAdmit);
  EXPECT_EQ(ctl.admit(0.0, api::SlaClass::kInteractive),
            AdmitDecision::kAdmit);
  EXPECT_EQ(ctl.admit(0.0, api::SlaClass::kInteractive),
            AdmitDecision::kRejectQueueFull);

  const auto snap = ctl.snapshot();
  EXPECT_EQ(snap.batch.admitted, 2u);
  EXPECT_EQ(snap.batch.rejected_queue_full, 1u);
  EXPECT_EQ(snap.interactive.admitted, 2u);
  EXPECT_EQ(snap.interactive.rejected_queue_full, 1u);
  // A batch completion frees batch budget again.
  ctl.on_complete(0.01, api::SlaClass::kBatch);
  EXPECT_EQ(ctl.admit(0.0, api::SlaClass::kBatch), AdmitDecision::kAdmit);
}

TEST(ServerAdmission, InteractiveOverloadDegradesInsteadOfQueueing) {
  AdmissionOptions opt;
  opt.max_pending = 100;
  opt.deadline_aware = false;
  opt.service_time_prior_seconds = 1.0;
  opt.degrade_wait_seconds = 0.5;
  AdmissionController ctl(opt, /*workers=*/1);
  // Idle server: a full-accuracy interactive admit (its own wait is 0).
  EXPECT_EQ(ctl.admit(0.0, api::SlaClass::kInteractive),
            AdmitDecision::kAdmit);
  // One ahead on one worker: this request would wait ~1 EWMA >= 0.5 s,
  // so it is admitted degraded (coarsened) instead of queued at full
  // accuracy — and batch requests never ride the ladder.
  EXPECT_EQ(ctl.admit(0.0, api::SlaClass::kInteractive),
            AdmitDecision::kAdmitDegraded);
  EXPECT_EQ(ctl.admit(0.0, api::SlaClass::kBatch), AdmitDecision::kAdmit);

  const auto snap = ctl.snapshot();
  EXPECT_EQ(snap.interactive.admitted, 2u);
  EXPECT_EQ(snap.interactive.degraded, 1u);
  EXPECT_EQ(snap.batch.degraded, 0u);
  // Degraded admissions still count as pending and must pair with
  // on_complete like any other admit.
  ctl.on_complete(0.01, api::SlaClass::kInteractive);
  ctl.on_complete(0.01, api::SlaClass::kInteractive);
  ctl.on_complete(0.01, api::SlaClass::kBatch);
  EXPECT_EQ(ctl.snapshot().pending, 0u);
}

TEST(ServerAdmission, PerClassEwmaTracksItsOwnClass) {
  AdmissionOptions opt;
  opt.max_pending = 0;
  opt.deadline_aware = false;
  opt.ewma_alpha = 0.5;
  AdmissionController ctl(opt, /*workers=*/1);
  ASSERT_EQ(ctl.admit(0.0, api::SlaClass::kInteractive),
            AdmitDecision::kAdmit);
  ASSERT_EQ(ctl.admit(0.0, api::SlaClass::kBatch), AdmitDecision::kAdmit);
  ctl.on_complete(0.1, api::SlaClass::kInteractive);
  ctl.on_complete(10.0, api::SlaClass::kBatch);
  const auto snap = ctl.snapshot();
  // First sample per class seeds that class's EWMA exactly.
  EXPECT_DOUBLE_EQ(snap.interactive.ewma_service_seconds, 0.1);
  EXPECT_DOUBLE_EQ(snap.batch.ewma_service_seconds, 10.0);
  // The global EWMA blends: seeded by 0.1, then 0.5-blended with 10.
  EXPECT_DOUBLE_EQ(snap.ewma_service_seconds, 0.5 * 10.0 + 0.5 * 0.1);
}

// ------------------------------------------------------------ service ---

TEST(ServerService, CachedReplayIsBitIdenticalToDirectSolve) {
  api::ServerOptions opt;
  opt.num_threads = 2;
  opt.cache_capacity = 16;
  SolveService service(opt);

  for (int trial = 0; trial < 6; ++trial) {
    const auto req = make_request(800 + trial);
    const auto direct = api::Solver::solve(req);

    const ServeResponse first = service.serve(req);
    ASSERT_TRUE(first.served());
    EXPECT_FALSE(first.cache_hit);
    expect_identical(first.result, direct, "first serve");
    EXPECT_EQ(first.result.tag, req.tag);

    const ServeResponse replay = service.serve(req);
    ASSERT_TRUE(replay.served());
    EXPECT_TRUE(replay.cache_hit);
    expect_identical(replay.result, direct, "cached replay");
    EXPECT_EQ(replay.result.tag, req.tag);  // re-stamped on the hit

    // A one-unit cost bump is a different computation: must miss.
    const ServeResponse mutated =
        service.serve(with_cost_bumped(req, 0, 1));
    ASSERT_TRUE(mutated.served());
    EXPECT_FALSE(mutated.cache_hit);
  }
  const api::ServeStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 6u);
  EXPECT_EQ(stats.cache_misses, 12u);
  EXPECT_EQ(stats.served, 18u);
}

TEST(ServerService, DeadlineBoundedRequestsBypassTheCache) {
  api::ServerOptions opt;
  opt.num_threads = 1;
  opt.cache_capacity = 16;
  opt.deadline_aware_admission = false;  // this test is about caching only
  SolveService service(opt);
  auto req = make_request(42);
  req.deadline_seconds = 30.0;  // roomy: result is still the full solve
  const ServeResponse first = service.serve(req);
  const ServeResponse second = service.serve(req);
  ASSERT_TRUE(first.served());
  ASSERT_TRUE(second.served());
  EXPECT_FALSE(first.cache_hit);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(service.stats().cache_insertions, 0u);
}

TEST(ServerService, DrainStopsAdmissionsButAnswersInFlight) {
  api::ServerOptions opt;
  opt.num_threads = 2;
  SolveService service(opt);
  const auto req = make_request(77);
  ASSERT_TRUE(service.serve(req).served());
  service.drain();
  const ServeResponse after = service.serve(req);
  EXPECT_EQ(after.status, ServeStatus::kRejectedDraining);
  EXPECT_FALSE(after.served());
  EXPECT_EQ(service.stats().rejected_draining, 1u);
  service.drain();  // idempotent
}

TEST(ServerService, ConcurrentClientsAllGetBitIdenticalResults) {
  // The TSan-leg workhorse: many client threads hammer one service
  // (shared cache, admission, engine) with a small request pool.
  std::vector<api::SolveRequest> pool;
  std::vector<api::SolveResult> oracle;
  for (int i = 0; i < 4; ++i) {
    pool.push_back(make_request(900 + i));
    oracle.push_back(api::Solver::solve(pool.back()));
  }
  api::ServerOptions opt;
  opt.num_threads = 2;
  opt.cache_capacity = 8;
  SolveService service(opt);

  constexpr int kClients = 6;
  constexpr int kPerClient = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      for (int r = 0; r < kPerClient; ++r) {
        const std::size_t i = static_cast<std::size_t>(c + r) % pool.size();
        const ServeResponse resp = service.serve(pool[i]);
        if (!resp.served() || resp.result.status != oracle[i].status ||
            resp.result.cost != oracle[i].cost ||
            resp.result.delay != oracle[i].delay ||
            resp.result.paths.paths() != oracle[i].paths.paths())
          mismatches.fetch_add(1);
      }
    });
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const api::ServeStats stats = service.stats();
  EXPECT_EQ(stats.served, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_GT(stats.cache_hits, 0u);
}

// ----------------------------------------------------------- protocol ---

std::string solve_line(const api::Instance& inst, const std::string& id,
                       const std::string& mode = "exact") {
  std::ostringstream kri;
  api::write_instance(kri, inst);
  return wire::ObjectWriter()
      .field("op", "solve")
      .field("id", id)
      .field("instance", kri.str())
      .field("mode", mode)
      .done();
}

TEST(ServerProtocol, SolveRoundTripMatchesDirectSolve) {
  SolveService service(api::ServerOptions{.num_threads = 2});
  LocalTransport transport(service);

  const auto inst = random_instance(55);
  api::SolveRequest req;
  req.instance = inst;
  req.mode = api::Mode::kExactWeights;
  const auto direct = api::Solver::solve(req);
  ASSERT_TRUE(direct.has_paths());

  const auto resp = wire::parse(transport.request(solve_line(inst, "rt-1")));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->get_string("id"), "rt-1");
  EXPECT_TRUE(resp->get_bool("ok", false));
  EXPECT_TRUE(resp->get_bool("served", false));
  EXPECT_EQ(resp->get_string("status"), api::status_name(direct.status));
  EXPECT_EQ(resp->get_int("cost", -1), direct.cost);
  EXPECT_EQ(resp->get_int("delay", -1), direct.delay);
  const wire::Value* paths = resp->find("paths");
  ASSERT_NE(paths, nullptr);
  ASSERT_EQ(paths->items.size(), direct.paths.paths().size());
  for (std::size_t p = 0; p < paths->items.size(); ++p) {
    ASSERT_EQ(paths->items[p].items.size(), direct.paths.paths()[p].size());
    for (std::size_t e = 0; e < paths->items[p].items.size(); ++e)
      EXPECT_EQ(paths->items[p].items[e].integer,
                direct.paths.paths()[p][e]);
  }
}

TEST(ServerProtocol, MalformedAndUnknownInputsGetErrorResponses) {
  SolveService service(api::ServerOptions{.num_threads = 1});
  LocalTransport transport(service);
  for (const char* bad :
       {"not json", "[1,2,3]", "{\"op\":\"nope\"}",
        "{\"op\":\"solve\"}",  // missing instance
        "{\"op\":\"solve\",\"instance\":\"garbage text\"}"}) {
    const auto resp = wire::parse(transport.request(bad));
    ASSERT_TRUE(resp.has_value()) << bad;
    EXPECT_FALSE(resp->get_bool("ok", true)) << bad;
    EXPECT_FALSE(resp->get_string("error").empty()) << bad;
  }
  // Protocol errors must not count as served work.
  EXPECT_EQ(service.stats().received, 0u);
}

TEST(ServerProtocol, SlaClassIsParsedEchoedAndCounted) {
  SolveService service(api::ServerOptions{.num_threads = 1});
  LocalTransport transport(service);
  const auto inst = random_instance(57);
  std::ostringstream kri;
  api::write_instance(kri, inst);

  const auto line = [&](const std::string& cls, const std::string& id) {
    return wire::ObjectWriter()
        .field("op", "solve")
        .field("id", id)
        .field("instance", kri.str())
        .field("mode", "exact")
        .field("class", cls)
        .done();
  };
  const auto inter = wire::parse(transport.request(line("interactive", "i")));
  ASSERT_TRUE(inter.has_value());
  EXPECT_TRUE(inter->get_bool("served", false));
  EXPECT_EQ(inter->get_string("sla"), "interactive");
  const auto batch = wire::parse(transport.request(line("batch", "b")));
  EXPECT_EQ(batch->get_string("sla"), "batch");
  // Absent class defaults to batch; a cache hit keeps the response's own
  // class (the hit re-serves cached bytes under this request's SLA).
  const auto dflt =
      wire::parse(transport.request(solve_line(inst, "d", "exact")));
  EXPECT_EQ(dflt->get_string("sla"), "batch");
  EXPECT_TRUE(dflt->get_bool("cache_hit", false));

  const auto bad = wire::parse(transport.request(line("premium", "x")));
  EXPECT_FALSE(bad->get_bool("ok", true));

  const auto stats = wire::parse(transport.request(R"({"op":"stats"})"));
  ASSERT_TRUE(stats.has_value());
  // Interactive solved once; the batch-class requests were one miss (the
  // explicit batch solve shares the interactive solve's fingerprint and
  // hits the cache — admission is bypassed on hits, so only true solves
  // count as admitted).
  EXPECT_EQ(stats->get_int("interactive_admitted", -1), 1);
  EXPECT_EQ(stats->get_int("interactive_degraded", -1), 0);
  EXPECT_EQ(stats->get_int("batch_rejected_queue_full", -1), 0);
  EXPECT_GE(stats->get_int("batch_admitted", -1), 0);
  EXPECT_EQ(stats->get_int("cache_hits", -1), 2);
}

TEST(ServerProtocol, StatsPingAndShutdownOps) {
  SolveService service(api::ServerOptions{.num_threads = 1});
  LocalTransport transport(service);
  const auto inst = random_instance(56);
  ASSERT_TRUE(wire::parse(transport.request(solve_line(inst, "s-1")))
                  ->get_bool("served", false));

  const auto pong = wire::parse(transport.request(R"({"op":"ping"})"));
  EXPECT_TRUE(pong->get_bool("pong", false));

  const auto stats = wire::parse(transport.request(R"({"op":"stats"})"));
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->get_bool("ok", false));
  EXPECT_EQ(stats->get_int("received", -1), 1);
  EXPECT_EQ(stats->get_int("served", -1), 1);
  EXPECT_EQ(stats->get_int("threads", -1), 1);

  EXPECT_FALSE(transport.shutdown_requested());
  const auto bye = wire::parse(transport.request(R"({"op":"shutdown"})"));
  EXPECT_TRUE(bye->get_bool("draining", false));
  EXPECT_TRUE(transport.shutdown_requested());
}

}  // namespace
}  // namespace krsp::server

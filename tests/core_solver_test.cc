#include "core/solver.h"

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::core {
namespace {

Instance gadget_instance() {
  const auto fig = gen::figure1_gadget(4, 5);
  Instance inst;
  inst.graph = fig.graph;
  inst.s = fig.s;
  inst.t = fig.t;
  inst.k = fig.k;
  inst.delay_bound = fig.delay_bound;
  return inst;
}

TEST(Solver, GadgetSolvedToOptimalCost) {
  for (const auto mode : {SolverOptions::Mode::kExactWeights,
                          SolverOptions::Mode::kScaled}) {
    SolverOptions opt;
    opt.mode = mode;
    const auto s = KrspSolver(opt).solve(gadget_instance());
    ASSERT_EQ(s.status, SolveStatus::kApprox);
    EXPECT_EQ(s.cost, 5);
    EXPECT_EQ(s.delay, 4);
  }
}

TEST(Solver, DetectsNoKDisjointPaths) {
  Instance inst;
  inst.graph.resize(3);
  inst.graph.add_edge(0, 1, 1, 1);
  inst.graph.add_edge(1, 2, 1, 1);
  inst.s = 0;
  inst.t = 2;
  inst.k = 2;
  inst.delay_bound = 100;
  EXPECT_EQ(KrspSolver().solve(inst).status, SolveStatus::kNoKDisjointPaths);
}

TEST(Solver, DetectsInfeasibleBudget) {
  Instance inst;
  inst.graph.resize(4);
  inst.graph.add_edge(0, 1, 1, 5);
  inst.graph.add_edge(1, 3, 1, 5);
  inst.graph.add_edge(0, 2, 1, 5);
  inst.graph.add_edge(2, 3, 1, 5);
  inst.s = 0;
  inst.t = 3;
  inst.k = 2;
  inst.delay_bound = 19;  // min possible is 20
  EXPECT_EQ(KrspSolver().solve(inst).status, SolveStatus::kInfeasible);
}

TEST(Solver, OptimalWhenMinCostFlowFeasible) {
  Instance inst;
  inst.graph.resize(4);
  inst.graph.add_edge(0, 1, 1, 1);
  inst.graph.add_edge(1, 3, 1, 1);
  inst.graph.add_edge(0, 2, 1, 1);
  inst.graph.add_edge(2, 3, 1, 1);
  inst.s = 0;
  inst.t = 3;
  inst.k = 2;
  inst.delay_bound = 4;
  const auto s = KrspSolver().solve(inst);
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_EQ(s.cost, 4);
  EXPECT_TRUE(s.telemetry.phase1_was_optimal);
}

TEST(Solver, DeterministicAcrossRuns) {
  util::Rng rng(277);
  RandomInstanceOptions ropt;
  ropt.k = 2;
  ropt.delay_slack = 0.25;
  const auto inst = random_er_instance(rng, 10, 0.3, ropt);
  ASSERT_TRUE(inst.has_value());
  const auto a = KrspSolver().solve(*inst);
  const auto b = KrspSolver().solve(*inst);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.delay, b.delay);
}

// ---------------------------------------------------------------------------
// Headline property: both solver modes meet the paper's bifactor guarantees
// against the brute-force optimum, across generators and k.

struct SweepParam {
  SolverOptions::Mode mode;
  int k;
  double slack;
  const char* name;
};

class SolverGuaranteeSweep : public testing::TestWithParam<SweepParam> {};

TEST_P(SolverGuaranteeSweep, BifactorBoundsHold) {
  const auto param = GetParam();
  util::Rng rng(281 + param.k);
  SolverOptions opt;
  opt.mode = param.mode;
  opt.eps1 = 0.5;
  opt.eps2 = 0.5;
  const KrspSolver solver(opt);

  int solved = 0;
  for (int trial = 0; trial < 25; ++trial) {
    RandomInstanceOptions ropt;
    ropt.k = param.k;
    ropt.delay_slack = param.slack;
    const auto inst = random_er_instance(rng, 9, 0.4, ropt);
    if (!inst) continue;
    const auto best = baselines::brute_force_krsp(*inst);
    ASSERT_TRUE(best.has_value());  // feasible by construction
    const auto s = solver.solve(*inst);
    ASSERT_TRUE(s.has_paths()) << inst->summary();
    ++solved;
    EXPECT_TRUE(s.paths.is_valid(*inst));
    // Delay side.
    if (param.mode == SolverOptions::Mode::kExactWeights) {
      EXPECT_LE(s.delay, inst->delay_bound) << inst->summary();
    } else {
      EXPECT_LE(static_cast<double>(s.delay),
                (1.0 + opt.eps1) * static_cast<double>(inst->delay_bound) +
                    1e-9)
          << inst->summary();
    }
    // Cost side: 2(C_OPT + 1) for exact weights, (2+eps2)(C_OPT + 1)
    // for scaled (the +1 from the integral cap search boundary).
    const double cap = param.mode == SolverOptions::Mode::kExactWeights
                           ? 2.0 * static_cast<double>(best->cost + 1)
                           : (2.0 + opt.eps2) *
                                 static_cast<double>(best->cost + 1);
    EXPECT_LE(static_cast<double>(s.cost), cap + 1e-9)
        << inst->summary() << " opt=" << best->cost;
    // Never reports optimal unless it is.
    if (s.status == SolveStatus::kOptimal) {
      EXPECT_EQ(s.cost, best->cost);
    }
  }
  EXPECT_GT(solved, 8) << "sweep exercised too few instances";
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SolverGuaranteeSweep,
    testing::Values(
        SweepParam{SolverOptions::Mode::kExactWeights, 2, 0.2, "exact_k2"},
        SweepParam{SolverOptions::Mode::kExactWeights, 3, 0.3, "exact_k3"},
        SweepParam{SolverOptions::Mode::kScaled, 2, 0.2, "scaled_k2"},
        SweepParam{SolverOptions::Mode::kScaled, 3, 0.3, "scaled_k3"},
        SweepParam{SolverOptions::Mode::kExactWeights, 1, 0.2, "exact_k1"},
        SweepParam{SolverOptions::Mode::kScaled, 1, 0.3, "scaled_k1"}),
    [](const testing::TestParamInfo<SweepParam>& param_info) {
      return std::string(param_info.param.name);
    });

// Doubling guess strategy keeps validity (weaker constant).
TEST(Solver, DoublingStrategyStillFeasible) {
  util::Rng rng(283);
  SolverOptions opt;
  opt.guess = SolverOptions::GuessStrategy::kDoubling;
  opt.mode = SolverOptions::Mode::kExactWeights;
  const KrspSolver solver(opt);
  int solved = 0;
  for (int trial = 0; trial < 15; ++trial) {
    RandomInstanceOptions ropt;
    ropt.k = 2;
    ropt.delay_slack = 0.25;
    const auto inst = random_er_instance(rng, 9, 0.35, ropt);
    if (!inst) continue;
    const auto s = solver.solve(*inst);
    if (!s.has_paths()) continue;
    ++solved;
    EXPECT_LE(s.delay, inst->delay_bound);
    EXPECT_TRUE(s.paths.is_valid(*inst));
  }
  EXPECT_GT(solved, 5);
}

TEST(Solver, Phase1OnlyModeReportsDelayOver) {
  const auto inst = gadget_instance();
  SolverOptions opt;
  opt.mode = SolverOptions::Mode::kPhase1Only;
  const auto s = KrspSolver(opt).solve(inst);
  // Phase 1 on the gadget picks the cheap slow pair: delay D+1 > D.
  EXPECT_EQ(s.status, SolveStatus::kApproxDelayOver);
  EXPECT_GT(s.delay, inst.delay_bound);
  EXPECT_LE(s.delay, 2 * inst.delay_bound + 2);
}

TEST(Solver, TelemetryPopulated) {
  const auto s = KrspSolver().solve(gadget_instance());
  EXPECT_GT(s.telemetry.phase1_mcmf_calls, 0);
  EXPECT_GT(s.telemetry.guess_attempts, 0);
  EXPECT_GT(s.telemetry.cost_guess_used, 0);
  EXPECT_GE(s.telemetry.wall_seconds, 0.0);
}

}  // namespace
}  // namespace krsp::core

// Executable reproductions of the paper's two figures (the only empirical
// artifacts a brief announcement has). bench_fig1/bench_fig2 print the
// tables; these tests pin the numbers.
#include <gtest/gtest.h>

#include "baselines/unsafe_cc.h"
#include "core/aux_graph.h"
#include "core/residual.h"
#include "core/solver.h"
#include "graph/generators.h"

namespace krsp {
namespace {

using core::Instance;

Instance instance_of(const gen::Figure1Gadget& fig) {
  Instance inst;
  inst.graph = fig.graph;
  inst.s = fig.s;
  inst.t = fig.t;
  inst.k = fig.k;
  inst.delay_bound = fig.delay_bound;
  return inst;
}

// Figure 1: "An example for execution of Algorithm 1 without the constraint
// on the cost": output cost C_OPT*(D+1)-eps vs the optimum C_OPT.
TEST(Figure1, UncappedCostRatioScalesWithD) {
  for (const graph::Delay D : {2, 4, 8, 16, 32}) {
    const auto fig = gen::figure1_gadget(D, 5);
    const auto inst = instance_of(fig);

    const auto capped = core::KrspSolver().solve(inst);
    ASSERT_TRUE(capped.has_paths());
    EXPECT_EQ(capped.cost, fig.optimal_cost) << "D=" << D;
    EXPECT_EQ(capped.delay, D);

    const auto uncapped = baselines::unsafe_cycle_cancel(inst);
    ASSERT_TRUE(uncapped.has_paths());
    EXPECT_EQ(uncapped.cost, fig.bad_cost) << "D=" << D;
    EXPECT_EQ(uncapped.delay, 0);

    // The paper's point: the uncapped ratio grows ~ (D+1), the capped one
    // stays at 1 on this family (<= 2 in general).
    const double bad_ratio = static_cast<double>(uncapped.cost) /
                             static_cast<double>(fig.optimal_cost);
    EXPECT_GT(bad_ratio, static_cast<double>(D));
  }
}

// Figure 2: the construction of H_v^+(B) for the residual graph of the path
// s-x-y-z-t with B = 6. Checks panel (b) (residual) and panel (c)
// (auxiliary graph) structurally.
TEST(Figure2, ResidualPanel) {
  const auto fig = gen::figure2_example();
  const core::ResidualGraph residual(fig.graph, fig.current_path);
  const auto& rg = residual.digraph();
  ASSERT_EQ(rg.num_edges(), fig.graph.num_edges());
  // Path edges reversed and negated; bypass arcs unchanged.
  int reversed = 0;
  for (graph::EdgeId e = 0; e < rg.num_edges(); ++e) {
    if (residual.is_reversed(e)) {
      ++reversed;
      EXPECT_LT(rg.edge(e).cost, 0);
      EXPECT_LT(rg.edge(e).delay, 0);
    } else {
      EXPECT_GT(rg.edge(e).cost, 0);
    }
  }
  EXPECT_EQ(reversed, 4);
}

TEST(Figure2, AuxiliaryGraphPanel) {
  const auto fig = gen::figure2_example();
  const core::ResidualGraph residual(fig.graph, fig.current_path);
  const core::AuxiliaryGraph aux(residual.digraph(), fig.x, fig.budget,
                                 /*positive=*/true);
  // |V(H)| = n * (B+1) per Algorithm 2 step 1.
  EXPECT_EQ(aux.digraph().num_vertices(), 5 * 7);
  // Closing arcs: B per anchor.
  int closing = 0;
  for (graph::EdgeId e = 0; e < aux.digraph().num_edges(); ++e)
    if (aux.base_edge_of(e) == graph::kInvalidEdge) ++closing;
  EXPECT_EQ(closing, 6);
  // The delay-reducing residual cycle x->z->y->x (cost 1, delay -6) is a
  // cycle of H through the anchor: verified end-to-end by the finder.
  core::BicameralQuery q;
  q.cap = fig.budget;
  q.ratio = util::Rational(-1, 1);
  const auto found = core::BicameralCycleFinder().find(residual, q);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->cost, 1);
  EXPECT_EQ(found->delay, -6);
}

}  // namespace
}  // namespace krsp

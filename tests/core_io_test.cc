#include "core/io.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/solver.h"
#include "graph/io.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::core {
namespace {

Instance sample_instance() {
  util::Rng rng(421);
  RandomInstanceOptions opt;
  opt.k = 2;
  opt.delay_slack = 0.4;
  auto inst = random_er_instance(rng, 10, 0.35, opt);
  KRSP_CHECK(inst.has_value());
  return *inst;
}

TEST(InstanceIo, RoundTripStream) {
  const auto inst = sample_instance();
  std::stringstream ss;
  write_instance(ss, inst);
  const auto back = read_instance(ss);
  EXPECT_EQ(back.s, inst.s);
  EXPECT_EQ(back.t, inst.t);
  EXPECT_EQ(back.k, inst.k);
  EXPECT_EQ(back.delay_bound, inst.delay_bound);
  ASSERT_EQ(back.graph.num_edges(), inst.graph.num_edges());
  for (graph::EdgeId e = 0; e < inst.graph.num_edges(); ++e) {
    EXPECT_EQ(back.graph.edge(e).cost, inst.graph.edge(e).cost);
    EXPECT_EQ(back.graph.edge(e).delay, inst.graph.edge(e).delay);
  }
}

TEST(InstanceIo, RoundTripFilePreservesSolverResult) {
  const auto inst = sample_instance();
  const std::string path = testing::TempDir() + "/krsp_instance.kri";
  write_instance_file(path, inst);
  const auto back = read_instance_file(path);
  const auto a = KrspSolver().solve(inst);
  const auto b = KrspSolver().solve(back);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.delay, b.delay);
}

TEST(InstanceIo, MissingQueryLineThrows) {
  const auto inst = sample_instance();
  std::stringstream ss;
  graph::write_graph(ss, inst.graph);  // no q line
  EXPECT_THROW(read_instance(ss), util::CheckError);
}

// Positioned-error regressions for the query ('q') line, which the
// instance reader parses itself — its errors must carry the real line
// number of the original stream, not a renumbered graph-only stream.

template <typename Fn>
std::string error_message(Fn fn) {
  try {
    fn();
  } catch (const util::CheckError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected util::CheckError";
  return "";
}

TEST(InstanceIo, MalformedQueryFieldNamesLineAndColumn) {
  const std::string msg = error_message([] {
    std::stringstream ss("p krsp 2 1\na 0 1 1 1\nq 0 x 2 5\n");
    (void)read_instance(ss);
  });
  EXPECT_EQ(msg,
            "line 3, column 5: expected integer for target vertex, got \"x\"");
}

TEST(InstanceIo, DuplicateQueryLineNamesTheFirst) {
  const std::string msg = error_message([] {
    std::stringstream ss("p krsp 2 1\na 0 1 1 1\nq 0 1 1 5\nq 0 1 1 5\n");
    (void)read_instance(ss);
  });
  EXPECT_NE(msg.find("line 4"), std::string::npos) << msg;
  EXPECT_NE(msg.find("duplicate query line (first at line 3)"),
            std::string::npos)
      << msg;
}

TEST(InstanceIo, QueryTrailingContentRejected) {
  const std::string msg = error_message([] {
    std::stringstream ss("p krsp 2 1\na 0 1 1 1\nq 0 1 1 5 9\n");
    (void)read_instance(ss);
  });
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unexpected trailing content"), std::string::npos) << msg;
}

TEST(InstanceIo, MissingQueryErrorIsPositionedAtStreamEnd) {
  const std::string msg = error_message([] {
    std::stringstream ss("p krsp 2 1\na 0 1 1 1\n");
    (void)read_instance(ss);
  });
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("missing the query"), std::string::npos) << msg;
}

TEST(InstanceIo, FileErrorsLeadWithThePath) {
  const std::string path = testing::TempDir() + "/krsp_bad_instance.kri";
  {
    std::ofstream os(path);
    os << "p krsp 2 1\na 0 1 1 oops\nq 0 1 1 5\n";
  }
  const std::string msg =
      error_message([&] { (void)read_instance_file(path); });
  EXPECT_EQ(msg.rfind(path + ": line 2", 0), 0u) << msg;
}

TEST(PathsIo, RoundTrip) {
  const auto inst = sample_instance();
  const auto s = KrspSolver().solve(inst);
  ASSERT_TRUE(s.has_paths());
  std::stringstream ss;
  write_paths(ss, s.paths);
  const auto back = read_paths(ss, inst);
  EXPECT_EQ(back.paths(), s.paths.paths());
  EXPECT_EQ(back.total_cost(inst.graph), s.cost);
}

TEST(PathsIo, InvalidPathsRejectedOnRead) {
  const auto inst = sample_instance();
  std::stringstream ss("r 0\n");  // almost surely not a full s-t path set
  EXPECT_THROW(read_paths(ss, inst), util::CheckError);
}

}  // namespace
}  // namespace krsp::core

// k = 1 reduces kRSP to the classical RSP, for which the delay DP is a
// polynomial exact oracle — so the solver's guarantees can be checked on
// instances far beyond brute-force range.
#include <gtest/gtest.h>

#include "core/solver.h"
#include "graph/generators.h"
#include "paths/rsp.h"
#include "util/rng.h"

namespace krsp::core {
namespace {

TEST(K1Oracle, ExactWeightsModeAtN30) {
  util::Rng rng(523);
  int checked = 0;
  SolverOptions opt;
  opt.mode = SolverOptions::Mode::kExactWeights;
  const KrspSolver solver(opt);
  for (int trial = 0; trial < 12; ++trial) {
    RandomInstanceOptions ropt;
    ropt.k = 1;
    ropt.delay_slack = 0.25;
    gen::WeightRange w;
    w.cost_max = 9;
    w.delay_max = 9;
    const auto inst = random_er_instance(rng, 30, 0.12, ropt, w);
    if (!inst) continue;
    const auto oracle = paths::rsp_exact(inst->graph, inst->s, inst->t,
                                         inst->delay_bound);
    ASSERT_TRUE(oracle.has_value());  // feasible by construction
    const auto s = solver.solve(*inst);
    ASSERT_TRUE(s.has_paths()) << inst->summary();
    ++checked;
    EXPECT_LE(s.delay, inst->delay_bound);
    EXPECT_GE(s.cost, oracle->cost);
    EXPECT_LE(s.cost, 2 * (oracle->cost + 1)) << inst->summary();
  }
  EXPECT_GT(checked, 5);
}

TEST(K1Oracle, ScaledModeAtN40LargeWeights) {
  util::Rng rng(541);
  int checked = 0;
  SolverOptions opt;
  opt.mode = SolverOptions::Mode::kScaled;
  opt.eps1 = opt.eps2 = 0.5;
  const KrspSolver solver(opt);
  for (int trial = 0; trial < 8; ++trial) {
    RandomInstanceOptions ropt;
    ropt.k = 1;
    ropt.delay_slack = 0.3;
    gen::WeightRange w;
    w.cost_max = 200;
    w.delay_max = 200;
    const auto inst = random_er_instance(rng, 40, 0.1, ropt, w);
    if (!inst) continue;
    const auto oracle = paths::rsp_exact(inst->graph, inst->s, inst->t,
                                         inst->delay_bound);
    ASSERT_TRUE(oracle.has_value());
    const auto s = solver.solve(*inst);
    ASSERT_TRUE(s.has_paths()) << inst->summary();
    ++checked;
    EXPECT_LE(static_cast<double>(s.delay),
              1.5 * static_cast<double>(inst->delay_bound) + 1e-9);
    EXPECT_LE(static_cast<double>(s.cost),
              2.5 * static_cast<double>(oracle->cost + 1) + 1e-9)
        << inst->summary();
  }
  EXPECT_GT(checked, 3);
}

TEST(K1Oracle, InfeasibilityAgreement) {
  util::Rng rng(547);
  int compared = 0;
  for (int trial = 0; trial < 20; ++trial) {
    gen::WeightRange w;
    w.delay_max = 12;
    const auto g = gen::erdos_renyi(rng, 14, 0.15, w);
    Instance inst;
    inst.graph = g;
    inst.s = 0;
    inst.t = 13;
    inst.k = 1;
    inst.delay_bound = rng.uniform_int(0, 30);
    const auto oracle =
        paths::rsp_exact(inst.graph, inst.s, inst.t, inst.delay_bound);
    const auto s = KrspSolver().solve(inst);
    EXPECT_EQ(oracle.has_value(), s.has_paths())
        << inst.summary() << " status=" << static_cast<int>(s.status);
    ++compared;
  }
  EXPECT_EQ(compared, 20);
}

}  // namespace
}  // namespace krsp::core

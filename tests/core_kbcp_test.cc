#include "core/kbcp.h"

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::core {
namespace {

KbcpInstance diamond(graph::Cost C, graph::Delay D) {
  KbcpInstance inst;
  inst.graph.resize(4);
  inst.graph.add_edge(0, 1, 1, 3);
  inst.graph.add_edge(1, 3, 1, 3);
  inst.graph.add_edge(0, 2, 5, 1);
  inst.graph.add_edge(2, 3, 5, 1);
  inst.graph.add_edge(0, 3, 2, 2);
  inst.s = 0;
  inst.t = 3;
  inst.k = 2;
  inst.cost_bound = C;
  inst.delay_bound = D;
  return inst;
}

TEST(Kbcp, FeasibleWithGenerousBudgets) {
  const auto r = solve_kbcp(diamond(20, 20));
  EXPECT_EQ(r.status, KbcpStatus::kFeasible);
  EXPECT_LE(r.cost, 20);
  EXPECT_LE(r.delay, 20);
  EXPECT_LE(r.cost_factor, 1.0);
  EXPECT_LE(r.delay_factor, 1.0);
}

TEST(Kbcp, TightBudgetsFoundViaBestOrientation) {
  // {0-1-3, 0-3}: cost 4, delay 8. Bounds C=4, D=8 are exactly achievable.
  const auto r = solve_kbcp(diamond(4, 8));
  ASSERT_TRUE(r.status == KbcpStatus::kFeasible ||
              r.status == KbcpStatus::kViolates);
  EXPECT_EQ(r.status, KbcpStatus::kFeasible);
  EXPECT_EQ(r.cost, 4);
  EXPECT_EQ(r.delay, 8);
}

TEST(Kbcp, ImpossiblePairReportsViolation) {
  // C=4 forces the cheap pair (delay 8); D=4 forces the fast pair (cost
  // 12). No solution satisfies both; factors quantify the gap.
  const auto r = solve_kbcp(diamond(4, 4));
  EXPECT_EQ(r.status, KbcpStatus::kViolates);
  EXPECT_GT(std::max(r.cost_factor, r.delay_factor), 1.0);
}

TEST(Kbcp, NoKDisjointPaths) {
  KbcpInstance inst;
  inst.graph.resize(2);
  inst.graph.add_edge(0, 1, 1, 1);
  inst.s = 0;
  inst.t = 1;
  inst.k = 2;
  inst.cost_bound = 10;
  inst.delay_bound = 10;
  EXPECT_EQ(solve_kbcp(inst).status, KbcpStatus::kNoKDisjointPaths);
}

// Property: on instances where the budget pair is achievable (set from the
// brute-force kRSP optimum), kBCP lands within the kRSP guarantee envelope
// of both budgets.
TEST(Kbcp, PropertyWithinGuaranteeOfAchievableBudgets) {
  util::Rng rng(397);
  int checked = 0;
  for (int trial = 0; trial < 20; ++trial) {
    RandomInstanceOptions opt;
    opt.k = 2;
    opt.delay_slack = 0.3;
    const auto base = random_er_instance(rng, 9, 0.35, opt);
    if (!base) continue;
    const auto best = baselines::brute_force_krsp(*base);
    if (!best) continue;
    ++checked;
    KbcpInstance inst;
    inst.graph = base->graph;
    inst.s = base->s;
    inst.t = base->t;
    inst.k = base->k;
    inst.cost_bound = best->cost;       // achievable pair by construction
    inst.delay_bound = base->delay_bound;
    const auto r = solve_kbcp(inst);
    ASSERT_TRUE(r.status == KbcpStatus::kFeasible ||
                r.status == KbcpStatus::kViolates);
    // The better orientation's worst factor is bounded by orientation A's
    // (min cost s.t. delay): delay within (1+eps1), cost within
    // (2+eps2)(C_OPT+1)/C = (2+eps2)(1+1/C) since the pair is achievable.
    const double worst = std::max(r.cost_factor, r.delay_factor);
    EXPECT_LE(worst,
              (2.0 + 0.25) * (1.0 + 1.0 / static_cast<double>(std::max<
                                              graph::Cost>(
                                      1, inst.cost_bound))) +
                  1e-9)
        << base->summary();
  }
  EXPECT_GT(checked, 5);
}

}  // namespace
}  // namespace krsp::core

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "baselines/flow_only.h"
#include "baselines/larac_k.h"
#include "baselines/os_cycle_cancel.h"
#include "baselines/unsafe_cc.h"
#include "core/solver.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::baselines {
namespace {

using core::Instance;
using core::SolveStatus;

Instance gadget_instance() {
  const auto fig = gen::figure1_gadget(4, 5);
  Instance inst;
  inst.graph = fig.graph;
  inst.s = fig.s;
  inst.t = fig.t;
  inst.k = fig.k;
  inst.delay_bound = fig.delay_bound;
  return inst;
}

TEST(FlowOnly, MinCostIgnoresDelay) {
  const auto inst = gadget_instance();
  const auto s = min_cost_flow_baseline(inst);
  EXPECT_EQ(s.status, SolveStatus::kApproxDelayOver);
  EXPECT_EQ(s.cost, 0);
  EXPECT_EQ(s.delay, 5);  // D + 1
}

TEST(FlowOnly, MinDelayIgnoresCost) {
  const auto inst = gadget_instance();
  const auto s = min_delay_flow_baseline(inst);
  EXPECT_EQ(s.status, SolveStatus::kApprox);
  EXPECT_EQ(s.delay, 0);
  EXPECT_EQ(s.cost, 24);  // the ruinous fast detour
}

TEST(FlowOnly, NoKDisjointPropagates) {
  Instance inst;
  inst.graph.resize(2);
  inst.graph.add_edge(0, 1, 1, 1);
  inst.s = 0;
  inst.t = 1;
  inst.k = 2;
  inst.delay_bound = 5;
  EXPECT_EQ(min_cost_flow_baseline(inst).status,
            SolveStatus::kNoKDisjointPaths);
}

TEST(LaracK, AlwaysDelayFeasibleOnFeasibleInstances) {
  util::Rng rng(313);
  int solved = 0;
  for (int trial = 0; trial < 20; ++trial) {
    core::RandomInstanceOptions opt;
    opt.k = 2;
    opt.delay_slack = 0.3;
    const auto inst = core::random_er_instance(rng, 10, 0.3, opt);
    if (!inst) continue;
    const auto s = larac_k(*inst);
    ASSERT_TRUE(s.has_paths());
    ++solved;
    EXPECT_LE(s.delay, inst->delay_bound);
    EXPECT_TRUE(s.paths.is_valid(*inst));
  }
  EXPECT_GT(solved, 10);
}

TEST(OsCycleCancel, MeetsDelayBoundOnFeasibleInstances) {
  util::Rng rng(317);
  int solved = 0;
  for (int trial = 0; trial < 15; ++trial) {
    core::RandomInstanceOptions opt;
    opt.k = 2;
    opt.delay_slack = 0.3;
    const auto inst = core::random_er_instance(rng, 9, 0.35, opt);
    if (!inst) continue;
    const auto s = os_cycle_cancel(*inst);
    ASSERT_TRUE(s.has_paths()) << inst->summary();
    ++solved;
    EXPECT_LE(s.delay, inst->delay_bound);
    EXPECT_TRUE(s.paths.is_valid(*inst));
  }
  EXPECT_GT(solved, 5);
}

TEST(OsCycleCancel, DetectsInfeasible) {
  auto inst = gadget_instance();
  inst.delay_bound = 0;
  // Min possible delay is 0 via {s-a-t, s-t}? s-a (0) + a-t (0) + s-t (0):
  // delay 0 — actually feasible. Make it infeasible by raising k.
  inst.k = 3;
  const auto s = os_cycle_cancel(inst);
  EXPECT_EQ(s.status, SolveStatus::kNoKDisjointPaths);
}

TEST(UnsafeCc, Figure1Blowup) {
  const auto inst = gadget_instance();
  const auto bad = unsafe_cycle_cancel(inst);
  ASSERT_TRUE(bad.has_paths());
  EXPECT_EQ(bad.cost, 24);  // C_OPT*(D+1) - 1
  EXPECT_EQ(bad.delay, 0);

  const auto good = core::KrspSolver().solve(inst);
  ASSERT_TRUE(good.has_paths());
  EXPECT_EQ(good.cost, 5);  // the cap saves the day
}

TEST(UnsafeCc, BlowupGrowsWithD) {
  for (const graph::Delay D : {4, 8, 16}) {
    const auto fig = gen::figure1_gadget(D, 5);
    Instance inst;
    inst.graph = fig.graph;
    inst.s = fig.s;
    inst.t = fig.t;
    inst.k = fig.k;
    inst.delay_bound = fig.delay_bound;
    const auto bad = unsafe_cycle_cancel(inst);
    ASSERT_TRUE(bad.has_paths());
    EXPECT_EQ(bad.cost, 5 * (D + 1) - 1);
  }
}

// Comparative sanity: the paper's algorithm is never worse than LARAC-k on
// cost by more than the factor its guarantee allows, and both are feasible.
TEST(Comparative, PaperAlgorithmVsLarac) {
  util::Rng rng(331);
  int compared = 0;
  for (int trial = 0; trial < 15; ++trial) {
    core::RandomInstanceOptions opt;
    opt.k = 2;
    opt.delay_slack = 0.25;
    const auto inst = core::random_er_instance(rng, 9, 0.35, opt);
    if (!inst) continue;
    const auto paper = core::KrspSolver().solve(*inst);
    const auto larac = larac_k(*inst);
    if (!paper.has_paths() || !larac.has_paths()) continue;
    ++compared;
    const auto best = brute_force_krsp(*inst);
    ASSERT_TRUE(best.has_value());
    EXPECT_GE(paper.cost, best->cost);  // sanity: nothing beats the optimum
    EXPECT_GE(larac.cost, best->cost);
  }
  EXPECT_GT(compared, 5);
}

}  // namespace
}  // namespace krsp::baselines

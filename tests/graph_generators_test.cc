#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"

namespace krsp::gen {
namespace {

using graph::EdgeId;
using graph::VertexId;

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  util::Rng rng(61);
  const int n = 40;
  const double p = 0.2;
  const auto g = erdos_renyi(rng, n, p);
  const double expected = p * n * (n - 1);
  EXPECT_GT(g.num_edges(), expected * 0.7);
  EXPECT_LT(g.num_edges(), expected * 1.3);
}

TEST(ErdosRenyi, DeterministicGivenSeed) {
  util::Rng a(7), b(7);
  const auto g1 = erdos_renyi(a, 15, 0.3);
  const auto g2 = erdos_renyi(b, 15, 0.3);
  ASSERT_EQ(g1.num_edges(), g2.num_edges());
  for (EdgeId e = 0; e < g1.num_edges(); ++e) {
    EXPECT_EQ(g1.edge(e).from, g2.edge(e).from);
    EXPECT_EQ(g1.edge(e).cost, g2.edge(e).cost);
  }
}

TEST(ErdosRenyi, WeightsInRange) {
  util::Rng rng(67);
  WeightRange w{3, 9, 2, 4};
  const auto g = erdos_renyi(rng, 20, 0.3, w);
  for (const auto& e : g.edges()) {
    EXPECT_GE(e.cost, 3);
    EXPECT_LE(e.cost, 9);
    EXPECT_GE(e.delay, 2);
    EXPECT_LE(e.delay, 4);
  }
}

TEST(RandomMEdges, ExactCountNoDuplicates) {
  util::Rng rng(71);
  const auto g = random_m_edges(rng, 10, 30);
  EXPECT_EQ(g.num_edges(), 30);
  std::set<std::pair<VertexId, VertexId>> pairs;
  for (const auto& e : g.edges()) {
    EXPECT_NE(e.from, e.to);
    EXPECT_TRUE(pairs.emplace(e.from, e.to).second);
  }
}

TEST(Waxman, DelayTracksDistance) {
  util::Rng rng(73);
  WaxmanParams params;
  params.beta = 0.9;
  const auto g = waxman(rng, 30, params);
  ASSERT_GT(g.num_edges(), 0);
  for (const auto& e : g.edges()) {
    EXPECT_GE(e.delay, 1);
    // Max distance in unit square is sqrt(2) -> delay <= ceil(1.415*100).
    EXPECT_LE(e.delay, 142);
  }
}

TEST(Grid, StructureAndDegrees) {
  util::Rng rng(79);
  const auto g = grid(rng, 4, 3);
  EXPECT_EQ(g.num_vertices(), 12);
  // Bidirectional: horizontal 3*3*2 + vertical 2*4*2 = 34.
  EXPECT_EQ(g.num_edges(), 34);
  // Corner vertex 0 has out-degree 2 (right, down).
  EXPECT_EQ(g.out_degree(0), 2);
}

TEST(LayeredDag, GuaranteesKDisjointSpines) {
  util::Rng rng(83);
  for (const int k : {1, 2, 3}) {
    const auto g = layered_dag(rng, 4, 5, 0.3, k);
    EXPECT_TRUE(topological_order(g).has_value());
    // The spine alone guarantees reachability.
    EXPECT_TRUE(graph::has_path(g, 0, g.num_vertices() - 1));
  }
}

TEST(BarabasiAlbert, EdgeCountAndConnectivity) {
  util::Rng rng(503);
  const int n = 30, attach = 2;
  const auto g = barabasi_albert(rng, n, attach);
  // Clique on 3 vertices (6 arcs) + 2 bidirectional attachments per new
  // vertex: 6 + (n - 3) * 2 * 2.
  EXPECT_EQ(g.num_edges(), 6 + (n - 3) * attach * 2);
  // Preferential attachment keeps everything connected to the seed clique.
  for (VertexId v = 1; v < n; ++v) {
    EXPECT_TRUE(graph::has_path(g, 0, v)) << v;
    EXPECT_TRUE(graph::has_path(g, v, 0)) << v;
  }
}

TEST(BarabasiAlbert, HubsEmerge) {
  util::Rng rng(509);
  const auto g = barabasi_albert(rng, 120, 2);
  int max_deg = 0;
  long long total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.out_degree(v));
    total += g.out_degree(v);
  }
  const double mean = static_cast<double>(total) / g.num_vertices();
  EXPECT_GT(max_deg, 3.0 * mean);  // scale-free: hubs far above the mean
}

TEST(BarabasiAlbert, ParameterValidation) {
  util::Rng rng(521);
  EXPECT_THROW(barabasi_albert(rng, 2, 2), util::CheckError);
  EXPECT_THROW(barabasi_albert(rng, 10, 0), util::CheckError);
}

TEST(IspLike, ConnectedBothWays) {
  util::Rng rng(89);
  const auto g = isp_like(rng);
  const VertexId a = 8;                  // first region host
  const VertexId b = g.num_vertices() - 1;  // last region host
  EXPECT_TRUE(graph::has_path(g, a, b));
  EXPECT_TRUE(graph::has_path(g, b, a));
}

TEST(Figure1Gadget, ShapeAndMeasures) {
  const auto fig = figure1_gadget(/*D=*/4, /*c_opt=*/5);
  EXPECT_EQ(fig.graph.num_vertices(), 5);
  EXPECT_EQ(fig.graph.num_edges(), 7);
  EXPECT_EQ(fig.optimal_cost, 5);
  EXPECT_EQ(fig.bad_cost, 5 * 5 - 1);
  EXPECT_EQ(fig.delay_bound, 4);
  // The cheap two-path system s-a-b-c-t + s-t costs 0 and has delay D+1.
  // (Verified in detail by integration_figures_test.)
  graph::Cost zero_cost_total = 0;
  for (const auto& e : fig.graph.edges())
    if (e.cost == 0) zero_cost_total += e.delay;
  EXPECT_EQ(zero_cost_total, 4 + 1);
}

TEST(Figure1Gadget, ParameterValidation) {
  EXPECT_THROW(figure1_gadget(0, 5), util::CheckError);
  EXPECT_THROW(figure1_gadget(4, 1), util::CheckError);
}

TEST(Figure2Example, PathAndBudget) {
  const auto fig = figure2_example();
  EXPECT_EQ(fig.graph.num_vertices(), 5);
  EXPECT_EQ(fig.current_path.size(), 4u);
  EXPECT_TRUE(graph::is_simple_path(fig.graph, fig.current_path, fig.s,
                                    fig.t));
  EXPECT_EQ(fig.budget, 6);
}

TEST(TradeoffChains, TwoVariantsPerHop) {
  util::Rng rng(97);
  const auto g = tradeoff_chains(rng, 3, 4, 10, 8);
  // 3 chains x 4 hops x 2 variants.
  EXPECT_EQ(g.num_edges(), 24);
  EXPECT_TRUE(graph::has_path(g, 0, 1));
}

}  // namespace
}  // namespace krsp::gen

// End-to-end tests of the fleet front tier (router/router.h): routed
// responses bit-identical to direct shard responses, v1/v2 cross-form
// shard affinity, refused-at-connect failover, the health state machine
// under probes, the drain op, and the TCP transport round trip. Real
// SocketServers on per-test /tmp sockets back every shard; the Router is
// driven through its LineHandler surface exactly as krsp_router drives
// it. Suites are named Router* so the CI TSan leg's -R filter includes
// them.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/krsp.h"
#include "router/router.h"
#include "server/client.h"
#include "server/fault.h"
#include "server/transport.h"
#include "server/wire.h"
#include "store/catalog.h"
#include "store/container.h"
#include "util/check.h"
#include "util/rng.h"

namespace krsp::router {
namespace {

using server::wire::Value;

api::Instance small_instance(std::uint64_t seed, int n = 12) {
  util::Rng rng(seed);
  api::RandomInstanceOptions opt;
  opt.k = 2;
  opt.delay_slack = 0.3;
  const auto inst = api::random_er_instance(rng, n, 0.35, opt);
  KRSP_CHECK_MSG(inst.has_value(), "seed " << seed << " drew no instance");
  return *inst;
}

std::string inline_line(const api::Instance& inst, const std::string& id) {
  std::ostringstream kri;
  api::write_instance(kri, inst);
  return server::wire::ObjectWriter()
      .field("op", "solve")
      .field("id", id)
      .field("instance", kri.str())
      .field("mode", "exact")
      .done();
}

/// Removes the nondeterministic timing fields and the router-injected
/// served_by field so routed and direct response lines compare with
/// operator== — the bit-identity contract modulo documented additions.
std::string strip_variable(std::string line) {
  for (const char* key :
       {"\"queue_ms\":", "\"total_ms\":", "\"served_by\":"}) {
    const std::size_t pos = line.find(key);
    if (pos == std::string::npos) continue;
    // The values (numbers, socket-path strings) contain no ',' or '}'.
    const std::size_t end = line.find_first_of(",}", pos + std::strlen(key));
    KRSP_CHECK(end != std::string::npos);
    KRSP_CHECK(pos > 0 && line[pos - 1] == ',');
    line.erase(pos - 1, end - (pos - 1));
  }
  return line;
}

/// One in-process shard: a real SolveService behind a real SocketServer
/// on an explicit Unix socket path, with its own accept thread.
class TestShard {
 public:
  explicit TestShard(std::string path,
                     const store::TopologyCatalog* catalog = nullptr,
                     api::ServerOptions options = {.num_threads = 1})
      : path_(std::move(path)),
        service_(options),
        server_(service_, path_, catalog) {
    std::string error;
    KRSP_CHECK_MSG(server_.start(&error), "start: " << error);
    accept_thread_ = std::thread([this] { server_.serve_forever(); });
  }
  ~TestShard() {
    server_.request_stop();
    accept_thread_.join();
  }

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] server::Endpoint endpoint() const {
    return server::Endpoint::unix_socket(path_);
  }
  [[nodiscard]] std::string name() const { return endpoint().describe(); }
  [[nodiscard]] server::SolveService& service() { return service_; }

 private:
  std::string path_;
  server::SolveService service_;
  server::SocketServer server_;
  std::thread accept_thread_;
};

std::string make_path(const char* tag) {
  static std::atomic<int> counter{0};
  return "/tmp/krsp_router_" + std::to_string(::getpid()) + "_" + tag + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

RouterOptions manual_probe_options() {
  RouterOptions options;
  options.probe_interval_ms = 0;  // tests drive probe_all() by hand
  options.mark_down_after = 2;
  options.mark_up_after = 2;
  return options;
}

// ------------------------------------------------------- bit identity ---

TEST(RouterTest, RoutedSolveIsBitIdenticalToDirectAndNamesItsShard) {
  TestShard shard(make_path("ident"));
  Router router({shard.endpoint()}, nullptr, manual_probe_options());

  // Direct oracle from a *fresh* service so no cache crosses the sides.
  server::SolveService direct_service(api::ServerOptions{.num_threads = 1});
  server::LocalTransport direct(direct_service);

  for (std::uint64_t seed : {201, 202, 203}) {
    const api::Instance inst = small_instance(seed);
    const std::string line =
        inline_line(inst, "ident-" + std::to_string(seed));
    const std::string routed = router.handle_line(line);
    const std::string expected = direct.request(line);
    EXPECT_EQ(strip_variable(routed), strip_variable(expected));
    const auto parsed = server::wire::parse(routed);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->get_bool("served", false)) << routed;
    EXPECT_EQ(parsed->get_string("served_by"), shard.name());
  }
  EXPECT_EQ(router.requests_routed(), 3u);
}

// ---------------------------------------------------- cross-form keys ---

TEST(RouterTest, V1AndV2FormsOfOneQueryShareOneRingKey) {
  const api::Instance inst = small_instance(301);
  const std::string dir =
      testing::TempDir() + "/router_affinity_" + std::to_string(::getpid());
  std::filesystem::create_directories(dir);
  store::CsrContainer::write_file(dir + "/net.krspb", inst);
  const store::TopologyCatalog catalog = store::TopologyCatalog::load(dir);

  TestShard shard(make_path("affinity"), &catalog);
  Router router({shard.endpoint()}, &catalog, manual_probe_options());

  const std::string v1 = inline_line(inst, "id-a");
  const std::string v2 = server::wire::ObjectWriter()
                             .field("op", "solve")
                             .field("id", "id-b")
                             .field("topology", "net")
                             .field("mode", "exact")
                             .done();
  // Same query, both wire forms, different ids: one ring key, so the
  // owning shard's cache serves both.
  EXPECT_EQ(router.route_key(v1), router.route_key(v2));

  // A router with no catalog cannot lower the v2 form; the fallback key
  // differs, but it is still deterministic.
  Router blind({shard.endpoint()}, nullptr, manual_probe_options());
  EXPECT_EQ(blind.route_key(v2), blind.route_key(v2));
  EXPECT_EQ(blind.route_key(v1), router.route_key(v1));

  // End to end: the v1 solve warms the shard cache, the v2 solve hits it
  // through the router.
  const auto warm = server::wire::parse(router.handle_line(v1));
  ASSERT_TRUE(warm.has_value());
  ASSERT_TRUE(warm->get_bool("served", false));
  const auto hit = server::wire::parse(router.handle_line(v2));
  ASSERT_TRUE(hit.has_value());
  ASSERT_TRUE(hit->get_bool("served", false));
  EXPECT_TRUE(hit->get_bool("cache_hit", false));
}

TEST(RouterTest, RingKeyIgnoresTheRequestId) {
  TestShard shard(make_path("ids"));
  Router router({shard.endpoint()}, nullptr, manual_probe_options());
  const api::Instance inst = small_instance(305);
  EXPECT_EQ(router.route_key(inline_line(inst, "first")),
            router.route_key(inline_line(inst, "second")));
  // ...but different queries get different keys (with overwhelming
  // probability; these two are fixed, so this is deterministic).
  EXPECT_NE(router.route_key(inline_line(small_instance(306), "x")),
            router.route_key(inline_line(inst, "x")));
}

// ------------------------------------------------------------ failover ---

TEST(RouterTest, RefusedShardFailsOverAndMarksDown) {
  TestShard live(make_path("live"));
  // A never-bound socket path: every connect refuses (ENOENT), nothing
  // is ever delivered.
  const server::Endpoint dead =
      server::Endpoint::unix_socket(make_path("dead"));
  Router router({live.endpoint(), dead}, nullptr, manual_probe_options());
  ASSERT_EQ(router.ring_size(), 2u);

  // Enough distinct queries that some hash to the dead shard; every one
  // must still succeed via the ring walk.
  for (std::uint64_t seed = 400; seed < 410; ++seed) {
    const auto resp = server::wire::parse(
        router.handle_line(inline_line(small_instance(seed), "f")));
    ASSERT_TRUE(resp.has_value());
    EXPECT_TRUE(resp->get_bool("served", false));
    EXPECT_EQ(resp->get_string("served_by"), live.name());
  }
  const Shard& dead_shard = router.shard(1);
  EXPECT_GT(dead_shard.forwards_refused(), 0u);
  // mark_down_after = 2 refusals: the dead shard left the ring, so new
  // requests no longer pay the connect attempt.
  EXPECT_EQ(dead_shard.state(), ShardState::kDown);
  EXPECT_EQ(router.ring_size(), 1u);
  EXPECT_EQ(router.no_shard_errors(), 0u);
}

TEST(RouterTest, RefusedConnectFailsOverEvenForNonIdempotentRequests) {
  TestShard live(make_path("live2"));
  const server::Endpoint dead =
      server::Endpoint::unix_socket(make_path("dead2"));
  Router router({live.endpoint(), dead}, nullptr, manual_probe_options());

  // Deadline-bounded (non-idempotent) solves: refused-at-connect means
  // nothing was delivered, so the walk continues and they all serve.
  for (std::uint64_t seed = 420; seed < 428; ++seed) {
    std::ostringstream kri;
    api::write_instance(kri, small_instance(seed));
    const std::string line = server::wire::ObjectWriter()
                                 .field("op", "solve")
                                 .field("id", "nid")
                                 .field("instance", kri.str())
                                 .field("mode", "exact")
                                 .field("deadline", 30.0)
                                 .done();
    const auto resp = server::wire::parse(router.handle_line(line));
    ASSERT_TRUE(resp.has_value());
    EXPECT_TRUE(resp->get_bool("served", false));
    EXPECT_EQ(resp->get_string("served_by"), live.name());
  }
}

TEST(RouterTest, NoShardAvailableIsAStructuredError) {
  const server::Endpoint dead =
      server::Endpoint::unix_socket(make_path("dead3"));
  Router router({dead}, nullptr, manual_probe_options());
  const auto resp = server::wire::parse(
      router.handle_line(inline_line(small_instance(430), "lost")));
  ASSERT_TRUE(resp.has_value());
  EXPECT_FALSE(resp->get_bool("ok", true));
  EXPECT_NE(resp->get_string("error").find("no shard available"),
            std::string::npos);
  EXPECT_EQ(resp->get_string("id"), "lost");
  EXPECT_EQ(router.no_shard_errors(), 1u);
}

// ------------------------------------------------------- health probes ---

TEST(RouterTest, ProbesMarkDownAndRecoverWithHysteresis) {
  const std::string path = make_path("flap");
  const server::Endpoint ep = server::Endpoint::unix_socket(path);
  Router router({ep}, nullptr, manual_probe_options());
  const Shard& shard = router.shard(0);

  // Nothing listens yet: mark_down_after = 2 failed probes take the
  // shard out; one is not enough (hysteresis).
  router.probe_all();
  EXPECT_EQ(shard.state(), ShardState::kUp);
  router.probe_all();
  EXPECT_EQ(shard.state(), ShardState::kDown);
  EXPECT_EQ(router.ring_size(), 0u);

  // Boot the real server on that exact path: mark_up_after = 2 good
  // probes bring it back, and the recovery is counted.
  TestShard revived(path);
  router.probe_all();
  EXPECT_EQ(shard.state(), ShardState::kDown);
  router.probe_all();
  EXPECT_EQ(shard.state(), ShardState::kUp);
  EXPECT_EQ(router.ring_size(), 1u);
  EXPECT_EQ(shard.recoveries(), 1u);
  EXPECT_GT(shard.ewma_probe_ms(), 0.0);

  const auto resp = server::wire::parse(
      router.handle_line(inline_line(small_instance(440), "back")));
  ASSERT_TRUE(resp.has_value());
  EXPECT_TRUE(resp->get_bool("served", false));
}

// ---------------------------------------------------------------- drain ---

TEST(RouterTest, DrainFencesTheShardAndTrafficRebalances) {
  TestShard a(make_path("drain_a"));
  TestShard b(make_path("drain_b"));
  RouterOptions options = manual_probe_options();
  options.drain_wait_ms = 2000.0;
  Router router({a.endpoint(), b.endpoint()}, nullptr, options);
  ASSERT_EQ(router.ring_size(), 2u);

  const auto drained = server::wire::parse(router.handle_line(
      server::wire::ObjectWriter()
          .field("op", "drain")
          .field("shard", a.name())
          .done()));
  ASSERT_TRUE(drained.has_value());
  EXPECT_TRUE(drained->get_bool("ok", false));
  EXPECT_TRUE(drained->get_bool("drained", false));
  EXPECT_TRUE(drained->get_bool("quiesced", false));
  EXPECT_EQ(router.shard(0).state(), ShardState::kDraining);
  EXPECT_EQ(router.ring_size(), 1u);

  // Every subsequent solve lands on the survivor.
  for (std::uint64_t seed = 450; seed < 456; ++seed) {
    const auto resp = server::wire::parse(
        router.handle_line(inline_line(small_instance(seed), "post")));
    ASSERT_TRUE(resp.has_value());
    EXPECT_TRUE(resp->get_bool("served", false));
    EXPECT_EQ(resp->get_string("served_by"), b.name());
  }

  // Draining an unknown name is a structured error, not a crash.
  const auto unknown = server::wire::parse(router.handle_line(
      "{\"op\":\"drain\",\"shard\":\"nope\"}"));
  ASSERT_TRUE(unknown.has_value());
  EXPECT_FALSE(unknown->get_bool("ok", true));
  EXPECT_NE(unknown->get_string("error").find("unknown shard"),
            std::string::npos);
  const auto missing = server::wire::parse(router.handle_line(
      "{\"op\":\"drain\"}"));
  ASSERT_TRUE(missing.has_value());
  EXPECT_FALSE(missing->get_bool("ok", true));
}

// ------------------------------------------------------- control plane ---

TEST(RouterTest, StatsMetricsPingAndErrorsMatchTheWireContract) {
  TestShard shard(make_path("ctl"));
  Router router({shard.endpoint()}, nullptr, manual_probe_options());

  const auto stats =
      server::wire::parse(router.handle_line("{\"op\":\"stats\"}"));
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->get_bool("ok", false));
  EXPECT_TRUE(stats->get_bool("router", false));
  EXPECT_EQ(stats->get_int("shards", 0), 1);
  EXPECT_EQ(stats->get_int("ring_shards", 0), 1);
  EXPECT_EQ(stats->get_int("vnodes", 0), HashRing::kDefaultVnodes);
  const Value* shard_stats = stats->find("shard_stats");
  ASSERT_NE(shard_stats, nullptr);
  ASSERT_EQ(shard_stats->type, Value::Type::kArray);
  ASSERT_EQ(shard_stats->items.size(), 1u);
  EXPECT_EQ(shard_stats->items[0].get_string("name"), shard.name());
  EXPECT_EQ(shard_stats->items[0].get_string("state"), "up");
  EXPECT_NEAR(shard_stats->items[0].get_number("keyspace_share", 0.0), 1.0,
              1e-12);

  const auto metrics =
      server::wire::parse(router.handle_line("{\"op\":\"metrics\"}"));
  ASSERT_TRUE(metrics.has_value());
  EXPECT_TRUE(metrics->get_bool("ok", false));
  EXPECT_NE(metrics->get_string("metrics").find("krsp_"), std::string::npos);

  const auto pong =
      server::wire::parse(router.handle_line("{\"op\":\"ping\"}"));
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->get_bool("pong", false));

  // Error strings mirror a shard's Protocol byte for byte, so clients
  // cannot tell a router from a shard by its failure shapes.
  const auto bad = server::wire::parse(router.handle_line("!!garbage"));
  ASSERT_TRUE(bad.has_value());
  EXPECT_NE(bad->get_string("error").find("bad json"), std::string::npos);
  const auto not_obj = server::wire::parse(router.handle_line("[1,2]"));
  ASSERT_TRUE(not_obj.has_value());
  EXPECT_EQ(not_obj->get_string("error"), "request must be a json object");
  const auto unknown =
      server::wire::parse(router.handle_line("{\"op\":\"nope\"}"));
  ASSERT_TRUE(unknown.has_value());
  EXPECT_EQ(unknown->get_string("error"), "unknown op: nope");

  const auto bye =
      server::wire::parse(router.handle_line("{\"op\":\"shutdown\"}"));
  ASSERT_TRUE(bye.has_value());
  EXPECT_TRUE(bye->get_bool("draining", false));
  EXPECT_TRUE(router.shutdown_requested());
}

TEST(RouterTest, TopologyDiscoveryIsForwardedToAShard) {
  const api::Instance inst = small_instance(460);
  const std::string dir =
      testing::TempDir() + "/router_topo_" + std::to_string(::getpid());
  std::filesystem::create_directories(dir);
  store::CsrContainer::write_file(dir + "/net.krspb", inst);
  const store::TopologyCatalog catalog = store::TopologyCatalog::load(dir);

  TestShard shard(make_path("topo"), &catalog);
  Router router({shard.endpoint()}, &catalog, manual_probe_options());

  const auto listing =
      server::wire::parse(router.handle_line("{\"op\":\"topologies\"}"));
  ASSERT_TRUE(listing.has_value());
  EXPECT_TRUE(listing->get_bool("ok", false)) << "topologies via router";
  const auto one = server::wire::parse(
      router.handle_line("{\"op\":\"topology\",\"id\":\"net\"}"));
  ASSERT_TRUE(one.has_value());
  EXPECT_TRUE(one->get_bool("ok", false)) << "topology via router";
}

// ------------------------------------------------------- TCP transport ---

TEST(RouterTcp, TcpShardServesTheSameWireAsUnix) {
  server::SolveService service(api::ServerOptions{.num_threads = 1});
  server::SocketServer tcp_server(service, static_cast<std::uint16_t>(0),
                                  nullptr);
  std::string error;
  ASSERT_TRUE(tcp_server.start(&error)) << error;
  ASSERT_GT(tcp_server.bound_port(), 0);
  std::thread accept_thread([&] { tcp_server.serve_forever(); });

  const server::Endpoint ep =
      server::Endpoint::tcp("127.0.0.1", tcp_server.bound_port());
  server::ResilientClient client(ep);
  std::string response_line;
  ASSERT_TRUE(client.request("{\"op\":\"ping\"}", "", true, &response_line,
                             &error))
      << error;
  const auto pong = server::wire::parse(response_line);
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->get_bool("pong", false));

  // A routed solve over TCP is bit-identical to the direct solve.
  server::SolveService direct_service(api::ServerOptions{.num_threads = 1});
  server::LocalTransport direct(direct_service);
  Router router({ep}, nullptr, manual_probe_options());
  const std::string line = inline_line(small_instance(470), "tcp-1");
  const std::string routed = router.handle_line(line);
  EXPECT_EQ(strip_variable(routed), strip_variable(direct.request(line)));
  const auto parsed = server::wire::parse(routed);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->get_string("served_by"), ep.describe());

  tcp_server.request_stop();
  accept_thread.join();
}

TEST(RouterTcp, EndpointParseClassifiesSpecs) {
  const auto unix_ep = server::Endpoint::parse("/tmp/x.sock");
  EXPECT_EQ(unix_ep.kind, server::Endpoint::Kind::kUnixSocket);
  EXPECT_EQ(unix_ep.describe(), "unix:/tmp/x.sock");
  const auto tcp_ep = server::Endpoint::parse("127.0.0.1:4701");
  EXPECT_EQ(tcp_ep.kind, server::Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp_ep.host, "127.0.0.1");
  EXPECT_EQ(tcp_ep.port, 4701);
  EXPECT_EQ(tcp_ep.describe(), "tcp:127.0.0.1:4701");
  // A slash wins: this is a path even though it ends in :digits.
  EXPECT_EQ(server::Endpoint::parse("/tmp/odd:123").kind,
            server::Endpoint::Kind::kUnixSocket);
  // No port digits: a bare name is a (relative) socket path.
  EXPECT_EQ(server::Endpoint::parse("localhost").kind,
            server::Endpoint::Kind::kUnixSocket);
}

}  // namespace
}  // namespace krsp::router

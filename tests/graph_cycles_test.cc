#include "graph/cycles.h"

#include <gtest/gtest.h>

#include <map>

#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::graph {
namespace {

TEST(IsSimpleCycle, Basics) {
  Digraph g(3);
  const EdgeId a = g.add_edge(0, 1, 0, 0);
  const EdgeId b = g.add_edge(1, 2, 0, 0);
  const EdgeId c = g.add_edge(2, 0, 0, 0);
  EXPECT_TRUE(is_simple_cycle(g, std::vector<EdgeId>{a, b, c}));
  EXPECT_FALSE(is_simple_cycle(g, std::vector<EdgeId>{a, b}));   // open
  EXPECT_FALSE(is_simple_cycle(g, std::vector<EdgeId>{}));       // empty
}

TEST(IsSimpleCycle, SelfParallelPair) {
  Digraph g(2);
  const EdgeId a = g.add_edge(0, 1, 0, 0);
  const EdgeId b = g.add_edge(1, 0, 0, 0);
  EXPECT_TRUE(is_simple_cycle(g, std::vector<EdgeId>{a, b}));
}

TEST(DecomposeClosedWalk, SingleCycle) {
  Digraph g(3);
  const EdgeId a = g.add_edge(0, 1, 0, 0);
  const EdgeId b = g.add_edge(1, 2, 0, 0);
  const EdgeId c = g.add_edge(2, 0, 0, 0);
  const auto cycles = decompose_closed_walk(g, std::vector<EdgeId>{a, b, c});
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].size(), 3u);
}

TEST(DecomposeClosedWalk, FigureEightSplits) {
  // 0->1->0 then 0->2->0, traversed as one closed walk through 0.
  Digraph g(3);
  const EdgeId a = g.add_edge(0, 1, 0, 0);
  const EdgeId b = g.add_edge(1, 0, 0, 0);
  const EdgeId c = g.add_edge(0, 2, 0, 0);
  const EdgeId d = g.add_edge(2, 0, 0, 0);
  const auto cycles =
      decompose_closed_walk(g, std::vector<EdgeId>{a, b, c, d});
  ASSERT_EQ(cycles.size(), 2u);
  for (const auto& cyc : cycles) EXPECT_TRUE(is_simple_cycle(g, cyc));
}

TEST(DecomposeClosedWalk, InnerCyclePoppedBeforeOuter) {
  // Walk 0->1->2->1 ... 1->0: inner cycle 1->2->1 inside outer 0->1->0.
  Digraph g(3);
  const EdgeId a = g.add_edge(0, 1, 0, 0);
  const EdgeId b = g.add_edge(1, 2, 0, 0);
  const EdgeId c = g.add_edge(2, 1, 0, 0);
  const EdgeId d = g.add_edge(1, 0, 0, 0);
  const auto cycles =
      decompose_closed_walk(g, std::vector<EdgeId>{a, b, c, d});
  ASSERT_EQ(cycles.size(), 2u);
  EXPECT_EQ(cycles[0].size(), 2u);  // inner pops first
  EXPECT_EQ(cycles[1].size(), 2u);
}

TEST(DecomposeClosedWalk, RejectsNonClosedInput) {
  Digraph g(3);
  const EdgeId a = g.add_edge(0, 1, 0, 0);
  const EdgeId b = g.add_edge(1, 2, 0, 0);
  EXPECT_THROW(decompose_closed_walk(g, std::vector<EdgeId>{a, b}),
               util::CheckError);
}

TEST(DecomposeBalanced, RejectsImbalance) {
  Digraph g(3);
  const EdgeId a = g.add_edge(0, 1, 0, 0);
  EXPECT_THROW(decompose_balanced_edge_set(g, std::vector<EdgeId>{a}),
               util::CheckError);
}

TEST(DecomposeBalanced, DisjointCycles) {
  Digraph g(6);
  std::vector<EdgeId> edges;
  edges.push_back(g.add_edge(0, 1, 0, 0));
  edges.push_back(g.add_edge(1, 2, 0, 0));
  edges.push_back(g.add_edge(2, 0, 0, 0));
  edges.push_back(g.add_edge(3, 4, 0, 0));
  edges.push_back(g.add_edge(4, 3, 0, 0));
  const auto cycles = decompose_balanced_edge_set(g, edges);
  EXPECT_EQ(cycles.size(), 2u);
}

// Property: on random balanced edge sets (unions of random simple cycles),
// the decomposition yields simple cycles partitioning the edge multiset.
TEST(DecomposeBalanced, PropertyPartitionOfRandomCycleUnions) {
  util::Rng rng(47);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 8;
    Digraph g(n);
    std::vector<EdgeId> edges;
    // Build 1-3 random simple cycles over fresh parallel edges (so the
    // union is trivially balanced even with shared vertices).
    const int num_cycles = static_cast<int>(rng.uniform_int(1, 3));
    for (int c = 0; c < num_cycles; ++c) {
      const int len = static_cast<int>(rng.uniform_int(2, n));
      std::vector<VertexId> verts;
      for (VertexId v = 0; v < n; ++v) verts.push_back(v);
      for (int i = n - 1; i > 0; --i) {
        const int j = static_cast<int>(rng.uniform_int(0, i));
        std::swap(verts[i], verts[j]);
      }
      verts.resize(len);
      for (int i = 0; i < len; ++i)
        edges.push_back(
            g.add_edge(verts[i], verts[(i + 1) % len], 0, 0));
    }
    const auto cycles = decompose_balanced_edge_set(g, edges);
    std::map<EdgeId, int> seen;
    std::size_t total = 0;
    for (const auto& cyc : cycles) {
      EXPECT_TRUE(is_simple_cycle(g, cyc));
      total += cyc.size();
      for (const EdgeId e : cyc) ++seen[e];
    }
    EXPECT_EQ(total, edges.size());
    for (const auto& [e, count] : seen) EXPECT_EQ(count, 1) << "edge " << e;
  }
}

}  // namespace
}  // namespace krsp::graph

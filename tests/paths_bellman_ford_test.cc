#include "paths/bellman_ford.h"

#include <gtest/gtest.h>

#include "graph/cycles.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::paths {
namespace {

using graph::Digraph;
using graph::EdgeId;

TEST(BellmanFord, HandlesNegativeEdges) {
  Digraph g(4);
  g.add_edge(0, 1, 5, 0);
  g.add_edge(1, 2, -3, 0);
  g.add_edge(0, 2, 4, 0);
  g.add_edge(2, 3, 1, 0);
  const auto r = bellman_ford(g, 0, EdgeWeight::cost());
  ASSERT_FALSE(r.negative_cycle.has_value());
  EXPECT_EQ(r.tree.dist[2], 2);
  EXPECT_EQ(r.tree.dist[3], 3);
}

TEST(BellmanFord, DetectsNegativeCycle) {
  Digraph g(3);
  g.add_edge(0, 1, 1, 0);
  g.add_edge(1, 2, -4, 0);
  g.add_edge(2, 1, 2, 0);
  const auto r = bellman_ford(g, 0, EdgeWeight::cost());
  ASSERT_TRUE(r.negative_cycle.has_value());
  EXPECT_TRUE(graph::is_simple_cycle(g, *r.negative_cycle));
  EXPECT_LT(graph::path_cost(g, *r.negative_cycle), 0);
}

TEST(BellmanFord, IgnoresNegativeCycleUnreachableFromSource) {
  Digraph g(4);
  g.add_edge(0, 1, 1, 0);
  // Negative cycle on {2, 3}, not reachable from 0.
  g.add_edge(2, 3, -4, 0);
  g.add_edge(3, 2, 2, 0);
  const auto r = bellman_ford(g, 0, EdgeWeight::cost());
  EXPECT_FALSE(r.negative_cycle.has_value());
  EXPECT_EQ(r.tree.dist[1], 1);
}

TEST(BellmanFordAllSources, FindsCycleAnywhere) {
  Digraph g(4);
  g.add_edge(0, 1, 1, 0);
  g.add_edge(2, 3, -4, 0);
  g.add_edge(3, 2, 2, 0);
  const auto r = bellman_ford_all_sources(g, EdgeWeight::cost());
  ASSERT_TRUE(r.negative_cycle.has_value());
  EXPECT_LT(graph::path_cost(g, *r.negative_cycle), 0);
}

TEST(BellmanFordAllSources, NoFalsePositive) {
  util::Rng rng(103);
  const auto g = gen::erdos_renyi(rng, 12, 0.3);  // non-negative weights
  const auto r = bellman_ford_all_sources(g, EdgeWeight::cost());
  EXPECT_FALSE(r.negative_cycle.has_value());
}

// Property: on random graphs with mixed-sign weights, if a negative cycle
// is reported it really is one; if none is reported, distances satisfy the
// triangle inequality on every edge.
TEST(BellmanFord, PropertySoundness) {
  util::Rng rng(107);
  for (int trial = 0; trial < 40; ++trial) {
    gen::WeightRange w;
    w.cost_min = -4;
    w.cost_max = 10;
    const auto g = gen::erdos_renyi(rng, 10, 0.25, w);
    const auto r = bellman_ford_all_sources(g, EdgeWeight::cost());
    if (r.negative_cycle) {
      EXPECT_TRUE(graph::is_simple_cycle(g, *r.negative_cycle));
      EXPECT_LT(graph::path_cost(g, *r.negative_cycle), 0);
    } else {
      for (const auto& e : g.edges()) {
        ASSERT_NE(r.tree.dist[e.from], kUnreachable);
        EXPECT_LE(r.tree.dist[e.to], r.tree.dist[e.from] + e.cost);
      }
    }
  }
}

TEST(BellmanFord, DelayWeightOnResidualStyleGraph) {
  // Negated delays as in residual graphs.
  Digraph g(3);
  g.add_edge(0, 1, 0, 5);
  g.add_edge(1, 2, 0, -9);
  g.add_edge(2, 0, 0, 1);
  const auto r = bellman_ford_all_sources(g, EdgeWeight::delay());
  ASSERT_TRUE(r.negative_cycle.has_value());
  EXPECT_EQ(graph::path_delay(g, *r.negative_cycle), -3);
}

}  // namespace
}  // namespace krsp::paths

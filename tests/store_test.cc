// The zero-copy instance store and the topology catalog: `.krspb`
// round-trips, every corruption class the format contract promises to
// reject (bad magic/version/endianness, truncation, digest mismatch,
// broken id permutation), catalog lookup semantics, and the O(1)
// fingerprint-prefix path producing values identical to inline hashing.
// Runs under ASan/UBSan in the sanitizer matrix on purpose: mmap
// lifetime and alignment bugs are exactly what sanitizers catch.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "api/fingerprint.h"
#include "api/krsp.h"
#include "core/instance.h"
#include "store/catalog.h"
#include "store/container.h"
#include "store/format.h"
#include "util/check.h"
#include "util/rng.h"

namespace krsp::store {
namespace {

core::Instance random_instance(std::uint64_t seed, int n = 24, int k = 2) {
  util::Rng rng(seed);
  core::RandomInstanceOptions opt;
  opt.k = k;
  opt.delay_slack = 0.3;
  const auto inst = core::random_er_instance(rng, n, 0.3, opt);
  KRSP_CHECK_MSG(inst.has_value(), "seed " << seed << " drew no instance");
  return *inst;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Expects CsrContainer::open(path) to throw a CheckError whose message
/// mentions `needle` (the violated invariant).
void expect_rejected(const std::string& path, const std::string& needle) {
  try {
    (void)CsrContainer::open(path);
    FAIL() << path << ": expected rejection mentioning \"" << needle << "\"";
  } catch (const util::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

void expect_same_instance(const core::Instance& a, const core::Instance& b) {
  ASSERT_EQ(a.graph.num_vertices(), b.graph.num_vertices());
  ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (graph::EdgeId e = 0; e < a.graph.num_edges(); ++e) {
    const auto& ea = a.graph.edge(e);
    const auto& eb = b.graph.edge(e);
    EXPECT_EQ(ea.from, eb.from) << "edge " << e;
    EXPECT_EQ(ea.to, eb.to) << "edge " << e;
    EXPECT_EQ(ea.cost, eb.cost) << "edge " << e;
    EXPECT_EQ(ea.delay, eb.delay) << "edge " << e;
  }
  EXPECT_EQ(a.s, b.s);
  EXPECT_EQ(a.t, b.t);
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.delay_bound, b.delay_bound);
}

TEST(StoreTest, RoundTripPreservesEdgesIdsAndQuery) {
  const core::Instance original = random_instance(7);
  const std::string path = temp_path("roundtrip.krspb");
  CsrContainer::write_file(path, original);
  const CsrContainer c = CsrContainer::open(path);
  EXPECT_EQ(c.num_vertices(), original.graph.num_vertices());
  EXPECT_EQ(c.num_edges(), original.graph.num_edges());
  // Materialized instance restores the original edge-id order exactly —
  // the property that keeps v1/v2 responses (which name paths by edge
  // id) bit-identical.
  expect_same_instance(c.instance(), original);
}

TEST(StoreTest, CsrViewMatchesDigraphAdjacency) {
  const core::Instance original = random_instance(11);
  const std::string path = temp_path("csrview.krspb");
  CsrContainer::write_file(path, original);
  const CsrContainer c = CsrContainer::open(path);
  const graph::CsrView from_container = c.csr_view();
  const graph::CsrView from_graph(original.graph);
  ASSERT_EQ(from_container.num_vertices(), from_graph.num_vertices());
  ASSERT_EQ(from_container.num_arcs(), from_graph.num_arcs());
  for (graph::VertexId v = 0; v < from_graph.num_vertices(); ++v) {
    const auto a = from_container.out(v);
    const auto b = from_graph.out(v);
    ASSERT_EQ(a.size(), b.size()) << "vertex " << v;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].to, b[i].to);
      EXPECT_EQ(a[i].cost, b[i].cost);
      EXPECT_EQ(a[i].delay, b[i].delay);
      EXPECT_EQ(a[i].id, b[i].id);
    }
  }
}

TEST(StoreTest, WriteIsDeterministic) {
  const core::Instance inst = random_instance(13);
  const std::string p1 = temp_path("det1.krspb");
  const std::string p2 = temp_path("det2.krspb");
  CsrContainer::write_file(p1, inst);
  CsrContainer::write_file(p2, inst);
  EXPECT_EQ(slurp(p1), slurp(p2));
}

TEST(StoreTest, RejectsBadMagicVersionAndEndianness) {
  const core::Instance inst = random_instance(17);
  const std::string good = temp_path("good.krspb");
  CsrContainer::write_file(good, inst);
  const std::vector<char> bytes = slurp(good);

  auto corrupt_header = [&](std::size_t offset, std::uint32_t value,
                            const std::string& name) {
    std::vector<char> bad = bytes;
    std::memcpy(bad.data() + offset, &value, sizeof(value));
    const std::string path = temp_path(name);
    spit(path, bad);
    return path;
  };
  expect_rejected(corrupt_header(0, 0xdeadbeef, "badmagic.krspb"),
                  "bad magic");
  expect_rejected(corrupt_header(8, 999, "badversion.krspb"),
                  "unsupported format version");
  expect_rejected(corrupt_header(12, 0x04030201, "badendian.krspb"),
                  "endianness mismatch");
}

TEST(StoreTest, RejectsTruncation) {
  const core::Instance inst = random_instance(19);
  const std::string good = temp_path("trunc_src.krspb");
  CsrContainer::write_file(good, inst);
  const std::vector<char> bytes = slurp(good);

  // Shorter than the header: rejected before any section math.
  std::vector<char> tiny(bytes.begin(), bytes.begin() + 64);
  const std::string tiny_path = temp_path("tiny.krspb");
  spit(tiny_path, tiny);
  expect_rejected(tiny_path, "truncated");

  // Header intact but sections cut off: the size cross-check fires.
  std::vector<char> cut(bytes.begin(), bytes.end() - 16);
  const std::string cut_path = temp_path("cut.krspb");
  spit(cut_path, cut);
  expect_rejected(cut_path, "file size does not match header");
}

TEST(StoreTest, RejectsContentCorruptionViaDigest) {
  const core::Instance inst = random_instance(23);
  const std::string good = temp_path("digest_src.krspb");
  CsrContainer::write_file(good, inst);
  std::vector<char> bad = slurp(good);
  // Flip one bit in the costs section (last section bytes are ids; pick
  // a byte safely inside the file's second half but before ids by using
  // the costs offset from the header).
  std::uint64_t off_costs = 0;
  std::memcpy(&off_costs, bad.data() + offsetof(Header, off_costs),
              sizeof(off_costs));
  bad[off_costs] = static_cast<char>(bad[off_costs] ^ 0x01);
  const std::string path = temp_path("bitflip.krspb");
  spit(path, bad);
  expect_rejected(path, "digest mismatch");
}

TEST(StoreTest, RejectsBrokenIdPermutation) {
  const core::Instance inst = random_instance(29);
  const std::string good = temp_path("ids_src.krspb");
  CsrContainer::write_file(good, inst);
  std::vector<char> bad = slurp(good);
  Header header;
  std::memcpy(&header, bad.data(), sizeof(header));
  // Duplicate id 0 into slot 1, then re-stamp the digest so the
  // permutation check (not the digest) is what rejects the file.
  std::int32_t zero = 0;
  std::memcpy(bad.data() + header.off_ids + sizeof(std::int32_t), &zero,
              sizeof(zero));
  const auto m = static_cast<std::size_t>(header.num_edges);
  const auto n = static_cast<std::size_t>(header.num_vertices);
  const auto span_at = [&](std::uint64_t off, std::size_t count, auto tag) {
    using T = decltype(tag);
    return std::span<const T>(reinterpret_cast<const T*>(bad.data() + off),
                              count);
  };
  header.digest = compute_digest(
      header, span_at(header.off_offsets, n + 1, std::uint64_t{}),
      span_at(header.off_targets, m, std::int32_t{}),
      span_at(header.off_costs, m, graph::Cost{}),
      span_at(header.off_delays, m, graph::Delay{}),
      span_at(header.off_ids, m, std::int32_t{}));
  std::memcpy(bad.data(), &header, sizeof(header));
  const std::string path = temp_path("badids.krspb");
  spit(path, bad);
  expect_rejected(path, "not a permutation");
}

TEST(StoreTest, OpenMissingFileNamesThePath) {
  expect_rejected(temp_path("no_such_file.krspb"), "no_such_file.krspb");
}

TEST(TopologyCatalogTest, LoadsDirectoryAndFindsById) {
  const std::string dir = temp_path("catalog1");
  std::filesystem::create_directories(dir);
  const core::Instance a = random_instance(31);
  const core::Instance b = random_instance(37, 16, 2);
  CsrContainer::write_file(dir + "/alpha.krspb", a);
  CsrContainer::write_file(dir + "/beta.krspb", b);
  // Non-container files are ignored, not errors.
  spit(dir + "/README.txt", {'h', 'i'});

  const TopologyCatalog catalog = TopologyCatalog::load(dir);
  EXPECT_EQ(catalog.size(), 2u);
  const auto alpha = catalog.find("alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->id, "alpha");
  expect_same_instance(*alpha->instance, a);
  EXPECT_EQ(catalog.find("gamma"), nullptr);

  const auto infos = catalog.list();
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].id, "alpha");  // sorted by id
  EXPECT_EQ(infos[1].id, "beta");
  EXPECT_EQ(infos[0].num_edges, a.graph.num_edges());
}

TEST(TopologyCatalogTest, LoadFailsFastOnACorruptContainer) {
  const std::string dir = temp_path("catalog2");
  std::filesystem::create_directories(dir);
  CsrContainer::write_file(dir + "/ok.krspb", random_instance(41));
  spit(dir + "/broken.krspb", std::vector<char>(64, 'x'));
  EXPECT_THROW((void)TopologyCatalog::load(dir), util::CheckError);
}

TEST(TopologyCatalogTest, PrefixFingerprintsMatchInlineHashing) {
  const std::string dir = temp_path("catalog3");
  std::filesystem::create_directories(dir);
  const core::Instance inst = random_instance(43);
  CsrContainer::write_file(dir + "/topo.krspb", inst);
  const TopologyCatalog catalog = TopologyCatalog::load(dir);

  api::SolveRequest inline_req;
  inline_req.instance = inst;
  inline_req.mode = api::Mode::kExactWeights;

  api::SolveRequest topo_req;
  topo_req.topology = catalog.find("topo");
  ASSERT_NE(topo_req.topology, nullptr);
  topo_req.mode = api::Mode::kExactWeights;

  // The O(1) prefix-resume path must produce the exact values of the
  // O(m) inline path — this equality is what makes the result cache
  // shared across wire protocol v1 and v2.
  const api::FingerprintPair a = api::request_fingerprints(inline_req);
  const api::FingerprintPair b = api::request_fingerprints(topo_req);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.verify, b.verify);

  // And different query parameters must still diverge.
  topo_req.eps1 = 0.5;
  const api::FingerprintPair c = api::request_fingerprints(topo_req);
  EXPECT_NE(a.key, c.key);
}

TEST(TopologyCatalogTest, ConcurrentFindsAreSafeAndConsistent) {
  const std::string dir = temp_path("catalog4");
  std::filesystem::create_directories(dir);
  CsrContainer::write_file(dir + "/one.krspb", random_instance(47));
  CsrContainer::write_file(dir + "/two.krspb", random_instance(53, 16));
  const TopologyCatalog catalog = TopologyCatalog::load(dir);

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&catalog, &failures] {
      for (int i = 0; i < 200; ++i) {
        const auto one = catalog.find("one");
        const auto two = catalog.find("two");
        const auto missing = catalog.find("three");
        if (one == nullptr || two == nullptr || missing != nullptr ||
            one->instance->graph.num_vertices() <= 0)
          failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace krsp::store

#include <gtest/gtest.h>

#include <cmath>

#include "core/repair.h"
#include "core/solver.h"
#include "graph/generators.h"
#include "resilience/audit.h"
#include "resilience/chaos.h"
#include "resilience/controller.h"
#include "util/check.h"
#include "util/rng.h"

namespace krsp::resilience {
namespace {

core::SolverOptions exact_options() {
  core::SolverOptions options;
  options.mode = core::SolverOptions::Mode::kExactWeights;
  return options;
}

// s=0, t=3; three parallel two-hop routes A (cheap), B (mid), C (pricey).
// Same fixture as core_repair_test so the scripted scenarios line up.
core::Instance triple_route() {
  core::Instance inst;
  inst.graph.resize(5);
  inst.graph.add_edge(0, 1, 1, 2);  // e0  A
  inst.graph.add_edge(1, 3, 1, 2);  // e1  A
  inst.graph.add_edge(0, 2, 2, 2);  // e2  B
  inst.graph.add_edge(2, 3, 2, 2);  // e3  B
  inst.graph.add_edge(0, 4, 5, 2);  // e4  C
  inst.graph.add_edge(4, 3, 5, 2);  // e5  C
  inst.s = 0;
  inst.t = 3;
  inst.k = 2;
  inst.delay_bound = 8;
  return inst;
}

// k=1, two routes: cheap-slow (violates D) and pricey-fast. The min-cost
// flow lands on the slow route, so phase 1 must iterate and cancellation
// must run — the pipeline a deadline can actually cut short.
core::Instance two_route_tension() {
  core::Instance inst;
  inst.graph.resize(4);
  inst.graph.add_edge(0, 1, 1, 5);  // cheap slow
  inst.graph.add_edge(1, 3, 1, 5);
  inst.graph.add_edge(0, 2, 6, 1);  // pricey fast
  inst.graph.add_edge(2, 3, 6, 1);
  inst.s = 0;
  inst.t = 3;
  inst.k = 1;
  inst.delay_bound = 5;
  return inst;
}

TEST(Deadline, UnboundedByDefault) {
  const util::Deadline d;
  EXPECT_FALSE(d.bounded());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_seconds()));
  // <= 0 seconds also means unbounded (the SolverOptions convention).
  EXPECT_FALSE(util::Deadline::after_seconds(0.0).bounded());
  EXPECT_FALSE(util::Deadline::after_seconds(-1.0).bounded());
}

TEST(Deadline, ClippingTakesTheEarlier) {
  const auto generous = util::Deadline::after_seconds(3600.0);
  const auto clipped = generous.clipped_after_seconds(0.001);
  EXPECT_TRUE(clipped.bounded());
  EXPECT_LE(clipped.remaining_seconds(), generous.remaining_seconds());
  // Clipping an unbounded deadline bounds it.
  EXPECT_TRUE(util::Deadline().clipped_after_seconds(1.0).bounded());
}

TEST(Phase1, ExpiredDeadlineStillBracketsExactly) {
  const auto inst = two_route_tension();
  const auto full = core::phase1_lagrangian(inst);
  ASSERT_EQ(full.status, core::Phase1Status::kApprox);
  EXPECT_FALSE(full.deadline_hit);

  const auto cut = core::phase1_lagrangian(
      inst, util::Deadline::after_seconds(1e-9));
  // Feasibility classification is exact regardless of the budget.
  EXPECT_EQ(cut.status, core::Phase1Status::kApprox);
  EXPECT_TRUE(cut.deadline_hit);
  EXPECT_TRUE(cut.paths.is_valid(inst));
  // The certified bound from the last λ is valid, if looser.
  EXPECT_GE(full.cost_lower_bound, cut.cost_lower_bound);
  EXPECT_GT(cut.cost_lower_bound, util::Rational(0));
  // The delay-feasible bracket endpoint always exists on kApprox.
  ASSERT_TRUE(cut.feasible_alternative.has_value());
  EXPECT_LE(cut.feasible_alternative->total_delay(inst.graph),
            inst.delay_bound);
}

TEST(CycleCancel, ExpiredDeadlineReturnsValidAnytimePaths) {
  const auto inst = two_route_tension();
  const core::PathSet slow({{0, 1}});  // delay 10 > D: needs cancellation
  core::CycleCancelOptions options;
  options.deadline = util::Deadline::after_seconds(1e-9);
  const auto r = core::cancel_cycles(inst, slow, 100, options);
  EXPECT_EQ(r.status, core::CancelStatus::kDeadlineExpired);
  EXPECT_EQ(r.paths.size(), 1);
  std::string why;
  EXPECT_TRUE(r.paths.is_valid(inst, &why)) << why;
}

TEST(Solver, ExpiredDeadlineWalksTheLadderNeverHangs) {
  const auto inst = two_route_tension();
  const core::KrspSolver solver(exact_options());

  const auto full = solver.solve(inst);
  ASSERT_TRUE(full.has_paths());
  EXPECT_EQ(full.telemetry.degradation, core::DegradationStep::kNone);
  EXPECT_FALSE(full.telemetry.deadline_expired);
  EXPECT_EQ(full.cost, 12);  // pricey fast route

  const auto cut =
      solver.solve(inst, util::Deadline::after_seconds(1e-9));
  ASSERT_TRUE(cut.has_paths());
  EXPECT_TRUE(cut.telemetry.deadline_expired);
  EXPECT_NE(cut.telemetry.degradation, core::DegradationStep::kNone);
  // The anytime result is still structurally valid and delay-feasible.
  EXPECT_TRUE(cut.paths.is_valid(inst));
  EXPECT_LE(cut.delay, inst.delay_bound);
}

TEST(Solver, ScaledModeRespectsSharedDeadline) {
  const auto inst = two_route_tension();
  core::SolverOptions options;  // default kScaled
  const core::KrspSolver solver(options);
  const auto cut =
      solver.solve(inst, util::Deadline::after_seconds(1e-9));
  EXPECT_TRUE(cut.telemetry.deadline_expired);
  if (cut.has_paths()) {
    EXPECT_TRUE(cut.paths.is_valid(inst));
    EXPECT_LE(cut.delay, audited_delay_cap(inst, options));
  }
}

TEST(Audit, DelayCapFollowsSolverMode) {
  const auto inst = triple_route();  // D = 8
  EXPECT_EQ(audited_delay_cap(inst, exact_options()), 8);
  core::SolverOptions scaled;
  scaled.mode = core::SolverOptions::Mode::kScaled;
  scaled.eps1 = 0.25;
  EXPECT_EQ(audited_delay_cap(inst, scaled), 10);  // floor(1.25 * 8)
  core::SolverOptions p1;
  p1.mode = core::SolverOptions::Mode::kPhase1Only;
  EXPECT_EQ(audited_delay_cap(inst, p1), 16);
}

TEST(Audit, ThrowsOnBookkeepingDrift) {
  const auto inst = triple_route();
  const core::PathSet served({{0, 1}, {2, 3}});  // A + B: cost 6, delay 8
  const std::unordered_set<graph::EdgeId> none;
  const auto report = audit_served_paths(inst, served, none, 8, 6, 8);
  EXPECT_EQ(report.paths_served, 2);
  EXPECT_EQ(report.cost, 6);
  EXPECT_THROW(audit_served_paths(inst, served, none, 8, 7, 8),
               util::CheckError);
  EXPECT_THROW(audit_served_paths(inst, served, none, 7, 6, 8),
               util::CheckError);  // over the cap
}

TEST(Audit, ThrowsWhenServedPathUsesFailedEdge) {
  const auto inst = triple_route();
  const core::PathSet served({{0, 1}, {2, 3}});
  const std::unordered_set<graph::EdgeId> failed = {3};  // B's second hop
  EXPECT_THROW(audit_served_paths(inst, served, failed, 8, 6, 8),
               util::CheckError);
}

TEST(Controller, ScriptedFailRecoverLadder) {
  ResilienceController c(triple_route(), exact_options());
  ASSERT_EQ(c.provision(), core::SolveStatus::kOptimal);
  EXPECT_EQ(c.level(), ServiceLevel::kFull);
  EXPECT_EQ(c.served_cost(), 6);  // A + B

  // A's first hop fails: local repair swaps A for C, k paths survive.
  NetworkEvent fail0;
  fail0.type = EventType::kEdgeFail;
  fail0.edge = 0;
  auto out = c.apply(fail0);
  ASSERT_TRUE(out.repair.has_value());
  EXPECT_EQ(*out.repair, core::RepairOutcome::kLocalRepair);
  EXPECT_EQ(out.level, ServiceLevel::kDegraded);
  EXPECT_EQ(out.paths_served, 2);
  EXPECT_EQ(c.served_cost(), 14);  // B + C

  // B's second hop fails too: only route C remains intact — the repair
  // ladder bottoms out at reduced-k service.
  NetworkEvent fail3;
  fail3.type = EventType::kEdgeFail;
  fail3.edge = 3;
  out = c.apply(fail3);
  ASSERT_TRUE(out.repair.has_value());
  EXPECT_EQ(*out.repair, core::RepairOutcome::kInfeasible);
  EXPECT_EQ(out.level, ServiceLevel::kReducedK);
  EXPECT_EQ(out.paths_served, 1);
  EXPECT_EQ(out.degradation, core::DegradationStep::kReducedK);
  EXPECT_EQ(c.served_cost(), 10);  // C alone

  // e0 recovers: mandatory climb-back re-provisions to full service.
  NetworkEvent rec0;
  rec0.type = EventType::kEdgeRecover;
  rec0.edge = 0;
  out = c.apply(rec0);
  EXPECT_TRUE(out.reoptimized);
  EXPECT_EQ(out.level, ServiceLevel::kFull);
  EXPECT_EQ(out.paths_served, 2);
  EXPECT_EQ(c.served_cost(), 12);  // A + C

  // e3 recovers: opportunistic re-optimization adopts the cheaper A + B.
  NetworkEvent rec3;
  rec3.type = EventType::kEdgeRecover;
  rec3.edge = 3;
  out = c.apply(rec3);
  EXPECT_TRUE(out.reoptimized);
  EXPECT_EQ(out.level, ServiceLevel::kFull);
  EXPECT_EQ(c.served_cost(), 6);

  const auto& stats = c.stats();
  EXPECT_EQ(stats.events, 4);
  EXPECT_EQ(stats.local_repairs, 1);
  EXPECT_EQ(stats.recoveries, 2);
  EXPECT_EQ(stats.reopt_adopted, 2);
  EXPECT_EQ(stats.audits, 5);  // provision + 4 events
}

TEST(Controller, SrlgFailureTakesOutBothServedRoutes) {
  ResilienceController c(triple_route(), exact_options());
  ASSERT_EQ(c.provision(), core::SolveStatus::kOptimal);

  // Both first hops of the served routes A and B die together: no two
  // disjoint routes remain, and both served paths are broken — outage.
  NetworkEvent srlg;
  srlg.type = EventType::kSrlgFail;
  srlg.group = {0, 2};
  const auto out = c.apply(srlg);
  EXPECT_EQ(out.level, ServiceLevel::kOutage);
  EXPECT_EQ(out.paths_served, 0);
  EXPECT_EQ(out.degradation, core::DegradationStep::kOutage);
  EXPECT_EQ(c.stats().edge_failures, 2);
  EXPECT_EQ(c.stats().outages_entered, 1);

  // One recovery is enough to climb back to full service (A + C).
  NetworkEvent rec;
  rec.type = EventType::kEdgeRecover;
  rec.edge = 0;
  const auto back = c.apply(rec);
  EXPECT_TRUE(back.reoptimized);
  EXPECT_EQ(back.level, ServiceLevel::kFull);
  EXPECT_EQ(c.served_cost(), 12);
}

TEST(Controller, DelayDegradationForcesReprovision) {
  ResilienceController c(triple_route(), exact_options());
  ASSERT_EQ(c.provision(), core::SolveStatus::kOptimal);
  EXPECT_EQ(c.served_delay(), 8);  // A + B, exactly at D

  // A's first hop degrades 2 -> 5: served delay 11 > 8, but B + C still
  // fits the bound, so the controller re-provisions around the slow link.
  NetworkEvent slow;
  slow.type = EventType::kDelayDegrade;
  slow.edge = 0;
  slow.new_delay = 5;
  const auto out = c.apply(slow);
  EXPECT_EQ(out.level, ServiceLevel::kFull);
  EXPECT_LE(c.served_delay(), 8);
  EXPECT_EQ(c.served_cost(), 14);  // B + C
  EXPECT_EQ(c.stats().delay_changes, 1);

  // The link recovers its nominal delay; re-optimization takes A + B back.
  NetworkEvent heal;
  heal.type = EventType::kEdgeRecover;
  heal.edge = 0;
  const auto back = c.apply(heal);
  EXPECT_TRUE(back.reoptimized);
  EXPECT_EQ(c.served_cost(), 6);
}

TEST(Chaos, CampaignCompletesWithZeroViolations) {
  util::Rng rng(99);
  core::RandomInstanceOptions opt;
  opt.k = 3;
  opt.delay_slack = 0.3;
  const auto inst = core::make_random_instance(rng, opt, [&](util::Rng& r) {
    gen::WaxmanParams p;
    p.beta = 0.8;
    p.delay_scale = 25;
    return gen::waxman(r, 16, p);
  });
  ASSERT_TRUE(inst.has_value());

  ChaosOptions chaos;
  chaos.events = 220;
  chaos.seed = 2026;
  // Every event audits the controller state; an invariant violation throws
  // CheckError, so reaching the assertions below IS the acceptance check.
  const auto report =
      run_chaos_campaign(*inst, exact_options(), chaos);
  EXPECT_GE(report.events, 200);
  EXPECT_EQ(report.stats.audits, report.events + 1);  // + provisioning
  EXPECT_EQ(report.stats.events, report.events);
  EXPECT_GT(report.availability_any, 0.0);
  EXPECT_GT(report.stats.edge_failures, 0);
  EXPECT_GT(report.stats.recoveries, 0);
  EXPECT_GT(report.stats.delay_changes, 0);
}

TEST(Chaos, SameSeedSameCampaign) {
  util::Rng rng(41);
  core::RandomInstanceOptions opt;
  opt.k = 2;
  opt.delay_slack = 0.4;
  const auto inst = core::make_random_instance(rng, opt, [&](util::Rng& r) {
    gen::WaxmanParams p;
    p.beta = 0.8;
    p.delay_scale = 25;
    return gen::waxman(r, 12, p);
  });
  ASSERT_TRUE(inst.has_value());

  ChaosOptions chaos;
  chaos.events = 80;
  chaos.seed = 7;
  const auto a = run_chaos_campaign(*inst, exact_options(), chaos);
  const auto b = run_chaos_campaign(*inst, exact_options(), chaos);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.availability_full, b.availability_full);
  EXPECT_EQ(a.availability_any, b.availability_any);
  EXPECT_EQ(a.stats.local_repairs, b.stats.local_repairs);
  EXPECT_EQ(a.stats.full_resolves, b.stats.full_resolves);
  EXPECT_EQ(a.stats.reduced_k_steps, b.stats.reduced_k_steps);
  EXPECT_EQ(a.stats.outages_entered, b.stats.outages_entered);
  EXPECT_EQ(a.stats.reopt_adopted, b.stats.reopt_adopted);
  EXPECT_EQ(a.degraded_events, b.degraded_events);
}

TEST(Chaos, SimReplayReportsDeliveredQos) {
  util::Rng rng(5);
  core::RandomInstanceOptions opt;
  opt.k = 2;
  opt.delay_slack = 0.5;
  const auto inst = core::make_random_instance(rng, opt, [&](util::Rng& r) {
    gen::WaxmanParams p;
    p.beta = 0.8;
    p.delay_scale = 25;
    return gen::waxman(r, 12, p);
  });
  ASSERT_TRUE(inst.has_value());

  ChaosOptions chaos;
  chaos.events = 40;
  chaos.seed = 3;
  chaos.replay_sim = true;
  chaos.sim_horizon = 5000;
  const auto report = run_chaos_campaign(*inst, exact_options(), chaos);
  // Replay only runs when paths survived the campaign's end; when it did,
  // the delivery rate is a sane fraction.
  if (report.sim_delivery_rate >= 0) {
    EXPECT_LE(report.sim_delivery_rate, 1.0);
    EXPECT_GT(report.sim_delivery_rate, 0.0);
  }
}

}  // namespace
}  // namespace krsp::resilience

// Failure injection: the solver's behavior when internal limits trip and
// when components are deliberately crippled. The contract: never hang,
// never return invalid paths, always surface a typed status (or fall back
// to the certified-feasible phase-1 alternative).
#include <gtest/gtest.h>

#include "core/cycle_cancel.h"
#include "core/phase1.h"
#include "core/solver.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::core {
namespace {

// An instance whose phase-1 solution overshoots the budget, so cancellation
// must iterate (Figure-1 gadget guarantees exactly one iteration).
Instance gadget_instance() {
  const auto fig = gen::figure1_gadget(4, 5);
  Instance inst;
  inst.graph = fig.graph;
  inst.s = fig.s;
  inst.t = fig.t;
  inst.k = fig.k;
  inst.delay_bound = fig.delay_bound;
  return inst;
}

TEST(FailureInjection, IterationLimitSurfacesTypedStatus) {
  util::Rng rng(431);
  // Tradeoff chains need several iterations; a limit of 1 must trip.
  Instance inst;
  inst.graph = gen::tradeoff_chains(rng, 3, 5, 6, 5);
  inst.s = 0;
  inst.t = 1;
  inst.k = 3;
  const auto lo = min_possible_delay(inst);
  ASSERT_TRUE(lo.has_value());
  inst.delay_bound = (*lo + 5 * 5 * 3) / 2;
  const auto p1 = phase1_lagrangian(inst);
  ASSERT_EQ(p1.status, Phase1Status::kApprox);
  if (p1.delay <= inst.delay_bound) GTEST_SKIP() << "no overshoot drawn";

  CycleCancelOptions opt;
  opt.max_iterations = 1;
  const auto cap = p1.feasible_alternative->total_cost(inst.graph);
  const auto r = cancel_cycles(inst, p1.paths, cap, opt);
  if (r.status == CancelStatus::kSuccess) GTEST_SKIP() << "solved in 1";
  EXPECT_EQ(r.status, CancelStatus::kIterationLimit);
  // Partial progress is still structurally valid.
  EXPECT_TRUE(r.paths.is_valid(inst));
}

TEST(FailureInjection, SolverFallsBackWhenCancellationCrippled) {
  // max_iterations = 0 is "auto"; use a crippled finder instead: zero DP
  // rounds force every cancellation run to fail, so the solver must return
  // the phase-1 feasible alternative with the fallback flag set.
  SolverOptions opt;
  opt.mode = SolverOptions::Mode::kExactWeights;
  opt.cancel.finder.max_rounds = 1;  // cycles need >= 2 edges: always misses
  const auto inst = gadget_instance();
  const auto s = KrspSolver(opt).solve(inst);
  ASSERT_EQ(s.status, SolveStatus::kApprox);
  EXPECT_TRUE(s.telemetry.used_feasible_fallback);
  EXPECT_TRUE(s.paths.is_valid(inst));
  EXPECT_LE(s.delay, inst.delay_bound);  // the fallback is always feasible
  EXPECT_EQ(s.cost, 24);                 // F_hi on the gadget: the fast pair
}

TEST(FailureInjection, ScaledModeFallsBackToo) {
  SolverOptions opt;
  opt.mode = SolverOptions::Mode::kScaled;
  opt.cancel.finder.max_rounds = 1;
  const auto inst = gadget_instance();
  const auto s = KrspSolver(opt).solve(inst);
  ASSERT_EQ(s.status, SolveStatus::kApprox);
  EXPECT_TRUE(s.paths.is_valid(inst));
  EXPECT_LE(s.delay, inst.delay_bound);
}

TEST(FailureInjection, TightIterationBudgetNeverReturnsInvalidPaths) {
  util::Rng rng(433);
  for (const int limit : {1, 2, 3}) {
    for (int trial = 0; trial < 8; ++trial) {
      RandomInstanceOptions ropt;
      ropt.k = 2;
      ropt.delay_slack = 0.15;
      const auto inst = random_er_instance(rng, 10, 0.3, ropt);
      if (!inst) continue;
      SolverOptions opt;
      opt.mode = SolverOptions::Mode::kExactWeights;
      opt.cancel.max_iterations = limit;
      const auto s = KrspSolver(opt).solve(*inst);
      if (s.has_paths()) {
        EXPECT_TRUE(s.paths.is_valid(*inst));
        EXPECT_LE(s.delay, inst->delay_bound);
      } else {
        EXPECT_TRUE(s.status == SolveStatus::kInfeasible ||
                    s.status == SolveStatus::kNoKDisjointPaths ||
                    s.status == SolveStatus::kFailed);
      }
    }
  }
}

TEST(FailureInjection, UnsolvableGuessRangeHandled) {
  // cancel_cycles with an absurd cap guess of 0 on an overshooting start:
  // ΔC <= 0 must be reported as kNoBicameralCycle, not looped on.
  const auto inst = gadget_instance();
  const PathSet start({{0, 1, 2, 3}, {4}});
  const auto r = cancel_cycles(inst, start, /*cost_guess=*/0);
  EXPECT_EQ(r.status, CancelStatus::kNoBicameralCycle);
}

}  // namespace
}  // namespace krsp::core

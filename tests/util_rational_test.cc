#include "util/rational.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace krsp::util {
namespace {

TEST(Rational, NormalizesSignAndGcd) {
  const Rational r(4, -6);
  EXPECT_EQ(r.num(), -2);
  EXPECT_EQ(r.den(), 3);
}

TEST(Rational, ZeroHasCanonicalForm) {
  const Rational r(0, -17);
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
  EXPECT_TRUE(r.is_zero());
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), CheckError);
}

TEST(Rational, ComparisonAgreesWithCrossMultiplication) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_GE(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
}

TEST(Rational, ArithmeticBasics) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_EQ(-Rational(3, 7), Rational(-3, 7));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1, 2) / Rational(0), CheckError);
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).to_double(), 0.25);
  EXPECT_DOUBLE_EQ(Rational(-3, 2).to_double(), -1.5);
}

// Property: field axioms hold on random small rationals (exact arithmetic).
TEST(Rational, PropertyFieldLaws) {
  Rng rng(31);
  for (int i = 0; i < 2000; ++i) {
    const Rational a(rng.uniform_int(-50, 50), rng.uniform_int(1, 20));
    const Rational b(rng.uniform_int(-50, 50), rng.uniform_int(1, 20));
    const Rational c(rng.uniform_int(-50, 50), rng.uniform_int(1, 20));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Rational(0));
    if (!b.is_zero()) {
      EXPECT_EQ((a / b) * b, a);
    }
  }
}

// Property: ordering is total and consistent with doubles (no ties broken
// differently) on random inputs far from double precision limits.
TEST(Rational, PropertyOrderMatchesDouble) {
  Rng rng(37);
  for (int i = 0; i < 2000; ++i) {
    const Rational a(rng.uniform_int(-1000, 1000), rng.uniform_int(1, 999));
    const Rational b(rng.uniform_int(-1000, 1000), rng.uniform_int(1, 999));
    if (a.to_double() < b.to_double() - 1e-9) {
      EXPECT_LT(a, b);
    }
    if (a.to_double() > b.to_double() + 1e-9) {
      EXPECT_GT(a, b);
    }
  }
}

TEST(Rational, LargeValueReductionAvoidsOverflow) {
  // (2^40 / 3) * (3 / 2^40) must reduce exactly to 1.
  const Rational big(1LL << 40, 3);
  const Rational inv(3, 1LL << 40);
  EXPECT_EQ(big * inv, Rational(1));
}

}  // namespace
}  // namespace krsp::util

// End-to-end integration: the full pipeline on every workload generator,
// larger instances than unit tests, and cross-mode consistency.
#include <gtest/gtest.h>

#include "baselines/flow_only.h"
#include "baselines/larac_k.h"
#include "core/solver.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "util/rng.h"

namespace krsp {
namespace {

using core::Instance;
using core::KrspSolver;
using core::SolverOptions;
using core::SolveStatus;

struct GeneratorCase {
  const char* name;
  std::function<graph::Digraph(util::Rng&)> draw;
};

class GeneratorSweep : public testing::TestWithParam<int> {};

std::vector<GeneratorCase> generator_cases() {
  std::vector<GeneratorCase> cases;
  cases.push_back({"erdos_renyi", [](util::Rng& rng) {
                     return gen::erdos_renyi(rng, 14, 0.25);
                   }});
  cases.push_back({"waxman", [](util::Rng& rng) {
                     gen::WaxmanParams p;
                     p.beta = 0.8;
                     p.delay_scale = 20;
                     return gen::waxman(rng, 14, p);
                   }});
  cases.push_back({"grid", [](util::Rng& rng) {
                     return gen::grid(rng, 4, 3);
                   }});
  cases.push_back({"layered_dag", [](util::Rng& rng) {
                     return gen::layered_dag(rng, 3, 4, 0.4, 2);
                   }});
  cases.push_back({"tradeoff_chains", [](util::Rng& rng) {
                     return gen::tradeoff_chains(rng, 3, 3, 6, 5);
                   }});
  return cases;
}

TEST_P(GeneratorSweep, SolverProducesValidBoundedSolutions) {
  const auto cases = generator_cases();
  const auto& gen_case = cases[GetParam()];
  util::Rng rng(337 + GetParam());
  int solved = 0;
  for (int trial = 0; trial < 8; ++trial) {
    core::RandomInstanceOptions opt;
    opt.k = 2;
    opt.delay_slack = 0.3;
    auto inst = core::make_random_instance(rng, opt, [&](util::Rng& r) {
      auto g = gen_case.draw(r);
      return g;
    });
    if (!inst) continue;
    // tradeoff_chains uses t = 1; fix terminals for that generator.
    const auto s = KrspSolver().solve(*inst);
    ASSERT_TRUE(s.has_paths() || s.status == SolveStatus::kInfeasible)
        << gen_case.name << ": " << inst->summary();
    if (!s.has_paths()) continue;
    ++solved;
    EXPECT_TRUE(s.paths.is_valid(*inst)) << gen_case.name;
    EXPECT_LE(static_cast<double>(s.delay),
              1.25 * static_cast<double>(inst->delay_bound) + 1e-9)
        << gen_case.name;
  }
  EXPECT_GT(solved, 2) << gen_case.name;
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, GeneratorSweep,
                         testing::Range(0, 5), [](const auto& param_info) {
                           return std::string(
                               generator_cases()[param_info.param].name);
                         });

TEST(EndToEnd, IspScenarioRoundTripThroughIo) {
  // Generate an ISP topology, persist it, reload, solve — the full user
  // workflow from the README.
  util::Rng rng(347);
  const auto g = gen::isp_like(rng);
  const std::string path = testing::TempDir() + "/krsp_isp.gr";
  graph::write_graph_file(path, g);

  Instance inst;
  inst.graph = graph::read_graph_file(path);
  inst.s = 8;  // first region host
  inst.t = static_cast<graph::VertexId>(inst.graph.num_vertices() - 1);
  inst.k = 2;
  const auto min_delay = core::min_possible_delay(inst);
  ASSERT_TRUE(min_delay.has_value());
  inst.delay_bound = *min_delay + 10;

  const auto s = KrspSolver().solve(inst);
  ASSERT_TRUE(s.has_paths());
  EXPECT_TRUE(s.paths.is_valid(inst));
  EXPECT_LE(s.delay, inst.delay_bound * 5 / 4 + 1);
}

TEST(EndToEnd, ExactVsScaledConsistencyOnModerateWeights) {
  util::Rng rng(349);
  gen::WeightRange w;
  w.cost_max = 30;
  w.delay_max = 30;
  int compared = 0;
  for (int trial = 0; trial < 6; ++trial) {
    core::RandomInstanceOptions opt;
    opt.k = 2;
    opt.delay_slack = 0.3;
    const auto inst = core::random_er_instance(rng, 11, 0.3, opt, w);
    if (!inst) continue;
    SolverOptions exact_opt;
    exact_opt.mode = SolverOptions::Mode::kExactWeights;
    const auto exact = KrspSolver(exact_opt).solve(*inst);
    SolverOptions scaled_opt;
    scaled_opt.mode = SolverOptions::Mode::kScaled;
    scaled_opt.eps1 = scaled_opt.eps2 = 0.25;
    const auto scaled = KrspSolver(scaled_opt).solve(*inst);
    ASSERT_EQ(exact.has_paths(), scaled.has_paths());
    if (!exact.has_paths()) continue;
    ++compared;
    // Scaled may be worse, but by bounded factors only.
    EXPECT_LE(static_cast<double>(scaled.cost),
              1.8 * static_cast<double>(exact.cost) + 4.0);
  }
  EXPECT_GT(compared, 2);
}

TEST(EndToEnd, LargerInstanceCompletesQuickly) {
  util::Rng rng(353);
  core::RandomInstanceOptions opt;
  opt.k = 3;
  opt.delay_slack = 0.3;
  gen::WeightRange w;
  w.cost_max = 8;
  w.delay_max = 8;
  const auto inst = core::random_er_instance(rng, 24, 0.2, opt, w);
  ASSERT_TRUE(inst.has_value());
  const auto s = KrspSolver().solve(*inst);
  ASSERT_TRUE(s.has_paths());
  EXPECT_TRUE(s.paths.is_valid(*inst));
  EXPECT_LT(s.telemetry.wall_seconds, 30.0);
}

}  // namespace
}  // namespace krsp

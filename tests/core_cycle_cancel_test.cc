#include "core/cycle_cancel.h"

#include <gtest/gtest.h>

#include <limits>

#include "baselines/brute_force.h"
#include "core/phase1.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::core {
namespace {

Instance gadget_instance(graph::Delay D = 4, graph::Cost c_opt = 5) {
  const auto fig = gen::figure1_gadget(D, c_opt);
  Instance inst;
  inst.graph = fig.graph;
  inst.s = fig.s;
  inst.t = fig.t;
  inst.k = fig.k;
  inst.delay_bound = fig.delay_bound;
  return inst;
}

PathSet gadget_start() {
  // {s-a-b-c-t, s-t}: edges 0,1,2,3 and 4.
  return PathSet({{0, 1, 2, 3}, {4}});
}

TEST(CycleCancel, GadgetReachesOptimumWithTightCap) {
  const auto inst = gadget_instance();
  const auto r = cancel_cycles(inst, gadget_start(), /*cost_guess=*/5);
  ASSERT_EQ(r.status, CancelStatus::kSuccess);
  EXPECT_EQ(r.cost, 5);
  EXPECT_EQ(r.delay, 4);
  EXPECT_TRUE(r.paths.is_valid(inst));
  EXPECT_EQ(r.telemetry.iterations, 1);
}

TEST(CycleCancel, GadgetWithGenerousCapStillBounded) {
  const auto inst = gadget_instance();
  const auto r = cancel_cycles(inst, gadget_start(), /*cost_guess=*/24);
  ASSERT_EQ(r.status, CancelStatus::kSuccess);
  // Lemma 11 with Ĉ = 24: cost <= C_before_last + Ĉ <= 0 + 24.
  EXPECT_LE(r.cost, 2 * 24);
  EXPECT_LE(r.delay, inst.delay_bound);
}

TEST(CycleCancel, UnsafeModeReproducesFigure1Blowup) {
  const auto inst = gadget_instance(4, 5);
  CycleCancelOptions opt;
  opt.unsafe_no_cap = true;
  const auto r = cancel_cycles(inst, gadget_start(), 0, opt);
  ASSERT_EQ(r.status, CancelStatus::kSuccess);
  EXPECT_EQ(r.cost, 5 * (4 + 1) - 1);  // C_OPT*(D+1) - 1
  EXPECT_EQ(r.delay, 0);
}

TEST(CycleCancel, NearMaxCostGuessSaturatesSafely) {
  // cost_guess = INT64_MAX feeds the finder a near-max cap: the doubling
  // schedule must saturate (no signed wrap) and the rounds·max|c| budget
  // clamp must keep the DP tables graph-sized, so the run behaves exactly
  // like any generous-cap run.
  const auto inst = gadget_instance();
  const auto r = cancel_cycles(inst, gadget_start(),
                               std::numeric_limits<graph::Cost>::max());
  ASSERT_EQ(r.status, CancelStatus::kSuccess);
  EXPECT_LE(r.delay, inst.delay_bound);
  EXPECT_TRUE(r.paths.is_valid(inst));
  // Identical outcome to the largest "reasonable" cap (budget clamp makes
  // every cap above n·max|c| equivalent).
  const auto generous = cancel_cycles(inst, gadget_start(), 1000000);
  ASSERT_EQ(generous.status, CancelStatus::kSuccess);
  EXPECT_EQ(generous.cost, r.cost);
  EXPECT_EQ(generous.delay, r.delay);
}

TEST(CycleCancel, CapTooSmallReportsNoCycle) {
  const auto inst = gadget_instance();
  // Ĉ = 3 < C_OPT = 5: the only delay-reducing cycles cost 5 and 24.
  const auto r = cancel_cycles(inst, gadget_start(), 3);
  EXPECT_EQ(r.status, CancelStatus::kNoBicameralCycle);
}

TEST(CycleCancel, AlreadyFeasibleIsNoop) {
  const auto inst = gadget_instance();
  // Start from the optimum itself: {s-a-b-t, s-t} = edges 0,1,5 and 4.
  const PathSet start({{0, 1, 5}, {4}});
  const auto r = cancel_cycles(inst, start, 5);
  EXPECT_EQ(r.status, CancelStatus::kSuccess);
  EXPECT_EQ(r.telemetry.iterations, 0);
  EXPECT_EQ(r.cost, 5);
}

TEST(CycleCancel, InvalidStartRejected) {
  const auto inst = gadget_instance();
  EXPECT_THROW(cancel_cycles(inst, PathSet({{0, 1, 2, 3}}), 5),
               util::CheckError);
}

// Property: starting from phase 1 with cap = C_OPT (from brute force), the
// cancellation loop terminates with delay <= D and cost <= 2*C_OPT, and the
// ratio trace is monotone (Lemma 12).
TEST(CycleCancel, PropertyLemma11BoundsAtTrueOptCap) {
  util::Rng rng(239);
  int ran = 0;
  for (int trial = 0; trial < 30; ++trial) {
    RandomInstanceOptions opt;
    opt.k = 2;
    opt.delay_slack = 0.25;
    const auto inst = random_er_instance(rng, 9, 0.35, opt);
    if (!inst) continue;
    const auto p1 = phase1_lagrangian(*inst);
    if (p1.status != Phase1Status::kApprox) continue;
    if (p1.delay <= inst->delay_bound) continue;
    const auto best = baselines::brute_force_krsp(*inst);
    ASSERT_TRUE(best.has_value());
    ++ran;
    const auto r = cancel_cycles(*inst, p1.paths, best->cost);
    ASSERT_EQ(r.status, CancelStatus::kSuccess) << inst->summary();
    EXPECT_LE(r.delay, inst->delay_bound);
    EXPECT_LE(r.cost, 2 * best->cost) << inst->summary();
    EXPECT_TRUE(r.paths.is_valid(*inst));
    EXPECT_TRUE(r.telemetry.ratio_monotone) << inst->summary();
  }
  EXPECT_GT(ran, 5);
}

// Property: telemetry type counts equal total iterations.
TEST(CycleCancel, TelemetryConsistency) {
  util::Rng rng(241);
  for (int trial = 0; trial < 10; ++trial) {
    RandomInstanceOptions opt;
    opt.k = 2;
    opt.delay_slack = 0.15;
    const auto inst = random_er_instance(rng, 9, 0.35, opt);
    if (!inst) continue;
    const auto p1 = phase1_lagrangian(*inst);
    if (p1.status != Phase1Status::kApprox || p1.delay <= inst->delay_bound)
      continue;
    const auto best = baselines::brute_force_krsp(*inst);
    if (!best) continue;
    const auto r = cancel_cycles(*inst, p1.paths, best->cost);
    if (r.status != CancelStatus::kSuccess) continue;
    EXPECT_EQ(r.telemetry.type_counts[0] + r.telemetry.type_counts[1] +
                  r.telemetry.type_counts[2],
              r.telemetry.iterations);
  }
}

}  // namespace
}  // namespace krsp::core

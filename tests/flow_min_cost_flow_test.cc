#include "flow/min_cost_flow.h"

#include <gtest/gtest.h>

#include "flow/dinic.h"
#include "graph/generators.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "util/rng.h"

namespace krsp::flow {
namespace {

using graph::Digraph;

TEST(MinCostFlow, SingleCheapestPathChosen) {
  MinCostFlow mcf(3);
  mcf.add_arc(0, 1, 1, 2);
  mcf.add_arc(1, 2, 1, 2);
  mcf.add_arc(0, 2, 1, 10);
  const auto cost = mcf.solve(0, 2, 1);
  ASSERT_TRUE(cost.has_value());
  EXPECT_EQ(*cost, 4);
}

TEST(MinCostFlow, SecondUnitTakesPricierRoute) {
  MinCostFlow mcf(3);
  mcf.add_arc(0, 1, 1, 2);
  mcf.add_arc(1, 2, 1, 2);
  mcf.add_arc(0, 2, 1, 10);
  const auto cost = mcf.solve(0, 2, 2);
  ASSERT_TRUE(cost.has_value());
  EXPECT_EQ(*cost, 14);
}

TEST(MinCostFlow, InsufficientCapacityIsNullopt) {
  MinCostFlow mcf(2);
  mcf.add_arc(0, 1, 1, 1);
  EXPECT_FALSE(mcf.solve(0, 1, 2).has_value());
}

TEST(MinCostFlow, RespectsArcFlowsAndConservation) {
  MinCostFlow mcf(4);
  const int a = mcf.add_arc(0, 1, 2, 1);
  const int b = mcf.add_arc(0, 2, 2, 2);
  const int c = mcf.add_arc(1, 3, 2, 1);
  const int d = mcf.add_arc(2, 3, 2, 2);
  const auto cost = mcf.solve(0, 3, 3);
  ASSERT_TRUE(cost.has_value());
  EXPECT_EQ(*cost, 2 * 2 + 1 * 4);
  EXPECT_EQ(mcf.flow_on(a), 2);
  EXPECT_EQ(mcf.flow_on(b), 1);
  EXPECT_EQ(mcf.flow_on(c), 2);
  EXPECT_EQ(mcf.flow_on(d), 1);
}

TEST(MinCostFlow, RerouteThroughResidualIsCheaper) {
  // Classic case where unit 2 must push flow back across unit 1's path.
  MinCostFlow mcf(4);
  mcf.add_arc(0, 1, 1, 1);
  mcf.add_arc(1, 3, 1, 1);
  mcf.add_arc(0, 2, 1, 1);
  mcf.add_arc(2, 1, 1, 0);
  mcf.add_arc(2, 3, 1, 10);
  mcf.add_arc(1, 2, 1, 0);
  const auto cost = mcf.solve(0, 3, 2);
  ASSERT_TRUE(cost.has_value());
  // Both pairings cost 13: {0-1-3, 0-2-3} or {0-2-1-3, 0-1-2-3}; the
  // point of the test is that the residual reroute is *considered* and the
  // optimum (13) is returned rather than a greedy-blocked failure.
  EXPECT_EQ(*cost, 13);
}

TEST(MinCostFlow, NegativeCostArcRejected) {
  MinCostFlow mcf(2);
  EXPECT_THROW(mcf.add_arc(0, 1, 1, -3), util::CheckError);
}

// Property: MCMF value equals the LP optimum of the arc-flow formulation
// (integrality of the flow polytope), solved with our simplex.
TEST(MinCostFlow, PropertyMatchesLpRelaxation) {
  util::Rng rng(151);
  for (int trial = 0; trial < 12; ++trial) {
    const auto g = gen::erdos_renyi(rng, 7, 0.4);
    const int k = 2;
    if (max_edge_disjoint_paths(g, 0, 6) < k) continue;

    MinCostFlow mcf(g.num_vertices());
    for (const auto& e : g.edges()) mcf.add_arc(e.from, e.to, 1, e.cost);
    const auto mcmf_cost = mcf.solve(0, 6, k);
    ASSERT_TRUE(mcmf_cost.has_value());

    lp::LpModel model;
    for (const auto& e : g.edges())
      model.add_variable(static_cast<double>(e.cost), 0.0, 1.0);
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      std::vector<lp::LinearTerm> terms;
      for (const graph::EdgeId e : g.out_edges(v)) terms.push_back({e, 1.0});
      for (const graph::EdgeId e : g.in_edges(v)) terms.push_back({e, -1.0});
      const double rhs = v == 0 ? k : (v == 6 ? -k : 0);
      model.add_constraint(std::move(terms), lp::Relation::kEq, rhs);
    }
    const auto lp_solution = lp::SimplexSolver().solve(model);
    ASSERT_EQ(lp_solution.status, lp::LpStatus::kOptimal);
    EXPECT_NEAR(lp_solution.objective, static_cast<double>(*mcmf_cost), 1e-6);
  }
}

TEST(MinWeightUnitFlow, ReturnsEdgesOfKDisjointPaths) {
  Digraph g(4);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(1, 3, 1, 1);
  g.add_edge(0, 2, 2, 1);
  g.add_edge(2, 3, 2, 1);
  const auto f = min_weight_unit_flow(g, 0, 3, 2, 1, 0);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->edges.size(), 4u);
  EXPECT_EQ(f->weight, 6);
}

TEST(MinWeightUnitFlow, NulloptWhenNotEnoughPaths) {
  Digraph g(3);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(1, 2, 1, 1);
  EXPECT_FALSE(min_weight_unit_flow(g, 0, 2, 2, 1, 0).has_value());
}

}  // namespace
}  // namespace krsp::flow

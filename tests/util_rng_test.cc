#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace krsp::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-5, 12);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 12);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(8, 0);
  const int trials = 80000;
  for (int i = 0; i < trials; ++i) ++counts[rng.uniform_int(0, 7)];
  for (const int c : counts) {
    EXPECT_GT(c, trials / 8 - trials / 40);
    EXPECT_LT(c, trials / 8 + trials / 40);
  }
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i)
    if (rng.bernoulli(0.25)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(23);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntRejectsInvertedBounds) {
  Rng rng(29);
  EXPECT_THROW(rng.uniform_int(5, 4), CheckError);
}

TEST(Splitmix, KnownProgressionIsStable) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  // Reference value for seed 0 from the published splitmix64 algorithm.
  EXPECT_EQ(a, 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace krsp::util

#include "core/aux_graph.h"

#include <gtest/gtest.h>

#include "core/residual.h"
#include "graph/cycles.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::core {
namespace {

using graph::Cost;
using graph::EdgeId;
using graph::VertexId;

TEST(AuxGraph, VertexDuplicationPerAlgorithm2Step1) {
  graph::Digraph base(3);
  base.add_edge(0, 1, 2, 1);
  const AuxiliaryGraph aux(base, 0, 4, /*positive=*/true);
  // B+1 = 5 layers per base vertex.
  EXPECT_EQ(aux.digraph().num_vertices(), 15);
  EXPECT_EQ(aux.layer_of(aux.vertex_of(1, 3)), 3);
  EXPECT_EQ(aux.base_vertex_of(aux.vertex_of(2, 4)), 2);
}

TEST(AuxGraph, PositiveCostEdgesClimbLayers) {
  graph::Digraph base(2);
  base.add_edge(0, 1, 2, 7);
  const AuxiliaryGraph aux(base, 0, 5, true);
  // Arcs 0^l -> 1^(l+2) for l = 0..3, plus closing arcs 0^l -> 0^0.
  int structural = 0;
  for (EdgeId e = 0; e < aux.digraph().num_edges(); ++e)
    if (aux.base_edge_of(e) != graph::kInvalidEdge) ++structural;
  EXPECT_EQ(structural, 4);
  for (EdgeId e = 0; e < aux.digraph().num_edges(); ++e) {
    if (aux.base_edge_of(e) == graph::kInvalidEdge) continue;
    const auto& he = aux.digraph().edge(e);
    EXPECT_EQ(aux.layer_of(he.to) - aux.layer_of(he.from), 2);
    EXPECT_EQ(he.delay, 7);
  }
}

TEST(AuxGraph, NegativeCostEdgesDescendLayers) {
  graph::Digraph base(2);
  base.add_edge(0, 1, -3, -1);
  const AuxiliaryGraph aux(base, 0, 5, true);
  int structural = 0;
  for (EdgeId e = 0; e < aux.digraph().num_edges(); ++e) {
    if (aux.base_edge_of(e) == graph::kInvalidEdge) continue;
    ++structural;
    const auto& he = aux.digraph().edge(e);
    EXPECT_EQ(aux.layer_of(he.to) - aux.layer_of(he.from), -3);
  }
  EXPECT_EQ(structural, 3);  // l = 3, 4, 5
}

TEST(AuxGraph, ClosingArcsAnchorOnly) {
  graph::Digraph base(3);
  base.add_edge(0, 1, 1, 1);
  base.add_edge(1, 2, 1, 1);
  const AuxiliaryGraph plus(base, 1, 4, true);
  const AuxiliaryGraph minus(base, 1, 4, false);
  int plus_closing = 0, minus_closing = 0;
  for (EdgeId e = 0; e < plus.digraph().num_edges(); ++e)
    if (plus.base_edge_of(e) == graph::kInvalidEdge) {
      ++plus_closing;
      const auto& he = plus.digraph().edge(e);
      EXPECT_EQ(plus.base_vertex_of(he.from), 1);
      EXPECT_EQ(plus.layer_of(he.to), 0);  // H+ closes to layer 0
    }
  for (EdgeId e = 0; e < minus.digraph().num_edges(); ++e)
    if (minus.base_edge_of(e) == graph::kInvalidEdge) {
      ++minus_closing;
      EXPECT_EQ(minus.layer_of(minus.digraph().edge(e).to), 4);  // to layer B
    }
  EXPECT_EQ(plus_closing, 4);
  EXPECT_EQ(minus_closing, 4);
}

// The Figure 2 scenario: residual graph of the path s-x-y-z-t with budget
// B = 6; the bypass arc x->z creates a positive-cost delay-reducing cycle
// that must appear as an H+ cycle through the anchor.
TEST(AuxGraph, Figure2ResidualCycleRepresented) {
  const auto fig = gen::figure2_example();
  const ResidualGraph residual(fig.graph, fig.current_path);
  const auto& rg = residual.digraph();

  const AuxiliaryGraph aux(rg, fig.x, fig.budget, true);
  // Expected base cycle: x->z (cost 4), z->y (-1), y->x (-2): cost 1.
  // In H+: x^0 -> z^4 -> y^3 -> x^1 -> (closing) x^0.
  const VertexId x0 = aux.vertex_of(fig.x, 0);
  // Follow the unique structural arcs.
  bool found_cycle = false;
  for (const EdgeId e1 : aux.digraph().out_edges(x0)) {
    if (aux.base_edge_of(e1) == graph::kInvalidEdge) continue;
    const VertexId v1 = aux.digraph().edge(e1).to;
    if (aux.base_vertex_of(v1) != fig.z || aux.layer_of(v1) != 4) continue;
    for (const EdgeId e2 : aux.digraph().out_edges(v1)) {
      const VertexId v2 = aux.digraph().edge(e2).to;
      if (aux.base_vertex_of(v2) != fig.y || aux.layer_of(v2) != 3) continue;
      for (const EdgeId e3 : aux.digraph().out_edges(v2)) {
        const VertexId v3 = aux.digraph().edge(e3).to;
        if (aux.base_vertex_of(v3) == fig.x && aux.layer_of(v3) == 1)
          found_cycle = true;
      }
    }
  }
  EXPECT_TRUE(found_cycle);
}

// Lemma 15, forward direction (property): any cycle of H projects to a
// closed walk of the base graph whose simple cycles each have |cost| <= B.
TEST(AuxGraph, PropertyLemma15Projection) {
  util::Rng rng(227);
  for (int trial = 0; trial < 10; ++trial) {
    gen::WeightRange w;
    w.cost_min = -3;
    w.cost_max = 3;
    const auto base = gen::erdos_renyi(rng, 6, 0.4, w);
    const Cost B = 4;
    for (const bool positive : {true, false}) {
      const AuxiliaryGraph aux(base, 0, B, positive);
      // Find any cycle in H by DFS (via SCC membership would also work):
      // walk random out-edges until a vertex repeats.
      const auto& h = aux.digraph();
      for (VertexId start = 0; start < h.num_vertices(); ++start) {
        std::vector<EdgeId> stack;
        std::vector<int> pos(h.num_vertices(), -1);
        VertexId at = start;
        pos[at] = 0;
        for (int step = 0; step < 50; ++step) {
          const auto out = h.out_edges(at);
          if (out.empty()) break;
          const EdgeId e = out[rng.uniform_int(0, out.size() - 1)];
          stack.push_back(e);
          at = h.edge(e).to;
          if (pos[at] >= 0) {
            const std::vector<EdgeId> h_cycle(stack.begin() + pos[at],
                                              stack.end());
            const auto walk = aux.project_cycle(h_cycle);
            if (!walk.empty()) {
              for (const auto& cyc :
                   graph::decompose_closed_walk(base, walk)) {
                const Cost c = graph::path_cost(base, cyc);
                EXPECT_LE(c, B);
                EXPECT_GE(c, -B);
              }
            }
            break;
          }
          pos[at] = static_cast<int>(stack.size());
        }
      }
    }
  }
}

// Lemma 15, reverse direction (property): a simple base cycle through the
// anchor with cost in [0, B] and in-range prefix sums appears in H+ — we
// verify by walking its image layer by layer.
TEST(AuxGraph, PropertyLemma15Embedding) {
  util::Rng rng(229);
  int embedded = 0;
  for (int trial = 0; trial < 30; ++trial) {
    gen::WeightRange w;
    w.cost_min = -2;
    w.cost_max = 3;
    const auto base = gen::erdos_renyi(rng, 6, 0.4, w);
    // Find a simple cycle via random walk.
    std::vector<EdgeId> stack;
    std::vector<int> pos(base.num_vertices(), -1);
    VertexId at = 0;
    pos[at] = 0;
    std::vector<EdgeId> cycle;
    for (int step = 0; step < 40 && cycle.empty(); ++step) {
      const auto out = base.out_edges(at);
      if (out.empty()) break;
      const EdgeId e = out[rng.uniform_int(0, out.size() - 1)];
      stack.push_back(e);
      at = base.edge(e).to;
      if (pos[at] >= 0) {
        cycle.assign(stack.begin() + pos[at], stack.end());
      } else {
        pos[at] = static_cast<int>(stack.size());
      }
    }
    if (cycle.empty()) continue;
    const Cost total = graph::path_cost(base, cycle);
    if (total < 0) continue;
    // Anchor at the min-prefix rotation so prefixes stay in [0, ascent].
    Cost prefix = 0, min_prefix = 0;
    std::size_t best_rot = 0;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      prefix += base.edge(cycle[i]).cost;
      if (prefix < min_prefix) {
        min_prefix = prefix;
        best_rot = i + 1;
      }
    }
    std::rotate(cycle.begin(),
                cycle.begin() + static_cast<std::ptrdiff_t>(best_rot % cycle.size()),
                cycle.end());
    Cost ascent = 0;
    prefix = 0;
    for (const EdgeId e : cycle) {
      prefix += base.edge(e).cost;
      ascent = std::max(ascent, prefix);
    }
    const Cost B = ascent;
    const VertexId anchor = base.edge(cycle.front()).from;
    const AuxiliaryGraph aux(base, anchor, B, true);
    // Walk the image of the cycle through H+.
    VertexId hv = aux.vertex_of(anchor, 0);
    bool ok = true;
    Cost layer = 0;
    for (const EdgeId e : cycle) {
      layer += base.edge(e).cost;
      ASSERT_GE(layer, 0);
      ASSERT_LE(layer, B);
      bool stepped = false;
      for (const EdgeId he : aux.digraph().out_edges(hv)) {
        if (aux.base_edge_of(he) == e &&
            aux.layer_of(aux.digraph().edge(he).to) == layer) {
          hv = aux.digraph().edge(he).to;
          stepped = true;
          break;
        }
      }
      if (!stepped) ok = false;
      if (!ok) break;
    }
    EXPECT_TRUE(ok) << "cycle image missing from H+";
    if (ok) ++embedded;
  }
  EXPECT_GT(embedded, 5);
}

}  // namespace
}  // namespace krsp::core

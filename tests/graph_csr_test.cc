#include "graph/csr.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::graph {
namespace {

TEST(CsrView, EmptyGraph) {
  Digraph g(3);
  const CsrView csr(g);
  EXPECT_EQ(csr.num_vertices(), 3);
  EXPECT_EQ(csr.num_arcs(), 0);
  EXPECT_TRUE(csr.out(0).empty());
}

TEST(CsrView, GroupsArcsByTail) {
  Digraph g(3);
  g.add_edge(1, 0, 5, 6);
  g.add_edge(0, 1, 1, 2);
  g.add_edge(0, 2, 3, 4);
  const CsrView csr(g);
  EXPECT_EQ(csr.out(0).size(), 2u);
  EXPECT_EQ(csr.out(1).size(), 1u);
  EXPECT_TRUE(csr.out(2).empty());
  EXPECT_EQ(csr.out(1)[0].to, 0);
  EXPECT_EQ(csr.out(1)[0].cost, 5);
  EXPECT_EQ(csr.out(1)[0].delay, 6);
  EXPECT_EQ(csr.out(1)[0].id, 0);
}

TEST(CsrView, SupportsParallelArcs) {
  Digraph g(2);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(0, 1, 2, 2);
  const CsrView csr(g);
  EXPECT_EQ(csr.out(0).size(), 2u);
}

// Property: CSR's per-vertex arc multiset equals the Digraph's adjacency.
TEST(CsrView, PropertyEquivalentToAdjacency) {
  util::Rng rng(457);
  for (int trial = 0; trial < 20; ++trial) {
    const auto g = gen::erdos_renyi(rng, 15, 0.3);
    const CsrView csr(g);
    EXPECT_EQ(csr.num_arcs(), g.num_edges());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      std::multiset<EdgeId> a, b;
      for (const EdgeId e : g.out_edges(v)) a.insert(e);
      for (const auto& arc : csr.out(v)) {
        b.insert(arc.id);
        EXPECT_EQ(g.edge(arc.id).to, arc.to);
        EXPECT_EQ(g.edge(arc.id).cost, arc.cost);
        EXPECT_EQ(g.edge(arc.id).delay, arc.delay);
        EXPECT_EQ(g.edge(arc.id).from, v);
      }
      EXPECT_EQ(a, b) << "vertex " << v;
    }
  }
}

}  // namespace
}  // namespace krsp::graph

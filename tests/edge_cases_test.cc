// Miscellaneous boundary conditions across the public API: degenerate
// weights, tight budgets, parallel arcs, large-k, and polynomial-oracle
// cross-checks at sizes beyond the brute-force suites.
#include <gtest/gtest.h>

#include "core/solver.h"
#include "flow/dinic.h"
#include "flow/min_cost_flow.h"
#include "graph/generators.h"
#include "paths/pareto.h"
#include "paths/rsp.h"
#include "util/rng.h"

namespace krsp {
namespace {

using core::Instance;
using core::KrspSolver;
using core::SolverOptions;
using core::SolveStatus;

TEST(EdgeCases, AllZeroCostInstance) {
  // C_OPT = 0: the ratio guarantee is vacuous; the solver must still meet
  // the delay bound and not blow up on the zero lower bound.
  Instance inst;
  inst.graph.resize(4);
  inst.graph.add_edge(0, 1, 0, 5);
  inst.graph.add_edge(1, 3, 0, 5);
  inst.graph.add_edge(0, 2, 0, 1);
  inst.graph.add_edge(2, 3, 0, 1);
  inst.graph.add_edge(0, 3, 0, 1);
  inst.s = 0;
  inst.t = 3;
  inst.k = 2;
  inst.delay_bound = 4;
  const auto s = KrspSolver().solve(inst);
  ASSERT_TRUE(s.has_paths());
  EXPECT_EQ(s.cost, 0);
  EXPECT_LE(s.delay, 4);
}

TEST(EdgeCases, AllZeroDelayInstance) {
  // D = 0 with all-zero delays: every structural solution is feasible, so
  // the min-cost flow answer is optimal.
  Instance inst;
  inst.graph.resize(4);
  inst.graph.add_edge(0, 1, 3, 0);
  inst.graph.add_edge(1, 3, 4, 0);
  inst.graph.add_edge(0, 2, 1, 0);
  inst.graph.add_edge(2, 3, 2, 0);
  inst.s = 0;
  inst.t = 3;
  inst.k = 2;
  inst.delay_bound = 0;
  const auto s = KrspSolver().solve(inst);
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_EQ(s.cost, 10);
  EXPECT_EQ(s.delay, 0);
}

TEST(EdgeCases, ParallelArcsUsedAsDistinctPaths) {
  Instance inst;
  inst.graph.resize(2);
  inst.graph.add_edge(0, 1, 1, 1);
  inst.graph.add_edge(0, 1, 2, 2);
  inst.graph.add_edge(0, 1, 3, 3);
  inst.s = 0;
  inst.t = 1;
  inst.k = 3;
  inst.delay_bound = 6;
  const auto s = KrspSolver().solve(inst);
  ASSERT_TRUE(s.has_paths());
  EXPECT_EQ(s.paths.paths().size(), 3u);
  EXPECT_EQ(s.cost, 6);
  EXPECT_EQ(s.delay, 6);
}

TEST(EdgeCases, ExactlyTightBudgetSolvable) {
  util::Rng rng(569);
  int solved = 0;
  for (int trial = 0; trial < 10; ++trial) {
    core::RandomInstanceOptions opt;
    opt.k = 2;
    opt.delay_slack = 0.0;  // D = tightest possible
    const auto inst = core::random_er_instance(rng, 10, 0.35, opt);
    if (!inst) continue;
    SolverOptions sopt;
    sopt.mode = SolverOptions::Mode::kExactWeights;
    const auto s = KrspSolver(sopt).solve(*inst);
    ASSERT_TRUE(s.has_paths()) << inst->summary();
    ++solved;
    EXPECT_EQ(s.delay, inst->delay_bound);  // no slack to give back
  }
  EXPECT_GT(solved, 5);
}

TEST(EdgeCases, LargeKNearConnectivityLimit) {
  util::Rng rng(571);
  const auto g = gen::erdos_renyi(rng, 12, 0.6);
  const int max_k = flow::max_edge_disjoint_paths(g, 0, 11);
  ASSERT_GE(max_k, 3);
  Instance inst;
  inst.graph = g;
  inst.s = 0;
  inst.t = 11;
  inst.k = max_k;  // every disjoint path must be used
  const auto min_delay = core::min_possible_delay(inst);
  ASSERT_TRUE(min_delay.has_value());
  inst.delay_bound = *min_delay * 5 / 4;
  const auto s = KrspSolver().solve(inst);
  ASSERT_TRUE(s.has_paths());
  EXPECT_EQ(static_cast<int>(s.paths.paths().size()), max_k);
  // k+1 must fail structurally.
  inst.k = max_k + 1;
  inst.delay_bound = 1000000;
  EXPECT_EQ(KrspSolver().solve(inst).status,
            SolveStatus::kNoKDisjointPaths);
}

TEST(EdgeCases, SelfLoopEdgesNeverUsed) {
  Instance inst;
  inst.graph.resize(3);
  inst.graph.add_edge(0, 0, 0, 0);  // self loop, free
  inst.graph.add_edge(0, 1, 1, 1);
  inst.graph.add_edge(1, 1, 0, 0);
  inst.graph.add_edge(1, 2, 1, 1);
  inst.s = 0;
  inst.t = 2;
  inst.k = 1;
  inst.delay_bound = 5;
  const auto s = KrspSolver().solve(inst);
  ASSERT_TRUE(s.has_paths());
  EXPECT_EQ(s.paths.paths()[0].size(), 2u);
  EXPECT_TRUE(s.paths.is_valid(inst));
}

// Polynomial-oracle cross-check at n = 25: RSP FPTAS vs exact Pareto
// frontier (both poly, no brute force involved).
TEST(EdgeCases, FptasVsParetoAtMediumSize) {
  util::Rng rng(577);
  int compared = 0;
  for (int trial = 0; trial < 8; ++trial) {
    gen::WeightRange w;
    w.cost_max = 30;
    w.delay_max = 30;
    const auto g = gen::erdos_renyi(rng, 25, 0.12, w);
    const graph::Delay D = 60;
    const auto exact = paths::rsp_via_frontier(g, 0, 24, D);
    const auto approx = paths::rsp_fptas(g, 0, 24, D, 0.25);
    ASSERT_EQ(exact.has_value(), approx.has_value());
    if (!exact) continue;
    ++compared;
    EXPECT_LE(approx->delay, D);
    EXPECT_LE(static_cast<double>(approx->cost),
              1.25 * static_cast<double>(exact->cost) + 1e-9);
  }
  EXPECT_GT(compared, 3);
}

TEST(EdgeCases, McfHandlesZeroCapacityArcs) {
  flow::MinCostFlow mcf(2);
  mcf.add_arc(0, 1, 0, 1);  // useless arc
  mcf.add_arc(0, 1, 1, 5);
  const auto cost = mcf.solve(0, 1, 1);
  ASSERT_TRUE(cost.has_value());
  EXPECT_EQ(*cost, 5);
}

TEST(EdgeCases, HugeWeightsNoOverflow) {
  // Weights near 1e9: combined Lagrangian weights reach ~1e18 — inside
  // int64 but only barely; the solver must stay exact.
  Instance inst;
  inst.graph.resize(4);
  inst.graph.add_edge(0, 1, 1000000000, 1);
  inst.graph.add_edge(1, 3, 1000000000, 1);
  inst.graph.add_edge(0, 2, 1, 1000000000);
  inst.graph.add_edge(2, 3, 1, 1000000000);
  inst.s = 0;
  inst.t = 3;
  inst.k = 2;
  inst.delay_bound = 2000000002;
  const auto s = KrspSolver().solve(inst);
  ASSERT_TRUE(s.has_paths());
  EXPECT_EQ(s.delay, 2000000002);
  EXPECT_EQ(s.cost, 2000000002);
}

}  // namespace
}  // namespace krsp

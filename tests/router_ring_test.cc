// Properties of the router's consistent-hash ring (router/ring.h), the
// three the header promises plus a pinned golden assignment:
//
//   * the point formula (splitmix64 stream seeded with FNV-1a of the
//     shard name) is pinned against an independent reimplementation AND
//     hard-coded golden values — a silent formula change would reshuffle
//     every fleet's cache affinity on upgrade, so it must be loud here;
//   * balance: 128 vnodes keeps the max keyspace share under 2/|shards|;
//   * minimal disruption: removing a shard remaps only its own keys.
//
// Suite names carry "Router" so the CI TSan leg's -R filter includes
// them alongside Engine/Server/Chaos.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "router/ring.h"
#include "util/rng.h"

namespace krsp::router {
namespace {

/// Independent reimplementation of the documented point formula: a
/// splitmix64 stream seeded with FNV-1a(name), advanced vnode+1 steps.
/// Deliberately not calling util:: helpers — this is the *spec*.
std::uint64_t reference_point(const std::string& name, int vnode) {
  std::uint64_t seed = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    seed ^= static_cast<unsigned char>(c);
    seed *= 0x100000001b3ULL;
  }
  std::uint64_t out = 0;
  for (int i = 0; i <= vnode; ++i) {
    seed += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = seed;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    out = z ^ (z >> 31);
  }
  return out;
}

TEST(RouterRing, PointFormulaMatchesReferenceImplementation) {
  for (const std::string name :
       {"alpha", "unix:/tmp/a.sock", "tcp:127.0.0.1:4701", ""})
    for (const int vnode : {0, 1, 7, 127})
      EXPECT_EQ(HashRing::point(name, vnode), reference_point(name, vnode))
          << name << " vnode " << vnode;
}

TEST(RouterRing, GoldenPointsArePinned) {
  // Hard-coded values: if these move, every deployed fleet's shard
  // assignment moves with them. Regenerate only with a migration story.
  EXPECT_EQ(HashRing::point("alpha", 0), 1320619409127077649ULL);
  EXPECT_EQ(HashRing::point("alpha", 1), 10475257336574687358ULL);
  EXPECT_EQ(HashRing::point("beta", 0), 15360936801050238129ULL);
  EXPECT_EQ(HashRing::point("unix:/tmp/a.sock", 0), 3207339653676784350ULL);
}

TEST(RouterRing, GoldenAssignmentIsPinned) {
  const HashRing ring({"alpha", "beta", "gamma"}, 128);
  const std::map<std::uint64_t, std::string> golden = {
      {0x0ULL, "alpha"},
      {0x1ULL, "alpha"},
      {0x2aULL, "alpha"},
      {0x9e3779b97f4a7c15ULL, "gamma"},
      {0xdeadbeefdeadbeefULL, "beta"},
      {0xffffffffffffffffULL, "alpha"},
      {0x1cf977871ULL, "alpha"},
      {0x123456789abcdef0ULL, "alpha"},
  };
  for (const auto& [key, owner] : golden)
    EXPECT_EQ(ring.shard_names()[ring.pick(key)], owner) << "key " << key;
}

TEST(RouterRing, AssignmentIsIndependentOfMembershipOrder) {
  const HashRing a({"alpha", "beta", "gamma", "delta"});
  const HashRing b({"delta", "gamma", "beta", "alpha"});
  util::Rng rng(20260809);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key = rng();
    EXPECT_EQ(a.shard_names()[a.pick(key)], b.shard_names()[b.pick(key)]);
  }
}

TEST(RouterRing, KeyspaceSharesAreBalancedAndSumToOne) {
  const std::vector<std::string> names = {"unix:/tmp/a.sock",
                                          "unix:/tmp/b.sock",
                                          "tcp:10.0.0.1:4701",
                                          "tcp:10.0.0.2:4701"};
  const HashRing ring(names, 128);
  double sum = 0.0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const double share = ring.keyspace_share(i);
    EXPECT_GT(share, 0.0);
    // The balance contract from the header: < 2/|shards| at 128 vnodes.
    EXPECT_LT(share, 2.0 / static_cast<double>(names.size())) << names[i];
    sum += share;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);

  // Sampled ownership agrees with the exact arc accounting.
  std::vector<double> sampled(names.size(), 0.0);
  util::Rng rng(7);
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) sampled[ring.pick(rng())] += 1.0;
  for (std::size_t i = 0; i < names.size(); ++i)
    EXPECT_NEAR(sampled[i] / trials, ring.keyspace_share(i), 0.02)
        << names[i];
}

TEST(RouterRing, RemovingOneShardRemapsOnlyItsOwnKeys) {
  const std::vector<std::string> full = {"a", "b", "c", "d", "e"};
  const HashRing before(full, 128);
  // Drop "c": survivors must keep every key they already owned — that is
  // what keeps N-1 shard caches hot through a drain.
  const HashRing after({"a", "b", "d", "e"}, 128);
  util::Rng rng(99);
  int remapped = 0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t key = rng();
    const std::string& owner_before = before.shard_names()[before.pick(key)];
    const std::string& owner_after = after.shard_names()[after.pick(key)];
    if (owner_before == "c") {
      EXPECT_NE(owner_after, "c");
      ++remapped;
    } else {
      EXPECT_EQ(owner_after, owner_before) << "key " << key;
    }
  }
  // Sanity: the dropped shard actually owned roughly its fair share.
  EXPECT_GT(remapped, trials / 10);
  EXPECT_LT(remapped, trials / 2);
}

TEST(RouterRing, SuccessorsStartAtOwnerAndCoverAllShardsOnce) {
  const HashRing ring({"a", "b", "c", "d"}, 64);
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t key = rng();
    const auto walk = ring.successors(key, 0);
    ASSERT_EQ(walk.size(), 4u);
    EXPECT_EQ(walk[0], ring.pick(key));
    std::vector<bool> seen(4, false);
    for (const std::size_t s : walk) {
      EXPECT_FALSE(seen[s]);
      seen[s] = true;
    }
    // A limited walk is a prefix of the full one.
    const auto limited = ring.successors(key, 2);
    ASSERT_EQ(limited.size(), 2u);
    EXPECT_EQ(limited[0], walk[0]);
    EXPECT_EQ(limited[1], walk[1]);
  }
}

TEST(RouterRing, SingleShardOwnsEverything) {
  const HashRing ring({"only"}, 128);
  EXPECT_EQ(ring.pick(0), 0u);
  EXPECT_EQ(ring.pick(~0ULL), 0u);
  EXPECT_NEAR(ring.keyspace_share(0), 1.0, 1e-12);
  EXPECT_EQ(ring.successors(123, 0), std::vector<std::size_t>{0});
}

TEST(RouterRing, EmptyRingIsEmpty) {
  const HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.num_shards(), 0u);
}

}  // namespace
}  // namespace krsp::router

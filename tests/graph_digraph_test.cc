#include "graph/digraph.h"

#include <gtest/gtest.h>

namespace krsp::graph {
namespace {

TEST(Digraph, StartsEmpty) {
  Digraph g;
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Digraph, AddVerticesAndEdges) {
  Digraph g(3);
  const EdgeId e0 = g.add_edge(0, 1, 5, 7);
  const EdgeId e1 = g.add_edge(1, 2, -3, 2);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.edge(e0).from, 0);
  EXPECT_EQ(g.edge(e0).to, 1);
  EXPECT_EQ(g.edge(e0).cost, 5);
  EXPECT_EQ(g.edge(e0).delay, 7);
  EXPECT_EQ(g.edge(e1).cost, -3);
}

TEST(Digraph, SupportsParallelEdges) {
  Digraph g(2);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(0, 1, 2, 2);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.out_degree(0), 2);
  EXPECT_EQ(g.in_degree(1), 2);
}

TEST(Digraph, AdjacencyIsConsistent) {
  Digraph g(4);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(0, 2, 1, 1);
  g.add_edge(2, 3, 1, 1);
  EXPECT_EQ(g.out_degree(0), 2);
  EXPECT_EQ(g.in_degree(0), 0);
  EXPECT_EQ(g.in_degree(3), 1);
  for (const EdgeId e : g.out_edges(0)) EXPECT_EQ(g.edge(e).from, 0);
  for (const EdgeId e : g.in_edges(3)) EXPECT_EQ(g.edge(e).to, 3);
}

TEST(Digraph, AddVertexGrows) {
  Digraph g(1);
  const VertexId v = g.add_vertex();
  EXPECT_EQ(v, 1);
  EXPECT_EQ(g.num_vertices(), 2);
}

TEST(Digraph, BadEndpointsThrow) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 5, 0, 0), util::CheckError);
  EXPECT_THROW(g.add_edge(-1, 1, 0, 0), util::CheckError);
}

TEST(Digraph, Aggregates) {
  Digraph g(3);
  g.add_edge(0, 1, 4, 10);
  g.add_edge(1, 2, -6, 20);
  EXPECT_EQ(g.total_cost(), -2);
  EXPECT_EQ(g.total_delay(), 30);
  EXPECT_EQ(g.max_abs_cost(), 6);
  EXPECT_EQ(g.max_abs_delay(), 20);
}

TEST(Digraph, ReversedSwapsDirections) {
  Digraph g(3);
  g.add_edge(0, 1, 1, 2);
  g.add_edge(1, 2, 3, 4);
  const Digraph r = g.reversed();
  EXPECT_EQ(r.num_edges(), 2);
  EXPECT_EQ(r.edge(0).from, 1);
  EXPECT_EQ(r.edge(0).to, 0);
  EXPECT_EQ(r.edge(0).cost, 1);
}

TEST(PathHelpers, CostAndDelay) {
  Digraph g(3);
  const EdgeId a = g.add_edge(0, 1, 2, 5);
  const EdgeId b = g.add_edge(1, 2, 3, 7);
  const std::vector<EdgeId> p{a, b};
  EXPECT_EQ(path_cost(g, p), 5);
  EXPECT_EQ(path_delay(g, p), 12);
}

TEST(PathHelpers, IsWalkValidation) {
  Digraph g(4);
  const EdgeId a = g.add_edge(0, 1, 0, 0);
  const EdgeId b = g.add_edge(1, 2, 0, 0);
  const EdgeId c = g.add_edge(2, 0, 0, 0);
  EXPECT_TRUE(is_walk(g, std::vector<EdgeId>{a, b}, 0, 2));
  EXPECT_TRUE(is_walk(g, std::vector<EdgeId>{a, b, c}, 0, 0));
  EXPECT_FALSE(is_walk(g, std::vector<EdgeId>{b, a}, 1, 1));
  EXPECT_TRUE(is_walk(g, std::vector<EdgeId>{}, 3, 3));
  EXPECT_FALSE(is_walk(g, std::vector<EdgeId>{}, 0, 3));
}

TEST(PathHelpers, IsSimplePathRejectsRepeats) {
  Digraph g(4);
  const EdgeId a = g.add_edge(0, 1, 0, 0);
  const EdgeId b = g.add_edge(1, 2, 0, 0);
  const EdgeId c = g.add_edge(2, 1, 0, 0);
  const EdgeId d = g.add_edge(1, 3, 0, 0);
  EXPECT_TRUE(is_simple_path(g, std::vector<EdgeId>{a, b}, 0, 2));
  // 0->1->2->1->3 repeats vertex 1.
  EXPECT_FALSE(is_simple_path(g, std::vector<EdgeId>{a, b, c, d}, 0, 3));
}

}  // namespace
}  // namespace krsp::graph

#include "paths/yen.h"

#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::paths {
namespace {

using graph::Digraph;
using graph::EdgeId;
using graph::VertexId;

TEST(Yen, FirstPathIsShortest) {
  Digraph g(4);
  g.add_edge(0, 1, 1, 0);
  g.add_edge(1, 3, 1, 0);
  g.add_edge(0, 2, 2, 0);
  g.add_edge(2, 3, 2, 0);
  const auto paths = yen_k_shortest(g, 0, 3, 2, EdgeWeight::cost());
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].weight, 2);
  EXPECT_EQ(paths[1].weight, 4);
}

TEST(Yen, WeightsNonDecreasing) {
  util::Rng rng(131);
  const auto g = gen::erdos_renyi(rng, 12, 0.3);
  const auto paths = yen_k_shortest(g, 0, 11, 8, EdgeWeight::cost());
  for (std::size_t i = 1; i < paths.size(); ++i)
    EXPECT_GE(paths[i].weight, paths[i - 1].weight);
}

TEST(Yen, PathsAreDistinctSimplePaths) {
  util::Rng rng(137);
  const auto g = gen::erdos_renyi(rng, 10, 0.35);
  const auto paths = yen_k_shortest(g, 0, 9, 10, EdgeWeight::cost());
  std::set<std::vector<EdgeId>> seen;
  for (const auto& p : paths) {
    EXPECT_TRUE(graph::is_simple_path(g, p.edges, 0, 9));
    EXPECT_TRUE(seen.insert(p.edges).second) << "duplicate path";
  }
}

TEST(Yen, FewerPathsThanRequested) {
  Digraph g(3);
  g.add_edge(0, 1, 1, 0);
  g.add_edge(1, 2, 1, 0);
  const auto paths = yen_k_shortest(g, 0, 2, 5, EdgeWeight::cost());
  EXPECT_EQ(paths.size(), 1u);
}

TEST(Yen, UnreachableGivesEmpty) {
  Digraph g(3);
  g.add_edge(0, 1, 1, 0);
  EXPECT_TRUE(yen_k_shortest(g, 0, 2, 3, EdgeWeight::cost()).empty());
}

TEST(Yen, KZeroGivesEmpty) {
  Digraph g(2);
  g.add_edge(0, 1, 1, 0);
  EXPECT_TRUE(yen_k_shortest(g, 0, 1, 0, EdgeWeight::cost()).empty());
}

// Property: Yen's output equals the K cheapest simple paths found by
// exhaustive enumeration.
TEST(Yen, PropertyMatchesExhaustiveEnumeration) {
  util::Rng rng(139);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = gen::erdos_renyi(rng, 8, 0.35);
    const VertexId s = 0, t = 7;
    // Enumerate all simple path weights.
    std::vector<std::int64_t> all;
    std::vector<bool> on(g.num_vertices(), false);
    const std::function<void(VertexId, std::int64_t)> dfs =
        [&](VertexId v, std::int64_t wsum) {
          if (v == t) {
            all.push_back(wsum);
            return;
          }
          on[v] = true;
          for (const EdgeId e : g.out_edges(v))
            if (!on[g.edge(e).to]) dfs(g.edge(e).to, wsum + g.edge(e).cost);
          on[v] = false;
        };
    dfs(s, 0);
    std::sort(all.begin(), all.end());
    const int K = std::min<int>(6, static_cast<int>(all.size()));
    const auto paths = yen_k_shortest(g, s, t, K, EdgeWeight::cost());
    ASSERT_EQ(static_cast<int>(paths.size()), K);
    for (int i = 0; i < K; ++i) EXPECT_EQ(paths[i].weight, all[i]);
  }
}

}  // namespace
}  // namespace krsp::paths

// Cross-generator parameterized property sweeps: the theorems hold on
// every workload family, not just ER graphs. Also tests the structural
// fact DESIGN.md §3's budget argument relies on (witness prefix
// confinement).
#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "core/phase1.h"
#include "core/residual.h"
#include "core/solver.h"
#include "core/vertex_disjoint.h"
#include "flow/disjoint.h"
#include "graph/generators.h"
#include "graph/transform.h"
#include "util/rng.h"

namespace krsp {
namespace {

using core::Instance;
using core::RandomInstanceOptions;

struct Family {
  const char* name;
  std::function<graph::Digraph(util::Rng&)> draw;
};

std::vector<Family> families() {
  return {
      {"er_sparse",
       [](util::Rng& r) { return gen::erdos_renyi(r, 10, 0.25); }},
      {"er_dense", [](util::Rng& r) { return gen::erdos_renyi(r, 8, 0.5); }},
      {"waxman",
       [](util::Rng& r) {
         gen::WaxmanParams p;
         p.beta = 0.9;
         p.delay_scale = 10;
         return gen::waxman(r, 9, p);
       }},
      {"grid", [](util::Rng& r) { return gen::grid(r, 3, 3); }},
      {"layered",
       [](util::Rng& r) { return gen::layered_dag(r, 3, 3, 0.5, 2); }},
      {"scale_free",
       [](util::Rng& r) { return gen::barabasi_albert(r, 10, 2); }},
  };
}

class FamilySweep : public testing::TestWithParam<int> {
 protected:
  std::optional<Instance> draw_instance(util::Rng& rng, double slack) {
    RandomInstanceOptions opt;
    opt.k = 2;
    opt.delay_slack = slack;
    return core::make_random_instance(rng, opt, families()[GetParam()].draw);
  }
};

// Lemma 5 on every family.
TEST_P(FamilySweep, Phase1ScoreWithinTwo) {
  util::Rng rng(467 + GetParam());
  int checked = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto inst = draw_instance(rng, 0.2);
    if (!inst) continue;
    const auto p1 = core::phase1_lagrangian(*inst);
    if (p1.status != core::Phase1Status::kApprox) continue;
    const auto best = baselines::brute_force_krsp(*inst);
    ASSERT_TRUE(best.has_value());
    ++checked;
    const double score =
        static_cast<double>(p1.delay) /
            std::max(1.0, static_cast<double>(inst->delay_bound)) +
        static_cast<double>(p1.cost) /
            std::max(1.0, static_cast<double>(best->cost));
    EXPECT_LE(score, 2.0 + 1e-9) << families()[GetParam()].name;
  }
  EXPECT_GE(checked, 2) << families()[GetParam()].name;
}

// Full solver bifactor on every family.
TEST_P(FamilySweep, SolverBifactorHolds) {
  util::Rng rng(479 + GetParam());
  core::SolverOptions opt;
  opt.mode = core::SolverOptions::Mode::kExactWeights;
  const core::KrspSolver solver(opt);
  int solved = 0;
  for (int trial = 0; trial < 15; ++trial) {
    const auto inst = draw_instance(rng, 0.25);
    if (!inst) continue;
    const auto best = baselines::brute_force_krsp(*inst);
    ASSERT_TRUE(best.has_value());
    const auto s = solver.solve(*inst);
    ASSERT_TRUE(s.has_paths()) << families()[GetParam()].name;
    ++solved;
    EXPECT_LE(s.delay, inst->delay_bound);
    EXPECT_LE(s.cost, 2 * (best->cost + 1)) << families()[GetParam()].name;
  }
  EXPECT_GE(solved, 3) << families()[GetParam()].name;
}

// Determinism on every family.
TEST_P(FamilySweep, SolverDeterministic) {
  util::Rng rng(487 + GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    const auto inst = draw_instance(rng, 0.3);
    if (!inst) continue;
    const auto a = core::KrspSolver().solve(*inst);
    const auto b = core::KrspSolver().solve(*inst);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.cost, b.cost);
    EXPECT_EQ(a.delay, b.delay);
    if (a.has_paths()) {
      EXPECT_EQ(a.paths.paths(), b.paths.paths());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, FamilySweep, testing::Range(0, 6),
                         [](const auto& param_info) {
                           return std::string(
                               families()[param_info.param].name);
                         });

// DESIGN.md §3 budget argument: every witness cycle (optimal ⊕ current),
// anchored at its min-prefix rotation, keeps layer prefixes within
// [0, C_OPT] — this is what makes budget B = Ĉ complete for H+ (and the
// mirrored statement for H-).
TEST(WitnessConfinement, PrefixAscentBoundedByOptimalCost) {
  util::Rng rng(491);
  int cycles_checked = 0;
  for (int trial = 0; trial < 30; ++trial) {
    RandomInstanceOptions opt;
    opt.k = 2;
    opt.delay_slack = 0.2;
    const auto inst = core::random_er_instance(rng, 9, 0.35, opt);
    if (!inst) continue;
    const auto cur = flow::min_weight_disjoint_paths(
        inst->graph, inst->s, inst->t, inst->k, 1, 0);
    const auto best = baselines::brute_force_krsp(*inst);
    if (!cur || !best) continue;
    std::vector<graph::EdgeId> cur_edges;
    for (const auto& p : cur->paths)
      cur_edges.insert(cur_edges.end(), p.begin(), p.end());
    const core::ResidualGraph residual(inst->graph, cur_edges);
    for (const auto& cycle : core::difference_cycles(
             residual, cur_edges, best->paths.all_edges())) {
      ++cycles_checked;
      // Min-prefix rotation.
      graph::Cost prefix = 0, min_prefix = 0;
      std::size_t rot = 0;
      for (std::size_t i = 0; i < cycle.size(); ++i) {
        prefix += residual.digraph().edge(cycle[i]).cost;
        if (prefix < min_prefix) {
          min_prefix = prefix;
          rot = i + 1;
        }
      }
      auto rotated = cycle;
      std::rotate(rotated.begin(),
                  rotated.begin() +
                      static_cast<std::ptrdiff_t>(rot % rotated.size()),
                  rotated.end());
      graph::Cost ascent = 0;
      prefix = 0;
      for (const auto e : rotated) {
        prefix += residual.digraph().edge(e).cost;
        EXPECT_GE(prefix, 0) << "min-prefix rotation violated";
        ascent = std::max(ascent, prefix);
      }
      EXPECT_LE(ascent, best->cost) << "confinement bound violated";
    }
  }
  EXPECT_GT(cycles_checked, 10);
}

// Vertex-disjoint solver vs brute force on the split instance (exact
// vertex-disjoint oracle).
TEST(VertexDisjointSweep, MatchesSplitGraphOracleBounds) {
  util::Rng rng(499);
  int checked = 0;
  for (int trial = 0; trial < 15; ++trial) {
    RandomInstanceOptions opt;
    opt.k = 2;
    opt.delay_slack = 0.35;
    const auto inst = core::random_er_instance(rng, 8, 0.45, opt);
    if (!inst) continue;
    // Oracle: brute force on the split instance.
    const graph::SplitGraph split(inst->graph);
    Instance split_inst;
    split_inst.graph = split.digraph();
    split_inst.s = split.out_vertex(inst->s);
    split_inst.t = split.in_vertex(inst->t);
    split_inst.k = inst->k;
    split_inst.delay_bound = inst->delay_bound;
    const auto oracle = baselines::brute_force_krsp(split_inst);
    const auto s = core::solve_vertex_disjoint(*inst);
    ASSERT_EQ(oracle.has_value(), s.has_paths());
    if (!oracle) continue;
    ++checked;
    EXPECT_GE(s.cost, oracle->cost);
    EXPECT_LE(s.cost, 2 * (oracle->cost + 1));
    EXPECT_LE(s.delay, inst->delay_bound * 5 / 4 + 1);  // default scaled mode
  }
  EXPECT_GT(checked, 4);
}

}  // namespace
}  // namespace krsp

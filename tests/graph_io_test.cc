#include "graph/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::graph {
namespace {

TEST(GraphIo, RoundTripSmall) {
  Digraph g(3);
  g.add_edge(0, 1, 5, 7);
  g.add_edge(1, 2, 0, 3);
  g.add_edge(2, 0, 9, 1);
  std::stringstream ss;
  write_graph(ss, g);
  const Digraph h = read_graph(ss);
  ASSERT_EQ(h.num_vertices(), 3);
  ASSERT_EQ(h.num_edges(), 3);
  for (EdgeId e = 0; e < 3; ++e) {
    EXPECT_EQ(h.edge(e).from, g.edge(e).from);
    EXPECT_EQ(h.edge(e).to, g.edge(e).to);
    EXPECT_EQ(h.edge(e).cost, g.edge(e).cost);
    EXPECT_EQ(h.edge(e).delay, g.edge(e).delay);
  }
}

TEST(GraphIo, RoundTripRandomProperty) {
  util::Rng rng(53);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = gen::erdos_renyi(rng, 20, 0.2);
    std::stringstream ss;
    write_graph(ss, g);
    const Digraph h = read_graph(ss);
    ASSERT_EQ(h.num_vertices(), g.num_vertices());
    ASSERT_EQ(h.num_edges(), g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      EXPECT_EQ(h.edge(e).from, g.edge(e).from);
      EXPECT_EQ(h.edge(e).cost, g.edge(e).cost);
      EXPECT_EQ(h.edge(e).delay, g.edge(e).delay);
    }
  }
}

TEST(GraphIo, CommentsIgnored) {
  std::stringstream ss("c a comment\np krsp 2 1\nc another\na 0 1 4 5\n");
  const Digraph g = read_graph(ss);
  EXPECT_EQ(g.num_vertices(), 2);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.edge(0).cost, 4);
}

TEST(GraphIo, MissingHeaderThrows) {
  std::stringstream ss("a 0 1 4 5\n");
  EXPECT_THROW(read_graph(ss), util::CheckError);
}

TEST(GraphIo, EdgeCountMismatchThrows) {
  std::stringstream ss("p krsp 2 2\na 0 1 4 5\n");
  EXPECT_THROW(read_graph(ss), util::CheckError);
}

TEST(GraphIo, MalformedArcThrows) {
  std::stringstream ss("p krsp 2 1\na 0 1 nonsense\n");
  EXPECT_THROW(read_graph(ss), util::CheckError);
}

TEST(GraphIo, FileRoundTrip) {
  util::Rng rng(59);
  const auto g = gen::grid(rng, 3, 3);
  const std::string path = testing::TempDir() + "/krsp_io_test.gr";
  write_graph_file(path, g);
  const Digraph h = read_graph_file(path);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
}

TEST(GraphIo, UnreadableFileThrows) {
  EXPECT_THROW(read_graph_file("/nonexistent/nope.gr"), util::CheckError);
}

}  // namespace
}  // namespace krsp::graph

#include "graph/io.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::graph {
namespace {

TEST(GraphIo, RoundTripSmall) {
  Digraph g(3);
  g.add_edge(0, 1, 5, 7);
  g.add_edge(1, 2, 0, 3);
  g.add_edge(2, 0, 9, 1);
  std::stringstream ss;
  write_graph(ss, g);
  const Digraph h = read_graph(ss);
  ASSERT_EQ(h.num_vertices(), 3);
  ASSERT_EQ(h.num_edges(), 3);
  for (EdgeId e = 0; e < 3; ++e) {
    EXPECT_EQ(h.edge(e).from, g.edge(e).from);
    EXPECT_EQ(h.edge(e).to, g.edge(e).to);
    EXPECT_EQ(h.edge(e).cost, g.edge(e).cost);
    EXPECT_EQ(h.edge(e).delay, g.edge(e).delay);
  }
}

TEST(GraphIo, RoundTripRandomProperty) {
  util::Rng rng(53);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = gen::erdos_renyi(rng, 20, 0.2);
    std::stringstream ss;
    write_graph(ss, g);
    const Digraph h = read_graph(ss);
    ASSERT_EQ(h.num_vertices(), g.num_vertices());
    ASSERT_EQ(h.num_edges(), g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      EXPECT_EQ(h.edge(e).from, g.edge(e).from);
      EXPECT_EQ(h.edge(e).cost, g.edge(e).cost);
      EXPECT_EQ(h.edge(e).delay, g.edge(e).delay);
    }
  }
}

TEST(GraphIo, CommentsIgnored) {
  std::stringstream ss("c a comment\np krsp 2 1\nc another\na 0 1 4 5\n");
  const Digraph g = read_graph(ss);
  EXPECT_EQ(g.num_vertices(), 2);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.edge(0).cost, 4);
}

TEST(GraphIo, MissingHeaderThrows) {
  std::stringstream ss("a 0 1 4 5\n");
  EXPECT_THROW(read_graph(ss), util::CheckError);
}

TEST(GraphIo, EdgeCountMismatchThrows) {
  std::stringstream ss("p krsp 2 2\na 0 1 4 5\n");
  EXPECT_THROW(read_graph(ss), util::CheckError);
}

TEST(GraphIo, MalformedArcThrows) {
  std::stringstream ss("p krsp 2 1\na 0 1 nonsense\n");
  EXPECT_THROW(read_graph(ss), util::CheckError);
}

TEST(GraphIo, FileRoundTrip) {
  util::Rng rng(59);
  const auto g = gen::grid(rng, 3, 3);
  const std::string path = testing::TempDir() + "/krsp_io_test.gr";
  write_graph_file(path, g);
  const Digraph h = read_graph_file(path);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
}

TEST(GraphIo, UnreadableFileThrows) {
  EXPECT_THROW(read_graph_file("/nonexistent/nope.gr"), util::CheckError);
}

// ------------------------------------------- positioned parse errors ---
// Regression tests for the line/column error contract: a malformed file
// must name where it is malformed, not just that it is.

template <typename Fn>
std::string error_message(Fn fn) {
  try {
    fn();
  } catch (const util::CheckError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected util::CheckError";
  return "";
}

TEST(GraphIo, MalformedTokenNamesLineColumnAndField) {
  const std::string msg = error_message([] {
    std::stringstream ss("p krsp 3 1\na 0 1 x 5\n");
    (void)read_graph(ss);
  });
  EXPECT_EQ(msg, "line 2, column 7: expected integer for arc cost, got \"x\"");
}

TEST(GraphIo, IntegerOverflowIsDiagnosedNotWrapped) {
  const std::string msg = error_message([] {
    std::stringstream ss("p krsp 2 1\na 0 1 99999999999999999999 5\n");
    (void)read_graph(ss);
  });
  EXPECT_NE(msg.find("line 2, column 7"), std::string::npos) << msg;
  EXPECT_NE(msg.find("arc cost overflows 64 bits"), std::string::npos) << msg;
}

TEST(GraphIo, SemanticErrorsArePositionedToo) {
  const std::string out_of_range = error_message([] {
    std::stringstream ss("p krsp 3 1\na 0 7 1 1\n");
    (void)read_graph(ss);
  });
  EXPECT_NE(out_of_range.find("line 2"), std::string::npos) << out_of_range;
  EXPECT_NE(out_of_range.find("arc endpoint out of range (graph has 3"),
            std::string::npos)
      << out_of_range;

  const std::string bad_tag = error_message([] {
    std::stringstream ss("p foo 2 1\n");
    (void)read_graph(ss);
  });
  EXPECT_NE(bad_tag.find("line 1"), std::string::npos) << bad_tag;
  EXPECT_NE(bad_tag.find("unexpected problem tag \"foo\""), std::string::npos)
      << bad_tag;

  const std::string unknown_kind = error_message([] {
    std::stringstream ss("p krsp 2 0\nz 1 2\n");
    (void)read_graph(ss);
  });
  EXPECT_NE(unknown_kind.find("line 2"), std::string::npos) << unknown_kind;
  EXPECT_NE(unknown_kind.find("unknown line kind 'z'"), std::string::npos)
      << unknown_kind;

  const std::string early_arc = error_message([] {
    std::stringstream ss("c no header yet\na 0 1 1 1\n");
    (void)read_graph(ss);
  });
  EXPECT_NE(early_arc.find("line 2"), std::string::npos) << early_arc;
  EXPECT_NE(early_arc.find("arc line before the problem"), std::string::npos)
      << early_arc;
}

TEST(GraphIo, TrailingContentIsRejectedWithItsPosition) {
  const std::string msg = error_message([] {
    std::stringstream ss("p krsp 2 1 extra\na 0 1 1 1\n");
    (void)read_graph(ss);
  });
  EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unexpected trailing content \"extra\""),
            std::string::npos)
      << msg;
}

TEST(GraphIo, EdgeCountMismatchReportsBothCounts) {
  const std::string msg = error_message([] {
    std::stringstream ss("p krsp 2 2\na 0 1 4 5\n");
    (void)read_graph(ss);
  });
  EXPECT_NE(msg.find("declared 2, read 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
}

TEST(GraphIo, FileErrorsLeadWithThePath) {
  const std::string path = testing::TempDir() + "/krsp_io_bad.gr";
  {
    std::ofstream os(path);
    os << "p krsp 2 1\na 0 1 bad 5\n";
  }
  const std::string msg =
      error_message([&] { (void)read_graph_file(path); });
  EXPECT_EQ(msg.rfind(path + ": line 2", 0), 0u) << msg;
}

}  // namespace
}  // namespace krsp::graph

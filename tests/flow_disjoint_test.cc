#include "flow/disjoint.h"

#include <gtest/gtest.h>

#include <set>

#include "flow/dinic.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::flow {
namespace {

using graph::Digraph;
using graph::EdgeId;

TEST(MinWeightDisjointPaths, SuurballeTrapCase) {
  // Greedy shortest path would take 0-1-3 and block the second path;
  // the optimal pair is 0-1-2-3... this classic requires rerouting.
  Digraph g(4);
  g.add_edge(0, 1, 1, 0);
  g.add_edge(1, 3, 1, 0);
  g.add_edge(0, 2, 2, 0);
  g.add_edge(2, 3, 2, 0);
  g.add_edge(1, 2, 0, 0);
  const auto r = min_weight_disjoint_paths(g, 0, 3, 2, 1, 0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->paths.size(), 2u);
  EXPECT_EQ(r->total_cost, 6);
}

TEST(MinWeightDisjointPaths, InfeasibleWhenCutTooSmall) {
  Digraph g(3);
  g.add_edge(0, 1, 1, 1);
  g.add_edge(1, 2, 1, 1);
  EXPECT_FALSE(min_weight_disjoint_paths(g, 0, 2, 2, 1, 0).has_value());
}

TEST(MinWeightDisjointPaths, DelayObjective) {
  Digraph g(4);
  g.add_edge(0, 1, 1, 9);
  g.add_edge(1, 3, 1, 9);
  g.add_edge(0, 2, 9, 1);
  g.add_edge(2, 3, 9, 1);
  g.add_edge(0, 3, 1, 1);
  const auto r = min_weight_disjoint_paths(g, 0, 3, 2, 0, 1);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->total_delay, 1 + 2);  // direct + the fast pair
}

// Property: paths are pairwise edge-disjoint simple s-t paths; their count
// matches k; and the cost is never better than the LP-certified optimum
// from MCMF (they coincide — disjointness check is the point here).
TEST(MinWeightDisjointPaths, PropertyValidityOnRandomGraphs) {
  util::Rng rng(163);
  int solved = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const auto g = gen::erdos_renyi(rng, 14, 0.25);
    for (const int k : {2, 3}) {
      const auto r = min_weight_disjoint_paths(g, 0, 13, k, 1, 2);
      const bool enough = max_edge_disjoint_paths(g, 0, 13) >= k;
      ASSERT_EQ(r.has_value(), enough);
      if (!r) continue;
      ++solved;
      EXPECT_EQ(static_cast<int>(r->paths.size()), k);
      std::set<EdgeId> used;
      graph::Cost cost = 0;
      graph::Delay delay = 0;
      for (const auto& p : r->paths) {
        EXPECT_TRUE(graph::is_simple_path(g, p, 0, 13));
        for (const EdgeId e : p) EXPECT_TRUE(used.insert(e).second);
        cost += graph::path_cost(g, p);
        delay += graph::path_delay(g, p);
      }
      EXPECT_EQ(cost, r->total_cost);
      EXPECT_EQ(delay, r->total_delay);
    }
  }
  EXPECT_GT(solved, 5);
}

// Property: min-sum disjoint paths under pure cost really is minimal —
// cross-checked against brute-force enumeration on tiny graphs.
TEST(MinWeightDisjointPaths, PropertyOptimalVsBruteForce) {
  util::Rng rng(167);
  for (int trial = 0; trial < 15; ++trial) {
    const auto g = gen::erdos_renyi(rng, 7, 0.45);
    const auto r = min_weight_disjoint_paths(g, 0, 6, 2, 1, 0);
    if (!r) continue;
    // Brute force: all pairs of edge-disjoint simple paths.
    std::vector<std::pair<std::vector<EdgeId>, graph::Cost>> all;
    std::vector<bool> on(g.num_vertices(), false);
    std::vector<EdgeId> stack;
    const std::function<void(graph::VertexId)> dfs = [&](graph::VertexId v) {
      if (v == 6) {
        all.emplace_back(stack, graph::path_cost(g, stack));
        return;
      }
      on[v] = true;
      for (const EdgeId e : g.out_edges(v))
        if (!on[g.edge(e).to]) {
          stack.push_back(e);
          dfs(g.edge(e).to);
          stack.pop_back();
        }
      on[v] = false;
    };
    dfs(0);
    graph::Cost best = r->total_cost + 1;
    for (std::size_t i = 0; i < all.size(); ++i)
      for (std::size_t j = i + 1; j < all.size(); ++j) {
        const std::set<EdgeId> a(all[i].first.begin(), all[i].first.end());
        bool disjoint = true;
        for (const EdgeId e : all[j].first)
          if (a.count(e)) disjoint = false;
        if (disjoint) best = std::min(best, all[i].second + all[j].second);
      }
    EXPECT_EQ(r->total_cost, best);
  }
}

}  // namespace
}  // namespace krsp::flow

#include "baselines/min_max.h"

#include <gtest/gtest.h>

#include "flow/dinic.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::baselines {
namespace {

using graph::Digraph;
using paths::EdgeWeight;

TEST(MinMax, BalancedPairBeatsCheapestSum) {
  // Min-sum picks {1, 9} (sum 10); min-max prefers {5, 6} (sum 11).
  Digraph g(4);
  g.add_edge(0, 1, 1, 0);
  g.add_edge(1, 3, 0, 0);  // path A: 1
  g.add_edge(0, 2, 4, 0);
  g.add_edge(2, 3, 5, 0);  // path B: 9
  g.add_edge(1, 2, 5, 0);  // mixing edge: 0-1-2-3 = 11... build a cleaner one
  const auto exact = min_max_exact(g, 0, 3, 2, EdgeWeight::cost());
  ASSERT_TRUE(exact.has_value());
  const auto approx = min_max_via_min_sum(g, 0, 3, 2, EdgeWeight::cost());
  ASSERT_TRUE(approx.has_value());
  EXPECT_LE(exact->longest, approx->longest);
  EXPECT_LE(approx->longest, 2 * exact->longest);
}

TEST(MinMax, InfeasibleWhenConnectivityLow) {
  Digraph g(3);
  g.add_edge(0, 1, 1, 0);
  g.add_edge(1, 2, 1, 0);
  EXPECT_FALSE(min_max_via_min_sum(g, 0, 2, 2, EdgeWeight::cost()));
  EXPECT_FALSE(min_max_exact(g, 0, 2, 2, EdgeWeight::cost()));
}

TEST(MinMax, ExactFindsTheBalancedOptimum) {
  // Three parallel 1-edge routes with weights 3, 4, 9 and a 2-edge route
  // 0-1-3 with weight 2+2=4... keep it simple: parallel arcs.
  Digraph g(2);
  g.add_edge(0, 1, 3, 0);
  g.add_edge(0, 1, 4, 0);
  g.add_edge(0, 1, 9, 0);
  const auto exact = min_max_exact(g, 0, 1, 2, EdgeWeight::cost());
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->longest, 4);  // {3, 4}
}

// Property: the min-sum reduction is a valid 2-approximation of the exact
// min-max (the [16] bound), and both outputs are disjoint path systems.
TEST(MinMax, PropertyFactor2OnRandomGraphs) {
  util::Rng rng(439);
  int compared = 0;
  for (int trial = 0; trial < 25; ++trial) {
    const auto g = gen::erdos_renyi(rng, 9, 0.35);
    for (const int k : {2, 3}) {
      if (flow::max_edge_disjoint_paths(g, 0, 8) < k) continue;
      const auto exact = min_max_exact(g, 0, 8, k, EdgeWeight::cost());
      const auto approx = min_max_via_min_sum(g, 0, 8, k, EdgeWeight::cost());
      ASSERT_TRUE(exact.has_value());
      ASSERT_TRUE(approx.has_value());
      ++compared;
      EXPECT_LE(exact->longest, approx->longest);
      EXPECT_LE(approx->longest, 2 * exact->longest) << "factor-2 violated";
      // Min-sum is optimal on the sum.
      EXPECT_LE(approx->total, exact->total);
    }
  }
  EXPECT_GT(compared, 10);
}

TEST(MinMax, DelayWeightWorksToo) {
  util::Rng rng(449);
  const auto g = gen::erdos_renyi(rng, 8, 0.55);
  ASSERT_GE(flow::max_edge_disjoint_paths(g, 0, 7), 2);
  const auto r = min_max_via_min_sum(g, 0, 7, 2, EdgeWeight::delay());
  ASSERT_TRUE(r.has_value());
  EXPECT_GT(r->longest, 0);
}

}  // namespace
}  // namespace krsp::baselines

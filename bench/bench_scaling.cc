// Experiment E6 — runtime scaling (Lemma 13 / Theorem 17 vs Theorem 4).
//
// Two sweeps:
//   (a) wall time vs n at fixed density, both modes;
//   (b) wall time vs weight magnitude at fixed n — the pseudo-polynomial
//       exact-weights core degrades with the cost range while the scaled
//       solver stays flat (its state space depends on k*n/eps only).
//
// Usage: bench_scaling [--trials=5] [--seed=6]
#include <iostream>

#include "core/solver.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace krsp;

util::Stats run_mode(core::SolverOptions::Mode mode,
                     const std::vector<core::Instance>& instances) {
  core::SolverOptions opt;
  opt.mode = mode;
  opt.eps1 = opt.eps2 = 0.5;
  const core::KrspSolver solver(opt);
  util::Stats ms;
  for (const auto& inst : instances) {
    const auto s = solver.solve(inst);
    KRSP_CHECK(s.has_paths() || s.status == core::SolveStatus::kInfeasible);
    ms.add(s.telemetry.wall_seconds * 1e3);
  }
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 5));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 6)));
  cli.reject_unknown();

  std::cout << "E6(a): wall time vs n (ER graphs, ~4n edges, weights <= 12, "
            << trials << " instances per row)\n\n";
  util::Table ta({"n", "exact-weights mean ms", "scaled mean ms"});
  for (const int n : {8, 12, 16, 24, 32}) {
    gen::WeightRange w;
    w.cost_max = 12;
    w.delay_max = 12;
    std::vector<core::Instance> instances;
    while (static_cast<int>(instances.size()) < trials) {
      core::RandomInstanceOptions io;
      io.k = 2;
      io.delay_slack = 0.25;
      auto inst = core::random_er_instance(
          rng, n, std::min(0.9, 4.0 / n), io, w);
      if (inst) instances.push_back(std::move(*inst));
    }
    ta.row()
        .cell(n)
        .cell_fp(run_mode(core::SolverOptions::Mode::kExactWeights, instances)
                     .mean(),
                 2)
        .cell_fp(run_mode(core::SolverOptions::Mode::kScaled, instances)
                     .mean(),
                 2);
  }
  ta.print();

  std::cout << "\nE6(b): wall time vs weight magnitude (n = 12, cost/delay "
               "in [1, W])\n\n";
  util::Table tb({"W", "exact-weights mean ms", "scaled mean ms"});
  for (const int W : {8, 32, 128, 512}) {
    gen::WeightRange w;
    w.cost_max = W;
    w.delay_max = W;
    std::vector<core::Instance> instances;
    while (static_cast<int>(instances.size()) < trials) {
      core::RandomInstanceOptions io;
      io.k = 2;
      io.delay_slack = 0.25;
      auto inst = core::random_er_instance(rng, 12, 0.35, io, w);
      if (inst) instances.push_back(std::move(*inst));
    }
    tb.row()
        .cell(W)
        .cell_fp(run_mode(core::SolverOptions::Mode::kExactWeights, instances)
                     .mean(),
                 2)
        .cell_fp(run_mode(core::SolverOptions::Mode::kScaled, instances)
                     .mean(),
                 2);
  }
  tb.print();
  std::cout << "\nExpected shape: both modes grow with n; the exact-weights "
               "mode grows with W (pseudo-polynomial budget dimension) "
               "while the scaled mode flattens once scaling engages.\n";
  return 0;
}

// Experiment E5 — the ε trade-off of Theorem 4.
//
// Fixed Waxman-style instance family with large weights (so scaling
// actually engages); sweep ε and report solution quality (vs the exact-
// weights solver as reference) and wall time. Theorem 4 predicts
// delay <= (1+ε)D, cost <= (2+ε)C_OPT, runtime growing as ε shrinks.
//
// Usage: bench_epsilon [--trials=10] [--n=12] [--seed=5] [--csv=out.csv]
#include <fstream>
#include <iostream>

#include "core/solver.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace krsp;
  const util::Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 10));
  const int n = static_cast<int>(cli.get_int("n", 12));
  const std::string csv_path = cli.get_string("csv", "");
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 5)));
  cli.reject_unknown();
  std::ofstream csv;
  if (!csv_path.empty()) {
    csv.open(csv_path);
    KRSP_CHECK_MSG(csv.good(), "cannot open " << csv_path);
    csv << "eps,instance,cost,ref_cost,delay,delay_bound,ms\n";
  }

  // Pre-draw instances with chunky weights so every ε row sees the same
  // set. Keep only instances where the cancellation phase actually engages
  // (phase 1 alone is neither optimal nor already delay-feasible) — those
  // are the ones ε matters for.
  gen::WeightRange w;
  w.cost_min = 20;
  w.cost_max = 400;
  w.delay_min = 20;
  w.delay_max = 400;
  std::vector<core::Instance> instances;
  std::vector<core::Solution> reference;
  {
    core::SolverOptions ropt;
    ropt.mode = core::SolverOptions::Mode::kExactWeights;
    const core::KrspSolver ref_solver(ropt);
    int attempts = 0;
    while (static_cast<int>(instances.size()) < trials &&
           attempts++ < trials * 100) {
      core::RandomInstanceOptions io;
      io.k = 2;
      io.delay_slack = 0.1;
      auto inst = core::random_er_instance(rng, n, 0.35, io, w);
      if (!inst) continue;
      auto ref = ref_solver.solve(*inst);
      if (!ref.has_paths()) continue;
      if (ref.telemetry.guess_attempts == 0) continue;  // phase-1-only solve
      instances.push_back(std::move(*inst));
      reference.push_back(std::move(ref));
    }
    KRSP_CHECK_MSG(!instances.empty(), "no cancellation-engaging instances");
  }

  std::cout << "E5: epsilon sweep (Theorem 4), n = " << n << ", weights up "
            << "to 400, " << trials << " instances, reference = exact-"
            << "weights solver\n\n";

  util::Table table({"eps", "mean cost/ref", "max cost/ref", "max delay/D",
                     "mean ms", "mean guesses"});
  for (const double eps : {2.0, 1.0, 0.5, 0.25, 0.125}) {
    core::SolverOptions opt;
    opt.mode = core::SolverOptions::Mode::kScaled;
    opt.eps1 = opt.eps2 = eps;
    const core::KrspSolver solver(opt);
    util::Stats ratio, dd, ms, guesses;
    for (std::size_t i = 0; i < instances.size(); ++i) {
      const auto s = solver.solve(instances[i]);
      KRSP_CHECK(s.has_paths());
      if (csv.is_open())
        csv << eps << ',' << i << ',' << s.cost << ',' << reference[i].cost
            << ',' << s.delay << ',' << instances[i].delay_bound << ','
            << s.telemetry.wall_seconds * 1e3 << '\n';
      ratio.add(static_cast<double>(s.cost) /
                std::max(1.0, static_cast<double>(reference[i].cost)));
      dd.add(static_cast<double>(s.delay) /
             std::max(1.0, static_cast<double>(instances[i].delay_bound)));
      ms.add(s.telemetry.wall_seconds * 1e3);
      guesses.add(static_cast<double>(s.telemetry.guess_attempts));
    }
    table.row()
        .cell_fp(eps, 3)
        .cell_fp(ratio.mean())
        .cell_fp(ratio.max())
        .cell_fp(dd.max())
        .cell_fp(ms.mean(), 2)
        .cell_fp(guesses.mean(), 1);
  }
  table.print();
  std::cout << "\nExpected shape: quality approaches the exact-weights "
               "reference as eps shrinks (cost/ref -> 1, delay/D <= 1+eps); "
               "runtime grows as eps shrinks.\n";
  return 0;
}

// Experiment E7 — feasibility and infeasibility detection.
//
// The solver must (a) report kNoKDisjointPaths exactly when the graph lacks
// k disjoint s-t paths (Dinic oracle), and (b) report kInfeasible exactly
// when the min-delay k-flow misses D. Sweeps connectivity and budget
// tightness; any mismatch is a correctness bug and the row would show it.
//
// Usage: bench_feasibility [--trials=40] [--seed=7]
#include <iostream>

#include "core/solver.h"
#include "flow/dinic.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace krsp;
  const util::Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 40));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 7)));
  cli.reject_unknown();

  std::cout << "E7: feasibility detection over " << trials
            << " random ER instances per row (n = 10)\n\n";

  util::Table table({"density p", "k", "budget", "solved", "infeasible",
                     "no-k-paths", "oracle mismatches"});
  for (const double p : {0.10, 0.20, 0.35}) {
    for (const int k : {2, 3}) {
      for (const char* tightness : {"tight-1", "exact", "loose"}) {
        int solved = 0, infeasible = 0, nok = 0, mismatches = 0;
        for (int trial = 0; trial < trials; ++trial) {
          core::Instance inst;
          inst.graph = gen::erdos_renyi(rng, 10, p);
          inst.s = 0;
          inst.t = 9;
          inst.k = k;
          const bool oracle_connected =
              flow::max_edge_disjoint_paths(inst.graph, 0, 9) >= k;
          const auto min_delay = core::min_possible_delay(inst);
          if (min_delay) {
            if (std::string(tightness) == "tight-1")
              inst.delay_bound = std::max<graph::Delay>(0, *min_delay - 1);
            else if (std::string(tightness) == "exact")
              inst.delay_bound = *min_delay;
            else
              inst.delay_bound = *min_delay * 2;
          } else {
            inst.delay_bound = 100;
          }
          const auto s = core::KrspSolver().solve(inst);
          switch (s.status) {
            case core::SolveStatus::kNoKDisjointPaths:
              ++nok;
              if (oracle_connected) ++mismatches;
              break;
            case core::SolveStatus::kInfeasible:
              ++infeasible;
              if (!oracle_connected || !min_delay ||
                  *min_delay <= inst.delay_bound)
                ++mismatches;
              break;
            default:
              if (s.has_paths()) {
                ++solved;
                if (!oracle_connected || s.delay > inst.delay_bound)
                  ++mismatches;
              } else {
                ++mismatches;  // kFailed counts against us
              }
          }
        }
        table.row()
            .cell_fp(p, 2)
            .cell(k)
            .cell(tightness)
            .cell(solved)
            .cell(infeasible)
            .cell(nok)
            .cell(mismatches);
      }
    }
  }
  table.print();
  std::cout << "\nExpected shape: zero oracle mismatches everywhere; "
               "tight-1 rows are all infeasible-or-no-k, loose rows all "
               "solved-or-no-k.\n";
  return 0;
}

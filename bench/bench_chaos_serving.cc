// Experiment E15 — chaos serving: goodput, tail latency, and eventual
// success of the full socket serving stack (SocketServer + SolveService)
// under injected transport faults, driven through the resilient client
// (server/client.h) exactly as a production caller would be.
//
// Usage: bench_chaos_serving [--requests=120] [--pool=6] [--n=12]
//                            [--seed=23] [--threads=0] [--clients=4]
//                            [--retries=16] [--out=BENCH_chaos_serving.json]
//                            [--smoke]
//
// Sweep: fault rates {0, 10%, 30%} of sends drawing a seeded fault
// (garbage frame, mid-frame stall, truncate+close, reset, slow read).
// Each rate runs the same closed-loop request mix against a fresh server;
// clients retry idempotent requests with exponential backoff and
// reconnect after poisoned streams. Measured per rate: goodput (requests
// eventually served per second), end-to-end p99 latency (retries
// included), and the eventual-success fraction.
//
// Every served response is checked bit-identical to a direct
// api::Solver::solve — a retried, reconnected, cache-replayed response
// must carry exactly the same paths as a fault-free one.
//
// Gates (host-independent, checked by scripts/check_bench.py against the
// committed BENCH_chaos_serving.json):
//   * success_frac_10 / success_frac_30 — every idempotent request must
//     eventually succeed under faults (absolute floor 1.0);
//   * goodput_ratio_10 — goodput at 10% faults over goodput at 0%,
//     saturated at 0.5: past that the ratio only measures solve-time
//     noise against fixed fault delays, while the 0.2 floor still
//     catches a retry storm or reconnect livelock collapsing throughput.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/krsp.h"
#include "server/client.h"
#include "server/transport.h"
#include "server/wire.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace krsp;
namespace wire = krsp::server::wire;
using Clock = std::chrono::steady_clock;

struct PoolEntry {
  std::string id;
  std::string request_line;
  api::SolveResult reference;
};

std::vector<PoolEntry> build_pool(int pool_size, int n, std::uint64_t seed) {
  std::vector<PoolEntry> pool;
  pool.reserve(pool_size);
  util::Rng rng(seed);
  api::SolveWorkspace ws;
  while (static_cast<int>(pool.size()) < pool_size) {
    api::RandomInstanceOptions io;
    io.k = 2;
    io.delay_slack = 0.25;
    auto inst = api::random_er_instance(rng, n, 0.35, io);
    if (!inst) continue;
    api::SolveRequest req;
    req.instance = *inst;
    req.mode = api::Mode::kExactWeights;

    PoolEntry entry;
    entry.id = "pool-" + std::to_string(pool.size());
    std::ostringstream kri;
    api::write_instance(kri, *inst);
    entry.request_line = wire::ObjectWriter()
                             .field("op", "solve")
                             .field("id", entry.id)
                             .field("instance", kri.str())
                             .field("mode", "exact")
                             .done();
    entry.reference = api::Solver::solve(req, ws);
    pool.push_back(std::move(entry));
  }
  return pool;
}

bool response_matches(const wire::Value& response,
                      const api::SolveResult& ref) {
  if (response.get_string("status") != api::status_name(ref.status))
    return false;
  if (response.get_int("cost", -1) != (ref.has_paths() ? ref.cost : -1))
    return false;
  if (response.get_int("delay", -1) != (ref.has_paths() ? ref.delay : -1))
    return false;
  const wire::Value* paths = response.find("paths");
  if (paths == nullptr || paths->type != wire::Value::Type::kArray)
    return ref.paths.paths().empty();
  const auto& expected = ref.paths.paths();
  if (paths->items.size() != expected.size()) return false;
  for (std::size_t p = 0; p < expected.size(); ++p) {
    if (paths->items[p].items.size() != expected[p].size()) return false;
    for (std::size_t e = 0; e < expected[p].size(); ++e)
      if (paths->items[p].items[e].integer != expected[p][e]) return false;
  }
  return true;
}

struct PhaseReport {
  double fault_rate = 0.0;
  util::Stats latency_ms;
  std::uint64_t succeeded = 0;
  std::uint64_t failed = 0;
  std::uint64_t mismatches = 0;
  server::ClientCounters client;
  double wall_seconds = 0.0;

  [[nodiscard]] double success_frac() const {
    const auto total = succeeded + failed;
    return total == 0 ? 0.0
                      : static_cast<double>(succeeded) /
                            static_cast<double>(total);
  }
  [[nodiscard]] double goodput() const {
    return wall_seconds <= 0.0
               ? 0.0
               : static_cast<double>(succeeded) / wall_seconds;
  }
};

PhaseReport run_phase(const std::string& socket_path,
                      const std::vector<PoolEntry>& pool, int requests,
                      int clients, int retries, double fault_rate,
                      std::uint64_t fault_seed) {
  struct WorkerReport {
    std::vector<double> latency_ms;
    std::uint64_t succeeded = 0;
    std::uint64_t failed = 0;
    std::uint64_t mismatches = 0;
    server::ClientCounters client;
  };
  std::vector<WorkerReport> reports(clients);
  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      WorkerReport& rep = reports[c];
      server::RetryOptions retry;
      retry.max_retries = retries;
      retry.base_backoff_ms = 1.0;
      retry.max_backoff_ms = 50.0;
      retry.request_timeout_ms = 5000.0;
      retry.jitter_seed = fault_seed + 500 + static_cast<std::uint64_t>(c);
      server::FaultOptions faults;
      faults.seed = fault_seed + static_cast<std::uint64_t>(c);
      faults.fault_rate = fault_rate;
      faults.stall_ms = 5;  // keep wall time bounded; the *ratio* gates
      server::ResilientClient client(socket_path, retry, faults);
      for (int r = c; r < requests; r += clients) {
        const std::size_t i = static_cast<std::size_t>(r) % pool.size();
        const auto sent = Clock::now();
        std::string response_line;
        std::string error;
        if (!client.request(pool[i].request_line, pool[i].id,
                            /*idempotent=*/true, &response_line, &error)) {
          ++rep.failed;
          continue;
        }
        rep.latency_ms.push_back(std::chrono::duration<double, std::milli>(
                                     Clock::now() - sent)
                                     .count());
        const auto response = wire::parse(response_line);
        if (!response.has_value() || !response->get_bool("served", false)) {
          ++rep.failed;
          continue;
        }
        ++rep.succeeded;
        if (!response_matches(*response, pool[i].reference))
          ++rep.mismatches;
      }
      rep.client = client.counters();
    });
  }
  for (auto& t : threads) t.join();

  PhaseReport total;
  total.fault_rate = fault_rate;
  total.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  for (const auto& rep : reports) {
    total.succeeded += rep.succeeded;
    total.failed += rep.failed;
    total.mismatches += rep.mismatches;
    total.client.attempts += rep.client.attempts;
    total.client.retries += rep.client.retries;
    total.client.reconnects += rep.client.reconnects;
    total.client.timeouts += rep.client.timeouts;
    total.client.skipped_lines += rep.client.skipped_lines;
    total.client.give_ups += rep.client.give_ups;
    total.client.faults.injected += rep.client.faults.injected;
    for (const double x : rep.latency_ms) total.latency_ms.add(x);
  }
  return total;
}

void write_json(const std::string& path, int requests, int pool, int n,
                int clients, int retries, bool identical,
                const std::vector<PhaseReport>& sweep) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  const PhaseReport& clean = sweep[0];
  const PhaseReport& faults10 = sweep[1];
  const PhaseReport& faults30 = sweep[2];
  const double goodput_ratio_10 =
      clean.goodput() <= 0.0 ? 0.0 : faults10.goodput() / clean.goodput();
  out << "{\n";
  out << "  \"experiment\": \"E15\",\n";
  out << "  \"config\": {\"requests\": " << requests << ", \"pool\": " << pool
      << ", \"n\": " << n << ", \"clients\": " << clients
      << ", \"retries\": " << retries << "},\n";
  out << "  \"identical\": " << (identical ? "true" : "false") << ",\n";
  out << "  \"sweep\": {\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const PhaseReport& ph = sweep[i];
    out << "    \"rate_" << static_cast<int>(ph.fault_rate * 100 + 0.5)
        << "\": {\"goodput_per_sec\": " << ph.goodput()
        << ", \"p99_ms\": " << ph.latency_ms.percentile(99.0)
        << ", \"retries\": " << ph.client.retries
        << ", \"reconnects\": " << ph.client.reconnects
        << ", \"faults_injected\": " << ph.client.faults.injected << "}"
        << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  out << "  },\n";
  out << "  \"gate\": {\n";
  out << "    \"success_frac_10\": {\"value\": " << faults10.success_frac()
      << ", \"direction\": \"higher\", \"min\": 1.0},\n";
  out << "    \"success_frac_30\": {\"value\": " << faults30.success_frac()
      << ", \"direction\": \"higher\", \"min\": 1.0},\n";
  // Saturated at 0.5 (see file comment): the floor is the real bar, the
  // saturation keeps baseline drift checks from flapping on solve noise.
  out << "    \"goodput_ratio_10\": {\"value\": "
      << std::min(goodput_ratio_10, 0.5)
      << ", \"direction\": \"higher\", \"min\": 0.2}\n";
  out << "  }\n";
  out << "}\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool smoke = cli.get_bool("smoke", false);
  const int requests =
      static_cast<int>(cli.get_int("requests", smoke ? 48 : 120));
  const int pool_size = static_cast<int>(cli.get_int("pool", smoke ? 4 : 6));
  const int n = static_cast<int>(cli.get_int("n", smoke ? 10 : 12));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 23));
  const int threads = static_cast<int>(cli.get_int("threads", 0));
  const int clients = static_cast<int>(cli.get_int("clients", 4));
  const int retries = static_cast<int>(cli.get_int("retries", 16));
  const std::string out_path = cli.get_string("out", "");
  cli.reject_unknown();

  const auto pool = build_pool(pool_size, n, seed);
  std::cout << "E15: chaos serving over a pool of " << pool.size()
            << " ER n=" << n << " instances, " << requests
            << " requests per fault rate, " << clients
            << " resilient client(s), up to " << retries
            << " retries (hardware " << std::thread::hardware_concurrency()
            << " core(s))\n\n";

  const std::vector<double> rates = {0.0, 0.10, 0.30};
  std::vector<PhaseReport> sweep;
  bool all_identical = true;
  for (std::size_t ri = 0; ri < rates.size(); ++ri) {
    // Fresh server per rate so fault handling in one phase cannot warm or
    // wedge the next; the cache is on, as in production serving.
    api::ServerOptions options;
    options.num_threads = threads;
    server::SolveService service(options);
    const std::string socket_path =
        "/tmp/krsp_e15_" + std::to_string(::getpid()) + "_" +
        std::to_string(ri) + ".sock";
    server::SocketServer socket_server(service, socket_path);
    std::string error;
    if (!socket_server.start(&error)) {
      std::cerr << "E15: " << error << "\n";
      return 1;
    }
    std::thread accept_thread([&] { socket_server.serve_forever(); });

    sweep.push_back(run_phase(socket_path, pool, requests, clients, retries,
                              rates[ri], seed * 1000 + ri));
    socket_server.request_stop();
    accept_thread.join();
    service.drain();
    all_identical = all_identical && sweep.back().mismatches == 0;
  }

  util::Table table({"fault rate", "succeeded", "failed", "goodput/s",
                     "p99 ms", "retries", "reconnects", "faults"});
  for (const auto& ph : sweep) {
    table.row()
        .cell_fp(ph.fault_rate, 2)
        .cell(static_cast<std::int64_t>(ph.succeeded))
        .cell(static_cast<std::int64_t>(ph.failed))
        .cell_fp(ph.goodput(), 1)
        .cell_fp(ph.latency_ms.percentile(99.0), 2)
        .cell(static_cast<std::int64_t>(ph.client.retries))
        .cell(static_cast<std::int64_t>(ph.client.reconnects))
        .cell(static_cast<std::int64_t>(ph.client.faults.injected));
  }
  table.print();
  std::cout << "\nNote: on a single-core host absolute goodput is one "
               "worker's solve rate; the gated quantities (success "
               "fractions, goodput ratio) are host-independent.\n";

  if (out_path.empty() && smoke)
    std::cout << "(smoke run: pass --out=... to emit the gate JSON)\n";
  if (!out_path.empty())
    write_json(out_path, requests, pool_size, n, clients, retries,
               all_identical, sweep);

  int rc = 0;
  for (const auto& ph : sweep) {
    if (ph.failed > 0) {
      std::cerr << "FAIL: " << ph.failed << " request(s) never succeeded at "
                << "fault rate " << ph.fault_rate << "\n";
      rc = 1;
    }
    if (ph.fault_rate > 0.0 && ph.client.faults.injected == 0) {
      std::cerr << "FAIL: fault rate " << ph.fault_rate
                << " injected nothing — the chaos schedule is inert\n";
      rc = 1;
    }
  }
  if (!all_identical) {
    std::cerr << "FAIL: served results diverged from direct solves under "
                 "faults\n";
    rc = 1;
  }
  if (rc == 0)
    std::cout << "all " << rates.size() * static_cast<std::size_t>(requests)
              << " requests eventually served bit-identical under every "
                 "fault rate\n";
  return rc;
}

// Experiment E12 — batch engine throughput (solves/sec) vs thread count,
// against a sequential single-workspace baseline, plus the workspace-reuse
// ablation. Every engine run is checked bit-identical to the sequential
// baseline, so the numbers cannot come from cut corners.
//
// Usage: bench_throughput [--requests=64] [--n=16] [--seed=12]
//                         [--threads=1,2,4,8] [--smoke]
//
// --smoke shrinks everything for CI: a small batch at 1 and 2 threads,
// still asserting bit-identity and workspace reuse.
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/krsp.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace krsp;
using Clock = std::chrono::steady_clock;

std::vector<int> parse_thread_list(const std::string& csv) {
  std::vector<int> out;
  std::istringstream is(csv);
  std::string part;
  while (std::getline(is, part, ','))
    if (!part.empty()) out.push_back(std::stoi(part));
  return out;
}

std::vector<api::SolveRequest> build_batch(int requests, int n,
                                           std::uint64_t seed) {
  std::vector<api::SolveRequest> batch;
  batch.reserve(requests);
  util::Rng rng(seed);
  while (static_cast<int>(batch.size()) < requests) {
    api::RandomInstanceOptions io;
    io.k = 2 + static_cast<int>(batch.size() % 2);
    io.delay_slack = 0.2;
    auto inst = api::random_er_instance(rng, n, 0.35, io);
    if (!inst) continue;
    api::SolveRequest req;
    req.instance = std::move(*inst);
    req.mode = batch.size() % 2 == 0 ? api::Mode::kExactWeights
                                     : api::Mode::kScaled;
    req.tag = "req-" + std::to_string(batch.size());
    batch.push_back(std::move(req));
  }
  return batch;
}

bool identical(const std::vector<api::SolveResult>& a,
               const std::vector<api::SolveResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].status != b[i].status || a[i].cost != b[i].cost ||
        a[i].delay != b[i].delay ||
        a[i].paths.paths() != b[i].paths.paths() ||
        a[i].telemetry.cost_guess_used != b[i].telemetry.cost_guess_used)
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool smoke = cli.get_bool("smoke", false);
  const int requests =
      static_cast<int>(cli.get_int("requests", smoke ? 12 : 64));
  const int n = static_cast<int>(cli.get_int("n", smoke ? 12 : 16));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 12));
  const std::vector<int> thread_counts = parse_thread_list(
      cli.get_string("threads", smoke ? "1,2" : "1,2,4,8"));
  cli.reject_unknown();

  const auto batch = build_batch(requests, n, seed);
  std::cout << "E12: batch engine throughput, " << batch.size()
            << " mixed exact/scaled requests on ER n=" << n << " (hardware "
            << std::thread::hardware_concurrency() << " core(s))\n\n";

  // Sequential baseline: one thread of straight Solver::solve calls with a
  // single reused workspace — no pool, no locks. This is the honest "what
  // you had before the engine" number.
  api::SolveWorkspace baseline_ws;
  std::vector<api::SolveResult> baseline;
  baseline.reserve(batch.size());
  const auto t0 = Clock::now();
  for (const auto& req : batch)
    baseline.push_back(api::Solver::solve(req, baseline_ws));
  const double base_wall =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const double base_rate = static_cast<double>(batch.size()) / base_wall;

  util::Table table({"config", "threads", "solves/sec", "speedup vs seq",
                     "identical"});
  table.row()
      .cell("sequential baseline")
      .cell(1)
      .cell_fp(base_rate, 1)
      .cell_fp(1.0, 2)
      .cell("ref");

  bool all_identical = true;
  auto run_engine = [&](const char* label, int threads, bool reuse) {
    api::Engine engine(
        api::EngineOptions{.num_threads = threads, .reuse_workspaces = reuse});
    // Warm-up pass populates per-worker workspaces; timed pass measures the
    // steady state a long-lived service would see.
    (void)engine.solve_batch(batch);
    const auto start = Clock::now();
    const auto results = engine.solve_batch(batch);
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();
    const bool same = identical(results, baseline);
    all_identical = all_identical && same;
    const double rate = static_cast<double>(batch.size()) / wall;
    table.row()
        .cell(label)
        .cell(threads)
        .cell_fp(rate, 1)
        .cell_fp(rate / base_rate, 2)
        .cell(same ? "yes" : "NO");
  };

  for (const int t : thread_counts) run_engine("engine, reuse on", t, true);
  // Ablation: fresh workspace per request at the largest pool size.
  run_engine("engine, reuse OFF (ablation)", thread_counts.back(), false);

  table.print();
  std::cout << "\nNote: speedup is bounded by physical cores; on a "
               "single-core host all configs are expected near 1.0x and the "
               "run only validates determinism + reuse overhead.\n";

  if (!all_identical) {
    std::cerr << "FAIL: engine results diverged from sequential baseline\n";
    return 1;
  }
  std::cout << "all engine runs bit-identical to sequential baseline\n";
  return 0;
}

// Experiment E18 — what the sharded fleet buys: aggregate throughput vs
// shard count when the working set exceeds one shard's result cache,
// tail behaviour under overload with per-shard admission, and the
// routed-equals-direct identity contract.
//
// Usage: bench_fleet --corpus=data/corpus [--queries=64] [--cache=48]
//                    [--requests=600] [--workers=2] [--trials=3]
//                    [--overload-workers=8] [--overload-requests=160]
//                    [--out=BENCH_fleet.json] [--smoke]
//
// Topology: in-process per the E15 idiom — each shard is a real
// SolveService behind a real SocketServer on its own /tmp Unix socket
// with an accept thread; the Router (router/router.h) fronts them
// through real ResilientClient forwards, and worker threads drive the
// router's LineHandler surface exactly as krsp_router's connection
// threads do. The workload is Q distinct delay_bound overrides of the
// corpus ISP-backbone topology (protocol v2): every query is a distinct
// fingerprint with near-identical solve cost.
//
// Why throughput scales on *any* host, single-core included: Q is chosen
// above one shard's LRU capacity C, so a one-shard fleet round-robining
// the stream is a cyclic-eviction worst case — every request is a full
// solve. Two shards hash-split the working set (consistent-hash
// affinity), each half fits in C, and steady state is all cache hits —
// the shard-count win is cache *capacity*, not extra cores, exactly the
// fleet-scaling claim E18 gates.
//
// Phases:
//   identity   — every query routed through a fresh 2-shard fleet vs a
//                direct catalog solve on a fresh service; byte-identical
//                after dropping timing fields and the router-injected
//                served_by. Gates the perf numbers.
//   throughput — closed-loop round-robin stream at shard counts {1,2,4}:
//                aggregate req/s, p99, hit rate.
//                Each point is the best of --trials fresh-fleet runs: a
//                phase lasts milliseconds on the smoke config, so any
//                single run's throughput is scheduler noise and the max
//                is the stable capacity estimate.
//   overload   — cache off, tiny per-shard queue, more workers than the
//                fleet can absorb: per-shard admission must shed load
//                (structured rejections, never hangs) while served
//                requests keep a bounded p99.
//
// Gates (host-independent, checked by scripts/check_bench.py against the
// committed BENCH_fleet.json):
//   * throughput_x2_vs_x1  — 2-shard over 1-shard aggregate throughput,
//     saturated at 4.0: the measured ratio sits near 5x on a quiet host,
//     so every healthy run reports exactly 4.0 and baseline-drift checks
//     never gate on hit-path scheduling noise. Floor 1.7 is the
//     acceptance bar from the cache-capacity argument above.
//   * fleet_served_frac    — every throughput-phase request must be
//     served (healthy fleet, floor 1.0).
//   * overload_rejection_rate — the overload phase must actually shed
//     (floor 0.02); a fleet that absorbs everything into unbounded
//     queues has no admission control.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/krsp.h"
#include "router/router.h"
#include "server/transport.h"
#include "server/wire.h"
#include "store/catalog.h"
#include "util/check.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace krsp;
namespace wire = krsp::server::wire;
using Clock = std::chrono::steady_clock;

constexpr const char* kTopology = "isp-backbone";

/// One distinct query: the corpus topology with a delay_bound override.
/// Raising the bound keeps every query feasible while giving each its
/// own fingerprint (and so its own cache entry and ring key). Full
/// solves (mode=exact by default) keep the miss path expensive relative
/// to the wire, which is what the capacity-scaling phase measures.
std::string query_line(graph::Delay delay_bound, const std::string& id,
                       const std::string& mode) {
  return wire::ObjectWriter()
      .field("op", "solve")
      .field("id", id)
      .field("topology", kTopology)
      .field("delay_bound", static_cast<std::int64_t>(delay_bound))
      .field("mode", mode)
      .done();
}

/// Drops the timing fields and the router-injected served_by so routed
/// and direct response lines compare with operator==.
std::string strip_variable(std::string line) {
  for (const char* key :
       {"\"queue_ms\":", "\"total_ms\":", "\"served_by\":"}) {
    const std::size_t pos = line.find(key);
    if (pos == std::string::npos) continue;
    const std::size_t end = line.find_first_of(",}", pos + std::strlen(key));
    KRSP_CHECK(end != std::string::npos && pos > 0 && line[pos - 1] == ',');
    line.erase(pos - 1, end - (pos - 1));
  }
  return line;
}

/// A fleet of S in-process shards behind one Router: real sockets, real
/// forwards, torn down in order (router clients first, then servers).
class Fleet {
 public:
  Fleet(int num_shards, const store::TopologyCatalog& catalog,
        std::size_t cache_capacity, std::size_t max_pending) {
    static std::atomic<int> fleet_counter{0};
    const int fleet_id = fleet_counter.fetch_add(1);
    std::vector<server::Endpoint> endpoints;
    for (int s = 0; s < num_shards; ++s) {
      auto shard = std::make_unique<ShardProcess>();
      shard->path = "/tmp/krsp_e18_" + std::to_string(::getpid()) + "_" +
                    std::to_string(fleet_id) + "_" + std::to_string(s) +
                    ".sock";
      api::ServerOptions options;
      options.num_threads = 1;
      options.cache_capacity = cache_capacity;
      options.cache_shards = 1;  // one LRU per shard: capacity is exact
      options.max_pending = max_pending;
      shard->service.emplace(options);
      shard->server.emplace(*shard->service, shard->path, &catalog);
      std::string error;
      KRSP_CHECK_MSG(shard->server->start(&error), "shard start: " << error);
      shard->accept_thread =
          std::thread([srv = &*shard->server] { srv->serve_forever(); });
      endpoints.push_back(server::Endpoint::unix_socket(shard->path));
      shards_.push_back(std::move(shard));
    }
    router::RouterOptions options;
    options.probe_interval_ms = 0;  // membership is static per phase
    router_.emplace(endpoints, &catalog, options);
  }

  ~Fleet() {
    router_.reset();  // drop forward clients before their servers
    for (auto& shard : shards_) {
      shard->server->request_stop();
      shard->accept_thread.join();
      shard->service->drain();
    }
  }

  [[nodiscard]] router::Router& router() { return *router_; }
  [[nodiscard]] api::ServeStats shard_stats(std::size_t i) {
    return shards_[i]->service->stats();
  }

 private:
  struct ShardProcess {
    std::string path;
    std::optional<server::SolveService> service;
    std::optional<server::SocketServer> server;
    std::thread accept_thread;
  };

  std::vector<std::unique_ptr<ShardProcess>> shards_;
  std::optional<router::Router> router_;
};

struct PhaseReport {
  int shards = 0;
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;
  std::uint64_t errors = 0;
  util::Stats latency_ms;
  double wall_seconds = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  [[nodiscard]] std::uint64_t total() const {
    return served + rejected + errors;
  }
  [[nodiscard]] double throughput() const {
    return wall_seconds <= 0.0
               ? 0.0
               : static_cast<double>(total()) / wall_seconds;
  }
  [[nodiscard]] double served_frac() const {
    return total() == 0
               ? 0.0
               : static_cast<double>(served) / static_cast<double>(total());
  }
  [[nodiscard]] double rejection_rate() const {
    return total() == 0
               ? 0.0
               : static_cast<double>(rejected) / static_cast<double>(total());
  }
  [[nodiscard]] double hit_rate() const {
    const auto lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(lookups);
  }
};

/// Closed-loop drive of `requests` round-robin queries through the
/// router with `workers` threads; per-request outcome + latency.
PhaseReport run_phase(Fleet& fleet, const std::vector<std::string>& queries,
                      int requests, int workers, int num_shards,
                      bool warmup) {
  router::Router& router = fleet.router();
  if (warmup)
    for (const auto& line : queries) (void)router.handle_line(line);

  struct WorkerReport {
    std::uint64_t served = 0;
    std::uint64_t rejected = 0;
    std::uint64_t errors = 0;
    std::vector<double> latency_ms;
  };
  std::vector<WorkerReport> reports(workers);
  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      WorkerReport& rep = reports[w];
      for (int r = w; r < requests; r += workers) {
        const auto& line =
            queries[static_cast<std::size_t>(r) % queries.size()];
        const auto sent = Clock::now();
        const std::string response_line = router.handle_line(line);
        rep.latency_ms.push_back(std::chrono::duration<double, std::milli>(
                                     Clock::now() - sent)
                                     .count());
        const auto response = wire::parse(response_line);
        if (!response.has_value() || !response->get_bool("ok", false))
          ++rep.errors;
        else if (response->get_bool("served", false))
          ++rep.served;
        else
          ++rep.rejected;  // per-shard admission: a structured shed
      }
    });
  }
  for (auto& t : threads) t.join();

  PhaseReport total;
  total.shards = num_shards;
  total.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  for (const auto& rep : reports) {
    total.served += rep.served;
    total.rejected += rep.rejected;
    total.errors += rep.errors;
    for (const double x : rep.latency_ms) total.latency_ms.add(x);
  }
  for (int s = 0; s < num_shards; ++s) {
    const auto stats = fleet.shard_stats(static_cast<std::size_t>(s));
    total.cache_hits += stats.cache_hits;
    total.cache_misses += stats.cache_misses;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool smoke = cli.get_bool("smoke", false);
  const std::string corpus = cli.get_string("corpus", "data/corpus");
  const int queries = static_cast<int>(cli.get_int("queries", smoke ? 16 : 64));
  const auto cache = static_cast<std::size_t>(
      cli.get_int("cache", smoke ? 12 : 48));
  const int requests =
      static_cast<int>(cli.get_int("requests", smoke ? 320 : 600));
  const int workers = static_cast<int>(cli.get_int("workers", 2));
  const int trials = static_cast<int>(cli.get_int("trials", 3));
  const int overload_workers =
      static_cast<int>(cli.get_int("overload-workers", 8));
  const int overload_requests = static_cast<int>(
      cli.get_int("overload-requests", smoke ? 64 : 160));
  const std::string mode = cli.get_string("mode", "exact");
  const std::string out_path = cli.get_string("out", "");
  cli.reject_unknown();
  KRSP_CHECK_MSG(static_cast<std::size_t>(queries) > cache,
                 "need queries > cache for the capacity-scaling phase");

  const store::TopologyCatalog catalog = store::TopologyCatalog::load(corpus);
  const auto ref = catalog.find(kTopology);
  KRSP_CHECK_MSG(ref != nullptr, "corpus " << corpus << " has no "
                                           << kTopology << ".krspb");
  const graph::Delay base_bound = ref->instance->delay_bound;
  std::vector<std::string> lines;
  lines.reserve(static_cast<std::size_t>(queries));
  for (int q = 0; q < queries; ++q)
    lines.push_back(
        query_line(base_bound + q, "q-" + std::to_string(q), mode));

  const std::vector<int> shard_counts = {1, 2, 4};
  std::cout << "E18: " << queries << " distinct " << kTopology
            << " queries (delay_bound " << base_bound << ".."
            << base_bound + queries - 1 << "), per-shard cache " << cache
            << " entries, " << requests << " requests/phase, " << workers
            << " worker(s), shard counts {";
  for (std::size_t i = 0; i < shard_counts.size(); ++i)
    std::cout << (i ? "," : "") << shard_counts[i];
  std::cout << "} (hardware " << std::thread::hardware_concurrency()
            << " core(s))\n\n";

  // --- identity: routed (2-shard fleet) vs direct, both cold.
  bool identical = true;
  {
    Fleet fleet(2, catalog, cache, 256);
    server::SolveService direct_service(api::ServerOptions{.num_threads = 1});
    server::LocalTransport direct(direct_service, &catalog);
    for (const auto& line : lines) {
      const std::string routed =
          strip_variable(fleet.router().handle_line(line));
      const std::string expected = strip_variable(direct.request(line));
      if (routed != expected) {
        identical = false;
        std::cout << "  MISMATCH:\n    routed: " << routed
                  << "\n    direct: " << expected << "\n";
      }
    }
    std::cout << "  identity: routed and direct responses "
              << (identical ? "byte-identical" : "DIVERGED") << " over "
              << lines.size() << " queries\n\n";
  }

  // --- throughput vs shard count, best of --trials fresh-fleet runs.
  std::vector<PhaseReport> sweep;
  for (const int s : shard_counts) {
    PhaseReport best;
    for (int trial = 0; trial < trials; ++trial) {
      Fleet fleet(s, catalog, cache, 256);
      PhaseReport r = run_phase(fleet, lines, requests, workers, s,
                                /*warmup=*/true);
      if (trial == 0 || r.throughput() > best.throughput()) best = r;
    }
    sweep.push_back(best);
  }

  // --- overload: cache off, tiny per-shard queue, excess workers.
  PhaseReport overload;
  {
    const int s = 2;
    Fleet fleet(s, catalog, /*cache_capacity=*/0, /*max_pending=*/2);
    overload = run_phase(fleet, lines, overload_requests, overload_workers, s,
                         /*warmup=*/false);
  }

  util::Table table({"shards", "served", "rejected", "req/s", "p50 ms",
                     "p99 ms", "hit rate"});
  for (const auto& ph : sweep) {
    table.row()
        .cell(static_cast<std::int64_t>(ph.shards))
        .cell(static_cast<std::int64_t>(ph.served))
        .cell(static_cast<std::int64_t>(ph.rejected))
        .cell_fp(ph.throughput(), 1)
        .cell_fp(ph.latency_ms.percentile(50.0), 3)
        .cell_fp(ph.latency_ms.percentile(99.0), 3)
        .cell_fp(ph.hit_rate(), 3);
  }
  table.print();
  const double x1 = sweep[0].throughput();
  const double x2 = sweep[1].throughput();
  const double ratio = x1 <= 0.0 ? 0.0 : x2 / x1;
  double min_served_frac = 1.0;
  for (const auto& ph : sweep)
    min_served_frac = std::min(min_served_frac, ph.served_frac());
  std::cout << "\n  2-shard vs 1-shard aggregate throughput: " << ratio
            << "x (cache capacity, not cores: 1 shard thrashes "
            << queries << " queries through " << cache << " entries)\n";
  std::cout << "  overload (" << overload_workers << " workers, queue 2, "
            << "cache off): served " << overload.served << ", shed "
            << overload.rejected << " ("
            << overload.rejection_rate() * 100.0 << "%), served p99 "
            << overload.latency_ms.percentile(99.0) << " ms\n";

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << "{\n";
    out << "  \"experiment\": \"E18\",\n";
    out << "  \"config\": {\"queries\": " << queries << ", \"cache\": "
        << cache << ", \"requests\": " << requests << ", \"workers\": "
        << workers << ", \"trials\": " << trials
        << ", \"overload_workers\": " << overload_workers
        << ", \"mode\": \"" << mode << "\"},\n";
    out << "  \"identical\": " << (identical ? "true" : "false") << ",\n";
    out << "  \"sweep\": {\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const PhaseReport& ph = sweep[i];
      out << "    \"shards_" << ph.shards
          << "\": {\"throughput_per_sec\": " << ph.throughput()
          << ", \"p99_ms\": " << ph.latency_ms.percentile(99.0)
          << ", \"hit_rate\": " << ph.hit_rate() << "}"
          << (i + 1 < sweep.size() ? "," : "") << "\n";
    }
    out << "  },\n";
    out << "  \"overload\": {\"served\": " << overload.served
        << ", \"rejected\": " << overload.rejected
        << ", \"p99_ms\": " << overload.latency_ms.percentile(99.0) << "},\n";
    out << "  \"gate\": {\n";
    // Saturated at 4.0 (see file comment): the 1.7 floor is the bar, the
    // cap keeps baseline drift checks off the hit-path noise.
    out << "    \"throughput_x2_vs_x1\": {\"value\": "
        << std::min(ratio, 4.0)
        << ", \"direction\": \"higher\", \"min\": 1.7},\n";
    out << "    \"fleet_served_frac\": {\"value\": " << min_served_frac
        << ", \"direction\": \"higher\", \"min\": 1.0},\n";
    out << "    \"overload_rejection_rate\": {\"value\": "
        << overload.rejection_rate()
        << ", \"direction\": \"higher\", \"min\": 0.02}\n";
    out << "  }\n";
    out << "}\n";
    std::cout << "wrote " << out_path << "\n";
  }

  int rc = 0;
  if (!identical) {
    std::cerr << "FAIL: routed responses diverged from direct solves\n";
    rc = 1;
  }
  if (min_served_frac < 1.0) {
    std::cerr << "FAIL: a healthy fleet dropped requests (served_frac "
              << min_served_frac << ")\n";
    rc = 1;
  }
  if (overload.rejected == 0) {
    std::cerr << "FAIL: overload phase shed nothing — per-shard admission "
                 "is inert\n";
    rc = 1;
  }
  if (overload.errors > 0) {
    std::cerr << "FAIL: " << overload.errors
              << " transport-level error(s) under overload\n";
    rc = 1;
  }
  if (rc == 0)
    std::cout << "\nall phases passed: identity, " << sweep.size()
              << "-point shard sweep, overload shedding\n";
  return rc;
}

// Experiment E16 — what the zero-copy topology catalog buys at the wire:
// bytes per request and steady-state requests/sec for the same solve
// stream issued as protocol v1 (inline .kri instance in every request)
// versus protocol v2 (catalog topology id). The workload is the
// committed corpus under data/corpus/ — the graphs are 16k-edge scale,
// so the v1 tax (serialize + ship + reparse + rehash the graph on every
// request) is the dominant cost and the catalog's O(1) reference path is
// the payoff being measured.
//
// Usage: bench_catalog --corpus=data/corpus [--requests=300]
//                      [--mode=phase1] [--out=BENCH_catalog.json] [--smoke]
//
// Phases:
//   identity   — every topology is solved once through each protocol
//                form on fresh services; the response lines must be
//                byte-identical after dropping the timing fields. This
//                is the v1/v2 contract, and it gates the perf numbers.
//   wire       — request-line sizes for both forms, per topology.
//   throughput — `requests` round-robin solves per form against a
//                cache-enabled service (steady-state serving: after the
//                first round everything is a cache hit, so the measured
//                difference is exactly the per-request graph tax).
//
// Gate metrics (host-independent ratios, checked by check_bench.py):
//   wire_bytes_ratio    — mean v1 request bytes / mean v2 request bytes.
//   catalog_rps_speedup — v2 requests/sec / v1 requests/sec.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/krsp.h"
#include "core/io.h"
#include "server/service.h"
#include "server/transport.h"
#include "server/wire.h"
#include "store/catalog.h"
#include "util/check.h"
#include "util/cli.h"

namespace {

using namespace krsp;
using Clock = std::chrono::steady_clock;

std::string inline_line(const core::Instance& inst, const std::string& id,
                        const std::string& mode) {
  std::ostringstream kri;
  core::write_instance(kri, inst);
  return server::wire::ObjectWriter()
      .field("op", "solve")
      .field("id", id)
      .field("instance", kri.str())
      .field("mode", mode)
      .done();
}

std::string topology_line(const std::string& topology, const std::string& id,
                          const std::string& mode) {
  return server::wire::ObjectWriter()
      .field("op", "solve")
      .field("id", id)
      .field("topology", topology)
      .field("mode", mode)
      .done();
}

/// Drops the per-request timing fields — the only legitimately
/// nondeterministic response bytes — so lines can be compared directly.
std::string strip_timing(std::string line) {
  for (const char* key : {"\"queue_ms\":", "\"total_ms\":"}) {
    const std::size_t pos = line.find(key);
    if (pos == std::string::npos) continue;
    const std::size_t end = line.find_first_of(",}", pos + std::strlen(key));
    KRSP_CHECK(end != std::string::npos && pos > 0 && line[pos - 1] == ',');
    line.erase(pos - 1, end - (pos - 1));
  }
  return line;
}

/// Serves `lines[r % lines.size()]` for r in [0, requests) on a fresh
/// cache-enabled single-thread service; returns requests/sec. One
/// untimed warmup round populates the cache first, so the measurement is
/// pure steady state and does not depend on how many requests amortize
/// the cold solves (which would make the ratio drift with --requests).
double run_form(const std::vector<std::string>& lines, int requests,
                const store::TopologyCatalog* catalog) {
  server::SolveService service(api::ServerOptions{.num_threads = 1});
  server::LocalTransport transport(service, catalog);
  for (const auto& line : lines) (void)transport.request(line);
  const auto start = Clock::now();
  for (int r = 0; r < requests; ++r) {
    const std::string resp =
        transport.request(lines[static_cast<std::size_t>(r) % lines.size()]);
    KRSP_CHECK_MSG(resp.find("\"served\":true") != std::string::npos,
                   "request not served: " << resp.substr(0, 200));
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return static_cast<double>(requests) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool smoke = cli.get_bool("smoke", false);
  const std::string corpus = cli.get_string("corpus", "data/corpus");
  const int requests =
      static_cast<int>(cli.get_int("requests", smoke ? 60 : 300));
  const std::string mode = cli.get_string("mode", "phase1");
  const std::string out_path = cli.get_string("out", "");
  cli.reject_unknown();

  const store::TopologyCatalog catalog = store::TopologyCatalog::load(corpus);
  KRSP_CHECK_MSG(!catalog.empty(), "no .krspb topologies in " << corpus);
  std::cout << "E16: " << catalog.size() << " corpus topolog"
            << (catalog.size() == 1 ? "y" : "ies") << " from " << corpus
            << ", " << requests << " requests per protocol form, mode="
            << mode << "\n\n";

  // Build both request forms for every topology, with identical ids so
  // the response lines can be compared byte for byte.
  std::vector<std::string> v1_lines, v2_lines;
  double v1_bytes = 0.0, v2_bytes = 0.0;
  std::cout << "  topology              n      m   v1 bytes  v2 bytes\n";
  for (const auto& info : catalog.list()) {
    const auto ref = catalog.find(info.id);
    const std::string rid = "req-" + info.id;
    v1_lines.push_back(inline_line(*ref->instance, rid, mode));
    v2_lines.push_back(topology_line(info.id, rid, mode));
    v1_bytes += static_cast<double>(v1_lines.back().size());
    v2_bytes += static_cast<double>(v2_lines.back().size());
    std::printf("  %-18s %6lld %6lld %10zu %9zu\n", info.id.c_str(),
                static_cast<long long>(info.num_vertices),
                static_cast<long long>(info.num_edges),
                v1_lines.back().size(), v2_lines.back().size());
  }
  const double count = static_cast<double>(v1_lines.size());
  const double wire_ratio = v1_bytes / v2_bytes;
  std::cout << "\n  mean request bytes: v1 " << v1_bytes / count << ", v2 "
            << v2_bytes / count << "  (ratio " << wire_ratio << "x)\n";

  // --- identity: cold solve of every topology through each form.
  bool identical = true;
  for (std::size_t i = 0; i < v1_lines.size(); ++i) {
    server::SolveService v1_service(api::ServerOptions{.num_threads = 1});
    server::SolveService v2_service(api::ServerOptions{.num_threads = 1});
    server::LocalTransport v1(v1_service);
    server::LocalTransport v2(v2_service, &catalog);
    const std::string a = strip_timing(v1.request(v1_lines[i]));
    const std::string b = strip_timing(v2.request(v2_lines[i]));
    if (a != b) {
      identical = false;
      std::cout << "  MISMATCH on request " << i << ":\n    v1: " << a
                << "\n    v2: " << b << "\n";
    }
  }
  std::cout << "  identity: v1 and v2 responses "
            << (identical ? "byte-identical" : "DIVERGED") << "\n\n";

  // --- throughput: steady-state serving of the same stream per form.
  const double v1_rps = run_form(v1_lines, requests, nullptr);
  const double v2_rps = run_form(v2_lines, requests, &catalog);
  const double speedup = v2_rps / v1_rps;
  std::cout << "  throughput: v1 " << v1_rps << " req/s, v2 " << v2_rps
            << " req/s  (speedup " << speedup << "x)\n";

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << "{\n";
    out << "  \"experiment\": \"E16\",\n";
    out << "  \"config\": {\"topologies\": " << catalog.size()
        << ", \"requests\": " << requests << ", \"mode\": \"" << mode
        << "\"},\n";
    out << "  \"identical\": " << (identical ? "true" : "false") << ",\n";
    out << "  \"wire_bytes\": {\"v1_mean\": " << v1_bytes / count
        << ", \"v2_mean\": " << v2_bytes / count << "},\n";
    out << "  \"requests_per_sec\": {\"v1\": " << v1_rps
        << ", \"v2\": " << v2_rps << "},\n";
    out << "  \"gate\": {\n";
    // The corpus graphs are ~16k edges, so inline requests are ~400KB
    // against ~100B for a topology reference; 10x is the acceptance
    // floor, the measured ratio is ~3 orders of magnitude.
    out << "    \"wire_bytes_ratio\": {\"value\": " << wire_ratio
        << ", \"direction\": \"higher\", \"min\": 10.0},\n";
    // Saturate like E14's cache_speedup: past ~50x the ratio measures
    // v1-side parse noise, not the catalog path. 2x is the bar.
    out << "    \"catalog_rps_speedup\": {\"value\": "
        << std::min(speedup, 50.0)
        << ", \"direction\": \"higher\", \"min\": 2.0}\n";
    out << "  }\n";
    out << "}\n";
    std::cout << "wrote " << out_path << "\n";
  }
  return identical ? 0 : 1;
}

// Experiment E1 — approximation quality against the exact optimum.
//
// Small random instances (brute-force oracle feasible), both solver modes.
// Reports the distribution of cost/C_OPT and delay/D — the paper's Lemma 3
// bounds these by 2 and 1 (Theorem 4: 2+eps2 and 1+eps1).
//
// Usage: bench_quality [--trials=60] [--n=10] [--seed=1]
#include <iostream>

#include "baselines/brute_force.h"
#include "core/solver.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace krsp;
  const util::Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 60));
  const int n = static_cast<int>(cli.get_int("n", 10));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));
  cli.reject_unknown();

  std::cout << "E1: solution quality vs brute-force optimum (n = " << n
            << ", " << trials << " feasible instances per row)\n\n";

  struct Config {
    const char* name;
    core::SolverOptions::Mode mode;
    const char* generator;
    int k;
  };
  const std::vector<Config> configs = {
      {"exact-weights", core::SolverOptions::Mode::kExactWeights, "er", 2},
      {"exact-weights", core::SolverOptions::Mode::kExactWeights, "waxman", 2},
      {"scaled eps=.5", core::SolverOptions::Mode::kScaled, "er", 2},
      {"scaled eps=.5", core::SolverOptions::Mode::kScaled, "waxman", 2},
      {"exact-weights", core::SolverOptions::Mode::kExactWeights, "er", 3},
      {"scaled eps=.5", core::SolverOptions::Mode::kScaled, "er", 3},
      {"exact-weights", core::SolverOptions::Mode::kExactWeights,
       "scale-free", 2},
      {"scaled eps=.5", core::SolverOptions::Mode::kScaled, "scale-free", 2},
  };

  util::Table table({"algorithm", "graphs", "k", "mean c/OPT", "p95 c/OPT",
                     "max c/OPT", "mean d/D", "max d/D", "optimal found"});
  for (const auto& config : configs) {
    core::SolverOptions opt;
    opt.mode = config.mode;
    opt.eps1 = opt.eps2 = 0.5;
    const core::KrspSolver solver(opt);

    util::Stats cost_ratio, delay_ratio;
    int optimal = 0, done = 0;
    while (done < trials) {
      core::RandomInstanceOptions ropt;
      ropt.k = config.k;
      ropt.delay_slack = 0.25;
      auto inst = core::make_random_instance(rng, ropt, [&](util::Rng& r) {
        if (std::string(config.generator) == "waxman") {
          gen::WaxmanParams p;
          p.beta = 0.8;
          p.delay_scale = 15;
          return gen::waxman(r, n, p);
        }
        if (std::string(config.generator) == "scale-free")
          return gen::barabasi_albert(r, n, 2);
        return gen::erdos_renyi(r, n, 0.35);
      });
      if (!inst) continue;
      const auto best = baselines::brute_force_krsp(*inst);
      if (!best) continue;
      const auto s = solver.solve(*inst);
      if (!s.has_paths()) continue;
      ++done;
      cost_ratio.add(static_cast<double>(s.cost) /
                     std::max(1.0, static_cast<double>(best->cost)));
      delay_ratio.add(static_cast<double>(s.delay) /
                      std::max(1.0, static_cast<double>(inst->delay_bound)));
      if (s.cost == best->cost) ++optimal;
    }
    table.row()
        .cell(config.name)
        .cell(config.generator)
        .cell(config.k)
        .cell_fp(cost_ratio.mean())
        .cell_fp(cost_ratio.percentile(95))
        .cell_fp(cost_ratio.max())
        .cell_fp(delay_ratio.mean())
        .cell_fp(delay_ratio.max())
        .cell_fp(100.0 * optimal / trials, 1);
  }
  table.print();
  std::cout << "\nExpected shape: max c/OPT <= 2 (exact) / 2+eps (scaled); "
               "max d/D <= 1 (exact) / 1+eps (scaled); most instances "
               "solved to optimality.\n";
  return 0;
}

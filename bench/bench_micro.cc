// Experiment E8 — substrate microbenchmarks (google-benchmark).
//
// Throughput of the building blocks: Dijkstra, Bellman–Ford, Dinic, MCMF,
// residual construction, auxiliary-graph construction, the bicameral
// product-graph search, and the simplex.
#include <benchmark/benchmark.h>

#include "core/aux_graph.h"
#include "core/bicameral.h"
#include "core/residual.h"
#include "flow/dinic.h"
#include "flow/disjoint.h"
#include "graph/generators.h"
#include "lp/simplex.h"
#include "paths/bellman_ford.h"
#include "paths/dijkstra.h"
#include "util/rng.h"

namespace {

using namespace krsp;

graph::Digraph make_graph(int n) {
  util::Rng rng(12345);
  return gen::erdos_renyi(rng, n, std::min(0.9, 6.0 / n));
}

void BM_Dijkstra(benchmark::State& state) {
  const auto g = make_graph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        paths::dijkstra(g, 0, paths::EdgeWeight::cost()));
  }
}
BENCHMARK(BM_Dijkstra)->Arg(64)->Arg(256)->Arg(1024);

void BM_BellmanFord(benchmark::State& state) {
  const auto g = make_graph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        paths::bellman_ford(g, 0, paths::EdgeWeight::cost()));
  }
}
BENCHMARK(BM_BellmanFord)->Arg(64)->Arg(256);

void BM_DinicUnitCaps(benchmark::State& state) {
  const auto g = make_graph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        flow::max_edge_disjoint_paths(g, 0, g.num_vertices() - 1));
  }
}
BENCHMARK(BM_DinicUnitCaps)->Arg(64)->Arg(256)->Arg(1024);

void BM_MinCostKFlow(benchmark::State& state) {
  const auto g = make_graph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::min_weight_disjoint_paths(
        g, 0, g.num_vertices() - 1, 3, 1, 1));
  }
}
BENCHMARK(BM_MinCostKFlow)->Arg(64)->Arg(256)->Arg(1024);

void BM_ResidualBuild(benchmark::State& state) {
  const auto g = make_graph(static_cast<int>(state.range(0)));
  const auto f =
      flow::min_weight_disjoint_paths(g, 0, g.num_vertices() - 1, 2, 1, 0);
  std::vector<graph::EdgeId> edges;
  if (f)
    for (const auto& p : f->paths)
      edges.insert(edges.end(), p.begin(), p.end());
  for (auto _ : state) {
    core::ResidualGraph residual(g, edges);
    benchmark::DoNotOptimize(residual.digraph().num_edges());
  }
}
BENCHMARK(BM_ResidualBuild)->Arg(64)->Arg(256);

void BM_AuxGraphBuild(benchmark::State& state) {
  const auto g = make_graph(32);
  const auto budget = state.range(0);
  for (auto _ : state) {
    core::AuxiliaryGraph aux(g, 0, budget, true);
    benchmark::DoNotOptimize(aux.digraph().num_edges());
  }
}
BENCHMARK(BM_AuxGraphBuild)->Arg(8)->Arg(32)->Arg(128);

// Bicameral search over capped/uncapped queries × pruned/ablation kernels.
// range(0) = n; range(1): 0 = capped, 1 = uncapped; range(2): 0 = pruned,
// 1 = disable_pruning (full state space, legacy nested tables).
void BM_BicameralSearch(benchmark::State& state) {
  util::Rng rng(777);
  const auto g = gen::erdos_renyi(rng, static_cast<int>(state.range(0)),
                                  std::min(0.9, 5.0 / state.range(0)));
  const auto f =
      flow::min_weight_disjoint_paths(g, 0, g.num_vertices() - 1, 2, 1, 0);
  if (!f) {
    state.SkipWithError("instance lacks 2 disjoint paths");
    return;
  }
  std::vector<graph::EdgeId> edges;
  for (const auto& p : f->paths) edges.insert(edges.end(), p.begin(), p.end());
  const core::ResidualGraph residual(g, edges);
  core::BicameralQuery q;
  q.cap = 20;
  q.ratio = util::Rational(-1, 4);
  q.enforce_cap = state.range(1) == 0;
  core::BicameralCycleFinder::Options opt;
  opt.disable_pruning = state.range(2) != 0;
  const core::BicameralCycleFinder finder(opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(finder.find(residual, q));
  }
}
BENCHMARK(BM_BicameralSearch)
    ->ArgNames({"n", "uncapped", "ablation"})
    // Pruned kernel across sizes, capped (the production query shape).
    ->Args({12, 0, 0})
    ->Args({20, 0, 0})
    ->Args({32, 0, 0})
    // Ablation counterparts.
    ->Args({12, 0, 1})
    ->Args({20, 0, 1})
    ->Args({32, 0, 1})
    // Uncapped (budget schedule runs to the total-cost clamp) both ways.
    ->Args({20, 1, 0})
    ->Args({20, 1, 1})
    ->Args({32, 1, 0})
    ->Args({32, 1, 1});

void BM_SimplexNetworkLp(benchmark::State& state) {
  const auto g = make_graph(static_cast<int>(state.range(0)));
  lp::LpModel model;
  for (const auto& e : g.edges())
    model.add_variable(static_cast<double>(e.cost), 0.0, 1.0);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    std::vector<lp::LinearTerm> terms;
    for (const graph::EdgeId e : g.out_edges(v)) terms.push_back({e, 1.0});
    for (const graph::EdgeId e : g.in_edges(v)) terms.push_back({e, -1.0});
    const double rhs = v == 0 ? 2 : (v == g.num_vertices() - 1 ? -2 : 0);
    model.add_constraint(std::move(terms), lp::Relation::kEq, rhs);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp::SimplexSolver().solve(model));
  }
}
BENCHMARK(BM_SimplexNetworkLp)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();

// Experiment E10 — packet-level validation of the provisioning story.
//
// Across random Waxman instances: provision with (a) the kRSP solver and
// (b) the delay-blind min-cost flow; route three urgency classes over the
// paths; simulate; report the rate at which each class's p95 latency meets
// its SLA. The static kRSP delay guarantee should translate into simulated
// SLA attainment for the strict classes where delay-blind provisioning
// fails.
//
// Usage: bench_simulation [--trials=12] [--n=20] [--seed=10]
#include <iostream>

#include "baselines/flow_only.h"
#include "core/priority_routing.h"
#include "core/solver.h"
#include "graph/generators.h"
#include "sim/network_sim.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace krsp;

struct ClassOutcome {
  util::Stats p95;
  std::vector<double> per_instance;  // p95 per instance, for head-to-head
};

void run_one(const core::Instance& inst, const core::PathSet& paths,
             std::vector<ClassOutcome>& outcomes) {
  // Per-path budget share plus a forwarding allowance (~1 tick per hop of
  // serialization the static model does not price).
  const auto forwarding_allowance =
      static_cast<graph::Delay>(inst.graph.num_vertices() / 2);
  const graph::Delay base_sla =
      inst.delay_bound / std::max(1, static_cast<int>(paths.paths().size()));
  std::vector<core::TrafficClass> classes = {
      {"voice", base_sla + forwarding_allowance},
      {"video", base_sla * 2 + forwarding_allowance},
      {"bulk", inst.delay_bound + forwarding_allowance}};
  classes.resize(std::min(classes.size(), paths.paths().size()));
  const auto assignment = core::assign_by_urgency(inst.graph, paths, classes);

  sim::LinkParams params;
  params.transmission_time = 1;
  params.queue_capacity = 128;
  sim::NetworkSimulator simulator(inst.graph, params, 4242);
  const double gaps[] = {8.0, 6.0, 4.0};
  for (std::size_t i = 0; i < assignment.assignments.size(); ++i) {
    sim::FlowSpec flow;
    flow.name = assignment.assignments[i].class_name;
    flow.route = paths.paths()[assignment.assignments[i].path_index];
    flow.mean_gap = gaps[i];
    flow.poisson = i > 0;
    flow.packet_budget = 5000;
    simulator.add_flow(std::move(flow));
  }
  const auto result = simulator.run(60000);
  for (std::size_t i = 0; i < result.flows.size(); ++i) {
    const auto& f = result.flows[i];
    if (f.latency.count() == 0) continue;
    const double p95 = f.latency.percentile(95);
    outcomes[i].p95.add(p95);
    outcomes[i].per_instance.push_back(p95);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 12));
  const int n = static_cast<int>(cli.get_int("n", 20));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 10)));
  cli.reject_unknown();

  std::vector<ClassOutcome> krsp_out(3), blind_out(3);
  int used = 0, attempts = 0;
  while (used < trials && attempts++ < trials * 30) {
    core::RandomInstanceOptions opt;
    opt.k = 3;
    opt.delay_slack = 0.15;
    const auto inst = core::make_random_instance(rng, opt, [&](util::Rng& r) {
      gen::WaxmanParams p;
      p.beta = 0.8;
      p.delay_scale = 25;
      return gen::waxman(r, n, p);
    });
    if (!inst) continue;
    const auto krsp_solution = core::KrspSolver().solve(*inst);
    const auto blind = baselines::min_cost_flow_baseline(*inst);
    if (!krsp_solution.has_paths() || !blind.has_paths()) continue;
    ++used;
    run_one(*inst, krsp_solution.paths, krsp_out);
    run_one(*inst, blind.paths, blind_out);
  }

  std::cout << "E10: simulated p95 latency, kRSP vs delay-blind "
            << "provisioning, over " << used << " Waxman instances (n = "
            << n << ", k = 3)\n\n";
  util::Table table({"class", "kRSP mean p95", "delay-blind mean p95",
                     "latency saved %", "kRSP wins (head-to-head) %"});
  const char* names[] = {"voice (fastest path)", "video (middle path)",
                         "bulk (slowest path)"};
  for (int i = 0; i < 3; ++i) {
    int wins = 0, ties = 0;
    const auto rounds = std::min(krsp_out[i].per_instance.size(),
                                 blind_out[i].per_instance.size());
    for (std::size_t j = 0; j < rounds; ++j) {
      if (krsp_out[i].per_instance[j] < blind_out[i].per_instance[j]) ++wins;
      if (krsp_out[i].per_instance[j] == blind_out[i].per_instance[j]) ++ties;
    }
    const double kr = krsp_out[i].p95.count() ? krsp_out[i].p95.mean() : 0.0;
    const double bl = blind_out[i].p95.count() ? blind_out[i].p95.mean() : 0.0;
    table.row()
        .cell(names[i])
        .cell_fp(kr, 1)
        .cell_fp(bl, 1)
        .cell_fp(bl > 0 ? 100.0 * (bl - kr) / bl : 0.0, 1)
        .cell_fp(rounds ? 100.0 * (wins + ties) / double(rounds) : 0.0, 1);
  }
  table.print();
  std::cout << "\nExpected shape: delay-aware provisioning dominates on "
               "every class, with the margin growing from the fastest to "
               "the slowest path (where the delay-blind flow parks its "
               "high-delay leftovers).\n";
  return 0;
}

// Experiment E17 — observability overhead: the krsp::obs span/metrics
// instrumentation must cost under 2% serving throughput when ENABLED
// versus disabled, on the E14 serving workload, and results must stay
// bit-identical either way (spans and metrics are pure observers).
//
// Usage: bench_obs [--requests=4800] [--pool=8] [--n=14] [--seed=21]
//                  [--threads=1] [--clients=1] [--trials=3]
//                  [--out=BENCH_obs.json] [--smoke]
//
// Method. The gated overhead_ratio is the ARITHMETIC overhead bound
//
//   overhead = span_cost_ns * spans_per_request / request_cpu_ns
//   gate     = 1 - overhead            (must stay >= 0.98, i.e. < 2%)
//
// built from three direct measurements: (1) per-span CPU cost from a
// tight calibration loop over obs::Span with the tracer enabled
// (best-of-3, CLOCK_PROCESS_CPUTIME_ID); (2) spans per request counted
// from the tracer's own capture during the on-arm serving trials
// (deterministic for a fixed pool); (3) CPU per request from the
// tracer-off serving trials (minimum over trials — noise only adds
// cost). Taking the minimum request CPU is the conservative choice:
// it maximizes the computed overhead fraction.
//
// Why not gate on the end-to-end off/on A/B directly? The true span
// cost here is ~0.5% of a ~250 us solve, while back-to-back serving
// trials on a small shared host differ by several percent from drift
// alone (measured pair-ratio spread 0.90-1.09 on a 1-core box) — the
// A/B estimator cannot resolve the effect it gates, and any floor tight
// enough to mean "<2%" would flake. The A/B arms still run, fully
// interleaved (alternating which arm goes first), and their wall
// throughput and CPU/request are reported as ungated context; every
// served result in BOTH arms is compared against a direct
// api::Solver::solve oracle, so "identical" in the JSON certifies
// observability-on results are bit-identical to observability-off. The
// on-arm additionally asserts the expected span names were actually
// captured — an accidentally-dead tracer would make the overhead claim
// vacuous (and would zero spans_per_request in the gate formula).
// Serving runs are serial by default (--clients=1 --threads=1): spans
// executed per request are identical at any concurrency, and the serial
// loop keeps contention CPU out of the per-request denominator.
#include <ctime>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/krsp.h"
#include "obs/trace.h"
#include "server/service.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace krsp;
using Clock = std::chrono::steady_clock;

std::vector<api::SolveRequest> build_pool(int pool_size, int n,
                                          std::uint64_t seed) {
  std::vector<api::SolveRequest> pool;
  pool.reserve(pool_size);
  util::Rng rng(seed);
  while (static_cast<int>(pool.size()) < pool_size) {
    api::RandomInstanceOptions io;
    io.k = 2 + static_cast<int>(pool.size() % 2);
    io.delay_slack = 0.25;
    auto inst = api::random_er_instance(rng, n, 0.35, io);
    if (!inst) continue;
    api::SolveRequest req;
    req.instance = std::move(*inst);
    req.mode = pool.size() % 2 == 0 ? api::Mode::kExactWeights
                                    : api::Mode::kScaled;
    req.tag = "pool-" + std::to_string(pool.size());
    pool.push_back(std::move(req));
  }
  return pool;
}

bool same_result(const api::SolveResult& a, const api::SolveResult& b) {
  return a.status == b.status && a.cost == b.cost && a.delay == b.delay &&
         a.paths.paths() == b.paths.paths() &&
         a.telemetry.cost_guess_used == b.telemetry.cost_guess_used;
}

/// Process CPU seconds (all threads) — the preemption-immune cost meter.
double process_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

struct TrialReport {
  double throughput = 0.0;      // served requests per second (wall)
  double cpu_us_per_request = 0.0;  // process CPU burned per request
  std::uint64_t mismatches = 0;
};

/// One closed-loop serving run: `clients` threads, request r handled by
/// thread r % clients against pool[r % pool], compared to oracle[r % pool].
TrialReport run_closed_loop(const std::vector<api::SolveRequest>& pool,
                            const std::vector<api::SolveResult>& oracle,
                            int requests, int clients, int threads) {
  api::ServerOptions opt;
  opt.num_threads = threads;
  opt.cache_capacity = 0;  // every request is a full solve
  opt.max_pending = static_cast<std::size_t>(requests) + 1;
  server::SolveService service(opt);

  std::vector<std::uint64_t> mismatches(clients, 0);
  const double cpu0 = process_cpu_seconds();
  const auto t0 = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      for (int r = c; r < requests; r += clients) {
        const std::size_t i = static_cast<std::size_t>(r) % pool.size();
        const server::ServeResponse resp = service.serve(pool[i]);
        if (!resp.served() || !same_result(resp.result, oracle[i]))
          ++mismatches[static_cast<std::size_t>(c)];
      }
    });
  }
  for (auto& w : workers) w.join();
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();
  const double cpu = process_cpu_seconds() - cpu0;
  service.drain();

  TrialReport rep;
  rep.throughput = static_cast<double>(requests) / wall;
  rep.cpu_us_per_request = cpu * 1e6 / static_cast<double>(requests);
  for (const auto m : mismatches) rep.mismatches += m;
  return rep;
}

double best(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

/// Per-span CPU cost in ns, from a tight loop of `iters` RAII spans with
/// the tracer in its current state. Best of `reps` repetitions: the
/// minimum is the cleanest estimate, loop noise only adds cost. The
/// buffer is cleared per repetition so the measurement never hits the
/// per-thread cap and allocation reuse matches steady-state tracing.
double measure_span_cost_ns(obs::Tracer& tracer, int iters, int reps) {
  double best_ns = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    tracer.clear();
    const double cpu0 = process_cpu_seconds();
    for (int i = 0; i < iters; ++i) {
      KRSP_OBS_SPAN("span_cost_calibration");
    }
    const double ns =
        (process_cpu_seconds() - cpu0) * 1e9 / static_cast<double>(iters);
    if (rep == 0 || ns < best_ns) best_ns = ns;
  }
  tracer.clear();
  return best_ns;
}

void write_json(const std::string& path, int requests, int pool, int n,
                int trials, bool identical, double off_tput, double on_tput,
                double off_cpu_us, double on_cpu_us, double span_cost_ns,
                double spans_per_request, double overhead_ratio,
                std::size_t spans_captured) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  out << "{\n";
  out << "  \"experiment\": \"E17\",\n";
  out << "  \"config\": {\"requests\": " << requests << ", \"pool\": " << pool
      << ", \"n\": " << n << ", \"trials\": " << trials << "},\n";
  out << "  \"identical\": " << (identical ? "true" : "false") << ",\n";
  out << "  \"throughput_per_sec\": {\"obs_off\": " << off_tput
      << ", \"obs_on\": " << on_tput << "},\n";
  out << "  \"cpu_us_per_request\": {\"obs_off\": " << off_cpu_us
      << ", \"obs_on\": " << on_cpu_us << "},\n";
  out << "  \"span_cost_ns\": " << span_cost_ns << ",\n";
  out << "  \"spans_per_request\": " << spans_per_request << ",\n";
  out << "  \"spans_captured\": " << spans_captured << ",\n";
  out << "  \"gate\": {\n";
  // value = 1 - span_cost * spans_per_request / request_cpu (the
  // arithmetic overhead bound; see the file header for why the
  // end-to-end A/B is context, not the gate). 0.98 is the <2% bar.
  out << "    \"overhead_ratio\": {\"value\": " << overhead_ratio
      << ", \"direction\": \"higher\", \"min\": 0.98}\n";
  out << "  }\n";
  out << "}\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool smoke = cli.get_bool("smoke", false);
  // Long trials beat many trials here: one 480-request arm is ~0.12 s of
  // CPU, and its per-request mean still swings ~2% run-to-run under host
  // drift — more than the effect being measured. 4800-request arms
  // average that drift down an order of magnitude, so best-of-3 minima
  // land within a few tenths of a percent across repeated invocations.
  const int requests =
      static_cast<int>(cli.get_int("requests", smoke ? 320 : 4800));
  const int pool_size = static_cast<int>(cli.get_int("pool", smoke ? 4 : 8));
  const int n = static_cast<int>(cli.get_int("n", smoke ? 10 : 14));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 21));
  const int threads = static_cast<int>(cli.get_int("threads", 1));
  const int clients = static_cast<int>(cli.get_int("clients", 1));
  const int trials = static_cast<int>(cli.get_int("trials", 3));
  const std::string out_path = cli.get_string("out", "");
  cli.reject_unknown();

  const auto pool = build_pool(pool_size, n, seed);
  std::cout << "E17: obs overhead on a pool of " << pool.size()
            << " ER n=" << n << " instances, " << requests
            << " closed-loop requests x " << trials
            << " interleaved trial pairs (hardware "
            << std::thread::hardware_concurrency() << " core(s))\n\n";

  // Oracle: direct solves, also the bit-identity reference for both arms.
  api::SolveWorkspace ws;
  std::vector<api::SolveResult> oracle;
  oracle.reserve(pool.size());
  for (const auto& req : pool) oracle.push_back(api::Solver::solve(req, ws));

  obs::Tracer& tracer = obs::Tracer::global();
  std::vector<double> off_tput;
  std::vector<double> on_tput;
  std::vector<double> off_cpu;
  std::vector<double> on_cpu;
  std::uint64_t mismatches = 0;
  std::set<std::string> span_names;
  std::size_t spans_captured = 0;

  // Warm-up trial (discarded): first-touch costs — thread pools, page
  // faults, branch predictors — land outside the comparison.
  (void)run_closed_loop(pool, oracle, requests, clients, threads);

  util::Table table({"trial", "arm", "throughput/s", "cpu us/req"});
  const auto run_arm = [&](int t, bool on) {
    if (on) {
      tracer.clear();
      tracer.enable();
    } else {
      tracer.disable();
    }
    const TrialReport rep =
        run_closed_loop(pool, oracle, requests, clients, threads);
    mismatches += rep.mismatches;
    (on ? on_tput : off_tput).push_back(rep.throughput);
    (on ? on_cpu : off_cpu).push_back(rep.cpu_us_per_request);
    if (on) {
      tracer.disable();
      const auto spans = tracer.snapshot();
      spans_captured += spans.size();
      for (const auto& s : spans) span_names.insert(s.name);
      tracer.clear();
    }
    table.row()
        .cell(static_cast<std::int64_t>(t))
        .cell(on ? "on" : "off")
        .cell_fp(rep.throughput, 1)
        .cell_fp(rep.cpu_us_per_request, 1);
  };
  for (int t = 0; t < trials; ++t) {
    // Back-to-back arm pairs share host drift (thermal, noisy neighbors);
    // alternating which arm goes first cancels the warm-second bias that
    // a fixed order bakes into the ratio.
    const bool on_first = t % 2 == 1;
    run_arm(t, on_first);
    run_arm(t, !on_first);
  }
  table.print();

  const double off_best = best(off_tput);
  const double on_best = best(on_tput);
  // Best-of-N CPU = the minimum: noise only ever adds cost, so the
  // cheapest trial per arm is the cleanest estimate of that arm's true
  // per-request price.
  const double off_cpu_best =
      off_cpu.empty() ? 0.0 : *std::min_element(off_cpu.begin(), off_cpu.end());
  const double on_cpu_best =
      on_cpu.empty() ? 0.0 : *std::min_element(on_cpu.begin(), on_cpu.end());
  std::cout << "\nbest wall throughput: off " << off_best << "/s, on "
            << on_best << "/s\n";
  std::cout << "best cpu/request: off " << off_cpu_best << " us, on "
            << on_cpu_best << " us (A/B context; the gate is the "
            << "arithmetic bound below)\n";
  std::cout << "spans captured across on-arm trials: " << spans_captured
            << " (dropped " << tracer.dropped() << ")\n";

  // The gated number: direct per-span cost x spans per request, as a
  // fraction of the (cheapest observed) per-request CPU.
  tracer.enable();
  const double span_cost_ns =
      measure_span_cost_ns(tracer, /*iters=*/200000, /*reps=*/3);
  tracer.disable();
  const int on_trials = static_cast<int>(on_cpu.size());
  const double spans_per_request =
      on_trials > 0 ? static_cast<double>(spans_captured) /
                          (static_cast<double>(requests) * on_trials)
                    : 0.0;
  const double overhead_fraction =
      off_cpu_best > 0.0
          ? span_cost_ns * spans_per_request / (off_cpu_best * 1e3)
          : 0.0;
  const double ratio = 1.0 - overhead_fraction;
  std::cout << "span cost: " << span_cost_ns << " ns x " << spans_per_request
            << " spans/request = " << overhead_fraction * 100.0
            << "% of request cpu -> overhead ratio " << ratio << "\n";

  // The on arm must actually have traced the hot path, or the overhead
  // number proves nothing. (Skipped when the instrumentation is compiled
  // out: -DKRSP_OBS=OFF makes both arms identical by construction.)
  bool spans_ok = true;
#if !defined(KRSP_OBS_DISABLED)
  for (const char* expected :
       {"solve", "phase1", "mcmf", "queue_wait", "cache_lookup",
        "admission"}) {
    if (span_names.count(expected) == 0) {
      std::cerr << "FAIL: expected span \"" << expected
                << "\" was never captured in the on arm\n";
      spans_ok = false;
    }
  }
#else
  std::cout << "(KRSP_OBS=OFF build: span capture check skipped)\n";
#endif

  const bool identical = mismatches == 0;
  if (!out_path.empty())
    write_json(out_path, requests, pool_size, n, trials, identical, off_best,
               on_best, off_cpu_best, on_cpu_best, span_cost_ns,
               spans_per_request, ratio, spans_captured);
  else if (smoke)
    std::cout << "(smoke run: pass --out=... to emit the gate JSON)\n";

  if (!identical) {
    std::cerr << "FAIL: " << mismatches
              << " served result(s) diverged from the direct-solve oracle\n";
    return 1;
  }
  if (!spans_ok) return 1;
  std::cout << "all served results bit-identical with observability on and "
               "off\n";
  return 0;
}

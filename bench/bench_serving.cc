// Experiment E14 — serving-layer behavior of the krsp::server stack:
// throughput and tail latency under nominal open-loop load, admission
// rejection under overload, and result-cache hit speedup. Every served
// deadline-free result is checked bit-identical to a direct
// api::Solver::solve of the same request, so the serving numbers cannot
// come from cut corners.
//
// Usage: bench_serving [--requests=96] [--pool=8] [--n=14] [--seed=21]
//                      [--threads=0] [--clients=6]
//                      [--out=BENCH_serving.json] [--smoke]
//
// Phases:
//   calibrate — direct solves of the request pool measure the mean cold
//               solve time; capacity := threads / mean_service_time.
//   nominal   — open-loop arrivals at 0.5× capacity with an effectively
//               unbounded admission queue: every request must be served
//               (zero rejections, structurally) and bit-identical.
//   overload  — open-loop arrivals at 4× capacity against a tiny
//               admission queue (threads + 2): the controller must shed
//               load by rejecting queue-full instead of queueing without
//               bound. Serve latency of admitted requests stays bounded.
//   cache     — a cache-enabled service sees the same pool twice; second
//               pass must hit, return bit-identical results, and be at
//               least 5× faster per request than the miss pass.
//
// --smoke shrinks everything for CI; gate metrics (rejection rate, cache
// speedup, served fraction) are host-independent ratios checked by
// scripts/check_bench.py against the committed BENCH_serving.json.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "api/krsp.h"
#include "server/service.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace krsp;
using Clock = std::chrono::steady_clock;

std::vector<api::SolveRequest> build_pool(int pool_size, int n,
                                          std::uint64_t seed) {
  std::vector<api::SolveRequest> pool;
  pool.reserve(pool_size);
  util::Rng rng(seed);
  while (static_cast<int>(pool.size()) < pool_size) {
    api::RandomInstanceOptions io;
    io.k = 2 + static_cast<int>(pool.size() % 2);
    io.delay_slack = 0.25;
    auto inst = api::random_er_instance(rng, n, 0.35, io);
    if (!inst) continue;
    api::SolveRequest req;
    req.instance = std::move(*inst);
    req.mode = pool.size() % 2 == 0 ? api::Mode::kExactWeights
                                    : api::Mode::kScaled;
    req.tag = "pool-" + std::to_string(pool.size());
    pool.push_back(std::move(req));
  }
  return pool;
}

bool same_result(const api::SolveResult& a, const api::SolveResult& b) {
  return a.status == b.status && a.cost == b.cost && a.delay == b.delay &&
         a.paths.paths() == b.paths.paths() &&
         a.telemetry.cost_guess_used == b.telemetry.cost_guess_used;
}

struct PhaseReport {
  util::Stats latency_ms;
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;
  std::uint64_t mismatches = 0;
  double wall_seconds = 0.0;

  [[nodiscard]] double rejection_rate() const {
    const auto total = served + rejected;
    return total == 0 ? 0.0
                      : static_cast<double>(rejected) /
                            static_cast<double>(total);
  }
};

/// Open-loop load: `requests` arrivals at `rate`/s spread round-robin
/// over `clients` threads; request r uses pool[r % pool] and, when it is
/// served, is compared against oracle[r % pool].
PhaseReport run_open_loop(server::SolveService& service,
                          const std::vector<api::SolveRequest>& pool,
                          const std::vector<api::SolveResult>& oracle,
                          int requests, int clients, double rate) {
  struct WorkerReport {
    std::vector<double> latency_ms;
    std::uint64_t served = 0;
    std::uint64_t rejected = 0;
    std::uint64_t mismatches = 0;
  };
  std::vector<WorkerReport> reports(clients);
  const auto start = Clock::now() + std::chrono::milliseconds(20);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      WorkerReport& rep = reports[c];
      for (int r = c; r < requests; r += clients) {
        const auto arrival =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(r) / rate));
        std::this_thread::sleep_until(arrival);
        const std::size_t i = static_cast<std::size_t>(r) % pool.size();
        const server::ServeResponse resp = service.serve(pool[i]);
        // Latency from the scheduled arrival: a backed-up service is
        // charged for the wait, as a real client would experience it.
        rep.latency_ms.push_back(std::chrono::duration<double, std::milli>(
                                     Clock::now() - arrival)
                                     .count());
        if (!resp.served()) {
          ++rep.rejected;
          continue;
        }
        ++rep.served;
        if (!same_result(resp.result, oracle[i])) ++rep.mismatches;
      }
    });
  }
  for (auto& t : threads) t.join();

  PhaseReport total;
  total.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  for (const auto& rep : reports) {
    total.served += rep.served;
    total.rejected += rep.rejected;
    total.mismatches += rep.mismatches;
    for (const double x : rep.latency_ms) total.latency_ms.add(x);
  }
  return total;
}

void write_json(const std::string& path, int requests, int pool, int n,
                int threads, bool identical, const PhaseReport& nominal,
                const PhaseReport& overload, double cache_speedup,
                double hit_rate) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  const double served_total =
      static_cast<double>(nominal.served + nominal.rejected);
  const double nominal_served_frac =
      served_total == 0.0 ? 0.0
                          : static_cast<double>(nominal.served) / served_total;
  out << "{\n";
  out << "  \"experiment\": \"E14\",\n";
  out << "  \"config\": {\"requests\": " << requests << ", \"pool\": " << pool
      << ", \"n\": " << n << ", \"threads\": " << threads << "},\n";
  out << "  \"identical\": " << (identical ? "true" : "false") << ",\n";
  out << "  \"latency_ms\": {\"nominal_p50\": "
      << nominal.latency_ms.percentile(50.0)
      << ", \"nominal_p95\": " << nominal.latency_ms.percentile(95.0)
      << ", \"nominal_p99\": " << nominal.latency_ms.percentile(99.0)
      << "},\n";
  out << "  \"throughput_per_sec\": {\"nominal\": "
      << static_cast<double>(nominal.served) / nominal.wall_seconds << "},\n";
  out << "  \"cache_hit_rate\": " << hit_rate << ",\n";
  out << "  \"gate\": {\n";
  out << "    \"nominal_served_frac\": {\"value\": " << nominal_served_frac
      << ", \"direction\": \"higher\", \"min\": 1.0},\n";
  out << "    \"overload_rejection_rate\": {\"value\": "
      << overload.rejection_rate()
      << ", \"direction\": \"higher\", \"min\": 0.02},\n";
  // Saturate the recorded speedup: a cache hit is a pure lookup, so past
  // ~20x the ratio only measures miss-side cost noise (observed 34x-251x
  // run to run on the same host). Saturation keeps the drift comparison
  // against the committed baseline meaningful; the 5x floor is the bar.
  out << "    \"cache_speedup\": {\"value\": " << std::min(cache_speedup, 20.0)
      << ", \"direction\": \"higher\", \"min\": 5.0}\n";
  out << "  }\n";
  out << "}\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool smoke = cli.get_bool("smoke", false);
  const int requests =
      static_cast<int>(cli.get_int("requests", smoke ? 32 : 96));
  const int pool_size = static_cast<int>(cli.get_int("pool", smoke ? 4 : 8));
  const int n = static_cast<int>(cli.get_int("n", smoke ? 10 : 14));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 21));
  const int threads = static_cast<int>(cli.get_int("threads", 0));
  const int clients = static_cast<int>(cli.get_int("clients", smoke ? 4 : 6));
  const std::string out_path = cli.get_string("out", "");
  cli.reject_unknown();

  const auto pool = build_pool(pool_size, n, seed);
  std::cout << "E14: serving layer on a pool of " << pool.size()
            << " ER n=" << n << " instances, " << requests
            << " requests per load phase (hardware "
            << std::thread::hardware_concurrency() << " core(s))\n\n";

  // --- calibrate: the oracle is also the service-time measurement.
  api::SolveWorkspace ws;
  std::vector<api::SolveResult> oracle;
  oracle.reserve(pool.size());
  util::Stats direct_ms;
  for (const auto& req : pool) {
    const auto t0 = Clock::now();
    oracle.push_back(api::Solver::solve(req, ws));
    direct_ms.add(
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
  }
  const double mean_service_seconds = direct_ms.mean() / 1e3;

  api::ServerOptions base;
  base.num_threads = threads;
  base.cache_capacity = 0;  // load phases measure solves, not lookups
  const int worker_threads = [&] {
    const server::SolveService probe(base);
    return probe.num_threads();
  }();
  const double capacity =
      static_cast<double>(worker_threads) / mean_service_seconds;
  std::cout << "calibration: mean direct solve "
            << direct_ms.mean() << " ms -> capacity ~" << capacity
            << " solves/sec on " << worker_threads << " worker thread(s)\n";

  bool all_identical = true;

  // --- nominal: 0.5x capacity, queue deep enough that nothing is shed.
  PhaseReport nominal;
  {
    api::ServerOptions opt = base;
    opt.max_pending = static_cast<std::size_t>(requests) + 1;
    server::SolveService service(opt);
    nominal = run_open_loop(service, pool, oracle, requests, clients,
                            0.5 * capacity);
    service.drain();
  }
  all_identical = all_identical && nominal.mismatches == 0;

  // --- overload: 4x capacity into a tiny queue; admission must shed.
  PhaseReport overload;
  {
    api::ServerOptions opt = base;
    opt.max_pending = static_cast<std::size_t>(worker_threads) + 2;
    server::SolveService service(opt);
    // More clients than queue slots, so arrivals can actually pile up.
    const int overload_clients =
        std::max(clients, static_cast<int>(opt.max_pending) + 4);
    overload = run_open_loop(service, pool, oracle, requests,
                             overload_clients, 4.0 * capacity);
    service.drain();
  }
  all_identical = all_identical && overload.mismatches == 0;

  // --- cache: same pool twice through a cache-enabled service.
  double cache_speedup = 0.0;
  double hit_rate = 0.0;
  std::uint64_t cache_mismatches = 0;
  {
    api::ServerOptions opt = base;
    opt.cache_capacity = 2 * pool.size();
    // This phase is sequential, so concurrency sharding buys nothing and
    // a single shard makes the LRU budget exact: capacity splits evenly
    // across shards, and 2*pool/8 entries per shard can evict pass-0
    // results before pass 1 reads them.
    opt.cache_shards = 1;
    opt.max_pending = static_cast<std::size_t>(requests) + 1;
    server::SolveService service(opt);
    util::Stats miss_ms;
    util::Stats hit_ms;
    for (int pass = 0; pass < 2; ++pass)
      for (std::size_t i = 0; i < pool.size(); ++i) {
        const server::ServeResponse resp = service.serve(pool[i]);
        if (!resp.served() || !same_result(resp.result, oracle[i]))
          ++cache_mismatches;
        if (resp.cache_hit != (pass == 1)) ++cache_mismatches;
        (resp.cache_hit ? hit_ms : miss_ms).add(resp.total_seconds * 1e3);
      }
    const api::ServeStats s = service.stats();
    hit_rate = static_cast<double>(s.cache_hits) /
               static_cast<double>(s.cache_hits + s.cache_misses);
    cache_speedup = hit_ms.count() == 0 || hit_ms.mean() <= 0.0
                        ? 0.0
                        : miss_ms.mean() / hit_ms.mean();
    service.drain();
  }
  all_identical = all_identical && cache_mismatches == 0;

  util::Table table({"phase", "served", "rejected", "p50 ms", "p95 ms",
                     "p99 ms", "reject rate"});
  const auto phase_row = [&](const char* name, const PhaseReport& rep) {
    table.row()
        .cell(name)
        .cell(static_cast<std::int64_t>(rep.served))
        .cell(static_cast<std::int64_t>(rep.rejected))
        .cell_fp(rep.latency_ms.percentile(50.0), 2)
        .cell_fp(rep.latency_ms.percentile(95.0), 2)
        .cell_fp(rep.latency_ms.percentile(99.0), 2)
        .cell_fp(rep.rejection_rate(), 3);
  };
  phase_row("nominal (0.5x)", nominal);
  phase_row("overload (4x)", overload);
  table.print();
  std::cout << "\ncache: hit rate " << hit_rate << ", hit speedup "
            << cache_speedup << "x vs miss\n";
  std::cout << "Note: on a single-core host capacity is one worker's "
               "solve rate; ratios (rejection rate, cache speedup, served "
               "fraction) remain meaningful while absolute throughput "
               "does not.\n";

  if (out_path.empty() && smoke)
    std::cout << "(smoke run: pass --out=... to emit the gate JSON)\n";
  if (!out_path.empty())
    write_json(out_path, requests, pool_size, n, worker_threads,
               all_identical, nominal, overload, cache_speedup, hit_rate);

  if (!all_identical) {
    std::cerr << "FAIL: served results diverged from direct solves ("
              << nominal.mismatches << " nominal, " << overload.mismatches
              << " overload, " << cache_mismatches << " cache)\n";
    return 1;
  }
  if (overload.rejected == 0) {
    std::cerr << "FAIL: overload phase shed no load — admission control "
                 "is not engaging\n";
    return 1;
  }
  if (nominal.rejected != 0) {
    std::cerr << "FAIL: nominal phase rejected " << nominal.rejected
              << " request(s) despite an unbounded queue\n";
    return 1;
  }
  std::cout << "all served results bit-identical to direct solves\n";
  return 0;
}

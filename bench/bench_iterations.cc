// Experiment E4 — cycle-cancellation dynamics (Lemma 12 / Lemma 13).
//
// On trade-off-chain instances (engineered delay overshoot after phase 1)
// measures: iteration counts, cycle type mix, monotonicity of the ratio
// trace r_i (Lemma 12 predicts non-decreasing), and finder work counters.
//
// Usage: bench_iterations [--trials=15] [--seed=4]
#include <iostream>

#include "core/cycle_cancel.h"
#include "core/phase1.h"
#include "core/solver.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace krsp;
  const util::Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 15));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 4)));
  cli.reject_unknown();

  std::cout << "E4: cancellation dynamics on tradeoff-chain workloads ("
            << trials << " instances per row)\n\n";

  util::Table table({"chains", "hops", "runs", "mean iters", "max iters",
                     "type-0", "type-1", "type-2", "r_i monotone %",
                     "mean anchors", "mean budgets"});
  struct Shape {
    int chains, hops;
  };
  for (const auto [chains, hops] : {Shape{2, 3}, Shape{3, 3}, Shape{3, 5}}) {
    util::Stats iters, anchors, budgets;
    std::int64_t t0 = 0, t1 = 0, t2 = 0;
    int monotone = 0, runs = 0, attempts = 0;
    while (runs < trials && attempts < trials * 30) {
      ++attempts;
      core::Instance inst;
      inst.graph = gen::tradeoff_chains(rng, chains, hops, 6, 5);
      inst.s = 0;
      inst.t = 1;
      inst.k = chains;
      // Budget halfway between all-slow and all-fast.
      const auto lo = core::min_possible_delay(inst);
      if (!lo) continue;
      inst.delay_bound = (*lo + 5 * hops * chains) / 2;
      const auto p1 = core::phase1_lagrangian(inst);
      if (p1.status != core::Phase1Status::kApprox ||
          p1.delay <= inst.delay_bound)
        continue;
      // Cap = feasible-alternative cost (a certified upper bound on OPT).
      const auto cap = p1.feasible_alternative->total_cost(inst.graph);
      const auto r = core::cancel_cycles(inst, p1.paths, cap);
      if (r.status != core::CancelStatus::kSuccess) continue;
      ++runs;
      iters.add(static_cast<double>(r.telemetry.iterations));
      t0 += r.telemetry.type_counts[0];
      t1 += r.telemetry.type_counts[1];
      t2 += r.telemetry.type_counts[2];
      if (r.telemetry.ratio_monotone) ++monotone;
      anchors.add(static_cast<double>(r.telemetry.finder_stats.anchors_scanned));
      budgets.add(static_cast<double>(r.telemetry.finder_stats.budgets_tried));
    }
    table.row()
        .cell(chains)
        .cell(hops)
        .cell(runs)
        .cell_fp(iters.count() ? iters.mean() : 0.0, 1)
        .cell_fp(iters.count() ? iters.max() : 0.0, 0)
        .cell(t0)
        .cell(t1)
        .cell(t2)
        .cell_fp(runs ? 100.0 * monotone / runs : 0.0, 1)
        .cell_fp(anchors.count() ? anchors.mean() : 0.0, 0)
        .cell_fp(budgets.count() ? budgets.mean() : 0.0, 1);
  }
  table.print();
  std::cout << "\nExpected shape: iteration counts are small (far below the "
               "Lemma-13 pseudo-polynomial bound |D|*Sum(c)*Sum(d)); the "
               "ratio trace is monotone in 100% of runs (Lemma 12).\n";
  return 0;
}

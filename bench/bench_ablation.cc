// Experiment E9 — ablations of the solver's design knobs (DESIGN.md §3).
//
//   (a) cap guess strategy: binary search (certified 2(C_OPT+1)) vs
//       doubling (faster, cap within 2x);
//   (b) finder initial budget: the doubling schedule's starting point;
//   (c) bounded DP rounds: max_rounds below n voids the witness guarantee —
//       measures how often the finder then misses (falls back to F_hi).
//
// Usage: bench_ablation [--trials=25] [--n=12] [--seed=9]
#include <iostream>

#include "core/solver.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace krsp;

struct Config {
  const char* name;
  core::SolverOptions options;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 25));
  const int n = static_cast<int>(cli.get_int("n", 12));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 9)));
  cli.reject_unknown();

  // Cancellation-engaging instances only (the knobs are no-ops otherwise).
  std::vector<core::Instance> instances;
  {
    const core::KrspSolver probe{[&] {
      core::SolverOptions o;
      o.mode = core::SolverOptions::Mode::kExactWeights;
      return o;
    }()};
    int attempts = 0;
    while (static_cast<int>(instances.size()) < trials &&
           attempts++ < trials * 100) {
      core::RandomInstanceOptions io;
      io.k = 2;
      io.delay_slack = 0.15;
      auto inst = core::random_er_instance(rng, n, 0.35, io);
      if (!inst) continue;
      const auto s = probe.solve(*inst);
      if (!s.has_paths() || s.telemetry.guess_attempts == 0) continue;
      instances.push_back(std::move(*inst));
    }
  }
  std::cout << "E9: design-knob ablations on " << instances.size()
            << " cancellation-engaging ER instances (n = " << n << ")\n\n";

  std::vector<Config> configs;
  {
    core::SolverOptions base;
    base.mode = core::SolverOptions::Mode::kExactWeights;
    Config c{"baseline (binary search, budget 8, rounds n)", base};
    configs.push_back(c);

    core::SolverOptions doubling = base;
    doubling.guess = core::SolverOptions::GuessStrategy::kDoubling;
    configs.push_back({"doubling cap guesses", doubling});

    core::SolverOptions b1 = base;
    b1.cancel.finder.initial_budget = 1;
    configs.push_back({"initial budget 1", b1});

    core::SolverOptions b64 = base;
    b64.cancel.finder.initial_budget = 64;
    configs.push_back({"initial budget 64", b64});

    core::SolverOptions r4 = base;
    r4.cancel.finder.max_rounds = 4;
    configs.push_back({"DP rounds capped at 4 (unsound)", r4});

    core::SolverOptions r2 = base;
    r2.cancel.finder.max_rounds = 2;
    configs.push_back({"DP rounds capped at 2 (unsound)", r2});
  }

  util::Table table({"configuration", "mean cost", "max cost/baseline",
                     "mean ms", "mean guesses", "fallback used %"});
  std::vector<graph::Cost> baseline_cost;
  for (std::size_t c = 0; c < configs.size(); ++c) {
    const core::KrspSolver solver(configs[c].options);
    util::Stats cost, ms, guesses, ratio;
    int fallbacks = 0;
    for (std::size_t i = 0; i < instances.size(); ++i) {
      const auto s = solver.solve(instances[i]);
      KRSP_CHECK(s.has_paths());
      if (c == 0) baseline_cost.push_back(s.cost);
      cost.add(static_cast<double>(s.cost));
      ratio.add(static_cast<double>(s.cost) /
                std::max(1.0, static_cast<double>(baseline_cost[i])));
      ms.add(s.telemetry.wall_seconds * 1e3);
      guesses.add(static_cast<double>(s.telemetry.guess_attempts));
      if (s.telemetry.used_feasible_fallback) ++fallbacks;
    }
    table.row()
        .cell(configs[c].name)
        .cell_fp(cost.mean(), 1)
        .cell_fp(ratio.max())
        .cell_fp(ms.mean(), 2)
        .cell_fp(guesses.mean(), 1)
        .cell_fp(instances.empty()
                     ? 0.0
                     : 100.0 * fallbacks / static_cast<double>(
                                               instances.size()),
                 1);
  }
  table.print();
  std::cout << "\nExpected shape: doubling trades a slightly worse cap for "
               "fewer guesses; initial budget only shifts constant factors; "
               "capping DP rounds below n forces phase-1 fallbacks (the "
               "witness guarantee needs up to n rounds) while never "
               "violating validity.\n";
  return 0;
}

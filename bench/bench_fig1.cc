// Experiment F1 — Figure 1 of the paper.
//
// Reproduces the gadget of Section 3.1: cycle cancellation *without* the
// bicameral cost cap outputs cost C_OPT*(D+1)-1 (ratio ~ D+1), while the
// capped algorithm returns the optimum. One row per delay bound D.
//
// Usage: bench_fig1 [--c_opt=5] [--d_values=2,4,8,16,32,64]
#include <iostream>
#include <sstream>

#include "baselines/os_cycle_cancel.h"
#include "baselines/unsafe_cc.h"
#include "core/solver.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

std::vector<krsp::graph::Delay> parse_list(const std::string& csv) {
  std::vector<krsp::graph::Delay> values;
  std::istringstream is(csv);
  std::string token;
  while (std::getline(is, token, ',')) values.push_back(std::stoll(token));
  return values;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace krsp;
  const util::Cli cli(argc, argv);
  const auto c_opt = cli.get_int("c_opt", 5);
  const auto d_values = parse_list(cli.get_string("d_values", "2,4,8,16,32,64"));
  cli.reject_unknown();

  std::cout << "F1: Figure-1 gadget — bicameral cap vs uncapped best-ratio "
               "cycle cancellation (C_OPT = "
            << c_opt << ")\n\n";

  util::Table table({"D", "C_OPT", "capped cost", "capped ratio",
                     "uncapped cost", "uncapped ratio", "OS-CC [18] cost",
                     "paper predicts"});
  for (const auto D : d_values) {
    const auto fig = gen::figure1_gadget(D, c_opt);
    core::Instance inst;
    inst.graph = fig.graph;
    inst.s = fig.s;
    inst.t = fig.t;
    inst.k = fig.k;
    inst.delay_bound = fig.delay_bound;

    // Exact-weights mode: delay strictly within D, as in the paper's
    // Lemma 3 (the scaled mode may legitimately trade delay <= (1+eps)D for
    // cost 0 on this gadget once D is large enough for scaling to engage).
    core::SolverOptions copt;
    copt.mode = core::SolverOptions::Mode::kExactWeights;
    const auto capped = core::KrspSolver(copt).solve(inst);
    const auto uncapped = baselines::unsafe_cycle_cancel(inst);
    // The prior-art comparator (zero-cost reverse edges, min cost-per-
    // delay-reduction cycles) falls into the same trap on this gadget.
    const auto os = baselines::os_cycle_cancel(inst);
    KRSP_CHECK(capped.has_paths() && uncapped.has_paths() && os.has_paths());

    std::ostringstream predicted;
    predicted << "C_OPT*(D+1)-1 = " << fig.bad_cost;
    table.row()
        .cell(D)
        .cell(fig.optimal_cost)
        .cell(capped.cost)
        .cell_fp(static_cast<double>(capped.cost) /
                     static_cast<double>(fig.optimal_cost),
                 2)
        .cell(uncapped.cost)
        .cell_fp(static_cast<double>(uncapped.cost) /
                     static_cast<double>(fig.optimal_cost),
                 2)
        .cell(os.cost)
        .cell(predicted.str());
  }
  table.print();
  std::cout << "\nExpected shape: capped ratio stays at 1 (<= 2 in general); "
               "uncapped ratio grows linearly in D.\n";
  return 0;
}

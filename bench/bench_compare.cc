// Experiment E2 — algorithm comparison table.
//
// The paper's algorithm (both modes) against the prior art and naive
// baselines on Waxman and grid workloads: cost (normalized to the best
// feasible cost found), delay feasibility, wall time.
//
// Usage: bench_compare [--trials=20] [--seed=2]
#include <iostream>

#include "baselines/flow_only.h"
#include "baselines/larac_k.h"
#include "baselines/os_cycle_cancel.h"
#include "core/solver.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace krsp;

struct Algo {
  const char* name;
  std::function<core::Solution(const core::Instance&)> run;
};

std::vector<Algo> algorithms() {
  std::vector<Algo> algos;
  algos.push_back({"kRSP exact-weights (paper, Lemma 3)",
                   [](const core::Instance& inst) {
                     core::SolverOptions o;
                     o.mode = core::SolverOptions::Mode::kExactWeights;
                     return core::KrspSolver(o).solve(inst);
                   }});
  algos.push_back({"kRSP scaled eps=0.5 (paper, Thm 4)",
                   [](const core::Instance& inst) {
                     core::SolverOptions o;
                     o.mode = core::SolverOptions::Mode::kScaled;
                     o.eps1 = o.eps2 = 0.5;
                     return core::KrspSolver(o).solve(inst);
                   }});
  algos.push_back({"phase-1 only (Lemma 5 / [9])",
                   [](const core::Instance& inst) {
                     core::SolverOptions o;
                     o.mode = core::SolverOptions::Mode::kPhase1Only;
                     return core::KrspSolver(o).solve(inst);
                   }});
  algos.push_back({"LARAC-k (Lagrangian heuristic)", baselines::larac_k});
  algos.push_back({"OS-style cycle cancel [18]",
                   [](const core::Instance& inst) {
                     return baselines::os_cycle_cancel(inst);
                   }});
  algos.push_back({"min-cost flow (delay-blind)",
                   baselines::min_cost_flow_baseline});
  algos.push_back({"min-delay flow (cost-blind)",
                   baselines::min_delay_flow_baseline});
  return algos;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 20));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 2)));
  cli.reject_unknown();

  struct Workload {
    const char* name;
    int k;
    graph::VertexId s, t;  // kInvalidVertex = generator defaults
    std::function<graph::Digraph(util::Rng&)> draw;
  };
  const std::vector<Workload> workloads = {
      {"waxman n=20 k=2", 2, graph::kInvalidVertex, graph::kInvalidVertex,
       [](util::Rng& r) {
         gen::WaxmanParams p;
         p.beta = 0.7;
         p.delay_scale = 12;
         p.cost_max = 12;
         return gen::waxman(r, 20, p);
       }},
      {"grid 5x4 k=2", 2, graph::kInvalidVertex, graph::kInvalidVertex,
       [](util::Rng& r) { return gen::grid(r, 5, 4); }},
      // Grid corners have degree 2; use mid-edge terminals for k = 3.
      {"grid 5x4 k=3 (mid-edge terminals)", 3, 10, 14,
       [](util::Rng& r) { return gen::grid(r, 5, 4); }},
  };

  std::cout << "E2: algorithm comparison (" << trials
            << " instances per workload; cost normalized to the best "
               "delay-feasible cost seen on each instance)\n";

  for (const auto& workload : workloads) {
    // Pre-draw instances so all algorithms see identical inputs.
    std::vector<core::Instance> instances;
    int draw_attempts = 0;
    while (static_cast<int>(instances.size()) < trials &&
           draw_attempts++ < trials * 8) {
      core::RandomInstanceOptions ropt;
      ropt.k = workload.k;
      ropt.delay_slack = 0.3;
      ropt.s = workload.s;
      ropt.t = workload.t;
      auto inst = core::make_random_instance(rng, ropt, workload.draw);
      if (inst) instances.push_back(std::move(*inst));
    }
    if (instances.empty()) {
      std::cout << "\n== workload: " << workload.name
                << " == (no feasible instances drawn, skipped)\n";
      continue;
    }

    // Collect all runs, then normalize per instance.
    const auto algos = algorithms();
    std::vector<std::vector<core::Solution>> runs(algos.size());
    for (std::size_t a = 0; a < algos.size(); ++a)
      for (const auto& inst : instances) runs[a].push_back(algos[a].run(inst));

    std::vector<double> best_cost(instances.size(), 1e100);
    for (std::size_t i = 0; i < instances.size(); ++i)
      for (std::size_t a = 0; a < algos.size(); ++a) {
        const auto& s = runs[a][i];
        if (s.has_paths() && s.delay <= instances[i].delay_bound)
          best_cost[i] =
              std::min(best_cost[i], static_cast<double>(s.cost));
      }

    std::cout << "\n== workload: " << workload.name << " ==\n";
    util::Table table({"algorithm", "cost/best (mean)", "cost/best (max)",
                       "delay<=D %", "mean delay/D", "mean ms"});
    for (std::size_t a = 0; a < algos.size(); ++a) {
      util::Stats ratio, dd, ms;
      int feasible = 0, counted = 0;
      for (std::size_t i = 0; i < instances.size(); ++i) {
        const auto& s = runs[a][i];
        if (!s.has_paths()) continue;
        ++counted;
        if (s.delay <= instances[i].delay_bound) {
          ++feasible;
          if (best_cost[i] >= 1.0)
            ratio.add(static_cast<double>(s.cost) / best_cost[i]);
        }
        dd.add(static_cast<double>(s.delay) /
               std::max(1.0, static_cast<double>(instances[i].delay_bound)));
        ms.add(s.telemetry.wall_seconds * 1e3);
      }
      table.row()
          .cell(algos[a].name)
          .cell_fp(ratio.count() ? ratio.mean() : 0.0)
          .cell_fp(ratio.count() ? ratio.max() : 0.0)
          .cell_fp(counted ? 100.0 * feasible / counted : 0.0, 1)
          .cell_fp(dd.count() ? dd.mean() : 0.0)
          .cell_fp(ms.count() ? ms.mean() : 0.0, 2);
    }
    table.print();
  }
  std::cout << "\nExpected shape: the paper's algorithm matches or beats "
               "LARAC-k / OS-CC on cost while staying delay-feasible; "
               "min-cost flow violates the bound, min-delay flow overpays.\n";
  return 0;
}

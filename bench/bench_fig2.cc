// Experiment F2 — Figure 2 of the paper.
//
// Walks through the auxiliary-graph construction on the running example:
// (a) the base graph with current path s-x-y-z-t, (b) its residual graph
// (Definition 6), (c) H_x^+(B) for B = 6 (Algorithm 2), and the bicameral
// cycle the finder extracts from it.
#include <iostream>

#include "core/aux_graph.h"
#include "core/bicameral.h"
#include "core/residual.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace krsp;
  const util::Cli cli(argc, argv);
  cli.reject_unknown();

  const auto fig = gen::figure2_example();
  const char* names = "sxyzt";

  std::cout << "F2: Figure-2 walkthrough — auxiliary graph construction\n\n";
  std::cout << "(a) base graph G (current path s-x-y-z-t):\n";
  util::Table ga({"edge", "from", "to", "cost", "delay", "on current path"});
  for (graph::EdgeId e = 0; e < fig.graph.num_edges(); ++e) {
    const auto& edge = fig.graph.edge(e);
    const bool on_path =
        std::find(fig.current_path.begin(), fig.current_path.end(), e) !=
        fig.current_path.end();
    ga.row()
        .cell(e)
        .cell(names[edge.from])
        .cell(names[edge.to])
        .cell(edge.cost)
        .cell(edge.delay)
        .cell(on_path ? "yes" : "no");
  }
  ga.print();

  const core::ResidualGraph residual(fig.graph, fig.current_path);
  std::cout << "\n(b) residual graph G~ (Definition 6 — path edges reversed, "
               "weights negated):\n";
  util::Table gb({"edge", "from", "to", "cost", "delay", "reversed"});
  for (graph::EdgeId e = 0; e < residual.digraph().num_edges(); ++e) {
    const auto& edge = residual.digraph().edge(e);
    gb.row()
        .cell(e)
        .cell(names[edge.from])
        .cell(names[edge.to])
        .cell(edge.cost)
        .cell(edge.delay)
        .cell(residual.is_reversed(e) ? "yes" : "no");
  }
  gb.print();

  const core::AuxiliaryGraph aux(residual.digraph(), fig.x, fig.budget, true);
  std::cout << "\n(c) auxiliary graph H_x^+(B = " << fig.budget
            << ") per Algorithm 2:\n";
  std::cout << "    |V(H)| = " << aux.digraph().num_vertices() << " (= n*(B+1) = 5*7)"
            << ", |E(H)| = " << aux.digraph().num_edges() << "\n";
  int closing = 0;
  for (graph::EdgeId e = 0; e < aux.digraph().num_edges(); ++e)
    if (aux.base_edge_of(e) == graph::kInvalidEdge) ++closing;
  std::cout << "    structural arcs: " << aux.digraph().num_edges() - closing
            << ", anchor closing arcs: " << closing << "\n";

  core::BicameralQuery query;
  query.cap = fig.budget;
  query.ratio = util::Rational(-1, 1);
  core::BicameralStats stats;
  const auto found = core::BicameralCycleFinder().find(residual, query, &stats);
  KRSP_CHECK(found.has_value());
  std::cout << "\nBicameral cycle extracted from H (Algorithm 3): cost "
            << found->cost << ", delay " << found->delay << ", type "
            << static_cast<int>(found->type) << "\n    edges:";
  for (const auto e : found->edges) {
    const auto& edge = residual.digraph().edge(e);
    std::cout << ' ' << names[edge.from] << "->" << names[edge.to];
  }
  std::cout << "\n    (anchors scanned " << stats.anchors_scanned
            << ", walks examined " << stats.walks_examined << ")\n";
  std::cout << "\nExpected shape: the positive-cost (0 < c <= B) delay-"
               "reducing cycle x->z->y->x with cost 1, delay -6 is found.\n";
  return 0;
}

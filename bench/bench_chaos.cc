// Experiment E11 — resilience under sustained seeded chaos.
//
// Across random Waxman instances: provision k = 3 disjoint restricted
// shortest paths, then drive the resilience controller through a seeded
// campaign of edge failures, SRLG failures, delay degradations, and
// recoveries. Every event is followed by a full invariant audit (edge
// disjointness, delay bound, no failed edge in use, cost bookkeeping) — a
// campaign that completes is a zero-violation campaign. Reports
// availability, the local-repair vs full-re-solve split, time-to-repair,
// anytime-degradation frequency, and the cost drift of the incrementally
// maintained paths against a fresh-solve optimum on the degraded network.
//
// Usage: bench_chaos [--trials=8] [--n=24] [--events=200] [--seed=7]
//                    [--deadline-ms=0] [--sim]
#include <iostream>

#include "core/solver.h"
#include "graph/generators.h"
#include "resilience/chaos.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace krsp;

  const util::Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 8));
  const int n = static_cast<int>(cli.get_int("n", 24));
  const int events = static_cast<int>(cli.get_int("events", 200));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const double deadline_ms = cli.get_double("deadline-ms", 0.0);
  const bool replay_sim = cli.get_bool("sim", false);
  cli.reject_unknown();

  util::Rng rng(seed);
  core::SolverOptions solver_options;
  // Exact weights: the audit delay cap is D itself, so "delay <= D after
  // every event" is checked literally, not up to (1+eps1).
  solver_options.mode = core::SolverOptions::Mode::kExactWeights;
  solver_options.deadline_seconds = deadline_ms * 1e-3;

  util::Stats avail_full, avail_any, repair_mean_ms, repair_max_ms, drift;
  std::int64_t local_repairs = 0, full_resolves = 0, reduced_k = 0,
               outages = 0, degraded_events = 0, audits = 0,
               total_events = 0;
  util::Stats sim_delivery, sim_p95;

  int used = 0, attempts = 0;
  while (used < trials && attempts++ < trials * 30) {
    core::RandomInstanceOptions opt;
    opt.k = 3;
    opt.delay_slack = 0.3;
    const auto inst = core::make_random_instance(rng, opt, [&](util::Rng& r) {
      gen::WaxmanParams p;
      p.beta = 0.8;
      p.delay_scale = 25;
      return gen::waxman(r, n, p);
    });
    if (!inst) continue;

    resilience::ChaosOptions chaos;
    chaos.events = events;
    chaos.seed = seed + static_cast<std::uint64_t>(used) * 1000003ULL;
    chaos.replay_sim = replay_sim;
    const auto report =
        resilience::run_chaos_campaign(*inst, solver_options, chaos);
    const bool provisioned =
        report.provision_status == core::SolveStatus::kOptimal ||
        report.provision_status == core::SolveStatus::kApprox ||
        report.provision_status == core::SolveStatus::kApproxDelayOver;
    if (!provisioned) continue;
    ++used;

    avail_full.add(100.0 * report.availability_full);
    avail_any.add(100.0 * report.availability_any);
    if (report.repair_ms.count() > 0) {
      repair_mean_ms.add(report.repair_ms.mean());
      repair_max_ms.add(report.repair_ms.max());
    }
    if (report.cost_drift.count() > 0) drift.add(report.cost_drift.mean());
    local_repairs += report.stats.local_repairs;
    full_resolves += report.stats.full_resolves;
    reduced_k += report.stats.reduced_k_steps;
    outages += report.stats.outages_entered;
    degraded_events += report.degraded_events;
    audits += report.stats.audits;
    total_events += report.events;
    if (report.sim_delivery_rate >= 0) {
      sim_delivery.add(100.0 * report.sim_delivery_rate);
      sim_p95.add(report.sim_mean_p95_latency);
    }
  }

  std::cout << "E11: chaos campaigns over " << used << " Waxman instances "
            << "(n = " << n << ", k = 3, " << events << " events each, "
            << "deadline = ";
  if (deadline_ms > 0) {
    std::cout << deadline_ms << " ms";
  } else {
    std::cout << "off";
  }
  std::cout << ")\n"
            << "Every event audited; " << audits
            << " audits across " << total_events
            << " events, zero invariant violations (a violation aborts the "
               "campaign).\n\n";

  util::Table table(
      {"metric", "mean", "min", "max"});
  table.row()
      .cell("availability, full k (% of events)")
      .cell_fp(avail_full.mean(), 1)
      .cell_fp(avail_full.min(), 1)
      .cell_fp(avail_full.max(), 1);
  table.row()
      .cell("availability, >= 1 path (% of events)")
      .cell_fp(avail_any.mean(), 1)
      .cell_fp(avail_any.min(), 1)
      .cell_fp(avail_any.max(), 1);
  table.row()
      .cell("repair time per event (ms)")
      .cell_fp(repair_mean_ms.count() ? repair_mean_ms.mean() : 0.0, 3)
      .cell_fp(repair_mean_ms.count() ? repair_mean_ms.min() : 0.0, 3)
      .cell_fp(repair_max_ms.count() ? repair_max_ms.max() : 0.0, 3);
  table.row()
      .cell("cost drift vs fresh solve (ratio)")
      .cell_fp(drift.count() ? drift.mean() : 0.0, 3)
      .cell_fp(drift.count() ? drift.min() : 0.0, 3)
      .cell_fp(drift.count() ? drift.max() : 0.0, 3);
  table.print();

  std::cout << "\nRepair ladder totals: " << local_repairs
            << " local repairs, " << full_resolves << " full re-solves ("
            << (full_resolves > 0
                    ? static_cast<double>(local_repairs) /
                          static_cast<double>(full_resolves)
                    : 0.0)
            << " local:resolve), " << reduced_k << " reduced-k steps, "
            << outages << " outages entered, " << degraded_events
            << " events with an anytime degradation step.\n";
  if (sim_delivery.count() > 0) {
    std::cout << "Packet replay of surviving paths: "
              << sim_delivery.mean() << "% mean delivery, mean p95 latency "
              << sim_p95.mean() << " ticks.\n";
  }
  std::cout << "Expected shape: local repairs dominate full re-solves, full-k"
               " availability stays high under churn, and cost drift stays "
               "a small constant factor above the fresh-solve optimum.\n";
  return 0;
}

// Experiment E3 — phase-1 (Lemma 5) guarantee.
//
// Empirical distribution of α = delay/D and the Lemma-5 score
// delay/D + cost/C_LP across random instances with tightening budgets.
// Lemma 5 predicts score <= 2 always; the table also cross-checks that the
// Lagrangian bound never exceeds the true optimum.
//
// Usage: bench_phase1 [--trials=80] [--n=10] [--seed=3]
#include <iostream>

#include "baselines/brute_force.h"
#include "core/phase1.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace krsp;
  const util::Cli cli(argc, argv);
  const int trials = static_cast<int>(cli.get_int("trials", 80));
  const int n = static_cast<int>(cli.get_int("n", 10));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 3)));
  cli.reject_unknown();

  std::cout << "E3: phase-1 (Lemma 5) — score = delay/D + cost/C_LP "
               "(bounded by 2), alpha = delay/D; n = "
            << n << ", " << trials << " instances per slack\n\n";

  util::Table table({"delay slack", "approx runs", "mean alpha", "max alpha",
                     "mean score", "max score", "LB<=OPT violations",
                     "mean OPT/LB gap", "exact early-out %"});
  for (const double slack : {0.05, 0.15, 0.3, 0.6, 0.9}) {
    util::Stats alpha, score, gap;
    int approx_runs = 0, exact = 0, violations = 0, done = 0;
    while (done < trials) {
      core::RandomInstanceOptions ropt;
      ropt.k = 2;
      ropt.delay_slack = slack;
      const auto inst = core::random_er_instance(rng, n, 0.35, ropt);
      if (!inst) continue;
      const auto p1 = core::phase1_lagrangian(*inst);
      if (p1.status == core::Phase1Status::kNoKDisjointPaths ||
          p1.status == core::Phase1Status::kInfeasible)
        continue;
      ++done;
      if (p1.status == core::Phase1Status::kOptimal) {
        ++exact;
        continue;
      }
      ++approx_runs;
      const auto best = baselines::brute_force_krsp(*inst);
      KRSP_CHECK(best.has_value());
      if (p1.cost_lower_bound > util::Rational(best->cost)) ++violations;
      const double lb = std::max(1e-9, p1.cost_lower_bound.to_double());
      alpha.add(static_cast<double>(p1.delay) /
                std::max(1.0, static_cast<double>(inst->delay_bound)));
      score.add(static_cast<double>(p1.delay) /
                    std::max(1.0, static_cast<double>(inst->delay_bound)) +
                static_cast<double>(p1.cost) / lb);
      gap.add(static_cast<double>(best->cost) / lb);
    }
    table.row()
        .cell_fp(slack, 2)
        .cell(approx_runs)
        .cell_fp(alpha.count() ? alpha.mean() : 0.0)
        .cell_fp(alpha.count() ? alpha.max() : 0.0)
        .cell_fp(score.count() ? score.mean() : 0.0)
        .cell_fp(score.count() ? score.max() : 0.0)
        .cell(violations)
        .cell_fp(gap.count() ? gap.mean() : 0.0)
        .cell_fp(100.0 * exact / trials, 1);
  }
  table.print();
  std::cout << "\nExpected shape: max score <= 2 in every row, zero LB "
               "violations; looser budgets are increasingly solved exactly "
               "by the min-cost flow alone.\n";
  return 0;
}

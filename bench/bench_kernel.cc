// Experiment E13 — bicameral kernel: residual-structure pruning + flat DP
// tables vs the disable_pruning ablation (full state space, legacy nested
// tables), measured end-to-end through cancel_cycles on Erdős–Rényi
// instances. Every timed configuration is checked bit-identical to every
// other — pruned vs ablation, serial workspace vs the (possibly OpenMP)
// parallel scan — so the speedup cannot come from changed semantics.
//
// Usage: bench_kernel [--n=256] [--instances=4] [--k=3] [--reps=3]
//                     [--seed=13] [--out=BENCH_kernel.json] [--smoke]
//
// --smoke shrinks the suite for CI; scripts/check_bench.py compares the
// emitted JSON against the committed BENCH_kernel.json baseline and fails
// on regression. Gate metrics are ratios (speedup, pruned fraction), not
// absolute times, so the comparison is host-independent.
#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "api/krsp.h"
#include "flow/disjoint.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace krsp;
using Clock = std::chrono::steady_clock;

struct Workload {
  core::Instance instance;
  core::PathSet start;        // min-cost k disjoint paths (delay-infeasible)
  graph::Cost guess = 0;      // cost of a delay-feasible alternative (>= C_OPT)
};

// Builds instances whose min-cost start violates the delay bound, so
// cancel_cycles has real work, with a cost guess that Lemma 11 guarantees
// succeeds (the min-delay path set is delay-feasible and costs `guess`).
std::vector<Workload> build_suite(int instances, int n, int k,
                                  std::uint64_t seed) {
  std::vector<Workload> suite;
  util::Rng rng(seed);
  int attempts = 0;
  while (static_cast<int>(suite.size()) < instances && attempts < 200) {
    ++attempts;
    core::RandomInstanceOptions io;
    io.k = k;
    io.delay_slack = 0.15;
    auto inst = core::random_er_instance(rng, n, 6.0 / n, io);
    if (!inst) continue;
    const auto start = flow::min_weight_disjoint_paths(
        inst->graph, inst->s, inst->t, inst->k, 1, 0);
    if (!start) continue;
    if (start->total_delay <= inst->delay_bound) continue;  // nothing to do
    const auto feasible = flow::min_weight_disjoint_paths(
        inst->graph, inst->s, inst->t, inst->k, 0, 1);
    if (!feasible) continue;
    Workload w;
    w.instance = std::move(*inst);
    w.start = core::PathSet(start->paths);
    w.guess = core::PathSet(feasible->paths).total_cost(w.instance.graph);
    suite.push_back(std::move(w));
  }
  return suite;
}

struct ConfigRun {
  core::CycleCancelResult result;
  double wall_ms = 0;  // best of reps
};

ConfigRun run_config(const Workload& w, bool disable_pruning, bool serial_ws,
                     int reps) {
  core::CycleCancelOptions opt;
  opt.finder.disable_pruning = disable_pruning;
  ConfigRun out;
  out.wall_ms = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    std::optional<core::BicameralWorkspace> ws;
    if (serial_ws) ws.emplace();
    const auto t0 = Clock::now();
    auto r = core::cancel_cycles(w.instance, w.start, w.guess, opt,
                                 ws ? &*ws : nullptr);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    out.wall_ms = std::min(out.wall_ms, ms);
    out.result = std::move(r);
  }
  return out;
}

bool identical(const core::CycleCancelResult& a,
               const core::CycleCancelResult& b) {
  return a.status == b.status && a.cost == b.cost && a.delay == b.delay &&
         a.paths.paths() == b.paths.paths();
}

void write_json(const std::string& path, int n, int instances, int k,
                int reps, std::uint64_t seed, bool smoke, bool all_identical,
                double pruned_ms, double ablation_ms, double pruned_par_ms,
                double ablation_par_ms, double pruned_frac,
                std::int64_t sccs_skipped, std::int64_t pruned_peak_bytes,
                std::int64_t ablation_peak_bytes) {
  std::ofstream out(path);
  const double speedup_serial = ablation_ms / pruned_ms;
  const double speedup_parallel = ablation_par_ms / pruned_par_ms;
  out << "{\n";
  out << "  \"experiment\": \"E13\",\n";
  out << "  \"config\": {\"n\": " << n << ", \"instances\": " << instances
      << ", \"k\": " << k << ", \"reps\": " << reps << ", \"seed\": " << seed
      << ", \"smoke\": " << (smoke ? "true" : "false") << "},\n";
  out << "  \"identical\": " << (all_identical ? "true" : "false") << ",\n";
  out << "  \"wall_ms\": {\"pruned_serial\": " << pruned_ms
      << ", \"ablation_serial\": " << ablation_ms
      << ", \"pruned_parallel\": " << pruned_par_ms
      << ", \"ablation_parallel\": " << ablation_par_ms << "},\n";
  out << "  \"memory\": {\"pruned_peak_dp_bytes\": " << pruned_peak_bytes
      << ", \"ablation_peak_dp_bytes\": " << ablation_peak_bytes << "},\n";
  out << "  \"telemetry\": {\"sccs_skipped\": " << sccs_skipped << "},\n";
  // Gate metrics are host-independent ratios. "min" is an absolute floor
  // enforced by check_bench.py on top of the 25% relative-regression rule.
  out << "  \"gate\": {\n";
  out << "    \"speedup_serial\": {\"value\": " << speedup_serial
      << ", \"direction\": \"higher\", \"min\": 1.5},\n";
  out << "    \"speedup_parallel\": {\"value\": " << speedup_parallel
      << ", \"direction\": \"higher\", \"min\": 1.0},\n";
  out << "    \"anchors_pruned_frac\": {\"value\": " << pruned_frac
      << ", \"direction\": \"higher\", \"min\": 0.5},\n";
  out << "    \"dp_bytes_ratio\": {\"value\": "
      << (pruned_peak_bytes > 0
              ? static_cast<double>(ablation_peak_bytes) /
                    static_cast<double>(pruned_peak_bytes)
              : 0.0)
      << ", \"direction\": \"higher\", \"min\": 1.0}\n";
  out << "  }\n";
  out << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool smoke = cli.get_bool("smoke", false);
  const int n = static_cast<int>(cli.get_int("n", smoke ? 64 : 256));
  const int instances =
      static_cast<int>(cli.get_int("instances", smoke ? 2 : 4));
  const int k = static_cast<int>(cli.get_int("k", 3));
  const int reps = static_cast<int>(cli.get_int("reps", smoke ? 2 : 3));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 13));
  const std::string out_path = cli.get_string("out", "");
  cli.reject_unknown();

  const auto suite = build_suite(instances, n, k, seed);
  if (static_cast<int>(suite.size()) < instances) {
    std::cerr << "FAIL: only " << suite.size() << "/" << instances
              << " delay-infeasible-start instances found\n";
    return 1;
  }
  std::cout << "E13: bicameral kernel pruning vs ablation through "
               "cancel_cycles, "
            << suite.size() << " ER instance(s), n=" << n << ", k=" << k
            << ", best of " << reps << " rep(s)\n\n";

  util::Table table({"instance", "pruned ms", "ablation ms", "speedup",
                     "pruned(par) ms", "ablation(par) ms", "identical"});
  double pruned_ms = 0, ablation_ms = 0;
  double pruned_par_ms = 0, ablation_par_ms = 0;
  bool all_identical = true;
  core::BicameralStats pruned_stats_total;
  std::int64_t ablation_peak_bytes = 0;

  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto& w = suite[i];
    const auto pruned_serial = run_config(w, false, true, reps);
    const auto ablation_serial = run_config(w, true, true, reps);
    const auto pruned_parallel = run_config(w, false, false, reps);
    const auto ablation_parallel = run_config(w, true, false, reps);

    const bool same = identical(pruned_serial.result, ablation_serial.result) &&
                      identical(pruned_serial.result, pruned_parallel.result) &&
                      identical(pruned_serial.result, ablation_parallel.result);
    all_identical = all_identical && same;
    if (pruned_serial.result.status != core::CancelStatus::kSuccess) {
      std::cerr << "FAIL: instance " << i
                << " did not cancel to feasibility (guess should certify "
                   "success)\n";
      return 1;
    }

    pruned_ms += pruned_serial.wall_ms;
    ablation_ms += ablation_serial.wall_ms;
    pruned_par_ms += pruned_parallel.wall_ms;
    ablation_par_ms += ablation_parallel.wall_ms;

    const auto& fs = pruned_serial.result.telemetry.finder_stats;
    pruned_stats_total.anchors_scanned += fs.anchors_scanned;
    pruned_stats_total.anchors_pruned += fs.anchors_pruned;
    pruned_stats_total.sccs_skipped += fs.sccs_skipped;
    pruned_stats_total.peak_dp_bytes =
        std::max(pruned_stats_total.peak_dp_bytes, fs.peak_dp_bytes);
    ablation_peak_bytes = std::max(
        ablation_peak_bytes,
        ablation_serial.result.telemetry.finder_stats.peak_dp_bytes);

    table.row()
        .cell(static_cast<std::int64_t>(i))
        .cell_fp(pruned_serial.wall_ms, 2)
        .cell_fp(ablation_serial.wall_ms, 2)
        .cell_fp(ablation_serial.wall_ms / pruned_serial.wall_ms, 2)
        .cell_fp(pruned_parallel.wall_ms, 2)
        .cell_fp(ablation_parallel.wall_ms, 2)
        .cell(same ? "yes" : "NO");
  }
  table.print();

  const double pruned_frac =
      static_cast<double>(pruned_stats_total.anchors_pruned) /
      static_cast<double>(pruned_stats_total.anchors_pruned +
                          pruned_stats_total.anchors_scanned);
  std::cout << "\ntotals: pruned " << pruned_ms << " ms, ablation "
            << ablation_ms << " ms, serial speedup "
            << ablation_ms / pruned_ms << "x, parallel speedup "
            << ablation_par_ms / pruned_par_ms << "x\n";
  std::cout << "anchors pruned: " << 100.0 * pruned_frac
            << "%, SCCs skipped: " << pruned_stats_total.sccs_skipped
            << ", peak DP bytes: " << pruned_stats_total.peak_dp_bytes
            << " (pruned) vs " << ablation_peak_bytes << " (ablation)\n";

  if (!out_path.empty()) {
    write_json(out_path, n, static_cast<int>(suite.size()), k, reps, seed,
               smoke, all_identical, pruned_ms, ablation_ms, pruned_par_ms,
               ablation_par_ms, pruned_frac, pruned_stats_total.sccs_skipped,
               pruned_stats_total.peak_dp_bytes, ablation_peak_bytes);
    std::cout << "wrote " << out_path << "\n";
  }

  if (!all_identical) {
    std::cerr << "FAIL: pruned/ablation or serial/parallel results diverged\n";
    return 1;
  }
  std::cout << "all configurations bit-identical\n";
  return 0;
}

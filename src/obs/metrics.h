// krsp::obs — lock-free metrics: counters, gauges, and log-bucketed
// latency histograms with p50/p90/p99/p999 extraction, exported as
// Prometheus-style text exposition (the `metrics` wire op and
// docs/OBSERVABILITY.md).
//
// All recording paths are wait-free relaxed atomics: a Counter::inc or
// Histogram::record is a handful of fetch_adds, safe from any thread,
// never blocking a solve or a transport. Rendering walks the registry
// under its mutex but only reads the atomics, so recorders are never
// paused.
//
// Histogram buckets are powers of two: bucket 0 holds the value 0,
// bucket i >= 1 holds [2^(i-1), 2^i), and the top bucket is open-ended
// (values beyond it clamp in, keeping record() total). Quantiles
// interpolate linearly inside the landing bucket, which makes them
// monotone in q by construction (obs_test.cc property-tests this) at
// the cost of at most a 2x value error — the right trade for latency
// percentiles spanning nanoseconds to minutes in 48 fixed slots.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

namespace krsp::obs {

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous signed level.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log-bucketed histogram of non-negative integer samples (latencies are
/// recorded in nanoseconds by convention; the unit is the caller's).
class Histogram {
 public:
  static constexpr int kBuckets = 48;

  void record(std::uint64_t value) {
    buckets_[static_cast<std::size_t>(bucket_index(value))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// Bucket 0 <- {0}; bucket i in [1, kBuckets-1) <- [2^(i-1), 2^i); the
  /// top bucket absorbs everything at or beyond 2^(kBuckets-2).
  [[nodiscard]] static int bucket_index(std::uint64_t value) {
    if (value == 0) return 0;
    const int w = std::bit_width(value);  // in [1, 64]
    return w < kBuckets ? w : kBuckets - 1;
  }
  /// Inclusive lower bound of bucket i.
  [[nodiscard]] static std::uint64_t bucket_lower(int i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }
  /// Exclusive upper bound of bucket i (the top bucket reports twice its
  /// lower bound — a rendering convention, not a recording limit).
  [[nodiscard]] static std::uint64_t bucket_upper(int i) {
    return i == 0 ? 1 : std::uint64_t{1} << i;
  }

  /// Point-in-time copy; quantiles are computed on the snapshot so one
  /// exposition renders a consistent set.
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    /// q in [0, 1]. Linear interpolation inside the landing bucket;
    /// 0 when the histogram is empty. Monotone in q.
    [[nodiscard]] double quantile(double q) const;
  };
  [[nodiscard]] Snapshot snapshot() const;

  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Named metric registry. Metrics are identified by (family, labels)
/// where `labels` is a ready-to-emit Prometheus label body, e.g.
/// `class="interactive"` — empty for unlabeled metrics. Lookup is
/// get-or-create under a mutex; returned references are stable for the
/// registry's lifetime, so hot paths resolve once and cache the pointer.
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& family, const std::string& labels = "");
  Gauge& gauge(const std::string& family, const std::string& labels = "");
  Histogram& histogram(const std::string& family,
                       const std::string& labels = "");

  /// Prometheus-style text exposition: counters and gauges as single
  /// samples, histograms as summaries with quantile="0.5|0.9|0.99|0.999"
  /// plus _sum and _count. Families sort lexicographically; one # TYPE
  /// line per family.
  [[nodiscard]] std::string render_prometheus() const;

  /// Zeros every registered metric (benches and tests; registration and
  /// cached references survive).
  void reset();

 private:
  using Key = std::pair<std::string, std::string>;
  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace krsp::obs

// krsp::obs — low-overhead span tracing for the solver and serving tiers.
//
// A Span is an RAII timer around one named region of work ("phase1",
// "cycle_cancel_round", "cache_lookup", ...); completed spans land in a
// per-thread buffer and are exported after the fact as Chrome trace-event
// JSON (obs/export.h) for flamegraph-style inspection in chrome://tracing
// or Perfetto. docs/OBSERVABILITY.md lists the span taxonomy.
//
// Overhead contract (gated by E17, bench/bench_obs.cc):
//   * tracing disabled (the default): one relaxed atomic load per span —
//     no clock reads, no allocation, no locking;
//   * tracing enabled: two clock reads (raw rdtsc with a calibrated
//     tick->ns scale on x86-64 when the kernel clocksource is tsc;
//     steady_clock otherwise) plus an append to a thread-local buffer
//     whose mutex is uncontended except during snapshot();
//   * compiled out (-DKRSP_OBS_DISABLED, CMake -DKRSP_OBS=OFF): the
//     KRSP_OBS_* macros expand to nothing, spans cost zero.
//
// Spans are pure observers: they never touch solver state, so results are
// bit-identical with tracing on or off (pinned by obs_test.cc).
//
// Instrument with the macros, not the classes, so call sites compile out:
//
//   void phase1(...) {
//     KRSP_OBS_SPAN("phase1");          // RAII: closes at scope exit
//     ...
//   }
//
//   const std::int64_t t0 = KRSP_OBS_NOW_NS();   // manual span (e.g.
//   ...queue wait crossing threads...             //  start/end in
//   KRSP_OBS_RECORD("queue_wait", t0, KRSP_OBS_NOW_NS());  // different
//                                                          //  scopes)
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace krsp::obs {

/// One completed span. `name` must be a string literal (the exporter and
/// the buffers store the pointer, not a copy).
struct SpanRecord {
  const char* name = nullptr;
  std::int64_t start_ns = 0;  // steady-clock ns since tracer epoch
  std::int64_t dur_ns = 0;
  std::uint32_t tid = 0;  // dense thread id, assigned at first record
};

/// Process-wide trace collector. Disabled by default; enable() is called
/// by the tools when --trace-out is given. All methods are thread-safe.
class Tracer {
 public:
  static Tracer& global();

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Sampling knob: keep 1 of every `n` spans per thread (n <= 1 keeps
  /// all). Applies to record(); long traces of repetitive inner spans
  /// (mcmf, anchor_dp_batch) shrink by n while the shape survives.
  void set_sample_every(std::uint32_t n) {
    sample_every_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint32_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  /// Per-thread buffer cap; spans beyond it are counted in dropped().
  void set_max_spans_per_thread(std::size_t cap) {
    max_spans_per_thread_.store(cap, std::memory_order_relaxed);
  }

  /// Steady-clock ns since the tracer's construction (its epoch). now_ns
  /// always reads the clock; now_ns_if_enabled returns 0 without reading
  /// the clock when tracing is off — use it for manual span endpoints.
  [[nodiscard]] std::int64_t now_ns() const;
  [[nodiscard]] std::int64_t now_ns_if_enabled() const {
    return enabled() ? now_ns() : 0;
  }

  /// Appends one completed span to the calling thread's buffer (no-op
  /// when disabled). Timestamps are tracer-epoch ns as from now_ns().
  void record(const char* name, std::int64_t start_ns, std::int64_t end_ns);

  /// All spans recorded so far, across every thread that ever recorded
  /// (including exited ones). Ordering across threads is unspecified.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;

  /// Discards recorded spans and the dropped counter; keeps enablement,
  /// sampling, and thread registrations.
  void clear();

  /// Spans discarded because a thread buffer hit its cap.
  [[nodiscard]] std::uint64_t dropped() const;

 private:
  Tracer();
  struct ThreadBuffer;
  ThreadBuffer& local_buffer();

  std::chrono::steady_clock::time_point epoch_;
  // TSC fast path (x86-64 with the kernel on the tsc clocksource):
  // now_ns() is rdtsc * ns_per_tick_ relative to tsc_epoch_, calibrated
  // once in the constructor. ns_per_tick_ == 0 means "use steady_clock".
  std::uint64_t tsc_epoch_ = 0;
  double ns_per_tick_ = 0.0;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint32_t> sample_every_{1};
  std::atomic<std::size_t> max_spans_per_thread_{std::size_t{1} << 20};
  mutable std::mutex registry_mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::uint32_t next_tid_ = 0;
};

/// RAII span: stamps the start on construction (when tracing is enabled)
/// and records on destruction. Prefer the KRSP_OBS_SPAN macro.
class Span {
 public:
  explicit Span(const char* name) noexcept {
    Tracer& t = Tracer::global();
    if (t.enabled()) {
      name_ = name;
      start_ns_ = t.now_ns();
    }
  }
  ~Span() {
    if (name_ != nullptr) {
      Tracer& t = Tracer::global();
      t.record(name_, start_ns_, t.now_ns());
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  std::int64_t start_ns_ = 0;
};

}  // namespace krsp::obs

#if defined(KRSP_OBS_DISABLED)
#define KRSP_OBS_SPAN(name) \
  do {                      \
  } while (false)
#define KRSP_OBS_RECORD(name, start_ns, end_ns) \
  do {                                          \
    (void)(start_ns);                           \
    (void)(end_ns);                             \
  } while (false)
#define KRSP_OBS_NOW_NS() (std::int64_t{0})
#else
#define KRSP_OBS_CONCAT_INNER(a, b) a##b
#define KRSP_OBS_CONCAT(a, b) KRSP_OBS_CONCAT_INNER(a, b)
#define KRSP_OBS_SPAN(name) \
  const ::krsp::obs::Span KRSP_OBS_CONCAT(krsp_obs_span_, __LINE__)(name)
#define KRSP_OBS_RECORD(name, start_ns, end_ns) \
  ::krsp::obs::Tracer::global().record((name), (start_ns), (end_ns))
#define KRSP_OBS_NOW_NS() ::krsp::obs::Tracer::global().now_ns_if_enabled()
#endif

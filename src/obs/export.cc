#include "obs/export.h"

#include <cstdio>
#include <fstream>

namespace krsp::obs {

namespace {

// Microseconds with nanosecond precision kept as a fraction.
std::string us(std::int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

}  // namespace

void write_chrome_trace(std::ostream& out,
                        const std::vector<SpanRecord>& spans) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << s.name << "\",\"cat\":\"krsp\",\"ph\":\"X\""
        << ",\"ts\":" << us(s.start_ns) << ",\"dur\":" << us(s.dur_ns)
        << ",\"pid\":1,\"tid\":" << s.tid << '}';
  }
  out << "]}\n";
}

bool write_chrome_trace_file(const std::string& path, std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot write " + path;
    return false;
  }
  write_chrome_trace(out, Tracer::global().snapshot());
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

}  // namespace krsp::obs

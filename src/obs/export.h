// krsp::obs — trace exporters.
//
// Chrome trace-event JSON ("X" complete events, microsecond timestamps):
// load the file in chrome://tracing or https://ui.perfetto.dev for a
// flamegraph-style view of one run. The format is the stable subset
// every trace viewer accepts: {"traceEvents":[{"name","ph","ts","dur",
// "pid","tid"}...]}.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace krsp::obs {

/// Serializes spans as Chrome trace-event JSON. Span names must be the
/// tracer's static identifiers (no JSON escaping is applied).
void write_chrome_trace(std::ostream& out,
                        const std::vector<SpanRecord>& spans);

/// Snapshots the global tracer and writes it to `path`. Returns false
/// (with *error set, when given) if the file cannot be written.
bool write_chrome_trace_file(const std::string& path,
                             std::string* error = nullptr);

}  // namespace krsp::obs

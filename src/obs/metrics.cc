#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace krsp::obs {

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Target rank in [0, count]; the sample at cumulative position `target`
  // (1-based, fractional) is the quantile.
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t in_bucket = buckets[static_cast<std::size_t>(i)];
    if (in_bucket == 0) continue;
    const double cum_after = static_cast<double>(cum + in_bucket);
    if (cum_after >= target) {
      const auto lo = static_cast<double>(bucket_lower(i));
      const auto hi = static_cast<double>(bucket_upper(i));
      // Fraction of this bucket's mass below the target rank.
      const double frac =
          std::clamp((target - static_cast<double>(cum)) /
                         static_cast<double>(in_bucket),
                     0.0, 1.0);
      return lo + frac * (hi - lo);
    }
    cum += in_bucket;
  }
  // All mass consumed without reaching target (q == 1 rounding): top
  // non-empty bucket's upper bound.
  for (int i = kBuckets - 1; i >= 0; --i)
    if (buckets[static_cast<std::size_t>(i)] != 0)
      return static_cast<double>(bucket_upper(i));
  return 0.0;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  for (int i = 0; i < kBuckets; ++i)
    s.buckets[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  // Concurrent recorders can leave count_ ahead of the bucket array (or
  // behind); pin the snapshot's count to the bucket mass so quantile()
  // sees a self-consistent distribution.
  std::uint64_t mass = 0;
  for (const auto b : s.buckets) mass += b;
  s.count = mass;
  return s;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& family,
                           const std::string& labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[Key{family, labels}];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& family, const std::string& labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[Key{family, labels}];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& family,
                               const std::string& labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[Key{family, labels}];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

namespace {

std::string sample_name(const std::string& family, const std::string& labels,
                        const std::string& extra_label = "") {
  std::string out = family;
  if (labels.empty() && extra_label.empty()) return out;
  out.push_back('{');
  out += labels;
  if (!labels.empty() && !extra_label.empty()) out.push_back(',');
  out += extra_label;
  out.push_back('}');
  return out;
}

// %.17g round-trips doubles; trailing noise digits are fine for an
// exposition consumed by monitoring, not by equality checks.
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string Registry::render_prometheus() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  std::string last_family;
  for (const auto& [key, c] : counters_) {
    if (key.first != last_family) {
      out << "# TYPE " << key.first << " counter\n";
      last_family = key.first;
    }
    out << sample_name(key.first, key.second) << ' ' << c->value() << '\n';
  }
  last_family.clear();
  for (const auto& [key, g] : gauges_) {
    if (key.first != last_family) {
      out << "# TYPE " << key.first << " gauge\n";
      last_family = key.first;
    }
    out << sample_name(key.first, key.second) << ' ' << g->value() << '\n';
  }
  last_family.clear();
  static constexpr std::pair<const char*, double> kQuantiles[] = {
      {"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}, {"0.999", 0.999}};
  for (const auto& [key, h] : histograms_) {
    if (key.first != last_family) {
      out << "# TYPE " << key.first << " summary\n";
      last_family = key.first;
    }
    const Histogram::Snapshot s = h->snapshot();
    for (const auto& [label, q] : kQuantiles)
      out << sample_name(key.first, key.second,
                         std::string("quantile=\"") + label + '"')
          << ' ' << fmt(s.quantile(q)) << '\n';
    out << sample_name(key.first + "_sum", key.second) << ' ' << s.sum << '\n';
    out << sample_name(key.first + "_count", key.second) << ' ' << s.count
        << '\n';
  }
  return out.str();
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& kv : counters_) kv.second->reset();
  for (auto& kv : gauges_) kv.second->reset();
  for (auto& kv : histograms_) kv.second->reset();
}

}  // namespace krsp::obs

#include "obs/trace.h"

#include <fstream>
#include <string>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <x86intrin.h>
#define KRSP_OBS_HAVE_TSC 1
#endif

namespace krsp::obs {

namespace {

#if defined(KRSP_OBS_HAVE_TSC)
// The TSC fast path is only sound when the kernel itself trusts the TSC
// as its clocksource (constant rate, synchronized across cores — the
// same conditions under which clock_gettime is vDSO-fast). When the
// kernel picked something else (hpet, acpi_pm, a VM without invariant
// TSC), rdtsc may drift or jump, so the tracer falls back to the
// steady-clock path.
bool kernel_clocksource_is_tsc() {
  std::ifstream in(
      "/sys/devices/system/clocksource/clocksource0/current_clocksource");
  std::string source;
  in >> source;
  return source == "tsc";
}
#endif

}  // namespace

// Each recording thread owns one buffer. The mutex is uncontended in
// steady state (only the owner locks it per record); snapshot()/clear()
// take it briefly from the draining thread. Buffers are shared_ptr-held
// by the registry so spans survive thread exit.
struct Tracer::ThreadBuffer {
  std::mutex mu;
  std::vector<SpanRecord> spans;
  std::uint64_t dropped = 0;
  std::uint32_t tid = 0;
  // Sampling state; touched only by the owning thread.
  std::uint32_t sample_counter = 0;
};

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
#if defined(KRSP_OBS_HAVE_TSC)
  if (!kernel_clocksource_is_tsc()) return;
  // Calibrate ticks -> ns once against the steady clock over a ~500 us
  // window: clock-read noise (~2 x 30 ns) over that window bounds the
  // scale error near 0.01%, far below what span timings resolve. The
  // spin is a one-time cost at first Tracer::global() use.
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t c0 = __rdtsc();
  auto t1 = t0;
  do {
    t1 = std::chrono::steady_clock::now();
  } while (t1 - t0 < std::chrono::microseconds(500));
  const std::uint64_t c1 = __rdtsc();
  if (c1 <= c0) return;  // migration across unsynced sockets; stay safe
  tsc_epoch_ = c0;
  ns_per_tick_ = static_cast<double>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         t1 - t0)
                         .count()) /
                 static_cast<double>(c1 - c0);
  epoch_ = t0;  // keep the two timebases anchored to the same instant
#endif
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

std::int64_t Tracer::now_ns() const {
#if defined(KRSP_OBS_HAVE_TSC)
  // Fast path: one unserialized rdtsc plus a multiply (~8 ns) instead of
  // a vDSO clock_gettime (~30 ns hot, worse when its page is cold).
  // Unserialized reads can reorder a few instructions either way; spans
  // here are microseconds long, so that slack is invisible. double holds
  // tick deltas exactly up to 2^53 (~a month of uptime at 3 GHz).
  if (ns_per_tick_ > 0.0)
    return static_cast<std::int64_t>(
        static_cast<double>(__rdtsc() - tsc_epoch_) * ns_per_tick_);
#endif
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> tl;
  if (tl == nullptr) {
    tl = std::make_shared<ThreadBuffer>();
    const std::lock_guard<std::mutex> lock(registry_mu_);
    tl->tid = next_tid_++;
    buffers_.push_back(tl);
  }
  return *tl;
}

void Tracer::record(const char* name, std::int64_t start_ns,
                    std::int64_t end_ns) {
  if (!enabled()) return;
  ThreadBuffer& b = local_buffer();
  const std::uint32_t every = sample_every_.load(std::memory_order_relaxed);
  if (every > 1 && (b.sample_counter++ % every) != 0) return;
  const std::size_t cap = max_spans_per_thread_.load(std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(b.mu);
  if (b.spans.size() >= cap) {
    ++b.dropped;
    return;
  }
  b.spans.push_back(SpanRecord{name, start_ns, end_ns - start_ns, b.tid});
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(registry_mu_);
    buffers = buffers_;
  }
  std::vector<SpanRecord> out;
  for (const auto& b : buffers) {
    const std::lock_guard<std::mutex> lock(b->mu);
    out.insert(out.end(), b->spans.begin(), b->spans.end());
  }
  return out;
}

void Tracer::clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(registry_mu_);
    buffers = buffers_;
  }
  for (const auto& b : buffers) {
    const std::lock_guard<std::mutex> lock(b->mu);
    b->spans.clear();
    b->dropped = 0;
  }
}

std::uint64_t Tracer::dropped() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(registry_mu_);
    buffers = buffers_;
  }
  std::uint64_t total = 0;
  for (const auto& b : buffers) {
    const std::lock_guard<std::mutex> lock(b->mu);
    total += b->dropped;
  }
  return total;
}

}  // namespace krsp::obs

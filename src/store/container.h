// Zero-copy access to one `.krspb` instance container (store/format.h).
//
// CsrContainer::open maps the file read-only and validates it — magic,
// version, endianness, section bounds and alignment, CSR monotonicity,
// target ranges, edge-id permutation, and the content digest — without
// parsing a single edge from text. The accessors then hand out spans
// over the mapped sections directly: no allocation, no copy, and the
// kernel shares the pages across every process that maps the same file.
//
// Consumption tiers, cheapest first:
//   * offsets()/targets()/costs()/delays()/edge_ids() — raw mapped spans;
//   * csr_view() — a graph::CsrView assembled from the sections in one
//     linear pass (the bicameral scan's preferred adjacency form);
//   * instance() — a fully materialized core::Instance with edge ids
//     restored to their original numbering, for the mutating solver
//     internals (residual graphs, auxiliary layers).
//
// Lifetime: spans and csr_view() borrow the mapping and are valid only
// while the container is alive; instance() owns its memory. The store
// tests run under ASan/UBSan precisely because mmap lifetime and
// alignment bugs are what sanitizers catch.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "core/instance.h"
#include "graph/csr.h"
#include "store/format.h"

namespace krsp::store {

class CsrContainer {
 public:
  /// Serializes `inst` into a fresh container at `path` (overwrites).
  /// Arcs are grouped by tail vertex with original edge ids preserved in
  /// the ids section; the digest is computed over the exact bytes
  /// written, so write_file → open round-trips bit-for-bit. Throws
  /// util::CheckError on I/O failure or an invalid instance.
  static void write_file(const std::string& path, const core::Instance& inst);

  /// Opens and maps `path` read-only, validating the full format
  /// contract. Throws util::CheckError naming the file and the first
  /// violated invariant (bad magic, truncation, digest mismatch, ...);
  /// a malformed file is a load error, never undefined behavior later.
  static CsrContainer open(const std::string& path);

  CsrContainer(CsrContainer&& other) noexcept;
  CsrContainer& operator=(CsrContainer&& other) noexcept;
  CsrContainer(const CsrContainer&) = delete;
  CsrContainer& operator=(const CsrContainer&) = delete;
  ~CsrContainer();

  [[nodiscard]] int num_vertices() const {
    return static_cast<int>(header_.num_vertices);
  }
  [[nodiscard]] int num_edges() const {
    return static_cast<int>(header_.num_edges);
  }
  [[nodiscard]] graph::VertexId s() const {
    return static_cast<graph::VertexId>(header_.s);
  }
  [[nodiscard]] graph::VertexId t() const {
    return static_cast<graph::VertexId>(header_.t);
  }
  [[nodiscard]] int k() const { return static_cast<int>(header_.k); }
  [[nodiscard]] graph::Delay delay_bound() const {
    return header_.delay_bound;
  }
  [[nodiscard]] std::uint64_t digest() const { return header_.digest; }
  [[nodiscard]] std::uint64_t file_bytes() const {
    return header_.file_bytes;
  }

  // Raw mapped sections (valid while the container lives).
  [[nodiscard]] std::span<const std::uint64_t> offsets() const;
  [[nodiscard]] std::span<const std::int32_t> targets() const;
  [[nodiscard]] std::span<const graph::Cost> costs() const;
  [[nodiscard]] std::span<const graph::Delay> delays() const;
  [[nodiscard]] std::span<const std::int32_t> edge_ids() const;

  /// Adjacency view assembled from the mapped sections in one linear
  /// pass (no text parsing, no Digraph construction).
  [[nodiscard]] graph::CsrView csr_view() const;

  /// Materializes the instance: a Digraph with edges restored to their
  /// original id order, plus the stored default query. O(n + m), owns
  /// its memory, outlives the container.
  [[nodiscard]] core::Instance instance() const;

 private:
  CsrContainer() = default;

  const void* map_ = nullptr;
  std::size_t map_len_ = 0;
  Header header_;
};

/// Digest over the header's query fields and all section words, exactly
/// as write_file computes it; exposed so tests can confirm corruption
/// detection and tools can print/verify digests.
[[nodiscard]] std::uint64_t compute_digest(
    const Header& header, std::span<const std::uint64_t> offsets,
    std::span<const std::int32_t> targets, std::span<const graph::Cost> costs,
    std::span<const graph::Delay> delays, std::span<const std::int32_t> ids);

}  // namespace krsp::store

#include "store/catalog.h"

#include <filesystem>
#include <utility>

#include "api/fingerprint.h"
#include "store/container.h"
#include "util/check.h"

namespace krsp::store {

TopologyCatalog TopologyCatalog::load(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const bool is_dir = fs::is_directory(dir, ec);
  KRSP_CHECK_MSG(is_dir && !ec, dir << ": not a readable directory");

  TopologyCatalog catalog;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".krspb")
      continue;
    const std::string id = entry.path().stem().string();
    KRSP_CHECK_MSG(!catalog.entries_.contains(id),
                   dir << ": duplicate topology id '" << id << "'");
    const CsrContainer container = CsrContainer::open(entry.path().string());
    auto instance =
        std::make_shared<const core::Instance>(container.instance());
    const api::GraphPrefix prefix = api::graph_fingerprint_prefix(*instance);

    auto ref = std::make_shared<api::TopologyRef>();
    ref->id = id;
    ref->digest = container.digest();
    ref->fp_prefix = prefix.fnv;
    ref->fp2_prefix = prefix.splitmix;
    ref->instance = std::move(instance);

    Info info;
    info.id = id;
    info.num_vertices = container.num_vertices();
    info.num_edges = container.num_edges();
    info.s = container.s();
    info.t = container.t();
    info.k = container.k();
    info.delay_bound = container.delay_bound();
    info.digest = container.digest();
    info.file_bytes = container.file_bytes();
    catalog.entries_.emplace(id, Entry{std::move(ref), std::move(info)});
    // The mapping is dropped here: the catalog serves from the
    // materialized instance, so container lifetime ends with load. Tools
    // that want raw zero-copy spans hold the CsrContainer directly.
  }
  return catalog;
}

std::shared_ptr<const api::TopologyRef> TopologyCatalog::find(
    const std::string& id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : it->second.ref;
}

std::vector<TopologyCatalog::Info> TopologyCatalog::list() const {
  std::vector<Info> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) out.push_back(entry.info);
  return out;
}

}  // namespace krsp::store

// Daemon-side registry of named topologies backed by `.krspb` containers.
//
// TopologyCatalog::load mmaps every container in a directory once at
// startup, validates each (CsrContainer::open's full contract), and
// materializes one shared api::TopologyRef per file — graph, default
// query, content digest, and the precomputed fingerprint prefixes that
// make per-request cache keying O(1). The id of a topology is its
// filename stem: `data/corpus/grid64.krspb` serves as `"grid64"`.
//
// The catalog is immutable after load: find() and list() are const,
// allocation-free on the lookup path, and safe to call from any number
// of connection threads concurrently with no locking (the server's
// ProtocolV2 tests exercise exactly that under TSan). Refreshing the
// topology set means building a new catalog and swapping it at a higher
// level.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/krsp.h"

namespace krsp::store {

class TopologyCatalog {
 public:
  /// Summary row for the `topologies` / `topology` wire ops.
  struct Info {
    std::string id;
    int num_vertices = 0;
    int num_edges = 0;
    graph::VertexId s = graph::kInvalidVertex;
    graph::VertexId t = graph::kInvalidVertex;
    int k = 1;
    graph::Delay delay_bound = 0;
    std::uint64_t digest = 0;
    std::uint64_t file_bytes = 0;
  };

  /// Empty catalog (no --catalog flag): every find() misses.
  TopologyCatalog() = default;

  /// Loads every `*.krspb` in `dir` (non-recursive). Throws
  /// util::CheckError if the directory is unreadable, any container
  /// fails validation, or two files map to the same id; a server should
  /// fail fast at startup rather than serve a partial catalog.
  static TopologyCatalog load(const std::string& dir);

  /// Shared ref for `id`, or nullptr if unknown. Lock-free.
  [[nodiscard]] std::shared_ptr<const api::TopologyRef> find(
      const std::string& id) const;

  /// All topologies, sorted by id.
  [[nodiscard]] std::vector<Info> list() const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

 private:
  struct Entry {
    std::shared_ptr<const api::TopologyRef> ref;
    Info info;
  };

  // std::map keeps list() ordering trivial; lookups are read-only after
  // load so the tree never rebalances under readers.
  std::map<std::string, Entry> entries_;
};

}  // namespace krsp::store

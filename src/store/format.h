// On-disk layout of the `.krspb` zero-copy instance container.
//
// A `.krspb` file is one kRSP instance in a fixed, mmap-able binary
// layout: a 128-byte header followed by five 64-byte-aligned sections
// holding the graph in compressed-sparse-row form. Loading is
// open + mmap + validate — no per-edge parsing — and the mapped sections
// are consumed in place (graph::CsrView, store::CsrContainer spans);
// the text `.kri` format (core/io.h) remains the human-readable
// interchange form, converted by `krsp_pack`.
//
//   header   (128 bytes, little-endian, see Header)
//   offsets  (n+1) x u64   CSR row starts into the arc sections
//   targets  m x i32       head vertex per arc, grouped by tail
//   costs    m x i64
//   delays   m x i64
//   ids      m x i32       original edge id per CSR slot (a permutation
//                          of [0, m): edge ids are part of the solve
//                          contract — responses name paths by edge id —
//                          so repacking must not renumber them)
//
// Every section offset is 64-byte aligned so mapped pointers satisfy any
// scalar alignment (and a cache line holds whole records). The header
// carries a splitmix64 content digest over the query fields and all
// section words; open() recomputes and rejects mismatches, so a bit flip
// in storage is a load error, never a silently-wrong solve.
#pragma once

#include <cstdint>
#include <type_traits>

namespace krsp::store {

/// First 8 bytes of every container. The 0x89 prefix and embedded \r\n
/// follow the PNG convention: a file that survived an accidental text-mode
/// or 7-bit transfer no longer matches.
inline constexpr std::uint64_t kMagic = 0x0a0d4250'53524b89ull;  // "\x89KRSPB\r\n"

/// Bumped on any layout change. Readers reject other versions outright;
/// there is no in-place migration (repack with krsp_pack instead).
inline constexpr std::uint32_t kFormatVersion = 1;

/// Written as the literal 0x01020304 by a little-endian writer; a reader
/// on the opposite endianness sees 0x04030201 and rejects the file
/// instead of reinterpreting every word.
inline constexpr std::uint32_t kEndianTag = 0x01020304;

/// Alignment of every section start, in bytes.
inline constexpr std::uint64_t kSectionAlign = 64;

/// Fixed-size file header. Serialized by memcpy — the struct is all
/// fixed-width scalars, explicitly padded to 128 bytes, and
/// static_asserted trivially copyable.
struct Header {
  std::uint64_t magic = kMagic;
  std::uint32_t version = kFormatVersion;
  std::uint32_t endian = kEndianTag;
  std::int64_t num_vertices = 0;
  std::int64_t num_edges = 0;
  // Stored default query (the `q` line of the .kri form). Requests that
  // reference the topology by id inherit these unless they override.
  std::int64_t s = -1;
  std::int64_t t = -1;
  std::int64_t k = 1;
  std::int64_t delay_bound = 0;
  /// splitmix64 digest over (version, n, m, s, t, k, delay_bound) and
  /// every word of every section, in file order.
  std::uint64_t digest = 0;
  /// Total file size in bytes; open() cross-checks against the real file
  /// so truncation is detected before any section is dereferenced.
  std::uint64_t file_bytes = 0;
  // Byte offsets of the five sections, each kSectionAlign-aligned.
  std::uint64_t off_offsets = 0;
  std::uint64_t off_targets = 0;
  std::uint64_t off_costs = 0;
  std::uint64_t off_delays = 0;
  std::uint64_t off_ids = 0;
  std::uint8_t reserved[8] = {};
};

static_assert(sizeof(Header) == 128, "Header layout is part of the format");
static_assert(std::is_trivially_copyable_v<Header>,
              "Header is serialized by memcpy");

/// splitmix64 accumulator used for the content digest (same construction
/// as the result cache's second fingerprint hash: cheap, well-mixed, and
/// dependency-free).
struct DigestAccumulator {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  void mix(std::uint64_t x) {
    h += x + 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    h ^= h >> 31;
  }
};

}  // namespace krsp::store

#include "store/container.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#include "util/check.h"

namespace krsp::store {

namespace {

constexpr std::uint64_t align_up(std::uint64_t x) {
  return (x + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
}

template <class T>
void mix_words(DigestAccumulator& acc, std::span<const T> words) {
  for (const T w : words) acc.mix(static_cast<std::uint64_t>(w));
}

std::uint64_t digest_of(const Header& header,
                        std::span<const std::uint64_t> offsets,
                        std::span<const std::int32_t> targets,
                        std::span<const graph::Cost> costs,
                        std::span<const graph::Delay> delays,
                        std::span<const std::int32_t> ids) {
  DigestAccumulator acc;
  acc.mix(header.version);
  acc.mix(static_cast<std::uint64_t>(header.num_vertices));
  acc.mix(static_cast<std::uint64_t>(header.num_edges));
  acc.mix(static_cast<std::uint64_t>(header.s));
  acc.mix(static_cast<std::uint64_t>(header.t));
  acc.mix(static_cast<std::uint64_t>(header.k));
  acc.mix(static_cast<std::uint64_t>(header.delay_bound));
  mix_words(acc, offsets);
  mix_words(acc, targets);
  mix_words(acc, costs);
  mix_words(acc, delays);
  mix_words(acc, ids);
  return acc.h;
}

template <class T>
void write_section(std::ofstream& out, std::uint64_t at,
                   std::span<const T> words) {
  // Sections are laid out with aligned starts; the gap between the previous
  // write position and `at` is zero-filled so the file bytes (and thus any
  // whole-file hash) are deterministic.
  const auto pos = static_cast<std::uint64_t>(out.tellp());
  KRSP_CHECK(pos <= at);
  static constexpr char kZeros[kSectionAlign] = {};
  out.write(kZeros, static_cast<std::streamsize>(at - pos));
  out.write(reinterpret_cast<const char*>(words.data()),
            static_cast<std::streamsize>(words.size() * sizeof(T)));
}

template <class T>
std::span<const T> section_span(const void* map, std::uint64_t off,
                                std::size_t count) {
  return {reinterpret_cast<const T*>(static_cast<const char*>(map) + off),
          count};
}

}  // namespace

void CsrContainer::write_file(const std::string& path,
                              const core::Instance& inst) {
  inst.validate();
  const int n = inst.graph.num_vertices();
  const int m = inst.graph.num_edges();

  // Group arcs by tail, preserving the original edge id in `ids`
  // (counting sort; stable within a row by edge id, so the layout is a
  // deterministic function of the instance).
  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& e : inst.graph.edges()) ++offsets[e.from + 1];
  for (int v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  std::vector<std::int32_t> targets(m);
  std::vector<graph::Cost> costs(m);
  std::vector<graph::Delay> delays(m);
  std::vector<std::int32_t> ids(m);
  std::vector<std::uint64_t> at(offsets.begin(), offsets.end() - 1);
  for (graph::EdgeId e = 0; e < m; ++e) {
    const auto& edge = inst.graph.edge(e);
    const std::uint64_t slot = at[edge.from]++;
    targets[slot] = edge.to;
    costs[slot] = edge.cost;
    delays[slot] = edge.delay;
    ids[slot] = e;
  }

  Header header;
  header.num_vertices = n;
  header.num_edges = m;
  header.s = inst.s;
  header.t = inst.t;
  header.k = inst.k;
  header.delay_bound = inst.delay_bound;
  header.off_offsets = align_up(sizeof(Header));
  header.off_targets =
      align_up(header.off_offsets + offsets.size() * sizeof(std::uint64_t));
  header.off_costs =
      align_up(header.off_targets + targets.size() * sizeof(std::int32_t));
  header.off_delays =
      align_up(header.off_costs + costs.size() * sizeof(graph::Cost));
  header.off_ids =
      align_up(header.off_delays + delays.size() * sizeof(graph::Delay));
  header.file_bytes = header.off_ids + ids.size() * sizeof(std::int32_t);
  header.digest = digest_of(header, offsets, targets, costs, delays, ids);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  KRSP_CHECK_MSG(out.good(), path << ": cannot open for writing");
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  write_section<std::uint64_t>(out, header.off_offsets, offsets);
  write_section<std::int32_t>(out, header.off_targets, targets);
  write_section<graph::Cost>(out, header.off_costs, costs);
  write_section<graph::Delay>(out, header.off_delays, delays);
  write_section<std::int32_t>(out, header.off_ids, ids);
  out.flush();
  KRSP_CHECK_MSG(out.good(), path << ": write failed");
}

CsrContainer CsrContainer::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  KRSP_CHECK_MSG(fd >= 0,
                 path << ": cannot open — " << std::strerror(errno));
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    KRSP_CHECK_MSG(false, path << ": fstat failed — " << std::strerror(err));
  }
  const auto file_len = static_cast<std::uint64_t>(st.st_size);
  if (file_len < sizeof(Header)) {
    ::close(fd);
    KRSP_CHECK_MSG(false, path << ": truncated — " << file_len
                               << " bytes, header needs " << sizeof(Header));
  }
  void* map = ::mmap(nullptr, file_len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps its own reference.
  KRSP_CHECK_MSG(map != MAP_FAILED,
                 path << ": mmap failed — " << std::strerror(errno));

  CsrContainer c;
  c.map_ = map;
  c.map_len_ = file_len;
  std::memcpy(&c.header_, map, sizeof(Header));
  const Header& h = c.header_;

  // From here, any violated invariant must unmap before throwing; the
  // container's destructor handles that once `c` owns the mapping.
  auto check = [&](bool ok, const char* what) {
    KRSP_CHECK_MSG(ok, path << ": " << what);
  };
  check(h.magic == kMagic, "bad magic (not a .krspb container?)");
  check(h.endian == kEndianTag, "endianness mismatch");
  check(h.version == kFormatVersion, "unsupported format version");
  check(h.num_vertices >= 0 && h.num_edges >= 0, "negative n or m");
  check(h.file_bytes == file_len, "file size does not match header");
  const auto n = static_cast<std::uint64_t>(h.num_vertices);
  const auto m = static_cast<std::uint64_t>(h.num_edges);
  // Section layout: aligned, in order, in bounds.
  const std::uint64_t offs[5] = {h.off_offsets, h.off_targets, h.off_costs,
                                 h.off_delays, h.off_ids};
  const std::uint64_t sizes[5] = {(n + 1) * sizeof(std::uint64_t),
                                  m * sizeof(std::int32_t),
                                  m * sizeof(graph::Cost),
                                  m * sizeof(graph::Delay),
                                  m * sizeof(std::int32_t)};
  std::uint64_t prev_end = sizeof(Header);
  for (int i = 0; i < 5; ++i) {
    check(offs[i] % kSectionAlign == 0, "misaligned section offset");
    check(offs[i] >= prev_end, "overlapping sections");
    check(offs[i] <= file_len && sizes[i] <= file_len - offs[i],
          "section extends past end of file");
    prev_end = offs[i] + sizes[i];
  }

  const auto offsets = c.offsets();
  const auto targets = c.targets();
  const auto ids = c.edge_ids();
  check(offsets.front() == 0 && offsets.back() == m,
        "CSR offsets do not cover the arc sections");
  for (std::uint64_t v = 0; v < n; ++v)
    check(offsets[v] <= offsets[v + 1], "CSR offsets not monotone");
  for (const std::int32_t t : targets)
    check(t >= 0 && static_cast<std::uint64_t>(t) < n,
          "arc target out of range");
  std::vector<bool> seen(m, false);
  for (const std::int32_t id : ids) {
    check(id >= 0 && static_cast<std::uint64_t>(id) < m &&
              !seen[static_cast<std::size_t>(id)],
          "ids section is not a permutation of edge ids");
    seen[static_cast<std::size_t>(id)] = true;
  }
  check(digest_of(h, offsets, targets, c.costs(), c.delays(), ids) == h.digest,
        "content digest mismatch (corrupted file?)");
  // Query fields: terminals must be valid vertices when set. Stored
  // containers always carry a full query (write_file validates it), but a
  // bit flip in the header must not yield an instance that trips solver
  // invariants later.
  check(h.s >= 0 && h.s < h.num_vertices && h.t >= 0 &&
            h.t < h.num_vertices && h.s != h.t,
        "invalid stored terminals");
  check(h.k >= 1 && h.delay_bound >= 0, "invalid stored k or delay bound");
  return c;
}

CsrContainer::CsrContainer(CsrContainer&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      map_len_(std::exchange(other.map_len_, 0)),
      header_(other.header_) {}

CsrContainer& CsrContainer::operator=(CsrContainer&& other) noexcept {
  if (this != &other) {
    if (map_ != nullptr) ::munmap(const_cast<void*>(map_), map_len_);
    map_ = std::exchange(other.map_, nullptr);
    map_len_ = std::exchange(other.map_len_, 0);
    header_ = other.header_;
  }
  return *this;
}

CsrContainer::~CsrContainer() {
  if (map_ != nullptr) ::munmap(const_cast<void*>(map_), map_len_);
}

std::span<const std::uint64_t> CsrContainer::offsets() const {
  return section_span<std::uint64_t>(
      map_, header_.off_offsets,
      static_cast<std::size_t>(header_.num_vertices) + 1);
}

std::span<const std::int32_t> CsrContainer::targets() const {
  return section_span<std::int32_t>(
      map_, header_.off_targets, static_cast<std::size_t>(header_.num_edges));
}

std::span<const graph::Cost> CsrContainer::costs() const {
  return section_span<graph::Cost>(
      map_, header_.off_costs, static_cast<std::size_t>(header_.num_edges));
}

std::span<const graph::Delay> CsrContainer::delays() const {
  return section_span<graph::Delay>(
      map_, header_.off_delays, static_cast<std::size_t>(header_.num_edges));
}

std::span<const std::int32_t> CsrContainer::edge_ids() const {
  return section_span<std::int32_t>(
      map_, header_.off_ids, static_cast<std::size_t>(header_.num_edges));
}

graph::CsrView CsrContainer::csr_view() const {
  return graph::CsrView(num_vertices(), offsets(), targets(), costs(),
                        delays(), edge_ids());
}

core::Instance CsrContainer::instance() const {
  const int n = num_vertices();
  const int m = num_edges();
  // Invert the CSR grouping so edge e gets back its original id: slot
  // order within the file is arbitrary, add_edge order defines ids.
  struct Rec {
    graph::VertexId from, to;
    graph::Cost cost;
    graph::Delay delay;
  };
  std::vector<Rec> by_id(m);
  const auto offsets_ = offsets();
  const auto targets_ = targets();
  const auto costs_ = costs();
  const auto delays_ = delays();
  const auto ids_ = edge_ids();
  for (graph::VertexId v = 0; v < n; ++v) {
    for (std::uint64_t a = offsets_[v]; a < offsets_[v + 1]; ++a) {
      by_id[static_cast<std::size_t>(ids_[a])] =
          Rec{v, targets_[a], costs_[a], delays_[a]};
    }
  }
  core::Instance inst;
  inst.graph.resize(n);
  for (const Rec& r : by_id)
    inst.graph.add_edge(r.from, r.to, r.cost, r.delay);
  inst.s = s();
  inst.t = t();
  inst.k = k();
  inst.delay_bound = delay_bound();
  return inst;
}

std::uint64_t compute_digest(const Header& header,
                             std::span<const std::uint64_t> offsets,
                             std::span<const std::int32_t> targets,
                             std::span<const graph::Cost> costs,
                             std::span<const graph::Delay> delays,
                             std::span<const std::int32_t> ids) {
  return digest_of(header, offsets, targets, costs, delays, ids);
}

}  // namespace krsp::store

// Minimum-cost flow via successive shortest paths with Johnson potentials.
//
// This is the engine behind phase 1 (Lemma 5): min-cost k-flows under the
// Lagrangian weight q·cost + p·delay are integral and computed exactly in
// 64-bit integer arithmetic. Arc costs must be non-negative (all phase-1
// weights are; residual negativity is handled by the potentials).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.h"

namespace krsp::flow {

class MinCostFlow {
 public:
  explicit MinCostFlow(int num_vertices);

  /// Adds an arc; returns a handle for flow_on(). cost must be >= 0.
  int add_arc(graph::VertexId from, graph::VertexId to, std::int64_t capacity,
              std::int64_t cost);

  /// Sends exactly `amount` units s→t at minimum cost. Returns the total
  /// cost, or nullopt if the max flow is smaller than `amount`.
  /// Callable once per instance.
  std::optional<std::int64_t> solve(graph::VertexId s, graph::VertexId t,
                                    std::int64_t amount);

  [[nodiscard]] std::int64_t flow_on(int arc) const;

  [[nodiscard]] int num_vertices() const {
    return static_cast<int>(first_out_.size());
  }

 private:
  struct InternalArc {
    graph::VertexId to;
    std::int64_t cap;
    std::int64_t cost;
    int rev;
  };

  std::vector<std::vector<InternalArc>> arcs_;
  std::vector<std::pair<graph::VertexId, int>> handles_;
  std::vector<std::int64_t> original_cap_;
  std::vector<int> first_out_;  // sized to n (bookkeeping only)
};

/// Convenience: minimum-(linear weight) k edge-disjoint flow on a Digraph.
/// Sends k units with every graph edge given capacity 1 and cost
/// w_cost·cost(e) + w_delay·delay(e). Returns the used edge ids, or nullopt
/// if fewer than k disjoint paths exist.
struct UnitFlowResult {
  std::vector<graph::EdgeId> edges;  // edges carrying one unit each
  std::int64_t weight = 0;           // total combined weight
};
std::optional<UnitFlowResult> min_weight_unit_flow(const graph::Digraph& g,
                                                   graph::VertexId s,
                                                   graph::VertexId t, int k,
                                                   std::int64_t w_cost,
                                                   std::int64_t w_delay);

}  // namespace krsp::flow

// Minimum-cost flow via successive shortest paths with Johnson potentials.
//
// This is the engine behind phase 1 (Lemma 5): min-cost k-flows under the
// Lagrangian weight q·cost + p·delay are integral and computed exactly in
// 64-bit integer arithmetic. Arc costs must be non-negative (all phase-1
// weights are; residual negativity is handled by the potentials).
//
// A MinCostFlow instance is reusable: reset_flow() restores all capacities
// and set_arc_cost() retargets the objective, so a caller that solves the
// same network repeatedly under different weights (the LARAC iteration, the
// batch engine's repeat solves) pays for the arc structure once.
// McfWorkspace packages that reuse pattern for min_weight_unit_flow.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.h"

namespace krsp::flow {

class MinCostFlow {
 public:
  explicit MinCostFlow(int num_vertices);

  /// Adds an arc; returns a handle for flow_on(). cost must be >= 0.
  int add_arc(graph::VertexId from, graph::VertexId to, std::int64_t capacity,
              std::int64_t cost);

  /// Sends exactly `amount` units s→t at minimum cost. Returns the total
  /// cost, or nullopt if the max flow is smaller than `amount`.
  /// Call reset_flow() before solving the same network again.
  std::optional<std::int64_t> solve(graph::VertexId s, graph::VertexId t,
                                    std::int64_t amount);

  /// Restores every arc to its original capacity (drains all flow), making
  /// the instance solvable again without rebuilding the arc structure.
  void reset_flow();

  /// Re-prices arc `arc` (a handle from add_arc). cost must be >= 0.
  /// Call only on a drained network (construction time or after
  /// reset_flow()) so residual reverse arcs never carry stale prices.
  void set_arc_cost(int arc, std::int64_t cost);

  [[nodiscard]] std::int64_t flow_on(int arc) const;

  [[nodiscard]] int num_vertices() const {
    return static_cast<int>(first_out_.size());
  }

 private:
  struct InternalArc {
    graph::VertexId to;
    std::int64_t cap;
    std::int64_t cost;
    int rev;
  };

  std::vector<std::vector<InternalArc>> arcs_;
  std::vector<std::pair<graph::VertexId, int>> handles_;
  std::vector<std::int64_t> original_cap_;
  std::vector<int> first_out_;  // sized to n (bookkeeping only)
  // Dijkstra scratch reused across solve() calls.
  std::vector<std::int64_t> potential_;
  std::vector<std::int64_t> dist_;
  std::vector<std::pair<graph::VertexId, int>> parent_;
};

/// Convenience: minimum-(linear weight) k edge-disjoint flow on a Digraph.
/// Sends k units with every graph edge given capacity 1 and cost
/// w_cost·cost(e) + w_delay·delay(e). Returns the used edge ids, or nullopt
/// if fewer than k disjoint paths exist.
struct UnitFlowResult {
  std::vector<graph::EdgeId> edges;  // edges carrying one unit each
  std::int64_t weight = 0;           // total combined weight
};

/// Reusable network for min_weight_unit_flow: caches the MinCostFlow arc
/// structure of the last topology solved, keyed by a structural fingerprint
/// (vertex/edge counts + endpoints), so repeat solves on the same graph —
/// different weights, different (s, t, k) — only reset capacities and
/// re-price arcs instead of reallocating. Safe to hand a different graph:
/// the fingerprint mismatch triggers a rebuild. Not thread-safe; intended
/// as per-thread state (core::SolveWorkspace).
class McfWorkspace {
 public:
  /// Number of solves that hit the cached arc structure (telemetry).
  [[nodiscard]] std::uint64_t reuse_hits() const { return reuse_hits_; }
  [[nodiscard]] std::uint64_t rebuilds() const { return rebuilds_; }

 private:
  friend std::optional<UnitFlowResult> min_weight_unit_flow(
      const graph::Digraph& g, graph::VertexId s, graph::VertexId t, int k,
      std::int64_t w_cost, std::int64_t w_delay, McfWorkspace* ws);

  std::optional<MinCostFlow> mcf_;
  std::vector<int> handles_;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t reuse_hits_ = 0;
  std::uint64_t rebuilds_ = 0;
};

std::optional<UnitFlowResult> min_weight_unit_flow(const graph::Digraph& g,
                                                   graph::VertexId s,
                                                   graph::VertexId t, int k,
                                                   std::int64_t w_cost,
                                                   std::int64_t w_delay,
                                                   McfWorkspace* ws);

inline std::optional<UnitFlowResult> min_weight_unit_flow(
    const graph::Digraph& g, graph::VertexId s, graph::VertexId t, int k,
    std::int64_t w_cost, std::int64_t w_delay) {
  return min_weight_unit_flow(g, s, t, k, w_cost, w_delay, nullptr);
}

}  // namespace krsp::flow

// Decomposition of unit flows into simple paths and cycles.
//
// kRSP solutions are unit s→t flows of value k; after a ⊕ cycle-cancellation
// step (Proposition 7) the edge set is again such a flow and must be
// re-expressed as k disjoint paths. Degenerate leftover cycles (zero net
// contribution) are returned separately — callers drop them, which can only
// reduce cost/delay since original weights are non-negative.
#pragma once

#include <vector>

#include "graph/cycles.h"
#include "graph/digraph.h"

namespace krsp::flow {

struct FlowDecomposition {
  std::vector<std::vector<graph::EdgeId>> paths;  // simple s→t paths
  std::vector<graph::Cycle> cycles;               // simple cycles
};

/// Decomposes an edge set in which every edge carries one unit of flow and
/// the net divergence is +k at s, -k at t, 0 elsewhere, into exactly k
/// simple s→t paths plus a set of simple cycles partitioning the edges.
/// KRSP_CHECKs the divergence precondition.
FlowDecomposition decompose_unit_flow(const graph::Digraph& g,
                                      std::span<const graph::EdgeId> edges,
                                      graph::VertexId s, graph::VertexId t,
                                      int k);

}  // namespace krsp::flow

#include "flow/dinic.h"

#include <algorithm>
#include <deque>
#include <limits>

namespace krsp::flow {

Dinic::Dinic(int num_vertices)
    : arcs_(num_vertices),
      level_(num_vertices),
      iter_(num_vertices),
      head_(num_vertices) {
  KRSP_CHECK(num_vertices >= 0);
}

int Dinic::add_arc(graph::VertexId from, graph::VertexId to,
                   std::int64_t capacity) {
  KRSP_CHECK(from >= 0 && from < num_vertices());
  KRSP_CHECK(to >= 0 && to < num_vertices());
  KRSP_CHECK(capacity >= 0);
  const int fwd = static_cast<int>(arcs_[from].size());
  const int bwd = static_cast<int>(arcs_[to].size()) + (from == to ? 1 : 0);
  arcs_[from].push_back(InternalArc{to, capacity, bwd});
  arcs_[to].push_back(InternalArc{from, 0, fwd});
  handles_.emplace_back(from, fwd);
  original_cap_.push_back(capacity);
  return static_cast<int>(handles_.size()) - 1;
}

bool Dinic::bfs(graph::VertexId s, graph::VertexId t) {
  std::fill(level_.begin(), level_.end(), -1);
  std::deque<graph::VertexId> queue{s};
  level_[s] = 0;
  while (!queue.empty()) {
    const graph::VertexId v = queue.front();
    queue.pop_front();
    for (const auto& a : arcs_[v]) {
      if (a.cap > 0 && level_[a.to] < 0) {
        level_[a.to] = level_[v] + 1;
        queue.push_back(a.to);
      }
    }
  }
  return level_[t] >= 0;
}

std::int64_t Dinic::dfs(graph::VertexId v, graph::VertexId t,
                        std::int64_t limit) {
  if (v == t) return limit;
  for (std::size_t& i = iter_[v]; i < arcs_[v].size(); ++i) {
    InternalArc& a = arcs_[v][i];
    if (a.cap <= 0 || level_[a.to] != level_[v] + 1) continue;
    const std::int64_t pushed = dfs(a.to, t, std::min(limit, a.cap));
    if (pushed > 0) {
      a.cap -= pushed;
      arcs_[a.to][a.rev].cap += pushed;
      return pushed;
    }
  }
  return 0;
}

std::int64_t Dinic::solve(graph::VertexId s, graph::VertexId t) {
  KRSP_CHECK(s >= 0 && s < num_vertices() && t >= 0 && t < num_vertices());
  KRSP_CHECK_MSG(s != t, "max flow with s == t");
  std::int64_t total = 0;
  while (bfs(s, t)) {
    std::fill(iter_.begin(), iter_.end(), 0);
    while (true) {
      const std::int64_t pushed =
          dfs(s, t, std::numeric_limits<std::int64_t>::max());
      if (pushed == 0) break;
      total += pushed;
    }
  }
  return total;
}

std::int64_t Dinic::flow_on(int arc) const {
  KRSP_CHECK(arc >= 0 && arc < static_cast<int>(handles_.size()));
  const auto& [from, idx] = handles_[arc];
  return original_cap_[arc] - arcs_[from][idx].cap;
}

int max_edge_disjoint_paths(const graph::Digraph& g, graph::VertexId s,
                            graph::VertexId t) {
  Dinic dinic(g.num_vertices());
  for (const auto& e : g.edges()) dinic.add_arc(e.from, e.to, 1);
  return static_cast<int>(dinic.solve(s, t));
}

}  // namespace krsp::flow

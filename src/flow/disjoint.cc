#include "flow/disjoint.h"

#include "flow/decompose.h"
#include "obs/trace.h"

namespace krsp::flow {

std::optional<DisjointPaths> min_weight_disjoint_paths(
    const graph::Digraph& g, graph::VertexId s, graph::VertexId t, int k,
    std::int64_t w_cost, std::int64_t w_delay, McfWorkspace* ws) {
  KRSP_OBS_SPAN("mcmf");
  KRSP_CHECK(w_cost >= 0 && w_delay >= 0);
  const auto flow = min_weight_unit_flow(g, s, t, k, w_cost, w_delay, ws);
  if (!flow) return std::nullopt;
  auto decomposition = decompose_unit_flow(g, flow->edges, s, t, k);
  // Cycles in a *minimum-weight* flow have zero weight (else the flow were
  // not optimal); drop them — with non-negative edge weights this never
  // increases cost or delay of the path system.
  DisjointPaths result;
  result.paths = std::move(decomposition.paths);
  for (const auto& p : result.paths) {
    result.total_cost += graph::path_cost(g, p);
    result.total_delay += graph::path_delay(g, p);
  }
  return result;
}

}  // namespace krsp::flow

// Min-sum k edge-disjoint paths (Suurballe's problem, [20, 21] in the
// paper): k disjoint s→t paths minimizing a linear weight with no budget
// constraint. Polynomially solvable via min-cost flow; the delay-oblivious
// and cost-oblivious baselines and the phase-1 Lagrangian all route
// through here.
#pragma once

#include <optional>
#include <vector>

#include "flow/min_cost_flow.h"
#include "graph/digraph.h"

namespace krsp::flow {

struct DisjointPaths {
  std::vector<std::vector<graph::EdgeId>> paths;
  graph::Cost total_cost = 0;
  graph::Delay total_delay = 0;
};

/// k edge-disjoint s→t paths minimizing w_cost·Σcost + w_delay·Σdelay, or
/// nullopt if fewer than k edge-disjoint paths exist. Weights must be
/// non-negative multipliers. `ws` (optional) caches the flow network across
/// calls on the same topology — the LARAC iteration and the batch engine's
/// repeat solves become allocation-free on the MCMF side.
std::optional<DisjointPaths> min_weight_disjoint_paths(
    const graph::Digraph& g, graph::VertexId s, graph::VertexId t, int k,
    std::int64_t w_cost, std::int64_t w_delay, McfWorkspace* ws = nullptr);

}  // namespace krsp::flow

// Dinic max-flow. In this library it answers the structural feasibility
// question of kRSP: do k edge-disjoint s→t paths exist at all (unit
// capacities)? General integer capacities are supported for completeness.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace krsp::flow {

class Dinic {
 public:
  explicit Dinic(int num_vertices);

  /// Adds a directed arc with the given capacity; returns an arc handle that
  /// can be queried for flow after solve().
  int add_arc(graph::VertexId from, graph::VertexId to, std::int64_t capacity);

  /// Max flow from s to t (callable once per instance).
  std::int64_t solve(graph::VertexId s, graph::VertexId t);

  /// Flow routed on the arc returned by add_arc.
  [[nodiscard]] std::int64_t flow_on(int arc) const;

  [[nodiscard]] int num_vertices() const {
    return static_cast<int>(head_.size());
  }

 private:
  struct InternalArc {
    graph::VertexId to;
    std::int64_t cap;  // residual capacity
    int rev;           // index of the reverse arc in arcs_[to]
  };

  bool bfs(graph::VertexId s, graph::VertexId t);
  std::int64_t dfs(graph::VertexId v, graph::VertexId t, std::int64_t limit);

  std::vector<std::vector<InternalArc>> arcs_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
  std::vector<std::pair<graph::VertexId, int>> handles_;  // (from, index)
  std::vector<std::int64_t> original_cap_;
  std::vector<int> head_;  // sized to num_vertices for bookkeeping
};

/// Maximum number of edge-disjoint s→t paths in g (unit capacity per edge).
int max_edge_disjoint_paths(const graph::Digraph& g, graph::VertexId s,
                            graph::VertexId t);

}  // namespace krsp::flow

#include "flow/decompose.h"

#include <unordered_map>

namespace krsp::flow {

FlowDecomposition decompose_unit_flow(const graph::Digraph& g,
                                      std::span<const graph::EdgeId> edges,
                                      graph::VertexId s, graph::VertexId t,
                                      int k) {
  KRSP_CHECK(k >= 0);
  std::unordered_map<graph::VertexId, std::vector<graph::EdgeId>> out;
  std::unordered_map<graph::VertexId, int> divergence;
  for (const graph::EdgeId e : edges) {
    out[g.edge(e).from].push_back(e);
    ++divergence[g.edge(e).from];
    --divergence[g.edge(e).to];
  }
  for (const auto& [v, d] : divergence) {
    const int expected = v == s ? k : (v == t ? -k : 0);
    KRSP_CHECK_MSG(d == expected, "decompose_unit_flow: vertex "
                                      << v << " has divergence " << d
                                      << ", expected " << expected);
  }

  FlowDecomposition result;
  // Extract k walks s→t, popping any cycle encountered along the way so the
  // reported paths are simple (decompose_closed_walk stack technique).
  for (int i = 0; i < k; ++i) {
    std::vector<graph::EdgeId> stack;
    std::unordered_map<graph::VertexId, int> pos_of;
    pos_of[s] = 0;
    graph::VertexId at = s;
    while (at != t) {
      auto& avail = out[at];
      KRSP_CHECK_MSG(!avail.empty(), "decompose_unit_flow: stuck at vertex "
                                         << at << " extracting path " << i);
      const graph::EdgeId e = avail.back();
      avail.pop_back();
      stack.push_back(e);
      const graph::VertexId head = g.edge(e).to;
      const auto it = pos_of.find(head);
      if (it != pos_of.end()) {
        graph::Cycle cycle(stack.begin() + it->second, stack.end());
        for (const graph::EdgeId pe : cycle) {
          const graph::VertexId tail = g.edge(pe).from;
          if (tail != head) pos_of.erase(tail);
        }
        stack.resize(it->second);
        result.cycles.push_back(std::move(cycle));
        at = head;
      } else {
        pos_of[head] = static_cast<int>(stack.size());
        at = head;
      }
    }
    KRSP_DCHECK(graph::is_simple_path(g, stack, s, t));
    result.paths.push_back(std::move(stack));
  }

  // Whatever remains is balanced: pure cycles.
  std::vector<graph::EdgeId> leftover;
  for (auto& [v, avail] : out)
    for (const graph::EdgeId e : avail) leftover.push_back(e);
  if (!leftover.empty()) {
    auto cycles = graph::decompose_balanced_edge_set(g, leftover);
    for (auto& c : cycles) result.cycles.push_back(std::move(c));
  }
  return result;
}

}  // namespace krsp::flow

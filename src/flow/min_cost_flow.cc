#include "flow/min_cost_flow.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace krsp::flow {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();

/// Structural fingerprint of a digraph (FNV-1a over sizes + endpoints).
/// Weights are excluded on purpose: min_weight_unit_flow re-prices every
/// arc per call, so only the topology must match for reuse to be sound.
std::uint64_t topology_fingerprint(const graph::Digraph& g) {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(g.num_vertices()));
  mix(static_cast<std::uint64_t>(g.num_edges()));
  for (const auto& e : g.edges()) {
    mix(static_cast<std::uint64_t>(e.from));
    mix(static_cast<std::uint64_t>(e.to));
  }
  return h;
}

}  // namespace

MinCostFlow::MinCostFlow(int num_vertices)
    : arcs_(num_vertices), first_out_(num_vertices) {
  KRSP_CHECK(num_vertices >= 0);
}

int MinCostFlow::add_arc(graph::VertexId from, graph::VertexId to,
                         std::int64_t capacity, std::int64_t cost) {
  KRSP_CHECK(from >= 0 && from < num_vertices());
  KRSP_CHECK(to >= 0 && to < num_vertices());
  KRSP_CHECK(capacity >= 0);
  KRSP_CHECK_MSG(cost >= 0, "MinCostFlow requires non-negative arc costs");
  const int fwd = static_cast<int>(arcs_[from].size());
  const int bwd = static_cast<int>(arcs_[to].size()) + (from == to ? 1 : 0);
  arcs_[from].push_back(InternalArc{to, capacity, cost, bwd});
  arcs_[to].push_back(InternalArc{from, 0, -cost, fwd});
  handles_.emplace_back(from, fwd);
  original_cap_.push_back(capacity);
  return static_cast<int>(handles_.size()) - 1;
}

void MinCostFlow::reset_flow() {
  for (std::size_t a = 0; a < handles_.size(); ++a) {
    const auto& [from, idx] = handles_[a];
    InternalArc& fwd = arcs_[from][idx];
    fwd.cap = original_cap_[a];
    arcs_[fwd.to][fwd.rev].cap = 0;
  }
}

void MinCostFlow::set_arc_cost(int arc, std::int64_t cost) {
  KRSP_CHECK(arc >= 0 && arc < static_cast<int>(handles_.size()));
  KRSP_CHECK_MSG(cost >= 0, "MinCostFlow requires non-negative arc costs");
  const auto& [from, idx] = handles_[arc];
  InternalArc& fwd = arcs_[from][idx];
  KRSP_CHECK_MSG(fwd.cap == original_cap_[arc],
                 "set_arc_cost on an arc carrying flow");
  fwd.cost = cost;
  arcs_[fwd.to][fwd.rev].cost = -cost;
}

std::optional<std::int64_t> MinCostFlow::solve(graph::VertexId s,
                                               graph::VertexId t,
                                               std::int64_t amount) {
  KRSP_CHECK(s >= 0 && s < num_vertices() && t >= 0 && t < num_vertices());
  KRSP_CHECK(s != t && amount >= 0);
  const int n = num_vertices();
  potential_.assign(n, 0);
  dist_.resize(n);
  parent_.resize(n);
  auto& potential = potential_;
  auto& dist = dist_;
  auto& parent = parent_;
  std::int64_t remaining = amount;
  std::int64_t total_cost = 0;

  while (remaining > 0) {
    // Dijkstra on reduced costs.
    std::fill(dist.begin(), dist.end(), kInf);
    dist[s] = 0;
    using Item = std::pair<std::int64_t, graph::VertexId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    heap.emplace(0, s);
    while (!heap.empty()) {
      const auto [d, v] = heap.top();
      heap.pop();
      if (d != dist[v]) continue;
      for (int i = 0; i < static_cast<int>(arcs_[v].size()); ++i) {
        const InternalArc& a = arcs_[v][i];
        if (a.cap <= 0 || potential[a.to] == kInf) continue;
        if (potential[v] == kInf) continue;
        const std::int64_t reduced = a.cost + potential[v] - potential[a.to];
        KRSP_DCHECK(reduced >= 0);
        if (d + reduced < dist[a.to]) {
          dist[a.to] = d + reduced;
          parent[a.to] = {v, i};
          heap.emplace(dist[a.to], a.to);
        }
      }
    }
    if (dist[t] == kInf) return std::nullopt;  // maxflow < amount

    for (int v = 0; v < n; ++v)
      if (dist[v] != kInf && potential[v] != kInf) potential[v] += dist[v];
      // Unreached vertices keep stale potentials; they stay unreachable for
      // augmenting paths because residual arcs into them from the reached
      // region would have been relaxed.

    // Bottleneck along the shortest path.
    std::int64_t push = remaining;
    for (graph::VertexId v = t; v != s;) {
      const auto& [pv, pi] = parent[v];
      push = std::min(push, arcs_[pv][pi].cap);
      v = pv;
    }
    for (graph::VertexId v = t; v != s;) {
      auto& [pv, pi] = parent[v];
      InternalArc& a = arcs_[pv][pi];
      a.cap -= push;
      arcs_[a.to][a.rev].cap += push;
      total_cost += a.cost * push;
      v = pv;
    }
    remaining -= push;
  }
  return total_cost;
}

std::int64_t MinCostFlow::flow_on(int arc) const {
  KRSP_CHECK(arc >= 0 && arc < static_cast<int>(handles_.size()));
  const auto& [from, idx] = handles_[arc];
  return original_cap_[arc] - arcs_[from][idx].cap;
}

std::optional<UnitFlowResult> min_weight_unit_flow(const graph::Digraph& g,
                                                   graph::VertexId s,
                                                   graph::VertexId t, int k,
                                                   std::int64_t w_cost,
                                                   std::int64_t w_delay,
                                                   McfWorkspace* ws) {
  KRSP_CHECK(k >= 1);
  const auto arc_weight = [&](const graph::Edge& e) {
    return w_cost * e.cost + w_delay * e.delay;
  };

  MinCostFlow* mcf = nullptr;
  const std::vector<int>* handle = nullptr;
  std::optional<MinCostFlow> local_mcf;
  std::vector<int> local_handle;
  if (ws != nullptr) {
    const std::uint64_t fp = topology_fingerprint(g);
    if (ws->mcf_ && ws->fingerprint_ == fp &&
        ws->mcf_->num_vertices() == g.num_vertices() &&
        static_cast<int>(ws->handles_.size()) == g.num_edges()) {
      // Same topology as the cached network: drain flow and re-price.
      ws->mcf_->reset_flow();
      for (graph::EdgeId e = 0; e < g.num_edges(); ++e)
        ws->mcf_->set_arc_cost(ws->handles_[e], arc_weight(g.edge(e)));
      ++ws->reuse_hits_;
    } else {
      ws->mcf_.emplace(g.num_vertices());
      ws->handles_.assign(g.num_edges(), 0);
      for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
        const auto& edge = g.edge(e);
        ws->handles_[e] =
            ws->mcf_->add_arc(edge.from, edge.to, 1, arc_weight(edge));
      }
      ws->fingerprint_ = fp;
      ++ws->rebuilds_;
    }
    mcf = &*ws->mcf_;
    handle = &ws->handles_;
  } else {
    local_mcf.emplace(g.num_vertices());
    local_handle.resize(g.num_edges());
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto& edge = g.edge(e);
      local_handle[e] =
          local_mcf->add_arc(edge.from, edge.to, 1, arc_weight(edge));
    }
    mcf = &*local_mcf;
    handle = &local_handle;
  }

  const auto cost = mcf->solve(s, t, k);
  if (!cost) return std::nullopt;
  UnitFlowResult result;
  result.weight = *cost;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e)
    if (mcf->flow_on((*handle)[e]) > 0) result.edges.push_back(e);
  return result;
}

}  // namespace krsp::flow

// Long-running control loop over a provisioned kRSP path set.
//
// The paper's deployment story (§1, and the journal version's framing of
// the k disjoint paths as protection paths) needs more than one offline
// solve: an SDN controller holds the k provisioned paths while the network
// fails and recovers underneath it, and must keep serving the best valid
// set it can under a wall-clock budget per event. This class composes the
// existing building blocks into that loop:
//
//  * failures (single edge or a whole SRLG group) run the repair ladder —
//    core::repair_after_failures (local replacement, then deadline-bounded
//    full re-solve), then serving the k' < k surviving paths, then a
//    declared outage;
//  * recoveries trigger an opportunistic deadline-bounded re-optimization,
//    adopted when it restores full service or beats the served cost;
//  * delay degradations update the live edge delays and re-provision (or
//    shed the slowest paths) when the served set no longer fits the bound;
//  * after *every* event the controller audits its own state
//    (resilience/audit.h) and throws util::CheckError on any violation.
//
// The controller never blocks unboundedly: every solve and repair it
// issues shares one util::Deadline derived from
// options.solver.deadline_seconds, and expiry surfaces as a typed
// core::DegradationStep in the event outcome, never as a hang or an
// invalid path set.
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/repair.h"
#include "core/solver.h"

namespace krsp::resilience {

enum class EventType {
  kEdgeFail,      // single link goes down
  kEdgeRecover,   // failed link comes back (delay reset to base)
  kDelayDegrade,  // link stays up but its delay changes
  kSrlgFail,      // shared-risk link group: several links fail at once
};

const char* event_type_name(EventType type);

struct NetworkEvent {
  EventType type = EventType::kEdgeFail;
  graph::EdgeId edge = graph::kInvalidEdge;  // single-edge events
  std::vector<graph::EdgeId> group;          // kSrlgFail members
  graph::Delay new_delay = 0;                // kDelayDegrade
};

/// What the controller currently delivers, best to worst.
enum class ServiceLevel {
  kFull,      // k paths with the solver mode's guarantee
  kDegraded,  // k valid paths, but via local repair / an anytime solve —
              // no fresh-solve cost guarantee
  kReducedK,  // 1 <= k' < k paths
  kOutage,    // no valid paths
};

const char* service_level_name(ServiceLevel level);

struct EventOutcome {
  EventType event = EventType::kEdgeFail;
  ServiceLevel level = ServiceLevel::kOutage;  // after the event
  int paths_served = 0;
  /// Repair ladder result when the failure touched served paths.
  std::optional<core::RepairOutcome> repair;
  /// Worst anytime step any solve took while handling this event.
  core::DegradationStep degradation = core::DegradationStep::kNone;
  bool reoptimized = false;  // a recovery re-solve was adopted
  double seconds = 0.0;      // wall time spent handling the event
};

struct ControllerStats {
  std::int64_t events = 0;
  std::int64_t edge_failures = 0;  // edges newly failed (SRLG members count)
  std::int64_t recoveries = 0;
  std::int64_t delay_changes = 0;
  std::int64_t untouched = 0;  // failure events not touching served paths
  std::int64_t local_repairs = 0;
  std::int64_t full_resolves = 0;
  std::int64_t reduced_k_steps = 0;  // events that shed at least one path
  std::int64_t outages_entered = 0;
  std::int64_t reopt_attempts = 0;
  std::int64_t reopt_adopted = 0;
  std::int64_t deadline_degradations = 0;  // events with a non-kNone step
  std::int64_t audits = 0;
};

class ResilienceController {
 public:
  /// `base` is the intact network; `options` configures every solve the
  /// controller issues (mode, ε, and the per-event deadline). The audit
  /// delay cap follows the mode (see audited_delay_cap).
  explicit ResilienceController(core::Instance base,
                                core::SolverOptions options = {});

  /// Initial provisioning solve on the intact network. Must be called
  /// (and succeed) before apply(). Returns the solve status; on anything
  /// without paths the controller starts in outage.
  core::SolveStatus provision();

  /// Absorbs one event: updates the live network state, runs the repair /
  /// re-optimization ladder, audits, and reports what happened.
  EventOutcome apply(const NetworkEvent& event);

  [[nodiscard]] const core::PathSet& served() const { return served_; }
  [[nodiscard]] ServiceLevel level() const { return level_; }
  [[nodiscard]] int paths_served() const { return served_.size(); }
  [[nodiscard]] graph::Cost served_cost() const { return served_cost_; }
  [[nodiscard]] graph::Delay served_delay() const { return served_delay_; }
  [[nodiscard]] const ControllerStats& stats() const { return stats_; }
  /// The intact topology the controller was built with.
  [[nodiscard]] const core::Instance& base_instance() const { return base_; }
  /// Base topology with the current (possibly degraded) delays; failed
  /// edges are tracked separately in failed_edges().
  [[nodiscard]] const core::Instance& live_instance() const { return live_; }
  [[nodiscard]] const std::unordered_set<graph::EdgeId>& failed_edges() const {
    return failed_;
  }

  /// Live instance with the failed edges removed (fresh-solve comparisons;
  /// edge ids are NOT preserved — use only for cost/feasibility oracles).
  [[nodiscard]] core::Instance degraded_instance() const;

  /// Re-runs the full invariant audit; throws util::CheckError on any
  /// violation. Called internally after every event.
  void audit() const;

 private:
  void adopt(core::PathSet paths, ServiceLevel level);
  void enter_outage();
  /// Drops served paths that use a failed edge; returns how many dropped.
  int shed_broken_paths();
  /// Drops the slowest served paths until the delay cap is met again.
  void shed_slowest_until_feasible();
  /// Deadline-bounded fresh solve on the degraded network; adopts the
  /// result when `always` or when it beats the served state. With `always`
  /// it also retries at smaller k' (down to whatever improves on the
  /// current state) so climb-back from outage can be partial. Returns
  /// whether anything was adopted.
  bool try_reprovision(const util::Deadline& deadline, bool always,
                       EventOutcome& outcome);

  core::Instance base_;
  core::Instance live_;  // base topology, current delays
  core::SolverOptions options_;
  graph::Delay delay_cap_ = 0;

  core::PathSet served_;
  graph::Cost served_cost_ = 0;
  graph::Delay served_delay_ = 0;
  ServiceLevel level_ = ServiceLevel::kOutage;
  std::unordered_set<graph::EdgeId> failed_;
  ControllerStats stats_;
};

}  // namespace krsp::resilience

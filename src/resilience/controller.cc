#include "resilience/controller.h"

#include <algorithm>

#include "resilience/audit.h"
#include "util/timer.h"

namespace krsp::resilience {

namespace {

/// Worse-of for ladder steps (the enum is ordered best → worst).
core::DegradationStep worse(core::DegradationStep a, core::DegradationStep b) {
  return a < b ? b : a;
}

}  // namespace

const char* event_type_name(EventType type) {
  switch (type) {
    case EventType::kEdgeFail:
      return "edge-fail";
    case EventType::kEdgeRecover:
      return "edge-recover";
    case EventType::kDelayDegrade:
      return "delay-degrade";
    case EventType::kSrlgFail:
      return "srlg-fail";
  }
  return "unknown";
}

const char* service_level_name(ServiceLevel level) {
  switch (level) {
    case ServiceLevel::kFull:
      return "full";
    case ServiceLevel::kDegraded:
      return "degraded";
    case ServiceLevel::kReducedK:
      return "reduced-k";
    case ServiceLevel::kOutage:
      return "outage";
  }
  return "unknown";
}

ResilienceController::ResilienceController(core::Instance base,
                                           core::SolverOptions options)
    : base_(std::move(base)), live_(base_), options_(options) {
  base_.validate();
  delay_cap_ = audited_delay_cap(base_, options_);
}

core::SolveStatus ResilienceController::provision() {
  const auto solution = core::KrspSolver(options_).solve(base_);
  if (solution.has_paths()) {
    adopt(solution.paths,
          solution.telemetry.degradation == core::DegradationStep::kNone
              ? ServiceLevel::kFull
              : ServiceLevel::kDegraded);
  } else {
    enter_outage();
  }
  ++stats_.audits;
  audit();
  return solution.status;
}

void ResilienceController::adopt(core::PathSet paths, ServiceLevel level) {
  served_ = std::move(paths);
  served_cost_ = served_.total_cost(live_.graph);
  served_delay_ = served_.total_delay(live_.graph);
  level_ = served_.size() == 0 ? ServiceLevel::kOutage : level;
}

void ResilienceController::enter_outage() {
  served_ = core::PathSet();
  served_cost_ = 0;
  served_delay_ = 0;
  if (level_ != ServiceLevel::kOutage) ++stats_.outages_entered;
  level_ = ServiceLevel::kOutage;
}

int ResilienceController::shed_broken_paths() {
  std::vector<std::vector<graph::EdgeId>> keep;
  for (const auto& path : served_.paths()) {
    const bool broken = std::any_of(
        path.begin(), path.end(),
        [&](graph::EdgeId e) { return failed_.count(e) > 0; });
    if (!broken) keep.push_back(path);
  }
  const int dropped = served_.size() - static_cast<int>(keep.size());
  if (dropped == 0) return 0;
  if (keep.empty()) {
    enter_outage();
  } else {
    adopt(core::PathSet(std::move(keep)), ServiceLevel::kReducedK);
  }
  return dropped;
}

void ResilienceController::shed_slowest_until_feasible() {
  auto paths = served_.paths();
  std::sort(paths.begin(), paths.end(),
            [&](const auto& a, const auto& b) {
              return graph::path_delay(live_.graph, a) <
                     graph::path_delay(live_.graph, b);
            });
  graph::Delay total = 0;
  for (const auto& p : paths) total += graph::path_delay(live_.graph, p);
  while (!paths.empty() && total > delay_cap_) {
    total -= graph::path_delay(live_.graph, paths.back());
    paths.pop_back();
  }
  if (paths.empty()) {
    enter_outage();
  } else {
    ++stats_.reduced_k_steps;
    adopt(core::PathSet(std::move(paths)), ServiceLevel::kReducedK);
  }
}

bool ResilienceController::try_reprovision(const util::Deadline& deadline,
                                           bool always,
                                           EventOutcome& outcome) {
  ++stats_.reopt_attempts;
  // Full k first. When climbing back (`always`) keep trying smaller k' so
  // a network that can no longer carry k disjoint paths still gets partial
  // service instead of a standing outage; the floor is the first k' that
  // would improve on the current state (or 1 when the current state is
  // over the delay cap and must be replaced anyway).
  const bool over_cap = served_.size() > 0 && served_delay_ > delay_cap_;
  const int k_floor =
      !always ? live_.k : (over_cap ? 1 : served_.size() + 1);
  for (int k = live_.k; k >= k_floor; --k) {
    core::Instance attempt = live_;
    attempt.k = k;
    const auto solution =
        core::solve_degraded(attempt, failed_, options_, deadline);
    outcome.degradation =
        worse(outcome.degradation, solution.telemetry.degradation);
    if (!solution.has_paths()) continue;
    const graph::Cost cost = solution.paths.total_cost(live_.graph);
    const graph::Delay delay = solution.paths.total_delay(live_.graph);
    if (delay > delay_cap_) continue;  // anytime result outside the cap
    if (!always && level_ == ServiceLevel::kFull && cost >= served_cost_)
      return false;  // full service already, and not cheaper
    adopt(solution.paths,
          k < live_.k ? ServiceLevel::kReducedK
          : solution.telemetry.degradation == core::DegradationStep::kNone
              ? ServiceLevel::kFull
              : ServiceLevel::kDegraded);
    ++stats_.reopt_adopted;
    outcome.reoptimized = true;
    return true;
  }
  return false;
}

EventOutcome ResilienceController::apply(const NetworkEvent& event) {
  const util::WallTimer timer;
  const auto deadline =
      util::Deadline::after_seconds(options_.deadline_seconds);
  EventOutcome outcome;
  outcome.event = event.type;
  ++stats_.events;

  switch (event.type) {
    case EventType::kEdgeFail:
    case EventType::kSrlgFail: {
      std::vector<graph::EdgeId> newly;
      const auto add = [&](graph::EdgeId e) {
        KRSP_CHECK(live_.graph.is_edge(e));
        if (failed_.insert(e).second) newly.push_back(e);
      };
      if (event.type == EventType::kEdgeFail) {
        add(event.edge);
      } else {
        for (const graph::EdgeId e : event.group) add(e);
      }
      stats_.edge_failures += static_cast<std::int64_t>(newly.size());

      const bool touches_served = std::any_of(
          newly.begin(), newly.end(), [&](graph::EdgeId e) {
            for (const auto& p : served_.paths())
              if (std::find(p.begin(), p.end(), e) != p.end()) return true;
            return false;
          });
      if (!touches_served) {
        ++stats_.untouched;
        break;
      }
      if (served_.size() == live_.k) {
        // Full service: run the repair ladder (local replacement first,
        // then a deadline-bounded full re-solve).
        const std::vector<graph::EdgeId> cumulative(failed_.begin(),
                                                    failed_.end());
        const auto r = core::repair_after_failures(live_, served_, cumulative,
                                                   options_, deadline);
        outcome.repair = r.outcome;
        outcome.degradation = worse(outcome.degradation, r.degradation);
        switch (r.outcome) {
          case core::RepairOutcome::kUntouched:
            ++stats_.untouched;
            break;
          case core::RepairOutcome::kLocalRepair:
            ++stats_.local_repairs;
            adopt(r.paths, ServiceLevel::kDegraded);
            break;
          case core::RepairOutcome::kFullResolve:
            ++stats_.full_resolves;
            adopt(r.paths,
                  r.degradation == core::DegradationStep::kNone
                      ? ServiceLevel::kFull
                      : ServiceLevel::kDegraded);
            break;
          case core::RepairOutcome::kInfeasible:
            // Next rung: serve the surviving k' < k paths (or none).
            shed_broken_paths();
            ++stats_.reduced_k_steps;
            outcome.degradation =
                worse(outcome.degradation,
                      served_.size() > 0 ? core::DegradationStep::kReducedK
                                         : core::DegradationStep::kOutage);
            break;
        }
      } else {
        // Already below full service: no k-path repair is possible; shed
        // the broken paths and wait for recoveries.
        if (shed_broken_paths() > 0) {
          ++stats_.reduced_k_steps;
          outcome.degradation =
              worse(outcome.degradation,
                    served_.size() > 0 ? core::DegradationStep::kReducedK
                                       : core::DegradationStep::kOutage);
        } else {
          ++stats_.untouched;
        }
      }
      break;
    }

    case EventType::kEdgeRecover: {
      KRSP_CHECK(live_.graph.is_edge(event.edge));
      if (failed_.erase(event.edge) > 0) ++stats_.recoveries;
      // Recovery restores the nominal link, including its base delay. The
      // edge may be a live-but-degraded link (a "recover" on an edge that
      // never failed), so re-measure the served set.
      live_.graph.set_edge_delay(event.edge,
                                 base_.graph.edge(event.edge).delay);
      served_cost_ = served_.total_cost(live_.graph);
      served_delay_ = served_.total_delay(live_.graph);
      if (served_.size() > 0 && served_delay_ > delay_cap_) {
        // Restoring the nominal delay pushed the served set over the cap
        // (possible when a degradation had *lowered* the delay).
        if (!try_reprovision(deadline, /*always=*/true, outcome)) {
          shed_slowest_until_feasible();
          outcome.degradation =
              worse(outcome.degradation,
                    served_.size() > 0 ? core::DegradationStep::kReducedK
                                       : core::DegradationStep::kOutage);
        }
      } else {
        // Opportunistic re-optimization: mandatory climb-back when below
        // full service, adopt-if-cheaper otherwise.
        try_reprovision(deadline, /*always=*/served_.size() < live_.k,
                        outcome);
      }
      break;
    }

    case EventType::kDelayDegrade: {
      KRSP_CHECK(live_.graph.is_edge(event.edge));
      KRSP_CHECK_MSG(event.new_delay >= 0,
                     "delay degradation to " << event.new_delay);
      ++stats_.delay_changes;
      live_.graph.set_edge_delay(event.edge, event.new_delay);
      // Re-measure the served set under the live delays.
      served_cost_ = served_.total_cost(live_.graph);
      served_delay_ = served_.total_delay(live_.graph);
      if (served_.size() > 0 && served_delay_ > delay_cap_) {
        // Served set no longer fits the bound: re-provision, else shed the
        // slowest paths until it does.
        if (!try_reprovision(deadline, /*always=*/true, outcome)) {
          shed_slowest_until_feasible();
          outcome.degradation =
              worse(outcome.degradation,
                    served_.size() > 0 ? core::DegradationStep::kReducedK
                                       : core::DegradationStep::kOutage);
        }
      }
      break;
    }
  }

  ++stats_.audits;
  audit();
  if (outcome.degradation != core::DegradationStep::kNone)
    ++stats_.deadline_degradations;
  outcome.level = level_;
  outcome.paths_served = served_.size();
  outcome.seconds = timer.seconds();
  return outcome;
}

core::Instance ResilienceController::degraded_instance() const {
  core::Instance out;
  out.graph.resize(live_.graph.num_vertices());
  for (graph::EdgeId e = 0; e < live_.graph.num_edges(); ++e) {
    if (failed_.count(e)) continue;
    const auto& edge = live_.graph.edge(e);
    out.graph.add_edge(edge.from, edge.to, edge.cost, edge.delay);
  }
  out.s = live_.s;
  out.t = live_.t;
  out.k = live_.k;
  out.delay_bound = live_.delay_bound;
  return out;
}

void ResilienceController::audit() const {
  audit_served_paths(live_, served_, failed_, delay_cap_, served_cost_,
                     served_delay_);
}

}  // namespace krsp::resilience

// Deterministic seeded chaos-campaign engine.
//
// Generates a failure/recovery/degradation schedule from a single RNG seed
// and drives a ResilienceController through it, measuring what the paper's
// resilience story actually delivers under sustained churn: availability,
// the local-repair vs full-re-solve ratio, time-to-repair, and the cost
// drift of the served paths against a fresh-solve optimum on the degraded
// network. Optionally replays the surviving paths through the packet-level
// simulator (sim::network_sim) to measure delivered QoS during
// degradation.
//
// The schedule is biased toward the interesting cases: failures prefer
// in-use edges, SRLG events take out whole shared-risk groups (edges are
// partitioned by id), and a cap on concurrently failed edges forces
// recovery phases so campaigns exercise the climb-back path too. Every
// event is audited by the controller; an invariant violation throws
// util::CheckError and aborts the campaign — a completed campaign is a
// zero-violation campaign.
#pragma once

#include "core/solver.h"
#include "resilience/controller.h"
#include "util/stats.h"

namespace krsp::resilience {

struct ChaosOptions {
  int events = 200;
  std::uint64_t seed = 1;
  /// Event mix; the remainder of the probability mass goes to recoveries.
  /// Recoveries outweigh failures so damage is transient — the campaign
  /// measures the controller riding out churn, not a network that only
  /// decays.
  double p_fail = 0.28;
  double p_srlg = 0.05;
  double p_degrade = 0.12;
  int srlg_groups = 6;
  /// Delay multiplier applied by a degradation (40% of degradations reset
  /// the link back to its base delay instead — transient congestion).
  /// Compounding is capped at 4x the base delay.
  double degrade_factor = 2.5;
  /// Cap on concurrently failed edges, as a fraction of m. At the cap the
  /// schedule forces recoveries.
  double max_failed_fraction = 0.15;
  /// Probability a failure targets a currently served edge.
  double target_served_bias = 0.6;
  /// Every N events, compare the served cost against a fresh deadline-free
  /// solve on the degraded network (0 = off). Only measured while serving
  /// full k (a k' < k comparison would be apples to oranges).
  int drift_every = 20;
  /// Replay the surviving paths through the packet simulator at the end.
  bool replay_sim = false;
  std::int64_t sim_horizon = 20000;
};

struct ChaosReport {
  int events = 0;
  core::SolveStatus provision_status = core::SolveStatus::kFailed;
  ControllerStats stats;
  /// Fraction of post-event states serving full k / serving >= 1 path.
  double availability_full = 0.0;
  double availability_any = 0.0;
  /// Wall ms of failure events whose handling ran the repair ladder.
  util::Stats repair_ms;
  /// Wall ms of every event.
  util::Stats event_ms;
  /// served cost / fresh-solve cost at drift checkpoints. ~1 means the
  /// incrementally maintained paths match a fresh solve; values below 1
  /// are possible because the fresh oracle is itself a 2-approximation.
  util::Stats cost_drift;
  /// Events on which some solve took an anytime degradation step.
  std::int64_t degraded_events = 0;
  /// Packet-sim replay of the final surviving paths (-1 when disabled or
  /// nothing survived).
  double sim_delivery_rate = -1.0;
  double sim_mean_p95_latency = -1.0;
};

/// Runs one campaign. Deterministic given (inst, solver_options, options) —
/// wall-clock metrics vary, event schedule and controller decisions do not
/// (provided solver deadlines are either off or generous enough not to
/// bind, which is how the deterministic ctest campaign runs).
ChaosReport run_chaos_campaign(const core::Instance& inst,
                               const core::SolverOptions& solver_options,
                               const ChaosOptions& options);

}  // namespace krsp::resilience

#include "resilience/audit.h"

#include <cmath>

namespace krsp::resilience {

graph::Delay audited_delay_cap(const core::Instance& inst,
                               const core::SolverOptions& options) {
  switch (options.mode) {
    case core::SolverOptions::Mode::kExactWeights:
      return inst.delay_bound;
    case core::SolverOptions::Mode::kScaled:
      return static_cast<graph::Delay>(std::floor(
          (1.0 + options.eps1) * static_cast<double>(inst.delay_bound)));
    case core::SolverOptions::Mode::kPhase1Only:
      return 2 * inst.delay_bound;
  }
  return inst.delay_bound;
}

AuditReport audit_served_paths(
    const core::Instance& live, const core::PathSet& served,
    const std::unordered_set<graph::EdgeId>& failed_edges,
    graph::Delay delay_cap, graph::Cost expected_cost,
    graph::Delay expected_delay) {
  AuditReport report;
  report.paths_served = served.size();

  if (served.size() > 0) {
    KRSP_CHECK_MSG(served.size() <= live.k,
                   "audit: serving " << served.size() << " paths but k = "
                                     << live.k);
    // PathSet::is_valid checks exactly-k; audit against the served count so
    // reduced-k service still validates structure and disjointness.
    core::Instance as_served = live;
    as_served.k = served.size();
    std::string why;
    KRSP_CHECK_MSG(served.is_valid(as_served, &why), "audit: " << why);

    for (const auto& path : served.paths())
      for (const graph::EdgeId e : path)
        KRSP_CHECK_MSG(!failed_edges.count(e),
                       "audit: served path uses failed edge " << e);

    report.cost = served.total_cost(live.graph);
    report.delay = served.total_delay(live.graph);
    KRSP_CHECK_MSG(report.delay <= delay_cap,
                   "audit: served delay " << report.delay
                                          << " exceeds cap " << delay_cap);
  }

  KRSP_CHECK_MSG(report.cost == expected_cost,
                 "audit: cost bookkeeping drift — recorded "
                     << expected_cost << ", recomputed " << report.cost);
  KRSP_CHECK_MSG(report.delay == expected_delay,
                 "audit: delay bookkeeping drift — recorded "
                     << expected_delay << ", recomputed " << report.delay);
  return report;
}

}  // namespace krsp::resilience

#include "resilience/chaos.h"

#include <algorithm>
#include <cmath>

#include "sim/network_sim.h"
#include "util/rng.h"
#include "util/timer.h"

namespace krsp::resilience {

namespace {

/// Edges are partitioned into shared-risk groups by id — a stand-in for
/// "fibers in the same conduit" that keeps the schedule reproducible.
int srlg_group_of(graph::EdgeId e, int groups) {
  return static_cast<int>(e) % std::max(1, groups);
}

}  // namespace

ChaosReport run_chaos_campaign(const core::Instance& inst,
                               const core::SolverOptions& solver_options,
                               const ChaosOptions& options) {
  ChaosReport report;
  util::Rng rng(options.seed);
  ResilienceController controller(inst, solver_options);
  report.provision_status = controller.provision();

  const int m = inst.graph.num_edges();
  const auto max_failed = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::floor(
             options.max_failed_fraction * static_cast<double>(m))));

  // Mirror of the controller's failed set kept as a vector for
  // deterministic uniform sampling.
  std::vector<graph::EdgeId> failed_list;
  std::vector<bool> is_failed(m, false);
  const auto mark_failed = [&](graph::EdgeId e) {
    if (is_failed[e]) return;
    is_failed[e] = true;
    failed_list.push_back(e);
  };
  const auto mark_recovered = [&](graph::EdgeId e) {
    if (!is_failed[e]) return;
    is_failed[e] = false;
    failed_list.erase(std::find(failed_list.begin(), failed_list.end(), e));
  };

  const auto random_alive_edge = [&]() -> graph::EdgeId {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto e = static_cast<graph::EdgeId>(rng.uniform_int(0, m - 1));
      if (!is_failed[e]) return e;
    }
    return graph::kInvalidEdge;
  };
  const auto random_served_edge = [&]() -> graph::EdgeId {
    const auto& paths = controller.served().paths();
    if (paths.empty()) return graph::kInvalidEdge;
    const auto& path = paths[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(paths.size()) - 1))];
    return path[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(path.size()) - 1))];
  };

  for (int i = 0; i < options.events; ++i) {
    NetworkEvent event;
    const double roll = rng.uniform01();
    const bool force_recover =
        static_cast<std::int64_t>(failed_list.size()) >= max_failed;
    const bool want_recover =
        force_recover ||
        roll >= options.p_srlg + options.p_degrade + options.p_fail;

    if (want_recover && !failed_list.empty()) {
      event.type = EventType::kEdgeRecover;
      event.edge = failed_list[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(failed_list.size()) - 1))];
      mark_recovered(event.edge);
    } else if (!force_recover && roll < options.p_srlg) {
      event.type = EventType::kSrlgFail;
      const int g = static_cast<int>(
          rng.uniform_int(0, std::max(1, options.srlg_groups) - 1));
      for (graph::EdgeId e = 0; e < m; ++e)
        if (!is_failed[e] && srlg_group_of(e, options.srlg_groups) == g)
          event.group.push_back(e);
      if (event.group.empty()) continue;  // whole group already down
      for (const graph::EdgeId e : event.group) mark_failed(e);
    } else if (!force_recover &&
               roll < options.p_srlg + options.p_degrade) {
      event.type = EventType::kDelayDegrade;
      event.edge = random_alive_edge();
      if (event.edge == graph::kInvalidEdge) continue;
      const auto base = inst.graph.edge(event.edge).delay;
      const auto live = controller.live_instance().graph.edge(event.edge).delay;
      if (rng.bernoulli(0.4)) {
        event.new_delay = base;  // congestion clears
      } else {
        // Degrade from the live value, capped so repeated hits saturate.
        const double degraded =
            std::max(1.0, static_cast<double>(live) * options.degrade_factor);
        event.new_delay = std::min<graph::Delay>(
            static_cast<graph::Delay>(std::llround(degraded)),
            std::max<graph::Delay>(1, base * 4));
      }
    } else {
      event.type = EventType::kEdgeFail;
      event.edge = graph::kInvalidEdge;
      if (rng.bernoulli(options.target_served_bias))
        event.edge = random_served_edge();
      if (event.edge == graph::kInvalidEdge || is_failed[event.edge])
        event.edge = random_alive_edge();
      if (event.edge == graph::kInvalidEdge) continue;  // everything down
      mark_failed(event.edge);
    }

    const auto outcome = controller.apply(event);
    ++report.events;
    report.event_ms.add(outcome.seconds * 1e3);
    if (outcome.repair.has_value())
      report.repair_ms.add(outcome.seconds * 1e3);
    if (outcome.degradation != core::DegradationStep::kNone)
      ++report.degraded_events;
    if (outcome.paths_served == inst.k) report.availability_full += 1.0;
    if (outcome.paths_served > 0) report.availability_any += 1.0;

    if (options.drift_every > 0 && (i + 1) % options.drift_every == 0 &&
        controller.paths_served() == inst.k) {
      core::SolverOptions fresh_options = solver_options;
      fresh_options.deadline_seconds = 0.0;  // the oracle gets all the time
      const auto fresh =
          core::KrspSolver(fresh_options).solve(controller.degraded_instance());
      if (fresh.has_paths() && fresh.cost > 0)
        report.cost_drift.add(static_cast<double>(controller.served_cost()) /
                              static_cast<double>(fresh.cost));
    }
  }

  if (report.events > 0) {
    report.availability_full /= report.events;
    report.availability_any /= report.events;
  }
  report.stats = controller.stats();

  if (options.replay_sim && controller.paths_served() > 0) {
    sim::LinkParams params;
    params.transmission_time = 1;
    params.queue_capacity = 128;
    sim::NetworkSimulator simulator(controller.live_instance().graph, params,
                                    options.seed);
    const auto& paths = controller.served().paths();
    for (std::size_t p = 0; p < paths.size(); ++p) {
      sim::FlowSpec flow;
      flow.name = "survivor-" + std::to_string(p);
      flow.route = paths[p];
      flow.mean_gap = 6.0;
      flow.poisson = p % 2 == 1;
      flow.packet_budget = 2000;
      simulator.add_flow(std::move(flow));
    }
    const auto result = simulator.run(options.sim_horizon);
    std::int64_t sent = 0, delivered = 0;
    util::Stats p95;
    for (const auto& f : result.flows) {
      sent += f.sent;
      delivered += f.delivered;
      if (f.latency.count() > 0) p95.add(f.latency.percentile(95));
    }
    if (sent > 0)
      report.sim_delivery_rate =
          static_cast<double>(delivered) / static_cast<double>(sent);
    if (p95.count() > 0) report.sim_mean_p95_latency = p95.mean();
  }

  return report;
}

}  // namespace krsp::resilience

// Invariant audit for a provisioned path set under failures.
//
// The resilience controller runs this after every event it absorbs; tests
// and the chaos engine call it directly. A violation is a library bug (the
// controller must never serve an invalid set), so failures throw
// util::CheckError like every other broken invariant in the library.
//
// Invariants checked:
//  * every served path is a simple s→t path of the live graph, and the
//    paths are pairwise edge-disjoint (PathSet::is_valid against k');
//  * no served path uses a failed edge;
//  * total delay under the *live* (possibly degraded) delays is within the
//    audit cap — D for strict modes, (1+ε1)·D when the solver mode is
//    allowed that slack;
//  * the caller's cost/delay bookkeeping matches a recomputation.
#pragma once

#include <unordered_set>

#include "core/instance.h"
#include "core/path_set.h"
#include "core/solver.h"

namespace krsp::resilience {

struct AuditReport {
  int paths_served = 0;
  graph::Cost cost = 0;
  graph::Delay delay = 0;
};

/// The delay the audit holds a solution of `options` to: delay_bound for
/// kExactWeights, floor((1+eps1)·D) for kScaled, 2·D for kPhase1Only
/// (Lemma 5's worst case).
graph::Delay audited_delay_cap(const core::Instance& inst,
                               const core::SolverOptions& options);

/// Verifies every invariant above; throws util::CheckError on the first
/// violation, returns the recomputed measures otherwise. `served` may hold
/// fewer than inst.k paths (degraded service) or none (outage).
AuditReport audit_served_paths(
    const core::Instance& live, const core::PathSet& served,
    const std::unordered_set<graph::EdgeId>& failed_edges,
    graph::Delay delay_cap, graph::Cost expected_cost,
    graph::Delay expected_delay);

}  // namespace krsp::resilience

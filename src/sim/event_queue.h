// Discrete-event simulation core: a time-ordered event queue with stable
// FIFO tie-breaking (events at equal timestamps fire in schedule order, so
// simulations are fully deterministic).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/check.h"

namespace krsp::sim {

using Time = std::int64_t;  // integral ticks; delays are integral already

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedules `handler` at absolute time `at` (must not be in the past).
  void schedule(Time at, Handler handler) {
    KRSP_CHECK_MSG(at >= now_, "scheduling into the past: " << at << " < "
                                                            << now_);
    heap_.push(Event{at, next_seq_++, std::move(handler)});
  }

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Runs events until the queue drains or `horizon` is passed (events
  /// scheduled after the horizon stay queued). Returns events executed.
  std::int64_t run_until(Time horizon) {
    std::int64_t executed = 0;
    while (!heap_.empty() && heap_.top().at <= horizon) {
      // Copy out before pop: the handler may schedule new events.
      Event ev = heap_.top();
      heap_.pop();
      now_ = ev.at;
      ev.handler();
      ++executed;
    }
    now_ = std::max(now_, horizon);
    return executed;
  }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    Handler handler;

    bool operator>(const Event& other) const {
      return at != other.at ? at > other.at : seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace krsp::sim

// Packet-level store-and-forward network simulator.
//
// Purpose: validate the deployment story behind kRSP end to end. The
// solver's edge delays model link propagation; this simulator adds what
// the static model abstracts away — per-link serialization and queueing —
// and measures the latency that traffic classes actually experience on the
// provisioned paths. bench_simulation and the qos_simulation example use
// it to show that kRSP + urgency routing meets SLAs where delay-blind
// provisioning does not.
//
// Model (deliberately simple, standard M/D/1-flavored store-and-forward):
//  * each graph edge is a link with propagation delay = edge.delay ticks
//    and a fixed transmission time per packet (serialization);
//  * each link has one FIFO output queue with finite capacity; arrivals to
//    a full queue are dropped;
//  * packets carry a fixed route (a path's edge sequence) — source routing,
//    exactly how an SDN controller installs kRSP paths;
//  * flows inject packets with deterministic (CBR) or exponential
//    (Poisson) inter-arrival times from the library's Rng.
#pragma once

#include <string>
#include <vector>

#include "graph/digraph.h"
#include "sim/event_queue.h"
#include "util/rng.h"
#include "util/stats.h"

namespace krsp::sim {

struct LinkParams {
  Time transmission_time = 1;  // ticks to serialize one packet
  int queue_capacity = 64;     // packets buffered per link
};

struct FlowSpec {
  std::string name;
  std::vector<graph::EdgeId> route;  // edge sequence (a provisioned path)
  /// Mean inter-arrival gap in ticks. Poisson (exponential gaps) when
  /// `poisson`, else CBR (constant gaps).
  double mean_gap = 10.0;
  bool poisson = false;
  std::int64_t packet_budget = 1000;  // packets to inject
};

struct FlowReport {
  std::string name;
  std::int64_t sent = 0;
  std::int64_t delivered = 0;
  std::int64_t dropped = 0;
  util::Stats latency;  // end-to-end ticks of delivered packets
  /// Inter-packet delay variation |latency_i - latency_(i-1)| between
  /// consecutively delivered packets — the jitter the paper's abstract
  /// lists among the QoS requirements.
  util::Stats jitter;
};

struct LinkReport {
  graph::EdgeId edge = graph::kInvalidEdge;
  std::int64_t packets = 0;     // packets transmitted
  Time busy_time = 0;           // ticks spent serializing
  double utilization = 0.0;     // busy_time / horizon
};

struct SimulationResult {
  std::vector<FlowReport> flows;
  std::vector<LinkReport> links;  // only links that carried traffic
  Time horizon = 0;
};

class NetworkSimulator {
 public:
  NetworkSimulator(const graph::Digraph& g, LinkParams params,
                   std::uint64_t seed);

  /// Registers a flow; routes must be walks in the graph (KRSP_CHECKed).
  void add_flow(FlowSpec spec);

  /// Injects all flows and runs until `horizon` ticks. In-flight packets
  /// at the horizon are neither delivered nor dropped.
  SimulationResult run(Time horizon);

 private:
  struct Link {
    Time busy_until = 0;  // when the serializer frees up
    int queued = 0;       // packets waiting or in transmission
    std::int64_t transmitted = 0;
    Time busy_time = 0;
  };

  struct Packet {
    int flow = 0;
    std::size_t hop = 0;  // index into the flow's route
    Time injected = 0;
  };

  void inject(int flow_index, Time at);
  void arrive_at_link(Packet packet, Time at);

  const graph::Digraph& graph_;
  LinkParams params_;
  util::Rng rng_;
  EventQueue queue_;
  std::vector<FlowSpec> specs_;
  std::vector<FlowReport> reports_;
  /// Previous delivered latency per flow (-1 before the first delivery);
  /// jitter bookkeeping that has no business in the public report.
  std::vector<double> last_latency_;
  std::vector<Link> links_;
};

}  // namespace krsp::sim

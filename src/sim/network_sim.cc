#include "sim/network_sim.h"

#include <algorithm>
#include <cmath>

namespace krsp::sim {

NetworkSimulator::NetworkSimulator(const graph::Digraph& g, LinkParams params,
                                   std::uint64_t seed)
    : graph_(g), params_(params), rng_(seed), links_(g.num_edges()) {
  KRSP_CHECK(params.transmission_time >= 0);
  KRSP_CHECK(params.queue_capacity >= 1);
}

void NetworkSimulator::add_flow(FlowSpec spec) {
  KRSP_CHECK_MSG(!spec.route.empty(), "flow with empty route");
  KRSP_CHECK_MSG(
      graph::is_walk(graph_, spec.route, graph_.edge(spec.route.front()).from,
                     graph_.edge(spec.route.back()).to),
      "flow route is not a walk: " << spec.name);
  KRSP_CHECK(spec.mean_gap >= 1.0 && spec.packet_budget >= 0);
  FlowReport report;
  report.name = spec.name;
  specs_.push_back(std::move(spec));
  reports_.push_back(std::move(report));
  last_latency_.push_back(-1.0);
}

void NetworkSimulator::inject(int flow_index, Time at) {
  const FlowSpec& spec = specs_[flow_index];
  auto& report = reports_[flow_index];
  if (report.sent >= spec.packet_budget) return;
  ++report.sent;
  arrive_at_link(Packet{flow_index, 0, at}, at);

  // Next arrival: CBR uses the constant gap, Poisson draws an exponential
  // gap with the same mean (integral ticks, at least 1).
  double gap = spec.mean_gap;
  if (spec.poisson) {
    const double u = rng_.uniform01();
    gap = -spec.mean_gap * std::log(1.0 - u);
  }
  const Time next =
      at + std::max<Time>(1, static_cast<Time>(std::llround(gap)));
  queue_.schedule(next, [this, flow_index, next] { inject(flow_index, next); });
}

void NetworkSimulator::arrive_at_link(Packet packet, Time at) {
  const FlowSpec& spec = specs_[packet.flow];
  const graph::EdgeId e = spec.route[packet.hop];
  Link& link = links_[e];
  if (link.queued >= params_.queue_capacity) {
    ++reports_[packet.flow].dropped;
    return;
  }
  ++link.queued;
  const Time start = std::max(at, link.busy_until);
  const Time tx_done = start + params_.transmission_time;
  link.busy_until = tx_done;
  link.busy_time += params_.transmission_time;
  ++link.transmitted;
  // The packet frees its buffer slot once fully serialized.
  queue_.schedule(tx_done, [this, e] { --links_[e].queued; });
  // ... and reaches the other end after propagation.
  const Time arrival = tx_done + graph_.edge(e).delay;
  const Packet next{packet.flow, packet.hop + 1, packet.injected};
  if (next.hop == spec.route.size()) {
    queue_.schedule(arrival, [this, next, arrival] {
      auto& report = reports_[next.flow];
      ++report.delivered;
      const double latency = static_cast<double>(arrival - next.injected);
      report.latency.add(latency);
      // FIFO links + fixed routes preserve per-flow ordering, so
      // consecutive deliveries are consecutive packets.
      if (last_latency_[next.flow] >= 0.0)
        report.jitter.add(std::abs(latency - last_latency_[next.flow]));
      last_latency_[next.flow] = latency;
    });
  } else {
    queue_.schedule(arrival,
                    [this, next, arrival] { arrive_at_link(next, arrival); });
  }
}

SimulationResult NetworkSimulator::run(Time horizon) {
  KRSP_CHECK(horizon > 0);
  for (int f = 0; f < static_cast<int>(specs_.size()); ++f) {
    queue_.schedule(0, [this, f] { inject(f, 0); });
  }
  queue_.run_until(horizon);

  SimulationResult result;
  result.horizon = horizon;
  result.flows = reports_;
  for (graph::EdgeId e = 0; e < graph_.num_edges(); ++e) {
    const Link& link = links_[e];
    if (link.transmitted == 0) continue;
    LinkReport lr;
    lr.edge = e;
    lr.packets = link.transmitted;
    lr.busy_time = link.busy_time;
    lr.utilization =
        static_cast<double>(link.busy_time) / static_cast<double>(horizon);
    result.links.push_back(lr);
  }
  return result;
}

}  // namespace krsp::sim

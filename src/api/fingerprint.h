// Request fingerprinting for the result cache and catalog fast path.
//
// A deadline-free solve is a pure function of (graph, query, solver
// knobs); the serving layer keys its result cache on two independent
// 64-bit hashes of exactly those inputs (see server/result_cache.h for
// the collision-guard rationale). Both hashes are *sequential
// accumulators* — FNV-1a and splitmix64 — mixing, in order:
//
//   n, m, (from, to, cost, delay) per edge,        <- graph prefix
//   s, t, k, D, mode, guess, eps1, eps2            <- query suffix
//
// That ordering is the load-bearing design point of the topology
// catalog: the accumulator state after the graph words depends only on
// the topology, so a catalog entry precomputes it once (GraphPrefix) and
// every request that references the topology by id resumes from the
// stored state and mixes only the O(1) query suffix. The resulting
// fingerprints are *identical* to hashing the same instance inline,
// which is what makes cache entries shared across wire protocol v1
// (inline edges) and v2 (topology id) — the cross-form cache-hit
// property ProtocolV2Test asserts.
#pragma once

#include <cstdint>

#include "api/krsp.h"

namespace krsp::api {

/// Accumulator states after mixing the graph words (n, m, every edge).
/// Precomputed per catalog topology; resumed per request.
struct GraphPrefix {
  std::uint64_t fnv = 0;
  std::uint64_t splitmix = 0;
};

/// Both cache keys for one request: `key` indexes the cache, `verify` is
/// stored alongside the entry and re-checked on lookup.
struct FingerprintPair {
  std::uint64_t key = 0;     // FNV-1a
  std::uint64_t verify = 0;  // splitmix64
};

/// Hashes the graph words of `inst` (n, m, each edge's endpoints and
/// weights) and returns both accumulator states. O(m).
[[nodiscard]] GraphPrefix graph_fingerprint_prefix(const Instance& inst);

/// Fingerprints a request. Inline requests hash the full instance, O(m);
/// requests carrying a TopologyRef resume from its stored prefix and
/// hash only the query suffix, O(1). The two paths produce identical
/// values for identical effective instances. Tag, SLA class and
/// deadline_seconds are excluded (metadata / cache-bypassing).
[[nodiscard]] FingerprintPair request_fingerprints(
    const SolveRequest& request);

}  // namespace krsp::api

#include "api/fingerprint.h"

#include <bit>

namespace krsp::api {

namespace {

struct Fnv {
  std::uint64_t h = 14695981039346656037ull;
  void mix(std::uint64_t x) {
    // Mix all 8 bytes, not just the low ones: edge weights are int64.
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
};

// splitmix64 accumulator: structurally unrelated to FNV-1a, so the pair
// (key, verify) only collides when both independent 64-bit hashes
// collide on the same two requests.
struct SplitMix {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  void mix(std::uint64_t x) {
    h += x + 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    h ^= h >> 31;
  }
};

template <class Hasher>
void mix_graph(Hasher& f, const Instance& inst) {
  f.mix(static_cast<std::uint64_t>(inst.graph.num_vertices()));
  f.mix(static_cast<std::uint64_t>(inst.graph.num_edges()));
  for (const auto& e : inst.graph.edges()) {
    f.mix(static_cast<std::uint64_t>(e.from));
    f.mix(static_cast<std::uint64_t>(e.to));
    f.mix(static_cast<std::uint64_t>(e.cost));
    f.mix(static_cast<std::uint64_t>(e.delay));
  }
}

template <class Hasher>
void mix_query(Hasher& f, const SolveRequest& request) {
  // effective_query() honors a pending (unmaterialized) query override,
  // so an override request hashes identically to the inline form of the
  // same modified instance — without ever copying the graph.
  const QueryOverride q = request.effective_query();
  f.mix(static_cast<std::uint64_t>(q.s));
  f.mix(static_cast<std::uint64_t>(q.t));
  f.mix(static_cast<std::uint64_t>(q.k));
  f.mix(static_cast<std::uint64_t>(q.delay_bound));
  f.mix(static_cast<std::uint64_t>(request.mode));
  f.mix(static_cast<std::uint64_t>(request.guess));
  f.mix(std::bit_cast<std::uint64_t>(request.eps1));
  f.mix(std::bit_cast<std::uint64_t>(request.eps2));
}

}  // namespace

GraphPrefix graph_fingerprint_prefix(const Instance& inst) {
  Fnv f;
  SplitMix s;
  mix_graph(f, inst);
  mix_graph(s, inst);
  return GraphPrefix{f.h, s.h};
}

FingerprintPair request_fingerprints(const SolveRequest& request) {
  Fnv f;
  SplitMix s;
  if (request.topology != nullptr) {
    // Resume from the catalog's precomputed graph-prefix states; only the
    // O(1) query suffix remains. Identical to the inline path below for
    // the same effective instance because both hashes are sequential
    // accumulators over the same word stream.
    f.h = request.topology->fp_prefix;
    s.h = request.topology->fp2_prefix;
  } else {
    const Instance& inst = request.instance_view();
    mix_graph(f, inst);
    mix_graph(s, inst);
  }
  mix_query(f, request);
  mix_query(s, request);
  return FingerprintPair{f.h, s.h};
}

}  // namespace krsp::api

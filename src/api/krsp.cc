#include "api/krsp.h"

#include "engine/batch_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/deadline.h"

namespace krsp::api {

core::SolverOptions to_solver_options(const SolveRequest& request) {
  core::SolverOptions options;
  switch (request.mode) {
    case Mode::kScaled:
      options.mode = core::SolverOptions::Mode::kScaled;
      break;
    case Mode::kExactWeights:
      options.mode = core::SolverOptions::Mode::kExactWeights;
      break;
    case Mode::kPhase1Only:
      options.mode = core::SolverOptions::Mode::kPhase1Only;
      break;
  }
  options.eps1 = request.eps1;
  options.eps2 = request.eps2;
  options.guess = request.guess == GuessStrategy::kBinarySearch
                      ? core::SolverOptions::GuessStrategy::kBinarySearch
                      : core::SolverOptions::GuessStrategy::kDoubling;
  options.deadline_seconds = request.deadline_seconds;
  return options;
}

const char* sla_class_name(SlaClass cls) {
  switch (cls) {
    case SlaClass::kInteractive:
      return "interactive";
    case SlaClass::kBatch:
      return "batch";
  }
  return "unknown";
}

const char* status_name(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kApprox:
      return "approx";
    case SolveStatus::kApproxDelayOver:
      return "approx-delay-over";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kNoKDisjointPaths:
      return "no-k-disjoint-paths";
    case SolveStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

core::Instance SolveRequest::materialized_instance() const {
  core::Instance inst = instance_view();  // O(m) graph copy
  if (topology != nullptr && query_override) {
    inst.s = query_override->s;
    inst.t = query_override->t;
    inst.k = query_override->k;
    inst.delay_bound = query_override->delay_bound;
    inst.validate();
  }
  return inst;
}

namespace {

// Resolved once per mode: the registry lookup is get-or-create under a
// mutex, too heavy for the per-solve path.
obs::Histogram& solve_wall_histogram(Mode mode) {
  static obs::Histogram* per_mode[] = {
      &obs::Registry::global().histogram("krsp_solve_wall_ns",
                                         "mode=\"scaled\""),
      &obs::Registry::global().histogram("krsp_solve_wall_ns",
                                         "mode=\"exact\""),
      &obs::Registry::global().histogram("krsp_solve_wall_ns",
                                         "mode=\"phase1\""),
  };
  return *per_mode[static_cast<int>(mode)];
}

SolveResult solve_request(const SolveRequest& request,
                          const util::Deadline& deadline,
                          core::SolveWorkspace* ws) {
  KRSP_OBS_SPAN("solve");
  SolveResult out;
  out.tag = request.tag;
  try {
    const core::KrspSolver solver(to_solver_options(request));
    // A pending query override materializes here — the first (and only)
    // point that needs the concrete instance. Cache hits and routing
    // decisions upstream key on the override symbolically and never pay
    // this copy. A bad override throws and lands in the catch below.
    const bool deferred =
        request.topology != nullptr && request.query_override.has_value();
    const core::Instance materialized =
        deferred ? request.materialized_instance() : core::Instance{};
    const core::Instance& inst =
        deferred ? materialized : request.instance_view();
    core::Solution sol = solver.solve(inst, deadline, ws);
    out.status = sol.status;
    out.paths = std::move(sol.paths);
    out.cost = sol.cost;
    out.delay = sol.delay;
    out.telemetry = sol.telemetry;
  } catch (const std::exception& e) {
    out.status = SolveStatus::kFailed;
    out.error = e.what();
  }
  solve_wall_histogram(request.mode)
      .record(static_cast<std::uint64_t>(
          std::max(0.0, out.telemetry.wall_seconds) * 1e9));
  return out;
}

/// The request deadline anchors here — at execution start, not enqueue.
util::Deadline anchored(const SolveRequest& request) {
  return util::Deadline::after_seconds(request.deadline_seconds);
}

}  // namespace

SolveResult Solver::solve(const SolveRequest& request) {
  return solve_request(request, anchored(request), nullptr);
}

SolveResult Solver::solve(const SolveRequest& request,
                          SolveWorkspace& workspace) {
  return solve_request(request, anchored(request), &workspace);
}

SolveResult Solver::solve(const SolveRequest& request,
                          const util::Deadline& deadline,
                          SolveWorkspace& workspace) {
  return solve_request(request, deadline, &workspace);
}

Engine::Engine(EngineOptions options)
    : impl_(std::make_unique<engine::BatchEngine>(options)) {}

Engine::~Engine() = default;

int Engine::num_threads() const { return impl_->num_threads(); }

Ticket Engine::submit(SolveRequest request) {
  return impl_->submit(std::move(request));
}

Ticket Engine::submit(SolveRequest request, const util::Deadline& deadline) {
  return impl_->submit(std::move(request), deadline);
}

std::vector<SolveResult> Engine::solve_batch(
    const std::vector<SolveRequest>& requests) {
  return impl_->solve_batch(requests);
}

void Engine::close() { impl_->close(); }
void Engine::drain() { impl_->drain(); }
std::size_t Engine::queue_depth() const { return impl_->queue_depth(); }
std::uint64_t Engine::submitted() const { return impl_->submitted(); }
std::uint64_t Engine::completed() const { return impl_->completed(); }

}  // namespace krsp::api

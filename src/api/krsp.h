// krsp::api — the stable public facade.
//
// This header is the supported entry point to the library: build an
// Instance, describe the solve as a SolveRequest, and hand it to
// Solver::solve (one-off), Engine::submit (streaming), or
// Engine::solve_batch (one-shot throughput). Everything underneath —
// core::KrspSolver, the phase-1/cancellation internals, the workspace
// machinery — is implementation detail and may change between releases;
// this surface will not. docs/API.md documents the full request/result
// contract, thread-safety guarantees, and the migration table from the
// legacy core:: call sites.
//
// Error contract: solve entry points do not throw for per-request problems.
// Invalid instances, internal invariant trips, anything that would abort a
// solve is captured as SolveStatus::kFailed with SolveResult::error set, so
// one bad request cannot take down a batch.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/io.h"
#include "core/kbcp.h"
#include "core/path_set.h"
#include "core/priority_routing.h"
#include "core/repair.h"
#include "core/solver.h"
#include "core/vertex_disjoint.h"
#include "core/workspace.h"
#include "util/deadline.h"

namespace krsp::engine {
class BatchEngine;
}

namespace krsp::api {

// Re-exported problem/solution vocabulary. These are the library's own
// types; the aliases pin them into the stable namespace.
using core::DegradationStep;
using core::Instance;
using core::PathSet;
using core::SolveStatus;
using core::SolveTelemetry;
using core::SolveWorkspace;

// Instance construction and persistence, so callers never need a core::
// include next to this header.
using core::has_k_disjoint_paths;
using core::make_random_instance;
using core::min_possible_delay;
using core::random_er_instance;
using core::RandomInstanceOptions;
using core::read_instance;
using core::read_instance_file;
using core::write_instance;
using core::write_instance_file;
using core::write_paths;

// Scenario extensions that ride on a solved PathSet or reuse the Instance
// vocabulary: urgency-based traffic assignment, vertex-disjoint and kBCP
// variants, and incremental repair after link failures. Re-exported so
// application code needs no core:: include next to this header.
using core::assign_by_urgency;
using core::KbcpInstance;
using core::KbcpStatus;
using core::repair_after_failures;
using core::RepairOutcome;
using core::solve_kbcp;
using core::solve_vertex_disjoint;
using core::TrafficClass;

/// Which of the paper's algorithms to run (see README "Solver modes").
enum class Mode {
  kScaled,        // Theorem 4: (1+eps1, 2+eps2), polynomial — the default
  kExactWeights,  // Lemma 3: (1, 2), pseudo-polynomial
  kPhase1Only,    // Lemma 5: delay/D + cost/C_OPT <= 2, delay may exceed D
};

/// Ĉ search strategy for the cancellation cost cap.
enum class GuessStrategy {
  kBinarySearch,  // certifies the 2·(C_OPT+1) bound
  kDoubling,      // <= 2× looser cap, fewer cancellation runs
};

/// Service class of a request for SLA-tiered admission (serving layer
/// only; a direct Solver::solve ignores it). Interactive requests are
/// latency-sensitive: under overload the service admits them into the
/// degraded (coarser-eps) ladder and sheds batch load first. Batch
/// requests accept queueing and are bounded by their own smaller budget.
enum class SlaClass { kInteractive, kBatch };

/// Short stable name ("interactive", "batch") for wire and logs.
[[nodiscard]] const char* sla_class_name(SlaClass cls);

/// A named, immutable topology shared across requests — the API face of
/// one catalog entry (store::TopologyCatalog materializes these from
/// mmap'd `.krspb` containers at startup). Requests that reference a
/// TopologyRef skip per-request graph shipping and parsing entirely, and
/// the precomputed fingerprint prefixes make cache keying O(1) instead
/// of O(m) (api/fingerprint.h explains why the values still match the
/// inline path exactly).
struct TopologyRef {
  /// Catalog id (the container's filename stem for catalog entries).
  std::string id;
  /// Content digest from the container header; 0 for ad-hoc refs.
  std::uint64_t digest = 0;
  /// FNV-1a / splitmix64 accumulator states after the graph words
  /// (api::graph_fingerprint_prefix of *instance).
  std::uint64_t fp_prefix = 0;
  std::uint64_t fp2_prefix = 0;
  /// The materialized instance: graph plus the topology's default query.
  /// Immutable and shared — every request referencing this topology reads
  /// the same object concurrently.
  std::shared_ptr<const Instance> instance;
};

/// A deferred query override for topology-referencing requests: the four
/// query fields to apply on top of `topology->instance`'s graph. Kept
/// symbolic instead of eagerly copying the instance so the serving hot
/// path stays O(1) — fingerprints mix these values directly after the
/// stored graph prefix, and the O(m) graph copy happens only when a solve
/// actually runs (a cache hit or a routing decision never pays it).
struct QueryOverride {
  graph::VertexId s = 0;
  graph::VertexId t = 0;
  int k = 1;
  graph::Delay delay_bound = 0;
};

/// One solve, self-contained: the instance plus every knob that affects
/// the answer. Requests are value types — copy or move them freely; a
/// batch may repeat the same instance under different parameters.
///
/// Two ways to name the graph:
///   * inline — fill `instance` (the original v1 surface, still fully
///     supported; see docs/API.md for the deprecation note on shipping
///     large graphs inline through the serving layer);
///   * by reference — set `topology` to a shared TopologyRef; `instance`
///     is then ignored (leave it default-constructed to avoid carrying a
///     dead copy).
/// All consumers go through instance_view(), which picks the right one.
struct SolveRequest {
  Instance instance;
  /// When set, the solve runs against *topology->instance and `instance`
  /// above is ignored.
  std::shared_ptr<const TopologyRef> topology;
  /// Deferred query override; meaningful only with `topology` set. When
  /// present the effective query is these four fields, not the topology's
  /// defaults — instance_view() still returns the shared default instance
  /// (same graph), so consumers that need the query go through
  /// effective_query() or materialized_instance().
  std::optional<QueryOverride> query_override;
  Mode mode = Mode::kScaled;
  double eps1 = 0.25;  // delay slack (Theorem 4; kScaled only)
  double eps2 = 0.25;  // cost slack (Theorem 4; kScaled only)
  GuessStrategy guess = GuessStrategy::kBinarySearch;
  /// Wall-clock budget for this request; <= 0 = unbounded. The clock
  /// starts when the solve starts *executing* (queueing time in a batch is
  /// not charged). On expiry the solver returns the best result of the
  /// anytime degradation ladder; SolveResult::degradation() names the step.
  double deadline_seconds = 0.0;
  /// SLA tier for the serving layer's admission controller; does not
  /// affect the computation itself (and is excluded from the result-cache
  /// fingerprint — both tiers share cache entries).
  SlaClass sla = SlaClass::kBatch;
  /// Caller correlation id, echoed verbatim in the result.
  std::string tag;

  /// The instance this request actually solves: the referenced topology's
  /// when `topology` is set, the inline member otherwise. Note a pending
  /// query_override is NOT applied here — the view keeps the topology's
  /// default query fields; see effective_query()/materialized_instance().
  [[nodiscard]] const Instance& instance_view() const {
    return topology != nullptr ? *topology->instance : instance;
  }

  /// The query this request actually asks: the override when one is
  /// pending, the viewed instance's fields otherwise. O(1); this is what
  /// fingerprints and routing key on.
  [[nodiscard]] QueryOverride effective_query() const {
    if (topology != nullptr && query_override) return *query_override;
    const Instance& inst = instance_view();
    return QueryOverride{inst.s, inst.t, inst.k, inst.delay_bound};
  }

  /// Folds a pending override into a concrete Instance (an O(m) graph
  /// copy) and validates it. Call only when the solve actually runs —
  /// cache hits and ring-key computation never need it. Throws
  /// util::CheckError if the override breaks instance invariants.
  [[nodiscard]] Instance materialized_instance() const;
};

struct SolveResult {
  std::string tag;
  SolveStatus status = SolveStatus::kFailed;
  PathSet paths;
  graph::Cost cost = 0;
  graph::Delay delay = 0;
  /// Includes the bicameral kernel's pruning counters for the final
  /// cancellation run (telemetry.cancel.finder_stats): anchors scanned vs
  /// pruned, SCCs skipped outright, and the DP-table high-water mark
  /// peak_dp_bytes — see core::BicameralStats and docs/PERF.md.
  SolveTelemetry telemetry;
  /// Time the request sat in the engine queue before a worker claimed it
  /// (0 for direct Solver::solve calls). Observability only: not part of
  /// the computation, the cache payload comparison, or the fingerprint.
  double queue_wait_seconds = 0.0;
  /// Diagnostic for status == kFailed (invariant trip, invalid instance).
  std::string error;

  [[nodiscard]] bool has_paths() const {
    return status == SolveStatus::kOptimal || status == SolveStatus::kApprox ||
           status == SolveStatus::kApproxDelayOver;
  }
  /// Which anytime step served this result (kNone = full algorithm).
  [[nodiscard]] DegradationStep degradation() const {
    return telemetry.degradation;
  }
};

/// Stateless single-solve entry point. Thread-safe: concurrent solve()
/// calls are independent (hand each thread its own workspace, or none).
class Solver {
 public:
  [[nodiscard]] static SolveResult solve(const SolveRequest& request);

  /// Same, reusing per-thread scratch across calls (identical results,
  /// fewer allocations — see core/workspace.h).
  [[nodiscard]] static SolveResult solve(const SolveRequest& request,
                                         SolveWorkspace& workspace);

  /// Same, but the wall-clock budget is the given *absolute* deadline
  /// (anchored by the caller) instead of request.deadline_seconds anchored
  /// at execution start. This is how a serving layer charges queue wait
  /// against a request's end-to-end budget: anchor the deadline at
  /// admission and whatever is left when a worker picks the request up
  /// funds the anytime ladder.
  [[nodiscard]] static SolveResult solve(const SolveRequest& request,
                                         const util::Deadline& deadline,
                                         SolveWorkspace& workspace);
};

struct EngineOptions {
  /// Worker threads in the pool; 0 = std::thread::hardware_concurrency(),
  /// negative values clamp to 1.
  int num_threads = 0;
  /// Keep one SolveWorkspace per worker alive across solves (the intended
  /// configuration). false = fresh workspace per request; exists as the
  /// E12 ablation knob and changes no results.
  bool reuse_workspaces = true;
  /// Bound on requests waiting in the engine's work queue (excludes the
  /// ones already executing). submit() blocks — backpressure, never drops
  /// — while the queue is full; 0 = unbounded.
  std::size_t queue_capacity = 0;
};

/// Handle to one submitted request: a future for the result plus the
/// engine-assigned submission index. Ids increase in submit order, so a
/// caller that wants order-stable output can simply get() tickets in id
/// order. Move-only; get() may be called once.
class Ticket {
 public:
  /// Id carried by tickets refused at submission (engine closed). A
  /// refusal consumes no submission index — the dense 0-based sequence
  /// belongs to accepted requests only — so refused tickets all share
  /// this sentinel instead of aliasing the next accepted id.
  static constexpr std::uint64_t kRefusedId = ~std::uint64_t{0};

  Ticket() = default;
  Ticket(Ticket&&) = default;
  Ticket& operator=(Ticket&&) = default;

  [[nodiscard]] bool valid() const { return future_.valid(); }
  /// Submission index, 0-based and dense per engine for accepted
  /// requests; kRefusedId for tickets refused after close().
  [[nodiscard]] std::uint64_t id() const { return id_; }
  /// True once the result is available (get() will not block).
  [[nodiscard]] bool ready() const {
    return future_.valid() && future_.wait_for(std::chrono::seconds(0)) ==
                                  std::future_status::ready;
  }
  /// Blocks for the result; consumes the ticket (valid() is false after).
  [[nodiscard]] SolveResult get() { return future_.get(); }

 private:
  friend class engine::BatchEngine;
  Ticket(std::uint64_t id, std::future<SolveResult> future)
      : id_(id), future_(std::move(future)) {}

  std::uint64_t id_ = 0;
  std::future<SolveResult> future_;
};

/// Fixed-size worker pool executing a continuous stream of solve requests.
///
/// submit() enqueues one request onto a bounded MPMC work queue drained by
/// the worker pool and returns a Ticket immediately; solve_batch() is the
/// one-shot convenience built on top of it. Both may be called from any
/// number of threads concurrently.
///
/// Determinism: each request is solved independently by exactly one worker
/// using the same serial algorithm regardless of pool size or scheduling,
/// so for requests without deadlines the results are bit-identical across
/// thread counts and across submit()/solve_batch() (engine_test asserts
/// this at 1/2/8 threads). Deadline-bounded requests are anytime by
/// design — their degradation step may legitimately differ run to run.
///
/// Shutdown: destruction drains — already-submitted requests run to
/// completion and their tickets are fulfilled before workers exit.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] int num_threads() const;

  /// Enqueues one request; blocks only when the queue is at capacity
  /// (EngineOptions::queue_capacity). After close(), returns an
  /// already-fulfilled kFailed ticket instead of enqueueing.
  [[nodiscard]] Ticket submit(SolveRequest request);

  /// Same, charging the solve against an absolute deadline anchored by the
  /// caller (see Solver::solve overload); used by the serving layer to
  /// bill queue wait against the request's end-to-end budget.
  [[nodiscard]] Ticket submit(SolveRequest request,
                              const util::Deadline& deadline);

  /// Solves every request on the worker pool and returns results in
  /// request order. Blocks until the batch completes; per-request failures
  /// come back as status kFailed (never an exception). An empty request
  /// vector returns an empty result vector.
  [[nodiscard]] std::vector<SolveResult> solve_batch(
      const std::vector<SolveRequest>& requests);

  /// Stops accepting new submissions (queued work still runs). Idempotent.
  void close();
  /// Blocks until every submitted request has completed.
  void drain();

  /// Requests waiting in the queue right now (excludes executing ones).
  [[nodiscard]] std::size_t queue_depth() const;
  /// Total requests ever submitted / completed (telemetry).
  [[nodiscard]] std::uint64_t submitted() const;
  [[nodiscard]] std::uint64_t completed() const;

 private:
  std::unique_ptr<engine::BatchEngine> impl_;
};

/// Configuration for the serving layer (server::SolveService and the
/// krsp_serve front-end). The service stacks three mechanisms in front of
/// the streaming Engine: a sharded LRU result cache, an admission
/// controller that rejects rather than queues-to-death, and end-to-end
/// deadline accounting (queue wait is charged against a request's
/// deadline_seconds; what remains at execution start funds the anytime
/// ladder).
struct ServerOptions {
  /// Worker threads of the underlying Engine; 0 = hardware concurrency.
  int num_threads = 0;
  /// E12 ablation knob, forwarded to the Engine; changes no results.
  bool reuse_workspaces = true;

  /// Admission bound: maximum requests admitted but not yet completed
  /// (queued + executing), across both SLA classes. Beyond it, serve()
  /// rejects immediately with kRejectedQueueFull; 0 = unbounded.
  std::size_t max_pending = 256;
  /// Batch-class budget within max_pending; 0 = inherit max_pending
  /// (classless behavior). A smaller batch budget is how interactive
  /// traffic sheds batch load under overload: batch hits its budget and
  /// rejects while interactive keeps admitting up to the global bound.
  std::size_t max_pending_batch = 0;
  /// Interactive overload ladder: when the predicted queue wait for an
  /// arriving interactive request exceeds this many seconds, admit it in
  /// degraded mode — coarsen eps1/eps2 (kScaled) and switch the cap
  /// search to kDoubling — instead of queueing the full-accuracy solve.
  /// 0 disables the ladder. Degraded results are never cached.
  double degrade_wait_seconds = 0.0;
  /// eps multiplier applied on a degraded admit (kScaled requests).
  double overload_eps_factor = 2.0;
  /// Ceiling for the coarsened eps values.
  double overload_eps_cap = 1.0;
  /// Reject a deadline-bounded request up front when the predicted queue
  /// wait (pending × EWMA service time / workers) would already exhaust
  /// its deadline_seconds — an immediate, honest rejection instead of a
  /// guaranteed timeout.
  bool deadline_aware_admission = true;
  /// EWMA seed for the per-request service-time estimate before the first
  /// completion is observed; 0 = optimistic (admit until samples exist).
  double service_time_prior_seconds = 0.0;

  /// Result-cache entry bound across all shards; 0 disables the cache.
  std::size_t cache_capacity = 1024;
  /// Shard count (each shard has its own lock and LRU list); clamped >= 1.
  int cache_shards = 8;
};

/// Per-SLA-class serving counters (monotonic except the pending gauge).
struct SlaClassStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_deadline = 0;
  /// Admits that went through the overload ladder (coarsened eps).
  std::uint64_t degraded = 0;
  std::size_t pending = 0;            // gauge
  double ewma_service_seconds = 0.0;  // per-class service-time estimate
};

/// Serving-layer counters, all monotonic since service start except the
/// instantaneous depth/entry gauges. Snapshot via SolveService::stats().
struct ServeStats {
  std::uint64_t received = 0;  // serve() calls, any outcome
  std::uint64_t served = 0;    // completed through the engine
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_draining = 0;  // arrived during/after drain()
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_insertions = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t cache_entries = 0;       // gauge
  /// Gauge: live entries per cache shard (index = shard). The spread
  /// shows whether the key partition balances; a hot shard caps hit rate.
  std::vector<std::size_t> cache_shard_entries;
  std::size_t pending = 0;             // gauge: admitted, not completed
  std::size_t peak_pending = 0;
  double ewma_service_seconds = 0.0;   // admission's service-time estimate
  /// Per-tier breakdowns of the admission counters above.
  SlaClassStats interactive;
  SlaClassStats batch;
};

/// Lowering of a request onto the internal solver configuration. Exposed
/// so tools migrating from core:: call sites can verify 1:1 parity.
[[nodiscard]] core::SolverOptions to_solver_options(
    const SolveRequest& request);

/// Short stable identifier for a status ("optimal", "approx", ...).
[[nodiscard]] const char* status_name(SolveStatus status);

}  // namespace krsp::api

// krsp::api — the stable public facade.
//
// This header is the supported entry point to the library: build an
// Instance, describe the solve as a SolveRequest, and hand it to
// Solver::solve (one-off) or Engine::solve_batch (throughput). Everything
// underneath — core::KrspSolver, the phase-1/cancellation internals, the
// workspace machinery — is implementation detail and may change between
// releases; this surface will not. docs/API.md documents the full
// request/result contract, thread-safety guarantees, and the migration
// table from the legacy core:: call sites.
//
// Error contract: solve entry points do not throw for per-request problems.
// Invalid instances, internal invariant trips, anything that would abort a
// solve is captured as SolveStatus::kFailed with SolveResult::error set, so
// one bad request cannot take down a batch.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/io.h"
#include "core/kbcp.h"
#include "core/path_set.h"
#include "core/priority_routing.h"
#include "core/repair.h"
#include "core/solver.h"
#include "core/vertex_disjoint.h"
#include "core/workspace.h"

namespace krsp::engine {
class BatchEngine;
}

namespace krsp::api {

// Re-exported problem/solution vocabulary. These are the library's own
// types; the aliases pin them into the stable namespace.
using core::DegradationStep;
using core::Instance;
using core::PathSet;
using core::SolveStatus;
using core::SolveTelemetry;
using core::SolveWorkspace;

// Instance construction and persistence, so callers never need a core::
// include next to this header.
using core::has_k_disjoint_paths;
using core::make_random_instance;
using core::min_possible_delay;
using core::random_er_instance;
using core::RandomInstanceOptions;
using core::read_instance;
using core::read_instance_file;
using core::write_instance;
using core::write_instance_file;
using core::write_paths;

// Scenario extensions that ride on a solved PathSet or reuse the Instance
// vocabulary: urgency-based traffic assignment, vertex-disjoint and kBCP
// variants, and incremental repair after link failures. Re-exported so
// application code needs no core:: include next to this header.
using core::assign_by_urgency;
using core::KbcpInstance;
using core::KbcpStatus;
using core::repair_after_failures;
using core::RepairOutcome;
using core::solve_kbcp;
using core::solve_vertex_disjoint;
using core::TrafficClass;

/// Which of the paper's algorithms to run (see README "Solver modes").
enum class Mode {
  kScaled,        // Theorem 4: (1+eps1, 2+eps2), polynomial — the default
  kExactWeights,  // Lemma 3: (1, 2), pseudo-polynomial
  kPhase1Only,    // Lemma 5: delay/D + cost/C_OPT <= 2, delay may exceed D
};

/// Ĉ search strategy for the cancellation cost cap.
enum class GuessStrategy {
  kBinarySearch,  // certifies the 2·(C_OPT+1) bound
  kDoubling,      // <= 2× looser cap, fewer cancellation runs
};

/// One solve, self-contained: the instance plus every knob that affects
/// the answer. Requests are value types — copy or move them freely; a
/// batch may repeat the same instance under different parameters.
struct SolveRequest {
  Instance instance;
  Mode mode = Mode::kScaled;
  double eps1 = 0.25;  // delay slack (Theorem 4; kScaled only)
  double eps2 = 0.25;  // cost slack (Theorem 4; kScaled only)
  GuessStrategy guess = GuessStrategy::kBinarySearch;
  /// Wall-clock budget for this request; <= 0 = unbounded. The clock
  /// starts when the solve starts *executing* (queueing time in a batch is
  /// not charged). On expiry the solver returns the best result of the
  /// anytime degradation ladder; SolveResult::degradation() names the step.
  double deadline_seconds = 0.0;
  /// Caller correlation id, echoed verbatim in the result.
  std::string tag;
};

struct SolveResult {
  std::string tag;
  SolveStatus status = SolveStatus::kFailed;
  PathSet paths;
  graph::Cost cost = 0;
  graph::Delay delay = 0;
  /// Includes the bicameral kernel's pruning counters for the final
  /// cancellation run (telemetry.cancel.finder_stats): anchors scanned vs
  /// pruned, SCCs skipped outright, and the DP-table high-water mark
  /// peak_dp_bytes — see core::BicameralStats and docs/PERF.md.
  SolveTelemetry telemetry;
  /// Diagnostic for status == kFailed (invariant trip, invalid instance).
  std::string error;

  [[nodiscard]] bool has_paths() const {
    return status == SolveStatus::kOptimal || status == SolveStatus::kApprox ||
           status == SolveStatus::kApproxDelayOver;
  }
  /// Which anytime step served this result (kNone = full algorithm).
  [[nodiscard]] DegradationStep degradation() const {
    return telemetry.degradation;
  }
};

/// Stateless single-solve entry point. Thread-safe: concurrent solve()
/// calls are independent (hand each thread its own workspace, or none).
class Solver {
 public:
  [[nodiscard]] static SolveResult solve(const SolveRequest& request);

  /// Same, reusing per-thread scratch across calls (identical results,
  /// fewer allocations — see core/workspace.h).
  [[nodiscard]] static SolveResult solve(const SolveRequest& request,
                                         SolveWorkspace& workspace);
};

struct EngineOptions {
  /// Worker threads in the pool; 0 = std::thread::hardware_concurrency().
  int num_threads = 0;
  /// Keep one SolveWorkspace per worker alive across solves (the intended
  /// configuration). false = fresh workspace per request; exists as the
  /// E12 ablation knob and changes no results.
  bool reuse_workspaces = true;
};

/// Fixed-size worker pool executing batches of solve requests.
///
/// Determinism: each request is solved independently by exactly one worker
/// using the same serial algorithm regardless of pool size or scheduling,
/// so for requests without deadlines the batch results are bit-identical
/// across thread counts (engine_test asserts this at 1/2/8 threads).
/// Deadline-bounded requests are anytime by design — their degradation
/// step may legitimately differ run to run.
///
/// Thread-safety: solve_batch handles one batch at a time; serialize calls
/// to the same Engine. Distinct Engine instances are fully independent.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] int num_threads() const;

  /// Solves every request on the worker pool and returns results in
  /// request order. Blocks until the batch completes; per-request failures
  /// come back as status kFailed (never an exception).
  [[nodiscard]] std::vector<SolveResult> solve_batch(
      const std::vector<SolveRequest>& requests);

 private:
  std::unique_ptr<engine::BatchEngine> impl_;
};

/// Lowering of a request onto the internal solver configuration. Exposed
/// so tools migrating from core:: call sites can verify 1:1 parity.
[[nodiscard]] core::SolverOptions to_solver_options(
    const SolveRequest& request);

/// Short stable identifier for a status ("optimal", "approx", ...).
[[nodiscard]] const char* status_name(SolveStatus status);

}  // namespace krsp::api

#include "baselines/bnb.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "flow/decompose.h"
#include "flow/disjoint.h"
#include "lp/simplex.h"

namespace krsp::baselines {

namespace {

constexpr double kIntegral = 1e-6;

enum class Fix : std::uint8_t { kFree, kZero, kOne };

struct Node {
  std::vector<Fix> fix;  // per edge
};

// Solve the arc-flow relaxation under the node's fixings.
lp::LpSolution solve_relaxation(const core::Instance& inst,
                                const std::vector<Fix>& fix) {
  lp::LpModel model;
  for (graph::EdgeId e = 0; e < inst.graph.num_edges(); ++e) {
    const auto& edge = inst.graph.edge(e);
    const double ub = fix[e] == Fix::kZero ? 0.0 : 1.0;
    model.add_variable(static_cast<double>(edge.cost), 0.0, ub);
  }
  for (graph::VertexId v = 0; v < inst.graph.num_vertices(); ++v) {
    std::vector<lp::LinearTerm> terms;
    for (const graph::EdgeId e : inst.graph.out_edges(v))
      terms.push_back({e, 1.0});
    for (const graph::EdgeId e : inst.graph.in_edges(v))
      terms.push_back({e, -1.0});
    const double rhs =
        v == inst.s ? inst.k : (v == inst.t ? -inst.k : 0.0);
    model.add_constraint(std::move(terms), lp::Relation::kEq, rhs);
  }
  std::vector<lp::LinearTerm> delay_terms;
  for (graph::EdgeId e = 0; e < inst.graph.num_edges(); ++e)
    if (inst.graph.edge(e).delay != 0)
      delay_terms.push_back(
          {e, static_cast<double>(inst.graph.edge(e).delay)});
  model.add_constraint(std::move(delay_terms), lp::Relation::kLessEq,
                       static_cast<double>(inst.delay_bound));
  for (graph::EdgeId e = 0; e < inst.graph.num_edges(); ++e)
    if (fix[e] == Fix::kOne)
      model.add_constraint({{e, 1.0}}, lp::Relation::kGreaterEq, 1.0);
  return lp::SimplexSolver().solve(model);
}

}  // namespace

std::optional<BnbResult> branch_and_bound_krsp(const core::Instance& inst,
                                               const BnbOptions& options) {
  inst.validate();
  const int m = inst.graph.num_edges();

  // Incumbent: the min-delay k-flow if it meets the bound (else infeasible
  // right away — the LP would agree, this is just cheaper).
  std::optional<BnbResult> best;
  {
    const auto seed = flow::min_weight_disjoint_paths(
        inst.graph, inst.s, inst.t, inst.k, 1, inst.graph.total_cost() + 1);
    if (!seed || seed->total_delay > inst.delay_bound) return std::nullopt;
    BnbResult r;
    r.paths = core::PathSet(seed->paths);
    r.cost = seed->total_cost;
    r.delay = seed->total_delay;
    best = std::move(r);
  }

  std::vector<Node> stack;
  stack.push_back(Node{std::vector<Fix>(m, Fix::kFree)});
  std::int64_t nodes = 0;

  while (!stack.empty()) {
    const Node node = std::move(stack.back());
    stack.pop_back();
    ++nodes;
    KRSP_CHECK_MSG(nodes <= options.max_nodes,
                   "branch and bound node budget exceeded");

    const auto relaxation = solve_relaxation(inst, node.fix);
    if (relaxation.status != lp::LpStatus::kOptimal) continue;  // infeasible
    // Integer costs: the LP bound rounds up.
    const auto bound = static_cast<graph::Cost>(
        std::ceil(relaxation.objective - 1e-7));
    if (best && bound >= best->cost) continue;

    // Most fractional variable.
    graph::EdgeId branch_edge = graph::kInvalidEdge;
    double best_frac = kIntegral;
    for (graph::EdgeId e = 0; e < m; ++e) {
      const double frac = std::min(relaxation.x[e], 1.0 - relaxation.x[e]);
      if (frac > best_frac) {
        best_frac = frac;
        branch_edge = e;
      }
    }

    if (branch_edge == graph::kInvalidEdge) {
      // Integral: harvest the flow.
      std::vector<graph::EdgeId> edges;
      for (graph::EdgeId e = 0; e < m; ++e)
        if (relaxation.x[e] > 0.5) edges.push_back(e);
      auto decomposition =
          flow::decompose_unit_flow(inst.graph, edges, inst.s, inst.t,
                                    inst.k);
      core::PathSet paths(std::move(decomposition.paths));
      const graph::Cost cost = paths.total_cost(inst.graph);
      const graph::Delay delay = paths.total_delay(inst.graph);
      KRSP_CHECK(delay <= inst.delay_bound);
      if (!best || cost < best->cost) {
        BnbResult r;
        r.paths = std::move(paths);
        r.cost = cost;
        r.delay = delay;
        best = std::move(r);
      }
      continue;
    }

    // Branch. Explore the x = 1 child first (tends to find incumbents).
    Node zero = node;
    zero.fix[branch_edge] = Fix::kZero;
    Node one = std::move(node);
    one.fix[branch_edge] = Fix::kOne;
    stack.push_back(std::move(zero));
    stack.push_back(std::move(one));
  }

  if (best) best->nodes_explored = nodes;
  return best;
}

}  // namespace krsp::baselines

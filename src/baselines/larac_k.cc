#include "baselines/larac_k.h"

#include "core/phase1.h"
#include "util/timer.h"

namespace krsp::baselines {

core::Solution larac_k(const core::Instance& inst) {
  const util::WallTimer timer;
  const auto p1 = core::phase1_lagrangian(inst);
  core::Solution s;
  s.telemetry.phase1_mcmf_calls = p1.mcmf_calls;
  s.telemetry.lambda = p1.lambda;
  s.telemetry.cost_lower_bound = p1.cost_lower_bound;
  switch (p1.status) {
    case core::Phase1Status::kNoKDisjointPaths:
      s.status = core::SolveStatus::kNoKDisjointPaths;
      break;
    case core::Phase1Status::kInfeasible:
      s.status = core::SolveStatus::kInfeasible;
      break;
    case core::Phase1Status::kOptimal:
      s.status = core::SolveStatus::kOptimal;
      s.paths = p1.paths;
      break;
    case core::Phase1Status::kApprox:
      KRSP_CHECK(p1.feasible_alternative.has_value());
      s.status = core::SolveStatus::kApprox;
      s.paths = *p1.feasible_alternative;
      break;
  }
  if (s.has_paths()) {
    s.cost = s.paths.total_cost(inst.graph);
    s.delay = s.paths.total_delay(inst.graph);
  }
  s.telemetry.wall_seconds = timer.seconds();
  return s;
}

}  // namespace krsp::baselines

// Ablation: Algorithm 1 *without* the bicameral cost cap — greedy
// best-ratio cycle cancellation. Section 3.1 / Figure 1 of the paper show
// this degrades the cost guarantee from (1, 2) to (1+α, 1+1/α): on the
// Figure-1 gadget it returns cost C_OPT·(D+1)−1. bench_fig1 reproduces
// exactly that.
#pragma once

#include "core/solver.h"

namespace krsp::baselines {

core::Solution unsafe_cycle_cancel(const core::Instance& inst);

}  // namespace krsp::baselines

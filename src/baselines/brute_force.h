// Exact kRSP by exhaustive search — the test/benchmark oracle.
//
// Enumerates all simple s→t paths, then searches over k-subsets of pairwise
// edge-disjoint paths with branch-and-bound pruning on cost and delay.
// Exponential; intended for instances with at most a few thousand simple
// paths (n <~ 12 random graphs). KRSP_CHECKs an enumeration budget rather
// than silently degrading.
#pragma once

#include <optional>

#include "core/instance.h"
#include "core/path_set.h"

namespace krsp::baselines {

struct BruteForceResult {
  core::PathSet paths;
  graph::Cost cost = 0;
  graph::Delay delay = 0;
};

struct BruteForceOptions {
  /// Abort (KRSP_CHECK) if the instance has more simple s→t paths than this.
  std::int64_t max_paths = 2'000'000;
};

/// Minimum-cost k disjoint paths with total delay <= D, or nullopt if the
/// instance is infeasible. Exact.
std::optional<BruteForceResult> brute_force_krsp(
    const core::Instance& inst, const BruteForceOptions& options = {});

/// Exact minimum total delay over k disjoint path systems (ignoring cost),
/// by the same enumeration. nullopt if fewer than k disjoint paths exist.
std::optional<graph::Delay> brute_force_min_delay(
    const core::Instance& inst, const BruteForceOptions& options = {});

}  // namespace krsp::baselines

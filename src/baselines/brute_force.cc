#include "baselines/brute_force.h"

#include <algorithm>
#include <vector>

namespace krsp::baselines {

namespace {

struct EnumeratedPath {
  std::vector<graph::EdgeId> edges;
  std::vector<std::uint64_t> mask;  // edge bitmask
  graph::Cost cost = 0;
  graph::Delay delay = 0;
};

bool masks_overlap(const std::vector<std::uint64_t>& a,
                   const std::vector<std::uint64_t>& b) {
  for (std::size_t i = 0; i < a.size(); ++i)
    if ((a[i] & b[i]) != 0) return true;
  return false;
}

// All simple s→t paths by DFS.
std::vector<EnumeratedPath> enumerate_paths(const core::Instance& inst,
                                            std::int64_t max_paths) {
  const auto& g = inst.graph;
  const std::size_t words = (g.num_edges() + 63) / 64;
  std::vector<EnumeratedPath> out;
  std::vector<graph::EdgeId> stack;
  std::vector<bool> on_path(g.num_vertices(), false);

  const std::function<void(graph::VertexId)> dfs = [&](graph::VertexId v) {
    if (v == inst.t) {
      EnumeratedPath p;
      p.edges = stack;
      p.mask.assign(words, 0);
      for (const graph::EdgeId e : stack) {
        p.mask[e / 64] |= std::uint64_t{1} << (e % 64);
        p.cost += g.edge(e).cost;
        p.delay += g.edge(e).delay;
      }
      out.push_back(std::move(p));
      KRSP_CHECK_MSG(static_cast<std::int64_t>(out.size()) <= max_paths,
                     "brute force: path enumeration budget exceeded");
      return;
    }
    on_path[v] = true;
    for (const graph::EdgeId e : g.out_edges(v)) {
      const graph::VertexId w = g.edge(e).to;
      if (on_path[w]) continue;
      stack.push_back(e);
      dfs(w);
      stack.pop_back();
    }
    on_path[v] = false;
  };
  dfs(inst.s);
  return out;
}

struct SearchState {
  const core::Instance& inst;
  const std::vector<EnumeratedPath>& paths;
  graph::Cost min_path_cost = 0;
  graph::Delay min_path_delay = 0;

  graph::Cost best_cost = 0;
  bool have_best = false;
  std::vector<int> best_pick;

  std::vector<int> pick;
  std::vector<std::uint64_t> used;

  // Minimize cost subject to delay <= D (mode_min_delay = false), or
  // minimize delay outright (mode_min_delay = true, "cost" is delay).
  bool mode_min_delay = false;

  void search(std::size_t from, graph::Cost cost, graph::Delay delay) {
    const int chosen = static_cast<int>(pick.size());
    if (chosen == inst.k) {
      const graph::Cost objective = mode_min_delay ? delay : cost;
      if (!mode_min_delay && delay > inst.delay_bound) return;
      if (!have_best || objective < best_cost) {
        have_best = true;
        best_cost = objective;
        best_pick = pick;
      }
      return;
    }
    const int remaining = inst.k - chosen;
    for (std::size_t i = from; i < paths.size(); ++i) {
      const auto& p = paths[i];
      const graph::Cost c2 = cost + p.cost;
      const graph::Delay d2 = delay + p.delay;
      // Bounds: optimistic completion with the globally cheapest path.
      if (!mode_min_delay) {
        if (d2 + static_cast<graph::Delay>(remaining - 1) * min_path_delay >
            inst.delay_bound)
          continue;
        if (have_best &&
            c2 + static_cast<graph::Cost>(remaining - 1) * min_path_cost >=
                best_cost)
          continue;
      } else if (have_best &&
                 d2 + static_cast<graph::Delay>(remaining - 1) *
                          min_path_delay >=
                     best_cost) {
        continue;
      }
      if (masks_overlap(used, p.mask)) continue;
      for (std::size_t w = 0; w < used.size(); ++w) used[w] |= p.mask[w];
      pick.push_back(static_cast<int>(i));
      search(i + 1, c2, d2);
      pick.pop_back();
      for (std::size_t w = 0; w < used.size(); ++w) used[w] &= ~p.mask[w];
    }
  }
};

std::optional<std::vector<int>> run_search(const core::Instance& inst,
                                           const std::vector<EnumeratedPath>&
                                               paths,
                                           bool mode_min_delay) {
  if (static_cast<int>(paths.size()) < inst.k) return std::nullopt;
  SearchState st{inst, paths, 0, 0, 0, false, {}, {}, {}, false};
  st.mode_min_delay = mode_min_delay;
  st.min_path_cost = paths.front().cost;
  st.min_path_delay = paths.front().delay;
  for (const auto& p : paths) {
    st.min_path_cost = std::min(st.min_path_cost, p.cost);
    st.min_path_delay = std::min(st.min_path_delay, p.delay);
  }
  st.used.assign(paths.front().mask.size(), 0);
  st.search(0, 0, 0);
  if (!st.have_best) return std::nullopt;
  return st.best_pick;
}

}  // namespace

std::optional<BruteForceResult> brute_force_krsp(
    const core::Instance& inst, const BruteForceOptions& options) {
  inst.validate();
  const auto paths = enumerate_paths(inst, options.max_paths);
  if (paths.empty()) return std::nullopt;
  const auto pick = run_search(inst, paths, /*mode_min_delay=*/false);
  if (!pick) return std::nullopt;
  BruteForceResult r;
  std::vector<std::vector<graph::EdgeId>> chosen;
  for (const int i : *pick) chosen.push_back(paths[i].edges);
  r.paths = core::PathSet(std::move(chosen));
  r.cost = r.paths.total_cost(inst.graph);
  r.delay = r.paths.total_delay(inst.graph);
  return r;
}

std::optional<graph::Delay> brute_force_min_delay(
    const core::Instance& inst, const BruteForceOptions& options) {
  inst.validate();
  const auto paths = enumerate_paths(inst, options.max_paths);
  if (paths.empty()) return std::nullopt;
  const auto pick = run_search(inst, paths, /*mode_min_delay=*/true);
  if (!pick) return std::nullopt;
  graph::Delay total = 0;
  for (const int i : *pick) total += paths[i].delay;
  return total;
}

}  // namespace krsp::baselines

#include "baselines/min_max.h"

#include <algorithm>
#include <functional>

#include "flow/disjoint.h"

namespace krsp::baselines {

namespace {

MinMaxResult make_result(const graph::Digraph& g,
                         std::vector<std::vector<graph::EdgeId>> paths,
                         const paths::EdgeWeight& w) {
  MinMaxResult r;
  for (const auto& p : paths) {
    std::int64_t len = 0;
    for (const graph::EdgeId e : p) len += w(g.edge(e));
    r.longest = std::max(r.longest, len);
    r.total += len;
  }
  r.paths = core::PathSet(std::move(paths));
  return r;
}

}  // namespace

std::optional<MinMaxResult> min_max_via_min_sum(const graph::Digraph& g,
                                                graph::VertexId s,
                                                graph::VertexId t, int k,
                                                const paths::EdgeWeight& w) {
  auto f = flow::min_weight_disjoint_paths(g, s, t, k, w.cost_mult,
                                           w.delay_mult);
  if (!f) return std::nullopt;
  return make_result(g, std::move(f->paths), w);
}

std::optional<MinMaxResult> min_max_exact(const graph::Digraph& g,
                                          graph::VertexId s,
                                          graph::VertexId t, int k,
                                          const paths::EdgeWeight& w,
                                          std::int64_t max_paths) {
  // Enumerate simple paths, then search k-subsets minimizing the max
  // weight, pruning on the current best.
  struct P {
    std::vector<graph::EdgeId> edges;
    std::int64_t weight;
  };
  std::vector<P> all;
  std::vector<bool> on(g.num_vertices(), false);
  std::vector<graph::EdgeId> stack;
  const std::function<void(graph::VertexId, std::int64_t)> dfs =
      [&](graph::VertexId v, std::int64_t weight) {
        if (v == t) {
          all.push_back({stack, weight});
          KRSP_CHECK_MSG(static_cast<std::int64_t>(all.size()) <= max_paths,
                         "min_max_exact: enumeration budget exceeded");
          return;
        }
        on[v] = true;
        for (const graph::EdgeId e : g.out_edges(v))
          if (!on[g.edge(e).to]) {
            stack.push_back(e);
            dfs(g.edge(e).to, weight + w(g.edge(e)));
            stack.pop_back();
          }
        on[v] = false;
      };
  dfs(s, 0);
  if (static_cast<int>(all.size()) < k) return std::nullopt;
  // Sort by weight: once a path exceeds the incumbent max, all later ones do.
  std::sort(all.begin(), all.end(),
            [](const P& a, const P& b) { return a.weight < b.weight; });

  std::optional<std::vector<int>> best_pick;
  std::int64_t best_max = 0;
  std::vector<int> pick;
  std::vector<bool> used_edge(g.num_edges(), false);
  const std::function<void(std::size_t)> search = [&](std::size_t from) {
    if (static_cast<int>(pick.size()) == k) {
      const std::int64_t current_max = all[pick.back()].weight;  // sorted
      if (!best_pick || current_max < best_max) {
        best_pick = pick;
        best_max = current_max;
      }
      return;
    }
    for (std::size_t i = from; i < all.size(); ++i) {
      if (best_pick && all[i].weight >= best_max) return;  // sorted prune
      bool clash = false;
      for (const graph::EdgeId e : all[i].edges)
        if (used_edge[e]) clash = true;
      if (clash) continue;
      for (const graph::EdgeId e : all[i].edges) used_edge[e] = true;
      pick.push_back(static_cast<int>(i));
      search(i + 1);
      pick.pop_back();
      for (const graph::EdgeId e : all[i].edges) used_edge[e] = false;
    }
  };
  search(0);
  if (!best_pick) return std::nullopt;
  std::vector<std::vector<graph::EdgeId>> chosen;
  for (const int i : *best_pick) chosen.push_back(all[i].edges);
  return make_result(g, std::move(chosen), w);
}

}  // namespace krsp::baselines

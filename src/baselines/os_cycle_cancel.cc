#include "baselines/os_cycle_cancel.h"

#include <optional>

#include "core/residual.h"
#include "flow/decompose.h"
#include "flow/disjoint.h"
#include "paths/bellman_ford.h"
#include "util/timer.h"

namespace krsp::baselines {

namespace {

// Search graph: residual topology with reversed-edge costs zeroed (costs
// non-negative), delays kept signed. Edge ids align with the residual's.
graph::Digraph make_search_graph(const core::ResidualGraph& residual) {
  const auto& rg = residual.digraph();
  graph::Digraph sg(rg.num_vertices());
  for (graph::EdgeId e = 0; e < rg.num_edges(); ++e) {
    const auto& edge = rg.edge(e);
    sg.add_edge(edge.from, edge.to, residual.is_reversed(e) ? 0 : edge.cost,
                edge.delay);
  }
  return sg;
}

// Approximately minimum cost/(-delay) negative-delay cycle via bisection on
// ρ: a negative cycle under weight cost + ρ·delay certifies ratio < ρ.
std::optional<std::vector<graph::EdgeId>> min_ratio_negative_delay_cycle(
    const graph::Digraph& sg, int bisection_steps) {
  graph::Cost cost_sum = 1;
  for (const auto& e : sg.edges()) cost_sum += e.cost;

  const auto test = [&](std::int64_t q, std::int64_t p)
      -> std::optional<std::vector<graph::EdgeId>> {
    // Weight q·cost + p·delay < 0 on some cycle?
    const auto r = paths::bellman_ford_all_sources(
        sg, paths::EdgeWeight::combined(q, p));
    return r.negative_cycle;
  };

  // ρ_hi = cost_sum certainly admits any negative-delay cycle.
  auto best = test(1, cost_sum);
  if (!best) return std::nullopt;
  double lo = 0.0, hi = static_cast<double>(cost_sum);
  for (int i = 0; i < bisection_steps && hi - lo > 1e-9 * (hi + 1); ++i) {
    const double mid = (lo + hi) / 2.0;
    // Rational-ize mid with a fixed denominator to keep weights integral.
    const std::int64_t den = 1 << 20;
    const auto num = static_cast<std::int64_t>(mid * den);
    if (num <= 0) break;
    if (auto cycle = test(den, num)) {
      best = std::move(cycle);
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return best;
}

}  // namespace

core::Solution os_cycle_cancel(const core::Instance& inst,
                               const OsOptions& options) {
  inst.validate();
  const util::WallTimer timer;
  core::Solution s;

  auto start = flow::min_weight_disjoint_paths(
      inst.graph, inst.s, inst.t, inst.k, inst.graph.total_delay() + 1, 1);
  if (!start) {
    s.status = core::SolveStatus::kNoKDisjointPaths;
    s.telemetry.wall_seconds = timer.seconds();
    return s;
  }
  core::PathSet current(std::move(start->paths));
  graph::Delay delay = current.total_delay(inst.graph);

  std::int64_t iterations = 0;
  while (delay > inst.delay_bound) {
    if (iterations++ >= options.max_iterations) {
      s.status = core::SolveStatus::kFailed;
      s.telemetry.wall_seconds = timer.seconds();
      return s;
    }
    const core::ResidualGraph residual(inst.graph, current.all_edges());
    const auto sg = make_search_graph(residual);
    const auto cycle =
        min_ratio_negative_delay_cycle(sg, options.ratio_bisection_steps);
    if (!cycle) {
      s.status = core::SolveStatus::kInfeasible;
      s.telemetry.wall_seconds = timer.seconds();
      return s;
    }
    const auto new_edges = residual.apply_cycle(*cycle);
    auto decomposition = flow::decompose_unit_flow(inst.graph, new_edges,
                                                   inst.s, inst.t, inst.k);
    current = core::PathSet(std::move(decomposition.paths));
    delay = current.total_delay(inst.graph);
  }

  s.status = core::SolveStatus::kApprox;
  s.paths = std::move(current);
  s.cost = s.paths.total_cost(inst.graph);
  s.delay = s.paths.total_delay(inst.graph);
  s.telemetry.cancel.iterations = iterations;
  s.telemetry.wall_seconds = timer.seconds();
  return s;
}

}  // namespace krsp::baselines

#include "baselines/flow_only.h"

#include "flow/disjoint.h"
#include "util/timer.h"

namespace krsp::baselines {

namespace {

core::Solution flow_baseline(const core::Instance& inst, std::int64_t w_cost,
                             std::int64_t w_delay) {
  inst.validate();
  const util::WallTimer timer;
  core::Solution s;
  auto f = flow::min_weight_disjoint_paths(inst.graph, inst.s, inst.t, inst.k,
                                           w_cost, w_delay);
  if (!f) {
    s.status = core::SolveStatus::kNoKDisjointPaths;
  } else {
    s.paths = core::PathSet(std::move(f->paths));
    s.cost = s.paths.total_cost(inst.graph);
    s.delay = s.paths.total_delay(inst.graph);
    s.status = s.delay <= inst.delay_bound
                   ? core::SolveStatus::kApprox
                   : core::SolveStatus::kApproxDelayOver;
  }
  s.telemetry.wall_seconds = timer.seconds();
  return s;
}

}  // namespace

core::Solution min_cost_flow_baseline(const core::Instance& inst) {
  // Lexicographic: cost first, delay as tie-break.
  return flow_baseline(inst, inst.graph.total_delay() + 1, 1);
}

core::Solution min_delay_flow_baseline(const core::Instance& inst) {
  return flow_baseline(inst, 1, inst.graph.total_cost() + 1);
}

}  // namespace krsp::baselines

// The Min-Max disjoint-paths problem (§1.2 of the paper, [16, 20, 21]):
// k edge-disjoint s→t paths minimizing the length of the *longest* path
// under a single weight. NP-complete; [16] shows the min-sum solution is a
// factor-2 approximation (and that 2 is best possible in digraphs) — this
// module implements exactly that classical reduction, plus an exact
// enumeration oracle for tests.
#pragma once

#include <optional>

#include "core/instance.h"
#include "core/path_set.h"
#include "paths/dijkstra.h"

namespace krsp::baselines {

struct MinMaxResult {
  core::PathSet paths;
  std::int64_t longest = 0;  // max single-path weight
  std::int64_t total = 0;    // sum of path weights
};

/// 2-approximation via the min-sum disjoint paths ([20]'s polynomial
/// problem): longest path <= 2 * OPT_minmax. nullopt if fewer than k
/// disjoint paths exist.
std::optional<MinMaxResult> min_max_via_min_sum(const graph::Digraph& g,
                                                graph::VertexId s,
                                                graph::VertexId t, int k,
                                                const paths::EdgeWeight& w);

/// Exact min-max by exhaustive search over disjoint path tuples (tiny
/// instances; test oracle). Enumeration budget KRSP_CHECKed.
std::optional<MinMaxResult> min_max_exact(const graph::Digraph& g,
                                          graph::VertexId s,
                                          graph::VertexId t, int k,
                                          const paths::EdgeWeight& w,
                                          std::int64_t max_paths = 200000);

}  // namespace krsp::baselines

// LARAC-k: the Lagrangian-relaxation heuristic generalized to k disjoint
// paths — returns the *feasible* flow F_hi at the breakpoint multiplier λ*.
// Always meets the delay bound when the instance is feasible, with no cost
// guarantee (the gap to C_OPT is what bench_compare measures against the
// bicameral algorithm).
#pragma once

#include "core/solver.h"

namespace krsp::baselines {

core::Solution larac_k(const core::Instance& inst);

}  // namespace krsp::baselines

// Orda–Sprintson-style cycle cancellation ([18] in the paper): the prior
// state of the art the bicameral algorithm is compared against.
//
// Differences from the paper's algorithm, faithful to [18]'s framework:
//  * the residual graph zeroes the cost of reversed edges (so search costs
//    are non-negative) instead of negating them;
//  * each iteration cancels the (approximately) minimum cost-per-delay-
//    reduction cycle, found by Lawler binary search over ρ with
//    Bellman–Ford negative-cycle tests on weight cost' + ρ·delay;
//  * no cost cap — the mechanism behind its weaker (1 + 1/r, 1 + r)-flavor
//    guarantee, and the contrast bench_fig1/bench_compare quantify.
#pragma once

#include "core/solver.h"

namespace krsp::baselines {

struct OsOptions {
  std::int64_t max_iterations = 10000;
  int ratio_bisection_steps = 80;
};

core::Solution os_cycle_cancel(const core::Instance& inst,
                               const OsOptions& options = {});

}  // namespace krsp::baselines

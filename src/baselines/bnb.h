// Exact kRSP by LP-based branch and bound.
//
// Relaxation: the arc-flow LP (min Σc·x, flow conservation of value k,
// 0 <= x <= 1, Σd·x <= D) solved with the library's simplex; branching on a
// fractional arc (x_e = 0 / x_e = 1). The flow polytope plus one side
// constraint has almost-integral vertices, so trees stay small and this
// reaches instances (n ~ 14-18) the path-enumeration brute force cannot.
// Second exact oracle — property tests cross-check the two.
#pragma once

#include <optional>

#include "core/instance.h"
#include "core/path_set.h"

namespace krsp::baselines {

struct BnbOptions {
  /// Hard node budget; KRSP_CHECKed (exactness must not silently degrade).
  std::int64_t max_nodes = 200000;
};

struct BnbResult {
  core::PathSet paths;
  graph::Cost cost = 0;
  graph::Delay delay = 0;
  std::int64_t nodes_explored = 0;
};

/// Exact minimum-cost k disjoint paths with total delay <= D, or nullopt
/// if infeasible.
std::optional<BnbResult> branch_and_bound_krsp(const core::Instance& inst,
                                               const BnbOptions& options = {});

}  // namespace krsp::baselines

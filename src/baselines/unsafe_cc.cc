#include "baselines/unsafe_cc.h"

#include "core/cycle_cancel.h"
#include "core/phase1.h"
#include "util/timer.h"

namespace krsp::baselines {

core::Solution unsafe_cycle_cancel(const core::Instance& inst) {
  const util::WallTimer timer;
  const auto p1 = core::phase1_lagrangian(inst);
  core::Solution s;
  s.telemetry.phase1_mcmf_calls = p1.mcmf_calls;
  s.telemetry.cost_lower_bound = p1.cost_lower_bound;
  switch (p1.status) {
    case core::Phase1Status::kNoKDisjointPaths:
      s.status = core::SolveStatus::kNoKDisjointPaths;
      s.telemetry.wall_seconds = timer.seconds();
      return s;
    case core::Phase1Status::kInfeasible:
      s.status = core::SolveStatus::kInfeasible;
      s.telemetry.wall_seconds = timer.seconds();
      return s;
    case core::Phase1Status::kOptimal:
      s.status = core::SolveStatus::kOptimal;
      s.paths = p1.paths;
      s.cost = p1.cost;
      s.delay = p1.delay;
      s.telemetry.wall_seconds = timer.seconds();
      return s;
    case core::Phase1Status::kApprox:
      break;
  }
  if (p1.delay <= inst.delay_bound) {
    s.status = core::SolveStatus::kApprox;
    s.paths = p1.paths;
    s.cost = p1.cost;
    s.delay = p1.delay;
    s.telemetry.wall_seconds = timer.seconds();
    return s;
  }

  core::CycleCancelOptions options;
  options.unsafe_no_cap = true;
  const auto r = core::cancel_cycles(inst, p1.paths, /*cost_guess=*/0,
                                     options);
  if (r.status != core::CancelStatus::kSuccess) {
    s.status = r.status == core::CancelStatus::kNoBicameralCycle
                   ? core::SolveStatus::kInfeasible
                   : core::SolveStatus::kFailed;
  } else {
    s.status = core::SolveStatus::kApprox;
    s.paths = r.paths;
    s.cost = r.cost;
    s.delay = r.delay;
  }
  s.telemetry.cancel = r.telemetry;
  s.telemetry.wall_seconds = timer.seconds();
  return s;
}

}  // namespace krsp::baselines

// Single-criterion flow baselines: the two extremes the paper's algorithm
// interpolates between.
//
//   min_cost_flow_baseline  — Suurballe/min-cost k disjoint paths, delay
//                             ignored (optimal cost, unbounded delay).
//   min_delay_flow_baseline — min-delay k disjoint paths, cost ignored
//                             (settles feasibility exactly, cost unbounded).
#pragma once

#include "core/solver.h"

namespace krsp::baselines {

core::Solution min_cost_flow_baseline(const core::Instance& inst);
core::Solution min_delay_flow_baseline(const core::Instance& inst);

}  // namespace krsp::baselines

// Yen's algorithm for the K loopless shortest s→t paths under a linear edge
// weight. Used by examples (route diversity reporting) and as a baseline
// ingredient; not on the solver's critical path.
#pragma once

#include <vector>

#include "graph/digraph.h"
#include "paths/dijkstra.h"

namespace krsp::paths {

struct WeightedPath {
  std::vector<graph::EdgeId> edges;
  std::int64_t weight = 0;
};

/// The up-to-K cheapest loopless s→t paths in increasing weight order.
/// Returns fewer than K entries if the graph has fewer distinct paths.
std::vector<WeightedPath> yen_k_shortest(const graph::Digraph& g,
                                         graph::VertexId s, graph::VertexId t,
                                         int K, const EdgeWeight& w);

}  // namespace krsp::paths

#include "paths/yen.h"

#include <algorithm>
#include <optional>
#include <queue>
#include <set>

namespace krsp::paths {

namespace {

using graph::Digraph;
using graph::EdgeId;
using graph::VertexId;

// Dijkstra on g with some edges and vertices masked out.
std::optional<std::vector<EdgeId>> masked_shortest_path(
    const Digraph& g, VertexId s, VertexId t, const EdgeWeight& w,
    const std::vector<bool>& edge_banned, const std::vector<bool>& vtx_banned) {
  const int n = g.num_vertices();
  std::vector<std::int64_t> dist(n, kUnreachable);
  std::vector<EdgeId> parent(n, graph::kInvalidEdge);
  using Item = std::pair<std::int64_t, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  if (vtx_banned[s]) return std::nullopt;
  dist[s] = 0;
  heap.emplace(0, s);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d != dist[v]) continue;
    for (const EdgeId e : g.out_edges(v)) {
      if (edge_banned[e]) continue;
      const auto& edge = g.edge(e);
      if (vtx_banned[edge.to]) continue;
      const std::int64_t we = w(edge);
      KRSP_CHECK_MSG(we >= 0, "yen: negative weight");
      if (d + we < dist[edge.to]) {
        dist[edge.to] = d + we;
        parent[edge.to] = e;
        heap.emplace(dist[edge.to], edge.to);
      }
    }
  }
  if (dist[t] == kUnreachable) return std::nullopt;
  std::vector<EdgeId> path;
  for (VertexId at = t; at != s;) {
    path.push_back(parent[at]);
    at = g.edge(parent[at]).from;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

std::vector<WeightedPath> yen_k_shortest(const Digraph& g, VertexId s,
                                         VertexId t, int K,
                                         const EdgeWeight& w) {
  KRSP_CHECK(g.is_vertex(s) && g.is_vertex(t) && K >= 0);
  std::vector<WeightedPath> result;
  if (K == 0) return result;

  std::vector<bool> no_edges(g.num_edges(), false);
  std::vector<bool> no_vtxs(g.num_vertices(), false);
  auto first = masked_shortest_path(g, s, t, w, no_edges, no_vtxs);
  if (!first) return result;

  const auto weight_of = [&](const std::vector<EdgeId>& p) {
    std::int64_t sum = 0;
    for (const EdgeId e : p) sum += w(g.edge(e));
    return sum;
  };
  result.push_back({*first, weight_of(*first)});

  // Candidate pool ordered by weight, deduplicated by edge sequence.
  auto cmp = [](const WeightedPath& a, const WeightedPath& b) {
    return a.weight != b.weight ? a.weight < b.weight : a.edges < b.edges;
  };
  std::set<WeightedPath, decltype(cmp)> candidates(cmp);

  while (static_cast<int>(result.size()) < K) {
    const auto& prev = result.back().edges;
    // Spur from every prefix of the previous path.
    std::vector<bool> vtx_banned(g.num_vertices(), false);
    VertexId spur = s;
    for (std::size_t i = 0; i <= prev.size() - 1; ++i) {
      std::vector<EdgeId> root(prev.begin(),
                               prev.begin() + static_cast<std::ptrdiff_t>(i));
      std::vector<bool> edge_banned(g.num_edges(), false);
      // Ban edges that would recreate an already-output path with this root.
      for (const auto& wp : result) {
        if (wp.edges.size() > i &&
            std::equal(root.begin(), root.end(), wp.edges.begin()))
          edge_banned[wp.edges[i]] = true;
      }
      auto spur_path =
          masked_shortest_path(g, spur, t, w, edge_banned, vtx_banned);
      if (spur_path) {
        WeightedPath cand;
        cand.edges = root;
        cand.edges.insert(cand.edges.end(), spur_path->begin(),
                          spur_path->end());
        cand.weight = weight_of(cand.edges);
        bool duplicate = false;
        for (const auto& wp : result)
          if (wp.edges == cand.edges) duplicate = true;
        if (!duplicate) candidates.insert(std::move(cand));
      }
      // Extend the root: ban the spur vertex for deeper spurs (looplessness).
      vtx_banned[spur] = true;
      spur = g.edge(prev[i]).to;
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

}  // namespace krsp::paths

// Exact bicriteria (cost, delay) Pareto frontier for single-pair paths.
//
// Label-correcting search keeping, per vertex, the set of non-dominated
// (cost, delay) labels. Worst-case exponential (the frontier itself can
// be), so the search carries an explicit label budget and fails loudly
// rather than degrade. Used as an exact oracle in tests (it subsumes RSP:
// the answer is the cheapest frontier point with delay <= D) and by
// examples that display the whole trade-off curve.
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.h"

namespace krsp::paths {

struct ParetoPath {
  std::vector<graph::EdgeId> edges;
  graph::Cost cost = 0;
  graph::Delay delay = 0;
};

struct ParetoOptions {
  /// Hard bound on the total number of labels created (KRSP_CHECKed).
  std::int64_t max_labels = 2'000'000;
};

/// All Pareto-optimal (cost, delay) s→t paths, sorted by increasing cost
/// (hence decreasing delay). Empty if t is unreachable. Requires
/// non-negative weights.
std::vector<ParetoPath> pareto_frontier(const graph::Digraph& g,
                                        graph::VertexId s, graph::VertexId t,
                                        const ParetoOptions& options = {});

/// Exact RSP via the frontier: cheapest path with delay <= D.
std::optional<ParetoPath> rsp_via_frontier(const graph::Digraph& g,
                                           graph::VertexId s,
                                           graph::VertexId t, graph::Delay D,
                                           const ParetoOptions& options = {});

}  // namespace krsp::paths

#include "paths/rsp.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "obs/trace.h"
#include "paths/dijkstra.h"

namespace krsp::paths {

namespace {

using graph::Digraph;
using graph::EdgeId;
using graph::VertexId;

constexpr std::int64_t kInf = kUnreachable;

// Generic budgeted DP: minimize Σ objective(e) over s→t paths subject to
// Σ budget(e) <= limit, both measures non-negative integers. Layered over
// the budget dimension; zero-budget edges are handled by an intra-layer
// Dijkstra (objectives are non-negative). Memory O(n · limit).
struct BudgetedDp {
  struct Parent {
    EdgeId edge = graph::kInvalidEdge;  // kInvalidEdge => carried / seed
    std::int64_t prev_layer = -1;
  };

  // dp[layer][v] = min objective with budget <= layer.
  std::vector<std::vector<std::int64_t>> dp;
  std::vector<std::vector<Parent>> parent;

  static BudgetedDp run(const Digraph& g, VertexId s, std::int64_t limit,
                        const EdgeWeight& budget, const EdgeWeight& objective) {
    const int n = g.num_vertices();
    BudgetedDp out;
    out.dp.assign(limit + 1, std::vector<std::int64_t>(n, kInf));
    out.parent.assign(limit + 1, std::vector<Parent>(n));

    for (std::int64_t layer = 0; layer <= limit; ++layer) {
      auto& dist = out.dp[layer];
      auto& par = out.parent[layer];
      // Seeds: carried from previous layer, plus cross-layer relaxations.
      if (layer == 0) {
        dist[s] = 0;
      } else {
        for (VertexId v = 0; v < n; ++v) {
          dist[v] = out.dp[layer - 1][v];
          par[v] = Parent{graph::kInvalidEdge, layer - 1};
        }
        if (dist[s] > 0) {
          dist[s] = 0;
          par[s] = Parent{graph::kInvalidEdge, -1};
        }
      }
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        const auto& edge = g.edge(e);
        const std::int64_t b = budget(edge);
        KRSP_CHECK_MSG(b >= 0, "budgeted dp: negative budget on edge " << e);
        if (b == 0 || b > layer) continue;
        const std::int64_t base = out.dp[layer - b][edge.from];
        if (base == kInf) continue;
        const std::int64_t cand = base + objective(edge);
        if (cand < dist[edge.to]) {
          dist[edge.to] = cand;
          par[edge.to] = Parent{e, layer - b};
        }
      }
      // Intra-layer Dijkstra over zero-budget edges.
      using Item = std::pair<std::int64_t, VertexId>;
      std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
      for (VertexId v = 0; v < n; ++v)
        if (dist[v] != kInf) heap.emplace(dist[v], v);
      while (!heap.empty()) {
        const auto [d, v] = heap.top();
        heap.pop();
        if (d != dist[v]) continue;
        for (const EdgeId e : g.out_edges(v)) {
          const auto& edge = g.edge(e);
          if (budget(edge) != 0) continue;
          const std::int64_t o = objective(edge);
          KRSP_CHECK_MSG(o >= 0, "budgeted dp: negative objective, edge " << e);
          if (d + o < dist[edge.to]) {
            dist[edge.to] = d + o;
            out.parent[layer][edge.to] = Parent{e, layer};
            heap.emplace(d + o, edge.to);
          }
        }
      }
    }
    return out;
  }

  [[nodiscard]] std::vector<EdgeId> reconstruct(const Digraph& g, VertexId s,
                                                VertexId t,
                                                std::int64_t layer) const {
    std::vector<EdgeId> path;
    VertexId v = t;
    std::int64_t at = layer;
    while (!(v == s && dp[at][v] == 0 &&
             parent[at][v].edge == graph::kInvalidEdge &&
             parent[at][v].prev_layer == -1)) {
      const Parent& p = parent[at][v];
      if (p.edge != graph::kInvalidEdge) {
        path.push_back(p.edge);
        v = g.edge(p.edge).from;
        at = p.prev_layer;
      } else {
        KRSP_CHECK_MSG(p.prev_layer >= 0, "dp reconstruction walked off seed");
        at = p.prev_layer;
      }
    }
    std::reverse(path.begin(), path.end());
    return path;
  }
};

std::optional<RspResult> make_result(const Digraph& g,
                                     std::vector<EdgeId> path) {
  RspResult r;
  r.cost = graph::path_cost(g, path);
  r.delay = graph::path_delay(g, path);
  r.path = std::move(path);
  return r;
}

}  // namespace

std::optional<RspResult> rsp_exact(const Digraph& g, VertexId s, VertexId t,
                                   graph::Delay D) {
  KRSP_OBS_SPAN("rsp_oracle");
  KRSP_CHECK(g.is_vertex(s) && g.is_vertex(t) && D >= 0);
  const auto dp =
      BudgetedDp::run(g, s, D, EdgeWeight::delay(), EdgeWeight::cost());
  if (dp.dp[D][t] == kInf) return std::nullopt;
  return make_result(g, dp.reconstruct(g, s, t, D));
}

std::optional<RspResult> rsp_fptas(const Digraph& g, VertexId s, VertexId t,
                                   graph::Delay D, double eps) {
  KRSP_OBS_SPAN("rsp_oracle");
  KRSP_CHECK(g.is_vertex(s) && g.is_vertex(t) && D >= 0);
  KRSP_CHECK_MSG(eps > 0, "rsp_fptas requires eps > 0");
  const int n = g.num_vertices();

  // Feasibility + initial bounds. The min-delay path is a feasible witness;
  // the unconstrained min-cost path cost is a lower bound on OPT.
  const auto by_delay = dijkstra(g, s, EdgeWeight::delay());
  if (!by_delay.reached(t) || by_delay.dist[t] > D) return std::nullopt;
  const auto witness = by_delay.path_to(g, t);
  const graph::Cost ub = graph::path_cost(g, witness);
  const auto by_cost = dijkstra(g, s, EdgeWeight::cost());
  graph::Cost lb = by_cost.dist[t];

  // Zero-cost special case: search the zero-cost subgraph exactly.
  if (lb == 0) {
    Digraph zero(g.num_vertices());
    for (const auto& e : g.edges())
      if (e.cost == 0) zero.add_edge(e.from, e.to, e.cost, e.delay);
    const auto zd = dijkstra(zero, s, EdgeWeight::delay());
    if (zd.reached(t) && zd.dist[t] <= D) {
      auto path0 = zd.path_to(zero, t);
      // Map zero-subgraph edge ids back: rebuild by walking the path.
      // (Edges were inserted in g order; re-find the matching g edge.)
      std::vector<EdgeId> mapped;
      VertexId at = s;
      for (const EdgeId ze : path0) {
        const auto& zedge = zero.edge(ze);
        EdgeId found = graph::kInvalidEdge;
        for (const EdgeId ge : g.out_edges(at))
          if (g.edge(ge).to == zedge.to && g.edge(ge).cost == 0 &&
              g.edge(ge).delay == zedge.delay) {
            found = ge;
            break;
          }
        KRSP_CHECK(found != graph::kInvalidEdge);
        mapped.push_back(found);
        at = zedge.to;
      }
      return make_result(g, std::move(mapped));
    }
    lb = 1;  // OPT >= 1 since no zero-cost feasible path exists
  }

  // Internal epsilon so guess granularity + scaling loss stay within eps.
  const double e3 = eps / 3.0;
  const auto scaled_test =
      [&](graph::Cost guess) -> std::optional<std::vector<EdgeId>> {
    const auto theta = std::max<graph::Cost>(
        1, static_cast<graph::Cost>(
               std::floor(e3 * static_cast<double>(guess) / (n + 1))));
    const std::int64_t limit = guess / theta;
    // Budget = scaled cost, objective = delay.
    Digraph scaled(g.num_vertices());
    for (const auto& e : g.edges())
      scaled.add_edge(e.from, e.to, e.cost / theta, e.delay);
    const auto dp = BudgetedDp::run(scaled, s, limit, EdgeWeight::cost(),
                                    EdgeWeight::delay());
    if (dp.dp[limit][t] == kInf || dp.dp[limit][t] > D) return std::nullopt;
    // Find the smallest layer achieving delay <= D for the cheapest result.
    std::int64_t layer = limit;
    while (layer > 0 && dp.dp[layer - 1][t] != kInf &&
           dp.dp[layer - 1][t] <= D)
      --layer;
    return dp.reconstruct(scaled, s, t, layer);  // ids match g's insertions
  };

  graph::Cost guess = lb;
  std::optional<std::vector<EdgeId>> best;
  while (true) {
    if (auto path = scaled_test(std::min(guess, ub))) {
      best = std::move(path);
      break;
    }
    if (guess >= ub) break;
    const auto next = static_cast<graph::Cost>(
        std::ceil(static_cast<double>(guess) * (1.0 + e3)));
    guess = std::max(guess + 1, next);
  }
  if (!best) return make_result(g, witness);  // fall back to the feasible UB
  return make_result(g, std::move(*best));
}

}  // namespace krsp::paths

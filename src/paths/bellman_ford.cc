#include "paths/bellman_ford.h"

#include <algorithm>

namespace krsp::paths {

namespace {

BellmanFordResult run_bellman_ford(const graph::Digraph& g,
                                   std::vector<std::int64_t> dist,
                                   const EdgeWeight& w) {
  const int n = g.num_vertices();
  BellmanFordResult result;
  result.tree.dist = std::move(dist);
  result.tree.parent.assign(n, graph::kInvalidEdge);
  auto& dd = result.tree.dist;
  auto& parent = result.tree.parent;

  graph::VertexId last_relaxed = graph::kInvalidVertex;
  for (int round = 0; round < n; ++round) {
    last_relaxed = graph::kInvalidVertex;
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto& edge = g.edge(e);
      if (dd[edge.from] == kUnreachable) continue;
      const std::int64_t nd = dd[edge.from] + w(edge);
      if (nd < dd[edge.to]) {
        dd[edge.to] = nd;
        parent[edge.to] = e;
        last_relaxed = edge.to;
      }
    }
    if (last_relaxed == graph::kInvalidVertex) break;  // converged
  }

  if (last_relaxed != graph::kInvalidVertex) {
    // A relaxation in round n certifies a negative cycle on the predecessor
    // chain of `last_relaxed`. Walk back n steps to be inside the cycle,
    // then collect it.
    graph::VertexId v = last_relaxed;
    for (int i = 0; i < n; ++i) v = g.edge(parent[v]).from;
    std::vector<graph::EdgeId> cycle;
    graph::VertexId at = v;
    do {
      const graph::EdgeId e = parent[at];
      KRSP_CHECK(e != graph::kInvalidEdge);
      cycle.push_back(e);
      at = g.edge(e).from;
    } while (at != v);
    std::reverse(cycle.begin(), cycle.end());
    result.negative_cycle = std::move(cycle);
  }
  return result;
}

}  // namespace

BellmanFordResult bellman_ford(const graph::Digraph& g,
                               graph::VertexId source, const EdgeWeight& w) {
  KRSP_CHECK(g.is_vertex(source));
  std::vector<std::int64_t> dist(g.num_vertices(), kUnreachable);
  dist[source] = 0;
  return run_bellman_ford(g, std::move(dist), w);
}

BellmanFordResult bellman_ford_all_sources(const graph::Digraph& g,
                                           const EdgeWeight& w) {
  std::vector<std::int64_t> dist(g.num_vertices(), 0);
  return run_bellman_ford(g, std::move(dist), w);
}

}  // namespace krsp::paths

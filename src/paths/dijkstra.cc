#include "paths/dijkstra.h"

#include <algorithm>
#include <queue>

namespace krsp::paths {

std::vector<graph::EdgeId> ShortestPathTree::path_to(
    const graph::Digraph& g, graph::VertexId v) const {
  KRSP_CHECK_MSG(reached(v), "path_to on unreached vertex " << v);
  std::vector<graph::EdgeId> path;
  while (parent[v] != graph::kInvalidEdge) {
    const graph::EdgeId e = parent[v];
    path.push_back(e);
    v = g.edge(e).from;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

namespace {

ShortestPathTree run_dijkstra(const graph::Digraph& g, graph::VertexId source,
                              const EdgeWeight& w,
                              const std::vector<std::int64_t>* potential) {
  KRSP_CHECK(g.is_vertex(source));
  const int n = g.num_vertices();
  ShortestPathTree tree;
  tree.dist.assign(n, kUnreachable);
  tree.parent.assign(n, graph::kInvalidEdge);
  tree.dist[source] = 0;

  using Item = std::pair<std::int64_t, graph::VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0, source);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d != tree.dist[v]) continue;  // stale entry
    for (const graph::EdgeId e : g.out_edges(v)) {
      const auto& edge = g.edge(e);
      std::int64_t we = w(edge);
      if (potential != nullptr)
        we += (*potential)[edge.from] - (*potential)[edge.to];
      KRSP_CHECK_MSG(we >= 0, "dijkstra: negative (reduced) weight "
                                  << we << " on edge " << e);
      const std::int64_t nd = d + we;
      if (nd < tree.dist[edge.to]) {
        tree.dist[edge.to] = nd;
        tree.parent[edge.to] = e;
        heap.emplace(nd, edge.to);
      }
    }
  }
  return tree;
}

}  // namespace

ShortestPathTree dijkstra(const graph::Digraph& g, graph::VertexId source,
                          const EdgeWeight& w) {
  return run_dijkstra(g, source, w, nullptr);
}

ShortestPathTree dijkstra_with_potentials(
    const graph::Digraph& g, graph::VertexId source, const EdgeWeight& w,
    const std::vector<std::int64_t>& potential) {
  KRSP_CHECK(static_cast<int>(potential.size()) == g.num_vertices());
  return run_dijkstra(g, source, w, &potential);
}

}  // namespace krsp::paths

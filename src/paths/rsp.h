// Single-pair Restricted Shortest Path (RSP): minimum-cost s→t path with
// total delay at most D. This is the k = 1 special case of kRSP and a
// classical QoS-routing primitive ([7, 17] in the paper). Used as a test
// oracle, a baseline, and inside examples.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.h"

namespace krsp::paths {

struct RspResult {
  std::vector<graph::EdgeId> path;
  graph::Cost cost = 0;
  graph::Delay delay = 0;
};

/// Exact pseudo-polynomial DP over the delay dimension: O((n + m) · D).
/// Requires non-negative costs and delays. Returns nullopt if no s→t path
/// with delay <= D exists.
std::optional<RspResult> rsp_exact(const graph::Digraph& g, graph::VertexId s,
                                   graph::VertexId t, graph::Delay D);

/// Lorenz–Raz style (1 + eps) FPTAS: returns a path with delay <= D and
/// cost <= (1 + eps) · OPT, or nullopt if infeasible. Cost scaling with a
/// geometric bound search keeps the DP polynomial in n, m, 1/eps.
std::optional<RspResult> rsp_fptas(const graph::Digraph& g, graph::VertexId s,
                                   graph::VertexId t, graph::Delay D,
                                   double eps);

}  // namespace krsp::paths

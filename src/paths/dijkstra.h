// Dijkstra single-source shortest paths over a pluggable edge weight.
//
// Weights must be non-negative; this is KRSP_CHECKed lazily (on the first
// negative weight encountered) so combined-weight callers (q·cost + p·delay)
// fail loudly instead of silently mis-routing.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/digraph.h"

namespace krsp::paths {

/// Linear edge weight w(e) = cost_mult * cost(e) + delay_mult * delay(e).
/// The common instantiations:
///   EdgeWeight::cost()      — pure cost
///   EdgeWeight::delay()     — pure delay
///   EdgeWeight::combined(q, p) — Lagrangian weight q·c + p·d
struct EdgeWeight {
  std::int64_t cost_mult = 1;
  std::int64_t delay_mult = 0;

  static EdgeWeight cost() { return {1, 0}; }
  static EdgeWeight delay() { return {0, 1}; }
  static EdgeWeight combined(std::int64_t q, std::int64_t p) { return {q, p}; }

  [[nodiscard]] std::int64_t operator()(const graph::Edge& e) const {
    return cost_mult * e.cost + delay_mult * e.delay;
  }
};

inline constexpr std::int64_t kUnreachable =
    std::numeric_limits<std::int64_t>::max();

struct ShortestPathTree {
  std::vector<std::int64_t> dist;        // kUnreachable if not reached
  std::vector<graph::EdgeId> parent;     // kInvalidEdge at source/unreached

  [[nodiscard]] bool reached(graph::VertexId v) const {
    return dist[v] != kUnreachable;
  }

  /// Edge sequence of the tree path source→v (empty if v is the source).
  [[nodiscard]] std::vector<graph::EdgeId> path_to(const graph::Digraph& g,
                                                   graph::VertexId v) const;
};

/// Dijkstra from `source` under weight `w` (all edges must have w(e) >= 0).
ShortestPathTree dijkstra(const graph::Digraph& g, graph::VertexId source,
                          const EdgeWeight& w);

/// Dijkstra with per-vertex potentials (Johnson reweighting): effective
/// weight w(e) + pot[from] - pot[to] must be >= 0. Returned dist is in the
/// *reweighted* space; callers translate back.
ShortestPathTree dijkstra_with_potentials(
    const graph::Digraph& g, graph::VertexId source, const EdgeWeight& w,
    const std::vector<std::int64_t>& potential);

}  // namespace krsp::paths

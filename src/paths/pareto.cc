#include "paths/pareto.h"

#include <algorithm>
#include <deque>

namespace krsp::paths {

namespace {

struct Label {
  graph::Cost cost;
  graph::Delay delay;
  graph::EdgeId via_edge;  // kInvalidEdge at the source
  int pred_label;          // index into the label arena; -1 at the source
};

// a dominates b (weakly better in both, strictly in one).
bool dominates(const Label& a, const Label& b) {
  return a.cost <= b.cost && a.delay <= b.delay &&
         (a.cost < b.cost || a.delay < b.delay);
}

}  // namespace

std::vector<ParetoPath> pareto_frontier(const graph::Digraph& g,
                                        graph::VertexId s, graph::VertexId t,
                                        const ParetoOptions& options) {
  KRSP_CHECK(g.is_vertex(s) && g.is_vertex(t));
  for (const auto& e : g.edges())
    KRSP_CHECK_MSG(e.cost >= 0 && e.delay >= 0,
                   "pareto_frontier requires non-negative weights");

  std::vector<Label> arena;                    // all labels ever created
  std::vector<std::vector<int>> at(g.num_vertices());  // live labels per v
  std::deque<std::pair<graph::VertexId, int>> queue;

  arena.push_back(Label{0, 0, graph::kInvalidEdge, -1});
  at[s].push_back(0);
  queue.emplace_back(s, 0);

  const auto try_insert = [&](graph::VertexId v, const Label& cand) -> int {
    auto& labels = at[v];
    for (const int i : labels)
      if (!dominates(cand, arena[i]) &&
          (arena[i].cost <= cand.cost && arena[i].delay <= cand.delay))
        return -1;  // dominated (or equal to) an existing label
    // Remove labels the candidate dominates.
    labels.erase(std::remove_if(labels.begin(), labels.end(),
                                [&](int i) { return dominates(cand, arena[i]); }),
                 labels.end());
    KRSP_CHECK_MSG(
        static_cast<std::int64_t>(arena.size()) < options.max_labels,
        "pareto_frontier label budget exceeded");
    arena.push_back(cand);
    const int id = static_cast<int>(arena.size()) - 1;
    labels.push_back(id);
    return id;
  };

  while (!queue.empty()) {
    const auto [v, label_id] = queue.front();
    queue.pop_front();
    // Stale if no longer among v's live labels.
    const auto& live = at[v];
    if (std::find(live.begin(), live.end(), label_id) == live.end()) continue;
    const Label base = arena[label_id];
    for (const graph::EdgeId e : g.out_edges(v)) {
      const auto& edge = g.edge(e);
      const Label cand{base.cost + edge.cost, base.delay + edge.delay, e,
                       label_id};
      const int id = try_insert(edge.to, cand);
      if (id >= 0 && edge.to != t) queue.emplace_back(edge.to, id);
    }
  }

  std::vector<ParetoPath> frontier;
  for (const int id : at[t]) {
    ParetoPath p;
    p.cost = arena[id].cost;
    p.delay = arena[id].delay;
    for (int i = id; arena[i].pred_label >= 0; i = arena[i].pred_label)
      p.edges.push_back(arena[i].via_edge);
    std::reverse(p.edges.begin(), p.edges.end());
    frontier.push_back(std::move(p));
  }
  std::sort(frontier.begin(), frontier.end(),
            [](const ParetoPath& a, const ParetoPath& b) {
              return a.cost != b.cost ? a.cost < b.cost : a.delay < b.delay;
            });
  return frontier;
}

std::optional<ParetoPath> rsp_via_frontier(const graph::Digraph& g,
                                           graph::VertexId s,
                                           graph::VertexId t, graph::Delay D,
                                           const ParetoOptions& options) {
  for (auto& p : pareto_frontier(g, s, t, options))
    if (p.delay <= D) return std::move(p);
  return std::nullopt;
}

}  // namespace krsp::paths

// Bellman–Ford shortest paths with negative weights and negative-cycle
// extraction. Residual graphs (Definition 6) carry negated weights, so this
// is the workhorse for everything downstream of phase 1.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.h"
#include "paths/dijkstra.h"  // EdgeWeight, kUnreachable, ShortestPathTree

namespace krsp::paths {

struct BellmanFordResult {
  ShortestPathTree tree;
  /// A simple cycle of negative total weight reachable from the source, if
  /// one exists (then `tree` distances are not meaningful on/downstream of
  /// the cycle).
  std::optional<std::vector<graph::EdgeId>> negative_cycle;
};

/// Bellman–Ford from `source` under weight w. Detects negative cycles
/// reachable from source and extracts one (as a simple cycle).
BellmanFordResult bellman_ford(const graph::Digraph& g,
                               graph::VertexId source, const EdgeWeight& w);

/// Multi-source variant: all vertices start at distance 0 (equivalent to a
/// super-source). Finds a negative cycle anywhere in the graph if one
/// exists. Used for min-ratio cycle detection (Lawler binary search).
BellmanFordResult bellman_ford_all_sources(const graph::Digraph& g,
                                           const EdgeWeight& w);

}  // namespace krsp::paths

// Admission control for the solve service: reject early, never queue to
// death.
//
// The controller tracks how many admitted requests are still unfinished
// (queued or executing) and an EWMA of observed per-request service time.
// Two rejection rules, both evaluated at arrival so a doomed request
// costs the client one round-trip instead of a timeout:
//
//   * queue-full — pending >= max_pending: the service is saturated and
//     adding depth only adds latency for everyone (the journal version of
//     the source paper motivates kRSP with online QoS provisioning, where
//     a fast "no" lets the caller fail over instead of waiting);
//   * deadline-unmeetable — the predicted queue wait,
//     max(0, pending + 1 - workers) x EWMA / workers, already exhausts
//     the request's deadline_seconds. The solver's anytime ladder can
//     degrade a *running* solve gracefully, but a request whose whole
//     budget burns in the queue would degrade to nothing — reject it
//     immediately instead (util/deadline.h charges the wait end-to-end).
//
// Thread-safe; one mutex, O(1) per call — negligible next to a solve.
#pragma once

#include <cstdint>
#include <mutex>

namespace krsp::server {

struct AdmissionOptions {
  /// Max admitted-but-unfinished requests (queued + executing); 0 = no cap.
  std::size_t max_pending = 256;
  /// Enable the deadline-unmeetable rejection rule.
  bool deadline_aware = true;
  /// EWMA seed before any completion is observed; 0 = optimistic (predicted
  /// wait is 0 until samples exist, so early requests always pass rule 2).
  double service_time_prior_seconds = 0.0;
  /// EWMA smoothing factor in (0, 1]; higher = faster adaptation.
  double ewma_alpha = 0.15;
};

enum class AdmitDecision { kAdmit, kRejectQueueFull, kRejectDeadline };

[[nodiscard]] const char* admit_decision_name(AdmitDecision decision);

class AdmissionController {
 public:
  AdmissionController(AdmissionOptions options, int workers);

  /// Decides for one arriving request (deadline_seconds <= 0 = unbounded,
  /// exempt from the deadline rule). On kAdmit the request is registered
  /// as pending; the caller MUST pair it with on_complete().
  [[nodiscard]] AdmitDecision admit(double deadline_seconds);

  /// Marks one admitted request finished and feeds its observed service
  /// time (seconds of solve execution) into the EWMA.
  void on_complete(double service_seconds);

  struct Snapshot {
    std::uint64_t admitted = 0;
    std::uint64_t rejected_queue_full = 0;
    std::uint64_t rejected_deadline = 0;
    std::size_t pending = 0;
    std::size_t peak_pending = 0;
    double ewma_service_seconds = 0.0;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Predicted queue wait for a request arriving now (seconds).
  [[nodiscard]] double predicted_wait_seconds() const;

 private:
  [[nodiscard]] double predicted_wait_locked() const;

  const AdmissionOptions options_;
  const int workers_;

  mutable std::mutex mu_;
  std::size_t pending_ = 0;
  std::size_t peak_pending_ = 0;
  double ewma_seconds_;
  bool have_sample_ = false;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_queue_full_ = 0;
  std::uint64_t rejected_deadline_ = 0;
};

}  // namespace krsp::server

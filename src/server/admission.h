// Admission control for the solve service: reject early, never queue to
// death.
//
// The controller tracks how many admitted requests are still unfinished
// (queued or executing) and an EWMA of observed per-request service time.
// Two rejection rules, both evaluated at arrival so a doomed request
// costs the client one round-trip instead of a timeout:
//
//   * queue-full — pending >= max_pending: the service is saturated and
//     adding depth only adds latency for everyone (the journal version of
//     the source paper motivates kRSP with online QoS provisioning, where
//     a fast "no" lets the caller fail over instead of waiting);
//   * deadline-unmeetable — the predicted queue wait,
//     max(0, pending + 1 - workers) x EWMA / workers, already exhausts
//     the request's deadline_seconds. The solver's anytime ladder can
//     degrade a *running* solve gracefully, but a request whose whole
//     budget burns in the queue would degrade to nothing — reject it
//     immediately instead (util/deadline.h charges the wait end-to-end).
//
// Requests carry an SLA class (api::SlaClass). Batch requests are bounded
// by their own budget (max_pending_batch <= max_pending), so under
// overload batch load is shed first while interactive traffic keeps
// admitting up to the global bound. Interactive requests additionally
// ride an overload ladder: when the predicted wait crosses
// degrade_wait_seconds the decision is kAdmitDegraded — the service
// coarsens the request (anytime ladder: larger eps, doubling cap search)
// instead of queueing a full-accuracy solve or rejecting outright.
// Per-class EWMAs and counters are kept for telemetry; the wait
// prediction uses the global EWMA (the worker pool is shared, so the
// queue drains at the blended rate).
//
// Thread-safe; one mutex, O(1) per call — negligible next to a solve.
#pragma once

#include <cstdint>
#include <mutex>

#include "api/krsp.h"

namespace krsp::server {

struct AdmissionOptions {
  /// Max admitted-but-unfinished requests (queued + executing), both
  /// classes combined; 0 = no cap.
  std::size_t max_pending = 256;
  /// Batch-class budget within max_pending; 0 = inherit max_pending.
  std::size_t max_pending_batch = 0;
  /// Enable the deadline-unmeetable rejection rule.
  bool deadline_aware = true;
  /// EWMA seed before any completion is observed; 0 = optimistic (predicted
  /// wait is 0 until samples exist, so early requests always pass rule 2).
  double service_time_prior_seconds = 0.0;
  /// EWMA smoothing factor in (0, 1]; higher = faster adaptation.
  double ewma_alpha = 0.15;
  /// Interactive overload ladder: predicted wait beyond this many seconds
  /// turns an interactive admit into kAdmitDegraded; 0 = ladder off.
  double degrade_wait_seconds = 0.0;
};

enum class AdmitDecision {
  kAdmit,
  /// Admitted, but the service should coarsen the request (overload
  /// ladder). Counts as admitted for pending/counter purposes.
  kAdmitDegraded,
  kRejectQueueFull,
  kRejectDeadline,
};

[[nodiscard]] const char* admit_decision_name(AdmitDecision decision);

class AdmissionController {
 public:
  AdmissionController(AdmissionOptions options, int workers);

  /// Decides for one arriving request (deadline_seconds <= 0 = unbounded,
  /// exempt from the deadline rule). On kAdmit/kAdmitDegraded the request
  /// is registered as pending; the caller MUST pair it with on_complete()
  /// of the same class.
  [[nodiscard]] AdmitDecision admit(
      double deadline_seconds, api::SlaClass cls = api::SlaClass::kBatch);

  /// Marks one admitted request finished and feeds its observed service
  /// time (seconds of solve execution) into the global and per-class
  /// EWMAs.
  void on_complete(double service_seconds,
                   api::SlaClass cls = api::SlaClass::kBatch);

  struct ClassSnapshot {
    std::uint64_t admitted = 0;
    std::uint64_t rejected_queue_full = 0;
    std::uint64_t rejected_deadline = 0;
    std::uint64_t degraded = 0;  // kAdmitDegraded decisions
    std::size_t pending = 0;
    double ewma_service_seconds = 0.0;
  };
  struct Snapshot {
    std::uint64_t admitted = 0;
    std::uint64_t rejected_queue_full = 0;
    std::uint64_t rejected_deadline = 0;
    std::size_t pending = 0;
    std::size_t peak_pending = 0;
    double ewma_service_seconds = 0.0;
    ClassSnapshot interactive;
    ClassSnapshot batch;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Predicted queue wait for a request arriving now (seconds).
  [[nodiscard]] double predicted_wait_seconds() const;

 private:
  struct ClassState {
    std::size_t pending = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected_queue_full = 0;
    std::uint64_t rejected_deadline = 0;
    std::uint64_t degraded = 0;
    double ewma_seconds = 0.0;
    bool have_sample = false;
  };

  [[nodiscard]] double predicted_wait_locked() const;
  [[nodiscard]] ClassState& state_for(api::SlaClass cls) {
    return cls == api::SlaClass::kInteractive ? interactive_ : batch_;
  }

  const AdmissionOptions options_;
  const int workers_;

  mutable std::mutex mu_;
  std::size_t pending_ = 0;
  std::size_t peak_pending_ = 0;
  double ewma_seconds_;
  bool have_sample_ = false;
  ClassState interactive_;
  ClassState batch_;
};

}  // namespace krsp::server

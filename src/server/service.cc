#include "server/service.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <string>
#include <utility>

#include "api/fingerprint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace krsp::server {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Per-SLA-class serve-latency histograms (ns, end-to-end inside
/// serve()); the `metrics` wire op renders their p50/p90/p99/p999.
/// Registry refs resolve once — recording is pure atomics.
obs::Histogram& serve_latency_histogram(api::SlaClass sla) {
  static obs::Histogram* per_class[] = {
      &obs::Registry::global().histogram("krsp_serve_latency_ns",
                                         "class=\"interactive\""),
      &obs::Registry::global().histogram("krsp_serve_latency_ns",
                                         "class=\"batch\""),
  };
  return *per_class[static_cast<int>(sla)];
}

/// Request-outcome counters per (class, ServeStatus), resolved once.
obs::Counter& serve_outcome_counter(api::SlaClass sla, ServeStatus status) {
  static const auto make = [](const char* cls, const char* outcome) {
    return &obs::Registry::global().counter(
        "krsp_serve_requests_total",
        std::string("class=\"") + cls + "\",outcome=\"" + outcome + '"');
  };
  // Indexed by [SlaClass][ServeStatus]; the enum orders are pinned by the
  // definitions in api/krsp.h and service.h.
  static obs::Counter* table[2][4] = {
      {make("interactive", "served"),
       make("interactive", "rejected-queue-full"),
       make("interactive", "rejected-deadline"),
       make("interactive", "rejected-draining")},
      {make("batch", "served"), make("batch", "rejected-queue-full"),
       make("batch", "rejected-deadline"),
       make("batch", "rejected-draining")},
  };
  return *table[static_cast<int>(sla)][static_cast<int>(status)];
}

/// Every serve() exit path funnels through here: end-to-end latency into
/// the per-class histogram, outcome into the per-(class, status) counter.
void note_outcome(const ServeResponse& resp) {
  serve_latency_histogram(resp.sla).record(static_cast<std::uint64_t>(
      std::max(0.0, resp.total_seconds) * 1e9));
  serve_outcome_counter(resp.sla, resp.status).inc();
}

api::EngineOptions engine_options(const api::ServerOptions& options) {
  api::EngineOptions eo;
  eo.num_threads = options.num_threads;
  eo.reuse_workspaces = options.reuse_workspaces;
  // Admission bounds pending work; the engine queue itself stays
  // unbounded so an admitted request can never block on backpressure.
  eo.queue_capacity = 0;
  return eo;
}

AdmissionOptions admission_options(const api::ServerOptions& options) {
  AdmissionOptions ao;
  ao.max_pending = options.max_pending;
  ao.max_pending_batch = options.max_pending_batch;
  ao.deadline_aware = options.deadline_aware_admission;
  ao.service_time_prior_seconds = options.service_time_prior_seconds;
  ao.degrade_wait_seconds = options.degrade_wait_seconds;
  return ao;
}

}  // namespace

const char* serve_status_name(ServeStatus status) {
  switch (status) {
    case ServeStatus::kServed:
      return "served";
    case ServeStatus::kRejectedQueueFull:
      return "rejected-queue-full";
    case ServeStatus::kRejectedDeadline:
      return "rejected-deadline";
    case ServeStatus::kRejectedDraining:
      return "rejected-draining";
  }
  return "unknown";
}

SolveService::SolveService(api::ServerOptions options)
    : options_(options),
      engine_(engine_options(options)),
      admission_(admission_options(options), engine_.num_threads()),
      cache_(options.cache_capacity, options.cache_shards) {}

SolveService::~SolveService() { drain(); }

ServeResponse SolveService::serve(api::SolveRequest request) {
  const auto t0 = Clock::now();
  received_.fetch_add(1, std::memory_order_relaxed);
  ServeResponse resp;
  resp.sla = request.sla;  // echoed on every path, cache hits included

  // Draining rejects everything, cache hits included: a drained service
  // has one observable behavior, not a cache-dependent one.
  if (!accepting_.load(std::memory_order_acquire)) {
    rejected_draining_.fetch_add(1, std::memory_order_relaxed);
    resp.status = ServeStatus::kRejectedDraining;
    resp.total_seconds = seconds_since(t0);
    note_outcome(resp);
    return resp;
  }

  // Deadline-bounded requests are anytime (results depend on wall clock),
  // so only deadline-free requests participate in the cache.
  const bool cacheable = request.deadline_seconds <= 0.0;
  std::uint64_t key = 0;
  std::uint64_t verify = 0;
  if (cacheable) {
    const auto lookup0 = Clock::now();
    std::optional<api::SolveResult> hit;
    {
      KRSP_OBS_SPAN("cache_lookup");
      // One pass computes both hashes; topology-referencing requests
      // resume from the catalog's precomputed prefixes, making this O(1)
      // instead of O(m) (api/fingerprint.h).
      const api::FingerprintPair fp = api::request_fingerprints(request);
      key = fp.key;
      verify = fp.verify;
      hit = cache_.lookup(key, verify);
    }
    resp.cache_lookup_seconds = seconds_since(lookup0);
    if (hit) {
      resp.result = std::move(*hit);
      resp.result.tag = request.tag;  // cached entries store no tag
      resp.cache_hit = true;
      served_.fetch_add(1, std::memory_order_relaxed);
      resp.total_seconds = seconds_since(t0);
      note_outcome(resp);
      return resp;
    }
  }

  const api::SlaClass sla = request.sla;
  const auto admit0 = Clock::now();
  const AdmitDecision decision = [&] {
    KRSP_OBS_SPAN("admission");
    return admission_.admit(request.deadline_seconds, sla);
  }();
  resp.admission_seconds = seconds_since(admit0);
  switch (decision) {
    case AdmitDecision::kAdmit:
      break;
    case AdmitDecision::kAdmitDegraded:
      // Overload ladder: trade accuracy for queue drain. Coarser eps makes
      // a kScaled solve cheaper; kDoubling spends fewer cancellation runs
      // on the cap search in every mode. The result is still structurally
      // valid — only the approximation factor loosens.
      resp.degraded = true;
      if (request.mode == api::Mode::kScaled) {
        request.eps1 = std::min(options_.overload_eps_cap,
                                request.eps1 * options_.overload_eps_factor);
        request.eps2 = std::min(options_.overload_eps_cap,
                                request.eps2 * options_.overload_eps_factor);
      }
      request.guess = api::GuessStrategy::kDoubling;
      break;
    case AdmitDecision::kRejectQueueFull:
      resp.status = ServeStatus::kRejectedQueueFull;
      resp.total_seconds = seconds_since(t0);
      note_outcome(resp);
      return resp;
    case AdmitDecision::kRejectDeadline:
      resp.status = ServeStatus::kRejectedDeadline;
      resp.total_seconds = seconds_since(t0);
      note_outcome(resp);
      return resp;
  }

  // End-to-end accounting: the budget is anchored now, so time spent in
  // the queue is charged against it and the worker sees only what's left.
  const util::Deadline deadline =
      util::Deadline::after_seconds(request.deadline_seconds);
  api::Ticket ticket = request.deadline_seconds > 0.0
                           ? engine_.submit(std::move(request), deadline)
                           : engine_.submit(std::move(request));
  resp.result = ticket.get();
  admission_.on_complete(resp.result.telemetry.wall_seconds, sla);
  served_.fetch_add(1, std::memory_order_relaxed);

  // A degraded solve answers a *coarsened* request, so caching it under
  // the original fingerprint would replay the wrong computation.
  if (cacheable && !resp.degraded &&
      resp.result.status != api::SolveStatus::kFailed) {
    api::SolveResult cached = resp.result;
    cached.tag.clear();  // cache contents are request-independent
    cache_.insert(key, verify, std::move(cached));
  }
  resp.total_seconds = seconds_since(t0);
  resp.wait_seconds =
      std::max(0.0, resp.total_seconds - resp.result.telemetry.wall_seconds);
  note_outcome(resp);
  return resp;
}

void SolveService::drain() {
  accepting_.store(false, std::memory_order_release);
  engine_.close();
  engine_.drain();
}

api::ServeStats SolveService::stats() const {
  api::ServeStats s;
  s.received = received_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.rejected_draining = rejected_draining_.load(std::memory_order_relaxed);
  const auto adm = admission_.snapshot();
  s.rejected_queue_full = adm.rejected_queue_full;
  s.rejected_deadline = adm.rejected_deadline;
  s.pending = adm.pending;
  s.peak_pending = adm.peak_pending;
  s.ewma_service_seconds = adm.ewma_service_seconds;
  const auto to_class = [](const AdmissionController::ClassSnapshot& cs) {
    api::SlaClassStats out;
    out.admitted = cs.admitted;
    out.rejected_queue_full = cs.rejected_queue_full;
    out.rejected_deadline = cs.rejected_deadline;
    out.degraded = cs.degraded;
    out.pending = cs.pending;
    out.ewma_service_seconds = cs.ewma_service_seconds;
    return out;
  };
  s.interactive = to_class(adm.interactive);
  s.batch = to_class(adm.batch);
  const auto cs = cache_.stats();
  s.cache_hits = cs.hits;
  s.cache_misses = cs.misses;
  s.cache_insertions = cs.insertions;
  s.cache_evictions = cs.evictions;
  s.cache_entries = cs.entries;
  s.cache_shard_entries = cache_.shard_entries();
  return s;
}

}  // namespace krsp::server

#include "server/request_parse.h"

#include <memory>
#include <sstream>
#include <utility>

namespace krsp::server {

bool parse_solve_request(const wire::Value& req,
                         const store::TopologyCatalog* catalog,
                         api::SolveRequest* out, bool* want_timing,
                         std::string* error) {
  const auto fail = [error](std::string what) {
    *error = std::move(what);
    return false;
  };

  const std::string id = req.get_string("id");
  const wire::Value* topology = req.find("topology");
  const wire::Value* instance_text = req.find("instance");

  api::SolveRequest request;
  request.tag = id;
  if (topology != nullptr) {
    // Protocol v2: graph by catalog reference. Every failure mode here is
    // a structured error response — a bad topology request must never
    // cost the client its connection.
    if (topology->type != wire::Value::Type::kString)
      return fail("\"topology\" must be a string id");
    if (instance_text != nullptr)
      return fail(
          "request carries both \"topology\" and \"instance\"; pick one");
    if (catalog == nullptr || catalog->empty())
      return fail("no topology catalog configured (serve with --catalog DIR)");
    std::shared_ptr<const api::TopologyRef> ref =
        catalog->find(topology->string);
    if (ref == nullptr) return fail("unknown topology: " + topology->string);
    const auto s =
        static_cast<graph::VertexId>(req.get_int("s", ref->instance->s));
    const auto t =
        static_cast<graph::VertexId>(req.get_int("t", ref->instance->t));
    const int k = static_cast<int>(req.get_int("k", ref->instance->k));
    const graph::Delay bound =
        req.get_int("delay_bound", ref->instance->delay_bound);
    if (s == ref->instance->s && t == ref->instance->t &&
        k == ref->instance->k && bound == ref->instance->delay_bound) {
      // Default query: share the catalog's instance as-is — no copy, no
      // parse, O(1) fingerprinting off the stored prefixes.
      request.topology = std::move(ref);
    } else {
      // Query override: kept symbolic — the graph is never copied here.
      // Fingerprints mix the override values directly after the stored
      // graph prefix (api/fingerprint.h), so cache lookups and routing
      // stay O(1); the O(m) instance copy happens only when a solve
      // actually runs (api::SolveRequest::materialized_instance on a
      // cache miss). The instance invariants the override could break
      // are checked up front so a bad override is still a parse-time
      // structured error, never a failed solve.
      std::ostringstream what;
      if (!ref->instance->graph.is_vertex(s))
        what << "bad source " << s;
      else if (!ref->instance->graph.is_vertex(t))
        what << "bad sink " << t;
      else if (s == t)
        what << "s == t";
      else if (k < 1)
        what << "k = " << k;
      else if (bound < 0)
        what << "D = " << bound;
      if (!what.str().empty())
        return fail("bad query override: " + what.str());
      request.topology = std::move(ref);
      request.query_override = api::QueryOverride{s, t, k, bound};
    }
  } else {
    // Protocol v1: inline .kri instance (accepted indefinitely).
    if (instance_text == nullptr ||
        instance_text->type != wire::Value::Type::kString)
      return fail("solve requires a string \"instance\" or \"topology\" field");
    try {
      std::istringstream is(instance_text->string);
      request.instance = api::read_instance(is);
    } catch (const std::exception& e) {
      return fail(std::string("bad instance: ") + e.what());
    }
  }

  const std::string mode = req.get_string("mode", "scaled");
  if (mode == "scaled") {
    request.mode = api::Mode::kScaled;
  } else if (mode == "exact") {
    request.mode = api::Mode::kExactWeights;
  } else if (mode == "phase1") {
    request.mode = api::Mode::kPhase1Only;
  } else {
    return fail("unknown mode: " + mode);
  }
  const std::string guess = req.get_string("guess", "binary");
  if (guess == "binary") {
    request.guess = api::GuessStrategy::kBinarySearch;
  } else if (guess == "doubling") {
    request.guess = api::GuessStrategy::kDoubling;
  } else {
    return fail("unknown guess: " + guess);
  }
  const std::string sla = req.get_string("class", "batch");
  if (sla == "interactive") {
    request.sla = api::SlaClass::kInteractive;
  } else if (sla == "batch") {
    request.sla = api::SlaClass::kBatch;
  } else {
    return fail("unknown class: " + sla);
  }
  const double eps = req.get_number("eps", 0.25);  // alias, as in the CLIs
  request.eps1 = req.get_number("eps1", eps);
  request.eps2 = req.get_number("eps2", eps);
  request.deadline_seconds = req.get_number("deadline", 0.0);
  // Opt-in per-request breakdown: echoed only on demand so the default
  // response shape (and the loadgen's identity check) is unchanged.
  if (want_timing != nullptr) *want_timing = req.get_bool("timing", false);

  *out = std::move(request);
  return true;
}

}  // namespace krsp::server

#include "server/wire.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace krsp::server::wire {

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool at_end() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void fail(const std::string& what) {
    if (error.empty())
      error = what + " at offset " + std::to_string(pos);
  }

  void skip_ws() {
    while (!at_end() && (text[pos] == ' ' || text[pos] == '\t' ||
                         text[pos] == '\n' || text[pos] == '\r'))
      ++pos;
  }

  bool consume(char c) {
    if (at_end() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  bool expect(char c, const char* ctx) {
    if (consume(c)) return true;
    fail(std::string("expected '") + c + "' in " + ctx);
    return false;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_hex4(std::uint32_t* out) {
    if (pos + 4 > text.size()) {
      fail("truncated \\u escape");
      return false;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else {
        fail("bad hex digit in \\u escape");
        return false;
      }
    }
    *out = v;
    return true;
  }

  bool parse_string(std::string* out) {
    if (!expect('"', "string")) return false;
    out->clear();
    while (true) {
      if (at_end()) {
        fail("unterminated string");
        return false;
      }
      const char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) {
          fail("raw control character in string");
          return false;
        }
        out->push_back(c);
        continue;
      }
      if (at_end()) {
        fail("truncated escape");
        return false;
      }
      const char e = text[pos++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(&cp)) return false;
          // Surrogate pair (rare in practice here, handled for correctness).
          if (cp >= 0xD800 && cp <= 0xDBFF && pos + 1 < text.size() &&
              text[pos] == '\\' && text[pos + 1] == 'u') {
            pos += 2;
            std::uint32_t lo = 0;
            if (!parse_hex4(&lo)) return false;
            if (lo >= 0xDC00 && lo <= 0xDFFF)
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            else {
              fail("unpaired surrogate");
              return false;
            }
          }
          append_utf8(*out, cp);
          break;
        }
        default:
          fail("unknown escape");
          return false;
      }
    }
  }

  /// Consumes a digit run, returning how many digits there were.
  std::size_t digits() {
    std::size_t count = 0;
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
      ++pos;
      ++count;
    }
    return count;
  }

  bool parse_number(Value* out) {
    const std::size_t start = pos;
    if (consume('-')) {}
    const bool int_digits = digits() > 0;
    bool integral = true;
    bool fraction_ok = true;
    if (consume('.')) {
      integral = false;
      fraction_ok = digits() > 0;
    }
    bool exponent_ok = true;
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos;
      exponent_ok = digits() > 0;
    }
    const std::string_view lit = text.substr(start, pos - start);
    // JSON grammar: digits before any '.', after any '.', after any 'e'.
    if (!int_digits || !fraction_ok || !exponent_ok) {
      fail("malformed number");
      return false;
    }
    out->type = Value::Type::kNumber;
    if (integral) {
      std::int64_t v = 0;
      const auto [ptr, ec] =
          std::from_chars(lit.data(), lit.data() + lit.size(), v);
      if (ec == std::errc() && ptr == lit.data() + lit.size()) {
        out->integer = v;
        out->is_integer = true;
        out->number = static_cast<double>(v);
        return true;
      }
      // Integer literal out of int64 range: fall through to double.
    }
    const std::string owned(lit);
    out->number = std::strtod(owned.c_str(), nullptr);
    out->is_integer = false;
    return true;
  }

  bool parse_value(Value* out, int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return false;
    }
    skip_ws();
    if (at_end()) {
      fail("unexpected end of input");
      return false;
    }
    const char c = peek();
    if (c == '{') {
      ++pos;
      out->type = Value::Type::kObject;
      skip_ws();
      if (consume('}')) return true;
      while (true) {
        skip_ws();
        std::string k;
        if (!parse_string(&k)) return false;
        skip_ws();
        if (!expect(':', "object")) return false;
        Value v;
        if (!parse_value(&v, depth + 1)) return false;
        out->members.emplace_back(std::move(k), std::move(v));
        skip_ws();
        if (consume(',')) continue;
        return expect('}', "object");
      }
    }
    if (c == '[') {
      ++pos;
      out->type = Value::Type::kArray;
      skip_ws();
      if (consume(']')) return true;
      while (true) {
        Value v;
        if (!parse_value(&v, depth + 1)) return false;
        out->items.push_back(std::move(v));
        skip_ws();
        if (consume(',')) continue;
        return expect(']', "array");
      }
    }
    if (c == '"') {
      out->type = Value::Type::kString;
      return parse_string(&out->string);
    }
    if (literal("true")) {
      out->type = Value::Type::kBool;
      out->boolean = true;
      return true;
    }
    if (literal("false")) {
      out->type = Value::Type::kBool;
      out->boolean = false;
      return true;
    }
    if (literal("null")) {
      out->type = Value::Type::kNull;
      return true;
    }
    return parse_number(out);
  }
};

}  // namespace

const Value* Value::find(std::string_view k) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : members)
    if (name == k) return &value;
  return nullptr;
}

std::string Value::get_string(std::string_view k, std::string_view def) const {
  const Value* v = find(k);
  return v != nullptr && v->type == Type::kString ? v->string
                                                  : std::string(def);
}

double Value::get_number(std::string_view k, double def) const {
  const Value* v = find(k);
  return v != nullptr && v->type == Type::kNumber ? v->number : def;
}

std::int64_t Value::get_int(std::string_view k, std::int64_t def) const {
  const Value* v = find(k);
  if (v == nullptr || v->type != Type::kNumber) return def;
  return v->is_integer ? v->integer : static_cast<std::int64_t>(v->number);
}

bool Value::get_bool(std::string_view k, bool def) const {
  const Value* v = find(k);
  return v != nullptr && v->type == Type::kBool ? v->boolean : def;
}

std::optional<Value> parse(std::string_view text, std::string* error) {
  Parser p;
  p.text = text;
  Value root;
  if (!p.parse_value(&root, 0)) {
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (!p.at_end()) {
    if (error != nullptr)
      *error = "trailing garbage at offset " + std::to_string(p.pos);
    return std::nullopt;
  }
  return root;
}

std::string quoted(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void ObjectWriter::key(std::string_view k) {
  if (!first_) out_.push_back(',');
  first_ = false;
  out_ += quoted(k);
  out_.push_back(':');
}

ObjectWriter& ObjectWriter::field(std::string_view k, std::string_view v) {
  key(k);
  out_ += quoted(v);
  return *this;
}

ObjectWriter& ObjectWriter::field(std::string_view k, const char* v) {
  return field(k, std::string_view(v));
}

ObjectWriter& ObjectWriter::field(std::string_view k, bool v) {
  key(k);
  out_ += v ? "true" : "false";
  return *this;
}

ObjectWriter& ObjectWriter::field(std::string_view k, std::int64_t v) {
  key(k);
  out_ += std::to_string(v);
  return *this;
}

ObjectWriter& ObjectWriter::field(std::string_view k, std::uint64_t v) {
  key(k);
  out_ += std::to_string(v);
  return *this;
}

ObjectWriter& ObjectWriter::field(std::string_view k, double v) {
  key(k);
  if (std::isfinite(v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    out_ += buf;
  } else {
    out_ += "null";  // JSON has no inf/nan
  }
  return *this;
}

ObjectWriter& ObjectWriter::raw(std::string_view k, std::string_view json) {
  key(k);
  out_ += json;
  return *this;
}

std::string ObjectWriter::done() {
  out_.push_back('}');
  return std::move(out_);
}

}  // namespace krsp::server::wire

// The solve service: the library's long-running front door.
//
// SolveService stacks the serving mechanisms in front of the streaming
// api::Engine, in the order a request meets them:
//
//   serve(request)
//     1. result cache  — fingerprint lookup; a hit returns the cached
//        result (bit-identical to a fresh solve) without touching the
//        queue;
//     2. admission     — reject immediately when saturated (queue-full)
//        or when the predicted queue wait already exhausts the request's
//        deadline (deadline-unmeetable), instead of timing out later;
//     3. engine.submit — the bounded MPMC queue + worker pool; the
//        request's deadline is anchored HERE (end-to-end: queue wait is
//        charged against it, and whatever remains at execution start
//        funds the solver's anytime degradation ladder);
//     4. cache insert  — deadline-free successful solves are stored for
//        future hits.
//
// serve() blocks its calling thread until the outcome; stream by calling
// it from many threads (the socket transport runs one thread per
// connection). Shutdown is graceful: drain() stops admissions, lets
// every in-flight request finish, and leaves the stats readable.
#pragma once

#include <atomic>
#include <memory>

#include "api/krsp.h"
#include "server/admission.h"
#include "server/result_cache.h"

namespace krsp::server {

enum class ServeStatus {
  kServed,             // result is valid (possibly SolveStatus::kFailed)
  kRejectedQueueFull,  // admission: saturation
  kRejectedDeadline,   // admission: deadline unmeetable in queue
  kRejectedDraining,   // service is shutting down
};

[[nodiscard]] const char* serve_status_name(ServeStatus status);

struct ServeResponse {
  ServeStatus status = ServeStatus::kServed;
  bool cache_hit = false;
  /// SLA class the request was admitted under (echoed from the request).
  api::SlaClass sla = api::SlaClass::kBatch;
  /// True when the overload ladder coarsened this request before solving
  /// (interactive class under pressure): eps multiplied by
  /// overload_eps_factor (kScaled) and the cap search switched to
  /// kDoubling. Degraded results are never cached.
  bool degraded = false;
  /// End-to-end time inside serve(), seconds.
  double total_seconds = 0.0;
  /// total minus the solver's own wall clock — queueing + dispatch
  /// overhead (0 for cache hits and rejections).
  double wait_seconds = 0.0;
  /// Per-request breakdown (always measured; the wire layer echoes it
  /// only when the request sets the "timing" flag). cache_lookup covers
  /// fingerprint + shard probe; admission the admit decision; the queue
  /// wait and solve wall live in result (queue_wait_seconds,
  /// telemetry.wall_seconds).
  double cache_lookup_seconds = 0.0;
  double admission_seconds = 0.0;
  /// Meaningful only when status == kServed.
  api::SolveResult result;

  [[nodiscard]] bool served() const { return status == ServeStatus::kServed; }
};

class SolveService {
 public:
  explicit SolveService(api::ServerOptions options = {});
  ~SolveService();  // drains
  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Serves one request to completion (or rejection). Thread-safe and
  /// blocking; never throws for per-request problems (the Solver error
  /// contract extends to the service).
  [[nodiscard]] ServeResponse serve(api::SolveRequest request);

  /// Stops admitting, waits for all in-flight requests to complete.
  /// Idempotent; serve() afterwards returns kRejectedDraining.
  void drain();

  [[nodiscard]] api::ServeStats stats() const;
  [[nodiscard]] int num_threads() const { return engine_.num_threads(); }
  [[nodiscard]] const api::ServerOptions& options() const { return options_; }

 private:
  const api::ServerOptions options_;
  api::Engine engine_;
  AdmissionController admission_;
  ResultCache cache_;
  std::atomic<bool> accepting_{true};
  std::atomic<std::uint64_t> received_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> rejected_draining_{0};
};

}  // namespace krsp::server

// Minimal JSON reader/writer for the serving wire protocol.
//
// The protocol (server/transport.h) frames one JSON object per line, so
// this is deliberately a small, dependency-free implementation: a
// recursive-descent parser into a dynamic Value tree, plus an ObjectWriter
// that appends correctly-escaped fields to a flat string. Integers are
// kept exact (int64) whenever the literal has no fraction/exponent —
// costs, delays and edge ids must round-trip bit-exactly for the
// loadgen's identity check to be meaningful.
//
// Not a general-purpose JSON library on purpose: no comments, no
// trailing commas, UTF-8 passthrough with \uXXXX decoding, nesting depth
// capped (hostile input gets an error, not a stack overflow).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace krsp::server::wire {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;        // always set for kNumber
  std::int64_t integer = 0;   // exact value when is_integer
  bool is_integer = false;
  std::string string;
  std::vector<Value> items;                             // kArray
  std::vector<std::pair<std::string, Value>> members;   // kObject, in order

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  // Typed convenience getters on objects, with defaults for absent or
  // mistyped members.
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string_view def = "") const;
  [[nodiscard]] double get_number(std::string_view key, double def) const;
  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t def) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool def) const;
};

/// Parses one JSON document (object, array, or scalar). On failure returns
/// nullopt and, if `error` is non-null, a position-annotated message.
std::optional<Value> parse(std::string_view text, std::string* error = nullptr);

/// JSON string literal: quotes + escapes (control chars, ", \).
[[nodiscard]] std::string quoted(std::string_view s);

/// Builder for one flat JSON object; nested values go in pre-serialized
/// via raw(). Field order is emission order (stable, test-friendly).
class ObjectWriter {
 public:
  ObjectWriter& field(std::string_view key, std::string_view value);
  ObjectWriter& field(std::string_view key, const char* value);
  ObjectWriter& field(std::string_view key, bool value);
  ObjectWriter& field(std::string_view key, std::int64_t value);
  ObjectWriter& field(std::string_view key, std::uint64_t value);
  ObjectWriter& field(std::string_view key, double value);
  /// Pre-serialized JSON (array, object) emitted verbatim.
  ObjectWriter& raw(std::string_view key, std::string_view json);

  /// Finishes and returns the object; the writer is spent afterwards.
  [[nodiscard]] std::string done();

 private:
  void key(std::string_view k);
  std::string out_ = "{";
  bool first_ = true;
};

}  // namespace krsp::server::wire

// Shared solve-request parsing: wire JSON object → api::SolveRequest.
//
// Extracted from Protocol::handle_solve so the router tier
// (krsp::router) lowers a request exactly the way a shard will: both
// forms of the same query (v1 inline instance, v2 topology reference,
// with or without overrides) parse to SolveRequests whose
// api::request_fingerprints() agree, which is what gives the
// consistent-hash ring cross-form shard affinity.
//
// Error strings returned here are part of the wire contract (pinned by
// protocol_v2_test) — changing them changes every client's error
// handling.
#pragma once

#include <string>

#include "api/krsp.h"
#include "server/wire.h"
#include "store/catalog.h"

namespace krsp::server {

/// Fills *out from the solve fields of `req` (id, topology|instance,
/// s/t/k/delay_bound overrides, mode, guess, class, eps/eps1/eps2,
/// deadline). Returns false with *error set to the structured-error
/// message (message only — the caller owns response framing and the
/// echoed id). `want_timing` receives the per-request "timing" opt-in
/// flag; pass nullptr when not needed.
[[nodiscard]] bool parse_solve_request(const wire::Value& req,
                                       const store::TopologyCatalog* catalog,
                                       api::SolveRequest* out,
                                       bool* want_timing, std::string* error);

}  // namespace krsp::server

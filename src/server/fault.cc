#include "server/fault.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <thread>
#include <utility>

namespace krsp::server {

bool FdStream::send(std::string_view data, std::string* error) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t w =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) {
      if (error != nullptr)
        *error = std::string("send(): ") + std::strerror(errno);
      return false;
    }
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

ssize_t FdStream::recv(char* buf, std::size_t len, int timeout_ms,
                       std::string* error) {
  using Clock = std::chrono::steady_clock;
  const auto give_up =
      timeout_ms >= 0
          ? std::optional(Clock::now() + std::chrono::milliseconds(timeout_ms))
          : std::nullopt;
  while (true) {
    int wait_ms = -1;
    if (give_up.has_value()) {
      wait_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(*give_up -
                                                                Clock::now())
              .count());
      if (wait_ms < 0) return kRecvTimeout;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr)
        *error = std::string("poll(): ") + std::strerror(errno);
      return kRecvError;
    }
    if (rc == 0) return kRecvTimeout;
    const ssize_t n = ::read(fd_, buf, len);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      if (error != nullptr)
        *error = std::string("read(): ") + std::strerror(errno);
      return kRecvError;
    }
    return n;  // 0 = EOF
  }
}

void FdStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int connect_unix(const std::string& path, std::string* error,
                 int* out_errno) {
  if (out_errno != nullptr) *out_errno = 0;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "socket path too long: " + path;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (out_errno != nullptr) *out_errno = errno;
    if (error != nullptr)
      *error = std::string("socket(): ") + std::strerror(errno);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (out_errno != nullptr) *out_errno = errno;
    if (error != nullptr)
      *error = "connect(" + path + "): " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(const std::string& host, std::uint16_t port,
                std::string* error, int* out_errno) {
  if (out_errno != nullptr) *out_errno = 0;
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_ADDRCONFIG;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  const int gai = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (gai != 0) {
    if (error != nullptr)
      *error = "resolve(" + host + "): " + ::gai_strerror(gai);
    return -1;
  }
  int last_errno = 0;
  int fd = -1;
  for (const addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    if (out_errno != nullptr) *out_errno = last_errno;
    if (error != nullptr)
      *error = "connect(" + host + ":" + service +
               "): " + std::strerror(last_errno);
    return -1;
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

Endpoint Endpoint::unix_socket(std::string path) {
  Endpoint ep;
  ep.kind = Kind::kUnixSocket;
  ep.path = std::move(path);
  return ep;
}

Endpoint Endpoint::tcp(std::string host, std::uint16_t port) {
  Endpoint ep;
  ep.kind = Kind::kTcp;
  ep.host = std::move(host);
  ep.port = port;
  return ep;
}

Endpoint Endpoint::parse(const std::string& spec) {
  // Unix socket paths contain '/' in practice (and every path can be
  // spelled with one: ./name); only a slash-free spec whose final ':'
  // introduces a valid numeric port is TCP.
  const std::size_t colon = spec.rfind(':');
  if (spec.find('/') == std::string::npos && colon != std::string::npos &&
      colon != 0 && colon + 1 < spec.size()) {
    const std::string digits = spec.substr(colon + 1);
    bool numeric = true;
    long value = 0;
    for (const char c : digits) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      value = value * 10 + (c - '0');
      if (value > 65535) {
        numeric = false;
        break;
      }
    }
    if (numeric)
      return tcp(spec.substr(0, colon), static_cast<std::uint16_t>(value));
  }
  return unix_socket(spec);
}

std::string Endpoint::describe() const {
  return kind == Kind::kTcp ? "tcp:" + host + ":" + std::to_string(port)
                            : "unix:" + path;
}

int connect_endpoint(const Endpoint& ep, std::string* error, int* out_errno) {
  return ep.kind == Endpoint::Kind::kTcp
             ? connect_tcp(ep.host, ep.port, error, out_errno)
             : connect_unix(ep.path, error, out_errno);
}

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kGarbage:
      return "garbage";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kReset:
      return "reset";
    case FaultKind::kSlowRead:
      return "slow-read";
  }
  return "unknown";
}

FaultKind FaultyStream::draw_fault() {
  if (rng_ == nullptr || options_.fault_rate <= 0.0) return FaultKind::kNone;
  if (!rng_->bernoulli(options_.fault_rate)) return FaultKind::kNone;
  const double total = options_.p_garbage + options_.p_stall +
                       options_.p_truncate + options_.p_reset +
                       options_.p_slow_read;
  if (total <= 0.0) return FaultKind::kNone;
  double x = rng_->uniform01() * total;
  if ((x -= options_.p_garbage) < 0.0) return FaultKind::kGarbage;
  if ((x -= options_.p_stall) < 0.0) return FaultKind::kStall;
  if ((x -= options_.p_truncate) < 0.0) return FaultKind::kTruncate;
  if ((x -= options_.p_reset) < 0.0) return FaultKind::kReset;
  return FaultKind::kSlowRead;
}

bool FaultyStream::send(std::string_view data, std::string* error) {
  if (counters_ != nullptr) ++counters_->sends;
  const FaultKind fault = draw_fault();
  last_fault_ = fault;
  if (fault != FaultKind::kNone && counters_ != nullptr)
    ++counters_->injected;
  switch (fault) {
    case FaultKind::kNone:
      return inner_.send(data, error);
    case FaultKind::kGarbage: {
      if (counters_ != nullptr) ++counters_->garbage;
      const int len = static_cast<int>(
          rng_->uniform_int(1, std::max(1, options_.max_garbage_bytes)));
      std::string junk;
      junk.reserve(static_cast<std::size_t>(len) + 1);
      for (int i = 0; i < len; ++i) {
        // Printable junk, minus '{' so it can't accidentally be JSON and
        // minus newline so it stays one frame.
        char c = static_cast<char>(rng_->uniform_int(32, 126));
        if (c == '{') c = '!';
        junk.push_back(c);
      }
      junk.push_back('\n');
      if (!inner_.send(junk, error)) return false;
      return inner_.send(data, error);
    }
    case FaultKind::kStall: {
      if (counters_ != nullptr) ++counters_->stalls;
      const std::size_t cut =
          data.size() <= 1
              ? data.size()
              : static_cast<std::size_t>(rng_->uniform_int(
                    1, static_cast<std::int64_t>(data.size()) - 1));
      if (!inner_.send(data.substr(0, cut), error)) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(options_.stall_ms));
      return inner_.send(data.substr(cut), error);
    }
    case FaultKind::kTruncate: {
      if (counters_ != nullptr) ++counters_->truncates;
      const std::size_t cut = static_cast<std::size_t>(rng_->uniform_int(
          0, std::max<std::int64_t>(
                 0, static_cast<std::int64_t>(data.size()) - 1)));
      if (cut > 0) (void)inner_.send(data.substr(0, cut), error);
      inner_.close();
      poisoned_ = true;
      if (error != nullptr)
        *error = "fault-injected truncate (connection closed mid-frame)";
      return false;
    }
    case FaultKind::kReset: {
      if (counters_ != nullptr) ++counters_->resets;
      inner_.close();
      poisoned_ = true;
      if (error != nullptr)
        *error = "fault-injected reset (connection closed before send)";
      return false;
    }
    case FaultKind::kSlowRead: {
      if (counters_ != nullptr) ++counters_->slow_reads;
      slow_next_read_ = true;  // the payload itself goes through intact
      return inner_.send(data, error);
    }
  }
  return inner_.send(data, error);
}

ssize_t FaultyStream::recv(char* buf, std::size_t len, int timeout_ms,
                           std::string* error) {
  if (slow_next_read_) {
    slow_next_read_ = false;
    std::this_thread::sleep_for(std::chrono::milliseconds(options_.stall_ms));
  }
  return inner_.recv(buf, len, timeout_ms, error);
}

}  // namespace krsp::server

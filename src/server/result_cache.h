// Sharded LRU cache of solve results, keyed by a full request fingerprint.
//
// The engine's per-worker McfWorkspace already fingerprints graph
// *topology* to reuse the MCMF arc structure across solves; the result
// cache extends that idea to the whole request: topology PLUS edge
// weights (costs and delays) PLUS the query parameters (s, t, k, D, mode,
// eps1/eps2, guess strategy). Two requests with the same fingerprint are
// the same deterministic computation, so serving the cached SolveResult
// is bit-identical to re-solving — the property server_test checks with
// randomized cost/delay mutations (must miss) vs pure re-queries (must
// hit).
//
// Deadline-bounded requests are never cached by the service: they are
// anytime by design, so their results are not a pure function of the
// request.
//
// Sharding: key-partitioned shards, each with its own mutex, hash map and
// intrusive LRU list, so concurrent connection threads don't serialize on
// one cache lock. Capacity is split evenly across shards; eviction is
// per-shard LRU (a global LRU would need a global lock).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/krsp.h"

namespace krsp::server {

/// 64-bit FNV-1a over everything that determines a (deadline-free) solve:
/// graph shape, edge endpoints and weights, terminals, k, delay bound,
/// mode, guess strategy, and the exact eps1/eps2 bit patterns. The tag is
/// deliberately excluded (it is echoed metadata, not an input) and so is
/// deadline_seconds (deadline-bounded requests bypass the cache).
///
/// Compatibility wrapper over api::request_fingerprints (the hashing
/// moved to api/fingerprint.h so the topology catalog can precompute
/// graph prefixes); prefer that entry point, which produces both hashes
/// in one pass. Requests carrying a TopologyRef fingerprint in O(1).
[[nodiscard]] std::uint64_t request_fingerprint(
    const api::SolveRequest& request);

/// Independent second hash (splitmix64 accumulator) over the same inputs.
/// Stored alongside each cache entry and re-checked on lookup, so a
/// primary-key collision between distinct requests reads as a miss
/// instead of silently serving the wrong result — a colliding pair would
/// have to collide under both hash functions at once. Same compatibility
/// note as request_fingerprint.
[[nodiscard]] std::uint64_t request_fingerprint2(
    const api::SolveRequest& request);

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;  // gauge
};

class ResultCache {
 public:
  /// `capacity` bounds total entries across shards (0 = cache disabled:
  /// every lookup misses, every insert is dropped). `shards` is clamped
  /// to [1, capacity] so each shard holds at least one entry.
  explicit ResultCache(std::size_t capacity, int shards = 8);

  /// Returns a copy of the cached result and refreshes its LRU position;
  /// a key hit whose stored verify hash differs is a miss (collision).
  /// The stored tag is empty; callers re-stamp the requester's tag.
  [[nodiscard]] std::optional<api::SolveResult> lookup(std::uint64_t key,
                                                       std::uint64_t verify);

  /// Inserts (or refreshes) a result, evicting the shard's LRU tail when
  /// over budget. `verify` is request_fingerprint2 of the same request.
  /// The caller should clear the tag first so cache contents are
  /// request-independent.
  void insert(std::uint64_t key, std::uint64_t verify,
              api::SolveResult result);

  [[nodiscard]] CacheStats stats() const;  // aggregated over shards
  /// Live entry count per shard (index = shard id): the occupancy spread
  /// behind the aggregate `entries` gauge.
  [[nodiscard]] std::vector<std::size_t> shard_entries() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::uint64_t key;
    std::uint64_t verify;  // request_fingerprint2, checked on lookup
    api::SolveResult result;
  };

  struct Shard {
    std::mutex mu;
    // Front = most recently used. The map stores list iterators, stable
    // under splice.
    std::list<Entry> lru;
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
    CacheStats stats;
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t key);

  std::size_t capacity_;
  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace krsp::server

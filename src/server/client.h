// Resilient newline-framed JSON client for the solve service.
//
// ResilientClient wraps one connection to krsp_serve — Unix socket or
// TCP (server/fault.h Endpoint) — with the failure handling a real
// caller needs against a faulty network:
//
//   * per-attempt timeout — a stalled server or a fault-eaten frame turns
//     into a bounded wait, not a hang;
//   * reconnect-on-reset — EOF / ECONNRESET / a poisoned chaos stream
//     tears the connection down and dials again;
//   * retry with exponential backoff + equal jitter (seeded, so a chaos
//     run's retry schedule is replayable), capped per request
//     (max_retries) and per client (total_budget_ms);
//   * id-matched responses — responses are matched to the request by the
//     echoed "id" field, so an injected garbage frame's error response is
//     skipped (and counted) instead of desynchronizing the stream.
//
// Retry safety: a request is retried only when the caller declares it
// idempotent. Deadline-free solve requests are — the solve is a pure
// function of the request (request_fingerprint), so a duplicate delivery
// re-serves the same bytes (usually from the result cache). Deadline-
// bounded requests are anytime (wall-clock dependent) and must be sent at
// most once: on any failure after the frame may have reached the server,
// the client reports failure instead of retransmitting.
//
// Optional FaultOptions inject transport chaos (server/fault.h) into
// every connection the client dials — the loadgen's --fault-rate and the
// E15 chaos bench drive exactly this path.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "server/fault.h"

namespace krsp::server {

struct RetryOptions {
  /// Retransmissions per request after the first attempt; 0 = no retry.
  int max_retries = 0;
  /// Backoff before retry r is base * 2^r, jittered to [0.5, 1.0] of
  /// itself, capped at max_backoff_ms.
  double base_backoff_ms = 10.0;
  double max_backoff_ms = 500.0;
  /// Total wall-clock budget across one request's attempts (send + wait +
  /// backoff); 0 = unbounded.
  double total_budget_ms = 0.0;
  /// Per-attempt response wait; 0 = block indefinitely.
  double request_timeout_ms = 0.0;
  /// Seed for backoff jitter (independent of the fault schedule).
  std::uint64_t jitter_seed = 1;
  /// Refused-at-connect (ECONNREFUSED / ENOENT on a Unix path) means the
  /// server is down and nothing was delivered — with this set, request()
  /// fails immediately instead of burning the backoff budget, so a
  /// caller holding alternatives (the router's ring walk) can retry
  /// elsewhere at once. Off by default: a single-server client's only
  /// "elsewhere" is waiting for the restart, which is what backoff does.
  bool fail_fast_on_refused = false;
};

struct ClientCounters {
  std::uint64_t attempts = 0;     // send attempts, including the first
  std::uint64_t retries = 0;      // attempts beyond a request's first
  std::uint64_t reconnects = 0;   // dials after the initial connect
  std::uint64_t timeouts = 0;     // attempts abandoned on request_timeout
  std::uint64_t skipped_lines = 0;  // non-matching responses discarded
  std::uint64_t give_ups = 0;     // requests that exhausted the policy
  std::uint64_t connect_refused = 0;  // dials refused (server down)
  FaultCounters faults;           // injected chaos (when faults enabled)
};

class ResilientClient {
 public:
  /// Back-compat ctor: the string is always a Unix socket path.
  explicit ResilientClient(std::string socket_path, RetryOptions retry = {},
                           FaultOptions faults = {});
  /// Endpoint ctor: Unix socket or TCP (the fleet transport).
  explicit ResilientClient(Endpoint endpoint, RetryOptions retry = {},
                           FaultOptions faults = {});
  ~ResilientClient();
  ResilientClient(const ResilientClient&) = delete;
  ResilientClient& operator=(const ResilientClient&) = delete;

  /// Dials the socket. request() reconnects lazily, so calling this is
  /// only needed to surface connection errors early.
  [[nodiscard]] bool connect(std::string* error);

  /// Sends one request line (no trailing newline) and waits for the
  /// response whose "id" field equals `id` (empty id = first parseable
  /// response). `idempotent` gates retransmission: false = at-most-once
  /// (any post-send failure is final). True on success with
  /// *response_line set; false with *error set otherwise.
  [[nodiscard]] bool request(const std::string& line, const std::string& id,
                             bool idempotent, std::string* response_line,
                             std::string* error);

  [[nodiscard]] const ClientCounters& counters() const { return counters_; }
  [[nodiscard]] bool connected() const;
  [[nodiscard]] const Endpoint& endpoint() const { return endpoint_; }
  /// True iff the last request() failure was a refused dial with nothing
  /// ever delivered — safe to retry on another server even when the
  /// request is not idempotent.
  [[nodiscard]] bool last_failure_refused() const {
    return last_failure_refused_;
  }
  void close();

 private:
  [[nodiscard]] bool dial(std::string* error);
  /// Reads lines until one matches `id`; kRecv* semantics of the result:
  /// true on match, false with *error on EOF/error/timeout.
  [[nodiscard]] bool read_matching(const std::string& id, int timeout_ms,
                                   std::string* response_line,
                                   std::string* error);

  const Endpoint endpoint_;
  const RetryOptions retry_;
  const FaultOptions fault_options_;
  util::Rng chaos_rng_;   // threads one fault schedule across reconnects
  util::Rng jitter_rng_;  // backoff jitter, independent stream
  std::unique_ptr<FdStream> fd_stream_;
  std::unique_ptr<FaultyStream> stream_;  // decorates fd_stream_
  std::string buffer_;  // partial-line carry between reads
  ClientCounters counters_;
  bool ever_connected_ = false;
  bool last_dial_refused_ = false;
  bool last_failure_refused_ = false;
};

}  // namespace krsp::server

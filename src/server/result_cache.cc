#include "server/result_cache.h"

#include <algorithm>
#include <bit>

namespace krsp::server {

namespace {

struct Fnv {
  std::uint64_t h = 14695981039346656037ull;
  void mix(std::uint64_t x) {
    // Mix all 8 bytes, not just the low ones: edge weights are int64.
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
};

// splitmix64 accumulator: structurally unrelated to FNV-1a, so the pair
// (request_fingerprint, request_fingerprint2) only collides when both
// independent 64-bit hashes collide on the same two requests.
struct SplitMix {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  void mix(std::uint64_t x) {
    h += x + 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    h ^= h >> 31;
  }
};

template <class Hasher>
std::uint64_t hash_request(const api::SolveRequest& request) {
  Hasher f;
  const auto& inst = request.instance;
  f.mix(static_cast<std::uint64_t>(inst.graph.num_vertices()));
  f.mix(static_cast<std::uint64_t>(inst.graph.num_edges()));
  for (const auto& e : inst.graph.edges()) {
    f.mix(static_cast<std::uint64_t>(e.from));
    f.mix(static_cast<std::uint64_t>(e.to));
    f.mix(static_cast<std::uint64_t>(e.cost));
    f.mix(static_cast<std::uint64_t>(e.delay));
  }
  f.mix(static_cast<std::uint64_t>(inst.s));
  f.mix(static_cast<std::uint64_t>(inst.t));
  f.mix(static_cast<std::uint64_t>(inst.k));
  f.mix(static_cast<std::uint64_t>(inst.delay_bound));
  f.mix(static_cast<std::uint64_t>(request.mode));
  f.mix(static_cast<std::uint64_t>(request.guess));
  f.mix(std::bit_cast<std::uint64_t>(request.eps1));
  f.mix(std::bit_cast<std::uint64_t>(request.eps2));
  return f.h;
}

}  // namespace

std::uint64_t request_fingerprint(const api::SolveRequest& request) {
  return hash_request<Fnv>(request);
}

std::uint64_t request_fingerprint2(const api::SolveRequest& request) {
  return hash_request<SplitMix>(request);
}

ResultCache::ResultCache(std::size_t capacity, int shards)
    : capacity_(capacity) {
  const std::size_t n = std::clamp<std::size_t>(
      shards <= 0 ? 1 : static_cast<std::size_t>(shards), 1,
      std::max<std::size_t>(capacity, 1));
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    shards_.push_back(std::make_unique<Shard>());
  // Ceil-divide so the shard sum never undercuts the requested capacity.
  per_shard_capacity_ = capacity == 0 ? 0 : (capacity + n - 1) / n;
}

ResultCache::Shard& ResultCache::shard_for(std::uint64_t key) {
  // High bits pick the shard; low bits feed the hash map, keeping the two
  // partitions independent.
  return *shards_[(key >> 48) % shards_.size()];
}

std::optional<api::SolveResult> ResultCache::lookup(std::uint64_t key,
                                                    std::uint64_t verify) {
  if (capacity_ == 0) return std::nullopt;
  Shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(key);
  if (it == s.index.end() || it->second->verify != verify) {
    // A present key with a mismatched verify hash is a 64-bit collision
    // between distinct requests: serving it would break the bit-identity
    // contract, so it is a miss.
    ++s.stats.misses;
    return std::nullopt;
  }
  ++s.stats.hits;
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // refresh recency
  return it->second->result;
}

void ResultCache::insert(std::uint64_t key, std::uint64_t verify,
                         api::SolveResult result) {
  if (capacity_ == 0) return;
  Shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    // Identical request re-solved concurrently (or a colliding key being
    // overwritten); refresh in place, keep one copy per key.
    it->second->verify = verify;
    it->second->result = std::move(result);
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  s.lru.push_front(Entry{key, verify, std::move(result)});
  s.index.emplace(key, s.lru.begin());
  ++s.stats.insertions;
  while (s.lru.size() > per_shard_capacity_) {
    s.index.erase(s.lru.back().key);
    s.lru.pop_back();
    ++s.stats.evictions;
  }
}

CacheStats ResultCache::stats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.insertions += shard->stats.insertions;
    total.evictions += shard->stats.evictions;
    total.entries += shard->lru.size();
  }
  return total;
}

}  // namespace krsp::server

#include "server/result_cache.h"

#include <algorithm>

#include "api/fingerprint.h"

namespace krsp::server {

std::uint64_t request_fingerprint(const api::SolveRequest& request) {
  return api::request_fingerprints(request).key;
}

std::uint64_t request_fingerprint2(const api::SolveRequest& request) {
  return api::request_fingerprints(request).verify;
}

ResultCache::ResultCache(std::size_t capacity, int shards)
    : capacity_(capacity) {
  const std::size_t n = std::clamp<std::size_t>(
      shards <= 0 ? 1 : static_cast<std::size_t>(shards), 1,
      std::max<std::size_t>(capacity, 1));
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    shards_.push_back(std::make_unique<Shard>());
  // Ceil-divide so the shard sum never undercuts the requested capacity.
  per_shard_capacity_ = capacity == 0 ? 0 : (capacity + n - 1) / n;
}

ResultCache::Shard& ResultCache::shard_for(std::uint64_t key) {
  // High bits pick the shard; low bits feed the hash map, keeping the two
  // partitions independent.
  return *shards_[(key >> 48) % shards_.size()];
}

std::optional<api::SolveResult> ResultCache::lookup(std::uint64_t key,
                                                    std::uint64_t verify) {
  if (capacity_ == 0) return std::nullopt;
  Shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(key);
  if (it == s.index.end() || it->second->verify != verify) {
    // A present key with a mismatched verify hash is a 64-bit collision
    // between distinct requests: serving it would break the bit-identity
    // contract, so it is a miss.
    ++s.stats.misses;
    return std::nullopt;
  }
  ++s.stats.hits;
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // refresh recency
  return it->second->result;
}

void ResultCache::insert(std::uint64_t key, std::uint64_t verify,
                         api::SolveResult result) {
  if (capacity_ == 0) return;
  Shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    // Identical request re-solved concurrently (or a colliding key being
    // overwritten); refresh in place, keep one copy per key.
    it->second->verify = verify;
    it->second->result = std::move(result);
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  s.lru.push_front(Entry{key, verify, std::move(result)});
  s.index.emplace(key, s.lru.begin());
  ++s.stats.insertions;
  while (s.lru.size() > per_shard_capacity_) {
    s.index.erase(s.lru.back().key);
    s.lru.pop_back();
    ++s.stats.evictions;
  }
}

std::vector<std::size_t> ResultCache::shard_entries() const {
  std::vector<std::size_t> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    out.push_back(shard->lru.size());
  }
  return out;
}

CacheStats ResultCache::stats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.insertions += shard->stats.insertions;
    total.evictions += shard->stats.evictions;
    total.entries += shard->lru.size();
  }
  return total;
}

}  // namespace krsp::server

#include "server/admission.h"

#include <algorithm>

#include "util/check.h"

namespace krsp::server {

const char* admit_decision_name(AdmitDecision decision) {
  switch (decision) {
    case AdmitDecision::kAdmit:
      return "admit";
    case AdmitDecision::kRejectQueueFull:
      return "queue-full";
    case AdmitDecision::kRejectDeadline:
      return "deadline-unmeetable";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionOptions options, int workers)
    : options_(options),
      workers_(std::max(1, workers)),
      ewma_seconds_(std::max(0.0, options.service_time_prior_seconds)) {
  KRSP_CHECK_MSG(options_.ewma_alpha > 0.0 && options_.ewma_alpha <= 1.0,
                 "ewma_alpha must be in (0, 1]");
}

double AdmissionController::predicted_wait_locked() const {
  if (pending_ + 1 <= static_cast<std::size_t>(workers_)) return 0.0;
  const double jobs_ahead =
      static_cast<double>(pending_ + 1 - static_cast<std::size_t>(workers_));
  return jobs_ahead * ewma_seconds_ / static_cast<double>(workers_);
}

AdmitDecision AdmissionController::admit(double deadline_seconds) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (options_.max_pending > 0 && pending_ >= options_.max_pending) {
    ++rejected_queue_full_;
    return AdmitDecision::kRejectQueueFull;
  }
  if (options_.deadline_aware && deadline_seconds > 0.0 &&
      predicted_wait_locked() >= deadline_seconds) {
    ++rejected_deadline_;
    return AdmitDecision::kRejectDeadline;
  }
  ++pending_;
  ++admitted_;
  peak_pending_ = std::max(peak_pending_, pending_);
  return AdmitDecision::kAdmit;
}

void AdmissionController::on_complete(double service_seconds) {
  const std::lock_guard<std::mutex> lock(mu_);
  KRSP_CHECK_MSG(pending_ > 0, "on_complete without a matching admit");
  --pending_;
  if (service_seconds >= 0.0) {
    if (!have_sample_ && options_.service_time_prior_seconds <= 0.0) {
      ewma_seconds_ = service_seconds;  // first sample seeds the EWMA
    } else {
      ewma_seconds_ = options_.ewma_alpha * service_seconds +
                      (1.0 - options_.ewma_alpha) * ewma_seconds_;
    }
    have_sample_ = true;
  }
}

AdmissionController::Snapshot AdmissionController::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  s.admitted = admitted_;
  s.rejected_queue_full = rejected_queue_full_;
  s.rejected_deadline = rejected_deadline_;
  s.pending = pending_;
  s.peak_pending = peak_pending_;
  s.ewma_service_seconds = ewma_seconds_;
  return s;
}

double AdmissionController::predicted_wait_seconds() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return predicted_wait_locked();
}

}  // namespace krsp::server

#include "server/admission.h"

#include <algorithm>

#include "util/check.h"

namespace krsp::server {

const char* admit_decision_name(AdmitDecision decision) {
  switch (decision) {
    case AdmitDecision::kAdmit:
      return "admit";
    case AdmitDecision::kAdmitDegraded:
      return "admit-degraded";
    case AdmitDecision::kRejectQueueFull:
      return "queue-full";
    case AdmitDecision::kRejectDeadline:
      return "deadline-unmeetable";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionOptions options, int workers)
    : options_(options),
      workers_(std::max(1, workers)),
      ewma_seconds_(std::max(0.0, options.service_time_prior_seconds)) {
  KRSP_CHECK_MSG(options_.ewma_alpha > 0.0 && options_.ewma_alpha <= 1.0,
                 "ewma_alpha must be in (0, 1]");
  KRSP_CHECK_MSG(options_.max_pending == 0 ||
                     options_.max_pending_batch <= options_.max_pending,
                 "max_pending_batch must not exceed max_pending");
  interactive_.ewma_seconds = ewma_seconds_;
  batch_.ewma_seconds = ewma_seconds_;
}

double AdmissionController::predicted_wait_locked() const {
  if (pending_ + 1 <= static_cast<std::size_t>(workers_)) return 0.0;
  const double jobs_ahead =
      static_cast<double>(pending_ + 1 - static_cast<std::size_t>(workers_));
  return jobs_ahead * ewma_seconds_ / static_cast<double>(workers_);
}

AdmitDecision AdmissionController::admit(double deadline_seconds,
                                         api::SlaClass cls) {
  const std::lock_guard<std::mutex> lock(mu_);
  ClassState& state = state_for(cls);
  if (options_.max_pending > 0 && pending_ >= options_.max_pending) {
    ++state.rejected_queue_full;
    return AdmitDecision::kRejectQueueFull;
  }
  // Batch budget: sheds batch load while interactive still admits. The
  // budget only binds when a cap exists at all (max_pending > 0).
  if (cls == api::SlaClass::kBatch && options_.max_pending > 0) {
    const std::size_t batch_budget = options_.max_pending_batch > 0
                                         ? options_.max_pending_batch
                                         : options_.max_pending;
    if (state.pending >= batch_budget) {
      ++state.rejected_queue_full;
      return AdmitDecision::kRejectQueueFull;
    }
  }
  // This request's own predicted wait (evaluated before it joins the
  // queue) drives both the deadline rule and the overload ladder.
  const double own_wait = predicted_wait_locked();
  if (options_.deadline_aware && deadline_seconds > 0.0 &&
      own_wait >= deadline_seconds) {
    ++state.rejected_deadline;
    return AdmitDecision::kRejectDeadline;
  }
  ++pending_;
  ++state.pending;
  ++state.admitted;
  peak_pending_ = std::max(peak_pending_, pending_);
  if (cls == api::SlaClass::kInteractive &&
      options_.degrade_wait_seconds > 0.0 &&
      own_wait >= options_.degrade_wait_seconds) {
    ++state.degraded;
    return AdmitDecision::kAdmitDegraded;
  }
  return AdmitDecision::kAdmit;
}

void AdmissionController::on_complete(double service_seconds,
                                      api::SlaClass cls) {
  const std::lock_guard<std::mutex> lock(mu_);
  ClassState& state = state_for(cls);
  KRSP_CHECK_MSG(pending_ > 0, "on_complete without a matching admit");
  KRSP_CHECK_MSG(state.pending > 0,
                 "on_complete(" << api::sla_class_name(cls)
                                << ") without a matching admit of that class");
  --pending_;
  --state.pending;
  if (service_seconds >= 0.0) {
    if (!have_sample_ && options_.service_time_prior_seconds <= 0.0) {
      ewma_seconds_ = service_seconds;  // first sample seeds the EWMA
    } else {
      ewma_seconds_ = options_.ewma_alpha * service_seconds +
                      (1.0 - options_.ewma_alpha) * ewma_seconds_;
    }
    have_sample_ = true;
    if (!state.have_sample && options_.service_time_prior_seconds <= 0.0) {
      state.ewma_seconds = service_seconds;
    } else {
      state.ewma_seconds = options_.ewma_alpha * service_seconds +
                           (1.0 - options_.ewma_alpha) * state.ewma_seconds;
    }
    state.have_sample = true;
  }
}

AdmissionController::Snapshot AdmissionController::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  s.admitted = interactive_.admitted + batch_.admitted;
  s.rejected_queue_full =
      interactive_.rejected_queue_full + batch_.rejected_queue_full;
  s.rejected_deadline =
      interactive_.rejected_deadline + batch_.rejected_deadline;
  s.pending = pending_;
  s.peak_pending = peak_pending_;
  s.ewma_service_seconds = ewma_seconds_;
  const auto to_snapshot = [](const ClassState& state) {
    ClassSnapshot cs;
    cs.admitted = state.admitted;
    cs.rejected_queue_full = state.rejected_queue_full;
    cs.rejected_deadline = state.rejected_deadline;
    cs.degraded = state.degraded;
    cs.pending = state.pending;
    cs.ewma_service_seconds = state.ewma_seconds;
    return cs;
  };
  s.interactive = to_snapshot(interactive_);
  s.batch = to_snapshot(batch_);
  return s;
}

double AdmissionController::predicted_wait_seconds() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return predicted_wait_locked();
}

}  // namespace krsp::server

// Transport fault injection: a seeded, deterministic chaos decorator for
// byte streams.
//
// ByteStream abstracts one connected, bidirectional byte pipe (FdStream
// wraps a socket fd). FaultyStream decorates any ByteStream and injects
// the transport failure modes a serving daemon must survive, chosen by a
// seeded RNG (same idiom as resilience/chaos.h: one seed determines the
// whole fault schedule, so every chaos run is replayable):
//
//   * garbage  — a junk frame (random bytes + newline) precedes the real
//     payload: the peer must answer it with an error response, not crash
//     or desync;
//   * stall    — the payload is split mid-frame and the second half is
//     delayed: the peer must buffer and eventually serve it;
//   * truncate — only a prefix of the frame is sent, then the connection
//     closes: the peer must discard the partial line on EOF;
//   * reset    — the connection closes before (or instead of) the send:
//     the peer sees a hard disconnect mid-conversation;
//   * slow-read — reads are delayed, so the peer experiences a client
//     that stops draining its responses.
//
// Truncate and reset poison the stream (poisoned() turns true): the
// injector closed the pipe, so the owner must reconnect. The decorator is
// client-side by construction, but every injected fault is *server-felt*:
// the chaos tests drive a real SocketServer through FaultyStream clients
// and pin the server-side outcome of each fault class (error response or
// clean close — never a hang, crash, or corrupted response).
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <string_view>

#include "util/rng.h"

namespace krsp::server {

/// One connected byte pipe. Implementations are not thread-safe; one
/// owner drives send/recv.
class ByteStream {
 public:
  virtual ~ByteStream() = default;

  /// Sends all of `data` (retrying EINTR / partial writes). False on
  /// failure with *error holding an errno-annotated message.
  [[nodiscard]] virtual bool send(std::string_view data,
                                  std::string* error) = 0;

  /// recv() return values < 0 (0 = clean EOF, > 0 = bytes read).
  static constexpr ssize_t kRecvError = -1;    // *error set
  static constexpr ssize_t kRecvTimeout = -2;  // timeout_ms elapsed

  /// Reads up to `len` bytes, waiting at most `timeout_ms` (< 0 = block
  /// indefinitely).
  [[nodiscard]] virtual ssize_t recv(char* buf, std::size_t len,
                                     int timeout_ms, std::string* error) = 0;

  virtual void close() = 0;
  [[nodiscard]] virtual bool connected() const = 0;
};

/// ByteStream over a connected socket fd; takes ownership of the fd.
class FdStream final : public ByteStream {
 public:
  explicit FdStream(int fd) : fd_(fd) {}
  ~FdStream() override { close(); }
  FdStream(const FdStream&) = delete;
  FdStream& operator=(const FdStream&) = delete;

  [[nodiscard]] bool send(std::string_view data, std::string* error) override;
  [[nodiscard]] ssize_t recv(char* buf, std::size_t len, int timeout_ms,
                             std::string* error) override;
  void close() override;
  [[nodiscard]] bool connected() const override { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

/// Connects to a Unix-domain socket; returns the fd or -1 with *error
/// set. On failure *out_errno (optional) receives the connect/socket
/// errno so callers can classify refused-at-connect vs anything else.
[[nodiscard]] int connect_unix(const std::string& path, std::string* error,
                               int* out_errno = nullptr);

/// Connects over TCP (numeric address or hostname; TCP_NODELAY set —
/// one-line-per-direction framing never wants Nagle). Returns the fd or
/// -1 with *error set and *out_errno (optional) the dial errno.
[[nodiscard]] int connect_tcp(const std::string& host, std::uint16_t port,
                              std::string* error, int* out_errno = nullptr);

/// A dialable server address: a Unix-domain socket path or a TCP
/// host:port.
struct Endpoint {
  enum class Kind { kUnixSocket, kTcp };
  Kind kind = Kind::kUnixSocket;
  std::string path;  // kUnixSocket
  std::string host;  // kTcp
  std::uint16_t port = 0;

  [[nodiscard]] static Endpoint unix_socket(std::string path);
  [[nodiscard]] static Endpoint tcp(std::string host, std::uint16_t port);

  /// "host:port" (last ':' followed by a valid numeric port, no '/'
  /// anywhere) parses as TCP; everything else is a Unix socket path, so
  /// existing path-valued flags keep their meaning.
  [[nodiscard]] static Endpoint parse(const std::string& spec);

  /// "unix:<path>" or "tcp:<host>:<port>" — for logs and error messages.
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] bool operator==(const Endpoint& other) const {
    return kind == other.kind && path == other.path && host == other.host &&
           port == other.port;
  }
};

/// Dials an endpoint of either kind; same contract as connect_unix /
/// connect_tcp.
[[nodiscard]] int connect_endpoint(const Endpoint& ep, std::string* error,
                                   int* out_errno = nullptr);

enum class FaultKind {
  kNone,
  kGarbage,
  kStall,
  kTruncate,
  kReset,
  kSlowRead,
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind);

struct FaultOptions {
  std::uint64_t seed = 1;
  /// Probability that a send() draws a fault at all; 0 = passthrough
  /// (no RNG is consumed, so a rate-0 stream is byte-identical to the
  /// undecorated one).
  double fault_rate = 0.0;
  /// Relative mix of fault kinds when one fires (normalized internally).
  double p_garbage = 0.25;
  double p_stall = 0.25;
  double p_truncate = 0.2;
  double p_reset = 0.15;
  double p_slow_read = 0.15;
  /// Mid-frame stall / slow-read delay.
  int stall_ms = 25;
  /// Garbage frame length bound (bytes before the newline).
  int max_garbage_bytes = 48;
};

struct FaultCounters {
  std::uint64_t sends = 0;
  std::uint64_t injected = 0;  // sends that drew a fault
  std::uint64_t garbage = 0;
  std::uint64_t stalls = 0;
  std::uint64_t truncates = 0;
  std::uint64_t resets = 0;
  std::uint64_t slow_reads = 0;
};

/// The chaos decorator. Non-owning of the RNG so a reconnecting client
/// can thread one seeded schedule through successive connections.
class FaultyStream final : public ByteStream {
 public:
  /// `inner` must outlive this stream; `rng` is the shared seeded chaos
  /// schedule (pass nullptr for a passthrough decorator).
  FaultyStream(ByteStream& inner, const FaultOptions& options, util::Rng* rng,
               FaultCounters* counters = nullptr)
      : inner_(inner), options_(options), rng_(rng), counters_(counters) {}

  [[nodiscard]] bool send(std::string_view data, std::string* error) override;
  [[nodiscard]] ssize_t recv(char* buf, std::size_t len, int timeout_ms,
                             std::string* error) override;
  void close() override { inner_.close(); }
  [[nodiscard]] bool connected() const override { return inner_.connected(); }

  /// True once an injected truncate/reset closed the inner stream; the
  /// owner must reconnect (the fault, unlike a real network, is at least
  /// polite enough to tell the test it happened).
  [[nodiscard]] bool poisoned() const { return poisoned_; }
  [[nodiscard]] FaultKind last_fault() const { return last_fault_; }

 private:
  [[nodiscard]] FaultKind draw_fault();

  ByteStream& inner_;
  const FaultOptions options_;
  util::Rng* rng_;
  FaultCounters* counters_;
  bool poisoned_ = false;
  bool slow_next_read_ = false;
  FaultKind last_fault_ = FaultKind::kNone;
};

}  // namespace krsp::server

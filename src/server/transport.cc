#include "server/transport.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/request_parse.h"
#include "server/wire.h"

namespace krsp::server {

namespace {

/// Per-op request counter + handle-latency histogram, resolved once per
/// known op (unknown ops share the "other" slot so hostile op names
/// cannot grow the registry without bound).
struct WireOpMetrics {
  obs::Counter& requests;
  obs::Histogram& handle_ns;
};

WireOpMetrics& wire_op_metrics(const std::string& op) {
  static const auto make = [](const char* name) {
    const std::string labels = std::string("op=\"") + name + '"';
    return new WireOpMetrics{
        obs::Registry::global().counter("krsp_wire_requests_total", labels),
        obs::Registry::global().histogram("krsp_wire_handle_ns", labels)};
  };
  static WireOpMetrics* const solve = make("solve");
  static WireOpMetrics* const stats = make("stats");
  static WireOpMetrics* const metrics = make("metrics");
  static WireOpMetrics* const topologies = make("topologies");
  static WireOpMetrics* const topology = make("topology");
  static WireOpMetrics* const ping = make("ping");
  static WireOpMetrics* const shutdown = make("shutdown");
  static WireOpMetrics* const other = make("other");
  if (op == "solve") return *solve;
  if (op == "stats") return *stats;
  if (op == "metrics") return *metrics;
  if (op == "topologies") return *topologies;
  if (op == "topology") return *topology;
  if (op == "ping") return *ping;
  if (op == "shutdown") return *shutdown;
  return *other;
}

obs::Counter& transport_bytes_in() {
  static obs::Counter& c = obs::Registry::global().counter(
      "krsp_transport_bytes_total", "direction=\"in\"");
  return c;
}

obs::Counter& transport_bytes_out() {
  static obs::Counter& c = obs::Registry::global().counter(
      "krsp_transport_bytes_total", "direction=\"out\"");
  return c;
}

std::string error_line(const std::string& what, const std::string& id = "") {
  wire::ObjectWriter w;
  if (!id.empty()) w.field("id", id);
  w.field("ok", false);
  w.field("error", what);
  return w.done();
}

// MSG_NOSIGNAL keeps a disconnected client from raising SIGPIPE (whose
// default action would kill the whole daemon); EPIPE just means the
// client is gone. EINTR retries the syscall. Returns 0 on success, else
// the errno of the failed send so the caller can tell a peer reset
// (ECONNRESET/EPIPE — routine) from anything unexpected.
int send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t w =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w < 0) return errno;
    if (w == 0) return EIO;  // send() contract: 0 only for empty payloads
    sent += static_cast<std::size_t>(w);
  }
  return 0;
}

std::string paths_json(const core::PathSet& paths) {
  std::string out = "[";
  bool first_path = true;
  for (const auto& path : paths.paths()) {
    if (!first_path) out.push_back(',');
    first_path = false;
    out.push_back('[');
    bool first_edge = true;
    for (const auto e : path) {
      if (!first_edge) out.push_back(',');
      first_edge = false;
      out += std::to_string(e);
    }
    out.push_back(']');
  }
  out.push_back(']');
  return out;
}

std::string handle_solve(const wire::Value& req, SolveService& service,
                         const store::TopologyCatalog* catalog) {
  const std::string id = req.get_string("id");

  // Parsing lives in request_parse.{h,cc} so the router lowers requests
  // exactly the way this shard-side path does (error strings included).
  api::SolveRequest request;
  bool want_timing = false;
  std::string parse_error;
  if (!parse_solve_request(req, catalog, &request, &want_timing,
                           &parse_error))
    return error_line(parse_error, id);

  const ServeResponse r = service.serve(std::move(request));

  const auto timing_json = [&r] {
    wire::ObjectWriter t;
    t.field("cache_lookup_ms", r.cache_lookup_seconds * 1e3);
    t.field("admission_ms", r.admission_seconds * 1e3);
    t.field("queue_wait_ms", r.result.queue_wait_seconds * 1e3);
    t.field("solve_ms", r.result.telemetry.wall_seconds * 1e3);
    t.field("total_ms", r.total_seconds * 1e3);
    return t.done();
  };

  wire::ObjectWriter w;
  w.field("id", id);
  w.field("ok", true);
  w.field("served", r.served());
  w.field("sla", api::sla_class_name(r.sla));
  if (!r.served()) {
    w.field("reject", serve_status_name(r.status));
    w.field("total_ms", r.total_seconds * 1e3);
    if (want_timing) w.raw("timing", timing_json());
    return w.done();
  }
  w.field("cache_hit", r.cache_hit);
  if (r.degraded) w.field("degraded", true);
  w.field("status", api::status_name(r.result.status));
  if (r.result.has_paths()) {
    w.field("cost", static_cast<std::int64_t>(r.result.cost));
    w.field("delay", static_cast<std::int64_t>(r.result.delay));
    w.raw("paths", paths_json(r.result.paths));
  }
  w.field("degradation",
          core::degradation_step_name(r.result.degradation()));
  if (r.result.status == api::SolveStatus::kFailed)
    w.field("error", r.result.error);
  w.field("queue_ms", r.wait_seconds * 1e3);
  w.field("total_ms", r.total_seconds * 1e3);
  if (want_timing) w.raw("timing", timing_json());
  return w.done();
}

void class_stats_fields(wire::ObjectWriter& w, const char* prefix,
                        const api::SlaClassStats& cs) {
  const std::string p(prefix);
  w.field(p + "_admitted", cs.admitted);
  w.field(p + "_rejected_queue_full", cs.rejected_queue_full);
  w.field(p + "_rejected_deadline", cs.rejected_deadline);
  w.field(p + "_degraded", cs.degraded);
  w.field(p + "_pending", static_cast<std::uint64_t>(cs.pending));
  w.field(p + "_ewma_service_ms", cs.ewma_service_seconds * 1e3);
}

// Digests are u64; JSON numbers round-trip exactly only through int64,
// so they travel as fixed-width hex strings.
std::string hex64(std::uint64_t x) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(x));
  return buf;
}

void topology_info_fields(wire::ObjectWriter& w,
                          const store::TopologyCatalog::Info& info) {
  w.field("id", info.id);
  w.field("n", static_cast<std::int64_t>(info.num_vertices));
  w.field("m", static_cast<std::int64_t>(info.num_edges));
  w.field("s", static_cast<std::int64_t>(info.s));
  w.field("t", static_cast<std::int64_t>(info.t));
  w.field("k", static_cast<std::int64_t>(info.k));
  w.field("delay_bound", static_cast<std::int64_t>(info.delay_bound));
  w.field("digest", hex64(info.digest));
  w.field("file_bytes", info.file_bytes);
}

std::string handle_topologies(const store::TopologyCatalog* catalog) {
  // No catalog behaves as an empty one: listing is a discovery op, so a
  // catalog-less server answers "nothing here" rather than erroring.
  const auto infos = catalog == nullptr
                         ? std::vector<store::TopologyCatalog::Info>{}
                         : catalog->list();
  wire::ObjectWriter w;
  w.field("ok", true);
  w.field("protocol_version", static_cast<std::int64_t>(kProtocolVersion));
  w.field("count", static_cast<std::int64_t>(infos.size()));
  std::string arr = "[";
  bool first = true;
  for (const auto& info : infos) {
    if (!first) arr.push_back(',');
    first = false;
    wire::ObjectWriter entry;
    topology_info_fields(entry, info);
    arr += entry.done();
  }
  arr.push_back(']');
  w.raw("topologies", arr);
  return w.done();
}

std::string handle_topology(const wire::Value& req,
                            const store::TopologyCatalog* catalog) {
  const std::string id = req.get_string("id");
  if (id.empty()) return error_line("topology op requires an \"id\" field");
  if (catalog != nullptr) {
    for (const auto& info : catalog->list()) {
      if (info.id != id) continue;
      wire::ObjectWriter w;
      w.field("ok", true);
      topology_info_fields(w, info);
      return w.done();
    }
  }
  return error_line("unknown topology: " + id);
}

std::string handle_stats(SolveService& service, std::uint64_t solves_v1,
                         std::uint64_t solves_v2) {
  const api::ServeStats s = service.stats();
  wire::ObjectWriter w;
  w.field("ok", true);
  w.field("protocol_version", static_cast<std::int64_t>(kProtocolVersion));
  // Adoption counters by request wire form (v1 inline instance vs v2
  // topology reference) — additive fields, safe for v1 stats readers.
  w.field("solves_v1", solves_v1);
  w.field("solves_v2", solves_v2);
  w.field("received", s.received);
  w.field("served", s.served);
  w.field("rejected_queue_full", s.rejected_queue_full);
  w.field("rejected_deadline", s.rejected_deadline);
  w.field("rejected_draining", s.rejected_draining);
  w.field("cache_hits", s.cache_hits);
  w.field("cache_misses", s.cache_misses);
  w.field("cache_insertions", s.cache_insertions);
  w.field("cache_evictions", s.cache_evictions);
  w.field("cache_entries", static_cast<std::uint64_t>(s.cache_entries));
  std::string shard_arr = "[";
  for (std::size_t i = 0; i < s.cache_shard_entries.size(); ++i) {
    if (i != 0) shard_arr.push_back(',');
    shard_arr += std::to_string(s.cache_shard_entries[i]);
  }
  shard_arr.push_back(']');
  w.raw("cache_shard_entries", shard_arr);
  w.field("pending", static_cast<std::uint64_t>(s.pending));
  w.field("peak_pending", static_cast<std::uint64_t>(s.peak_pending));
  w.field("ewma_service_ms", s.ewma_service_seconds * 1e3);
  class_stats_fields(w, "interactive", s.interactive);
  class_stats_fields(w, "batch", s.batch);
  w.field("threads", static_cast<std::int64_t>(service.num_threads()));
  return w.done();
}

std::string handle_metrics() {
  // The exposition travels as one JSON string field; ObjectWriter escapes
  // the newlines, so the framing stays one object per line.
  wire::ObjectWriter w;
  w.field("ok", true);
  w.field("protocol_version", static_cast<std::int64_t>(kProtocolVersion));
  w.field("metrics", obs::Registry::global().render_prometheus());
  return w.done();
}

}  // namespace

std::string Protocol::handle_line(const std::string& line) {
  KRSP_OBS_SPAN("wire_handle");
  const auto t0 = std::chrono::steady_clock::now();
  std::string parse_error;
  const auto req = wire::parse(line, &parse_error);
  if (!req.has_value()) return error_line("bad json: " + parse_error);
  if (req->type != wire::Value::Type::kObject)
    return error_line("request must be a json object");

  const std::string op = req->get_string("op", "solve");
  WireOpMetrics& m = wire_op_metrics(op);
  m.requests.inc();
  std::string resp;
  if (op == "solve") {
    // Wire-form adoption counter: the "topology" key is the v2 marker
    // (handle_solve applies the same rule), counted request-side so a
    // malformed v2 attempt still shows up as v2 traffic.
    auto& form = req->find("topology") != nullptr ? solves_v2_ : solves_v1_;
    form.fetch_add(1, std::memory_order_relaxed);
    resp = handle_solve(*req, service_, catalog_);
  } else if (op == "stats") {
    resp = handle_stats(service_, solves_v1(), solves_v2());
  } else if (op == "metrics") {
    resp = handle_metrics();
  } else if (op == "topologies") {
    resp = handle_topologies(catalog_);
  } else if (op == "topology") {
    resp = handle_topology(*req, catalog_);
  } else if (op == "ping") {
    resp = wire::ObjectWriter().field("ok", true).field("pong", true).done();
  } else if (op == "shutdown") {
    shutdown_.store(true, std::memory_order_release);
    resp = wire::ObjectWriter()
               .field("ok", true)
               .field("draining", true)
               .done();
  } else {
    resp = error_line("unknown op: " + op);
  }
  m.handle_ns.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  return resp;
}

SocketServer::SocketServer(SolveService& service, std::string socket_path,
                           const store::TopologyCatalog* catalog)
    : protocol_(std::in_place, service, catalog),
      handler_(&*protocol_),
      path_(std::move(socket_path)) {}

SocketServer::SocketServer(SolveService& service, std::uint16_t tcp_port,
                           const store::TopologyCatalog* catalog)
    : protocol_(std::in_place, service, catalog),
      handler_(&*protocol_),
      tcp_(true),
      port_(tcp_port) {}

SocketServer::SocketServer(LineHandler& handler, std::string socket_path)
    : handler_(&handler), path_(std::move(socket_path)) {}

SocketServer::SocketServer(LineHandler& handler, std::uint16_t tcp_port)
    : handler_(&handler), tcp_(true), port_(tcp_port) {}

SocketServer::~SocketServer() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    if (!tcp_) ::unlink(path_.c_str());
  }
}

bool SocketServer::start(std::string* error) {
  return tcp_ ? start_tcp(error) : start_unix(error);
}

bool SocketServer::start_unix(std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr)
      *error = "socket path too long (" + std::to_string(path_.size()) +
               " >= " + std::to_string(sizeof(addr.sun_path)) + "): " + path_;
    return false;
  }
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr)
      *error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  ::unlink(path_.c_str());  // stale socket from a previous run
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    if (error != nullptr)
      *error = "bind(" + path_ + "): " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 64) != 0) {
    if (error != nullptr)
      *error = std::string("listen(): ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(path_.c_str());
    return false;
  }
  return true;
}

bool SocketServer::start_tcp(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr)
      *error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  // SO_REUSEADDR: a restarted daemon must rebind its port without waiting
  // out the previous incarnation's TIME_WAIT connections.
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    if (error != nullptr)
      *error = "bind(tcp port " + std::to_string(port_) +
               "): " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 64) != 0) {
    if (error != nullptr)
      *error = std::string("listen(): ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  // Resolve the bound port: with port 0 the kernel picked an ephemeral
  // one, and callers (tests, fleet_smoke.sh) need to learn it.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    if (error != nullptr)
      *error = std::string("getsockname(): ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  bound_port_ = ntohs(bound.sin_port);
  return true;
}

bool SocketServer::stopping() const {
  return stop_.load(std::memory_order_acquire) ||
         handler_->shutdown_requested();
}

void SocketServer::serve_forever() {
  KRSP_CHECK_MSG(listen_fd_ >= 0, "SocketServer::start() must succeed first");
  while (!stopping()) {
    // Poll with a timeout so a shutdown op handled on a connection thread
    // breaks the accept loop promptly.
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (tcp_) {
      // One request line → one response line: always worth flushing
      // immediately rather than letting Nagle batch against the ACK clock.
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    }
    // Reap threads whose connections have closed so a long-running server
    // with many short-lived clients holds O(live connections) handles,
    // and enforce the concurrency cap on what remains.
    if (reap_finished() >= kMaxConnections) {
      (void)note_send(
          send_all(fd, error_line("server at connection capacity") + "\n"));
      ::close(fd);
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(threads_mu_);
    threads_.emplace_back([this, fd] { connection_loop(fd); });
  }
  // Graceful drain: connections finish the lines they are serving; their
  // read loops notice the stop flag on the next poll tick and exit.
  std::list<std::thread> to_join;
  {
    const std::lock_guard<std::mutex> lock(threads_mu_);
    to_join.swap(threads_);
    finished_ids_.clear();
  }
  for (auto& t : to_join) t.join();
}

std::size_t SocketServer::reap_finished() {
  std::list<std::thread> done;
  std::size_t live;
  {
    const std::lock_guard<std::mutex> lock(threads_mu_);
    for (const auto id : finished_ids_) {
      for (auto it = threads_.begin(); it != threads_.end(); ++it) {
        if (it->get_id() == id) {
          done.splice(done.end(), threads_, it);
          break;
        }
      }
    }
    finished_ids_.clear();
    live = threads_.size();
  }
  // Join outside the lock: these threads have already announced
  // completion, so each join only waits out the final return.
  for (auto& t : done) t.join();
  return live;
}

void SocketServer::request_stop() {
  stop_.store(true, std::memory_order_release);
}

int SocketServer::note_send(int err) {
  if (err == 0) return 0;
  // A peer that resets or stops reading mid-response is routine for a
  // chaos client (and for real networks); anything else is surfaced as
  // the last unexpected errno for the operator to inspect.
  if (err == EPIPE || err == ECONNRESET) {
    peer_resets_.fetch_add(1, std::memory_order_relaxed);
  } else {
    send_failures_.fetch_add(1, std::memory_order_relaxed);
    last_send_errno_.store(err, std::memory_order_relaxed);
  }
  return err;
}

void SocketServer::connection_loop(int fd) {
  std::string buffer;
  char chunk[4096];
  while (true) {
    // A stopping server finishes buffered lines but stops waiting for
    // slow clients, so one idle connection cannot wedge the drain.
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) {
      if (stopping()) break;
      continue;
    }
    ssize_t n;
    int read_errno = 0;
    {
      KRSP_OBS_SPAN("transport_read");
      n = ::read(fd, chunk, sizeof chunk);
      if (n < 0) read_errno = errno;  // before the span dtor can clobber it
    }
    if (n < 0 && read_errno == EINTR) continue;  // signal, not a dead client
    if (n <= 0) break;  // EOF or error: client is gone
    transport_bytes_in().inc(static_cast<std::uint64_t>(n));
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    bool client_gone = false;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const std::string response = handler_->handle_line(line) + "\n";
      int send_err;
      {
        KRSP_OBS_SPAN("transport_write");
        send_err = send_all(fd, response);
      }
      if (send_err == 0)
        transport_bytes_out().inc(response.size());
      if (note_send(send_err) != 0) {
        client_gone = true;  // client stopped reading
        break;
      }
    }
    buffer.erase(0, start);
    if (client_gone) break;
    // Bound the partial-line buffer: a client streaming bytes with no
    // newline must not grow server memory without limit.
    if (buffer.size() > kMaxLineBytes) {
      (void)note_send(send_all(
          fd, error_line("request line exceeds " +
                         std::to_string(kMaxLineBytes) + " bytes") +
                  "\n"));
      break;
    }
  }
  ::close(fd);
  const std::lock_guard<std::mutex> lock(threads_mu_);
  finished_ids_.push_back(std::this_thread::get_id());
}

}  // namespace krsp::server

// Transport front-ends for the solve service.
//
// Framing: newline-delimited JSON, one object per line in each direction.
// The protocol logic (parse request → SolveService::serve → serialize
// response) lives in Protocol, which is transport-agnostic: tests drive
// it through LocalTransport (no sockets, no threads), and krsp_serve
// wraps it in SocketServer, a stream-socket listener (Unix domain or
// TCP — same wire bytes either way) with one thread per connection.
// krsp_router reuses SocketServer over its own LineHandler to front a
// fleet of shards.
//
// Request ops (field "op", default "solve"):
//   {"op":"solve","id":"tag","instance":"<.kri text>","mode":"scaled",
//    "eps1":0.25,"eps2":0.25,"guess":"binary","deadline":0.1}
//   {"op":"solve","id":"tag","topology":"grid64","mode":"scaled",...}
//                      → protocol v2: graph by catalog id (see below)
//   {"op":"stats"}     → serving counters (api::ServeStats)
//   {"op":"metrics"}   → Prometheus-style text exposition (obs registry:
//                        per-class latency quantiles, per-op wire
//                        counters) in a "metrics" string field; v2 only —
//                        v1 servers answer the structured unknown-op error
//   {"op":"topologies"}→ catalog listing (id, n, m, default query, digest)
//   {"op":"topology","id":"grid64"} → stat one catalog entry
//   {"op":"ping"}      → liveness probe
//   {"op":"shutdown"}  → ack, then the server begins its graceful drain
//
// A solve request may set "timing":true to receive a per-request
// breakdown object in the response: {"timing":{"cache_lookup_ms":..,
// "admission_ms":..,"queue_wait_ms":..,"solve_ms":..,"total_ms":..}}.
// Off by default so the standard response shape is unchanged.
//
// Protocol versioning (docs/API.md "Wire protocol v2"): a solve request
// with a "topology" key is v2 — the graph is looked up in the server's
// TopologyCatalog instead of being shipped inline, and optional
// "s"/"t"/"k"/"delay_bound" fields override the topology's stored
// default query. A request without the key is v1 inline, accepted
// forever and answered byte-identically to before. An unknown topology
// id (or a v2 request against a server with no catalog) yields a
// structured {"ok":false,"error":...} response — never a close.
//
// Solve responses echo "id" and carry either the result
//   {"id":..,"ok":true,"served":true,"cache_hit":false,"status":"approx",
//    "cost":12,"delay":9,"paths":[[0,3],[2,5]],"degradation":"none",
//    "queue_ms":0.1,"total_ms":2.3}
// or an admission rejection ("served":false,"reject":"queue-full"), or —
// for malformed input — {"ok":false,"error":"..."}; the connection always
// gets exactly one response line per request line. Solve responses are
// identical across v1 and v2 on purpose (no version marker), so clients
// can switch forms without re-validating their response handling;
// "protocol_version" appears in stats/topologies responses and in
// krsp_serve's final_stats line instead.
//
// The "instance" payload is the library's own .kri text format
// (core/io.h) embedded as a JSON string: one serializer for files, tools
// and the wire.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "server/service.h"
#include "store/catalog.h"

namespace krsp::server {

/// Wire protocol version this build speaks (reported in stats,
/// topologies, and krsp_serve final_stats). v2 added the topology-id
/// request surface; v1 inline requests remain accepted indefinitely.
inline constexpr int kProtocolVersion = 2;

/// One newline-framed request line in, one response line out — the
/// contract every listener (LocalTransport, SocketServer) drives.
/// Protocol implements it over a SolveService; krsp::router::Router
/// implements it by forwarding to a shard fleet. Implementations must be
/// thread-safe: transports call handle_line concurrently from any number
/// of connection threads.
class LineHandler {
 public:
  virtual ~LineHandler() = default;

  /// Handles one request line, returns one response line (no trailing
  /// newline). Malformed input yields an ok:false response, never a
  /// throw.
  [[nodiscard]] virtual std::string handle_line(const std::string& line) = 0;

  /// True once a "shutdown" op has been accepted; the transport owns the
  /// actual drain so in-flight connections finish first.
  [[nodiscard]] virtual bool shutdown_requested() const = 0;
};

/// Transport-agnostic request/response logic. Thread-safe: handle_line
/// may be called concurrently from any number of transport threads.
/// `catalog` (optional, unowned, must outlive the protocol) enables the
/// v2 topology ops; without one, v2 solve requests get a structured
/// error and `topologies` lists nothing.
class Protocol final : public LineHandler {
 public:
  explicit Protocol(SolveService& service,
                    const store::TopologyCatalog* catalog = nullptr)
      : service_(service), catalog_(catalog) {}

  [[nodiscard]] std::string handle_line(const std::string& line) override;

  [[nodiscard]] bool shutdown_requested() const override {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Solve requests served per wire-protocol form: v1 carried an inline
  /// "instance", v2 a "topology" reference. Reported in the stats op and
  /// krsp_serve's final_stats so a fleet rollout can verify v2 adoption
  /// shard by shard.
  [[nodiscard]] std::uint64_t solves_v1() const {
    return solves_v1_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t solves_v2() const {
    return solves_v2_.load(std::memory_order_relaxed);
  }

 private:
  SolveService& service_;
  const store::TopologyCatalog* catalog_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> solves_v1_{0};
  std::atomic<std::uint64_t> solves_v2_{0};
};

/// In-process transport for tests: the full protocol without sockets.
class LocalTransport {
 public:
  explicit LocalTransport(SolveService& service,
                          const store::TopologyCatalog* catalog = nullptr)
      : protocol_(service, catalog) {}

  [[nodiscard]] std::string request(const std::string& line) {
    return protocol_.handle_line(line);
  }
  [[nodiscard]] bool shutdown_requested() const {
    return protocol_.shutdown_requested();
  }

 private:
  Protocol protocol_;
};

/// Stream-socket server: accept loop + one thread per connection, over
/// either a Unix domain socket (path ctors) or TCP (port ctors; the
/// fleet transport — SO_REUSEADDR, TCP_NODELAY on accepted connections,
/// port 0 binds an ephemeral port reported by bound_port()). The wire
/// is byte-identical across both: newline-framed JSON with the same
/// EINTR/MSG_NOSIGNAL hardening. serve_forever() returns after a
/// shutdown op (or request_stop), once every connection has closed; the
/// caller then drains the service.
///
/// The request logic is any LineHandler: the service ctors build an
/// owned Protocol (krsp_serve), the LineHandler ctors serve an external
/// handler (krsp_router fronting a shard fleet).
///
/// Robustness contract for a long-running daemon: responses are written
/// with MSG_NOSIGNAL so a client that disconnects mid-response yields
/// EPIPE (connection closed) instead of SIGPIPE (process killed);
/// request lines are capped at kMaxLineBytes (overflow gets one error
/// response, then the connection closes); finished connection threads
/// are reaped on every accept, and concurrent connections are capped at
/// kMaxConnections (excess connections get one error response).
class SocketServer {
 public:
  /// Longest accepted request line; a buffered partial line beyond this
  /// is answered with an error and the connection is closed.
  static constexpr std::size_t kMaxLineBytes = std::size_t{16} << 20;
  /// Cap on simultaneously-open connections (== connection threads).
  static constexpr std::size_t kMaxConnections = 256;

  SocketServer(SolveService& service, std::string socket_path,
               const store::TopologyCatalog* catalog = nullptr);
  SocketServer(SolveService& service, std::uint16_t tcp_port,
               const store::TopologyCatalog* catalog = nullptr);
  SocketServer(LineHandler& handler, std::string socket_path);
  SocketServer(LineHandler& handler, std::uint16_t tcp_port);
  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds and listens. False (with *error set) on failure — path too
  /// long, bind refused, etc.
  [[nodiscard]] bool start(std::string* error);

  /// TCP mode only: the port actually bound (== the requested port, or
  /// the kernel-assigned one when constructed with port 0). Valid after
  /// start(); 0 in Unix-socket mode.
  [[nodiscard]] std::uint16_t bound_port() const { return bound_port_; }

  /// The owned Protocol when constructed from a SolveService (for its
  /// solves_v1/solves_v2 counters in final_stats); nullptr when serving
  /// an external LineHandler.
  [[nodiscard]] const Protocol* protocol() const {
    return protocol_.has_value() ? &*protocol_ : nullptr;
  }

  /// Accept/serve until shutdown; joins all connection threads, unlinks
  /// the socket path. Call start() first.
  void serve_forever();

  /// Asynchronous stop trigger (signal handlers, tests).
  void request_stop();

  [[nodiscard]] std::uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  /// Response sends that failed with EPIPE/ECONNRESET — the peer went
  /// away mid-response. Routine under chaos; never fatal.
  [[nodiscard]] std::uint64_t peer_resets() const {
    return peer_resets_.load(std::memory_order_relaxed);
  }
  /// Response sends that failed with any *other* errno (see
  /// last_send_errno for which) — worth an operator's attention.
  [[nodiscard]] std::uint64_t send_failures() const {
    return send_failures_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int last_send_errno() const {
    return last_send_errno_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] bool start_unix(std::string* error);
  [[nodiscard]] bool start_tcp(std::string* error);
  void connection_loop(int fd);
  [[nodiscard]] bool stopping() const;
  /// Classifies a send_all() result into the reset/failure counters;
  /// returns the errno unchanged (0 = success).
  int note_send(int err);
  /// Joins connection threads that have announced completion; returns the
  /// number of threads still live afterwards (the concurrency gauge).
  std::size_t reap_finished();

  std::optional<Protocol> protocol_;  // owned when built from a service
  LineHandler* handler_;              // always valid; == &*protocol_ if owned
  std::string path_;                  // empty in TCP mode
  bool tcp_ = false;
  std::uint16_t port_ = 0;        // requested TCP port (0 = ephemeral)
  std::uint16_t bound_port_ = 0;  // resolved by start() in TCP mode
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> peer_resets_{0};
  std::atomic<std::uint64_t> send_failures_{0};
  std::atomic<int> last_send_errno_{0};
  std::mutex threads_mu_;
  std::list<std::thread> threads_;
  std::vector<std::thread::id> finished_ids_;
};

}  // namespace krsp::server

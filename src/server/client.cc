#include "server/client.h"

#include <cerrno>

#include <algorithm>
#include <chrono>
#include <thread>

#include "server/wire.h"

namespace krsp::server {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// "Refused": the dial itself was rejected, so no request bytes can have
/// reached a server. ECONNREFUSED is the live-host-no-listener case for
/// both families; ENOENT is its Unix-path twin (daemon not started yet,
/// or its socket file already unlinked by shutdown).
bool errno_is_refused(int err) { return err == ECONNREFUSED || err == ENOENT; }

}  // namespace

ResilientClient::ResilientClient(std::string socket_path, RetryOptions retry,
                                 FaultOptions faults)
    : ResilientClient(Endpoint::unix_socket(std::move(socket_path)), retry,
                      faults) {}

ResilientClient::ResilientClient(Endpoint endpoint, RetryOptions retry,
                                 FaultOptions faults)
    : endpoint_(std::move(endpoint)),
      retry_(retry),
      fault_options_(faults),
      chaos_rng_(faults.seed),
      jitter_rng_(retry.jitter_seed) {}

ResilientClient::~ResilientClient() { close(); }

bool ResilientClient::connected() const {
  return stream_ != nullptr && stream_->connected();
}

void ResilientClient::close() {
  if (stream_ != nullptr) stream_->close();
  stream_.reset();
  fd_stream_.reset();
  buffer_.clear();
}

bool ResilientClient::dial(std::string* error) {
  close();
  int dial_errno = 0;
  const int fd = connect_endpoint(endpoint_, error, &dial_errno);
  if (fd < 0) {
    last_dial_refused_ = errno_is_refused(dial_errno);
    if (last_dial_refused_)
      counters_.connect_refused += 1;
    return false;
  }
  last_dial_refused_ = false;
  fd_stream_ = std::make_unique<FdStream>(fd);
  // Rate 0 keeps the decorator inert (no RNG draws), so a fault-free
  // client is byte-identical to an undecorated one.
  stream_ = std::make_unique<FaultyStream>(
      *fd_stream_, fault_options_,
      fault_options_.fault_rate > 0.0 ? &chaos_rng_ : nullptr,
      &counters_.faults);
  if (ever_connected_) ++counters_.reconnects;
  ever_connected_ = true;
  return true;
}

bool ResilientClient::connect(std::string* error) {
  if (connected()) return true;
  return dial(error);
}

bool ResilientClient::read_matching(const std::string& id, int timeout_ms,
                                    std::string* response_line,
                                    std::string* error) {
  const auto t0 = Clock::now();
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (line.empty()) continue;
      if (id.empty()) {
        *response_line = std::move(line);
        return true;
      }
      // Responses are matched by the echoed id; anything else (e.g. the
      // error response to an injected garbage frame) is counted and
      // skipped, keeping the stream in sync.
      const auto parsed = wire::parse(line);
      if (parsed.has_value() && parsed->get_string("id") == id) {
        *response_line = std::move(line);
        return true;
      }
      ++counters_.skipped_lines;
      continue;
    }
    int wait_ms = timeout_ms;
    if (timeout_ms >= 0) {
      wait_ms = timeout_ms - static_cast<int>(ms_since(t0));
      if (wait_ms < 0) wait_ms = 0;
    }
    char chunk[4096];
    const ssize_t n = stream_->recv(chunk, sizeof chunk, wait_ms, error);
    if (n == ByteStream::kRecvTimeout) {
      ++counters_.timeouts;
      if (error != nullptr) *error = "timed out waiting for response";
      return false;
    }
    if (n < 0) return false;  // error, *error set
    if (n == 0) {
      if (error != nullptr) *error = "server closed the connection";
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool ResilientClient::request(const std::string& line, const std::string& id,
                              bool idempotent, std::string* response_line,
                              std::string* error) {
  const auto t0 = Clock::now();
  const double budget_ms = retry_.total_budget_ms;
  double backoff_ms = retry_.base_backoff_ms;
  std::string attempt_error;

  for (int attempt = 0;; ++attempt) {
    ++counters_.attempts;
    if (attempt > 0) ++counters_.retries;

    bool maybe_delivered = false;
    bool ok = false;
    bool dial_refused = false;
    if (connected() || dial(&attempt_error)) {
      // From here on, bytes may reach the server even if send() reports
      // failure (an injected truncate sends a prefix first) — the
      // at-most-once rule for non-idempotent requests keys off this.
      maybe_delivered = true;
      if (stream_->send(line + "\n", &attempt_error)) {
        int timeout_ms =
            retry_.request_timeout_ms > 0.0
                ? static_cast<int>(retry_.request_timeout_ms)
                : -1;
        if (budget_ms > 0.0) {
          const int left = static_cast<int>(budget_ms - ms_since(t0));
          timeout_ms = timeout_ms < 0 ? std::max(0, left)
                                      : std::min(timeout_ms, std::max(0, left));
        }
        ok = read_matching(id, timeout_ms, response_line, &attempt_error);
      }
    } else {
      dial_refused = last_dial_refused_;
    }
    if (ok) {
      last_failure_refused_ = false;
      return true;
    }
    // Any failed exchange leaves the connection in an unknown framing
    // state (a late response could alias the next request) — drop it.
    close();

    if (dial_refused && retry_.fail_fast_on_refused) {
      // The server is down and nothing was sent: fail now so a caller
      // with alternatives (the router) retries elsewhere instead of
      // waiting out a backoff aimed at this dead endpoint.
      ++counters_.give_ups;
      last_failure_refused_ = true;
      if (error != nullptr)
        *error = "connection refused (fail-fast): " + attempt_error;
      return false;
    }
    if (!idempotent && maybe_delivered) {
      last_failure_refused_ = false;
      ++counters_.give_ups;
      if (error != nullptr)
        *error = "non-idempotent request failed after possible delivery "
                 "(not retried): " +
                 attempt_error;
      return false;
    }
    const bool out_of_retries = attempt >= retry_.max_retries;
    const bool out_of_budget =
        budget_ms > 0.0 && ms_since(t0) >= budget_ms;
    if (out_of_retries || out_of_budget) {
      ++counters_.give_ups;
      last_failure_refused_ = dial_refused;
      if (error != nullptr)
        *error = (out_of_retries ? "retries exhausted: "
                                 : "retry budget exhausted: ") +
                 attempt_error;
      return false;
    }
    // Exponential backoff with equal jitter: sleep in [0.5, 1.0] of the
    // current backoff, then double it (capped).
    double sleep_ms = backoff_ms * (0.5 + 0.5 * jitter_rng_.uniform01());
    if (budget_ms > 0.0)
      sleep_ms = std::min(sleep_ms, std::max(0.0, budget_ms - ms_since(t0)));
    if (sleep_ms > 0.0)
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          sleep_ms));
    backoff_ms = std::min(backoff_ms * 2.0, retry_.max_backoff_ms);
  }
}

}  // namespace krsp::server

#include "graph/algorithms.h"

#include <algorithm>
#include <deque>

namespace krsp::graph {

std::vector<bool> reachable_from(const Digraph& g, VertexId source) {
  KRSP_CHECK(g.is_vertex(source));
  std::vector<bool> seen(g.num_vertices(), false);
  std::deque<VertexId> queue{source};
  seen[source] = true;
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    for (const EdgeId e : g.out_edges(v)) {
      const VertexId w = g.edge(e).to;
      if (!seen[w]) {
        seen[w] = true;
        queue.push_back(w);
      }
    }
  }
  return seen;
}

std::vector<bool> can_reach(const Digraph& g, VertexId sink) {
  KRSP_CHECK(g.is_vertex(sink));
  std::vector<bool> seen(g.num_vertices(), false);
  std::deque<VertexId> queue{sink};
  seen[sink] = true;
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    for (const EdgeId e : g.in_edges(v)) {
      const VertexId w = g.edge(e).from;
      if (!seen[w]) {
        seen[w] = true;
        queue.push_back(w);
      }
    }
  }
  return seen;
}

bool has_path(const Digraph& g, VertexId s, VertexId t) {
  return reachable_from(g, s)[t];
}

std::optional<std::vector<VertexId>> topological_order(const Digraph& g) {
  const int n = g.num_vertices();
  std::vector<int> indeg(n, 0);
  for (const auto& e : g.edges()) ++indeg[e.to];
  std::deque<VertexId> ready;
  for (VertexId v = 0; v < n; ++v)
    if (indeg[v] == 0) ready.push_back(v);
  std::vector<VertexId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const VertexId v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (const EdgeId e : g.out_edges(v))
      if (--indeg[g.edge(e).to] == 0) ready.push_back(g.edge(e).to);
  }
  if (static_cast<int>(order.size()) != n) return std::nullopt;
  return order;
}

namespace {

// Iterative Tarjan SCC (explicit stack; recursion would overflow on long
// paths in benchmark-sized graphs).
struct TarjanState {
  const Digraph& g;
  std::vector<int> index, lowlink, component;
  std::vector<bool> on_stack;
  std::vector<VertexId> stack;
  int next_index = 0;
  int num_components = 0;

  explicit TarjanState(const Digraph& graph)
      : g(graph),
        index(graph.num_vertices(), -1),
        lowlink(graph.num_vertices(), -1),
        component(graph.num_vertices(), -1),
        on_stack(graph.num_vertices(), false) {}

  void run(VertexId root) {
    // Frame: (vertex, next out-edge position).
    std::vector<std::pair<VertexId, std::size_t>> frames;
    frames.emplace_back(root, 0);
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      auto& [v, pos] = frames.back();
      const auto out = g.out_edges(v);
      if (pos < out.size()) {
        const VertexId w = g.edge(out[pos++]).to;
        if (index[w] < 0) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.emplace_back(w, 0);
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          while (true) {
            const VertexId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component[w] = num_components;
            if (w == v) break;
          }
          ++num_components;
        }
        const VertexId child = v;
        frames.pop_back();
        if (!frames.empty()) {
          const VertexId parent = frames.back().first;
          lowlink[parent] = std::min(lowlink[parent], lowlink[child]);
        }
      }
    }
  }
};

}  // namespace

SccResult strongly_connected_components(const Digraph& g) {
  TarjanState st(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (st.index[v] < 0) st.run(v);
  return SccResult{std::move(st.component), st.num_components};
}

SccPartition scc_partition(const Digraph& g) {
  auto [component, num_components] = strongly_connected_components(g);
  const int n = g.num_vertices();
  SccPartition out;
  out.num_components = num_components;
  out.comp_first.assign(num_components + 1, 0);
  for (const int c : component) ++out.comp_first[c + 1];
  for (int c = 0; c < num_components; ++c)
    out.comp_first[c + 1] += out.comp_first[c];
  out.members.resize(n);
  out.local_id.resize(n);
  // Stable counting pass over ascending v keeps members ascending within
  // each component — the order the compacted DP relies on.
  std::vector<int> at(out.comp_first.begin(), out.comp_first.end() - 1);
  for (VertexId v = 0; v < n; ++v) {
    const int c = component[v];
    out.local_id[v] = at[c] - out.comp_first[c];
    out.members[at[c]++] = v;
  }
  out.component = std::move(component);
  return out;
}

std::vector<EdgeId> bfs_path(const Digraph& g, VertexId s, VertexId t) {
  KRSP_CHECK(g.is_vertex(s) && g.is_vertex(t));
  std::vector<EdgeId> parent(g.num_vertices(), kInvalidEdge);
  std::vector<bool> seen(g.num_vertices(), false);
  std::deque<VertexId> queue{s};
  seen[s] = true;
  while (!queue.empty() && !seen[t]) {
    const VertexId v = queue.front();
    queue.pop_front();
    for (const EdgeId e : g.out_edges(v)) {
      const VertexId w = g.edge(e).to;
      if (!seen[w]) {
        seen[w] = true;
        parent[w] = e;
        queue.push_back(w);
      }
    }
  }
  std::vector<EdgeId> path;
  if (!seen[t]) return path;
  for (VertexId at = t; at != s;) {
    const EdgeId e = parent[at];
    path.push_back(e);
    at = g.edge(e).from;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace krsp::graph

#include "graph/cycles.h"

#include <unordered_map>
#include <unordered_set>

namespace krsp::graph {

bool is_simple_cycle(const Digraph& g, std::span<const EdgeId> edges) {
  if (edges.empty()) return false;
  const VertexId start = g.edge(edges.front()).from;
  VertexId at = start;
  std::unordered_set<VertexId> seen;
  std::unordered_set<EdgeId> seen_edges;
  for (const EdgeId e : edges) {
    if (!g.is_edge(e) || g.edge(e).from != at) return false;
    if (!seen_edges.insert(e).second) return false;
    if (!seen.insert(at).second) return false;
    at = g.edge(e).to;
  }
  return at == start;
}

std::vector<Cycle> decompose_closed_walk(const Digraph& g,
                                         std::span<const EdgeId> walk) {
  std::vector<Cycle> cycles;
  if (walk.empty()) return cycles;
  const VertexId start = g.edge(walk.front()).from;
  KRSP_CHECK_MSG(is_walk(g, walk, start, start),
                 "decompose_closed_walk: input is not a closed walk");

  // Stack of edges of the current (simple) partial walk plus the position of
  // each vertex on that stack. Whenever the walk returns to a vertex already
  // on the stack, the edges above that position form a simple cycle.
  std::vector<EdgeId> stack;
  std::unordered_map<VertexId, int> pos_of;  // vertex -> index into stack
  pos_of[start] = 0;
  for (const EdgeId e : walk) {
    stack.push_back(e);
    const VertexId head = g.edge(e).to;
    const auto it = pos_of.find(head);
    if (it != pos_of.end()) {
      // Pop the cycle: stack[it->second .. end).
      Cycle cycle(stack.begin() + it->second, stack.end());
      // Remove popped vertices' positions (tails of popped edges, except the
      // repeated head itself which stays at its original position).
      for (const EdgeId pe : cycle) {
        const VertexId tail = g.edge(pe).from;
        if (tail != head) pos_of.erase(tail);
      }
      stack.resize(it->second);
      KRSP_DCHECK(is_simple_cycle(g, cycle));
      cycles.push_back(std::move(cycle));
    } else {
      pos_of[head] = static_cast<int>(stack.size());
    }
  }
  KRSP_CHECK_MSG(stack.empty(),
                 "decompose_closed_walk: leftover edges after decomposition");
  return cycles;
}

std::vector<Cycle> decompose_balanced_edge_set(const Digraph& g,
                                               std::span<const EdgeId> edges) {
  // Verify balance and index unused out-edges per vertex.
  std::unordered_map<VertexId, std::vector<EdgeId>> out;
  std::unordered_map<VertexId, int> degree;
  for (const EdgeId e : edges) {
    out[g.edge(e).from].push_back(e);
    ++degree[g.edge(e).from];
    --degree[g.edge(e).to];
  }
  for (const auto& [v, d] : degree)
    KRSP_CHECK_MSG(d == 0, "decompose_balanced_edge_set: vertex "
                               << v << " has degree imbalance " << d);

  std::vector<Cycle> cycles;
  // Hierholzer-style: trace closed walks until all edges are consumed, then
  // split each walk into simple cycles.
  for (const EdgeId seed : edges) {
    const VertexId start = g.edge(seed).from;
    if (out[start].empty()) continue;  // already consumed
    std::vector<EdgeId> walk;
    VertexId at = start;
    do {
      auto& avail = out[at];
      KRSP_CHECK_MSG(!avail.empty(),
                     "balanced edge set: stuck at vertex " << at);
      const EdgeId e = avail.back();
      avail.pop_back();
      walk.push_back(e);
      at = g.edge(e).to;
    } while (at != start);
    auto sub = decompose_closed_walk(g, walk);
    for (auto& c : sub) cycles.push_back(std::move(c));
  }
  return cycles;
}

}  // namespace krsp::graph

// Workload generators for tests, examples and the benchmark harness.
//
// All generators are deterministic given the Rng. Costs and delays are drawn
// independently unless stated; QoS-style generators (Waxman, ISP) tie delay
// to geometric distance, the standard model in the multipath-QoS literature
// the paper targets.
#pragma once

#include <cstdint>

#include "graph/digraph.h"
#include "util/rng.h"

namespace krsp::gen {

using graph::Cost;
using graph::Delay;
using graph::Digraph;
using graph::VertexId;

struct WeightRange {
  Cost cost_min = 1;
  Cost cost_max = 10;
  Delay delay_min = 1;
  Delay delay_max = 10;
};

/// G(n, p) random digraph (no self loops). Each ordered pair gets an edge
/// with probability p; weights uniform in the given ranges.
Digraph erdos_renyi(util::Rng& rng, int n, double p,
                    const WeightRange& w = {});

/// Random digraph with exactly m edges (distinct ordered pairs, no loops).
Digraph random_m_edges(util::Rng& rng, int n, int m, const WeightRange& w = {});

/// Waxman random geometric graph: n points in the unit square; arc u→v with
/// probability beta * exp(-dist(u,v) / (alpha * sqrt(2))). Delay is the
/// scaled Euclidean distance (propagation delay), cost uniform (monetary /
/// load cost). Arcs are added in both directions independently.
struct WaxmanParams {
  double alpha = 0.4;
  double beta = 0.6;
  Delay delay_scale = 100;  // delay = ceil(dist * delay_scale), >= 1
  Cost cost_min = 1;
  Cost cost_max = 20;
};
Digraph waxman(util::Rng& rng, int n, const WaxmanParams& params = {});

/// Directed grid of width x height. Arcs go right and down plus their
/// reverses, giving rich disjoint-path structure. Vertex (r, c) has id
/// r * width + c. Weights uniform.
Digraph grid(util::Rng& rng, int width, int height, const WeightRange& w = {});

/// Layered DAG: `layers` layers of `width` vertices plus source (id 0) and
/// sink (id n-1); arcs between consecutive layers with probability p.
/// Guaranteed k vertex-disjoint s-t "spine" paths so kRSP instances are
/// k-edge-connected by construction.
Digraph layered_dag(util::Rng& rng, int layers, int width, double p, int k,
                    const WeightRange& w = {});

/// Barabási–Albert preferential-attachment graph (scale-free degree
/// distribution, the classic Internet-topology model). Starts from a
/// directed clique on `m0 = attach + 1` vertices; each new vertex attaches
/// to `attach` existing vertices sampled proportionally to degree, adding
/// arcs in both directions. Weights uniform.
Digraph barabasi_albert(util::Rng& rng, int n, int attach,
                        const WeightRange& w = {});

/// Two-level ISP-like topology: a well-connected core ring+chords, and
/// `region_count` access regions each hanging off two distinct core nodes
/// (dual-homing). Core links are cheap/fast, access links slower. Vertex 0
/// is a region host, vertex 1 a host in a different region — natural s/t.
struct IspParams {
  int core_size = 8;
  int region_count = 4;
  int region_size = 5;
  double core_chord_prob = 0.3;
};
Digraph isp_like(util::Rng& rng, const IspParams& params = {});

/// The paper's Figure 1 gadget (k = 2, terminals s=0, t=4).
///
/// Reproduces the example of Section 3.1: starting from the phase-1 solution
/// {s-a-b-c-t, s-t} with delay D+1 (one unit over budget), the residual
/// graph contains two delay-reducing cycles:
///   O_good: cost C_OPT,          delay -1      (leads to the optimum)
///   O_bad:  cost C_OPT*(D+1)-1,  delay -(D+1)  (slightly better ratio!)
/// A best-ratio picker without the bicameral cost cap takes O_bad and ends
/// with cost C_OPT*(D+1)-1 and delay 0; the cap (|c(O)| <= C_OPT) rejects it
/// and the algorithm returns the optimum {s-a-b-t, s-t} with cost C_OPT and
/// delay exactly D.
struct Figure1Gadget {
  Digraph graph;
  VertexId s = 0;
  VertexId t = 4;
  int k = 2;
  Delay delay_bound = 0;   // D
  Cost optimal_cost = 0;   // C_OPT
  Cost bad_cost = 0;       // C_OPT*(D+1)-1, the unconstrained outcome
};
Figure1Gadget figure1_gadget(Delay D, Cost c_opt = 5);

/// The running example used for Figure 2 (auxiliary-graph construction):
/// a 5-vertex graph whose path s-x-y-z-t is the current solution, with a
/// bypass arc so the residual graph has a cycle of positive cost within
/// budget B = 6. The exact arc weights of the paper's figure are not
/// recoverable from the text, so this is a faithful representative: same
/// shape (5 vertices, current path s-x-y-z-t, B = 6), documented in
/// DESIGN.md §6.
struct Figure2Example {
  Digraph graph;
  VertexId s = 0, x = 1, y = 2, z = 3, t = 4;
  std::vector<graph::EdgeId> current_path;  // s-x-y-z-t
  Cost budget = 6;                          // B in the figure
};
Figure2Example figure2_example();

/// Instances engineered so the phase-1 solution overshoots the delay bound
/// and cycle cancellation must run several iterations: `chains` parallel
/// s-t chains, each offering a cheap/slow and an expensive/fast variant per
/// hop, with the budget set between the all-slow and all-fast extremes.
Digraph tradeoff_chains(util::Rng& rng, int chains, int hops, Cost fast_cost,
                        Delay slow_delay);

}  // namespace krsp::gen
